// Scripted network dynamics: the scenario engine.
//
// The paper's failure-recovery experiment (Section 7, Figure 14) kills one
// join node at one moment; real deployments see node churn, link-quality
// drift, correlated interference bursts, regional outages — and *query*
// churn: the set of standing queries a long-running service executes
// changes over the network's lifetime. A DynamicsSchedule scripts such a
// scenario as timed events, and a ScenarioDriver replays it against a
// net::Network (and, for query arrival/departure events, a QueryHost) as a
// sim::CycleParticipant — attach it with CycleScheduler::AttachFront so an
// event scheduled for sampling cycle N mutates the network before any query
// samples at cycle N, and a query arriving (departing) at cycle N takes
// (skips) its first (next) sample exactly at cycle N.
//
// Determinism: a schedule is plain data, stochastic schedules (RandomChurn)
// are pre-generated from their own seed, and the driver never draws from
// the network's RNG — so a scenario run is reproducible bit-for-bit from
// (workload seed, schedule) and is stream-for-stream comparable with its
// unfailed baseline (see the unconditional-draw note in net/network.h).

#ifndef ASPEN_SCENARIO_DYNAMICS_H_
#define ASPEN_SCENARIO_DYNAMICS_H_

#include <cstdint>
#include <vector>

#include "common/phase.h"
#include "common/status.h"
#include "net/network.h"
#include "net/topology.h"
#include "sim/cycle_scheduler.h"

namespace aspen {
namespace scenario {

/// \brief Admits and removes queries on behalf of scripted query-churn
/// events. Implemented by the service layer (core::RunService's adapter
/// over join::SharedMedium); injected into ScenarioDriver to avoid a
/// layering cycle, exactly like net::ParentResolver.
class QueryHost {
 public:
  virtual ~QueryHost() = default;
  /// A scripted query arrives: admit an instance of `template_id` under the
  /// caller-scoped handle `slot` (slots are unique per schedule and name
  /// the instance in the matching departure event).
  virtual Status OnQueryArrival(int slot, int template_id) = 0;
  /// The query admitted under `slot` departs: tear it down.
  virtual Status OnQueryDeparture(int slot) = 0;
  /// A scripted selectivity shift: from `at_cycle` on, every producer of
  /// the hosted queries samples under the shifted generation parameters
  /// (the workload::SelectivityParams triple). Unlike the other events,
  /// shifts are dispatched *eagerly* at host attachment, not when the
  /// clock reaches `at_cycle`: the workload's global switch is
  /// cycle-indexed (Workload::SetGlobalSwitch), so registering it ahead of
  /// time is byte-identical at every pipeline depth — a depth-d scheduler
  /// may sample cycle `at_cycle` before the cycle-`at_cycle` event hooks
  /// run. Hosts that cannot honor shifts keep this default, which fails
  /// any run whose schedule contains one.
  virtual Status OnSelectivityShift(int at_cycle, double sigma_s,
                                    double sigma_t, double sigma_st) {
    (void)at_cycle;
    (void)sigma_s;
    (void)sigma_t;
    (void)sigma_st;
    return Status::FailedPrecondition(
        "scenario: selectivity-shift event but the QueryHost does not "
        "implement OnSelectivityShift");
  }
};

/// \brief One timed mutation of the network or of the query population.
struct DynamicsEvent {
  enum class Kind : uint8_t {
    kFailNode,        ///< kill `node`
    kRecoverNode,     ///< revive `node`
    kLossDrift,       ///< ramp the default loss to `loss` over `duration`
    kLossBurst,       ///< links within `radius_hops` of `node` lose at `loss`
                      ///< for `duration` cycles, then revert to the default
    kRegionBlackout,  ///< nodes within `radius_m` of `node` (base excluded)
                      ///< die for `duration` cycles, then revive
    kQueryArrival,    ///< admit query instance `slot` of `template_id`
    kQueryDeparture,  ///< remove query instance `slot`
    kSelectivityShift ///< producers switch to (sigma_s, sigma_t, sigma_st)
                      ///< from `cycle` on (dispatched eagerly; see QueryHost)
  };

  Kind kind = Kind::kFailNode;
  int cycle = 0;         ///< sampling cycle the event fires at
  net::NodeId node = -1; ///< subject node / burst / blackout center
  double loss = 0.0;     ///< drift target / burst loss probability
  int duration = 0;      ///< drift ramp length / burst / blackout cycles
  double radius_m = 0.0; ///< blackout radius (meters)
  int radius_hops = 0;   ///< burst radius (hops around the center)
  int slot = -1;         ///< query instance handle (arrival/departure)
  int template_id = -1;  ///< workload template index (arrival)
  // Shift target (selectivity shift); defaults mirror
  // workload::SelectivityParams.
  double sigma_s = 1.0;  ///< shifted S producer send rate
  double sigma_t = 1.0;  ///< shifted T producer send rate
  double sigma_st = 0.2; ///< shifted per-(value pair) join probability

  bool operator==(const DynamicsEvent& o) const {
    return kind == o.kind && cycle == o.cycle && node == o.node &&
           loss == o.loss && duration == o.duration &&
           radius_m == o.radius_m && radius_hops == o.radius_hops &&
           slot == o.slot && template_id == o.template_id &&
           sigma_s == o.sigma_s && sigma_t == o.sigma_t &&
           sigma_st == o.sigma_st;
  }
};

/// \brief An ordered script of timed events. Builder methods return *this
/// so scenarios compose fluently:
///
///   DynamicsSchedule sched;
///   sched.FailAt(45, join_node)
///        .DriftLossTo(20, 0.15, /*over_cycles=*/30)
///        .BlackoutAt(60, center, /*radius_m=*/40.0, /*duration=*/10);
class DynamicsSchedule {
 public:
  /// The base station (node 0) is the query sink and is never failed: the
  /// driver ignores fail/recover/blackout effects on it.
  DynamicsSchedule& FailAt(int cycle, net::NodeId node);
  DynamicsSchedule& RecoverAt(int cycle, net::NodeId node);
  /// Linearly ramps the network-wide default loss probability from its
  /// value when the event fires to `target` over `over_cycles` cycles
  /// (immediately when 0).
  DynamicsSchedule& DriftLossTo(int cycle, double target, int over_cycles);
  /// Correlated interference: every link with an endpoint within
  /// `radius_hops` hops of `center` loses at `loss` for `duration` cycles
  /// (duration <= 0 is a no-op).
  DynamicsSchedule& BurstAt(int cycle, net::NodeId center, int radius_hops,
                            double loss, int duration);
  /// Regional outage: every node within `radius_m` meters of `center`
  /// (except the base station) fails for `duration` cycles (duration <= 0
  /// is a no-op).
  DynamicsSchedule& BlackoutAt(int cycle, net::NodeId center, double radius_m,
                               int duration);
  /// Query instance `slot` of workload template `template_id` arrives at
  /// `cycle` (the replaying driver's QueryHost admits and initiates it).
  DynamicsSchedule& ArriveAt(int cycle, int slot, int template_id);
  /// Query instance `slot` departs at `cycle`.
  DynamicsSchedule& DepartAt(int cycle, int slot);
  /// From `cycle` on, every producer samples under the shifted selectivity
  /// triple — the paper's Figure 12(b) mid-run workload change, scriptable.
  /// Drives the continuous re-optimization loop: a divergence past the
  /// replan threshold makes the executor re-place its operators.
  DynamicsSchedule& ShiftSelectivityAt(int cycle, double sigma_s,
                                       double sigma_t, double sigma_st);
  /// Appends a fully-specified event.
  DynamicsSchedule& Add(DynamicsEvent event);

  /// \brief Deterministically generates fail/recover churn: at each
  /// sampling cycle in [0, cycles), every currently-alive non-base node
  /// fails with probability `rate` and recovers `down_cycles` later. Equal
  /// seeds yield equal schedules.
  static DynamicsSchedule RandomChurn(const net::Topology& topology,
                                      int cycles, double rate,
                                      int down_cycles, uint64_t seed);

  /// \brief Parameters of the QueryChurn generator. The process is
  /// wave-structured so a service run has natural occupancy checkpoints:
  /// every query admitted in wave w departs before wave w+1 begins, so the
  /// medium's data-plane occupancy after each wave is directly comparable
  /// across waves (a leak shows up as monotonic growth).
  struct QueryChurnOptions {
    int start_cycle = 0;        ///< first wave begins here
    int waves = 4;              ///< number of churn waves
    int arrivals_per_wave = 8;  ///< query instances admitted per wave
    int wave_period = 100;      ///< cycles from one wave start to the next
    int min_lifetime = 10;      ///< shortest instance lifetime (cycles)
    int max_lifetime = 40;      ///< longest (clamped into the wave window)
    int num_templates = 1;      ///< workload template pool size
    uint64_t seed = 1;
  };

  /// \brief Deterministic arrival/departure process over a query template
  /// pool: per wave, `arrivals_per_wave` instances arrive at seeded
  /// offsets with seeded lifetimes and templates, every instance departing
  /// within its own wave window. Equal options yield equal schedules.
  /// Slots number instances 0, 1, ... in arrival order.
  static DynamicsSchedule QueryChurn(const QueryChurnOptions& options);

  const std::vector<DynamicsEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  /// Arrival (resp. departure) event count, for sizing service runs.
  int num_query_arrivals() const;
  int num_query_departures() const;

 private:
  std::vector<DynamicsEvent> events_;
};

/// \brief Replays a DynamicsSchedule against one network from the cycle
/// clock. The schedule and network must outlive the driver.
class ScenarioDriver : public sim::CycleParticipant {
 public:
  ScenarioDriver(net::Network* network, const DynamicsSchedule* schedule);

  /// Attaches the query host that query arrival/departure/shift events act
  /// on. Must be set before the first such event fires (a query event with
  /// no host fails the run); network-only schedules need none. The host
  /// must outlive the driver. Selectivity-shift events are dispatched to
  /// the host *here*, eagerly (see QueryHost::OnSelectivityShift for why
  /// that is the pipeline-safe dispatch point); the returned status is
  /// their outcome.
  Status set_query_host(QueryHost* host);

  /// Applies every event due at `cycle`, plus active drifts/expiries.
  Status OnSample(int cycle) override;
  Status OnDeliver(int cycle) override;
  Status OnLearn(int cycle) override;

  // Applied-mutation counters, for tests and scenario reports.
  int failures_applied() const { return failures_applied_; }
  int recoveries_applied() const { return recoveries_applied_; }
  int arrivals_applied() const { return arrivals_applied_; }
  int departures_applied() const { return departures_applied_; }
  int shifts_applied() const { return shifts_applied_; }

 private:
  struct ActiveDrift {
    int start_cycle = 0;
    int duration = 0;
    double from = 0.0;
    double to = 0.0;
  };
  struct ActiveBurst {
    int end_cycle = 0;
    double loss = 0.0;
    std::vector<std::pair<net::NodeId, net::NodeId>> links;  // directed
  };
  struct ActiveBlackout {
    int end_cycle = 0;
    std::vector<net::NodeId> nodes;  // the nodes this blackout holds down
  };

  Status Apply(const DynamicsEvent& e, int cycle)
      ASPEN_REQUIRES_SEQUENTIAL;
  /// Failures are ownership-counted: a node stays dead until every
  /// scripted failure holding it (explicit FailAt, churn, blackout) has
  /// released it, so overlapping failure sources compose instead of an
  /// early recovery reviving a node another event scripted as dead.
  void FailOne(net::NodeId node) ASPEN_REQUIRES_SEQUENTIAL;
  void RecoverOne(net::NodeId node) ASPEN_REQUIRES_SEQUENTIAL;

  net::Network* net_;
  QueryHost* host_ = nullptr;
  /// Events sorted by (cycle, schedule order); `next_event_` advances
  /// monotonically with the clock.
  std::vector<DynamicsEvent> ordered_;
  size_t next_event_ = 0;
  std::vector<ActiveDrift> drifts_;
  std::vector<ActiveBurst> bursts_;
  std::vector<ActiveBlackout> blackouts_;
  /// Per-node count of scripted failures currently holding the node down.
  std::vector<int> fail_depth_;
  int failures_applied_ = 0;
  int recoveries_applied_ = 0;
  int arrivals_applied_ = 0;
  int departures_applied_ = 0;
  int shifts_applied_ = 0;
};

}  // namespace scenario
}  // namespace aspen

#endif  // ASPEN_SCENARIO_DYNAMICS_H_
