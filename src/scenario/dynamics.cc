#include "scenario/dynamics.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"
#include "common/rng.h"

namespace aspen {
namespace scenario {

using net::NodeId;

DynamicsSchedule& DynamicsSchedule::FailAt(int cycle, NodeId node) {
  DynamicsEvent e;
  e.kind = DynamicsEvent::Kind::kFailNode;
  e.cycle = cycle;
  e.node = node;
  return Add(e);
}

DynamicsSchedule& DynamicsSchedule::RecoverAt(int cycle, NodeId node) {
  DynamicsEvent e;
  e.kind = DynamicsEvent::Kind::kRecoverNode;
  e.cycle = cycle;
  e.node = node;
  return Add(e);
}

DynamicsSchedule& DynamicsSchedule::DriftLossTo(int cycle, double target,
                                                int over_cycles) {
  DynamicsEvent e;
  e.kind = DynamicsEvent::Kind::kLossDrift;
  e.cycle = cycle;
  e.loss = target;
  e.duration = over_cycles;
  return Add(e);
}

DynamicsSchedule& DynamicsSchedule::BurstAt(int cycle, NodeId center,
                                            int radius_hops, double loss,
                                            int duration) {
  DynamicsEvent e;
  e.kind = DynamicsEvent::Kind::kLossBurst;
  e.cycle = cycle;
  e.node = center;
  e.radius_hops = radius_hops;
  e.loss = loss;
  e.duration = duration;
  return Add(e);
}

DynamicsSchedule& DynamicsSchedule::BlackoutAt(int cycle, NodeId center,
                                               double radius_m,
                                               int duration) {
  DynamicsEvent e;
  e.kind = DynamicsEvent::Kind::kRegionBlackout;
  e.cycle = cycle;
  e.node = center;
  e.radius_m = radius_m;
  e.duration = duration;
  return Add(e);
}

DynamicsSchedule& DynamicsSchedule::ArriveAt(int cycle, int slot,
                                             int template_id) {
  DynamicsEvent e;
  e.kind = DynamicsEvent::Kind::kQueryArrival;
  e.cycle = cycle;
  e.slot = slot;
  e.template_id = template_id;
  return Add(e);
}

DynamicsSchedule& DynamicsSchedule::DepartAt(int cycle, int slot) {
  DynamicsEvent e;
  e.kind = DynamicsEvent::Kind::kQueryDeparture;
  e.cycle = cycle;
  e.slot = slot;
  return Add(e);
}

DynamicsSchedule& DynamicsSchedule::ShiftSelectivityAt(int cycle,
                                                       double sigma_s,
                                                       double sigma_t,
                                                       double sigma_st) {
  DynamicsEvent e;
  e.kind = DynamicsEvent::Kind::kSelectivityShift;
  e.cycle = cycle;
  e.sigma_s = sigma_s;
  e.sigma_t = sigma_t;
  e.sigma_st = sigma_st;
  return Add(e);
}

DynamicsSchedule& DynamicsSchedule::Add(DynamicsEvent event) {
  ASPEN_CHECK_GE(event.cycle, 0);
  events_.push_back(event);
  return *this;
}

int DynamicsSchedule::num_query_arrivals() const {
  int n = 0;
  for (const DynamicsEvent& e : events_) {
    if (e.kind == DynamicsEvent::Kind::kQueryArrival) ++n;
  }
  return n;
}

int DynamicsSchedule::num_query_departures() const {
  int n = 0;
  for (const DynamicsEvent& e : events_) {
    if (e.kind == DynamicsEvent::Kind::kQueryDeparture) ++n;
  }
  return n;
}

DynamicsSchedule DynamicsSchedule::RandomChurn(const net::Topology& topology,
                                               int cycles, double rate,
                                               int down_cycles,
                                               uint64_t seed) {
  ASPEN_CHECK_GE(down_cycles, 1);
  DynamicsSchedule out;
  Rng rng(seed);
  const int n = topology.num_nodes();
  std::vector<int> down_until(n, -1);  // cycle at which the node recovers
  for (int c = 0; c < cycles; ++c) {
    // The base station (node 0) never churns: it is the query sink.
    for (NodeId u = 1; u < n; ++u) {
      if (down_until[u] > c) continue;  // still down this cycle
      if (!rng.Bernoulli(rate)) continue;
      out.FailAt(c, u);
      out.RecoverAt(c + down_cycles, u);
      down_until[u] = c + down_cycles;
    }
  }
  // Recovery events past `cycles` are kept: a run longer than the churn
  // horizon still heals, a shorter one simply never reaches them.
  return out;
}

DynamicsSchedule DynamicsSchedule::QueryChurn(
    const QueryChurnOptions& options) {
  ASPEN_CHECK_GE(options.start_cycle, 0);
  ASPEN_CHECK_GT(options.waves, 0);
  ASPEN_CHECK_GT(options.arrivals_per_wave, 0);
  ASPEN_CHECK_GT(options.wave_period, 1);
  ASPEN_CHECK_GE(options.min_lifetime, 1);
  ASPEN_CHECK_GE(options.max_lifetime, options.min_lifetime);
  ASPEN_CHECK_GT(options.num_templates, 0);
  DynamicsSchedule out;
  Rng rng(options.seed);
  // Every instance must depart strictly inside its own wave window, so the
  // occupancy observed between waves is a steady baseline: clamp lifetimes
  // and arrival offsets accordingly.
  const int max_life =
      std::min(options.max_lifetime, options.wave_period - 1);
  const int min_life = std::min(options.min_lifetime, max_life);
  int slot = 0;
  for (int w = 0; w < options.waves; ++w) {
    const int wave_start = options.start_cycle + w * options.wave_period;
    for (int q = 0; q < options.arrivals_per_wave; ++q) {
      const int life =
          min_life + static_cast<int>(rng.UniformInt(max_life - min_life + 1));
      const int max_offset = options.wave_period - life - 1;
      const int offset =
          max_offset > 0 ? static_cast<int>(rng.UniformInt(max_offset + 1))
                         : 0;
      const int tmpl = static_cast<int>(rng.UniformInt(options.num_templates));
      out.ArriveAt(wave_start + offset, slot, tmpl);
      out.DepartAt(wave_start + offset + life, slot);
      ++slot;
    }
  }
  return out;
}

ScenarioDriver::ScenarioDriver(net::Network* network,
                               const DynamicsSchedule* schedule)
    : net_(network), ordered_(schedule->events()) {
  ASPEN_CHECK(network != nullptr);
  ASPEN_CHECK(schedule != nullptr);
  std::stable_sort(ordered_.begin(), ordered_.end(),
                   [](const DynamicsEvent& a, const DynamicsEvent& b) {
                     return a.cycle < b.cycle;
                   });
  fail_depth_.assign(network->topology().num_nodes(), 0);
}

Status ScenarioDriver::set_query_host(QueryHost* host) {
  host_ = host;
  if (host_ == nullptr) return Status::OK();
  // Selectivity shifts dispatch now, not at their cycle: the workload's
  // global switch is indexed by cycle, so registering it ahead of time
  // yields the same trace at every pipeline depth, whereas waiting for the
  // cycle-N hooks would race a depth-d scheduler that already sampled
  // cycle N. Apply() then treats the event as a no-op.
  for (const DynamicsEvent& e : ordered_) {
    if (e.kind != DynamicsEvent::Kind::kSelectivityShift) continue;
    ASPEN_RETURN_NOT_OK(
        host_->OnSelectivityShift(e.cycle, e.sigma_s, e.sigma_t, e.sigma_st));
    ++shifts_applied_;
  }
  return Status::OK();
}

void ScenarioDriver::FailOne(NodeId node) {
  if (node <= 0 || node >= net_->topology().num_nodes()) return;
  ++fail_depth_[node];
  if (!net_->IsFailed(node)) {
    net_->FailNode(node);
    ++failures_applied_;
  }
}

void ScenarioDriver::RecoverOne(NodeId node) {
  if (node <= 0 || node >= net_->topology().num_nodes()) return;
  if (fail_depth_[node] == 0) return;  // not held down by this driver
  if (--fail_depth_[node] > 0) return;  // another scripted failure holds it
  if (net_->IsFailed(node)) {
    net_->ReviveNode(node);
    ++recoveries_applied_;
  }
}

Status ScenarioDriver::Apply(const DynamicsEvent& e, int cycle) {
  const net::Topology& topo = net_->topology();
  switch (e.kind) {
    case DynamicsEvent::Kind::kFailNode:
      FailOne(e.node);
      break;
    case DynamicsEvent::Kind::kRecoverNode:
      RecoverOne(e.node);
      break;
    case DynamicsEvent::Kind::kQueryArrival:
      if (host_ == nullptr) {
        return Status::FailedPrecondition(
            "scenario: query arrival event but no QueryHost attached");
      }
      ASPEN_RETURN_NOT_OK(host_->OnQueryArrival(e.slot, e.template_id));
      ++arrivals_applied_;
      break;
    case DynamicsEvent::Kind::kQueryDeparture:
      if (host_ == nullptr) {
        return Status::FailedPrecondition(
            "scenario: query departure event but no QueryHost attached");
      }
      ASPEN_RETURN_NOT_OK(host_->OnQueryDeparture(e.slot));
      ++departures_applied_;
      break;
    case DynamicsEvent::Kind::kLossDrift: {
      ActiveDrift d;
      d.start_cycle = cycle;
      d.duration = e.duration;
      d.from = net_->options().loss_prob;
      d.to = e.loss;
      if (d.duration <= 0) {
        net_->set_loss_prob(d.to);
      } else {
        drifts_.push_back(d);
      }
      break;
    }
    case DynamicsEvent::Kind::kLossBurst: {
      if (e.node < 0 || e.node >= topo.num_nodes()) break;
      if (e.duration <= 0) break;  // a zero-cycle burst affects nothing
      // BFS out to radius_hops; afflict every link touching the region.
      std::vector<int> dist(topo.num_nodes(), -1);
      std::queue<NodeId> frontier;
      dist[e.node] = 0;
      frontier.push(e.node);
      while (!frontier.empty()) {
        NodeId u = frontier.front();
        frontier.pop();
        if (dist[u] == e.radius_hops) continue;
        for (NodeId v : topo.neighbors(u)) {
          if (dist[v] < 0) {
            dist[v] = dist[u] + 1;
            frontier.push(v);
          }
        }
      }
      ActiveBurst burst;
      burst.end_cycle = cycle + e.duration;
      burst.loss = e.loss;
      for (NodeId u = 0; u < topo.num_nodes(); ++u) {
        if (dist[u] < 0) continue;
        for (NodeId v : topo.neighbors(u)) {
          // When both endpoints are in the region, enumerate the link only
          // from its lower-id endpoint.
          if (dist[v] >= 0 && v < u) continue;
          net_->SetLinkLoss(u, v, e.loss);
          net_->SetLinkLoss(v, u, e.loss);
          burst.links.push_back({u, v});
          burst.links.push_back({v, u});
        }
      }
      bursts_.push_back(std::move(burst));
      break;
    }
    case DynamicsEvent::Kind::kSelectivityShift:
      // Already dispatched eagerly by set_query_host (pipeline-safe); a
      // schedule with shifts but no host attached cannot honor them.
      if (host_ == nullptr) {
        return Status::FailedPrecondition(
            "scenario: selectivity-shift event but no QueryHost attached");
      }
      break;
    case DynamicsEvent::Kind::kRegionBlackout: {
      if (e.node < 0 || e.node >= topo.num_nodes()) break;
      if (e.duration <= 0) break;  // a zero-cycle blackout affects nothing
      ActiveBlackout bo;
      bo.end_cycle = cycle + e.duration;
      for (NodeId u = 1; u < topo.num_nodes(); ++u) {
        if (topo.DistanceBetween(e.node, u) > e.radius_m) continue;
        // Already-down nodes are held too (fail depth), so an overlapping
        // recovery cannot revive them while the blackout is active.
        FailOne(u);
        bo.nodes.push_back(u);
      }
      blackouts_.push_back(std::move(bo));
      break;
    }
  }
  return Status::OK();
}

Status ScenarioDriver::OnSample(int cycle) {
  // Scenario mutation is a sequential-phase activity: the driver is
  // attached at the front of the scheduler, so its hook runs before any
  // query samples, on the scheduler thread.
  common::SequentialPhaseScope seq;
  // Expire bursts and blackouts first so a same-cycle re-burst of the same
  // region takes effect rather than being immediately cleared.
  bool burst_expired = false;
  for (auto it = bursts_.begin(); it != bursts_.end();) {
    if (cycle >= it->end_cycle) {
      for (const auto& [u, v] : it->links) net_->ClearLinkLoss(u, v);
      it = bursts_.erase(it);
      burst_expired = true;
    } else {
      ++it;
    }
  }
  if (burst_expired) {
    // Re-assert surviving bursts: an expired burst may have cleared links a
    // still-active overlapping burst owns. Activation order, so on shared
    // links the later burst wins — same rule as at application time.
    for (const ActiveBurst& b : bursts_) {
      for (const auto& [u, v] : b.links) net_->SetLinkLoss(u, v, b.loss);
    }
  }
  for (auto it = blackouts_.begin(); it != blackouts_.end();) {
    if (cycle >= it->end_cycle) {
      for (NodeId u : it->nodes) RecoverOne(u);
      it = blackouts_.erase(it);
    } else {
      ++it;
    }
  }
  while (next_event_ < ordered_.size() &&
         ordered_[next_event_].cycle <= cycle) {
    ASPEN_RETURN_NOT_OK(Apply(ordered_[next_event_], cycle));
    ++next_event_;
  }
  // Advance active drifts (linear ramp, exact endpoint on completion).
  for (auto it = drifts_.begin(); it != drifts_.end();) {
    int elapsed = cycle - it->start_cycle;
    if (elapsed >= it->duration) {
      net_->set_loss_prob(it->to);
      it = drifts_.erase(it);
    } else {
      double f = static_cast<double>(elapsed) / it->duration;
      net_->set_loss_prob(it->from + (it->to - it->from) * f);
      ++it;
    }
  }
  return Status::OK();
}

Status ScenarioDriver::OnDeliver(int cycle) {
  (void)cycle;
  return Status::OK();
}

Status ScenarioDriver::OnLearn(int cycle) {
  (void)cycle;
  return Status::OK();
}

}  // namespace scenario
}  // namespace aspen
