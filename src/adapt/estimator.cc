#include "adapt/estimator.h"

#include <algorithm>
#include <cmath>

namespace aspen {
namespace adapt {

workload::SelectivityParams SelectivityEstimator::Estimate(
    int w, const workload::SelectivityParams& prior) const {
  workload::SelectivityParams est = prior;
  if (cycles_ > 0) {
    est.sigma_s = static_cast<double>(ns_) / cycles_;
    est.sigma_t = static_cast<double>(nt_) / cycles_;
  }
  if (ns_ + nt_ > 0) {
    est.sigma_st =
        static_cast<double>(nst_) / (static_cast<double>(w) * (ns_ + nt_));
  }
  est.sigma_s = std::clamp(est.sigma_s, 1e-4, 1.0);
  est.sigma_t = std::clamp(est.sigma_t, 1e-4, 1.0);
  est.sigma_st = std::clamp(est.sigma_st, 1e-4, 1.0);
  return est;
}

bool SelectivityEstimator::Diverged(const workload::SelectivityParams& fresh,
                                    const workload::SelectivityParams& ref,
                                    double threshold) {
  auto component = [&](double f, double r) {
    if (r <= 0.0) return f > 0.0;
    return std::abs(f - r) / r > threshold;
  };
  return component(fresh.sigma_s, ref.sigma_s) ||
         component(fresh.sigma_t, ref.sigma_t) ||
         component(fresh.sigma_st, ref.sigma_st);
}

}  // namespace adapt
}  // namespace aspen
