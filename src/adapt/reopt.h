// The continuous re-optimization loop (Section 6 closed at runtime).
//
// A query's plan used to be frozen at admission: the cost model and the
// selectivity estimators ran once, up front, and the paper's 33%-divergence
// trigger was never consulted again. ReoptController is the per-query piece
// that closes the loop: it paces periodic re-estimation off the query's own
// learn ticks (so a query admitted mid-run on a shared medium re-optimizes
// on *its* clock, not the medium's), gates each pass on the divergence
// trigger, and accounts the planned migrations the executor derives from a
// pass. The executor consumes it from the scheduler's sequential
// re-optimize hook (sim::CycleParticipant::OnReoptimize), so every decision
// is made in the exchange phase with nothing in flight — which is what
// keeps migrations byte-identical across shard counts and pipeline depths.

#ifndef ASPEN_ADAPT_REOPT_H_
#define ASPEN_ADAPT_REOPT_H_

#include <cstdint>

#include "adapt/estimator.h"
#include "workload/selectivity.h"

namespace aspen {
namespace adapt {

/// \brief Paces and gates one query's continuous re-optimization.
///
/// Tick() is called once per learn phase (after estimators ticked); the
/// controller arms itself every `interval` ticks. The executor's
/// re-optimize hook drains the armed flag with TakeDue() and runs a pass:
/// for each placement it asks ShouldReplan() whether the live estimate
/// diverged from the estimate the placement was chosen with, and only then
/// re-runs the cost model. `interval <= 0` disables the loop entirely.
class ReoptController {
 public:
  ReoptController() = default;
  ReoptController(int interval, double threshold)
      : interval_(interval), threshold_(threshold) {}

  bool enabled() const { return interval_ > 0; }
  int interval() const { return interval_; }
  double threshold() const { return threshold_; }

  /// One learn phase elapsed for this query. Arms a pass every `interval`
  /// ticks (query-local, so mid-run admission does not skew the period).
  void Tick() {
    if (!enabled()) return;
    if (++ticks_ % interval_ == 0) due_ = true;
  }

  /// True exactly once per armed period: the caller runs a pass now.
  bool TakeDue() {
    const bool due = due_;
    due_ = false;
    if (due) ++passes_;
    return due;
  }

  /// The paper's Section 6 trigger: replan a pair only when the fresh
  /// estimate diverged from the placement-time reference past the
  /// configured threshold.
  bool ShouldReplan(const workload::SelectivityParams& fresh,
                    const workload::SelectivityParams& reference) const {
    return SelectivityEstimator::Diverged(fresh, reference, threshold_);
  }

  void RecordPlanned() { ++planned_; }
  void RecordCompleted() { ++completed_; }
  void RecordAborted() { ++aborted_; }

  int64_t ticks() const { return ticks_; }
  uint64_t passes() const { return passes_; }
  uint64_t planned() const { return planned_; }
  uint64_t completed() const { return completed_; }
  uint64_t aborted() const { return aborted_; }

 private:
  int interval_ = 0;
  double threshold_ = 0.33;
  int64_t ticks_ = 0;
  bool due_ = false;
  uint64_t passes_ = 0;     ///< armed periods consumed via TakeDue()
  uint64_t planned_ = 0;    ///< migrations entered into the 3-phase protocol
  uint64_t completed_ = 0;  ///< migrations that finished all three phases
  uint64_t aborted_ = 0;    ///< migrations abandoned mid-protocol (dead site)
};

}  // namespace adapt
}  // namespace aspen

#endif  // ASPEN_ADAPT_REOPT_H_
