// Online selectivity estimation (Section 6).
//
// A join node tracks, per producer pair, the tuples received from each side
// (Ns, Nt), the results produced (Nst) and the sampling cycles observed (T),
// then re-estimates:
//   sigma_st = Nst / (w * (Ns + Nt))      sigma_p = Np / T
// Counters are periodically reset so learning tracks a local time span.

#ifndef ASPEN_ADAPT_ESTIMATOR_H_
#define ASPEN_ADAPT_ESTIMATOR_H_

#include <cstdint>

#include "workload/selectivity.h"

namespace aspen {
namespace adapt {

/// \brief Counter-based estimator for one (s, t) pair.
class SelectivityEstimator {
 public:
  /// An S-side tuple arrived, producing `matches` join results.
  void RecordS(int matches) {
    ns_ += 1;
    nst_ += matches;
  }
  /// A T-side tuple arrived, producing `matches` join results.
  void RecordT(int matches) {
    nt_ += 1;
    nst_ += matches;
  }
  /// One sampling cycle elapsed.
  void Tick() { ++cycles_; }

  /// Resets all counters (periodic local-time-span learning).
  void Reset() { ns_ = nt_ = nst_ = cycles_ = 0; }

  int64_t ns() const { return ns_; }
  int64_t nt() const { return nt_; }
  int64_t nst() const { return nst_; }
  int64_t cycles() const { return cycles_; }

  /// \brief Current estimates; components with no evidence yet fall back to
  /// `prior`. Estimates are clamped into (0, 1] — they are probabilities,
  /// but bursty counters can transiently exceed 1.
  workload::SelectivityParams Estimate(
      int w, const workload::SelectivityParams& prior) const;

  /// \brief The 33%-divergence trigger: true when any component of `fresh`
  /// differs from `reference` by more than `threshold` (relative).
  static bool Diverged(const workload::SelectivityParams& fresh,
                       const workload::SelectivityParams& reference,
                       double threshold);

 private:
  int64_t ns_ = 0;
  int64_t nt_ = 0;
  int64_t nst_ = 0;
  int64_t cycles_ = 0;
};

}  // namespace adapt
}  // namespace aspen

#endif  // ASPEN_ADAPT_ESTIMATOR_H_
