// Public facade: run a (workload, algorithm) experiment end to end.
//
// This is the entry point downstream users and every benchmark use:
//   auto wl = workload::Workload::MakeQuery1(&topo, {0.5, 0.5, 0.2}, 3, 42);
//   auto stats = core::RunExperiment(*wl, opts, /*cycles=*/100);
// Multi-seed averaging matches the paper's methodology (9 runs, 95% CIs).
// Scripted network dynamics (node churn, loss drift, bursts, blackouts)
// attach through ExperimentOptions::dynamics — see scenario/dynamics.h.

#ifndef ASPEN_CORE_ENGINE_H_
#define ASPEN_CORE_ENGINE_H_

#include <functional>
#include <vector>

#include "common/status.h"
#include "join/executor.h"
#include "join/medium.h"
#include "scenario/dynamics.h"
#include "workload/workload.h"

namespace aspen {
namespace core {

/// \brief Everything configuring one experiment beyond the workload.
struct ExperimentOptions {
  join::ExecutorOptions executor;
  /// Optional scripted network dynamics, replayed from the cycle clock
  /// (events for cycle N apply before cycle N's sample phase). Not owned;
  /// must outlive the call. RunAveraged replays the same schedule in every
  /// repetition.
  const scenario::DynamicsSchedule* dynamics = nullptr;
};

/// \brief Initiates and runs one experiment; returns its metrics.
Result<join::RunStats> RunExperiment(const workload::Workload& workload,
                                     const ExperimentOptions& options,
                                     int sampling_cycles);

/// Convenience overload without scenario dynamics.
Result<join::RunStats> RunExperiment(const workload::Workload& workload,
                                     const join::ExecutorOptions& options,
                                     int sampling_cycles);

// ---- service mode -----------------------------------------------------------
//
// The open-ended counterpart of RunExperiment: instead of one query run to
// completion, a SharedMedium executes an evolving population of queries —
// admissions and departures scripted as scenario events (see
// scenario::DynamicsSchedule::QueryChurn) — over a pool of workload
// templates. This is the paper's multi-concurrent-query setting operated
// as a long-running service rather than a batch experiment.

/// \brief Configuration of one service run.
struct ServiceOptions {
  /// Executor configuration applied to every admitted query. (The shards
  /// knob is taken from `medium`, not from here.)
  join::ExecutorOptions executor;
  /// Network configuration of the shared medium.
  net::NetworkOptions network;
  /// Medium configuration; allow_idle is forced on (a service idles
  /// between arrivals).
  join::MediumOptions medium;
  /// Scripted dynamics, including kQueryArrival/kQueryDeparture events.
  /// Not owned; must outlive the call.
  const scenario::DynamicsSchedule* dynamics = nullptr;
};

/// \brief Metrics of one service run: throughput inputs, churn counts, and
/// the data-plane occupancy trajectory that proves bounded footprint.
struct ServiceStats {
  int cycles = 0;
  int arrivals = 0;
  int departures = 0;
  /// Queries still live when the run ended (the resident set).
  int resident_queries = 0;
  /// Sum of results over every query, departed (ledger) and resident.
  uint64_t total_results = 0;
  uint64_t total_bytes = 0;
  uint64_t total_messages = 0;
  /// Live-route / payload-slab / frame-slab occupancy: one sample per
  /// arrival event, taken just *before* the admission (a steady
  /// checkpoint — earlier teardowns have been swept by then), plus one
  /// final sample after the run's straggler drain.
  struct OccupancySample {
    int cycle = 0;
    size_t routes_live = 0;
    size_t mcasts_live = 0;
    size_t payload_live = 0;
    size_t payload_capacity = 0;
    size_t frame_capacity = 0;
  };
  std::vector<OccupancySample> occupancy;
  /// Peak live-route count observed at any sample point.
  size_t peak_routes_live = 0;
  /// Finalized per-query records of every departed query.
  std::vector<join::SharedMedium::QueryRecord> ledger;
};

/// \brief An open-ended query service: a SharedMedium plus the scenario
/// driver that replays query arrivals/departures against it. Run() may be
/// called repeatedly to continue the service (benchmarks measure a steady
/// tail block after the churn horizon this way). Deterministic:
/// byte-identical results for any MediumOptions::shards value.
class ServiceRunner : private scenario::QueryHost {
 public:
  /// Validates the template pool (non-null, one topology) and builds the
  /// medium and driver. `options.dynamics` (if any) must outlive the
  /// runner; templates must too.
  static Result<std::unique_ptr<ServiceRunner>> Create(
      std::vector<const workload::Workload*> templates,
      const ServiceOptions& options);

  /// Continues the service for `cycles` sampling cycles.
  Status Run(int cycles);

  join::SharedMedium& medium() { return *medium_; }

  /// Churn counters and the occupancy trajectory collected so far.
  const ServiceStats& progress() const { return stats_; }

  /// Full metrics snapshot: progress() plus totals over the ledger and
  /// resident queries, and a fresh final occupancy sample.
  ServiceStats Finalize();

 private:
  ServiceRunner(std::vector<const workload::Workload*> templates,
                const ServiceOptions& options);

  Status OnQueryArrival(int slot, int template_id) override;
  Status OnQueryDeparture(int slot) override;
  void SampleOccupancy();

  std::vector<const workload::Workload*> templates_;
  join::ExecutorOptions exec_options_;
  std::unique_ptr<join::SharedMedium> medium_;
  std::unique_ptr<scenario::ScenarioDriver> driver_;
  std::vector<int> slot_to_query_;
  ServiceStats stats_;
};

/// \brief One-shot service run: Create + Run(cycles) + Finalize.
Result<ServiceStats> RunService(
    const std::vector<const workload::Workload*>& templates,
    const ServiceOptions& options, int cycles);

/// \brief Mean metrics over repeated runs, with 95% confidence half-widths
/// for the headline traffic numbers.
struct AggregatedStats {
  std::string algorithm;
  int runs = 0;
  double total_bytes = 0, total_bytes_ci = 0;
  double base_bytes = 0, base_bytes_ci = 0;
  double max_node_bytes = 0;
  double total_messages = 0, total_messages_ci = 0;
  double base_messages = 0;
  double max_node_messages = 0;
  double initiation_bytes = 0;
  double computation_bytes = 0;
  double results = 0;
  double avg_result_delay_cycles = 0;
  double max_result_delay_cycles = 0;
  double migrations = 0;
  double failovers = 0;
};

/// Builds a fresh workload for a given run seed (topology may be shared or
/// regenerated inside, caller's choice). Repetitions execute on a thread
/// pool, so the factory must be safe to invoke concurrently — sharing an
/// immutable Topology is fine; sharing mutable state is not.
using WorkloadFactory =
    std::function<Result<workload::Workload>(uint64_t seed)>;

/// \brief Runs `runs` independent repetitions (seeds seed0, seed0+1, ...)
/// in parallel on up to `num_threads` workers (0 = hardware concurrency)
/// and aggregates. Each repetition owns its workload, network, RNG and (if
/// a schedule is configured) scenario driver, and aggregation happens in
/// seed order, so results are bit-identical for any thread count. Any
/// failing repetition fails the whole call. When the executor options
/// request sharded runs (ExecutorOptions::knobs.shards > 1), the repetition
/// worker count is divided by the shard count so the two parallelism
/// levels together stay near the hardware concurrency.
Result<AggregatedStats> RunAveraged(const WorkloadFactory& factory,
                                    const ExperimentOptions& options,
                                    int sampling_cycles, int runs,
                                    uint64_t seed0 = 1, int num_threads = 0);

/// Convenience overload without scenario dynamics.
Result<AggregatedStats> RunAveraged(const WorkloadFactory& factory,
                                    const join::ExecutorOptions& options,
                                    int sampling_cycles, int runs,
                                    uint64_t seed0 = 1, int num_threads = 0);

}  // namespace core
}  // namespace aspen

#endif  // ASPEN_CORE_ENGINE_H_
