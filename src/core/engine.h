// Public facade: run a (workload, algorithm) experiment end to end.
//
// This is the entry point downstream users and every benchmark use:
//   auto wl = workload::Workload::MakeQuery1(&topo, {0.5, 0.5, 0.2}, 3, 42);
//   auto stats = core::RunExperiment(*wl, opts, /*cycles=*/100);
// Multi-seed averaging matches the paper's methodology (9 runs, 95% CIs).
// Scripted network dynamics (node churn, loss drift, bursts, blackouts)
// attach through ExperimentOptions::dynamics — see scenario/dynamics.h.

#ifndef ASPEN_CORE_ENGINE_H_
#define ASPEN_CORE_ENGINE_H_

#include <functional>

#include "common/status.h"
#include "join/executor.h"
#include "scenario/dynamics.h"
#include "workload/workload.h"

namespace aspen {
namespace core {

/// \brief Everything configuring one experiment beyond the workload.
struct ExperimentOptions {
  join::ExecutorOptions executor;
  /// Optional scripted network dynamics, replayed from the cycle clock
  /// (events for cycle N apply before cycle N's sample phase). Not owned;
  /// must outlive the call. RunAveraged replays the same schedule in every
  /// repetition.
  const scenario::DynamicsSchedule* dynamics = nullptr;
};

/// \brief Initiates and runs one experiment; returns its metrics.
Result<join::RunStats> RunExperiment(const workload::Workload& workload,
                                     const ExperimentOptions& options,
                                     int sampling_cycles);

/// Convenience overload without scenario dynamics.
Result<join::RunStats> RunExperiment(const workload::Workload& workload,
                                     const join::ExecutorOptions& options,
                                     int sampling_cycles);

/// \brief Mean metrics over repeated runs, with 95% confidence half-widths
/// for the headline traffic numbers.
struct AggregatedStats {
  std::string algorithm;
  int runs = 0;
  double total_bytes = 0, total_bytes_ci = 0;
  double base_bytes = 0, base_bytes_ci = 0;
  double max_node_bytes = 0;
  double total_messages = 0, total_messages_ci = 0;
  double base_messages = 0;
  double max_node_messages = 0;
  double initiation_bytes = 0;
  double computation_bytes = 0;
  double results = 0;
  double avg_result_delay_cycles = 0;
  double max_result_delay_cycles = 0;
  double migrations = 0;
  double failovers = 0;
};

/// Builds a fresh workload for a given run seed (topology may be shared or
/// regenerated inside, caller's choice). Repetitions execute on a thread
/// pool, so the factory must be safe to invoke concurrently — sharing an
/// immutable Topology is fine; sharing mutable state is not.
using WorkloadFactory =
    std::function<Result<workload::Workload>(uint64_t seed)>;

/// \brief Runs `runs` independent repetitions (seeds seed0, seed0+1, ...)
/// in parallel on up to `num_threads` workers (0 = hardware concurrency)
/// and aggregates. Each repetition owns its workload, network, RNG and (if
/// a schedule is configured) scenario driver, and aggregation happens in
/// seed order, so results are bit-identical for any thread count. Any
/// failing repetition fails the whole call. When the executor options
/// request sharded runs (ExecutorOptions::shards > 1), the repetition
/// worker count is divided by the shard count so the two parallelism
/// levels together stay near the hardware concurrency.
Result<AggregatedStats> RunAveraged(const WorkloadFactory& factory,
                                    const ExperimentOptions& options,
                                    int sampling_cycles, int runs,
                                    uint64_t seed0 = 1, int num_threads = 0);

/// Convenience overload without scenario dynamics.
Result<AggregatedStats> RunAveraged(const WorkloadFactory& factory,
                                    const join::ExecutorOptions& options,
                                    int sampling_cycles, int runs,
                                    uint64_t seed0 = 1, int num_threads = 0);

}  // namespace core
}  // namespace aspen

#endif  // ASPEN_CORE_ENGINE_H_
