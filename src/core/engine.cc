#include "core/engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <optional>
#include <vector>

#include "common/parallel.h"
#include "net/data_plane.h"

namespace aspen {
namespace core {

Result<join::RunStats> RunExperiment(const workload::Workload& workload,
                                     const ExperimentOptions& options,
                                     int sampling_cycles) {
  // The experiment owns the data-plane arena (route table + payload pools)
  // for its run. A caller-supplied plane (RunAveraged's per-worker arena)
  // is recycled: emptied here, its capacity reused by this run.
  net::DataPlane local_plane;
  ExperimentOptions run_options = options;
  if (run_options.executor.data_plane == nullptr) {
    run_options.executor.data_plane = &local_plane;
  } else {
    run_options.executor.data_plane->Reset();
  }
  join::JoinExecutor exec(&workload, run_options.executor);
  ASPEN_RETURN_NOT_OK(exec.Initiate());
  std::optional<scenario::ScenarioDriver> driver;
  if (options.dynamics != nullptr && !options.dynamics->empty()) {
    driver.emplace(&exec.network(), options.dynamics);
    // Front of the participant list: cycle-N events mutate the network
    // before any sampling at cycle N.
    exec.scheduler()->AttachFront(&*driver);
  }
  ASPEN_RETURN_NOT_OK(exec.RunCycles(sampling_cycles));
  return exec.Stats();
}

Result<join::RunStats> RunExperiment(const workload::Workload& workload,
                                     const join::ExecutorOptions& options,
                                     int sampling_cycles) {
  ExperimentOptions exp;
  exp.executor = options;
  return RunExperiment(workload, exp, sampling_cycles);
}

namespace {

struct Welford {
  double sum = 0, sumsq = 0;
  int n = 0;
  void Add(double x) {
    sum += x;
    sumsq += x * x;
    ++n;
  }
  double Mean() const { return n > 0 ? sum / n : 0.0; }
  /// 95% CI half-width (normal approximation; the paper reports 95% CIs
  /// over 9 runs).
  double Ci95() const {
    if (n < 2) return 0.0;
    double var = (sumsq - sum * sum / n) / (n - 1);
    return 1.96 * std::sqrt(std::max(var, 0.0) / n);
  }
};

}  // namespace

Result<AggregatedStats> RunAveraged(const WorkloadFactory& factory,
                                    const ExperimentOptions& options,
                                    int sampling_cycles, int runs,
                                    uint64_t seed0, int num_threads) {
  // Repetitions are embarrassingly parallel: each owns its workload,
  // network and RNG. Run them on the pool, then aggregate serially in seed
  // order so the floating-point reduction is identical for any thread
  // count.
  //
  // Sharded repetitions multiply the thread footprint: each repetition
  // spins up its own shard pool, so divide the repetition workers by the
  // shard count to keep the total near the hardware concurrency. (The
  // result is unaffected: both levels are bit-deterministic.)
  if (num_threads <= 0) num_threads = common::DefaultThreadCount();
  if (options.executor.shards > 1) {
    num_threads = std::max(1, num_threads / options.executor.shards);
  }
  std::vector<Result<join::RunStats>> outcomes(
      runs, Result<join::RunStats>(Status::Internal("repetition not run")));
  // Fail fast: once any repetition errors, later ones are skipped (indices
  // are claimed in seed order, so the first non-OK outcome below is always
  // a real error, never a skipped slot).
  std::atomic<bool> failed{false};
  common::ParallelFor(runs, num_threads, [&](int r) {
    if (failed.load(std::memory_order_relaxed)) return;
    auto wl = factory(seed0 + r);
    if (!wl.ok()) {
      outcomes[r] = wl.status();
      failed.store(true, std::memory_order_relaxed);
      return;
    }
    ExperimentOptions opts = options;
    opts.executor.seed = seed0 + r;
    // One data-plane arena per worker thread, reused across the
    // repetitions that thread claims: slab and route-table capacity warmed
    // up by one repetition stays hot for the next.
    thread_local net::DataPlane worker_plane;
    opts.executor.data_plane = &worker_plane;
    outcomes[r] = RunExperiment(*wl, opts, sampling_cycles);
    if (!outcomes[r].ok()) failed.store(true, std::memory_order_relaxed);
  });
  AggregatedStats agg;
  Welford total_b, base_b, max_b, total_m, base_m, max_m, init_b, comp_b,
      results, delay, max_delay, migrations, failovers;
  for (int r = 0; r < runs; ++r) {
    ASPEN_RETURN_NOT_OK(outcomes[r].status());
    const join::RunStats& st = *outcomes[r];
    agg.algorithm = st.algorithm;
    total_b.Add(static_cast<double>(st.total_bytes));
    base_b.Add(static_cast<double>(st.base_bytes));
    max_b.Add(static_cast<double>(st.max_node_bytes));
    total_m.Add(static_cast<double>(st.total_messages));
    base_m.Add(static_cast<double>(st.base_messages));
    max_m.Add(static_cast<double>(st.max_node_messages));
    init_b.Add(static_cast<double>(st.initiation_bytes));
    comp_b.Add(static_cast<double>(st.computation_bytes));
    results.Add(static_cast<double>(st.results));
    delay.Add(st.avg_result_delay_cycles);
    max_delay.Add(st.max_result_delay_cycles);
    migrations.Add(static_cast<double>(st.migrations));
    failovers.Add(static_cast<double>(st.failovers));
  }
  agg.runs = runs;
  agg.total_bytes = total_b.Mean();
  agg.total_bytes_ci = total_b.Ci95();
  agg.base_bytes = base_b.Mean();
  agg.base_bytes_ci = base_b.Ci95();
  agg.max_node_bytes = max_b.Mean();
  agg.total_messages = total_m.Mean();
  agg.total_messages_ci = total_m.Ci95();
  agg.base_messages = base_m.Mean();
  agg.max_node_messages = max_m.Mean();
  agg.initiation_bytes = init_b.Mean();
  agg.computation_bytes = comp_b.Mean();
  agg.results = results.Mean();
  agg.avg_result_delay_cycles = delay.Mean();
  agg.max_result_delay_cycles = max_delay.Mean();
  agg.migrations = migrations.Mean();
  agg.failovers = failovers.Mean();
  return agg;
}

Result<AggregatedStats> RunAveraged(const WorkloadFactory& factory,
                                    const join::ExecutorOptions& options,
                                    int sampling_cycles, int runs,
                                    uint64_t seed0, int num_threads) {
  ExperimentOptions exp;
  exp.executor = options;
  return RunAveraged(factory, exp, sampling_cycles, runs, seed0, num_threads);
}

}  // namespace core
}  // namespace aspen
