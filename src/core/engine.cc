#include "core/engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "net/data_plane.h"

namespace aspen {
namespace core {

Result<join::RunStats> RunExperiment(const workload::Workload& workload,
                                     const ExperimentOptions& options,
                                     int sampling_cycles) {
  // The experiment owns the data-plane arena (route table + payload pools)
  // for its run. A caller-supplied plane (RunAveraged's per-worker arena)
  // is recycled: emptied here, its capacity reused by this run.
  net::DataPlane local_plane;
  ExperimentOptions run_options = options;
  if (run_options.executor.data_plane == nullptr) {
    run_options.executor.data_plane = &local_plane;
  } else {
    // Recycling happens before this run's executor exists; nothing else
    // references the plane concurrently.
    common::SequentialPhaseScope seq;
    run_options.executor.data_plane->Reset();
  }
  join::JoinExecutor exec(&workload, run_options.executor);
  ASPEN_RETURN_NOT_OK(exec.Initiate());
  std::optional<scenario::ScenarioDriver> driver;
  if (options.dynamics != nullptr && !options.dynamics->empty()) {
    driver.emplace(&exec.network(), options.dynamics);
    // Front of the participant list: cycle-N events mutate the network
    // before any sampling at cycle N.
    exec.scheduler()->AttachFront(&*driver);
  }
  ASPEN_RETURN_NOT_OK(exec.RunCycles(sampling_cycles));
  return exec.Stats();
}

Result<join::RunStats> RunExperiment(const workload::Workload& workload,
                                     const join::ExecutorOptions& options,
                                     int sampling_cycles) {
  ExperimentOptions exp;
  exp.executor = options;
  return RunExperiment(workload, exp, sampling_cycles);
}

// ---- service mode ----------------------------------------------------------

ServiceRunner::ServiceRunner(
    std::vector<const workload::Workload*> templates,
    const ServiceOptions& options)
    : templates_(std::move(templates)), exec_options_(options.executor) {
  join::MediumOptions medium_opts = options.medium;
  medium_opts.allow_idle = true;  // a service idles between arrivals
  medium_ = std::make_unique<join::SharedMedium>(
      &templates_[0]->topology(), options.network, medium_opts);
  if (options.dynamics != nullptr && !options.dynamics->empty()) {
    driver_ = std::make_unique<scenario::ScenarioDriver>(&medium_->network(),
                                                         options.dynamics);
    medium_->scheduler()->AttachFront(driver_.get());
  }
  // The query host attaches in Create(): set_query_host dispatches eagerly
  // and returns a status, which a constructor cannot propagate.
}

Result<std::unique_ptr<ServiceRunner>> ServiceRunner::Create(
    std::vector<const workload::Workload*> templates,
    const ServiceOptions& options) {
  if (templates.empty()) {
    return Status::InvalidArgument("ServiceRunner: empty template pool");
  }
  const net::Topology* topo = &templates[0]->topology();
  for (const workload::Workload* wl : templates) {
    if (wl == nullptr) {
      return Status::InvalidArgument("ServiceRunner: null workload template");
    }
    if (&wl->topology() != topo) {
      return Status::InvalidArgument(
          "ServiceRunner: templates span multiple topologies");
    }
  }
  std::unique_ptr<ServiceRunner> runner(
      new ServiceRunner(std::move(templates), options));
  if (runner->driver_ != nullptr) {
    // Service templates are shared const workloads, so the runner keeps
    // QueryHost's default OnSelectivityShift: a schedule that scripts a
    // shift against a service run fails here, eagerly, with that message.
    ASPEN_RETURN_NOT_OK(runner->driver_->set_query_host(runner.get()));
  }
  return runner;
}

Status ServiceRunner::Run(int cycles) {
  ASPEN_RETURN_NOT_OK(medium_->RunCycles(cycles));
  stats_.cycles += cycles;
  return Status::OK();
}

Status ServiceRunner::OnQueryArrival(int slot, int template_id) {
  if (slot < 0 || template_id < 0) {
    return Status::InvalidArgument("service: negative query slot/template");
  }
  if (static_cast<size_t>(template_id) >= templates_.size()) {
    return Status::InvalidArgument(
        "service: template " + std::to_string(template_id) +
        " outside the pool of " + std::to_string(templates_.size()));
  }
  // Validate the slot before admitting anything: a duplicate must not
  // leave an orphaned live query behind. Slots are sparse handles (a
  // schedule may number residents far above its churn slots), but a typo'd
  // huge slot must fail cleanly rather than allocate the slot table.
  constexpr int kMaxSlot = 1 << 20;
  if (slot > kMaxSlot) {
    return Status::InvalidArgument("service: query slot " +
                                   std::to_string(slot) + " exceeds " +
                                   std::to_string(kMaxSlot));
  }
  if (static_cast<size_t>(slot) >= slot_to_query_.size()) {
    slot_to_query_.resize(slot + 1, -1);
  }
  if (slot_to_query_[slot] != -1) {
    return Status::AlreadyExists("service: query slot " +
                                 std::to_string(slot) + " already live");
  }
  // Steady-state checkpoint just before the admission: teardowns from
  // earlier waves have been swept by now, so this sample exposes any
  // monotonic occupancy growth across churn waves. Failed admissions pop
  // it again — the trajectory holds one sample per successful arrival.
  SampleOccupancy();
  auto admitted = medium_->TryAddQuery(templates_[template_id], exec_options_);
  if (!admitted.ok()) {
    stats_.occupancy.pop_back();
    return admitted.status();
  }
  join::JoinExecutor* exec = *admitted;
  Status init = exec->Initiate();
  if (!init.ok()) {
    // Roll the admission back: the medium must not retain a live query no
    // slot can ever address (never-initiated queries get no ledger entry).
    (void)medium_->RemoveQuery(exec->query_id());
    stats_.occupancy.pop_back();
    return init;
  }
  slot_to_query_[slot] = exec->query_id();
  ++stats_.arrivals;
  return Status::OK();
}

Status ServiceRunner::OnQueryDeparture(int slot) {
  if (slot < 0 || static_cast<size_t>(slot) >= slot_to_query_.size() ||
      slot_to_query_[slot] < 0) {
    return Status::NotFound("service: departure for unknown query slot " +
                            std::to_string(slot));
  }
  ASPEN_RETURN_NOT_OK(medium_->RemoveQuery(slot_to_query_[slot]));
  slot_to_query_[slot] = -1;
  ++stats_.departures;
  return Status::OK();
}

void ServiceRunner::SampleOccupancy() {
  ServiceStats::OccupancySample s;
  s.cycle = medium_->scheduler()->cycle();
  net::Network& net = medium_->network();
  s.routes_live = net.routes().live_paths();
  s.mcasts_live = net.routes().live_multicasts();
  s.payload_live = net.payloads().live();
  s.payload_capacity = net.payloads().capacity();
  s.frame_capacity = net.frame_slab_capacity();
  stats_.occupancy.push_back(s);
  stats_.peak_routes_live = std::max(stats_.peak_routes_live, s.routes_live);
}

ServiceStats ServiceRunner::Finalize() {
  // Final steady-state checkpoint: Run() ends with a straggler drain, so
  // retired routes have been swept.
  SampleOccupancy();
  ServiceStats out = stats_;
  out.resident_queries = medium_->num_queries();
  out.total_bytes = medium_->stats().TotalBytesSent();
  out.total_messages = medium_->stats().TotalMessagesSent();
  out.ledger = medium_->ledger();
  out.total_results = 0;
  for (const auto& rec : out.ledger) {
    out.total_results += rec.stats.results;
  }
  for (int id : medium_->live_query_ids()) {
    out.total_results += medium_->executor(id).results();
  }
  return out;
}

Result<ServiceStats> RunService(
    const std::vector<const workload::Workload*>& templates,
    const ServiceOptions& options, int cycles) {
  ASPEN_ASSIGN_OR_RETURN(std::unique_ptr<ServiceRunner> runner,
                         ServiceRunner::Create(templates, options));
  ASPEN_RETURN_NOT_OK(runner->Run(cycles));
  return runner->Finalize();
}

namespace {

struct Welford {
  double sum = 0, sumsq = 0;
  int n = 0;
  void Add(double x) {
    sum += x;
    sumsq += x * x;
    ++n;
  }
  double Mean() const { return n > 0 ? sum / n : 0.0; }
  /// 95% CI half-width (normal approximation; the paper reports 95% CIs
  /// over 9 runs).
  double Ci95() const {
    if (n < 2) return 0.0;
    double var = (sumsq - sum * sum / n) / (n - 1);
    return 1.96 * std::sqrt(std::max(var, 0.0) / n);
  }
};

}  // namespace

Result<AggregatedStats> RunAveraged(const WorkloadFactory& factory,
                                    const ExperimentOptions& options,
                                    int sampling_cycles, int runs,
                                    uint64_t seed0, int num_threads) {
  // Repetitions are embarrassingly parallel: each owns its workload,
  // network and RNG. Run them on the pool, then aggregate serially in seed
  // order so the floating-point reduction is identical for any thread
  // count.
  //
  // Sharded repetitions multiply the thread footprint: each repetition
  // spins up its own shard pool, so divide the repetition workers by the
  // shard count to keep the total near the hardware concurrency. (The
  // result is unaffected: both levels are bit-deterministic.)
  if (num_threads <= 0) num_threads = common::DefaultThreadCount();
  int footprint = std::max(1, options.executor.knobs.shards);
  // A pipelined run adds a stage pool of the same width as the shard pool.
  if (options.executor.knobs.pipeline_depth > 1) footprint *= 2;
  if (footprint > 1) {
    num_threads = std::max(1, num_threads / footprint);
  }
  std::vector<Result<join::RunStats>> outcomes(
      runs, Result<join::RunStats>(Status::Internal("repetition not run")));
  // Fail fast: once any repetition errors, later ones are skipped (indices
  // are claimed in seed order, so the first non-OK outcome below is always
  // a real error, never a skipped slot).
  std::atomic<bool> failed{false};
  common::ParallelFor(runs, num_threads, [&](int r) {
    if (failed.load(std::memory_order_relaxed)) return;
    auto wl = factory(seed0 + r);
    if (!wl.ok()) {
      outcomes[r] = wl.status();
      failed.store(true, std::memory_order_relaxed);
      return;
    }
    ExperimentOptions opts = options;
    opts.executor.seed = seed0 + r;
    // One data-plane arena per worker thread, reused across the
    // repetitions that thread claims: slab and route-table capacity warmed
    // up by one repetition stays hot for the next.
    thread_local net::DataPlane worker_plane;
    opts.executor.data_plane = &worker_plane;
    outcomes[r] = RunExperiment(*wl, opts, sampling_cycles);
    if (!outcomes[r].ok()) failed.store(true, std::memory_order_relaxed);
  });
  AggregatedStats agg;
  Welford total_b, base_b, max_b, total_m, base_m, max_m, init_b, comp_b,
      results, delay, max_delay, migrations, failovers;
  for (int r = 0; r < runs; ++r) {
    ASPEN_RETURN_NOT_OK(outcomes[r].status());
    const join::RunStats& st = *outcomes[r];
    agg.algorithm = st.algorithm;
    total_b.Add(static_cast<double>(st.total_bytes));
    base_b.Add(static_cast<double>(st.base_bytes));
    max_b.Add(static_cast<double>(st.max_node_bytes));
    total_m.Add(static_cast<double>(st.total_messages));
    base_m.Add(static_cast<double>(st.base_messages));
    max_m.Add(static_cast<double>(st.max_node_messages));
    init_b.Add(static_cast<double>(st.initiation_bytes));
    comp_b.Add(static_cast<double>(st.computation_bytes));
    results.Add(static_cast<double>(st.results));
    delay.Add(st.avg_result_delay_cycles);
    max_delay.Add(st.max_result_delay_cycles);
    migrations.Add(static_cast<double>(st.migrations));
    failovers.Add(static_cast<double>(st.failovers));
  }
  agg.runs = runs;
  agg.total_bytes = total_b.Mean();
  agg.total_bytes_ci = total_b.Ci95();
  agg.base_bytes = base_b.Mean();
  agg.base_bytes_ci = base_b.Ci95();
  agg.max_node_bytes = max_b.Mean();
  agg.total_messages = total_m.Mean();
  agg.total_messages_ci = total_m.Ci95();
  agg.base_messages = base_m.Mean();
  agg.max_node_messages = max_m.Mean();
  agg.initiation_bytes = init_b.Mean();
  agg.computation_bytes = comp_b.Mean();
  agg.results = results.Mean();
  agg.avg_result_delay_cycles = delay.Mean();
  agg.max_result_delay_cycles = max_delay.Mean();
  agg.migrations = migrations.Mean();
  agg.failovers = failovers.Mean();
  return agg;
}

Result<AggregatedStats> RunAveraged(const WorkloadFactory& factory,
                                    const join::ExecutorOptions& options,
                                    int sampling_cycles, int runs,
                                    uint64_t seed0, int num_threads) {
  ExperimentOptions exp;
  exp.executor = options;
  return RunAveraged(factory, exp, sampling_cycles, runs, seed0, num_threads);
}

}  // namespace core
}  // namespace aspen
