#include "core/report.h"

#include <cstdio>

#include "common/logging.h"

namespace aspen {
namespace core {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  ASPEN_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto pad = [](const std::string& s, size_t w, bool left) {
    std::string out;
    if (left) {
      out = s + std::string(w - s.size(), ' ');
    } else {
      out = std::string(w - s.size(), ' ') + s;
    }
    return out;
  };
  std::string out;
  for (size_t c = 0; c < headers_.size(); ++c) {
    out += pad(headers_[c], width[c], c == 0);
    out += c + 1 < headers_.size() ? "  " : "";
  }
  out += '\n';
  for (size_t c = 0; c < headers_.size(); ++c) {
    out += std::string(width[c], '-');
    out += c + 1 < headers_.size() ? "  " : "";
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += pad(row[c], width[c], c == 0);
      out += c + 1 < row.size() ? "  " : "";
    }
    out += '\n';
  }
  return out;
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string HumanBytes(double bytes) {
  char buf[64];
  if (bytes >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", bytes / (1024.0 * 1024.0));
  } else if (bytes >= 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", bytes / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  }
  return buf;
}

std::string Fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace core
}  // namespace aspen
