// Fixed-width table formatting shared by the benchmark binaries, so every
// bench prints paper-figure series the same way.

#ifndef ASPEN_CORE_REPORT_H_
#define ASPEN_CORE_REPORT_H_

#include <string>
#include <vector>

namespace aspen {
namespace core {

/// \brief Accumulates rows and prints an aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have the same arity as the headers.
  void AddRow(std::vector<std::string> cells);

  /// Renders with column alignment (first column left, rest right).
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "12.3 KB" / "1.24 MB" style byte formatting.
std::string HumanBytes(double bytes);

/// Fixed-precision double ("0.123").
std::string Fixed(double value, int digits = 2);

}  // namespace core
}  // namespace aspen

#endif  // ASPEN_CORE_REPORT_H_
