#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.h"

namespace aspen {
namespace common {

int DefaultThreadCount() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void ParallelFor(int n, int num_threads, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (num_threads <= 0) num_threads = DefaultThreadCount();
  num_threads = std::min(num_threads, n);
  if (num_threads == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<int> next{0};
  std::mutex err_mu;
  std::exception_ptr first_error;
  auto worker = [&] {
    for (int i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(num_threads - 1);
  for (int t = 1; t < num_threads; ++t) threads.emplace_back(worker);
  worker();
  for (auto& th : threads) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

WorkerPool::WorkerPool(int num_workers) {
  threads_.reserve(num_workers > 0 ? num_workers : 0);
  for (int t = 0; t < num_workers; ++t) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  job_ready_.NotifyAll();
  for (auto& th : threads_) th.join();
}

void WorkerPool::RecordError() {
  MutexLock lock(&mu_);
  if (!first_error_) first_error_ = std::current_exception();
}

void WorkerPool::WorkerLoop() {
  uint64_t seen = 0;
  while (true) {
    const std::function<void(int)>* job;
    int size;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && generation_ == seen) job_ready_.Wait(&mu_);
      if (shutdown_) return;
      seen = generation_;
      job = job_;
      size = job_size_;
    }
    for (int i = next_index_.fetch_add(1); i < size;
         i = next_index_.fetch_add(1)) {
      try {
        (*job)(i);
      } catch (...) {
        RecordError();
      }
    }
    {
      MutexLock lock(&mu_);
      if (--inflight_workers_ == 0) job_done_.NotifyOne();
    }
  }
}

void WorkerPool::Run(int n, const std::function<void(int)>& fn) {
  ASPEN_CHECK(!dispatched_);
  if (n <= 0) return;
  if (threads_.empty() || n == 1) {
    // Inline path: exceptions propagate to the caller naturally, but later
    // indices do not run — matching the worker path's contract requires the
    // same run-everything-then-throw shape.
    std::exception_ptr err;
    for (int i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!err) err = std::current_exception();
      }
    }
    if (err) std::rethrow_exception(err);
    return;
  }
  {
    MutexLock lock(&mu_);
    job_ = &fn;
    job_size_ = n;
    next_index_.store(0, std::memory_order_relaxed);
    inflight_workers_ = static_cast<int>(threads_.size());
    ++generation_;
  }
  job_ready_.NotifyAll();
  // The caller is a peer of the workers: it drains indices too, so the job
  // finishes even if a worker is slow to wake.
  for (int i = next_index_.fetch_add(1); i < n; i = next_index_.fetch_add(1)) {
    try {
      fn(i);
    } catch (...) {
      RecordError();
    }
  }
  std::exception_ptr err;
  {
    MutexLock lock(&mu_);
    while (inflight_workers_ != 0) job_done_.Wait(&mu_);
    job_ = nullptr;
    err = first_error_;
    first_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void WorkerPool::Dispatch(int n, const std::function<void(int)>& fn) {
  ASPEN_CHECK(!dispatched_);
  dispatched_ = true;
  if (n <= 0) return;
  if (threads_.empty()) {
    // Inline fallback: the whole job runs here (no overlap is possible),
    // recording instead of throwing so the first error still surfaces at
    // the Wait() boundary like the worker path.
    for (int i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        RecordError();
      }
    }
    return;
  }
  {
    MutexLock lock(&mu_);
    job_ = &fn;
    job_size_ = n;
    next_index_.store(0, std::memory_order_relaxed);
    inflight_workers_ = static_cast<int>(threads_.size());
    ++generation_;
  }
  job_ready_.NotifyAll();
}

void WorkerPool::Wait() {
  if (!dispatched_) return;
  dispatched_ = false;
  std::exception_ptr err;
  {
    MutexLock lock(&mu_);
    while (inflight_workers_ != 0) job_done_.Wait(&mu_);
    job_ = nullptr;
    err = first_error_;
    first_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace common
}  // namespace aspen
