#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace aspen {
namespace common {

int DefaultThreadCount() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void ParallelFor(int n, int num_threads, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (num_threads <= 0) num_threads = DefaultThreadCount();
  num_threads = std::min(num_threads, n);
  if (num_threads == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<int> next{0};
  auto worker = [&] {
    for (int i = next.fetch_add(1); i < n; i = next.fetch_add(1)) fn(i);
  };
  std::vector<std::thread> threads;
  threads.reserve(num_threads - 1);
  for (int t = 1; t < num_threads; ++t) threads.emplace_back(worker);
  worker();
  for (auto& th : threads) th.join();
}

}  // namespace common
}  // namespace aspen
