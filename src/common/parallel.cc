#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace aspen {
namespace common {

int DefaultThreadCount() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void ParallelFor(int n, int num_threads, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (num_threads <= 0) num_threads = DefaultThreadCount();
  num_threads = std::min(num_threads, n);
  if (num_threads == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<int> next{0};
  auto worker = [&] {
    for (int i = next.fetch_add(1); i < n; i = next.fetch_add(1)) fn(i);
  };
  std::vector<std::thread> threads;
  threads.reserve(num_threads - 1);
  for (int t = 1; t < num_threads; ++t) threads.emplace_back(worker);
  worker();
  for (auto& th : threads) th.join();
}

WorkerPool::WorkerPool(int num_workers) {
  threads_.reserve(num_workers > 0 ? num_workers : 0);
  for (int t = 0; t < num_workers; ++t) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  job_ready_.notify_all();
  for (auto& th : threads_) th.join();
}

void WorkerPool::WorkerLoop() {
  uint64_t seen = 0;
  while (true) {
    const std::function<void(int)>* job;
    int size;
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_ready_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      job = job_;
      size = job_size_;
    }
    for (int i = next_index_.fetch_add(1); i < size;
         i = next_index_.fetch_add(1)) {
      (*job)(i);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--inflight_workers_ == 0) job_done_.notify_one();
    }
  }
}

void WorkerPool::Run(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (threads_.empty() || n == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_size_ = n;
    next_index_.store(0, std::memory_order_relaxed);
    inflight_workers_ = static_cast<int>(threads_.size());
    ++generation_;
  }
  job_ready_.notify_all();
  // The caller is a peer of the workers: it drains indices too, so the job
  // finishes even if a worker is slow to wake.
  for (int i = next_index_.fetch_add(1); i < n; i = next_index_.fetch_add(1)) {
    fn(i);
  }
  std::unique_lock<std::mutex> lock(mu_);
  job_done_.wait(lock, [&] { return inflight_workers_ == 0; });
  job_ = nullptr;
}

}  // namespace common
}  // namespace aspen
