// Annotated wrappers over std::mutex / std::condition_variable. libstdc++'s
// primitives carry no thread-safety attributes, so -Wthread-safety cannot
// check code that uses them directly; these shims restore the analysis
// without changing the runtime behavior (every call inlines to the std
// equivalent).

#ifndef ASPEN_COMMON_MUTEX_H_
#define ASPEN_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace aspen {
namespace common {

class ASPEN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ASPEN_ACQUIRE() { mu_.lock(); }
  void Unlock() ASPEN_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock; the scoped acquire/release is visible to the analysis.
class ASPEN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ASPEN_ACQUIRE(*mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() ASPEN_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to a Mutex at each Wait. Waits are expressed as
/// explicit `while (!predicate) cv.Wait(&mu);` loops rather than the
/// std::condition_variable predicate overload — a lambda predicate is an
/// analysis boundary, a plain loop is checked.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `*mu`, blocks, and reacquires before returning.
  /// The caller must hold `mu` (enforced at the call site: every caller
  /// waits inside a MutexLock scope).
  void Wait(Mutex* mu) ASPEN_REQUIRES(*mu) ASPEN_NO_THREAD_SAFETY_ANALYSIS {
    // Adopt the already-held native mutex for the duration of the wait;
    // release() hands ownership back without unlocking. The analysis cannot
    // model lock adoption, hence the local escape hatch — the REQUIRES
    // contract above is still enforced at every call site.
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace common
}  // namespace aspen

#endif  // ASPEN_COMMON_MUTEX_H_
