#include "common/rng.h"

#include <cmath>

namespace aspen {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless bounded sampling.
  uint64_t x = Next64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  // 53 high bits → double in [0, 1).
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Exponential(double rate) {
  double u = UniformDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

double Rng::Normal(double mean, double stddev) {
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

Rng Rng::Fork() {
  // Mixing two outputs through SplitMix decorrelates the child stream.
  uint64_t seed = Next64() ^ Rotl(Next64(), 23);
  return Rng(seed);
}

}  // namespace aspen
