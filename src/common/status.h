// Status / Result error-handling primitives, following the Arrow / RocksDB
// idiom: no exceptions cross the public API; fallible operations return a
// Status (or a Result<T> carrying a value on success).

#ifndef ASPEN_COMMON_STATUS_H_
#define ASPEN_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <variant>

#include "common/logging.h"

namespace aspen {

/// \brief Machine-readable category for a Status.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnreachable,     ///< a network destination could not be reached
  kResourceExhausted,
  kFailedPrecondition,
  kInternal,
  kNotImplemented,
};

/// \brief Returns the canonical lower-case name for a StatusCode
/// (e.g. "invalid_argument").
const char* StatusCodeName(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus a human-readable
/// message. OK statuses carry no message and are cheap to copy.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. A kOk code with a
  /// non-empty message is normalized to plain OK.
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(code == StatusCode::kOk ? std::string() : std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unreachable(std::string msg) {
    return Status(StatusCode::kUnreachable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsUnreachable() const { return code_ == StatusCode::kUnreachable; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }

  /// "OK" or "<code_name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief A value or an error Status. Mirrors arrow::Result.
///
/// Accessing the value of a failed Result is a programming error and aborts
/// in debug builds (undefined in release); always check ok() first or use
/// ValueOr().
template <typename T>
class Result {
 public:
  /// Implicit conversion from a value (success).
  Result(T value) : data_(std::in_place_index<0>, std::move(value)) {}  // NOLINT
  /// Implicit conversion from a non-OK status (failure).
  Result(Status status)  // NOLINT
      : data_(std::in_place_index<1>, std::move(status)) {}

  bool ok() const { return data_.index() == 0; }

  /// The error status; OK if this Result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<1>(data_);
  }

  const T& ValueOrDie() const& { return std::get<0>(data_); }
  T& ValueOrDie() & { return std::get<0>(data_); }
  T&& ValueOrDie() && { return std::get<0>(std::move(data_)); }

  /// operator* as a shorthand for ValueOrDie.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the contained value, or `fallback` if this holds an error.
  T ValueOr(T fallback) const {
    if (ok()) return std::get<0>(data_);
    return fallback;
  }

 private:
  std::variant<T, Status> data_;
};

/// Aborts on a non-OK Status, reporting the status text verbatim. For
/// programming errors only (like ASPEN_CHECK); recoverable failures
/// propagate with ASPEN_RETURN_NOT_OK instead.
#define ASPEN_CHECK_OK(expr)                                          \
  do {                                                                \
    ::aspen::Status _st = (expr);                                     \
    if (!_st.ok()) {                                                  \
      ::aspen::internal::CheckFailed(__FILE__, __LINE__,              \
                                     _st.ToString().c_str());         \
    }                                                                 \
  } while (false)

/// Propagates a non-OK Status out of the current function.
#define ASPEN_RETURN_NOT_OK(expr)                 \
  do {                                            \
    ::aspen::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                    \
  } while (false)

/// Assigns the value of a Result to `lhs`, or propagates its error.
#define ASPEN_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).ValueOrDie();

#define ASPEN_ASSIGN_OR_RETURN_CONCAT_(a, b) a##b
#define ASPEN_ASSIGN_OR_RETURN_CONCAT(a, b) ASPEN_ASSIGN_OR_RETURN_CONCAT_(a, b)

#define ASPEN_ASSIGN_OR_RETURN(lhs, rexpr) \
  ASPEN_ASSIGN_OR_RETURN_IMPL(             \
      ASPEN_ASSIGN_OR_RETURN_CONCAT(_aspen_result_, __LINE__), lhs, rexpr)

}  // namespace aspen

#endif  // ASPEN_COMMON_STATUS_H_
