// Lightweight assertion & logging macros (Arrow-style DCHECK family).
// Failed checks print file:line and abort — they mark programming errors,
// never recoverable runtime conditions (those use Status).

#ifndef ASPEN_COMMON_LOGGING_H_
#define ASPEN_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace aspen {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "[aspen] CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

inline void LogError(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "[aspen] ERROR %s:%d: %s\n", file, line, msg.c_str());
}

}  // namespace internal
}  // namespace aspen

/// Structured error line on stderr; `msg` is a std::string (or convertible).
#define ASPEN_LOG_ERROR(msg) \
  ::aspen::internal::LogError(__FILE__, __LINE__, (msg))

#define ASPEN_CHECK(expr)                                       \
  do {                                                          \
    if (!(expr))                                                \
      ::aspen::internal::CheckFailed(__FILE__, __LINE__, #expr); \
  } while (false)

#define ASPEN_CHECK_GE(a, b) ASPEN_CHECK((a) >= (b))
#define ASPEN_CHECK_GT(a, b) ASPEN_CHECK((a) > (b))
#define ASPEN_CHECK_LE(a, b) ASPEN_CHECK((a) <= (b))
#define ASPEN_CHECK_LT(a, b) ASPEN_CHECK((a) < (b))
#define ASPEN_CHECK_EQ(a, b) ASPEN_CHECK((a) == (b))
#define ASPEN_CHECK_NE(a, b) ASPEN_CHECK((a) != (b))

#ifdef NDEBUG
#define ASPEN_DCHECK(expr) \
  do {                     \
  } while (false)
#else
#define ASPEN_DCHECK(expr) ASPEN_CHECK(expr)
#endif

#endif  // ASPEN_COMMON_LOGGING_H_
