// The one definition of the run-shape knobs shared by every options struct.
//
// ExecutorOptions (one query on an owned network), MediumOptions (a shared
// medium hosting many queries) and, transitively, core::ExperimentOptions /
// core::ServiceOptions used to re-declare the same knobs — shard count,
// pipeline depth, sampling clock — with subtly independent defaults. They
// now all embed one RunKnobs, so a knob exists in exactly one place, the
// env-variable parsing lives in exactly one bench helper
// (benchutil::KnobsFromEnv: ASPEN_SHARDS / ASPEN_PIPELINE / ASPEN_REOPT),
// and new run-wide knobs (the re-optimization interval below) are added
// once instead of three times.

#ifndef ASPEN_COMMON_RUN_KNOBS_H_
#define ASPEN_COMMON_RUN_KNOBS_H_

namespace aspen {
namespace common {

/// \brief Multicast tree construction policy for producer result routes.
enum class TreeMode {
  /// One tree per producer per query, built from that query's explored
  /// path segments — the historical behavior and the default.
  kPerSource,
  /// KMB-approximation shared Steiner trees: the tree depends only on
  /// (root, destination set), so co-resident queries with overlapping
  /// destination sets intern one refcounted tree via the RouteTable's
  /// content-addressed destination-set lookup. Also enables common
  /// sub-join placement sharing in SharedMedium (DESIGN.md "Cross-query
  /// work sharing").
  kShared,
};

/// \brief Run-shape knobs shared by executor, medium and experiment options.
struct RunKnobs {
  /// Spatial shard count: K > 1 partitions the node space into K contiguous
  /// id ranges, each stepped by its own worker thread, with cross-shard
  /// effects merged in canonical content order — observable output is
  /// byte-identical for every K (DESIGN.md "Sharded execution").
  int shards = 1;

  /// Cross-cycle pipeline depth: D > 1 overlaps the pure sample stages of
  /// cycles N+1..N+D-1 with cycle N's transmit on a dedicated stage pool,
  /// byte-identical at every depth (DESIGN.md "Pipelined execution").
  int pipeline_depth = 1;

  /// Transmission cycles per sampling cycle — the sampling clock of a
  /// shared medium's scheduler. Every query admitted to a medium must
  /// declare the same `window.sample_interval`. Owned-network executors
  /// take the clock from their query instead and ignore this field.
  int sample_interval = 100;

  /// Continuous re-optimization period, in sampling cycles: every
  /// `reopt_interval` cycles the executor re-estimates selectivities from
  /// live traffic and, where the estimate diverged past `reopt_threshold`,
  /// re-runs the cost model and executes a planned placement migration
  /// (DESIGN.md "Continuous re-optimization"). 0 disables the loop — the
  /// plan stays frozen at admission, the pre-reopt behavior.
  int reopt_interval = 0;

  /// Relative divergence between a live estimate and the estimate the
  /// current placement was chosen with that arms a re-optimization pass
  /// for a pair. The paper's Section 6 trigger: 33%.
  double reopt_threshold = 0.33;

  /// Producer multicast tree policy (ASPEN_TREE_MODE: "per_source" |
  /// "shared"). kShared turns on both shared Steiner trees and
  /// cross-query placement sharing; kPerSource is byte-identical to the
  /// pre-sharing behavior.
  TreeMode tree_mode = TreeMode::kPerSource;
};

}  // namespace common
}  // namespace aspen

#endif  // ASPEN_COMMON_RUN_KNOBS_H_
