// Clang thread-safety analysis macros. Under clang these expand to the
// attributes consumed by -Wthread-safety; under every other compiler they
// vanish, so annotated code stays portable. See DESIGN.md "Static
// guarantees" for how the repo uses them to encode the sharded phase
// discipline.

#ifndef ASPEN_COMMON_THREAD_ANNOTATIONS_H_
#define ASPEN_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define ASPEN_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define ASPEN_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

/// Marks a class as a capability (lockable). The string names the
/// capability in diagnostics ("mutex", "sequential phase", ...).
#define ASPEN_CAPABILITY(x) ASPEN_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability.
#define ASPEN_SCOPED_CAPABILITY \
  ASPEN_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Data members that may only be accessed while holding the capability.
#define ASPEN_GUARDED_BY(x) ASPEN_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer members whose pointee is guarded by the capability.
#define ASPEN_PT_GUARDED_BY(x) \
  ASPEN_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// The function must be called with the capability held (and does not
/// release it).
#define ASPEN_REQUIRES(...) \
  ASPEN_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define ASPEN_REQUIRES_SHARED(...) \
  ASPEN_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define ASPEN_ACQUIRE(...) \
  ASPEN_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define ASPEN_ACQUIRE_SHARED(...) \
  ASPEN_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

/// The function releases a capability held on entry.
#define ASPEN_RELEASE(...) \
  ASPEN_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define ASPEN_RELEASE_SHARED(...) \
  ASPEN_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

/// The function must NOT be called with the capability held.
#define ASPEN_EXCLUDES(...) \
  ASPEN_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// The function returns a reference to the named capability.
#define ASPEN_RETURN_CAPABILITY(x) \
  ASPEN_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Asserts (at runtime, from the analysis' point of view) that the
/// capability is held; used at trust boundaries the analysis cannot see
/// through.
#define ASPEN_ASSERT_CAPABILITY(x) \
  ASPEN_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

/// Escape hatch: the function body is not analyzed. Reserve for code the
/// analysis cannot model (adopting locks, template trampolines) and say
/// why at the use site.
#define ASPEN_NO_THREAD_SAFETY_ANALYSIS \
  ASPEN_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // ASPEN_COMMON_THREAD_ANNOTATIONS_H_
