// Minimal index-space thread pool: run fn(0..n-1) on a bounded set of
// workers. Used by core::RunAveraged, whose repetitions are embarrassingly
// parallel — each owns its workload, network and RNG, and the only shared
// object (the Topology) is immutable.

#ifndef ASPEN_COMMON_PARALLEL_H_
#define ASPEN_COMMON_PARALLEL_H_

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace aspen {
namespace common {

/// Hardware concurrency, at least 1.
int DefaultThreadCount();

/// \brief Invokes `fn(i)` for every i in [0, n), distributing indices over
/// up to `num_threads` worker threads (0 = hardware concurrency). Blocks
/// until every invocation returned. With one thread (or n == 1) the calls
/// run inline on the caller's thread.
///
/// `fn` must be safe to call concurrently from multiple threads. If any
/// invocation throws, every index still runs; the first-recorded exception
/// is rethrown on the caller after the join.
void ParallelFor(int n, int num_threads, const std::function<void(int)>& fn);

/// \brief Persistent fork-join pool for phase-structured work.
///
/// Unlike ParallelFor, the worker threads are spawned once and parked on a
/// condition variable between jobs, so a Run() costs two wakeup/park cycles
/// instead of thread creation — cheap enough to call once per simulation
/// phase (the sharded kernel runs several Run()s per transmission cycle).
/// Run() holds the job by pointer and never copies the callable, so a
/// steady-state Run() performs no heap allocation.
class WorkerPool {
 public:
  /// Spawns `num_workers` parked threads (0 is valid: every Run() then
  /// executes inline on the caller).
  explicit WorkerPool(int num_workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Invokes `fn(i)` for every i in [0, n); the caller participates, so all
  /// n indices complete even with zero workers. Blocks until done. Not
  /// reentrant; only one Run() may be active at a time, and never while a
  /// Dispatch() is outstanding.
  ///
  /// Exception contract: a throwing fn(i) does not abort the job — every
  /// index still runs (the sharded kernel's phase barriers assume full
  /// coverage) — and the first exception recorded is rethrown on the
  /// caller's thread after the join, leaving the pool reusable.
  void Run(int n, const std::function<void(int)>& fn);

  /// \brief Starts `fn(i)` for every i in [0, n) on the worker threads and
  /// returns immediately; the caller does NOT participate and is free to do
  /// unrelated work until Wait(). `fn` is borrowed (never copied) and must
  /// stay alive and unmodified until Wait() returns. At most one dispatched
  /// job may be outstanding, and Run() may not be called while one is.
  ///
  /// With zero workers the job runs inline here (Dispatch() then blocks for
  /// its duration) so the Dispatch/Wait pair still covers every index —
  /// same observable contract, no overlap.
  void Dispatch(int n, const std::function<void(int)>& fn);

  /// \brief Blocks until the job started by the last Dispatch() completes,
  /// then rethrows the first exception any index recorded — exactly Run()'s
  /// exception contract, surfaced at the Wait() boundary. The pool is
  /// reusable (Run() or Dispatch()) afterwards. No-op when no dispatched
  /// job is outstanding.
  void Wait();

  int num_workers() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  /// Records the currently in-flight exception as the job's outcome if it
  /// is the first; later exceptions from the same job are dropped.
  void RecordError() ASPEN_EXCLUDES(mu_);

  Mutex mu_;
  CondVar job_ready_;
  CondVar job_done_;
  // Borrowed during Run(); never copied.
  const std::function<void(int)>* job_ ASPEN_GUARDED_BY(mu_) = nullptr;
  int job_size_ ASPEN_GUARDED_BY(mu_) = 0;
  uint64_t generation_ ASPEN_GUARDED_BY(mu_) = 0;
  std::atomic<int> next_index_{0};
  int inflight_workers_ ASPEN_GUARDED_BY(mu_) = 0;
  bool shutdown_ ASPEN_GUARDED_BY(mu_) = false;
  /// True between Dispatch() and Wait(). Touched by the owning thread only.
  bool dispatched_ = false;
  std::exception_ptr first_error_ ASPEN_GUARDED_BY(mu_);
  std::vector<std::thread> threads_;  // written by ctor/dtor only
};

}  // namespace common
}  // namespace aspen

#endif  // ASPEN_COMMON_PARALLEL_H_
