// Minimal index-space thread pool: run fn(0..n-1) on a bounded set of
// workers. Used by core::RunAveraged, whose repetitions are embarrassingly
// parallel — each owns its workload, network and RNG, and the only shared
// object (the Topology) is immutable.

#ifndef ASPEN_COMMON_PARALLEL_H_
#define ASPEN_COMMON_PARALLEL_H_

#include <functional>

namespace aspen {
namespace common {

/// Hardware concurrency, at least 1.
int DefaultThreadCount();

/// \brief Invokes `fn(i)` for every i in [0, n), distributing indices over
/// up to `num_threads` worker threads (0 = hardware concurrency). Blocks
/// until every invocation returned. With one thread (or n == 1) the calls
/// run inline on the caller's thread.
///
/// `fn` must be safe to call concurrently from multiple threads.
void ParallelFor(int n, int num_threads, const std::function<void(int)>& fn);

}  // namespace common
}  // namespace aspen

#endif  // ASPEN_COMMON_PARALLEL_H_
