// Deterministic pseudo-random number generation for the simulator.
//
// Every stochastic component (topology generation, radio loss, sensor
// sampling) draws from an explicitly-seeded Rng so whole experiment runs are
// reproducible from a single seed. We use xoshiro256** seeded via SplitMix64,
// which is fast, has a 256-bit state, and passes BigCrush — std::mt19937 is
// deliberately avoided because its seeding is easy to get wrong and its state
// is large.

#ifndef ASPEN_COMMON_RNG_H_
#define ASPEN_COMMON_RNG_H_

#include <cstdint>

namespace aspen {

/// \brief xoshiro256** PRNG with SplitMix64 seeding.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the generator.
  void Seed(uint64_t seed);

  /// Next raw 64-bit output.
  uint64_t Next64();

  /// Uniform integer in [0, bound). bound must be > 0. Uses rejection
  /// sampling (Lemire) to avoid modulo bias.
  uint64_t UniformInt(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Exponentially distributed double with the given rate (mean 1/rate).
  double Exponential(double rate);

  /// Standard normal via Box–Muller (no cached spare; stateless per call
  /// apart from the generator stream).
  double Normal(double mean, double stddev);

  /// Derives an independent child generator; streams of parent and child do
  /// not overlap for practical purposes. Used to give each node its own
  /// stream so per-node behaviour does not depend on iteration order.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace aspen

#endif  // ASPEN_COMMON_RNG_H_
