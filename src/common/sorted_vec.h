// Tiny sorted-unique-vector helpers: the contiguous per-node state tables
// keep small sorted id vectors instead of sets, and every site should share
// one insert/erase/contains implementation.

#ifndef ASPEN_COMMON_SORTED_VEC_H_
#define ASPEN_COMMON_SORTED_VEC_H_

#include <algorithm>
#include <vector>

namespace aspen {
namespace common {

/// Inserts `value` keeping `v` sorted; no-op if already present.
template <typename T>
void InsertSortedUnique(std::vector<T>* v, const T& value) {
  auto it = std::lower_bound(v->begin(), v->end(), value);
  if (it == v->end() || *it != value) v->insert(it, value);
}

/// Removes `value` from sorted `v` if present.
template <typename T>
void EraseSorted(std::vector<T>* v, const T& value) {
  auto it = std::lower_bound(v->begin(), v->end(), value);
  if (it != v->end() && *it == value) v->erase(it);
}

/// True iff sorted `v` contains `value`.
template <typename T>
bool ContainsSorted(const std::vector<T>& v, const T& value) {
  return std::binary_search(v.begin(), v.end(), value);
}

}  // namespace common
}  // namespace aspen

#endif  // ASPEN_COMMON_SORTED_VEC_H_
