#include "common/status.h"

namespace aspen {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kUnreachable:
      return "unreachable";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kNotImplemented:
      return "not_implemented";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace aspen
