// The sequential-phase capability: the compile-time encoding of the sharded
// kernel's phase discipline.
//
// The simulation alternates between shard-parallel compute phases (K worker
// threads walk disjoint node ranges; they may only read shared state and
// write shard-local scratch) and sequential exchange phases (one thread
// merges deferred effects in canonical order and mutates global state).
// Every mutation-layer function is declared ASPEN_REQUIRES_SEQUENTIAL; the
// sequential entry points (scheduler commit hooks, handler dispatch, test
// bodies driving the network directly) open a SequentialPhaseScope. Shard
// hooks (OnSampleStage / OnDeliverShard / ComputeShard) never hold the
// capability, so calling an exchange-only mutator from a shard hook fails
// to compile under clang -Wthread-safety (-Werror).
//
// The capability is phantom: acquiring it costs nothing at runtime (no
// mutex, no atomic — the phases are already serialized by the scheduler's
// fork/join structure). It exists purely so the compiler can check who is
// allowed to call what. detlint rule DL006 closes the loop from the other
// side: opening a SequentialPhaseScope inside a shard-path function body is
// a lint error, so the capability cannot be forged where it does not hold.

#ifndef ASPEN_COMMON_PHASE_H_
#define ASPEN_COMMON_PHASE_H_

#include "common/thread_annotations.h"

namespace aspen {
namespace common {

/// Phantom capability representing "this thread is executing the sequential
/// phase of the cycle" (exchange, commit, init, teardown, scenario events).
class ASPEN_CAPABILITY("sequential phase") SequentialPhase {
 public:
  constexpr SequentialPhase() = default;
  SequentialPhase(const SequentialPhase&) = delete;
  SequentialPhase& operator=(const SequentialPhase&) = delete;
};

/// The single global instance all annotations refer to.
inline constexpr SequentialPhase kSequentialPhase{};

/// RAII assertion that the current code runs in the sequential phase.
/// Opened by sequential entry points only — never inside shard hooks
/// (detlint DL006). Zero-cost: the constructor and destructor are empty.
class ASPEN_SCOPED_CAPABILITY SequentialPhaseScope {
 public:
  SequentialPhaseScope() ASPEN_ACQUIRE(kSequentialPhase) {}
  ~SequentialPhaseScope() ASPEN_RELEASE() {}

  SequentialPhaseScope(const SequentialPhaseScope&) = delete;
  SequentialPhaseScope& operator=(const SequentialPhaseScope&) = delete;
};

/// Phantom capability representing "this thread is executing the overlapped
/// pure sample stage" (pipelined cross-cycle execution: cycle N+1's sample
/// staging while cycle N's transmit runs). Code holding it may only read
/// shared state that is immutable for the duration of the overlap (the
/// workload post-WarmFilterCache, the producer caches) and write its own
/// per-(shard, slot) slab. It is distinct from — and never held together
/// with — kSequentialPhase, so an exchange-phase mutator called from the
/// overlapped stage fails to compile exactly like one called from a shard
/// hook.
class ASPEN_CAPABILITY("pipeline stage") PipelineStage {
 public:
  constexpr PipelineStage() = default;
  PipelineStage(const PipelineStage&) = delete;
  PipelineStage& operator=(const PipelineStage&) = delete;
};

/// The single global instance all annotations refer to.
inline constexpr PipelineStage kPipelineStage{};

/// RAII assertion that the current code runs the pure sample stage. Opened
/// by the pipelined scheduler's stage workers and by the synchronous
/// fallback immediately around the stage call — never inside sequential
/// mutators. Zero-cost, like SequentialPhaseScope.
class ASPEN_SCOPED_CAPABILITY PipelineStageScope {
 public:
  PipelineStageScope() ASPEN_ACQUIRE(kPipelineStage) {}
  ~PipelineStageScope() ASPEN_RELEASE() {}

  PipelineStageScope(const PipelineStageScope&) = delete;
  PipelineStageScope& operator=(const PipelineStageScope&) = delete;
};

}  // namespace common
}  // namespace aspen

/// Declares that a function mutates exchange-phase state and may only be
/// called from the sequential phase.
#define ASPEN_REQUIRES_SEQUENTIAL \
  ASPEN_REQUIRES(::aspen::common::kSequentialPhase)

/// Data members that only the sequential phase may touch.
#define ASPEN_GUARDED_BY_SEQUENTIAL \
  ASPEN_GUARDED_BY(::aspen::common::kSequentialPhase)

/// Declares a pure sample-stage function: callable only while the pipeline
/// capability is held (stage workers / the synchronous fallback), and never
/// while the sequential capability is — so the overlapped stage provably
/// cannot reach an exchange-phase mutator.
#define ASPEN_REQUIRES_PIPELINE               \
  ASPEN_REQUIRES(::aspen::common::kPipelineStage) \
      ASPEN_EXCLUDES(::aspen::common::kSequentialPhase)

#endif  // ASPEN_COMMON_PHASE_H_
