// The shared event-driven simulation kernel.
//
// One CycleScheduler owns the clock and the phase ordering of a run:
//
//   sample   — every participant samples its sensors and submits the
//              cycle's traffic to the network
//   transmit — the network moves frames hop-by-hop until the sampling
//              interval elapses or the air goes quiet
//   deliver  — arrivals buffered during transmit are applied (join-window
//              insertion, result accounting)
//   learn    — participants run adaptation (selectivity re-estimation,
//              migration) and advance their windows
//
// Single-query execution (JoinExecutor::RunCycles on an owned network) and
// multi-query execution (SharedMedium) are both thin wrappers over this one
// loop; a participant is one query's protocol logic hosted on the kernel.
// The scheduler persists across RunCycles calls, so a run can be continued
// (RunCycles(5) twice == RunCycles(10) cycle-for-cycle, modulo the straggler
// drain performed after every call).

#ifndef ASPEN_SIM_CYCLE_SCHEDULER_H_
#define ASPEN_SIM_CYCLE_SCHEDULER_H_

#include <vector>

#include "common/phase.h"
#include "common/status.h"
#include "net/network.h"

namespace aspen {
namespace sim {

/// \brief Node-range-parallel implementations of the sample and deliver
/// phases, for participants hosted on a ShardedScheduler.
///
/// Each phase splits Begin (main thread; sequential prep), a per-shard
/// stage (invoked once per shard, concurrently, over the shard's contiguous
/// node range [begin, end)) and Commit (main thread; applies everything the
/// shard passes staged, in one canonical order). A stage pass must only
/// mutate state owned by its node range or its own per-shard scratch; the
/// phase's observable outcome must not depend on the shard count — the
/// plain OnSample/OnDeliver hooks are required to equal Begin + one
/// full-range stage pass + Commit.
///
/// The sample stage is additionally *pure* (ASPEN_REQUIRES_PIPELINE): it
/// reads only state that is immutable during a cycle (the workload after
/// OnSampleBegin's WarmFilterCache, the per-shard producer caches) and
/// writes only its own (shard, slot) slab — so a pipelined scheduler may
/// run it for cycle N+1 while cycle N's transmit is still in flight. The
/// `slot` index (cycle % slots, with `slots` set via ConfigureSampleSlots)
/// names which slab of the ring the stage fills and the matching commit
/// drains; schedulers without pipelining always pass slot 0.
class ShardPhaseParticipant {
 public:
  virtual ~ShardPhaseParticipant() = default;

  /// Sizes the sample slab ring to `slots` (>= 1) independent per-shard
  /// slabs so a pipelined scheduler can stage up to `slots - 1` future
  /// cycles while earlier slabs await commit. Idempotent; called by the
  /// scheduler before the participant's sample phase. Participants start
  /// with one slot.
  virtual void ConfigureSampleSlots(int slots) = 0;

  /// True when the pure sample stage may run ahead of time for a future
  /// cycle. Participants that are not fully set up yet (e.g. admitted but
  /// not initiated) return false and are sampled synchronously instead.
  virtual bool SampleStageReady() const { return true; }

  virtual void OnSampleBegin(int cycle) = 0;
  virtual void OnSampleStage(int cycle, int slot, int shard,
                             net::NodeId begin, net::NodeId end)
      ASPEN_REQUIRES_PIPELINE = 0;
  virtual Status OnSampleCommit(int cycle, int slot) = 0;

  virtual void OnDeliverBegin(int cycle) = 0;
  virtual void OnDeliverShard(int cycle, int shard, net::NodeId begin,
                              net::NodeId end) = 0;
  virtual Status OnDeliverCommit(int cycle) = 0;
};

/// \brief One query's protocol logic hosted on the kernel. Phase hooks are
/// invoked in registration order; `cycle` is the scheduler's clock value.
class CycleParticipant {
 public:
  virtual ~CycleParticipant() = default;

  /// Sample phase: sample producers and submit this cycle's data traffic.
  virtual Status OnSample(int cycle) = 0;

  /// Deliver phase: apply arrivals buffered during transmit. Also invoked
  /// once after the final straggler drain of a RunCycles call.
  virtual Status OnDeliver(int cycle) = 0;

  /// Re-optimize phase: runs after deliver and before learn, strictly
  /// sequential with nothing in flight (the transmit loop drained and
  /// every deliver commit applied). This is where continuous
  /// re-optimization advances planned placement migrations and — on its
  /// period — re-runs the cost model against live estimates: decisions
  /// made here see identical state for every shard count and pipeline
  /// depth, which is what keeps migrations byte-identical. Not invoked
  /// during the straggler drain after the last cycle. Default: no-op.
  virtual Status OnReoptimize(int cycle) {
    (void)cycle;
    return Status::OK();
  }

  /// Learn phase: estimator ticks, adaptation, window advance.
  virtual Status OnLearn(int cycle) = 0;

  /// Non-null when this participant can run its sample/deliver phases
  /// sharded (ShardedScheduler uses it; other schedulers ignore it).
  virtual ShardPhaseParticipant* sharded() { return nullptr; }
};

/// \brief Owns the clock and drives the phase loop over one network.
class CycleScheduler {
 public:
  /// `network` must outlive the scheduler. `sample_interval` is the number
  /// of transmission cycles available per sampling cycle.
  CycleScheduler(net::Network* network, int sample_interval);
  virtual ~CycleScheduler() = default;

  CycleScheduler(const CycleScheduler&) = delete;
  CycleScheduler& operator=(const CycleScheduler&) = delete;

  /// Registers a participant. It must outlive the scheduler (or Detach
  /// first). May be called mid-run — from inside another participant's
  /// phase hook — in which case the new participant joins the *current*
  /// phase after every earlier participant: a query admitted during the
  /// cycle-N sample phase samples at cycle N.
  void Attach(CycleParticipant* participant);

  /// Registers a participant ahead of everything already attached. Scenario
  /// dynamics (scenario::ScenarioDriver) attach here so a mutation
  /// scheduled for cycle N is applied before any query samples at cycle N,
  /// regardless of construction order. Not valid mid-run.
  void AttachFront(CycleParticipant* participant);

  /// \brief Unregisters a participant; its phase hooks stop firing. May be
  /// called mid-run (query departure): the slot is tombstoned so the
  /// in-progress phase loop skips it, and compacted at the next cycle
  /// boundary. A participant detached during the cycle-N sample phase
  /// before its own turn never samples at cycle N. Virtual so a pipelining
  /// scheduler can drop the participant's prestaged slabs with it.
  virtual void Detach(CycleParticipant* participant);

  /// \brief Invalidates any prestaged sample slabs for a participant that
  /// stays attached but whose sample-visible state was mutated mid-run
  /// (e.g. a placement-sharing subscriber promoted to owner, whose
  /// per-node pair lists just changed). A no-op here; the pipelining
  /// subclass joins in-flight stage work and drops the participant's
  /// staged range so the affected cycles re-stage from current state,
  /// keeping the mutation byte-identical at every pipeline depth.
  virtual void InvalidateStaged(CycleParticipant* participant) {
    (void)participant;
  }

  /// \brief Advances the clock to `cycle` without running any phases, so a
  /// fresh run can reproduce a query admitted mid-run on a shared medium
  /// (sampling is a pure function of the cycle number). Requires
  /// cycle >= cycle() and no traffic in flight.
  void SeekTo(int cycle);

  /// \brief Runs `n` sampling cycles, then drains straggler frames (e.g.
  /// results emitted at the last cycle's end) and delivers them, so the
  /// metrics observed afterwards cover everything the run caused. May be
  /// called repeatedly to continue a run.
  Status RunCycles(int n);

  int cycle() const { return cycle_; }
  int sample_interval() const { return sample_interval_; }
  net::Network& network() { return *net_; }

 protected:
  /// One participant's sample (resp. deliver) phase. The single cycle loop
  /// in RunCycles dispatches through these so a scheduler subclass can
  /// substitute a sharded phase schedule without duplicating the loop —
  /// the phase ordering and straggler-drain contract stay identical by
  /// construction.
  virtual Status SamplePhase(CycleParticipant* p, int cycle) {
    return p->OnSample(cycle);
  }
  virtual Status DeliverPhase(CycleParticipant* p, int cycle) {
    return p->OnDeliver(cycle);
  }

  /// Called once per cycle after every participant's sample phase, before
  /// the transmit loop starts: the point where a pipelining subclass
  /// dispatches cycle N+1's pure sample stage to overlap with cycle N's
  /// transmit.
  virtual void SamplePhaseDone(int cycle) { (void)cycle; }

  /// Called once per cycle after the transmit loop, before the deliver
  /// phase: the join point for work dispatched at SamplePhaseDone. After
  /// this hook returns, no scheduler-forked work may be in flight.
  virtual void TransmitPhaseDone(int cycle) { (void)cycle; }

  /// Called on every exit path of RunCycles (normal return, error return,
  /// exception), after the straggler drain on the normal path. A pipelining
  /// subclass joins any stray stage work and invalidates prestaged slabs
  /// here, so between-call mutations (workload parameters, SeekTo, query
  /// churn) can never observe — or be observed by — a half-full pipeline.
  virtual void RunFinished() {}

  net::Network* net_;
  int sample_interval_;
  /// Detached-mid-run slots are tombstoned (nullptr) and compacted at the
  /// next cycle boundary; phase loops iterate by index so mid-phase
  /// attaches are picked up within the same phase.
  std::vector<CycleParticipant*> participants_;
  int cycle_ = 0;
  bool dispatching_ = false;

 private:
  /// Erases tombstones left by mid-run Detach calls.
  void Compact();
};

}  // namespace sim
}  // namespace aspen

#endif  // ASPEN_SIM_CYCLE_SCHEDULER_H_
