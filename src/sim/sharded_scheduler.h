// Multi-threaded single-run execution of the cycle kernel.
//
// The node space is partitioned into K contiguous shards (node ids are
// spatially coherent: grid topologies number row-major, so contiguous id
// ranges are strips of the deployment). Each sampling cycle runs as:
//
//   sample   — Begin (main), then every shard stages its node range's
//              samples concurrently, then Commit submits them in node order
//   transmit — Network::Step runs each shard's compute phase on the worker
//              pool and merges deferred effects in canonical content order
//              (see net/network.h)
//   deliver  — Begin sorts the mailboxes, shards probe the join windows of
//              their own node ranges concurrently, Commit replays deferred
//              result emissions in canonical order
//   learn    — sequential on the main thread
//
// Every cross-shard interaction is deferred into per-shard buffers and
// merged in an order derived from content (node ids, message ids, mailbox
// positions), never from shard count or thread timing — so a run's
// TrafficStats, results and RNG streams are byte-identical for every K,
// including K=1 and the plain CycleScheduler. The shard count only decides
// which thread executes each range. See DESIGN.md ("sharded execution").

#ifndef ASPEN_SIM_SHARDED_SCHEDULER_H_
#define ASPEN_SIM_SHARDED_SCHEDULER_H_

#include <vector>

#include "common/parallel.h"
#include "sim/cycle_scheduler.h"

namespace aspen {
namespace sim {

/// \brief Drives the phase loop with per-shard worker threads.
///
/// The cycle loop itself is CycleScheduler's — only the per-participant
/// sample/deliver dispatch is overridden, so the phase ordering and
/// straggler-drain contract cannot drift between sequential and sharded
/// execution.
class ShardedScheduler : public CycleScheduler {
 public:
  /// Partitions `network`'s node space into `num_shards` contiguous ranges
  /// (clamped to the node count) and configures the network for sharded
  /// stepping on an owned worker pool of num_shards - 1 threads.
  ShardedScheduler(net::Network* network, int sample_interval,
                   int num_shards);
  ~ShardedScheduler() override;

  int num_shards() const { return static_cast<int>(starts_.size()); }

  /// Balanced contiguous split: shard i starts at floor(i * n / k).
  static std::vector<net::NodeId> ComputeShardStarts(int num_nodes,
                                                     int num_shards);

 protected:
  /// Sharded Begin/Shard/Commit when the participant supports it, the
  /// plain hook otherwise.
  Status SamplePhase(CycleParticipant* p, int cycle) override;
  Status DeliverPhase(CycleParticipant* p, int cycle) override;

 private:

  std::vector<net::NodeId> starts_;
  common::WorkerPool pool_;
  /// Reused worker job (set per phase; avoids per-call allocation).
  ShardPhaseParticipant* current_ = nullptr;
  int current_cycle_ = 0;
  bool current_is_sample_ = false;
  std::function<void(int)> shard_job_;
};

}  // namespace sim
}  // namespace aspen

#endif  // ASPEN_SIM_SHARDED_SCHEDULER_H_
