// Multi-threaded single-run execution of the cycle kernel.
//
// The node space is partitioned into K contiguous shards (node ids are
// spatially coherent: grid topologies number row-major, so contiguous id
// ranges are strips of the deployment). Each sampling cycle runs as:
//
//   sample   — Begin (main), then every shard stages its node range's
//              samples concurrently, then Commit submits them in node order
//   transmit — Network::Step runs each shard's compute phase on the worker
//              pool and merges deferred effects in canonical content order
//              (see net/network.h)
//   deliver  — Begin sorts the mailboxes, shards probe the join windows of
//              their own node ranges concurrently, Commit replays deferred
//              result emissions in canonical order
//   learn    — sequential on the main thread
//
// With pipeline_depth D > 1 the scheduler additionally overlaps cycles:
// after cycle N's sample commits, the *pure* sample stage of cycles
// N+1..N+D-1 is dispatched to a dedicated stage pool and runs while cycle
// N's transmit occupies the main thread (and the shard pool, which
// Network::Step forks onto). The stage only reads cycle-immutable state and
// writes per-(shard, slot) slabs — slot = cycle mod D — and the join point
// is the end of the transmit loop, so the deliver/learn phases and every
// commit still run with nothing in flight. Commit order is untouched: each
// cycle's commit drains its own slot in shard-then-node order, exactly the
// sequential submission order. See DESIGN.md ("Pipelined execution").
//
// Every cross-shard interaction is deferred into per-shard buffers and
// merged in an order derived from content (node ids, message ids, mailbox
// positions), never from shard count, pipeline depth or thread timing — so
// a run's TrafficStats, results and RNG streams are byte-identical for
// every (K, D), including K=1, D=1 and the plain CycleScheduler. The knobs
// only decide which thread executes each range and how early it may run.

#ifndef ASPEN_SIM_SHARDED_SCHEDULER_H_
#define ASPEN_SIM_SHARDED_SCHEDULER_H_

#include <vector>

#include "common/parallel.h"
#include "sim/cycle_scheduler.h"

namespace aspen {
namespace sim {

/// \brief Drives the phase loop with per-shard worker threads, optionally
/// pipelining future cycles' pure sample stages across the transmit phase.
///
/// The cycle loop itself is CycleScheduler's — only the per-participant
/// sample/deliver dispatch and the pipeline hook points are overridden, so
/// the phase ordering and straggler-drain contract cannot drift between
/// sequential, sharded and pipelined execution.
class ShardedScheduler : public CycleScheduler {
 public:
  /// Partitions `network`'s node space into `num_shards` contiguous ranges
  /// (clamped to the node count) and configures the network for sharded
  /// stepping on an owned worker pool of num_shards - 1 threads.
  /// `pipeline_depth` (clamped to >= 1) sizes the sample slab ring: 1 is
  /// the fully synchronous schedule; D > 1 prestages up to D - 1 future
  /// cycles on a dedicated pool of num_shards stage workers.
  ShardedScheduler(net::Network* network, int sample_interval, int num_shards,
                   int pipeline_depth = 1);
  ~ShardedScheduler() override;

  int num_shards() const { return static_cast<int>(starts_.size()); }
  int pipeline_depth() const { return depth_; }

  /// Detach also drops the participant's prestaged slabs (a departed
  /// query's stage must never run or commit after its teardown).
  void Detach(CycleParticipant* participant) override;

  /// Joins any in-flight stage work and drops the participant's staged
  /// range; the affected cycles re-run their sample stage synchronously
  /// from post-mutation state.
  void InvalidateStaged(CycleParticipant* participant) override;

  /// Balanced contiguous split: shard i starts at floor(i * n / k).
  static std::vector<net::NodeId> ComputeShardStarts(int num_nodes,
                                                     int num_shards);

 protected:
  /// Sharded Begin/Stage/Commit when the participant supports it, the
  /// plain hook otherwise. A cycle whose slab was prestaged skips straight
  /// to Commit.
  Status SamplePhase(CycleParticipant* p, int cycle) override;
  Status DeliverPhase(CycleParticipant* p, int cycle) override;

  /// Dispatches the pure sample stage of the missing future cycles (up to
  /// cycle + depth - 1) for every stage-ready sharded participant.
  void SamplePhaseDone(int cycle) override;
  /// Joins the dispatched stage work (rethrowing its first error) before
  /// the deliver phase touches any shared state.
  void TransmitPhaseDone(int cycle) override;
  /// Joins stray stage work and invalidates every prestaged slab, so the
  /// state a caller observes between RunCycles calls never depends on the
  /// pipeline depth.
  void RunFinished() override;

 private:
  /// Cycles [lo, hi) whose sample slabs are filled for one participant.
  struct StagedRange {
    ShardPhaseParticipant* sp;
    int lo;
    int hi;
  };
  StagedRange* FindStaged(ShardPhaseParticipant* sp);

  std::vector<net::NodeId> starts_;
  common::WorkerPool pool_;
  /// Reused worker job (set per phase; avoids per-call allocation).
  ShardPhaseParticipant* current_ = nullptr;
  int current_cycle_ = 0;
  int current_slot_ = 0;
  bool current_is_sample_ = false;
  std::function<void(int)> shard_job_;

  // -- pipelined cross-cycle staging ------------------------------------
  /// Slots in the sample slab ring; 1 disables the overlap entirely.
  int depth_;
  /// Dedicated stage workers: during the overlap window the shard pool is
  /// owned by Network::Step's compute phases, and a WorkerPool runs one
  /// job at a time.
  common::WorkerPool stage_pool_;
  /// One prestaged (participant, cycle); the dispatched job runs every
  /// unit x shard combination.
  struct StageUnit {
    ShardPhaseParticipant* sp;
    int cycle;
  };
  std::vector<StageUnit> stage_units_;
  std::vector<StagedRange> staged_;
  std::function<void(int)> stage_job_;
  /// True between Dispatch (SamplePhaseDone) and the join
  /// (TransmitPhaseDone, or RunFinished/Detach on abnormal paths).
  bool stage_inflight_ = false;
};

}  // namespace sim
}  // namespace aspen

#endif  // ASPEN_SIM_SHARDED_SCHEDULER_H_
