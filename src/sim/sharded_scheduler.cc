#include "sim/sharded_scheduler.h"

#include <algorithm>

#include "common/logging.h"
#include "common/phase.h"

namespace aspen {
namespace sim {

std::vector<net::NodeId> ShardedScheduler::ComputeShardStarts(
    int num_nodes, int num_shards) {
  num_shards = std::max(1, std::min(num_shards, num_nodes));
  std::vector<net::NodeId> starts(num_shards);
  for (int i = 0; i < num_shards; ++i) {
    starts[i] = static_cast<net::NodeId>(
        static_cast<int64_t>(i) * num_nodes / num_shards);
  }
  return starts;
}

ShardedScheduler::ShardedScheduler(net::Network* network, int sample_interval,
                                   int num_shards)
    : CycleScheduler(network, sample_interval),
      starts_(ComputeShardStarts(network->topology().num_nodes(), num_shards)),
      pool_(static_cast<int>(starts_.size()) - 1) {
  // Construction happens strictly before any cycle runs.
  common::SequentialPhaseScope seq;
  net_->ConfigureSharding(starts_, &pool_);
  shard_job_ = [this](int s) {
    const net::NodeId lo = starts_[s];
    const net::NodeId hi = s + 1 < static_cast<int>(starts_.size())
                               ? starts_[s + 1]
                               : net_->topology().num_nodes();
    if (current_is_sample_) {
      current_->OnSampleShard(current_cycle_, s, lo, hi);
    } else {
      current_->OnDeliverShard(current_cycle_, s, lo, hi);
    }
  };
}

ShardedScheduler::~ShardedScheduler() {
  // The network outlives this scheduler but not the owned pool.
  net_->DetachShardPool();
}

Status ShardedScheduler::SamplePhase(CycleParticipant* p, int cycle) {
  ShardPhaseParticipant* sp = p->sharded();
  if (sp == nullptr) return p->OnSample(cycle);
  sp->OnSampleBegin(cycle);
  current_ = sp;
  current_cycle_ = cycle;
  current_is_sample_ = true;
  pool_.Run(num_shards(), shard_job_);
  return sp->OnSampleCommit(cycle);
}

Status ShardedScheduler::DeliverPhase(CycleParticipant* p, int cycle) {
  ShardPhaseParticipant* sp = p->sharded();
  if (sp == nullptr) return p->OnDeliver(cycle);
  sp->OnDeliverBegin(cycle);
  current_ = sp;
  current_cycle_ = cycle;
  current_is_sample_ = false;
  pool_.Run(num_shards(), shard_job_);
  return sp->OnDeliverCommit(cycle);
}

}  // namespace sim
}  // namespace aspen
