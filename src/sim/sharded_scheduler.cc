#include "sim/sharded_scheduler.h"

#include <algorithm>

#include "common/logging.h"
#include "common/phase.h"

namespace aspen {
namespace sim {

std::vector<net::NodeId> ShardedScheduler::ComputeShardStarts(
    int num_nodes, int num_shards) {
  num_shards = std::max(1, std::min(num_shards, num_nodes));
  std::vector<net::NodeId> starts(num_shards);
  for (int i = 0; i < num_shards; ++i) {
    starts[i] = static_cast<net::NodeId>(
        static_cast<int64_t>(i) * num_nodes / num_shards);
  }
  return starts;
}

ShardedScheduler::ShardedScheduler(net::Network* network, int sample_interval,
                                   int num_shards, int pipeline_depth)
    : CycleScheduler(network, sample_interval),
      starts_(ComputeShardStarts(network->topology().num_nodes(), num_shards)),
      pool_(static_cast<int>(starts_.size()) - 1),
      depth_(std::max(1, pipeline_depth)),
      stage_pool_(depth_ > 1 ? static_cast<int>(starts_.size()) : 0) {
  // Construction happens strictly before any cycle runs.
  common::SequentialPhaseScope seq;
  net_->ConfigureSharding(starts_, &pool_);
  shard_job_ = [this](int s) {
    const net::NodeId lo = starts_[s];
    const net::NodeId hi = s + 1 < static_cast<int>(starts_.size())
                               ? starts_[s + 1]
                               : net_->topology().num_nodes();
    if (current_is_sample_) {
      // The synchronous stage pass holds the same (and only the same)
      // capability as the overlapped one, so the purity requirement is
      // checked on both paths.
      common::PipelineStageScope stage;
      current_->OnSampleStage(current_cycle_, current_slot_, s, lo, hi);
    } else {
      current_->OnDeliverShard(current_cycle_, s, lo, hi);
    }
  };
  stage_job_ = [this](int idx) {
    const int shards = this->num_shards();
    const StageUnit& u = stage_units_[idx / shards];
    const int s = idx % shards;
    const net::NodeId lo = starts_[s];
    const net::NodeId hi = s + 1 < shards ? starts_[s + 1]
                                          : net_->topology().num_nodes();
    common::PipelineStageScope stage;
    u.sp->OnSampleStage(u.cycle, u.cycle % depth_, s, lo, hi);
  };
}

ShardedScheduler::~ShardedScheduler() {
  // A dispatched stage job borrows stage_units_ and the participants; make
  // sure none is in flight before members destruct.
  if (stage_inflight_) {
    stage_inflight_ = false;
    try {
      stage_pool_.Wait();
    } catch (...) {
      // Destruction outranks a stage failure.
    }
  }
  // The network outlives this scheduler but not the owned pool.
  net_->DetachShardPool();
}

ShardedScheduler::StagedRange* ShardedScheduler::FindStaged(
    ShardPhaseParticipant* sp) {
  for (StagedRange& e : staged_) {
    if (e.sp == sp) return &e;
  }
  return nullptr;
}

Status ShardedScheduler::SamplePhase(CycleParticipant* p, int cycle) {
  ShardPhaseParticipant* sp = p->sharded();
  if (sp == nullptr) return p->OnSample(cycle);
  sp->ConfigureSampleSlots(depth_);
  sp->OnSampleBegin(cycle);
  const int slot = cycle % depth_;
  StagedRange* e = FindStaged(sp);
  if (e != nullptr && cycle >= e->lo && cycle < e->hi) {
    // The overlapped stage already filled this cycle's slab (and joined at
    // the previous cycle's TransmitPhaseDone); go straight to commit.
    e->lo = cycle + 1;
  } else {
    current_ = sp;
    current_cycle_ = cycle;
    current_slot_ = slot;
    current_is_sample_ = true;
    pool_.Run(num_shards(), shard_job_);
  }
  return sp->OnSampleCommit(cycle, slot);
}

Status ShardedScheduler::DeliverPhase(CycleParticipant* p, int cycle) {
  ShardPhaseParticipant* sp = p->sharded();
  if (sp == nullptr) return p->OnDeliver(cycle);
  sp->OnDeliverBegin(cycle);
  current_ = sp;
  current_cycle_ = cycle;
  current_is_sample_ = false;
  pool_.Run(num_shards(), shard_job_);
  return sp->OnDeliverCommit(cycle);
}

void ShardedScheduler::SamplePhaseDone(int cycle) {
  if (depth_ <= 1) return;
  // Stage the missing cycles in (cycle, cycle + depth) for every
  // stage-ready sharded participant. Steady state is one new cycle per
  // participant per dispatch; the first cycle of a run (or a participant's
  // first stage-ready cycle) fills the whole window. The participant's
  // producer caches were built by its synchronous stage pass before any
  // prestage can target it, so concurrent stage units of the same shard
  // only ever read the cache and write disjoint slots.
  stage_units_.clear();
  const int target = cycle + depth_;
  for (CycleParticipant* p : participants_) {
    if (p == nullptr) continue;
    ShardPhaseParticipant* sp = p->sharded();
    if (sp == nullptr || !sp->SampleStageReady()) continue;
    StagedRange* e = FindStaged(sp);
    if (e == nullptr) {
      staged_.push_back({sp, cycle + 1, cycle + 1});
      e = &staged_.back();
    } else if (e->hi < cycle + 1) {
      e->lo = e->hi = cycle + 1;
    }
    for (int c = std::max(e->hi, cycle + 1); c < target; ++c) {
      stage_units_.push_back({sp, c});
    }
    e->hi = std::max(e->hi, target);
    e->lo = std::max(e->lo, cycle + 1);
  }
  if (stage_units_.empty()) return;
  stage_inflight_ = true;
  stage_pool_.Dispatch(
      static_cast<int>(stage_units_.size()) * num_shards(), stage_job_);
}

void ShardedScheduler::TransmitPhaseDone(int cycle) {
  (void)cycle;
  if (!stage_inflight_) return;
  stage_inflight_ = false;
  // Rethrows the first stage error at the join point, before any deliver
  // or commit consumes a possibly half-written slab.
  stage_pool_.Wait();
}

void ShardedScheduler::RunFinished() {
  if (stage_inflight_) {
    // Only reachable on abnormal exits (error return or exception between
    // dispatch and join); the run's own failure outranks the stage's.
    stage_inflight_ = false;
    try {
      stage_pool_.Wait();
    } catch (...) {
    }
  }
  // Invalidate every prestaged slab: whatever a caller mutates between
  // RunCycles calls (workload parameters, SeekTo, churn), the next call
  // re-stages from current state — continuation is depth-invariant.
  staged_.clear();
}

void ShardedScheduler::InvalidateStaged(CycleParticipant* participant) {
  // Only legal from participant hooks or between runs, where no stage job
  // is in flight — but joining defensively costs nothing.
  if (stage_inflight_) {
    stage_inflight_ = false;
    stage_pool_.Wait();
  }
  if (ShardPhaseParticipant* sp = participant->sharded()) {
    for (size_t i = 0; i < staged_.size(); ++i) {
      if (staged_[i].sp == sp) {
        staged_.erase(staged_.begin() +
                      static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
  }
}

void ShardedScheduler::Detach(CycleParticipant* participant) {
  InvalidateStaged(participant);
  CycleScheduler::Detach(participant);
}

}  // namespace sim
}  // namespace aspen
