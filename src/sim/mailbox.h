// Per-node mailboxes for the simulation kernel.
//
// Arrivals buffered during the transmit phase are applied in the deliver
// phase in deterministic (node id, then arrival order) order. Boxes are
// contiguous — one vector slot per node — so the hot push path is a single
// index; the active-node list keeps draining proportional to the number of
// nodes that actually received mail, not the network size.

#ifndef ASPEN_SIM_MAILBOX_H_
#define ASPEN_SIM_MAILBOX_H_

#include <algorithm>
#include <vector>

#include "common/phase.h"
#include "net/topology.h"

namespace aspen {
namespace sim {

/// \brief Contiguous per-node buffers of `T`, drained in node-id order.
template <typename T>
class NodeMailboxes {
 public:
  NodeMailboxes() = default;

  /// Sizes the table for `num_nodes` nodes and empties every box.
  void Reset(int num_nodes) ASPEN_REQUIRES_SEQUENTIAL {
    boxes_.assign(num_nodes, {});
    active_.clear();
    sorted_ = true;
  }

  /// Pre-grows box `id`'s capacity so steady-state pushes don't chase the
  /// high-water mark with reallocations mid-run.
  void ReserveBox(net::NodeId id, size_t cap) ASPEN_REQUIRES_SEQUENTIAL { boxes_[id].reserve(cap); }
  /// Pre-grows the active-node list (its high-water is the number of nodes
  /// that receive mail in one batch).
  void ReserveActive(size_t n) ASPEN_REQUIRES_SEQUENTIAL { active_.reserve(n); }

  void Push(net::NodeId id, T item) ASPEN_REQUIRES_SEQUENTIAL {
    if (boxes_[id].empty()) {
      active_.push_back(id);
      sorted_ = false;
    }
    boxes_[id].push_back(std::move(item));
  }

  bool empty() const { return active_.empty(); }

  /// Invokes `fn(node, items)` for every non-empty box in ascending node
  /// order. Non-destructive: call Clear() when done (ForEach may be run
  /// multiple times over the same mail, e.g. one pass per delivery phase;
  /// the node ordering is computed once per batch, not per pass).
  template <typename Fn>
  void ForEach(Fn&& fn) ASPEN_REQUIRES_SEQUENTIAL {
    Prepare();
    for (net::NodeId id : active_) fn(id, boxes_[id]);
  }

  /// Sorts the active-node list now so that subsequent concurrent
  /// ForEachConst passes (the sharded deliver phase reads boxes from every
  /// worker) touch no shared mutable state.
  void Prepare() ASPEN_REQUIRES_SEQUENTIAL {
    if (!sorted_) {
      std::sort(active_.begin(), active_.end());
      sorted_ = true;
    }
  }

  /// Read-only ForEach for concurrent passes. Prepare() must have been
  /// called since the last Push.
  template <typename Fn>
  void ForEachConst(Fn&& fn) const {
    for (net::NodeId id : active_) fn(id, boxes_[id]);
  }

  void Clear() ASPEN_REQUIRES_SEQUENTIAL {
    for (net::NodeId id : active_) boxes_[id].clear();
    active_.clear();
    sorted_ = true;
  }

 private:
  std::vector<std::vector<T>> boxes_;
  std::vector<net::NodeId> active_;
  bool sorted_ = true;
};

}  // namespace sim
}  // namespace aspen

#endif  // ASPEN_SIM_MAILBOX_H_
