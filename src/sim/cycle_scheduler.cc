#include "sim/cycle_scheduler.h"

#include <algorithm>

#include "common/logging.h"
#include "common/phase.h"

namespace aspen {
namespace sim {

CycleScheduler::CycleScheduler(net::Network* network, int sample_interval)
    : net_(network), sample_interval_(sample_interval) {
  ASPEN_CHECK(network != nullptr);
  ASPEN_CHECK(sample_interval > 0);
}

void CycleScheduler::Attach(CycleParticipant* participant) {
  ASPEN_CHECK(participant != nullptr);
  participants_.push_back(participant);
}

void CycleScheduler::AttachFront(CycleParticipant* participant) {
  ASPEN_CHECK(participant != nullptr);
  // Prepending shifts indices under the phase loops; only safe between runs.
  ASPEN_CHECK(!dispatching_);
  participants_.insert(participants_.begin(), participant);
}

void CycleScheduler::Detach(CycleParticipant* participant) {
  auto it =
      std::find(participants_.begin(), participants_.end(), participant);
  ASPEN_CHECK(it != participants_.end());
  if (dispatching_) {
    // The phase loops are iterating by index; leave a tombstone they skip
    // and compact at the next cycle boundary.
    *it = nullptr;
  } else {
    participants_.erase(it);
  }
}

void CycleScheduler::SeekTo(int cycle) {
  ASPEN_CHECK(cycle >= cycle_);
  ASPEN_CHECK(!net_->HasTrafficInFlight());
  cycle_ = cycle;
}

void CycleScheduler::Compact() {
  participants_.erase(
      std::remove(participants_.begin(), participants_.end(), nullptr),
      participants_.end());
}

namespace {

/// Clears a flag on scope exit, so every return path (including the
/// error returns inside the phase loops) restores it.
class FlagGuard {
 public:
  explicit FlagGuard(bool* flag) : flag_(flag) { *flag_ = true; }
  ~FlagGuard() { *flag_ = false; }
  FlagGuard(const FlagGuard&) = delete;
  FlagGuard& operator=(const FlagGuard&) = delete;

 private:
  bool* flag_;
};

}  // namespace

Status CycleScheduler::RunCycles(int n) {
  Compact();  // tombstones may survive an error-path return
  if (participants_.empty()) {
    return Status::FailedPrecondition("CycleScheduler has no participants");
  }
  ASPEN_CHECK(!dispatching_);
  FlagGuard in_dispatch(&dispatching_);
  // Every exit path — error returns from the phase loops included — must
  // leave no scheduler-forked work in flight and no prestaged slab valid;
  // a local class has this member function's access to the hook.
  struct RunExitGuard {
    CycleScheduler* sched;
    ~RunExitGuard() { sched->RunFinished(); }
  } run_exit{this};
  // Phase loops iterate by index and re-read size(): a participant attached
  // mid-phase (query admission) is visited later in the same phase, and a
  // tombstoned one (query departure) is skipped from that instant.
  for (int i = 0; i < n; ++i) {
    for (size_t k = 0; k < participants_.size(); ++k) {
      CycleParticipant* p = participants_[k];
      if (p == nullptr) continue;
      ASPEN_RETURN_NOT_OK(SamplePhase(p, cycle_));
    }
    SamplePhaseDone(cycle_);
    {
      // The transmit loop runs on the scheduler thread; Step() itself forks
      // the shard compute jobs and rejoins before its exchange phase.
      common::SequentialPhaseScope seq;
      for (int s = 0; s < sample_interval_; ++s) {
        net_->Step();
        if (!net_->HasTrafficInFlight()) break;
      }
    }
    TransmitPhaseDone(cycle_);
    for (size_t k = 0; k < participants_.size(); ++k) {
      CycleParticipant* p = participants_[k];
      if (p == nullptr) continue;
      ASPEN_RETURN_NOT_OK(DeliverPhase(p, cycle_));
    }
    // Re-optimize phase: sequential, nothing in flight — planned placement
    // migrations advance and periodic re-optimization decides here, so the
    // decisions see identical state at every shard count / pipeline depth.
    for (size_t k = 0; k < participants_.size(); ++k) {
      CycleParticipant* p = participants_[k];
      if (p == nullptr) continue;
      ASPEN_RETURN_NOT_OK(p->OnReoptimize(cycle_));
    }
    for (size_t k = 0; k < participants_.size(); ++k) {
      CycleParticipant* p = participants_[k];
      if (p == nullptr) continue;
      ASPEN_RETURN_NOT_OK(p->OnLearn(cycle_));
    }
    ++cycle_;
    Compact();
  }
  // Straggler drain: frames still in the air after the last learn phase
  // (results emitted at the final cycle) are transmitted and delivered so
  // the metrics observed afterwards cover everything the run caused.
  {
    common::SequentialPhaseScope seq;
    net_->StepUntilQuiet(/*max_steps=*/16 * sample_interval_);
  }
  for (size_t k = 0; k < participants_.size(); ++k) {
    CycleParticipant* p = participants_[k];
    if (p == nullptr) continue;
    ASPEN_RETURN_NOT_OK(DeliverPhase(p, cycle_));
  }
  return Status::OK();
}

}  // namespace sim
}  // namespace aspen
