#include "sim/cycle_scheduler.h"

#include "common/logging.h"

namespace aspen {
namespace sim {

CycleScheduler::CycleScheduler(net::Network* network, int sample_interval)
    : net_(network), sample_interval_(sample_interval) {
  ASPEN_CHECK(network != nullptr);
  ASPEN_CHECK(sample_interval > 0);
}

void CycleScheduler::Attach(CycleParticipant* participant) {
  ASPEN_CHECK(participant != nullptr);
  participants_.push_back(participant);
}

void CycleScheduler::AttachFront(CycleParticipant* participant) {
  ASPEN_CHECK(participant != nullptr);
  participants_.insert(participants_.begin(), participant);
}

Status CycleScheduler::RunCycles(int n) {
  if (participants_.empty()) {
    return Status::FailedPrecondition("CycleScheduler has no participants");
  }
  for (int i = 0; i < n; ++i) {
    for (CycleParticipant* p : participants_) {
      ASPEN_RETURN_NOT_OK(SamplePhase(p, cycle_));
    }
    for (int k = 0; k < sample_interval_; ++k) {
      net_->Step();
      if (!net_->HasTrafficInFlight()) break;
    }
    for (CycleParticipant* p : participants_) {
      ASPEN_RETURN_NOT_OK(DeliverPhase(p, cycle_));
    }
    for (CycleParticipant* p : participants_) {
      ASPEN_RETURN_NOT_OK(p->OnLearn(cycle_));
    }
    ++cycle_;
  }
  // Straggler drain: frames still in the air after the last learn phase
  // (results emitted at the final cycle) are transmitted and delivered so
  // reported result counts and traffic cover everything this run caused.
  net_->StepUntilQuiet(/*max_steps=*/16 * sample_interval_);
  for (CycleParticipant* p : participants_) {
    ASPEN_RETURN_NOT_OK(DeliverPhase(p, cycle_));
  }
  return Status::OK();
}

}  // namespace sim
}  // namespace aspen
