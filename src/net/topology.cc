#include "net/topology.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/logging.h"

namespace aspen {
namespace net {

double Distance(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

const char* TopologyKindName(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kSparseRandom:
      return "Sparse Random";
    case TopologyKind::kModerateRandom:
      return "Moderate Random";
    case TopologyKind::kMediumRandom:
      return "Medium Random";
    case TopologyKind::kDenseRandom:
      return "Dense Random";
    case TopologyKind::kGrid:
      return "Grid";
    case TopologyKind::kIntelLab:
      return "Intel Lab";
  }
  return "unknown";
}

double TargetDegree(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kSparseRandom:
      return 6.0;
    case TopologyKind::kModerateRandom:
      return 7.0;
    case TopologyKind::kMediumRandom:
      return 8.0;
    case TopologyKind::kDenseRandom:
      return 13.0;
    case TopologyKind::kGrid:
      return 7.0;
    case TopologyKind::kIntelLab:
      return 7.0;
  }
  return 7.0;
}

Topology::Topology(std::vector<Point> positions, double radio_range)
    : positions_(std::move(positions)), radio_range_(radio_range) {
  BuildAdjacency();
  BuildGabriel();
}

Topology::Topology(std::vector<Point> positions, double radio_range,
                   DeferGabriel)
    : positions_(std::move(positions)), radio_range_(radio_range) {
  // Generator-internal probe: the binary search over radio ranges only needs
  // degree and connectivity, so the Gabriel planarization is skipped until a
  // candidate is accepted (every publicly obtainable Topology has it built).
  BuildAdjacency();
}

namespace {

/// \brief Uniform-grid spatial index over node positions: cells at least one
/// radio range wide, so every in-range pair lies within one 3x3 cell block.
/// Cell pruning only discards pairs whose coordinate delta already exceeds
/// the range — membership decisions always use the exact Distance()
/// comparison, so index-based generation is byte-identical to the all-pairs
/// scan it replaced (tests/topology_test.cc GoldenEqualsAllPairsReference).
class UniformGrid {
 public:
  UniformGrid(const std::vector<Point>& pts, double range) : pts_(pts) {
    const int n = static_cast<int>(pts.size());
    min_x_ = max_x_ = pts[0].x;
    min_y_ = max_y_ = pts[0].y;
    for (const Point& p : pts) {
      min_x_ = std::min(min_x_, p.x);
      max_x_ = std::max(max_x_, p.x);
      min_y_ = std::min(min_y_, p.y);
      max_y_ = std::max(max_y_, p.y);
    }
    // Larger cells are always correct (they only admit more candidates); the
    // floor keeps the cell count O(n) when the range is tiny relative to the
    // bounding box (early binary-search probes in Random()).
    const double span = std::max(max_x_ - min_x_, max_y_ - min_y_);
    const double min_cell =
        span / (2.0 * std::sqrt(static_cast<double>(n)) + 1.0);
    cell_ = std::max(range, min_cell);
    cols_ = std::max(1, static_cast<int>((max_x_ - min_x_) / cell_) + 1);
    rows_ = std::max(1, static_cast<int>((max_y_ - min_y_) / cell_) + 1);
    // CSR cell index: counts, prefix sums, then a fill pass in ascending
    // node id, so each cell's member list is itself ascending.
    cell_start_.assign(static_cast<size_t>(rows_) * cols_ + 1, 0);
    for (const Point& p : pts) ++cell_start_[CellOf(p) + 1];
    for (size_t c = 1; c < cell_start_.size(); ++c) {
      cell_start_[c] += cell_start_[c - 1];
    }
    cell_nodes_.resize(n);
    std::vector<int32_t> fill(cell_start_.begin(), cell_start_.end() - 1);
    for (NodeId i = 0; i < n; ++i) {
      cell_nodes_[fill[CellOf(pts[i])]++] = i;
    }
  }

  /// Invokes fn(j) for every node j != i in the 3x3 cell block around i,
  /// in ascending node order within each cell (cells scanned row-major).
  template <typename Fn>
  void ForEachCandidate(NodeId i, Fn&& fn) const {
    const Point& pi = pts_[i];
    const int cx =
        std::min(cols_ - 1, static_cast<int>((pi.x - min_x_) / cell_));
    const int cy =
        std::min(rows_ - 1, static_cast<int>((pi.y - min_y_) / cell_));
    for (int dy = -1; dy <= 1; ++dy) {
      const int y = cy + dy;
      if (y < 0 || y >= rows_) continue;
      for (int dx = -1; dx <= 1; ++dx) {
        const int x = cx + dx;
        if (x < 0 || x >= cols_) continue;
        const int c = y * cols_ + x;
        for (int32_t k = cell_start_[c]; k < cell_start_[c + 1]; ++k) {
          const NodeId j = cell_nodes_[k];
          if (j != i) fn(j);
        }
      }
    }
  }

 private:
  int CellOf(const Point& p) const {
    int cx = std::min(cols_ - 1, static_cast<int>((p.x - min_x_) / cell_));
    int cy = std::min(rows_ - 1, static_cast<int>((p.y - min_y_) / cell_));
    return cy * cols_ + cx;
  }

  const std::vector<Point>& pts_;
  double min_x_, max_x_, min_y_, max_y_;
  double cell_;
  int cols_, rows_;
  std::vector<int32_t> cell_start_;
  std::vector<NodeId> cell_nodes_;
};

/// \brief Whether the unit-disk graph over `pts` at `range` has average
/// degree < `target`, deciding exactly as Topology::AverageDegree() would —
/// 2E/n compared in the same double arithmetic — but without materializing
/// adjacency, and stopping early once the degree provably reaches the
/// target. This is what makes each probe of Random()'s range search O(n)
/// instead of O(n^2).
bool DegreeBelowTarget(const std::vector<Point>& pts, double range,
                       double target) {
  const int n = static_cast<int>(pts.size());
  UniformGrid grid(pts, range);
  int64_t half_edges = 0;  // counts each edge twice, as adjacency sizes do
  for (NodeId i = 0; i < n; ++i) {
    grid.ForEachCandidate(i, [&](NodeId j) {
      if (j > i && Distance(pts[i], pts[j]) <= range) half_edges += 2;
    });
    if (static_cast<double>(half_edges) / n >= target) return false;
  }
  return static_cast<double>(half_edges) / n < target;
}

}  // namespace

void Topology::BuildAdjacency() {
  // Uniform-grid spatial index replaces the all-pairs O(n^2) scan with
  // O(n * local density); each neighbor list comes out sorted ascending —
  // exactly the order the all-pairs loop produced — so the generated graphs
  // are byte-identical.
  const int n = num_nodes();
  adjacency_.assign(n, {});
  if (n == 0) return;
  UniformGrid grid(positions_, radio_range_);
  for (NodeId i = 0; i < n; ++i) {
    const Point& pi = positions_[i];
    std::vector<NodeId>& adj = adjacency_[i];
    grid.ForEachCandidate(i, [&](NodeId j) {
      if (Distance(pi, positions_[j]) <= radio_range_) adj.push_back(j);
    });
    std::sort(adj.begin(), adj.end());
  }
}

void Topology::BuildGabriel() {
  const int n = num_nodes();
  gabriel_.assign(n, {});
  // Squared neighbor distances for one u, computed once and reused across
  // that u's edge and witness tests (the all-pairs version recomputed each
  // DistanceBetween per (v, w) pair).
  std::vector<double> d2u;
  for (int u = 0; u < n; ++u) {
    const auto& adj = adjacency_[u];
    d2u.resize(adj.size());
    for (size_t k = 0; k < adj.size(); ++k) {
      const double d = DistanceBetween(u, adj[k]);
      d2u[k] = d * d;
    }
    for (size_t vi = 0; vi < adj.size(); ++vi) {
      const NodeId v = adj[vi];
      if (v < u) continue;  // handle each edge once
      // Keep (u, v) iff no witness w lies inside the circle whose
      // diameter is the segment uv: d(u,w)^2 + d(w,v)^2 < d(u,v)^2.
      const double duv2 = d2u[vi];
      bool witness = false;
      for (size_t wi = 0; wi < adj.size(); ++wi) {
        const NodeId w = adj[wi];
        if (w == v) continue;
        const double dwv = DistanceBetween(w, v);
        if (d2u[wi] + dwv * dwv < duv2) {
          witness = true;
          break;
        }
      }
      if (!witness) {
        gabriel_[u].push_back(v);
        gabriel_[v].push_back(static_cast<NodeId>(u));
      }
    }
  }
  for (auto& adj : gabriel_) std::sort(adj.begin(), adj.end());
}

bool Topology::AreNeighbors(NodeId a, NodeId b) const {
  if (a == b) return false;
  const auto& adj = adjacency_[a];
  return std::find(adj.begin(), adj.end(), b) != adj.end();
}

double Topology::AverageDegree() const {
  if (num_nodes() == 0) return 0.0;
  size_t total = 0;
  for (const auto& adj : adjacency_) total += adj.size();
  return static_cast<double>(total) / num_nodes();
}

bool Topology::IsConnected() const {
  if (num_nodes() == 0) return true;
  auto hops = HopDistancesFrom(0);
  return std::none_of(hops.begin(), hops.end(),
                      [](int h) { return h < 0; });
}

std::vector<int> Topology::HopDistancesFrom(NodeId src) const {
  std::vector<int> dist(num_nodes(), -1);
  std::queue<NodeId> frontier;
  dist[src] = 0;
  frontier.push(src);
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : adjacency_[u]) {
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

std::vector<NodeId> Topology::ShortestPath(NodeId src, NodeId dst) const {
  std::vector<NodeId> parent(num_nodes(), -1);
  std::vector<bool> seen(num_nodes(), false);
  std::queue<NodeId> frontier;
  seen[src] = true;
  frontier.push(src);
  while (!frontier.empty() && !seen[dst]) {
    NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : adjacency_[u]) {
      if (!seen[v]) {
        seen[v] = true;
        parent[v] = u;
        frontier.push(v);
      }
    }
  }
  if (!seen[dst]) return {};
  std::vector<NodeId> path;
  for (NodeId u = dst; u != -1; u = parent[u]) path.push_back(u);
  std::reverse(path.begin(), path.end());
  ASPEN_DCHECK(path.front() == src);
  return path;
}

NodeId Topology::NearestNode(const Point& p) const {
  NodeId best = 0;
  double best_d = Distance(positions_[0], p);
  for (int i = 1; i < num_nodes(); ++i) {
    double d = Distance(positions_[i], p);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

Result<Topology> Topology::Random(int num_nodes, double target_degree,
                                  uint64_t seed, double field_size) {
  if (num_nodes < 2) {
    return Status::InvalidArgument("Random topology needs >= 2 nodes");
  }
  if (target_degree <= 0 || target_degree >= num_nodes) {
    return Status::InvalidArgument("target_degree out of range");
  }
  Rng rng(seed);
  // Retry placements until a connected graph at (close to) the target degree
  // is found; each retry re-draws all positions.
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::vector<Point> pts(num_nodes);
    pts[0] = {field_size / 2.0, field_size / 2.0};  // base at field center
    for (int i = 1; i < num_nodes; ++i) {
      pts[i] = {rng.UniformDouble() * field_size,
                rng.UniformDouble() * field_size};
    }
    // Binary-search the radio range for the target average degree. Probes
    // only count edges (early-terminated, via the spatial index) — adjacency
    // is materialized once for the accepted range, and the Gabriel
    // planarization only for the accepted candidate.
    double lo = 1.0, hi = field_size * std::sqrt(2.0);
    double best_range = hi;
    for (int iter = 0; iter < 48; ++iter) {
      double mid = 0.5 * (lo + hi);
      if (DegreeBelowTarget(pts, mid, target_degree)) {
        lo = mid;
      } else {
        hi = mid;
        best_range = mid;
      }
    }
    // Accept if connected and close enough; otherwise grow range until
    // connected, then check the degree tolerance (dense targets tolerate
    // more slack because degree moves fast with range).
    Topology t(pts, best_range, DeferGabriel{});
    double range = t.radio_range();
    while (!t.IsConnected() && range < field_size * 2) {
      range *= 1.05;
      t = Topology(t.positions_, range, DeferGabriel{});
    }
    if (t.IsConnected() &&
        std::abs(t.AverageDegree() - target_degree) <= 1.0) {
      t.BuildGabriel();
      return t;
    }
  }
  return Status::Internal("could not generate connected topology at degree");
}

Result<Topology> Topology::Grid(int rows, int cols, double field_size) {
  if (rows < 2 || cols < 2) {
    return Status::InvalidArgument("Grid needs rows, cols >= 2");
  }
  std::vector<Point> pts;
  pts.reserve(static_cast<size_t>(rows) * cols);
  const double dx = field_size / cols;
  const double dy = field_size / rows;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      pts.push_back({(c + 0.5) * dx, (r + 0.5) * dy});
    }
  }
  // Range covering the 8-neighborhood: just over the diagonal spacing.
  const double range = std::hypot(dx, dy) * 1.01;
  // Base station should be the node nearest the center: swap it to index 0.
  Point center{field_size / 2.0, field_size / 2.0};
  size_t best = 0;
  for (size_t i = 1; i < pts.size(); ++i) {
    if (Distance(pts[i], center) < Distance(pts[best], center)) best = i;
  }
  std::swap(pts[0], pts[best]);
  Topology t(std::move(pts), range);
  if (!t.IsConnected()) {
    return Status::Internal("grid topology unexpectedly disconnected");
  }
  return t;
}

Topology Topology::IntelLab() {
  // 54 nodes on an elongated floor plan (the lab is roughly 40m x 30m with
  // nodes along walls and desks). Deterministic synthesized layout: three
  // horizontal bands with jitter from a fixed-seed generator, scaled to a
  // 48m x 32m footprint. Base station (node 0) near the middle of the
  // south wall, as in the original deployment.
  Rng rng(0xA5C3E1);
  std::vector<Point> pts;
  pts.reserve(54);
  pts.push_back({24.0, 2.0});  // base
  int placed = 1;
  for (int band = 0; band < 3 && placed < 54; ++band) {
    double y0 = 6.0 + band * 10.0;
    for (int k = 0; k < 18 && placed < 54; ++k) {
      double x = 2.0 + k * (44.0 / 17.0) + (rng.UniformDouble() - 0.5) * 2.0;
      double y = y0 + (rng.UniformDouble() - 0.5) * 4.0;
      pts.push_back({x, y});
      ++placed;
    }
  }
  // Choose the smallest range (in 0.25m steps) giving a connected graph with
  // degree >= 6.
  double range = 6.0;
  Topology t(pts, range, DeferGabriel{});
  while ((!t.IsConnected() || t.AverageDegree() < 6.0) && range < 60.0) {
    range += 0.25;
    t = Topology(pts, range, DeferGabriel{});
  }
  t.BuildGabriel();
  return t;
}

Result<Topology> Topology::Make(TopologyKind kind, int num_nodes,
                                uint64_t seed) {
  switch (kind) {
    case TopologyKind::kGrid: {
      int side = static_cast<int>(std::lround(std::sqrt(num_nodes)));
      return Grid(side, side);
    }
    case TopologyKind::kIntelLab:
      return IntelLab();
    default:
      return Random(num_nodes, TargetDegree(kind), seed);
  }
}

}  // namespace net
}  // namespace aspen
