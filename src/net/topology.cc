#include "net/topology.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/logging.h"

namespace aspen {
namespace net {

double Distance(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

const char* TopologyKindName(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kSparseRandom:
      return "Sparse Random";
    case TopologyKind::kModerateRandom:
      return "Moderate Random";
    case TopologyKind::kMediumRandom:
      return "Medium Random";
    case TopologyKind::kDenseRandom:
      return "Dense Random";
    case TopologyKind::kGrid:
      return "Grid";
    case TopologyKind::kIntelLab:
      return "Intel Lab";
  }
  return "unknown";
}

double TargetDegree(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kSparseRandom:
      return 6.0;
    case TopologyKind::kModerateRandom:
      return 7.0;
    case TopologyKind::kMediumRandom:
      return 8.0;
    case TopologyKind::kDenseRandom:
      return 13.0;
    case TopologyKind::kGrid:
      return 7.0;
    case TopologyKind::kIntelLab:
      return 7.0;
  }
  return 7.0;
}

Topology::Topology(std::vector<Point> positions, double radio_range)
    : positions_(std::move(positions)), radio_range_(radio_range) {
  BuildAdjacency();
}

void Topology::BuildAdjacency() {
  const int n = num_nodes();
  adjacency_.assign(n, {});
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (Distance(positions_[i], positions_[j]) <= radio_range_) {
        adjacency_[i].push_back(j);
        adjacency_[j].push_back(i);
      }
    }
  }
  gabriel_.assign(n, {});
  for (int u = 0; u < n; ++u) {
    for (NodeId v : adjacency_[u]) {
      if (v < u) continue;  // handle each edge once
      // Keep (u, v) iff no witness w lies inside the circle whose
      // diameter is the segment uv: d(u,w)^2 + d(w,v)^2 < d(u,v)^2.
      const double duv2 = std::pow(DistanceBetween(u, v), 2);
      bool witness = false;
      for (NodeId w : adjacency_[u]) {
        if (w == v) continue;
        double a = std::pow(DistanceBetween(u, w), 2);
        double b = std::pow(DistanceBetween(w, v), 2);
        if (a + b < duv2) {
          witness = true;
          break;
        }
      }
      if (!witness) {
        gabriel_[u].push_back(v);
        gabriel_[v].push_back(static_cast<NodeId>(u));
      }
    }
  }
  for (auto& adj : gabriel_) std::sort(adj.begin(), adj.end());
}

bool Topology::AreNeighbors(NodeId a, NodeId b) const {
  if (a == b) return false;
  const auto& adj = adjacency_[a];
  return std::find(adj.begin(), adj.end(), b) != adj.end();
}

double Topology::AverageDegree() const {
  if (num_nodes() == 0) return 0.0;
  size_t total = 0;
  for (const auto& adj : adjacency_) total += adj.size();
  return static_cast<double>(total) / num_nodes();
}

bool Topology::IsConnected() const {
  if (num_nodes() == 0) return true;
  auto hops = HopDistancesFrom(0);
  return std::none_of(hops.begin(), hops.end(),
                      [](int h) { return h < 0; });
}

std::vector<int> Topology::HopDistancesFrom(NodeId src) const {
  std::vector<int> dist(num_nodes(), -1);
  std::queue<NodeId> frontier;
  dist[src] = 0;
  frontier.push(src);
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : adjacency_[u]) {
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

std::vector<NodeId> Topology::ShortestPath(NodeId src, NodeId dst) const {
  std::vector<NodeId> parent(num_nodes(), -1);
  std::vector<bool> seen(num_nodes(), false);
  std::queue<NodeId> frontier;
  seen[src] = true;
  frontier.push(src);
  while (!frontier.empty() && !seen[dst]) {
    NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : adjacency_[u]) {
      if (!seen[v]) {
        seen[v] = true;
        parent[v] = u;
        frontier.push(v);
      }
    }
  }
  if (!seen[dst]) return {};
  std::vector<NodeId> path;
  for (NodeId u = dst; u != -1; u = parent[u]) path.push_back(u);
  std::reverse(path.begin(), path.end());
  ASPEN_DCHECK(path.front() == src);
  return path;
}

NodeId Topology::NearestNode(const Point& p) const {
  NodeId best = 0;
  double best_d = Distance(positions_[0], p);
  for (int i = 1; i < num_nodes(); ++i) {
    double d = Distance(positions_[i], p);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

Result<Topology> Topology::Random(int num_nodes, double target_degree,
                                  uint64_t seed, double field_size) {
  if (num_nodes < 2) {
    return Status::InvalidArgument("Random topology needs >= 2 nodes");
  }
  if (target_degree <= 0 || target_degree >= num_nodes) {
    return Status::InvalidArgument("target_degree out of range");
  }
  Rng rng(seed);
  // Retry placements until a connected graph at (close to) the target degree
  // is found; each retry re-draws all positions.
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::vector<Point> pts(num_nodes);
    pts[0] = {field_size / 2.0, field_size / 2.0};  // base at field center
    for (int i = 1; i < num_nodes; ++i) {
      pts[i] = {rng.UniformDouble() * field_size,
                rng.UniformDouble() * field_size};
    }
    // Binary-search the radio range for the target average degree.
    double lo = 1.0, hi = field_size * std::sqrt(2.0);
    Topology best(pts, hi);
    for (int iter = 0; iter < 48; ++iter) {
      double mid = 0.5 * (lo + hi);
      Topology t(pts, mid);
      if (t.AverageDegree() < target_degree) {
        lo = mid;
      } else {
        hi = mid;
        best = std::move(t);
      }
    }
    // Accept if connected and close enough; otherwise grow range until
    // connected, then check the degree tolerance (dense targets tolerate
    // more slack because degree moves fast with range).
    Topology t = std::move(best);
    double range = t.radio_range();
    while (!t.IsConnected() && range < field_size * 2) {
      range *= 1.05;
      t = Topology(t.positions_, range);
    }
    if (t.IsConnected() &&
        std::abs(t.AverageDegree() - target_degree) <= 1.0) {
      return t;
    }
  }
  return Status::Internal("could not generate connected topology at degree");
}

Result<Topology> Topology::Grid(int rows, int cols, double field_size) {
  if (rows < 2 || cols < 2) {
    return Status::InvalidArgument("Grid needs rows, cols >= 2");
  }
  std::vector<Point> pts;
  pts.reserve(static_cast<size_t>(rows) * cols);
  const double dx = field_size / cols;
  const double dy = field_size / rows;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      pts.push_back({(c + 0.5) * dx, (r + 0.5) * dy});
    }
  }
  // Range covering the 8-neighborhood: just over the diagonal spacing.
  const double range = std::hypot(dx, dy) * 1.01;
  // Base station should be the node nearest the center: swap it to index 0.
  Point center{field_size / 2.0, field_size / 2.0};
  size_t best = 0;
  for (size_t i = 1; i < pts.size(); ++i) {
    if (Distance(pts[i], center) < Distance(pts[best], center)) best = i;
  }
  std::swap(pts[0], pts[best]);
  Topology t(std::move(pts), range);
  if (!t.IsConnected()) {
    return Status::Internal("grid topology unexpectedly disconnected");
  }
  return t;
}

Topology Topology::IntelLab() {
  // 54 nodes on an elongated floor plan (the lab is roughly 40m x 30m with
  // nodes along walls and desks). Deterministic synthesized layout: three
  // horizontal bands with jitter from a fixed-seed generator, scaled to a
  // 48m x 32m footprint. Base station (node 0) near the middle of the
  // south wall, as in the original deployment.
  Rng rng(0xA5C3E1);
  std::vector<Point> pts;
  pts.reserve(54);
  pts.push_back({24.0, 2.0});  // base
  int placed = 1;
  for (int band = 0; band < 3 && placed < 54; ++band) {
    double y0 = 6.0 + band * 10.0;
    for (int k = 0; k < 18 && placed < 54; ++k) {
      double x = 2.0 + k * (44.0 / 17.0) + (rng.UniformDouble() - 0.5) * 2.0;
      double y = y0 + (rng.UniformDouble() - 0.5) * 4.0;
      pts.push_back({x, y});
      ++placed;
    }
  }
  // Choose the smallest range (in 0.25m steps) giving a connected graph with
  // degree >= 6.
  double range = 6.0;
  Topology t(pts, range);
  while ((!t.IsConnected() || t.AverageDegree() < 6.0) && range < 60.0) {
    range += 0.25;
    t = Topology(pts, range);
  }
  return t;
}

Result<Topology> Topology::Make(TopologyKind kind, int num_nodes,
                                uint64_t seed) {
  switch (kind) {
    case TopologyKind::kGrid: {
      int side = static_cast<int>(std::lround(std::sqrt(num_nodes)));
      return Grid(side, side);
    }
    case TopologyKind::kIntelLab:
      return IntelLab();
    default:
      return Random(num_nodes, TargetDegree(kind), seed);
  }
}

}  // namespace net
}  // namespace aspen
