// Physical network topologies: node positions plus radio connectivity.
//
// The paper evaluates on random deployments of varying density (6, 7, 8, 13
// average neighbors), a grid deployment (~7 neighbors), and the Intel
// Research-Berkeley lab layout. All are unit-disk graphs over a 256m x 256m
// field (Table 1: "pos: real-life position (256m by 256m grid)").

#ifndef ASPEN_NET_TOPOLOGY_H_
#define ASPEN_NET_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace aspen {
namespace net {

/// Node identifier. The base station is always node 0.
using NodeId = int32_t;

/// \brief A 2D position in meters.
struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// Euclidean distance between two points, in meters.
double Distance(const Point& a, const Point& b);

/// \brief Named deployment densities used throughout the paper's evaluation
/// (Appendix C): random topologies with 6/7/8/13 average neighbors, plus a
/// grid with ~7 neighbors.
enum class TopologyKind {
  kSparseRandom,    ///< ~6 neighbors on average
  kModerateRandom,  ///< ~7 neighbors on average
  kMediumRandom,    ///< ~8 neighbors on average
  kDenseRandom,     ///< ~13 neighbors on average
  kGrid,            ///< regular grid, ~7 neighbors
  kIntelLab,        ///< 54-node Intel Research-Berkeley lab layout
};

/// Human-readable name matching the paper's figures ("Sparse Random", ...).
const char* TopologyKindName(TopologyKind kind);

/// Average neighbor count targeted by a named random density.
double TargetDegree(TopologyKind kind);

/// \brief An immutable unit-disk connectivity graph over positioned nodes.
///
/// Construction guarantees the graph is connected (generators retry with new
/// placements or grow the radio range until it is).
class Topology {
 public:
  /// \brief Generates a connected random deployment.
  ///
  /// Nodes are placed uniformly at random on `field_size` x `field_size`
  /// meters; the radio range is binary-searched so the average degree is
  /// within 0.5 of `target_degree`. Node 0 (the base station) is placed at
  /// the field center, matching the paper's setup where central nodes carry
  /// the collection load.
  static Result<Topology> Random(int num_nodes, double target_degree,
                                 uint64_t seed, double field_size = 256.0);

  /// \brief Generates a regular grid with `rows` x `cols` nodes and a radio
  /// range covering the 8-neighborhood (~7 average neighbors with border
  /// effects). The base station is the node nearest the grid center.
  static Result<Topology> Grid(int rows, int cols, double field_size = 256.0);

  /// \brief The 54-node Intel Research-Berkeley lab layout (synthesized
  /// coordinates with the lab's elongated aspect ratio; see DESIGN.md,
  /// substitutions). Radio range chosen for ~7 average neighbors.
  static Topology IntelLab();

  /// \brief Convenience dispatcher over the named kinds used in benches.
  static Result<Topology> Make(TopologyKind kind, int num_nodes,
                               uint64_t seed);

  int num_nodes() const { return static_cast<int>(positions_.size()); }
  const Point& position(NodeId id) const { return positions_[id]; }
  double radio_range() const { return radio_range_; }

  /// Neighbors within radio range (excludes the node itself).
  const std::vector<NodeId>& neighbors(NodeId id) const {
    return adjacency_[id];
  }

  /// \brief Gabriel-graph planarization neighbors: radio neighbors v of u
  /// such that no third node lies inside the circle with diameter (u, v).
  /// GPSR's perimeter mode traverses this planar subgraph. Built at
  /// construction — a Topology is fully immutable and safe to share across
  /// threads (parallel RunAveraged repetitions share one deployment). The
  /// Gabriel subgraph of a connected unit-disk graph is connected.
  const std::vector<NodeId>& GabrielNeighbors(NodeId id) const {
    return gabriel_[id];
  }

  bool AreNeighbors(NodeId a, NodeId b) const;

  /// Euclidean distance in meters between two nodes.
  double DistanceBetween(NodeId a, NodeId b) const {
    return Distance(positions_[a], positions_[b]);
  }

  /// Mean over nodes of neighbor-list size.
  double AverageDegree() const;

  /// True iff the connectivity graph is a single component.
  bool IsConnected() const;

  /// BFS hop counts from `src` to every node (-1 if unreachable).
  std::vector<int> HopDistancesFrom(NodeId src) const;

  /// Shortest path (in hops) from `src` to `dst` including both endpoints;
  /// empty if unreachable.
  std::vector<NodeId> ShortestPath(NodeId src, NodeId dst) const;

  /// The node whose position is nearest to `p`.
  NodeId NearestNode(const Point& p) const;

 private:
  /// Tag selecting the generator-internal probe constructor below.
  struct DeferGabriel {};

  Topology(std::vector<Point> positions, double radio_range);
  /// Probe construction for the generators' range searches: adjacency only,
  /// no Gabriel planarization (rebuilt via BuildGabriel before a candidate
  /// escapes to callers).
  Topology(std::vector<Point> positions, double radio_range, DeferGabriel);

  /// Adjacency via a uniform-grid spatial index (cell >= radio range, 3x3
  /// block candidate search); output identical to the all-pairs scan.
  void BuildAdjacency();
  /// Gabriel planarization bounded to each node's radio neighborhood (any
  /// witness for edge (u, v) is strictly closer to u than v is).
  void BuildGabriel();

  std::vector<Point> positions_;
  double radio_range_;
  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<std::vector<NodeId>> gabriel_;
};

}  // namespace net
}  // namespace aspen

#endif  // ASPEN_NET_TOPOLOGY_H_
