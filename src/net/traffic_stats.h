// Per-node traffic accounting: the paper's evaluation metrics (total
// traffic, base-station load, per-node load ranking) all derive from the
// counters collected here.

#ifndef ASPEN_NET_TRAFFIC_STATS_H_
#define ASPEN_NET_TRAFFIC_STATS_H_

#include <array>
#include <cstdint>
#include <vector>

#include "net/message.h"

namespace aspen {
namespace net {

/// \brief Counters for one node.
struct NodeTraffic {
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t messages_sent = 0;
  uint64_t messages_received = 0;
};

/// \brief Per-query send counters (multi-query media attribute every
/// transmission to the query whose message is on the air).
///
/// Exact when packet merging is disabled. With cross-query merging, the
/// shared link header of a merged physical packet is charged to the first
/// merged frame's query (a shared header has no unique owner); medium-wide
/// totals are always exact.
struct QueryTraffic {
  uint64_t bytes_sent = 0;
  uint64_t messages_sent = 0;
};

/// \brief Accumulates per-node, per-kind and per-query traffic over a run.
///
/// "Sent" counters include retransmissions (every radio transmission costs
/// energy and airtime whether or not it is received).
class TrafficStats {
 public:
  explicit TrafficStats(int num_nodes)
      : per_node_(num_nodes),
        bytes_by_kind_{},
        messages_by_kind_{} {}

  /// `query_id` attributes the transmission to one query on a shared
  /// medium; -1 uses the ambient query (see QueryScope), which computed
  /// control planes (exploration, nominations) run under.
  void RecordSend(NodeId node, MessageKind kind, int bytes,
                  int query_id = -1) {
    per_node_[node].bytes_sent += bytes;
    per_node_[node].messages_sent += 1;
    bytes_by_kind_[static_cast<size_t>(kind)] += bytes;
    messages_by_kind_[static_cast<size_t>(kind)] += 1;
    if (query_id < 0) query_id = ambient_query_;
    if (static_cast<size_t>(query_id) >= per_query_.size()) {
      per_query_.resize(query_id + 1);
    }
    per_query_[query_id].bytes_sent += bytes;
    per_query_[query_id].messages_sent += 1;
  }

  /// \brief Shard-private accumulator for the medium-wide counters.
  ///
  /// The sharded network step writes per-node rows directly (each shard
  /// owns its senders' rows exclusively) but must not touch the shared
  /// per-kind / per-query totals from worker threads; those go here and
  /// are absorbed once per step on the exchange thread. Integer sums make
  /// the absorption order irrelevant to the final counter values.
  struct ShardDelta {
    std::array<uint64_t, static_cast<size_t>(MessageKind::kNumKinds)>
        bytes_by_kind{};
    std::array<uint64_t, static_cast<size_t>(MessageKind::kNumKinds)>
        messages_by_kind{};
    std::vector<QueryTraffic> per_query;
  };

  /// RecordSend for shard compute phases: the per-node row is written
  /// directly (`node` must be owned by the calling shard); the medium-wide
  /// counters accumulate in `delta`. `query_id` must be explicit (the
  /// ambient query is main-thread state).
  void RecordSendSharded(NodeId node, MessageKind kind, int bytes,
                         int query_id, ShardDelta* delta) {
    per_node_[node].bytes_sent += bytes;
    per_node_[node].messages_sent += 1;
    delta->bytes_by_kind[static_cast<size_t>(kind)] += bytes;
    delta->messages_by_kind[static_cast<size_t>(kind)] += 1;
    if (static_cast<size_t>(query_id) >= delta->per_query.size()) {
      delta->per_query.resize(query_id + 1);
    }
    delta->per_query[query_id].bytes_sent += bytes;
    delta->per_query[query_id].messages_sent += 1;
  }

  /// Adds a shard's accumulated medium-wide counters and clears it.
  void Absorb(ShardDelta* delta) {
    for (size_t k = 0; k < delta->bytes_by_kind.size(); ++k) {
      bytes_by_kind_[k] += delta->bytes_by_kind[k];
      messages_by_kind_[k] += delta->messages_by_kind[k];
      delta->bytes_by_kind[k] = 0;
      delta->messages_by_kind[k] = 0;
    }
    if (delta->per_query.size() > per_query_.size()) {
      per_query_.resize(delta->per_query.size());
    }
    for (size_t q = 0; q < delta->per_query.size(); ++q) {
      per_query_[q].bytes_sent += delta->per_query[q].bytes_sent;
      per_query_[q].messages_sent += delta->per_query[q].messages_sent;
      delta->per_query[q] = QueryTraffic{};
    }
  }

  /// \brief Scoped ambient query id: RecordSend calls without an explicit
  /// query (the computed control plane) are attributed to `query_id` while
  /// the scope is alive.
  class QueryScope {
   public:
    QueryScope(TrafficStats* stats, int query_id)
        : stats_(stats), saved_(stats->ambient_query_) {
      stats_->ambient_query_ = query_id;
    }
    ~QueryScope() { stats_->ambient_query_ = saved_; }
    QueryScope(const QueryScope&) = delete;
    QueryScope& operator=(const QueryScope&) = delete;

   private:
    TrafficStats* stats_;
    int saved_;
  };

  void RecordReceive(NodeId node, int bytes) {
    per_node_[node].bytes_received += bytes;
    per_node_[node].messages_received += 1;
  }

  int num_nodes() const { return static_cast<int>(per_node_.size()); }
  const NodeTraffic& node(NodeId id) const { return per_node_[id]; }

  /// Sum of bytes transmitted by all nodes (each hop counted once).
  uint64_t TotalBytesSent() const;
  /// Sum of messages transmitted by all nodes.
  uint64_t TotalMessagesSent() const;
  /// Traffic through the base station (node 0): bytes sent plus received,
  /// i.e. the radio airtime the base participates in.
  uint64_t BaseStationBytes() const;
  uint64_t BaseStationMessages() const;
  /// Highest per-node sent+received byte count.
  uint64_t MaxNodeBytes() const;
  uint64_t MaxNodeMessages() const;

  /// Bytes (resp. messages) transmitted on behalf of one query. On an
  /// owned single-query network everything is query 0.
  uint64_t QueryBytesSent(int query_id) const {
    return static_cast<size_t>(query_id) < per_query_.size()
               ? per_query_[query_id].bytes_sent
               : 0;
  }
  uint64_t QueryMessagesSent(int query_id) const {
    return static_cast<size_t>(query_id) < per_query_.size()
               ? per_query_[query_id].messages_sent
               : 0;
  }

  uint64_t BytesByKind(MessageKind kind) const {
    return bytes_by_kind_[static_cast<size_t>(kind)];
  }
  uint64_t MessagesByKind(MessageKind kind) const {
    return messages_by_kind_[static_cast<size_t>(kind)];
  }

  /// Bytes for all initiation kinds (see IsInitiationKind).
  uint64_t InitiationBytes() const;
  /// Bytes for all non-initiation kinds.
  uint64_t ComputationBytes() const;

  /// Node loads (sent+received bytes), sorted descending; `k` entries
  /// (fewer if the network is smaller). Used for Figure 5.
  std::vector<uint64_t> TopLoadedNodes(int k) const;

  /// Zeroes one query's send counters. Called when a recycled query id is
  /// assigned to a new tenant on a shared medium, after the departed
  /// query's counters were finalized into the medium's ledger (medium-wide
  /// per-node and per-kind totals are untouched).
  void ResetQuery(int query_id) {
    if (query_id >= 0 && static_cast<size_t>(query_id) < per_query_.size()) {
      per_query_[query_id] = QueryTraffic{};
    }
  }

  /// Zeroes every counter (used between experiment phases).
  void Reset();

 private:
  std::vector<NodeTraffic> per_node_;
  std::array<uint64_t, static_cast<size_t>(MessageKind::kNumKinds)>
      bytes_by_kind_;
  std::array<uint64_t, static_cast<size_t>(MessageKind::kNumKinds)>
      messages_by_kind_;
  std::vector<QueryTraffic> per_query_;
  int ambient_query_ = 0;
};

}  // namespace net
}  // namespace aspen

#endif  // ASPEN_NET_TRAFFIC_STATS_H_
