// Per-node traffic accounting: the paper's evaluation metrics (total
// traffic, base-station load, per-node load ranking) all derive from the
// counters collected here.

#ifndef ASPEN_NET_TRAFFIC_STATS_H_
#define ASPEN_NET_TRAFFIC_STATS_H_

#include <array>
#include <cstdint>
#include <vector>

#include "net/message.h"

namespace aspen {
namespace net {

/// \brief Counters for one node.
struct NodeTraffic {
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t messages_sent = 0;
  uint64_t messages_received = 0;
};

/// \brief Accumulates per-node, per-kind traffic over a run.
///
/// "Sent" counters include retransmissions (every radio transmission costs
/// energy and airtime whether or not it is received).
class TrafficStats {
 public:
  explicit TrafficStats(int num_nodes)
      : per_node_(num_nodes),
        bytes_by_kind_{},
        messages_by_kind_{} {}

  void RecordSend(NodeId node, MessageKind kind, int bytes) {
    per_node_[node].bytes_sent += bytes;
    per_node_[node].messages_sent += 1;
    bytes_by_kind_[static_cast<size_t>(kind)] += bytes;
    messages_by_kind_[static_cast<size_t>(kind)] += 1;
  }

  void RecordReceive(NodeId node, int bytes) {
    per_node_[node].bytes_received += bytes;
    per_node_[node].messages_received += 1;
  }

  int num_nodes() const { return static_cast<int>(per_node_.size()); }
  const NodeTraffic& node(NodeId id) const { return per_node_[id]; }

  /// Sum of bytes transmitted by all nodes (each hop counted once).
  uint64_t TotalBytesSent() const;
  /// Sum of messages transmitted by all nodes.
  uint64_t TotalMessagesSent() const;
  /// Traffic through the base station (node 0): bytes sent plus received,
  /// i.e. the radio airtime the base participates in.
  uint64_t BaseStationBytes() const;
  uint64_t BaseStationMessages() const;
  /// Highest per-node sent+received byte count.
  uint64_t MaxNodeBytes() const;
  uint64_t MaxNodeMessages() const;

  uint64_t BytesByKind(MessageKind kind) const {
    return bytes_by_kind_[static_cast<size_t>(kind)];
  }
  uint64_t MessagesByKind(MessageKind kind) const {
    return messages_by_kind_[static_cast<size_t>(kind)];
  }

  /// Bytes for all initiation kinds (see IsInitiationKind).
  uint64_t InitiationBytes() const;
  /// Bytes for all non-initiation kinds.
  uint64_t ComputationBytes() const;

  /// Node loads (sent+received bytes), sorted descending; `k` entries
  /// (fewer if the network is smaller). Used for Figure 5.
  std::vector<uint64_t> TopLoadedNodes(int k) const;

  /// Zeroes every counter (used between experiment phases).
  void Reset();

 private:
  std::vector<NodeTraffic> per_node_;
  std::array<uint64_t, static_cast<size_t>(MessageKind::kNumKinds)>
      bytes_by_kind_;
  std::array<uint64_t, static_cast<size_t>(MessageKind::kNumKinds)>
      messages_by_kind_;
};

}  // namespace net
}  // namespace aspen

#endif  // ASPEN_NET_TRAFFIC_STATS_H_
