// Cycle-driven multi-hop wireless network simulator.
//
// This replaces the paper's TOSSIM substrate (see DESIGN.md substitutions):
// time advances in *transmission cycles*; each in-flight frame moves one hop
// per cycle. Links drop frames with a configurable Bernoulli probability and
// senders retransmit up to a bound — every attempt is charged to the
// sender's traffic counters, like real radio airtime. Failed (dead) nodes
// never acknowledge, so frames addressed to them exhaust their retries and
// surface through the drop handler, which the failure-recovery logic
// (Section 7) uses to detect dead join nodes.
//
// Loss draws are consumed unconditionally, one per physical transmission
// (per reception for multicast broadcasts), even when the receiver is dead
// or the effective loss probability is 0 or 1. Each *sender* owns an
// independent loss stream (seeded from the run seed and the node id), so a
// transmission's draw is a function of (sender, per-sender transmission
// ordinal) alone — independent of how transmissions at different nodes
// interleave. Node failure therefore never shifts the position of another
// node's draws, and the sharded step (below) reproduces the exact
// single-shard stream for any shard count.
//
// Sharded stepping: nodes are partitioned into contiguous id ranges
// (shards), each owning a frame slab and the step queues of the frames
// currently held by its nodes. A Step() is a compute phase — every shard
// transmits its senders' frames, draws losses from its own nodes' streams
// and forwards in-shard arrivals locally — followed by an exchange phase
// that merges each shard's deferred externally-visible effects (handler
// invocations, payload refcounts, cross-shard arrivals, per-kind/per-query
// stats) in one canonical content order. Frames are totally ordered by
// (packet class, holder, message id, destination), never by queue
// position, so the observable outcome of a Step is byte-identical for
// every shard count, including 1; shard count only decides which thread
// runs each shard's compute phase. See DESIGN.md ("sharded execution").
//
// Snoop semantics: overhearing keys off the *sender's* transmission alone.
// A neighbor snoops every on-air unicast attempt — including
// retransmissions and the final attempt before the sender abandons a frame
// — independent of whether the intended receiver loses the frame. Failed
// nodes never snoop, the intended next hop is never reported as a snooper,
// and merged packets snoop once per logical frame they carry. Multicast
// broadcasts are already delivered to every listed child and do not
// additionally snoop.
//
// Data plane: messages are POD envelopes (net/message.h). Routes are
// interned in the plane's RouteTable and referenced by id; payloads live in
// pooled slabs referenced by PayloadHandle. Frames are stored in a
// free-list slab and the step queues move slab indices, so a steady-state
// Step allocates nothing.
//
// Payload ownership: Submit/SubmitMulticast take over the payload
// reference carried by the message (releasing it even when submission
// fails). Delivery, drop and snoop handlers *borrow* the payload for the
// duration of the call; a handler that keeps the handle must AddRef it
// through the plane's PayloadArena.

#ifndef ASPEN_NET_NETWORK_H_
#define ASPEN_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <tuple>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/phase.h"
#include "common/rng.h"
#include "common/status.h"
#include "net/data_plane.h"
#include "net/geo_routing.h"
#include "net/message.h"
#include "net/topology.h"
#include "net/traffic_stats.h"

namespace aspen {
namespace net {

/// \brief Supplies tree-parent pointers for RoutingMode::kTreeToRoot.
/// Implemented by routing::RoutingTree; injected to avoid a layering cycle.
class ParentResolver {
 public:
  virtual ~ParentResolver() = default;
  /// Next hop from `at` toward the root, or -1 at the root.
  virtual NodeId ParentOf(NodeId at) const = 0;
};

struct NetworkOptions {
  /// Per-transmission loss probability (TOSSIM-style radio error).
  double loss_prob = 0.0;
  /// Retransmissions before a frame is dropped (total attempts =
  /// max_retries + 1).
  int max_retries = 3;
  /// Enables the opportunistic packet-merging optimization (Appendix E,
  /// "other opportunistic techniques"): frames queued at the same node for
  /// the same next hop and same final destination share one link header.
  bool enable_merging = false;
  /// Enables promiscuous overhearing callbacks (used by path collapsing).
  bool enable_snooping = false;
  uint64_t seed = 1;
};

/// \brief The simulator. Owns frame queues, traffic stats and the clock.
class Network {
 public:
  /// Delivery at the message's final destination (or a multicast target).
  /// `at` is the delivering node (differs per target for multicast).
  using DeliveryHandler = std::function<void(const Message&, NodeId at)>;
  /// A frame was abandoned: it exhausted its retries toward `next_hop`, or
  /// the node holding it (`at`) failed and the frame died with it.
  using DropHandler =
      std::function<void(const Message&, NodeId at, NodeId next_hop)>;
  /// `snooper` overheard a frame from `from` to `to` (no traffic charged).
  using SnoopHandler = std::function<void(const Message&, NodeId snooper,
                                          NodeId from, NodeId to)>;

  /// `topology` must outlive the network. `plane` (route table + payload
  /// pools) is borrowed when given and must outlive the network; when null
  /// the network owns a private plane.
  Network(const Topology* topology, NetworkOptions options,
          DataPlane* plane = nullptr);

  void set_delivery_handler(DeliveryHandler h) { on_deliver_ = std::move(h); }
  void set_drop_handler(DropHandler h) { on_drop_ = std::move(h); }
  void set_snoop_handler(SnoopHandler h) { on_snoop_ = std::move(h); }
  /// `resolver` must outlive the network (or be reset before destruction).
  void set_parent_resolver(const ParentResolver* resolver) {
    parent_resolver_ = resolver;
  }

  DataPlane& plane() { return *plane_; }
  RouteTable& routes() { return plane_->routes(); }
  const RouteTable& routes() const { return plane_->routes(); }
  PayloadArena& payloads() { return plane_->payloads(); }

  /// \brief Injects a message at its origin. Returns the assigned id.
  ///
  /// If origin == dest the message is delivered immediately at zero cost.
  /// Invalid routes (no interned route, missing resolver) return an error.
  /// The payload reference is consumed in every case.
  Result<uint64_t> Submit(Message msg) ASPEN_REQUIRES_SEQUENTIAL;

  /// \brief Injects a multicast message rooted at msg.origin following the
  /// interned tree `route`. One frame per tree edge; shared prefixes are
  /// transmitted once.
  Result<uint64_t> SubmitMulticast(Message msg, McastId route)
      ASPEN_REQUIRES_SEQUENTIAL;

  /// \brief Repartitions the node space into shards. `starts[i]` is the
  /// first node id of shard i; starts[0] must be 0 and starts must ascend.
  /// `pool` (borrowed, may be null = inline) runs the per-shard compute
  /// phases of subsequent Step() calls. Must be called while no traffic is
  /// in flight. A network starts with one shard and no pool.
  void ConfigureSharding(std::vector<NodeId> starts,
                         common::WorkerPool* pool) ASPEN_REQUIRES_SEQUENTIAL;

  /// Drops the borrowed worker pool; subsequent Steps compute every shard
  /// inline. Called by the pool's owner when it is destroyed first.
  void DetachShardPool() { pool_ = nullptr; }

  /// Pre-grows every shard's frame slab, free/flight lists and effect
  /// buffers for an expected steady-state load of `frames_per_shard`
  /// in-flight frames. Callers (query initiation) pass their per-cycle
  /// emission bound so the cycle loop never grows these mid-run; the
  /// reserve is a floor — an unusually deep in-flight tail still grows the
  /// slabs, which the benches' allocation audits would surface.
  void ReserveSteadyState(size_t frames_per_shard) ASPEN_REQUIRES_SEQUENTIAL;

  int num_shards() const { return static_cast<int>(shard_starts_.size()); }
  /// The shard owning node `id`.
  int ShardOf(NodeId id) const {
    int s = num_shards() - 1;
    while (shard_starts_[s] > id) --s;
    return s;
  }

  /// Advances one transmission cycle (compute phases per shard, then the
  /// canonical exchange phase; see the class comment). Sequential-phase
  /// only: the shard compute jobs it forks are the *only* code of a cycle
  /// allowed to run outside the capability.
  void Step() ASPEN_REQUIRES_SEQUENTIAL;

  /// Steps until no frames are in flight or `max_steps` elapse; returns the
  /// number of steps taken.
  int StepUntilQuiet(int max_steps = 1 << 20) ASPEN_REQUIRES_SEQUENTIAL;

  bool HasTrafficInFlight() const;
  /// True while any frame stamped with `query_id` is in flight. Query-id
  /// recycling on a shared medium waits for this to clear so a reused id
  /// never inherits a departed query's straggler frames.
  bool HasQueryTrafficInFlight(int query_id) const;
  /// Frames currently in flight across all shards (service-mode occupancy).
  int64_t frames_in_flight() const;
  /// Total frame-slab slots allocated across all shards (never shrinks).
  size_t frame_slab_capacity() const;
  int64_t now() const { return now_; }

  TrafficStats& stats() { return stats_; }
  const TrafficStats& stats() const { return stats_; }
  const Topology& topology() const { return *topology_; }
  const NetworkOptions& options() const { return options_; }

  // ---- scenario mutation API -----------------------------------------------
  // The narrow surface scripted dynamics (src/scenario/) may mutate mid-run.
  // Everything else about a network is fixed at construction.

  /// Marks a node dead: it stops forwarding, acking and originating.
  void FailNode(NodeId id) ASPEN_REQUIRES_SEQUENTIAL;
  /// Brings a dead node back (used by repair experiments).
  void ReviveNode(NodeId id) ASPEN_REQUIRES_SEQUENTIAL;
  bool IsFailed(NodeId id) const { return failed_[id]; }

  /// Replaces the default per-transmission loss probability (applies to
  /// every link without a per-link override).
  void set_loss_prob(double p) ASPEN_REQUIRES_SEQUENTIAL {
    options_.loss_prob = p;
  }
  /// Overrides the loss probability of the directed link from->to.
  void SetLinkLoss(NodeId from, NodeId to, double p) ASPEN_REQUIRES_SEQUENTIAL;
  /// Removes a per-link override; the link falls back to the default.
  void ClearLinkLoss(NodeId from, NodeId to) ASPEN_REQUIRES_SEQUENTIAL;
  /// Effective loss probability of the directed link from->to. The common
  /// no-overrides case is a single branch — no hash probe on the hot path.
  double LinkLoss(NodeId from, NodeId to) const {
    return link_loss_.empty() ? options_.loss_prob
                              : LinkLossLookup(from, to);
  }

 private:
  struct Frame {
    Message msg;
    McastId mcast = kInvalidRoute;  // kInvalidRoute for unicast
    NodeId at = -1;
    NodeId next = -1;
    int attempts = 0;
    int32_t path_idx = 0;  // index of `at` within the route (kSourcePath)
    int64_t submit_time = 0;
    /// GPSR greedy/perimeter routing state (kGeoGreedy frames).
    GeoRouteState geo;
  };
  static_assert(std::is_trivially_copyable<Frame>::value,
                "Frame must stay POD so the slab can memcpy it");

  /// \brief Canonical total order over the frames of one Step.
  ///
  /// (class, holder, k1, k2, k3) identifies the physical packet group —
  /// multicast broadcast (0, at, msg id), merge-eligible unicast
  /// (1, at, next, final dest, kind), singleton (2, at, msg id, dest) —
  /// and (id, dest) orders members within a group. Every component is
  /// frame *content*, never queue position, so the order is identical for
  /// any sharding of the queues (class comment).
  using SortKey =
      std::tuple<int8_t, NodeId, int64_t, int64_t, int64_t, uint64_t, NodeId>;

  /// One deferred externally-visible event of a shard's compute phase,
  /// applied in canonical (key, seq) order during the exchange phase.
  struct Effect {
    enum class Kind : uint8_t {
      kDeliver,   ///< fire the delivery handler: msg delivered at `a`
      kDrop,      ///< fire the drop handler: msg died at `a` toward `b`
      kSnoopTx,   ///< expand snoopers of the transmission `a` -> `b`
      kAddRef,    ///< payload refcount +1 (multicast fan-out)
      kRelease,   ///< payload refcount -1 (terminal frame outcome)
      kArrive,    ///< cross-shard arrival: apply `frame` at frame.next
    };
    Kind kind;
    int32_t seq;  ///< emission ordinal within one frame's processing
    SortKey key;  ///< the frame's canonical position in this Step
    Message msg;  ///< envelope for kDeliver / kDrop / kSnoopTx
    NodeId a = -1;
    NodeId b = -1;
    int bytes = 0;            ///< kArrive: received bytes to record
    PayloadHandle payload;    ///< kAddRef / kRelease
    Frame frame;              ///< kArrive: the migrating frame
  };

  /// \brief Everything one shard owns: the frames currently held by its
  /// node range, their slab, the step queues, scratch, and the compute
  /// phase's deferred outputs.
  struct Shard {
    std::vector<Frame> frames;
    std::vector<int32_t> free_frames;
    std::vector<int32_t> in_flight;
    std::vector<int32_t> pending;
    /// Reused packet-grouping scratch: (canonical key, slab index), sorted.
    std::vector<std::pair<SortKey, int32_t>> group_scratch;
    std::vector<Effect> effects;
    TrafficStats::ShardDelta stats_delta;
  };

  SortKey KeyFor(const Frame& f) const;
  /// Whether two canonically-sorted frames share one physical packet.
  static bool SamePacketGroup(const SortKey& a, const SortKey& b);

  /// Appends an effect with the next seq ordinal; caller fills the fields.
  Effect& PushEffect(Shard* sh, Effect::Kind kind, const SortKey& key,
                     int* seq);
  /// Deferred DropAndRelease: a kDrop effect followed by the kRelease.
  void PushDropEffects(Shard* sh, const SortKey& key, int* seq,
                       const Message& msg, NodeId at, NodeId next);

  /// Slab allocation within one shard. May grow the slab — references into
  /// it are invalidated.
  int32_t AllocFrame(Shard* shard);
  static void FreeFrame(Shard* shard, int32_t idx) {
    shard->free_frames.push_back(idx);
  }

  /// Computes the hop after `frame->at`, updating geo escape state;
  /// returns -1 when no progress is possible (caller drops) and -2 when
  /// `frame->at` is the final dest.
  NodeId ResolveNextHop(Frame* frame) const;

  /// Compute phase of one shard: transmit every in-flight frame held by
  /// the shard's nodes, forwarding in-shard arrivals locally and deferring
  /// every externally-visible effect into the shard's effect list.
  void ComputeShard(int shard_idx);

  // There is exactly ONE arrival state machine (ArriveSlot); what differs
  // between the compute and exchange phases is only where its
  // externally-visible events go, expressed as a sink:
  // DeferSink appends canonical-keyed effects (compute phase, concurrent);
  // InlineSink fires handlers / refcounts directly (exchange phase, which
  // is sequential and already at the event's canonical position).
  struct DeferSink;
  struct InlineSink;
  /// Arrival of the frame in `shard`'s slot `idx` at its `next` node:
  /// delivery, multicast fan-out, or re-queuing toward the next hop.
  /// Terminal outcomes free the slot and release (via the sink) the
  /// payload.
  /// Not analyzed: the one state machine is instantiated for both phases —
  /// with DeferSink from the (capability-free) shard compute walk and with
  /// InlineSink from exchange-phase code that already holds the sequential
  /// capability. A per-instantiation analysis cannot express that split.
  template <typename Sink>
  void ArriveSlot(Shard* shard, int32_t idx, Sink sink)
      ASPEN_NO_THREAD_SAFETY_ANALYSIS;
  /// Exchange-phase arrival of a migrated frame: copies it into the slab
  /// of the shard owning the arrival node, then runs ArriveSlot inline.
  void ArriveExchange(const Frame& f) ASPEN_REQUIRES_SEQUENTIAL;
  /// Merges per-shard effects in canonical order and applies them; absorbs
  /// stats deltas.
  void ExchangePhase() ASPEN_REQUIRES_SEQUENTIAL;

  void DeliverLocal(const Message& msg, NodeId at) ASPEN_REQUIRES_SEQUENTIAL;
  /// Fires the drop handler (borrowing) and releases the payload.
  void DropAndRelease(const Message& msg, NodeId at, NodeId next)
      ASPEN_REQUIRES_SEQUENTIAL;

  /// One unconditional loss draw from `sender`'s stream (consumes exactly
  /// one value for any p; see the class comment on stream comparability).
  bool DrawLoss(NodeId sender, double p) {
    return node_rng_[sender].UniformDouble() < p;
  }

  double LinkLossLookup(NodeId from, NodeId to) const;

  static uint64_t LinkKey(NodeId from, NodeId to) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
           static_cast<uint32_t>(to);
  }

  const Topology* topology_;
  NetworkOptions options_;
  /// Per-node loss streams; see the class comment.
  std::vector<Rng> node_rng_;
  TrafficStats stats_;
  const ParentResolver* parent_resolver_ = nullptr;
  std::unique_ptr<DataPlane> owned_plane_;  // null when plane is borrowed
  DataPlane* plane_;

  DeliveryHandler on_deliver_;
  DropHandler on_drop_;
  SnoopHandler on_snoop_;

  /// Shard partition: shard_starts_[i] = first node of shard i (always
  /// starts with 0); shards_[i] owns the frames held by that range.
  std::vector<NodeId> shard_starts_;
  std::vector<Shard> shards_;
  common::WorkerPool* pool_ = nullptr;  // borrowed; null = inline compute
  /// Cached compute job (avoids a per-Step std::function construction).
  std::function<void(int)> compute_job_;
  /// Reused exchange-phase merge scratch (pointers into shard effects).
  std::vector<const Effect*> merge_scratch_ ASPEN_GUARDED_BY_SEQUENTIAL;

  std::vector<bool> failed_;
  /// Per-link loss overrides as a (LinkKey, p) vector sorted by key; empty
  /// in the common case. Lookups binary-search; mutation is O(n) but only
  /// scenario events mutate. A sorted vector (vs a hash map) keeps link
  /// iteration order deterministic by construction and off detlint's
  /// unordered-container radar.
  std::vector<std::pair<uint64_t, double>> link_loss_;
  int64_t now_ = 0;
  uint64_t next_id_ ASPEN_GUARDED_BY_SEQUENTIAL = 1;
  bool in_step_ = false;
};

}  // namespace net
}  // namespace aspen

#endif  // ASPEN_NET_NETWORK_H_
