#include "net/route_table.h"

#include <algorithm>

#include "common/logging.h"

namespace aspen {
namespace net {

namespace {

/// FNV-1a over a sequence of int32 values.
uint64_t HashInts(uint64_t h, const int32_t* data, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<uint32_t>(data[i]);
    h *= 0x100000001B3ULL;
  }
  return h;
}

constexpr uint64_t kFnvOffset = 0xCBF29CE484222325ULL;

uint64_t HashMulticast(const MulticastRoute& route) {
  uint64_t h = kFnvOffset;
  for (const auto& [u, v] : route.edges) {
    const int32_t pair[2] = {u, v};
    h = HashInts(h, pair, 2);
  }
  return HashInts(h, route.targets.data(), route.targets.size());
}

uint64_t HashDestSet(NodeId root, const NodeId* targets, size_t n) {
  uint64_t h = HashInts(kFnvOffset, &root, 1);
  return HashInts(h, targets, n);
}

}  // namespace

void MulticastRoute::Normalize() {
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
}

bool MulticastRoute::IsTarget(NodeId id) const {
  return std::binary_search(targets.begin(), targets.end(), id);
}

std::pair<const std::pair<NodeId, NodeId>*, const std::pair<NodeId, NodeId>*>
MulticastRoute::ChildrenOf(NodeId id) const {
  auto lo = std::lower_bound(
      edges.begin(), edges.end(), id,
      [](const std::pair<NodeId, NodeId>& e, NodeId u) { return e.first < u; });
  auto hi = lo;
  while (hi != edges.end() && hi->first == id) ++hi;
  return {edges.data() + (lo - edges.begin()),
          edges.data() + (hi - edges.begin())};
}

RouteId RouteTable::InternPath(const NodeId* path, int len) {
  if (len <= 0) return kInvalidRoute;
  uint64_t h = HashInts(kFnvOffset, path, static_cast<size_t>(len));
  auto& bucket = path_dedup_[h];
  for (RouteId id : bucket) {
    // A retired-but-unswept route still matches here; returning it
    // resurrects the id (the sweep skips entries that regained references,
    // and frees floating ones — either way the id stays consistent).
    if (PathLength(id) == len &&
        std::equal(path, path + len, PathData(id))) {
      return id;
    }
  }
  Span span;
  span.len = static_cast<uint32_t>(len);
  span.hash = h;
  span.alive = true;
  // Reuse a freed storage block of the exact length before growing.
  auto blocks = free_blocks_.find(span.len);
  if (blocks != free_blocks_.end() && !blocks->second.empty()) {
    span.off = blocks->second.back();
    blocks->second.pop_back();
    std::copy(path, path + len, nodes_.begin() + span.off);
  } else {
    span.off = static_cast<uint32_t>(nodes_.size());
    nodes_.insert(nodes_.end(), path, path + len);
  }
  RouteId id;
  if (!free_path_ids_.empty()) {
    id = free_path_ids_.back();
    free_path_ids_.pop_back();
    spans_[id] = span;
  } else {
    id = static_cast<RouteId>(spans_.size());
    spans_.push_back(span);
  }
  bucket.push_back(id);
  ++live_paths_;
  return id;
}

McastId RouteTable::InternMulticast(MulticastRoute route) {
  route.Normalize();
  const uint64_t h = HashMulticast(route);
  auto& bucket = mcast_dedup_[h];
  for (McastId id : bucket) {
    if (mcasts_[id] == route) return id;
  }
  McastId id;
  if (!free_mcast_ids_.empty()) {
    id = free_mcast_ids_.back();
    free_mcast_ids_.pop_back();
    mcasts_[id] = std::move(route);
  } else {
    id = static_cast<McastId>(mcasts_.size());
    mcasts_.push_back(std::move(route));
    mcast_meta_.emplace_back();
  }
  McastMeta& meta = mcast_meta_[id];
  meta.refs = 0;
  meta.hash = h;
  meta.alive = true;
  meta.retire_pending = false;
  bucket.push_back(id);
  ++live_mcasts_;
  return id;
}

McastId RouteTable::FindSharedMulticast(
    NodeId root, const std::vector<NodeId>& targets) const {
  if (targets.empty()) return kInvalidRoute;
  const uint64_t h = HashDestSet(root, targets.data(), targets.size());
  auto it = dest_dedup_.find(h);
  if (it == dest_dedup_.end()) return kInvalidRoute;
  for (McastId id : it->second) {
    const McastMeta& m = mcast_meta_[id];
    // A retired-but-unswept shared tree still matches: the adopter's
    // AddMulticastRef resurrects it, exactly like content re-interning.
    if (m.alive && m.shared && m.dest_root == root &&
        mcasts_[id].targets == targets) {
      return id;
    }
  }
  return kInvalidRoute;
}

McastId RouteTable::InternSharedMulticast(NodeId root, MulticastRoute route) {
  McastId id = InternMulticast(std::move(route));
  if (id == kInvalidRoute) return id;
  McastMeta& meta = mcast_meta_[id];
  const uint64_t h =
      HashDestSet(root, mcasts_[id].targets.data(), mcasts_[id].targets.size());
  if (meta.shared) {
    // Already registered: either the same key (done) or a content
    // collision across keys — one key per slot, keep the first.
    return id;
  }
  meta.shared = true;
  meta.dest_hash = h;
  meta.dest_root = root;
  dest_dedup_[h].push_back(id);
  return id;
}

void RouteTable::AddPathRef(RouteId id) {
  ASPEN_DCHECK(IsValidPath(id));
  ++spans_[id].refs;
}

void RouteTable::ReleasePathRef(RouteId id) {
  ASPEN_DCHECK(IsValidPath(id));
  Span& s = spans_[id];
  ASPEN_DCHECK(s.refs > 0);
  if (--s.refs == 0 && !s.retire_pending) {
    s.retire_pending = true;
    retired_paths_.push_back(id);
  }
}

void RouteTable::AddMulticastRef(McastId id) {
  ASPEN_DCHECK(IsValidMulticast(id));
  ++mcast_meta_[id].refs;
}

void RouteTable::ReleaseMulticastRef(McastId id) {
  ASPEN_DCHECK(IsValidMulticast(id));
  McastMeta& m = mcast_meta_[id];
  ASPEN_DCHECK(m.refs > 0);
  if (--m.refs == 0 && !m.retire_pending) {
    m.retire_pending = true;
    retired_mcasts_.push_back(id);
  }
}

// detlint: order-insensitive(point find/erase on one hash key)
void RouteTable::EraseIdFrom(
    std::unordered_map<uint64_t, std::vector<int32_t>>* dedup, uint64_t hash,
    int32_t id) {
  auto it = dedup->find(hash);
  if (it == dedup->end()) return;
  auto& bucket = it->second;
  bucket.erase(std::remove(bucket.begin(), bucket.end(), id), bucket.end());
  if (bucket.empty()) dedup->erase(it);
}

size_t RouteTable::SweepRetired() {
  size_t freed = 0;
  for (RouteId id : retired_paths_) {
    Span& s = spans_[id];
    s.retire_pending = false;
    if (!s.alive || s.refs != 0) continue;  // resurrected since retirement
    EraseIdFrom(&path_dedup_, s.hash, id);
    free_blocks_[s.len].push_back(s.off);
    s.alive = false;
    free_path_ids_.push_back(id);
    --live_paths_;
    ++freed;
  }
  retired_paths_.clear();
  for (McastId id : retired_mcasts_) {
    McastMeta& m = mcast_meta_[id];
    m.retire_pending = false;
    if (!m.alive || m.refs != 0) continue;
    EraseIdFrom(&mcast_dedup_, m.hash, id);
    if (m.shared) {
      EraseIdFrom(&dest_dedup_, m.dest_hash, id);
      m.shared = false;
      m.dest_hash = 0;
      m.dest_root = -1;
    }
    // The route's edge/target vectors keep their capacity for the slot's
    // next tenant.
    mcasts_[id].edges.clear();
    mcasts_[id].targets.clear();
    m.alive = false;
    free_mcast_ids_.push_back(id);
    --live_mcasts_;
    ++freed;
  }
  retired_mcasts_.clear();
  return freed;
}

void RouteTable::Reset() {
  nodes_.clear();
  spans_.clear();
  mcasts_.clear();
  mcast_meta_.clear();
  path_dedup_.clear();
  mcast_dedup_.clear();
  dest_dedup_.clear();
  free_path_ids_.clear();
  free_blocks_.clear();
  free_mcast_ids_.clear();
  retired_paths_.clear();
  retired_mcasts_.clear();
  live_paths_ = 0;
  live_mcasts_ = 0;
}

}  // namespace net
}  // namespace aspen
