#include "net/route_table.h"

#include <algorithm>

namespace aspen {
namespace net {

namespace {

/// FNV-1a over a sequence of int32 values.
uint64_t HashInts(uint64_t h, const int32_t* data, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<uint32_t>(data[i]);
    h *= 0x100000001B3ULL;
  }
  return h;
}

constexpr uint64_t kFnvOffset = 0xCBF29CE484222325ULL;

}  // namespace

void MulticastRoute::Normalize() {
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
}

bool MulticastRoute::IsTarget(NodeId id) const {
  return std::binary_search(targets.begin(), targets.end(), id);
}

std::pair<const std::pair<NodeId, NodeId>*, const std::pair<NodeId, NodeId>*>
MulticastRoute::ChildrenOf(NodeId id) const {
  auto lo = std::lower_bound(
      edges.begin(), edges.end(), id,
      [](const std::pair<NodeId, NodeId>& e, NodeId u) { return e.first < u; });
  auto hi = lo;
  while (hi != edges.end() && hi->first == id) ++hi;
  return {edges.data() + (lo - edges.begin()),
          edges.data() + (hi - edges.begin())};
}

RouteId RouteTable::InternPath(const NodeId* path, int len) {
  if (len <= 0) return kInvalidRoute;
  uint64_t h = HashInts(kFnvOffset, path, static_cast<size_t>(len));
  auto& bucket = path_dedup_[h];
  for (RouteId id : bucket) {
    if (PathLength(id) == len &&
        std::equal(path, path + len, PathData(id))) {
      return id;
    }
  }
  Span span;
  span.off = static_cast<uint32_t>(nodes_.size());
  span.len = static_cast<uint32_t>(len);
  nodes_.insert(nodes_.end(), path, path + len);
  RouteId id = static_cast<RouteId>(spans_.size());
  spans_.push_back(span);
  bucket.push_back(id);
  return id;
}

McastId RouteTable::InternMulticast(MulticastRoute route) {
  route.Normalize();
  uint64_t h = kFnvOffset;
  for (const auto& [u, v] : route.edges) {
    const int32_t pair[2] = {u, v};
    h = HashInts(h, pair, 2);
  }
  h = HashInts(h, route.targets.data(), route.targets.size());
  auto& bucket = mcast_dedup_[h];
  for (McastId id : bucket) {
    if (mcasts_[id] == route) return id;
  }
  McastId id = static_cast<McastId>(mcasts_.size());
  mcasts_.push_back(std::move(route));
  bucket.push_back(id);
  return id;
}

void RouteTable::Reset() {
  nodes_.clear();
  spans_.clear();
  mcasts_.clear();
  path_dedup_.clear();
  mcast_dedup_.clear();
}

}  // namespace net
}  // namespace aspen
