// Pooled, generation-checked message payloads.
//
// The data plane attaches algorithm state to messages through a POD
// PayloadHandle instead of a shared_ptr: payload objects live in typed
// slabs (one TypedPool<T> per payload type), are reference-counted with a
// plain int (the simulator is single-threaded per network), and are
// returned to a free list on the final Release. Slots are recycled with
// their heap capacity intact — a reused DataPayload keeps its tuple
// buffer — so steady-state cycles allocate nothing.
//
// Safety: every slot carries a generation counter that is bumped when the
// slot is freed. Get/AddRef/Release on a stale handle (an old generation,
// i.e. a use-after-free or double-free) fail softly — Get returns nullptr,
// AddRef/Release return false — in every build mode, so protocol bugs
// surface as visible errors instead of silent aliasing.
//
// Ownership protocol (see also Network's header):
//  - Allocate() returns a handle owning one reference.
//  - Submitting a message transfers that reference to the network; the
//    network releases it when the frame terminates (delivery or drop).
//  - Delivery/drop/snoop handlers borrow the payload; a handler that
//    buffers the handle past its own return must AddRef (and Release when
//    done).

#ifndef ASPEN_NET_PAYLOAD_POOL_H_
#define ASPEN_NET_PAYLOAD_POOL_H_

#include <cstdint>
#include <memory>
#include <typeinfo>
#include <vector>

#include "common/logging.h"

namespace aspen {
namespace net {

/// \brief POD handle to a pooled payload. `pool` is the owning pool's tag
/// (0 = no payload); `slot`/`gen` locate and validate the slab slot.
struct PayloadHandle {
  int32_t slot = -1;
  uint32_t gen = 0;
  uint32_t pool = 0;

  bool valid() const { return pool != 0; }
};

/// \brief Type-erased pool interface: what the network needs to manage
/// payload lifetime without knowing payload types.
class PayloadPoolBase {
 public:
  virtual ~PayloadPoolBase() = default;
  /// False if the handle is stale (freed slot / old generation).
  virtual bool AddRef(PayloadHandle h) = 0;
  /// Drops one reference; frees the slot at zero. False if stale (a
  /// double-free attempt leaves the pool untouched).
  virtual bool Release(PayloadHandle h) = 0;
  /// Frees every live slot (leaked references included) but keeps slab
  /// capacity, so a new run reuses the memory.
  virtual void Clear() = 0;
  virtual size_t live() const = 0;
  virtual size_t capacity() const = 0;
};

/// \brief Typed slab pool for one payload type.
template <typename T>
class TypedPool : public PayloadPoolBase {
 public:
  explicit TypedPool(uint32_t tag) : tag_(tag) { ASPEN_CHECK(tag != 0); }

  /// Returns a handle owning one reference. The slot's T is *reused*, not
  /// reconstructed: the caller must overwrite every field it reads later
  /// (containers keep their old capacity — that is the point).
  PayloadHandle Allocate() {
    int32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = static_cast<int32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[slot];
    s.refs = 1;
    ++live_;
    return PayloadHandle{slot, s.gen, tag_};
  }

  /// The payload behind `h`, or nullptr when `h` is stale, from another
  /// pool, or empty. Pointers are invalidated by the next Allocate (slab
  /// growth); do not hold them across allocations.
  T* Get(PayloadHandle h) {
    if (h.pool != tag_ || h.slot < 0 ||
        h.slot >= static_cast<int32_t>(slots_.size())) {
      return nullptr;
    }
    Slot& s = slots_[h.slot];
    if (s.gen != h.gen || s.refs <= 0) return nullptr;
    return &s.value;
  }
  const T* Get(PayloadHandle h) const {
    return const_cast<TypedPool*>(this)->Get(h);
  }

  bool AddRef(PayloadHandle h) override {
    T* p = Get(h);
    if (p == nullptr) return false;
    ++slots_[h.slot].refs;
    return true;
  }

  bool Release(PayloadHandle h) override {
    T* p = Get(h);
    if (p == nullptr) return false;
    Slot& s = slots_[h.slot];
    if (--s.refs == 0) {
      ++s.gen;
      free_.push_back(h.slot);
      --live_;
    }
    return true;
  }

  /// Grows the slab to at least `total` slots, pushing the new slots onto
  /// the free list so Allocate hands them out in slot order (exactly the
  /// order organic growth would have). `warm` runs once per new slot's
  /// value so callers can pre-size contained buffers; together with slot
  /// recycling this moves the high-water allocations of a steady-state run
  /// to init time. Never shrinks and never touches existing slots.
  template <typename Fn>
  void Reserve(size_t total, Fn&& warm) {
    const size_t old = slots_.size();
    if (total <= old) return;
    slots_.reserve(total);
    free_.reserve(free_.size() + (total - old));
    for (size_t i = old; i < total; ++i) {
      slots_.emplace_back();
      warm(slots_.back().value);
    }
    for (size_t i = total; i > old; --i) {
      free_.push_back(static_cast<int32_t>(i - 1));
    }
  }

  void Clear() override {
    free_.clear();
    for (size_t i = 0; i < slots_.size(); ++i) {
      Slot& s = slots_[i];
      if (s.refs > 0) ++s.gen;
      s.refs = 0;
      free_.push_back(static_cast<int32_t>(i));
    }
    live_ = 0;
  }

  size_t live() const override { return live_; }
  size_t capacity() const override { return slots_.size(); }
  uint32_t tag() const { return tag_; }

 private:
  struct Slot {
    T value{};
    uint32_t gen = 1;  // 0 never matches: a default handle is always stale
    int32_t refs = 0;
  };

  std::vector<Slot> slots_;
  std::vector<int32_t> free_;
  size_t live_ = 0;
  uint32_t tag_;
};

/// \brief Registry of typed pools, addressed by handle tag. Owned by the
/// DataPlane; the network releases/addrefs through it type-erased, the
/// protocol layer allocates/reads through the typed accessors.
class PayloadArena {
 public:
  /// The pool registered under `tag`, created on first use. The (tag, T)
  /// binding is fixed for the arena's lifetime.
  template <typename T>
  TypedPool<T>* GetOrCreate(uint32_t tag) {
    ASPEN_CHECK(tag != 0);
    if (tag >= pools_.size()) pools_.resize(tag + 1);
    Entry& e = pools_[tag];
    if (e.pool == nullptr) {
      e.pool = std::make_unique<TypedPool<T>>(tag);
      e.type = &typeid(T);
    }
    ASPEN_CHECK(*e.type == typeid(T));
    return static_cast<TypedPool<T>*>(e.pool.get());
  }

  void AddRef(PayloadHandle h) {
    if (!h.valid()) return;
    PayloadPoolBase* p = PoolFor(h);
    if (p != nullptr) p->AddRef(h);
  }

  void Release(PayloadHandle h) {
    if (!h.valid()) return;
    PayloadPoolBase* p = PoolFor(h);
    if (p != nullptr) p->Release(h);
  }

  /// Frees all live payloads in every pool; keeps slab capacity.
  void Reset() {
    for (Entry& e : pools_) {
      if (e.pool != nullptr) e.pool->Clear();
    }
  }

  size_t live() const {
    size_t n = 0;
    for (const Entry& e : pools_) {
      if (e.pool != nullptr) n += e.pool->live();
    }
    return n;
  }

  /// Total slab slots across every pool (allocated capacity, never shrinks).
  size_t capacity() const {
    size_t n = 0;
    for (const Entry& e : pools_) {
      if (e.pool != nullptr) n += e.pool->capacity();
    }
    return n;
  }

 private:
  struct Entry {
    std::unique_ptr<PayloadPoolBase> pool;
    const std::type_info* type = nullptr;
  };

  PayloadPoolBase* PoolFor(PayloadHandle h) {
    if (h.pool >= pools_.size()) return nullptr;
    return pools_[h.pool].pool.get();
  }

  std::vector<Entry> pools_;
};

}  // namespace net
}  // namespace aspen

#endif  // ASPEN_NET_PAYLOAD_POOL_H_
