#include "net/message.h"

namespace aspen {
namespace net {

const char* MessageKindName(MessageKind kind) {
  switch (kind) {
    case MessageKind::kBeacon:
      return "beacon";
    case MessageKind::kQueryDissem:
      return "query_dissem";
    case MessageKind::kExploration:
      return "exploration";
    case MessageKind::kExplorationReply:
      return "exploration_reply";
    case MessageKind::kNomination:
      return "nomination";
    case MessageKind::kData:
      return "data";
    case MessageKind::kJoinResult:
      return "join_result";
    case MessageKind::kCostReport:
      return "cost_report";
    case MessageKind::kGroupDecision:
      return "group_decision";
    case MessageKind::kMulticastUpdate:
      return "multicast_update";
    case MessageKind::kCollapseHint:
      return "collapse_hint";
    case MessageKind::kWindowTransfer:
      return "window_transfer";
    case MessageKind::kRepair:
      return "repair";
    case MessageKind::kControl:
      return "control";
    case MessageKind::kNumKinds:
      break;
  }
  return "unknown";
}

bool IsInitiationKind(MessageKind kind) {
  switch (kind) {
    case MessageKind::kBeacon:
    case MessageKind::kQueryDissem:
    case MessageKind::kExploration:
    case MessageKind::kExplorationReply:
    case MessageKind::kNomination:
      return true;
    default:
      return false;
  }
}

}  // namespace net
}  // namespace aspen
