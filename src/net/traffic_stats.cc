#include "net/traffic_stats.h"

#include <algorithm>

namespace aspen {
namespace net {

uint64_t TrafficStats::TotalBytesSent() const {
  uint64_t total = 0;
  for (const auto& n : per_node_) total += n.bytes_sent;
  return total;
}

uint64_t TrafficStats::TotalMessagesSent() const {
  uint64_t total = 0;
  for (const auto& n : per_node_) total += n.messages_sent;
  return total;
}

uint64_t TrafficStats::BaseStationBytes() const {
  return per_node_[0].bytes_sent + per_node_[0].bytes_received;
}

uint64_t TrafficStats::BaseStationMessages() const {
  return per_node_[0].messages_sent + per_node_[0].messages_received;
}

uint64_t TrafficStats::MaxNodeBytes() const {
  uint64_t best = 0;
  for (const auto& n : per_node_) {
    best = std::max(best, n.bytes_sent + n.bytes_received);
  }
  return best;
}

uint64_t TrafficStats::MaxNodeMessages() const {
  uint64_t best = 0;
  for (const auto& n : per_node_) {
    best = std::max(best, n.messages_sent + n.messages_received);
  }
  return best;
}

uint64_t TrafficStats::InitiationBytes() const {
  uint64_t total = 0;
  for (size_t k = 0; k < bytes_by_kind_.size(); ++k) {
    if (IsInitiationKind(static_cast<MessageKind>(k))) {
      total += bytes_by_kind_[k];
    }
  }
  return total;
}

uint64_t TrafficStats::ComputationBytes() const {
  uint64_t total = 0;
  for (size_t k = 0; k < bytes_by_kind_.size(); ++k) {
    if (!IsInitiationKind(static_cast<MessageKind>(k))) {
      total += bytes_by_kind_[k];
    }
  }
  return total;
}

std::vector<uint64_t> TrafficStats::TopLoadedNodes(int k) const {
  std::vector<uint64_t> loads;
  loads.reserve(per_node_.size());
  for (const auto& n : per_node_) {
    loads.push_back(n.bytes_sent + n.bytes_received);
  }
  std::sort(loads.begin(), loads.end(), std::greater<>());
  if (static_cast<int>(loads.size()) > k) loads.resize(k);
  return loads;
}

void TrafficStats::Reset() {
  for (auto& n : per_node_) n = NodeTraffic{};
  bytes_by_kind_.fill(0);
  messages_by_kind_.fill(0);
  per_query_.clear();
}

}  // namespace net
}  // namespace aspen
