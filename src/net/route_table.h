// Interned routes: source paths and multicast trees registered once,
// referenced by dense ids from then on.
//
// The protocol layer's routes (producer -> join node segments, root ->
// producer distribution paths, multicast trees) stay fixed for thousands of
// sampling cycles. Instead of copying a path vector into every message, a
// route is interned here once and the message envelope carries its RouteId;
// the network resolves hops through the table. Interning dedupes by
// content, so re-registering an unchanged route after a placement rebuild
// returns the existing id and the table stays bounded.
//
// Ids are append-only and remain valid for the table's lifetime (until
// Reset), so frames in flight keep resolving a route even after its owner
// cached a newer one.

#ifndef ASPEN_NET_ROUTE_TABLE_H_
#define ASPEN_NET_ROUTE_TABLE_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/topology.h"

namespace aspen {
namespace net {

/// Dense id of an interned unicast path (kInvalidRoute = none).
using RouteId = int32_t;
/// Dense id of an interned multicast tree (kInvalidRoute = none).
using McastId = int32_t;
constexpr int32_t kInvalidRoute = -1;

/// \brief Explicit multicast route: a tree rooted at the origin. Delivery
/// fires at every node listed in `targets`.
///
/// Edges are stored as one flat (parent, child) vector sorted ascending —
/// fan-out order is therefore child-ascending per parent by construction,
/// never dependent on hash-map iteration order. `targets` is sorted unique.
struct MulticastRoute {
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::vector<NodeId> targets;

  /// Normalizes (sorts) edges and targets; call after bulk construction.
  void Normalize();

  bool IsTarget(NodeId id) const;
  /// [first, last) span of `edges` whose parent is `id`.
  std::pair<const std::pair<NodeId, NodeId>*, const std::pair<NodeId, NodeId>*>
  ChildrenOf(NodeId id) const;

  bool operator==(const MulticastRoute& o) const {
    return edges == o.edges && targets == o.targets;
  }
};

/// \brief Interns unicast paths and multicast trees; hands out dense ids.
class RouteTable {
 public:
  /// Interns `path` (returns the existing id when an identical path was
  /// interned before). Empty paths return kInvalidRoute.
  RouteId InternPath(const NodeId* path, int len);
  RouteId InternPath(const std::vector<NodeId>& path) {
    return InternPath(path.data(), static_cast<int>(path.size()));
  }

  int PathLength(RouteId id) const { return spans_[id].len; }
  const NodeId* PathData(RouteId id) const {
    return nodes_.data() + spans_[id].off;
  }
  NodeId PathNode(RouteId id, int i) const { return PathData(id)[i]; }
  NodeId PathFront(RouteId id) const { return PathData(id)[0]; }
  NodeId PathBack(RouteId id) const {
    return PathData(id)[spans_[id].len - 1];
  }
  bool IsValidPath(RouteId id) const {
    return id >= 0 && id < static_cast<RouteId>(spans_.size());
  }

  /// Interns `route` (normalized; deduped by content).
  McastId InternMulticast(MulticastRoute route);
  const MulticastRoute& Multicast(McastId id) const { return mcasts_[id]; }
  bool IsValidMulticast(McastId id) const {
    return id >= 0 && id < static_cast<McastId>(mcasts_.size());
  }

  size_t num_paths() const { return spans_.size(); }
  size_t num_multicasts() const { return mcasts_.size(); }

  /// Drops every route but keeps the backing capacity for the next run.
  void Reset();

 private:
  struct Span {
    uint32_t off = 0;
    uint32_t len = 0;
  };

  std::vector<NodeId> nodes_;  ///< concatenated path storage
  std::vector<Span> spans_;
  std::vector<MulticastRoute> mcasts_;
  /// Content-hash -> candidate ids (verified exactly on lookup).
  std::unordered_map<uint64_t, std::vector<RouteId>> path_dedup_;
  std::unordered_map<uint64_t, std::vector<McastId>> mcast_dedup_;
};

}  // namespace net
}  // namespace aspen

#endif  // ASPEN_NET_ROUTE_TABLE_H_
