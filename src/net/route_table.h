// Interned routes: source paths and multicast trees registered once,
// referenced by dense ids from then on.
//
// The protocol layer's routes (producer -> join node segments, root ->
// producer distribution paths, multicast trees) stay fixed for thousands of
// sampling cycles. Instead of copying a path vector into every message, a
// route is interned here once and the message envelope carries its RouteId;
// the network resolves hops through the table. Interning dedupes by
// content, so re-registering an unchanged route after a placement rebuild
// returns the existing id and the table stays bounded.
//
// Lifecycle under query churn: routes are *reference-counted* by their
// protocol-layer owners (send plans, placements, cached multicast trees).
// Interning returns an id without a reference; an owner that retains the id
// across cycles takes one with AddPathRef/AddMulticastRef and drops it with
// the matching Release. A route whose count reaches zero is not freed
// immediately — in-flight frames may still resolve it — it is *retired*
// onto a pending list. SweepRetired() frees retired routes; callers invoke
// it only at an epoch boundary: a moment when no frame is in flight on the
// network(s) using this table (a retired route cannot be referenced by a
// frame submitted after retirement, because zero references means no send
// plan names it). Ids of live routes never move or change; freed ids and
// their path storage are recycled for future interns, so a long-running
// service keeps the table's footprint proportional to the *live* route set.
//
// Re-interning content that is retired but not yet swept resurrects the
// existing id (the dedup entry survives until the sweep actually frees it).
// Tables whose owner never sweeps — single-query executors on an owned
// network — behave exactly like the historical append-only table.

#ifndef ASPEN_NET_ROUTE_TABLE_H_
#define ASPEN_NET_ROUTE_TABLE_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/phase.h"
#include "net/topology.h"

namespace aspen {
namespace net {

/// Dense id of an interned unicast path (kInvalidRoute = none).
using RouteId = int32_t;
/// Dense id of an interned multicast tree (kInvalidRoute = none).
using McastId = int32_t;
constexpr int32_t kInvalidRoute = -1;

/// \brief Explicit multicast route: a tree rooted at the origin. Delivery
/// fires at every node listed in `targets`.
///
/// Edges are stored as one flat (parent, child) vector sorted ascending —
/// fan-out order is therefore child-ascending per parent by construction,
/// never dependent on hash-map iteration order. `targets` is sorted unique.
struct MulticastRoute {
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::vector<NodeId> targets;

  /// Normalizes (sorts) edges and targets; call after bulk construction.
  void Normalize();

  bool IsTarget(NodeId id) const;
  /// [first, last) span of `edges` whose parent is `id`.
  std::pair<const std::pair<NodeId, NodeId>*, const std::pair<NodeId, NodeId>*>
  ChildrenOf(NodeId id) const;

  bool operator==(const MulticastRoute& o) const {
    return edges == o.edges && targets == o.targets;
  }
};

/// \brief Interns unicast paths and multicast trees; hands out dense ids.
class RouteTable {
 public:
  /// Interns `path` (returns the existing id when an identical path was
  /// interned before). Empty paths return kInvalidRoute. The returned id
  /// carries no reference; owners that retain it call AddPathRef.
  RouteId InternPath(const NodeId* path, int len) ASPEN_REQUIRES_SEQUENTIAL;
  RouteId InternPath(const std::vector<NodeId>& path)
      ASPEN_REQUIRES_SEQUENTIAL {
    return InternPath(path.data(), static_cast<int>(path.size()));
  }

  int PathLength(RouteId id) const { return spans_[id].len; }
  const NodeId* PathData(RouteId id) const {
    return nodes_.data() + spans_[id].off;
  }
  NodeId PathNode(RouteId id, int i) const { return PathData(id)[i]; }
  NodeId PathFront(RouteId id) const { return PathData(id)[0]; }
  NodeId PathBack(RouteId id) const {
    return PathData(id)[spans_[id].len - 1];
  }
  bool IsValidPath(RouteId id) const {
    return id >= 0 && id < static_cast<RouteId>(spans_.size()) &&
           spans_[id].alive;
  }

  /// Interns `route` (normalized; deduped by content). No reference taken.
  McastId InternMulticast(MulticastRoute route) ASPEN_REQUIRES_SEQUENTIAL;
  const MulticastRoute& Multicast(McastId id) const { return mcasts_[id]; }
  bool IsValidMulticast(McastId id) const {
    return id >= 0 && id < static_cast<McastId>(mcasts_.size()) &&
           mcast_meta_[id].alive;
  }

  // ---- shared (destination-set addressed) trees ------------------------------

  /// Looks up a live shared tree registered for exactly (root, targets) —
  /// `targets` must be sorted unique. Returns kInvalidRoute on miss. A hit
  /// lets a second query adopt an existing tree without rebuilding it (no
  /// construction work, no update traffic); the id is the same refcounted
  /// McastId the first owner holds, so the tree is freed only when the
  /// last owner releases it and the next epoch sweep runs.
  McastId FindSharedMulticast(NodeId root,
                              const std::vector<NodeId>& targets) const;

  /// Interns `route` (content-deduped like InternMulticast) and registers
  /// it under the destination-set key (root, route.targets) so later
  /// FindSharedMulticast calls resolve it. If the content already exists
  /// under a *different* destination-set key (distinct root producing an
  /// identical tree), the existing id is returned without re-keying — the
  /// caller's key simply stays unindexed and rebuilds on demand.
  McastId InternSharedMulticast(NodeId root, MulticastRoute route)
      ASPEN_REQUIRES_SEQUENTIAL;

  // ---- ownership & garbage collection ---------------------------------------

  /// Takes (resp. drops) one owner reference. Releasing the last reference
  /// retires the route; it stays resolvable until the next SweepRetired().
  void AddPathRef(RouteId id) ASPEN_REQUIRES_SEQUENTIAL;
  void ReleasePathRef(RouteId id) ASPEN_REQUIRES_SEQUENTIAL;
  void AddMulticastRef(McastId id) ASPEN_REQUIRES_SEQUENTIAL;
  void ReleaseMulticastRef(McastId id) ASPEN_REQUIRES_SEQUENTIAL;

  /// \brief Frees every retired route whose reference count is still zero
  /// and recycles its id and storage. Must only be called at an epoch
  /// boundary: no frame may be in flight on any network resolving through
  /// this table. Returns the number of routes freed.
  size_t SweepRetired() ASPEN_REQUIRES_SEQUENTIAL;

  /// Owner reference count of a live path (0 = floating or retired).
  int path_refs(RouteId id) const { return spans_[id].refs; }

  /// Live (interned, not freed) route counts — the service-mode occupancy
  /// metric. Retired-but-unswept routes still count as live.
  size_t live_paths() const { return live_paths_; }
  size_t live_multicasts() const { return live_mcasts_; }
  /// Allocated slot capacity (live + freed, never shrinks).
  size_t num_paths() const { return spans_.size(); }
  size_t num_multicasts() const { return mcasts_.size(); }

  /// Drops every route but keeps the backing capacity for the next run.
  void Reset() ASPEN_REQUIRES_SEQUENTIAL;

 private:
  struct Span {
    uint32_t off = 0;
    uint32_t len = 0;
    int32_t refs = 0;
    uint64_t hash = 0;
    bool alive = false;
    /// True while the id sits on the retired list (prevents duplicates).
    bool retire_pending = false;
  };
  struct McastMeta {
    int32_t refs = 0;
    uint64_t hash = 0;
    bool alive = false;
    bool retire_pending = false;
    /// Destination-set key for shared trees (valid iff `shared`): the
    /// sweep uses it to drop the dest_dedup_ entry when the slot frees.
    uint64_t dest_hash = 0;
    NodeId dest_root = -1;
    bool shared = false;
  };

  // detlint: order-insensitive(point find/erase on one hash key)
  static void EraseIdFrom(std::unordered_map<uint64_t, std::vector<int32_t>>*
                              dedup,
                          uint64_t hash, int32_t id);

  std::vector<NodeId> nodes_;  ///< concatenated path storage
  std::vector<Span> spans_;
  std::vector<MulticastRoute> mcasts_;
  std::vector<McastMeta> mcast_meta_;
  /// Content-hash -> candidate ids (verified exactly on lookup). Never
  /// iterated: every access is a point find/erase by content hash, so
  /// bucket order cannot reach any output.
  // detlint: order-insensitive(point lookup/erase only, never iterated)
  std::unordered_map<uint64_t, std::vector<RouteId>> path_dedup_;
  // detlint: order-insensitive(point lookup/erase only, never iterated)
  std::unordered_map<uint64_t, std::vector<McastId>> mcast_dedup_;
  /// Destination-set hash (root + sorted targets) -> candidate shared
  /// tree ids, verified exactly on lookup like the content indexes.
  // detlint: order-insensitive(point lookup/erase only, never iterated)
  std::unordered_map<uint64_t, std::vector<McastId>> dest_dedup_;
  /// Recycled span slots and storage blocks (len -> offsets, LIFO).
  std::vector<RouteId> free_path_ids_;
  // detlint: order-insensitive(keyed by span length; point lookup only)
  std::unordered_map<uint32_t, std::vector<uint32_t>> free_blocks_;
  std::vector<McastId> free_mcast_ids_;
  /// Ids whose last reference was dropped, awaiting an epoch-safe sweep.
  std::vector<RouteId> retired_paths_;
  std::vector<McastId> retired_mcasts_;
  size_t live_paths_ = 0;
  size_t live_mcasts_ = 0;
};

}  // namespace net
}  // namespace aspen

#endif  // ASPEN_NET_ROUTE_TABLE_H_
