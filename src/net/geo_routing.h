// GPSR-style geographic routing (Karp & Kung), used by the GHT baseline.
//
// Greedy mode forwards to the neighbor strictly closest to the target.
// At a local minimum the packet enters *perimeter mode*: it traverses the
// Gabriel-graph planarization of the connectivity graph with the
// right-hand rule, hugging the face boundary, until it reaches a node
// strictly closer to the target than where perimeter mode began — the
// behavior that gives GPSR its characteristically long detours around
// connectivity gaps (Figure 16). A TTL fallback to a shortest-path hop
// guards against the rare face traversals that orbit an interior face.

#ifndef ASPEN_NET_GEO_ROUTING_H_
#define ASPEN_NET_GEO_ROUTING_H_

#include "net/topology.h"

namespace aspen {
namespace net {

/// \brief Per-packet geographic routing state (carried by the frame).
struct GeoRouteState {
  /// Distance to the target when perimeter mode began; < 0 in greedy mode.
  double escape_dist = -1.0;
  /// Node the packet arrived from (for the right-hand rule); -1 initially.
  NodeId prev = -1;
  /// Hops travelled so far (TTL fallback).
  int hops = 0;
};

/// \brief One GPSR forwarding decision from `at` toward `dest`.
///
/// Updates `state` (mode transitions, hop count). Returns -1 when no
/// forwarding is possible at all (isolated node). Guaranteed to terminate:
/// after 4·|V| hops it falls back to shortest-path steps.
NodeId GeoNextHop(const Topology& topology, GeoRouteState* state, NodeId at,
                  NodeId dest);

/// \brief The full hop sequence GPSR takes from `from` to `to` (both
/// endpoints included). Used by path-quality benches and rendezvous cost
/// estimation.
std::vector<NodeId> GeoRoute(const Topology& topology, NodeId from,
                             NodeId to);

}  // namespace net
}  // namespace aspen

#endif  // ASPEN_NET_GEO_ROUTING_H_
