// The shared data-plane arena: one RouteTable plus one PayloadArena.
//
// Everything the steady-state cycle references by id — interned routes,
// pooled payload slabs — lives here. A Network either owns a private
// DataPlane (the default) or borrows one from its creator:
// core::RunExperiment owns the plane for a run, and RunAveraged reuses one
// plane per worker thread across repetitions so slab and table capacity
// warmed up by repetition k is still hot for repetition k+1.
//
// Reset() empties both members while keeping their backing storage; it must
// only be called when no network or executor is using the plane.

#ifndef ASPEN_NET_DATA_PLANE_H_
#define ASPEN_NET_DATA_PLANE_H_

#include "common/phase.h"
#include "net/payload_pool.h"
#include "net/route_table.h"

namespace aspen {
namespace net {

/// \brief Route table + payload pools shared by one network and the
/// protocol logic running over it.
class DataPlane {
 public:
  RouteTable& routes() { return routes_; }
  const RouteTable& routes() const { return routes_; }
  PayloadArena& payloads() { return payloads_; }
  const PayloadArena& payloads() const { return payloads_; }

  /// Clears routes and frees all payloads, keeping capacity.
  void Reset() ASPEN_REQUIRES_SEQUENTIAL {
    routes_.Reset();
    payloads_.Reset();
  }

 private:
  RouteTable routes_;
  PayloadArena payloads_;
};

}  // namespace net
}  // namespace aspen

#endif  // ASPEN_NET_DATA_PLANE_H_
