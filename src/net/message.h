// Message taxonomy and routing envelope for the simulator.
//
// The network transports opaque payloads hop-by-hop and charges traffic per
// transmitted frame: `size_bytes` per hop in mote mode, one message per hop
// in mesh mode (Appendix F: 802.11/TCP header overhead dominates, so the
// paper counts messages there).
//
// The envelope is plain data: routes travel as RouteIds interned in the
// network's RouteTable (net/route_table.h) and algorithm state travels as a
// PayloadHandle into the pooled payload slabs (net/payload_pool.h), so
// copying or queueing a Message is a memcpy — no allocation, no refcount
// traffic. See Network's header for the payload ownership protocol.

#ifndef ASPEN_NET_MESSAGE_H_
#define ASPEN_NET_MESSAGE_H_

#include <cstdint>
#include <type_traits>

#include "net/payload_pool.h"
#include "net/route_table.h"
#include "net/topology.h"

namespace aspen {
namespace net {

/// \brief Wire-format size constants (mote mode, bytes).
///
/// Derived from the paper's setting: 16-bit integer attributes, TinyOS-style
/// frames. Per-hop link header is charged on every transmission attempt.
struct WireFormat {
  static constexpr int kLinkHeaderBytes = 8;   ///< per-frame link/net header
  static constexpr int kAttributeBytes = 2;    ///< one 16-bit attribute value
  static constexpr int kNodeIdBytes = 2;       ///< node identifier
  static constexpr int kPathEntryBytes = 1;    ///< delta-encoded path vector entry
  static constexpr int kSeqBytes = 2;          ///< sequence number
  static constexpr int kCostEntryBytes = 2;    ///< cost / hop-count entry
};

/// \brief Logical message classes; used for traffic breakdowns and for
/// separating initiation from computation cost (Appendix D's taxonomy).
enum class MessageKind : uint8_t {
  kBeacon = 0,        ///< routing-tree construction beacons
  kQueryDissem,       ///< query flood from the base
  kExploration,       ///< static-predicate path search
  kExplorationReply,  ///< reversed path-vector reply
  kNomination,        ///< join-node nomination (sourceID, targetID, seq)
  kData,              ///< producer sample en route to a join node / base
  kJoinResult,        ///< join output en route to the base
  kCostReport,        ///< MPO ΔCp report to the group coordinator
  kGroupDecision,     ///< MPO decision broadcast within a group
  kMulticastUpdate,   ///< multicast-tree state push
  kCollapseHint,      ///< path-collapse opportunity notification
  kWindowTransfer,    ///< join-window handoff on migration
  kRepair,            ///< failure repair / rejoin traffic
  kControl,           ///< miscellaneous control
  kNumKinds,
};

const char* MessageKindName(MessageKind kind);

/// True for the kinds the paper counts as initiation (setup) traffic rather
/// than per-cycle computation traffic.
bool IsInitiationKind(MessageKind kind);

/// \brief How the network resolves each next hop.
enum class RoutingMode : uint8_t {
  kSourcePath,   ///< follow the interned `route` path
  kTreeToRoot,   ///< forward to the primary-tree parent until the root
  kGeoGreedy,    ///< forward to the neighbor nearest `geo_target`
  kLocalHop,     ///< `route` holds exactly [origin, neighbor]
};

/// \brief A routed message: a POD envelope. Envelope fields are owned by
/// the network layer; algorithm state travels in the pooled `payload`.
struct Message {
  MessageKind kind = MessageKind::kControl;
  RoutingMode mode = RoutingMode::kSourcePath;
  NodeId origin = -1;
  NodeId dest = -1;
  /// Interned route for kSourcePath/kLocalHop: origin first, dest last.
  RouteId route = kInvalidRoute;
  /// Geographic target for kGeoGreedy.
  Point geo_target;
  /// Payload size excluding per-hop link header.
  int size_bytes = 0;
  /// Unique id assigned by the network on submission.
  uint64_t id = 0;
  /// Owning query when several queries share one medium (SharedMedium
  /// dispatches deliveries by this id); 0 for single-query executors.
  int query_id = 0;
  /// Pooled payload handle (invalid = no payload).
  PayloadHandle payload;
};

static_assert(std::is_trivially_copyable<Message>::value,
              "Message must stay a POD envelope");

}  // namespace net
}  // namespace aspen

#endif  // ASPEN_NET_MESSAGE_H_
