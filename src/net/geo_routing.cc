#include "net/geo_routing.h"

#include <cmath>

#include "common/logging.h"

namespace aspen {
namespace net {

namespace {

/// Angle of the vector from `a` to `b` in [0, 2*pi).
double AngleOf(const Point& a, const Point& b) {
  double ang = std::atan2(b.y - a.y, b.x - a.x);
  if (ang < 0) ang += 2.0 * M_PI;
  return ang;
}

/// Right-hand rule: the first planar neighbor of `v` counterclockwise from
/// the reference direction `ref_angle` (exclusive, so the packet does not
/// immediately bounce back along the incoming edge unless it is the only
/// option).
NodeId FirstCcwNeighbor(const Topology& topo, NodeId v, double ref_angle) {
  const auto& planar = topo.GabrielNeighbors(v);
  if (planar.empty()) return -1;
  NodeId best = -1;
  double best_delta = 2.0 * M_PI + 1.0;
  for (NodeId w : planar) {
    double delta = AngleOf(topo.position(v), topo.position(w)) - ref_angle;
    while (delta <= 1e-12) delta += 2.0 * M_PI;  // strictly ccw
    if (delta < best_delta) {
      best_delta = delta;
      best = w;
    }
  }
  return best;
}

}  // namespace

NodeId GeoNextHop(const Topology& topology, GeoRouteState* state, NodeId at,
                  NodeId dest) {
  ASPEN_DCHECK(state != nullptr);
  if (at == dest) return -1;
  ++state->hops;
  // TTL fallback: a perimeter walk that orbits an interior face makes no
  // progress; after 4|V| hops route along the connectivity graph directly.
  if (state->hops > 4 * topology.num_nodes()) {
    auto path = topology.ShortestPath(at, dest);
    return path.size() < 2 ? -1 : path[1];
  }
  const Point& target = topology.position(dest);
  double here = Distance(topology.position(at), target);
  // Perimeter -> greedy transition: strictly closer than the entry point.
  if (state->escape_dist >= 0.0 && here < state->escape_dist) {
    state->escape_dist = -1.0;
  }
  if (state->escape_dist < 0.0) {
    NodeId best = -1;
    double best_d = here;
    for (NodeId nb : topology.neighbors(at)) {
      double d = Distance(topology.position(nb), target);
      if (d < best_d) {
        best_d = d;
        best = nb;
      }
    }
    if (best >= 0) {
      state->prev = at;
      return best;
    }
    // Local minimum: enter perimeter mode.
    state->escape_dist = here;
    state->prev = -1;  // first perimeter edge references the target bearing
  }
  // Perimeter mode: right-hand rule on the Gabriel planarization. The
  // reference direction is the incoming edge (or the target bearing when
  // entering perimeter mode).
  double ref_angle =
      state->prev >= 0
          ? AngleOf(topology.position(at), topology.position(state->prev))
          : AngleOf(topology.position(at), target);
  NodeId next = FirstCcwNeighbor(topology, at, ref_angle);
  if (next < 0) {
    auto path = topology.ShortestPath(at, dest);
    return path.size() < 2 ? -1 : path[1];
  }
  state->prev = at;
  return next;
}

std::vector<NodeId> GeoRoute(const Topology& topology, NodeId from,
                             NodeId to) {
  std::vector<NodeId> path{from};
  GeoRouteState state;
  NodeId cur = from;
  while (cur != to) {
    NodeId next = GeoNextHop(topology, &state, cur, to);
    if (next < 0) break;
    path.push_back(next);
    cur = next;
  }
  return path;
}

}  // namespace net
}  // namespace aspen
