#include "net/network.h"

#include <algorithm>
#include <tuple>

#include "common/logging.h"

namespace aspen {
namespace net {

Network::Network(const Topology* topology, NetworkOptions options)
    : topology_(topology),
      options_(options),
      rng_(options.seed),
      stats_(topology->num_nodes()),
      failed_(topology->num_nodes(), false) {}

void Network::FailNode(NodeId id) {
  ASPEN_CHECK(id >= 0 && id < topology_->num_nodes());
  failed_[id] = true;
}

void Network::ReviveNode(NodeId id) {
  ASPEN_CHECK(id >= 0 && id < topology_->num_nodes());
  failed_[id] = false;
}

void Network::SetLinkLoss(NodeId from, NodeId to, double p) {
  ASPEN_CHECK(from >= 0 && from < topology_->num_nodes());
  ASPEN_CHECK(to >= 0 && to < topology_->num_nodes());
  link_loss_[LinkKey(from, to)] = p;
}

void Network::ClearLinkLoss(NodeId from, NodeId to) {
  link_loss_.erase(LinkKey(from, to));
}

double Network::LinkLoss(NodeId from, NodeId to) const {
  if (!link_loss_.empty()) {
    auto it = link_loss_.find(LinkKey(from, to));
    if (it != link_loss_.end()) return it->second;
  }
  return options_.loss_prob;
}

NodeId Network::ResolveNextHop(Frame* frame) const {
  const Message& msg = frame->msg;
  if (frame->at == msg.dest) return -2;
  switch (msg.mode) {
    case RoutingMode::kSourcePath:
    case RoutingMode::kLocalHop: {
      if (frame->path_idx + 1 >= msg.path.size()) return -1;
      return msg.path[frame->path_idx + 1];
    }
    case RoutingMode::kTreeToRoot: {
      if (parent_resolver_ == nullptr) return -1;
      return parent_resolver_->ParentOf(frame->at);
    }
    case RoutingMode::kGeoGreedy:
      return GeoNextHop(*topology_, &frame->geo, frame->at, msg.dest);
  }
  return -1;
}

Result<uint64_t> Network::Submit(Message msg) {
  if (msg.origin < 0 || msg.origin >= topology_->num_nodes() ||
      msg.dest < 0 || msg.dest >= topology_->num_nodes()) {
    return Status::InvalidArgument("Submit: origin/dest out of range");
  }
  if (failed_[msg.origin]) {
    return Status::FailedPrecondition("Submit: origin node has failed");
  }
  msg.id = next_id_++;
  if (msg.origin == msg.dest) {
    DeliverLocal(msg, msg.dest);
    return msg.id;
  }
  if (msg.mode == RoutingMode::kSourcePath ||
      msg.mode == RoutingMode::kLocalHop) {
    if (msg.path.size() < 2 || msg.path.front() != msg.origin ||
        msg.path.back() != msg.dest) {
      return Status::InvalidArgument(
          "Submit: path must run from origin to dest");
    }
  }
  if (msg.mode == RoutingMode::kTreeToRoot && parent_resolver_ == nullptr) {
    return Status::FailedPrecondition("Submit: no parent resolver installed");
  }
  Frame frame;
  frame.msg = std::move(msg);
  frame.at = frame.msg.origin;
  frame.path_idx = 0;
  frame.submit_time = now_;
  NodeId next = ResolveNextHop(&frame);
  if (next < 0) {
    return Status::Unreachable("Submit: no route from origin");
  }
  frame.next = next;
  uint64_t id = frame.msg.id;
  pending_.push_back(std::move(frame));
  return id;
}

Result<uint64_t> Network::SubmitMulticast(
    Message msg, std::shared_ptr<const MulticastRoute> route) {
  if (msg.origin < 0 || msg.origin >= topology_->num_nodes()) {
    return Status::InvalidArgument("SubmitMulticast: origin out of range");
  }
  if (failed_[msg.origin]) {
    return Status::FailedPrecondition("SubmitMulticast: origin has failed");
  }
  if (route == nullptr) {
    return Status::InvalidArgument("SubmitMulticast: null route");
  }
  msg.id = next_id_++;
  uint64_t id = msg.id;
  // Deliver locally if the origin itself is a target.
  for (NodeId t : route->targets) {
    if (t == msg.origin) DeliverLocal(msg, msg.origin);
  }
  auto it = route->children.find(msg.origin);
  if (it != route->children.end()) {
    for (NodeId child : it->second) {
      Frame frame;
      frame.msg = msg;
      frame.msg.dest = child;  // per-edge destination; fan-out continues
      frame.route = route;
      frame.at = msg.origin;
      frame.next = child;
      frame.submit_time = now_;
      pending_.push_back(std::move(frame));
    }
  }
  return id;
}

void Network::DeliverLocal(const Message& msg, NodeId at) {
  if (on_deliver_) on_deliver_(msg, at);
}

void Network::Arrive(Frame frame) {
  frame.at = frame.next;
  frame.attempts = 0;
  if (frame.route != nullptr) {
    // Multicast: deliver at targets, then fan out to children.
    const MulticastRoute& route = *frame.route;
    bool is_target = std::find(route.targets.begin(), route.targets.end(),
                               frame.at) != route.targets.end();
    if (is_target) DeliverLocal(frame.msg, frame.at);
    auto it = route.children.find(frame.at);
    if (it != route.children.end()) {
      for (NodeId child : it->second) {
        Frame next_frame = frame;
        next_frame.next = child;
        next_frame.msg.dest = child;
        pending_.push_back(std::move(next_frame));
      }
    }
    return;
  }
  if (frame.at == frame.msg.dest) {
    DeliverLocal(frame.msg, frame.at);
    return;
  }
  if (frame.msg.mode == RoutingMode::kSourcePath ||
      frame.msg.mode == RoutingMode::kLocalHop) {
    ++frame.path_idx;
    // Guard against corrupted paths where the arrival node disagrees with
    // the path vector.
    if (frame.path_idx >= frame.msg.path.size() ||
        frame.msg.path[frame.path_idx] != frame.at) {
      if (on_drop_) on_drop_(frame.msg, frame.at, -1);
      return;
    }
  }
  NodeId next = ResolveNextHop(&frame);
  if (next == -2) {
    DeliverLocal(frame.msg, frame.at);
    return;
  }
  if (next < 0) {
    if (on_drop_) on_drop_(frame.msg, frame.at, -1);
    return;
  }
  frame.next = next;
  pending_.push_back(std::move(frame));
}

void Network::Step() {
  ASPEN_CHECK(!in_step_);
  in_step_ = true;
  in_flight_.swap(pending_);
  // Group frames into physical packets. Key:
  //   (0, at, msg.id, 0, 0)        multicast broadcast (one radio tx covers
  //                                 all children of `at` for this message)
  //   (1, at, next, dest, kind)    merge-eligible unicast data
  //   (2, at, index, 0, 0)         everything else: one packet per frame
  group_scratch_.clear();
  group_scratch_.reserve(in_flight_.size());
  for (size_t i = 0; i < in_flight_.size(); ++i) {
    const Frame& f = in_flight_[i];
    GroupKey key;
    if (f.route != nullptr) {
      key = {0, f.at, static_cast<int64_t>(f.msg.id), 0, 0};
    } else if (options_.enable_merging &&
               (f.msg.kind == MessageKind::kData ||
                f.msg.kind == MessageKind::kJoinResult)) {
      key = {1, f.at, f.next, f.msg.dest, static_cast<int>(f.msg.kind)};
    } else {
      key = {2, f.at, static_cast<int64_t>(i), 0, 0};
    }
    group_scratch_.emplace_back(key, i);
  }
  // Sorting (key, index) pairs reproduces the ordered map's iteration
  // exactly — keys ascending, members of a key in submission order — so the
  // RNG stream (and therefore every run) is bit-identical to the old
  // grouping.
  std::sort(group_scratch_.begin(), group_scratch_.end());

  for (size_t lo = 0, hi; lo < group_scratch_.size(); lo = hi) {
    hi = lo + 1;
    while (hi < group_scratch_.size() &&
           group_scratch_[hi].first == group_scratch_[lo].first) {
      ++hi;
    }
    const bool is_multicast = std::get<0>(group_scratch_[lo].first) == 0;
    Frame& first = in_flight_[group_scratch_[lo].second];
    NodeId sender = first.at;
    if (failed_[sender]) {
      // Frames die with their holder — but not silently: the drop handler
      // fires so protocol logic (e.g. failover replay retries) learns the
      // frame is gone. No traffic is charged; nothing was transmitted.
      for (size_t k = lo; k < hi; ++k) {
        Frame& f = in_flight_[group_scratch_[k].second];
        if (on_drop_) on_drop_(f.msg, f.at, f.next);
      }
      continue;
    }

    if (is_multicast) {
      // One broadcast transmission reaches every child; receptions are
      // independent, with one unconditional loss draw each.
      int bytes = first.msg.size_bytes + WireFormat::kLinkHeaderBytes;
      stats_.RecordSend(sender, first.msg.kind, bytes, first.msg.query_id);
      for (size_t k = lo; k < hi; ++k) {
        Frame& f = in_flight_[group_scratch_[k].second];
        const bool loss_draw = DrawLoss(LinkLoss(sender, f.next));
        const bool lost = loss_draw || failed_[f.next];
        if (lost) {
          ++f.attempts;
          if (f.attempts > options_.max_retries) {
            if (on_drop_) on_drop_(f.msg, f.at, f.next);
          } else {
            pending_.push_back(std::move(f));
          }
        } else {
          stats_.RecordReceive(f.next, bytes);
          Arrive(std::move(f));
        }
      }
      continue;
    }

    // Unicast physical packet (possibly several merged logical frames). The
    // loss draw is taken once per physical transmission and unconditionally
    // — a dead receiver must not skip the draw, or failing one node would
    // perturb the loss outcome of every later transmission in the run (see
    // the class comment).
    NodeId next = first.next;
    const bool loss_draw = DrawLoss(LinkLoss(sender, next));
    const bool lost = loss_draw || failed_[next];
    bool charged_header = false;
    for (size_t k = lo; k < hi; ++k) {
      Frame& f = in_flight_[group_scratch_[k].second];
      int bytes = f.msg.size_bytes;
      if (!charged_header) {
        bytes += WireFormat::kLinkHeaderBytes;
        charged_header = true;
      }
      stats_.RecordSend(sender, f.msg.kind, bytes, f.msg.query_id);
      // Snoop semantics (see header): neighbors overhear every on-air
      // attempt — even one the receiver loses, and even the final attempt
      // before the sender abandons the frame below.
      if (options_.enable_snooping && on_snoop_) {
        for (NodeId w : topology_->neighbors(sender)) {
          if (w != next && !failed_[w]) on_snoop_(f.msg, w, sender, next);
        }
      }
      if (lost) {
        ++f.attempts;
        if (f.attempts > options_.max_retries) {
          if (on_drop_) on_drop_(f.msg, f.at, f.next);
        } else {
          pending_.push_back(std::move(f));
        }
      } else {
        stats_.RecordReceive(next, bytes);
        Arrive(std::move(f));
      }
    }
  }
  in_flight_.clear();
  ++now_;
  in_step_ = false;
}

int Network::StepUntilQuiet(int max_steps) {
  int steps = 0;
  while (HasTrafficInFlight() && steps < max_steps) {
    Step();
    ++steps;
  }
  return steps;
}

}  // namespace net
}  // namespace aspen
