#include "net/network.h"

#include <algorithm>
#include <tuple>

#include "common/logging.h"

namespace aspen {
namespace net {

Network::Network(const Topology* topology, NetworkOptions options,
                 DataPlane* plane)
    : topology_(topology),
      options_(options),
      rng_(options.seed),
      stats_(topology->num_nodes()),
      failed_(topology->num_nodes(), false) {
  if (plane == nullptr) {
    owned_plane_ = std::make_unique<DataPlane>();
    plane_ = owned_plane_.get();
  } else {
    plane_ = plane;
  }
}

void Network::FailNode(NodeId id) {
  ASPEN_CHECK(id >= 0 && id < topology_->num_nodes());
  failed_[id] = true;
}

void Network::ReviveNode(NodeId id) {
  ASPEN_CHECK(id >= 0 && id < topology_->num_nodes());
  failed_[id] = false;
}

void Network::SetLinkLoss(NodeId from, NodeId to, double p) {
  ASPEN_CHECK(from >= 0 && from < topology_->num_nodes());
  ASPEN_CHECK(to >= 0 && to < topology_->num_nodes());
  link_loss_[LinkKey(from, to)] = p;
}

void Network::ClearLinkLoss(NodeId from, NodeId to) {
  link_loss_.erase(LinkKey(from, to));
}

double Network::LinkLossLookup(NodeId from, NodeId to) const {
  auto it = link_loss_.find(LinkKey(from, to));
  return it != link_loss_.end() ? it->second : options_.loss_prob;
}

int32_t Network::AllocFrame() {
  if (!free_frames_.empty()) {
    int32_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  frames_.emplace_back();
  return static_cast<int32_t>(frames_.size() - 1);
}

NodeId Network::ResolveNextHop(Frame* frame) const {
  const Message& msg = frame->msg;
  if (frame->at == msg.dest) return -2;
  switch (msg.mode) {
    case RoutingMode::kSourcePath:
    case RoutingMode::kLocalHop: {
      const RouteTable& rt = plane_->routes();
      if (!rt.IsValidPath(msg.route)) return -1;
      if (frame->path_idx + 1 >= rt.PathLength(msg.route)) return -1;
      return rt.PathNode(msg.route, frame->path_idx + 1);
    }
    case RoutingMode::kTreeToRoot: {
      if (parent_resolver_ == nullptr) return -1;
      return parent_resolver_->ParentOf(frame->at);
    }
    case RoutingMode::kGeoGreedy:
      return GeoNextHop(*topology_, &frame->geo, frame->at, msg.dest);
  }
  return -1;
}

Result<uint64_t> Network::Submit(Message msg) {
  if (msg.origin < 0 || msg.origin >= topology_->num_nodes() ||
      msg.dest < 0 || msg.dest >= topology_->num_nodes()) {
    plane_->payloads().Release(msg.payload);
    return Status::InvalidArgument("Submit: origin/dest out of range");
  }
  if (failed_[msg.origin]) {
    plane_->payloads().Release(msg.payload);
    return Status::FailedPrecondition("Submit: origin node has failed");
  }
  msg.id = next_id_++;
  if (msg.origin == msg.dest) {
    DeliverLocal(msg, msg.dest);
    plane_->payloads().Release(msg.payload);
    return msg.id;
  }
  if (msg.mode == RoutingMode::kSourcePath ||
      msg.mode == RoutingMode::kLocalHop) {
    const RouteTable& rt = plane_->routes();
    if (!rt.IsValidPath(msg.route) || rt.PathLength(msg.route) < 2 ||
        rt.PathFront(msg.route) != msg.origin ||
        rt.PathBack(msg.route) != msg.dest) {
      plane_->payloads().Release(msg.payload);
      return Status::InvalidArgument(
          "Submit: route must run from origin to dest");
    }
  }
  if (msg.mode == RoutingMode::kTreeToRoot && parent_resolver_ == nullptr) {
    plane_->payloads().Release(msg.payload);
    return Status::FailedPrecondition("Submit: no parent resolver installed");
  }
  const int32_t idx = AllocFrame();
  Frame& frame = frames_[idx];
  frame = Frame{};
  frame.msg = msg;
  frame.at = msg.origin;
  frame.path_idx = 0;
  frame.submit_time = now_;
  NodeId next = ResolveNextHop(&frame);
  if (next < 0) {
    FreeFrame(idx);
    plane_->payloads().Release(msg.payload);
    return Status::Unreachable("Submit: no route from origin");
  }
  frame.next = next;
  pending_.push_back(idx);
  return msg.id;
}

Result<uint64_t> Network::SubmitMulticast(Message msg, McastId route) {
  if (msg.origin < 0 || msg.origin >= topology_->num_nodes()) {
    plane_->payloads().Release(msg.payload);
    return Status::InvalidArgument("SubmitMulticast: origin out of range");
  }
  if (failed_[msg.origin]) {
    plane_->payloads().Release(msg.payload);
    return Status::FailedPrecondition("SubmitMulticast: origin has failed");
  }
  if (!plane_->routes().IsValidMulticast(route)) {
    plane_->payloads().Release(msg.payload);
    return Status::InvalidArgument("SubmitMulticast: unknown route");
  }
  msg.id = next_id_++;
  const uint64_t id = msg.id;
  // Children span: raw pointers into the route's edge storage, which stays
  // put even if a delivery handler interns new routes below.
  const MulticastRoute& r = plane_->routes().Multicast(route);
  const bool origin_is_target = r.IsTarget(msg.origin);
  auto [child, child_end] = r.ChildrenOf(msg.origin);
  if (origin_is_target) DeliverLocal(msg, msg.origin);
  const int fanout = static_cast<int>(child_end - child);
  if (fanout == 0) {
    plane_->payloads().Release(msg.payload);
    return id;
  }
  // The message's one payload reference becomes `fanout` frame references.
  for (int i = 1; i < fanout; ++i) plane_->payloads().AddRef(msg.payload);
  for (; child != child_end; ++child) {
    const int32_t idx = AllocFrame();
    Frame& frame = frames_[idx];
    frame = Frame{};
    frame.msg = msg;
    frame.msg.dest = child->second;  // per-edge destination; fan-out continues
    frame.mcast = route;
    frame.at = msg.origin;
    frame.next = child->second;
    frame.submit_time = now_;
    pending_.push_back(idx);
  }
  return id;
}

void Network::DeliverLocal(const Message& msg, NodeId at) {
  if (on_deliver_) on_deliver_(msg, at);
}

void Network::DropAndRelease(const Message& msg, NodeId at, NodeId next) {
  if (on_drop_) on_drop_(msg, at, next);
  plane_->payloads().Release(msg.payload);
}

void Network::Arrive(int32_t idx) {
  Frame& f = frames_[idx];
  f.at = f.next;
  f.attempts = 0;
  if (f.mcast != kInvalidRoute) {
    // Multicast: deliver at targets, then fan out to children. Copy the
    // frame first — the delivery handler may Submit, and fan-out allocates
    // slots; both can grow the slab and invalidate references into it.
    const Frame base = f;
    const MulticastRoute& route = plane_->routes().Multicast(base.mcast);
    const bool is_target = route.IsTarget(base.at);
    auto [child, child_end] = route.ChildrenOf(base.at);
    if (is_target) DeliverLocal(base.msg, base.at);
    const int fanout = static_cast<int>(child_end - child);
    if (fanout == 0) {
      FreeFrame(idx);
      plane_->payloads().Release(base.msg.payload);
      return;
    }
    for (int i = 1; i < fanout; ++i) plane_->payloads().AddRef(base.msg.payload);
    bool reused_slot = false;
    for (; child != child_end; ++child) {
      const int32_t nidx = reused_slot ? AllocFrame() : idx;
      reused_slot = true;
      Frame& nf = frames_[nidx];
      nf = base;
      nf.next = child->second;
      nf.msg.dest = child->second;
      pending_.push_back(nidx);
    }
    return;
  }
  if (f.at == f.msg.dest) {
    // Terminal: copy the envelope, free the slot, then hand the copy to
    // the handler (which may Submit into the freed slot).
    const Message m = f.msg;
    const NodeId at = f.at;
    FreeFrame(idx);
    DeliverLocal(m, at);
    plane_->payloads().Release(m.payload);
    return;
  }
  if (f.msg.mode == RoutingMode::kSourcePath ||
      f.msg.mode == RoutingMode::kLocalHop) {
    ++f.path_idx;
    // Guard against corrupted routes where the arrival node disagrees with
    // the interned path.
    const RouteTable& rt = plane_->routes();
    if (f.path_idx >= rt.PathLength(f.msg.route) ||
        rt.PathNode(f.msg.route, f.path_idx) != f.at) {
      const Message m = f.msg;
      const NodeId at = f.at;
      FreeFrame(idx);
      DropAndRelease(m, at, -1);
      return;
    }
  }
  NodeId next = ResolveNextHop(&f);
  if (next == -2) {
    const Message m = f.msg;
    const NodeId at = f.at;
    FreeFrame(idx);
    DeliverLocal(m, at);
    plane_->payloads().Release(m.payload);
    return;
  }
  if (next < 0) {
    const Message m = f.msg;
    const NodeId at = f.at;
    FreeFrame(idx);
    DropAndRelease(m, at, -1);
    return;
  }
  // Forwarding: the frame stays in its slot; only its index moves.
  f.next = next;
  pending_.push_back(idx);
}

void Network::Step() {
  ASPEN_CHECK(!in_step_);
  in_step_ = true;
  in_flight_.swap(pending_);
  // Group frames into physical packets. Key:
  //   (0, at, msg.id, 0, 0)        multicast broadcast (one radio tx covers
  //                                 all children of `at` for this message)
  //   (1, at, next, dest, kind)    merge-eligible unicast data
  //   (2, at, index, 0, 0)         everything else: one packet per frame
  group_scratch_.clear();
  group_scratch_.reserve(in_flight_.size());
  for (size_t i = 0; i < in_flight_.size(); ++i) {
    const Frame& f = frames_[in_flight_[i]];
    GroupKey key;
    if (f.mcast != kInvalidRoute) {
      key = {0, f.at, static_cast<int64_t>(f.msg.id), 0, 0};
    } else if (options_.enable_merging &&
               (f.msg.kind == MessageKind::kData ||
                f.msg.kind == MessageKind::kJoinResult)) {
      key = {1, f.at, f.next, f.msg.dest, static_cast<int>(f.msg.kind)};
    } else {
      key = {2, f.at, static_cast<int64_t>(i), 0, 0};
    }
    group_scratch_.emplace_back(key, i);
  }
  // Sorting (key, index) pairs reproduces the ordered map's iteration
  // exactly — keys ascending, members of a key in submission order — so the
  // RNG stream (and therefore every run) is bit-identical to the old
  // grouping.
  std::sort(group_scratch_.begin(), group_scratch_.end());

  for (size_t lo = 0, hi; lo < group_scratch_.size(); lo = hi) {
    hi = lo + 1;
    while (hi < group_scratch_.size() &&
           group_scratch_[hi].first == group_scratch_[lo].first) {
      ++hi;
    }
    const bool is_multicast = std::get<0>(group_scratch_[lo].first) == 0;
    const Frame& first = frames_[in_flight_[group_scratch_[lo].second]];
    const NodeId sender = first.at;
    if (failed_[sender]) {
      // Frames die with their holder — but not silently: the drop handler
      // fires so protocol logic (e.g. failover replay retries) learns the
      // frame is gone. No traffic is charged; nothing was transmitted.
      for (size_t k = lo; k < hi; ++k) {
        const int32_t fidx = in_flight_[group_scratch_[k].second];
        const Message m = frames_[fidx].msg;
        const NodeId at = frames_[fidx].at;
        const NodeId next = frames_[fidx].next;
        FreeFrame(fidx);
        DropAndRelease(m, at, next);
      }
      continue;
    }

    if (is_multicast) {
      // One broadcast transmission reaches every child; receptions are
      // independent, with one unconditional loss draw each.
      const int bytes = first.msg.size_bytes + WireFormat::kLinkHeaderBytes;
      stats_.RecordSend(sender, first.msg.kind, bytes, first.msg.query_id);
      for (size_t k = lo; k < hi; ++k) {
        const int32_t fidx = in_flight_[group_scratch_[k].second];
        // Re-fetch per iteration: Arrive below may grow the slab.
        Frame& f = frames_[fidx];
        const bool loss_draw = DrawLoss(LinkLoss(sender, f.next));
        const bool lost = loss_draw || failed_[f.next];
        if (lost) {
          ++f.attempts;
          if (f.attempts > options_.max_retries) {
            const Message m = f.msg;
            const NodeId at = f.at;
            const NodeId next = f.next;
            FreeFrame(fidx);
            DropAndRelease(m, at, next);
          } else {
            pending_.push_back(fidx);
          }
        } else {
          stats_.RecordReceive(f.next, bytes);
          Arrive(fidx);
        }
      }
      continue;
    }

    // Unicast physical packet (possibly several merged logical frames). The
    // loss draw is taken once per physical transmission and unconditionally
    // — a dead receiver must not skip the draw, or failing one node would
    // perturb the loss outcome of every later transmission in the run (see
    // the class comment).
    const NodeId next = first.next;
    const bool loss_draw = DrawLoss(LinkLoss(sender, next));
    const bool lost = loss_draw || failed_[next];
    bool charged_header = false;
    for (size_t k = lo; k < hi; ++k) {
      const int32_t fidx = in_flight_[group_scratch_[k].second];
      {
        const Frame& f = frames_[fidx];
        int bytes = f.msg.size_bytes;
        if (!charged_header) {
          bytes += WireFormat::kLinkHeaderBytes;
          charged_header = true;
        }
        stats_.RecordSend(sender, f.msg.kind, bytes, f.msg.query_id);
        if (!lost) stats_.RecordReceive(next, bytes);
      }
      // Snoop semantics (see header): neighbors overhear every on-air
      // attempt — even one the receiver loses, and even the final attempt
      // before the sender abandons the frame below. The envelope is copied
      // because a snoop handler may touch the network.
      if (options_.enable_snooping && on_snoop_) {
        const Message m = frames_[fidx].msg;
        for (NodeId w : topology_->neighbors(sender)) {
          if (w != next && !failed_[w]) on_snoop_(m, w, sender, next);
        }
      }
      if (lost) {
        Frame& f = frames_[fidx];  // re-fetch: snoop may have grown the slab
        ++f.attempts;
        if (f.attempts > options_.max_retries) {
          const Message m = f.msg;
          const NodeId at = f.at;
          const NodeId fnext = f.next;
          FreeFrame(fidx);
          DropAndRelease(m, at, fnext);
        } else {
          pending_.push_back(fidx);
        }
      } else {
        Arrive(fidx);
      }
    }
  }
  in_flight_.clear();
  ++now_;
  in_step_ = false;
}

int Network::StepUntilQuiet(int max_steps) {
  int steps = 0;
  while (HasTrafficInFlight() && steps < max_steps) {
    Step();
    ++steps;
  }
  return steps;
}

}  // namespace net
}  // namespace aspen
