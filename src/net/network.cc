#include "net/network.h"

#include <algorithm>
#include <tuple>

#include "common/logging.h"

namespace aspen {
namespace net {

namespace {

/// Decorrelates per-node loss streams: the Rng's SplitMix seeding scrambles
/// this combined value, so neighboring ids do not yield related streams.
uint64_t NodeStreamSeed(uint64_t run_seed, NodeId id) {
  return run_seed ^ (0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(id) + 1));
}

}  // namespace

Network::Network(const Topology* topology, NetworkOptions options,
                 DataPlane* plane)
    : topology_(topology),
      options_(options),
      stats_(topology->num_nodes()),
      failed_(topology->num_nodes(), false) {
  if (plane == nullptr) {
    owned_plane_ = std::make_unique<DataPlane>();
    plane_ = owned_plane_.get();
  } else {
    plane_ = plane;
  }
  node_rng_.reserve(topology->num_nodes());
  for (NodeId id = 0; id < topology->num_nodes(); ++id) {
    node_rng_.emplace_back(NodeStreamSeed(options_.seed, id));
  }
  shard_starts_ = {0};
  shards_.resize(1);
}

void Network::ConfigureSharding(std::vector<NodeId> starts,
                                common::WorkerPool* pool) {
  ASPEN_CHECK(!in_step_);
  ASPEN_CHECK(!HasTrafficInFlight());
  ASPEN_CHECK(!starts.empty());
  ASPEN_CHECK(starts.front() == 0);
  for (size_t i = 1; i < starts.size(); ++i) {
    ASPEN_CHECK(starts[i] > starts[i - 1]);
    ASPEN_CHECK(starts[i] < topology_->num_nodes());
  }
  shard_starts_ = std::move(starts);
  shards_.clear();
  shards_.resize(shard_starts_.size());
  pool_ = pool;
}

void Network::ReserveSteadyState(size_t frames_per_shard) {
  for (Shard& sh : shards_) {
    sh.frames.reserve(frames_per_shard);
    sh.free_frames.reserve(frames_per_shard);
    sh.in_flight.reserve(frames_per_shard);
    sh.pending.reserve(frames_per_shard);
    sh.group_scratch.reserve(frames_per_shard);
    // Each frame's processing can emit several effects (deliver + release,
    // snoop expansion, multicast fan-out).
    sh.effects.reserve(4 * frames_per_shard);
  }
  merge_scratch_.reserve(4 * frames_per_shard * shards_.size());
}

bool Network::HasTrafficInFlight() const {
  for (const Shard& sh : shards_) {
    if (!sh.in_flight.empty() || !sh.pending.empty()) return true;
  }
  return false;
}

bool Network::HasQueryTrafficInFlight(int query_id) const {
  for (const Shard& sh : shards_) {
    for (int32_t idx : sh.in_flight) {
      if (sh.frames[idx].msg.query_id == query_id) return true;
    }
    for (int32_t idx : sh.pending) {
      if (sh.frames[idx].msg.query_id == query_id) return true;
    }
  }
  return false;
}

int64_t Network::frames_in_flight() const {
  int64_t n = 0;
  for (const Shard& sh : shards_) {
    n += static_cast<int64_t>(sh.in_flight.size() + sh.pending.size());
  }
  return n;
}

size_t Network::frame_slab_capacity() const {
  size_t n = 0;
  for (const Shard& sh : shards_) n += sh.frames.size();
  return n;
}

void Network::FailNode(NodeId id) {
  ASPEN_CHECK(id >= 0 && id < topology_->num_nodes());
  failed_[id] = true;
}

void Network::ReviveNode(NodeId id) {
  ASPEN_CHECK(id >= 0 && id < topology_->num_nodes());
  failed_[id] = false;
}

namespace {

/// First entry of the sorted override vector with key >= `key`.
std::vector<std::pair<uint64_t, double>>::const_iterator LowerBoundLink(
    const std::vector<std::pair<uint64_t, double>>& v, uint64_t key) {
  return std::lower_bound(
      v.begin(), v.end(), key,
      [](const std::pair<uint64_t, double>& e, uint64_t k) {
        return e.first < k;
      });
}

}  // namespace

void Network::SetLinkLoss(NodeId from, NodeId to, double p) {
  ASPEN_CHECK(from >= 0 && from < topology_->num_nodes());
  ASPEN_CHECK(to >= 0 && to < topology_->num_nodes());
  const uint64_t key = LinkKey(from, to);
  auto it = link_loss_.begin() + (LowerBoundLink(link_loss_, key) -
                                  link_loss_.cbegin());
  if (it != link_loss_.end() && it->first == key) {
    it->second = p;
    return;
  }
  link_loss_.insert(it, {key, p});
}

void Network::ClearLinkLoss(NodeId from, NodeId to) {
  const uint64_t key = LinkKey(from, to);
  auto it = link_loss_.begin() + (LowerBoundLink(link_loss_, key) -
                                  link_loss_.cbegin());
  if (it != link_loss_.end() && it->first == key) link_loss_.erase(it);
}

double Network::LinkLossLookup(NodeId from, NodeId to) const {
  auto it = LowerBoundLink(link_loss_, LinkKey(from, to));
  return (it != link_loss_.end() && it->first == LinkKey(from, to))
             ? it->second
             : options_.loss_prob;
}

int32_t Network::AllocFrame(Shard* shard) {
  if (!shard->free_frames.empty()) {
    int32_t idx = shard->free_frames.back();
    shard->free_frames.pop_back();
    return idx;
  }
  shard->frames.emplace_back();
  return static_cast<int32_t>(shard->frames.size() - 1);
}

NodeId Network::ResolveNextHop(Frame* frame) const {
  const Message& msg = frame->msg;
  if (frame->at == msg.dest) return -2;
  switch (msg.mode) {
    case RoutingMode::kSourcePath:
    case RoutingMode::kLocalHop: {
      const RouteTable& rt = plane_->routes();
      if (!rt.IsValidPath(msg.route)) return -1;
      if (frame->path_idx + 1 >= rt.PathLength(msg.route)) return -1;
      return rt.PathNode(msg.route, frame->path_idx + 1);
    }
    case RoutingMode::kTreeToRoot: {
      if (parent_resolver_ == nullptr) return -1;
      return parent_resolver_->ParentOf(frame->at);
    }
    case RoutingMode::kGeoGreedy:
      return GeoNextHop(*topology_, &frame->geo, frame->at, msg.dest);
  }
  return -1;
}

// detlint: steady-state begin
// Everything from Submit through StepUntilQuiet runs every cycle of a
// steady-state service run; the mesh/service benches' allocation audits
// enforce zero heap traffic here at runtime, detlint DL005 enforces the
// absence of allocating calls statically.

Result<uint64_t> Network::Submit(Message msg) {
  if (msg.origin < 0 || msg.origin >= topology_->num_nodes() ||
      msg.dest < 0 || msg.dest >= topology_->num_nodes()) {
    plane_->payloads().Release(msg.payload);
    return Status::InvalidArgument("Submit: origin/dest out of range");
  }
  if (failed_[msg.origin]) {
    plane_->payloads().Release(msg.payload);
    return Status::FailedPrecondition("Submit: origin node has failed");
  }
  msg.id = next_id_++;
  if (msg.origin == msg.dest) {
    DeliverLocal(msg, msg.dest);
    plane_->payloads().Release(msg.payload);
    return msg.id;
  }
  if (msg.mode == RoutingMode::kSourcePath ||
      msg.mode == RoutingMode::kLocalHop) {
    const RouteTable& rt = plane_->routes();
    if (!rt.IsValidPath(msg.route) || rt.PathLength(msg.route) < 2 ||
        rt.PathFront(msg.route) != msg.origin ||
        rt.PathBack(msg.route) != msg.dest) {
      plane_->payloads().Release(msg.payload);
      return Status::InvalidArgument(
          "Submit: route must run from origin to dest");
    }
  }
  if (msg.mode == RoutingMode::kTreeToRoot && parent_resolver_ == nullptr) {
    plane_->payloads().Release(msg.payload);
    return Status::FailedPrecondition("Submit: no parent resolver installed");
  }
  Shard& sh = shards_[ShardOf(msg.origin)];
  const int32_t idx = AllocFrame(&sh);
  Frame& frame = sh.frames[idx];
  frame = Frame{};
  frame.msg = msg;
  frame.at = msg.origin;
  frame.path_idx = 0;
  frame.submit_time = now_;
  NodeId next = ResolveNextHop(&frame);
  if (next < 0) {
    FreeFrame(&sh, idx);
    plane_->payloads().Release(msg.payload);
    return Status::Unreachable("Submit: no route from origin");
  }
  frame.next = next;
  sh.pending.push_back(idx);
  return msg.id;
}

Result<uint64_t> Network::SubmitMulticast(Message msg, McastId route) {
  if (msg.origin < 0 || msg.origin >= topology_->num_nodes()) {
    plane_->payloads().Release(msg.payload);
    return Status::InvalidArgument("SubmitMulticast: origin out of range");
  }
  if (failed_[msg.origin]) {
    plane_->payloads().Release(msg.payload);
    return Status::FailedPrecondition("SubmitMulticast: origin has failed");
  }
  if (!plane_->routes().IsValidMulticast(route)) {
    plane_->payloads().Release(msg.payload);
    return Status::InvalidArgument("SubmitMulticast: unknown route");
  }
  msg.id = next_id_++;
  const uint64_t id = msg.id;
  // Children span: raw pointers into the route's edge storage, which stays
  // put even if a delivery handler interns new routes below.
  const MulticastRoute& r = plane_->routes().Multicast(route);
  const bool origin_is_target = r.IsTarget(msg.origin);
  auto [child, child_end] = r.ChildrenOf(msg.origin);
  if (origin_is_target) DeliverLocal(msg, msg.origin);
  const int fanout = static_cast<int>(child_end - child);
  if (fanout == 0) {
    plane_->payloads().Release(msg.payload);
    return id;
  }
  // The message's one payload reference becomes `fanout` frame references.
  for (int i = 1; i < fanout; ++i) plane_->payloads().AddRef(msg.payload);
  Shard& sh = shards_[ShardOf(msg.origin)];
  for (; child != child_end; ++child) {
    const int32_t idx = AllocFrame(&sh);
    Frame& frame = sh.frames[idx];
    frame = Frame{};
    frame.msg = msg;
    frame.msg.dest = child->second;  // per-edge destination; fan-out continues
    frame.mcast = route;
    frame.at = msg.origin;
    frame.next = child->second;
    frame.submit_time = now_;
    sh.pending.push_back(idx);
  }
  return id;
}

void Network::DeliverLocal(const Message& msg, NodeId at) {
  if (on_deliver_) on_deliver_(msg, at);
}

void Network::DropAndRelease(const Message& msg, NodeId at, NodeId next) {
  if (on_drop_) on_drop_(msg, at, next);
  plane_->payloads().Release(msg.payload);
}

Network::SortKey Network::KeyFor(const Frame& f) const {
  // Mirrors the packet classes documented on SortKey: multicast broadcasts
  // first, then merge-eligible unicast, then singletons; every component is
  // frame content (see the class comment on shard-count invariance).
  if (f.mcast != kInvalidRoute) {
    return {0, f.at, static_cast<int64_t>(f.msg.id), 0, 0, f.msg.id,
            f.msg.dest};
  }
  if (options_.enable_merging && (f.msg.kind == MessageKind::kData ||
                                  f.msg.kind == MessageKind::kJoinResult)) {
    return {1, f.at, f.next, f.msg.dest, static_cast<int64_t>(f.msg.kind),
            f.msg.id, f.msg.dest};
  }
  return {2, f.at, static_cast<int64_t>(f.msg.id), f.msg.dest, 0, f.msg.id,
          f.msg.dest};
}

bool Network::SamePacketGroup(const SortKey& a, const SortKey& b) {
  if (std::get<0>(a) != std::get<0>(b) || std::get<1>(a) != std::get<1>(b)) {
    return false;
  }
  switch (std::get<0>(a)) {
    case 0:
      return std::get<2>(a) == std::get<2>(b);
    case 1:
      return std::get<2>(a) == std::get<2>(b) &&
             std::get<3>(a) == std::get<3>(b) &&
             std::get<4>(a) == std::get<4>(b);
    default:
      return false;
  }
}

Network::Effect& Network::PushEffect(Shard* sh, Effect::Kind kind,
                                     const SortKey& key, int* seq) {
  sh->effects.emplace_back();
  Effect& e = sh->effects.back();
  e.kind = kind;
  e.key = key;
  e.seq = (*seq)++;
  return e;
}

void Network::PushDropEffects(Shard* sh, const SortKey& key, int* seq,
                              const Message& msg, NodeId at, NodeId next) {
  // Mirrors DropAndRelease: handler first (borrowing), then the release.
  Effect& d = PushEffect(sh, Effect::Kind::kDrop, key, seq);
  d.msg = msg;
  d.a = at;
  d.b = next;
  Effect& r = PushEffect(sh, Effect::Kind::kRelease, key, seq);
  r.payload = msg.payload;
}

/// Compute-phase sink: every externally-visible event becomes a deferred
/// effect under the frame's canonical key.
struct Network::DeferSink {
  Network* net;
  Shard* sh;
  const SortKey& key;
  int* seq;

  void Deliver(const Message& m, NodeId at) {
    Effect& e = net->PushEffect(sh, Effect::Kind::kDeliver, key, seq);
    e.msg = m;
    e.a = at;
  }
  /// Drop handler plus the payload release, as in DropAndRelease.
  void Drop(const Message& m, NodeId at, NodeId next) {
    net->PushDropEffects(sh, key, seq, m, at, next);
  }
  void Release(PayloadHandle h) {
    Effect& e = net->PushEffect(sh, Effect::Kind::kRelease, key, seq);
    e.payload = h;
  }
  void AddRef(PayloadHandle h) {
    Effect& e = net->PushEffect(sh, Effect::Kind::kAddRef, key, seq);
    e.payload = h;
  }
};

/// Exchange-phase sink: the exchange applies effects sequentially in
/// canonical order, so events fire directly.
struct Network::InlineSink {
  Network* net;

  void Deliver(const Message& m, NodeId at) ASPEN_REQUIRES_SEQUENTIAL {
    net->DeliverLocal(m, at);
  }
  void Drop(const Message& m, NodeId at, NodeId next)
      ASPEN_REQUIRES_SEQUENTIAL {
    net->DropAndRelease(m, at, next);
  }
  void Release(PayloadHandle h) { net->plane_->payloads().Release(h); }
  void AddRef(PayloadHandle h) { net->plane_->payloads().AddRef(h); }
};

template <typename Sink>
void Network::ArriveSlot(Shard* sh, int32_t idx, Sink sink) {
  Frame& f = sh->frames[idx];
  f.at = f.next;
  f.attempts = 0;
  if (f.mcast != kInvalidRoute) {
    // Multicast: deliver at targets, then fan out to children. Copy the
    // frame first — fan-out allocates slots (and an inline delivery may
    // Submit), either of which can grow the slab and invalidate
    // references into it. The children span stays valid: it points into
    // the route's edge storage, which stays put even if a delivery
    // handler interns new routes.
    const Frame base = f;
    const MulticastRoute& route = plane_->routes().Multicast(base.mcast);
    const bool is_target = route.IsTarget(base.at);
    auto [child, child_end] = route.ChildrenOf(base.at);
    if (is_target) sink.Deliver(base.msg, base.at);
    const int fanout = static_cast<int>(child_end - child);
    if (fanout == 0) {
      FreeFrame(sh, idx);
      sink.Release(base.msg.payload);
      return;
    }
    for (int i = 1; i < fanout; ++i) sink.AddRef(base.msg.payload);
    bool reused_slot = false;
    for (; child != child_end; ++child) {
      const int32_t nidx = reused_slot ? AllocFrame(sh) : idx;
      reused_slot = true;
      Frame& nf = sh->frames[nidx];
      nf = base;
      nf.next = child->second;
      nf.msg.dest = child->second;
      sh->pending.push_back(nidx);
    }
    return;
  }
  if (f.at == f.msg.dest) {
    // Terminal: copy the envelope and free the slot first, so an inline
    // handler may Submit into the freed slot.
    const Message m = f.msg;
    const NodeId at = f.at;
    FreeFrame(sh, idx);
    sink.Deliver(m, at);
    sink.Release(m.payload);
    return;
  }
  if (f.msg.mode == RoutingMode::kSourcePath ||
      f.msg.mode == RoutingMode::kLocalHop) {
    ++f.path_idx;
    // Guard against corrupted routes where the arrival node disagrees with
    // the interned path.
    const RouteTable& rt = plane_->routes();
    if (f.path_idx >= rt.PathLength(f.msg.route) ||
        rt.PathNode(f.msg.route, f.path_idx) != f.at) {
      const Message m = f.msg;
      const NodeId at = f.at;
      FreeFrame(sh, idx);
      sink.Drop(m, at, -1);
      return;
    }
  }
  NodeId next = ResolveNextHop(&f);
  if (next == -2) {
    const Message m = f.msg;
    const NodeId at = f.at;
    FreeFrame(sh, idx);
    sink.Deliver(m, at);
    sink.Release(m.payload);
    return;
  }
  if (next < 0) {
    const Message m = f.msg;
    const NodeId at = f.at;
    FreeFrame(sh, idx);
    sink.Drop(m, at, -1);
    return;
  }
  // Forwarding: the frame stays in its slot; only its index moves.
  f.next = next;
  sh->pending.push_back(idx);
}

void Network::ArriveExchange(const Frame& f) {
  // The migrated frame now belongs to the shard owning its arrival node.
  Shard& sh = shards_[ShardOf(f.next)];
  const int32_t idx = AllocFrame(&sh);
  sh.frames[idx] = f;
  ArriveSlot(&sh, idx, InlineSink{this});
}

void Network::ComputeShard(int shard_idx) {
  Shard* sh = &shards_[shard_idx];
  auto& gs = sh->group_scratch;
  gs.clear();
  // Reserve to the frame slab's capacity, not the current in-flight count:
  // the slab bounds every future in-flight size, so the scratch stops
  // reallocating once the slab's high-water settles (the in-flight count
  // itself keeps nudging past its old maximum for the whole run).
  gs.reserve(sh->frames.capacity());
  for (int32_t idx : sh->in_flight) {
    gs.emplace_back(KeyFor(sh->frames[idx]), idx);
  }
  // The canonical content order (SortKey comment): shard-local sorting of a
  // contiguous node range reproduces exactly the global order restricted to
  // this shard, which is what makes the exchange-phase merge byte-identical
  // to a single-shard walk.
  std::sort(gs.begin(), gs.end());

  for (size_t lo = 0, hi; lo < gs.size(); lo = hi) {
    hi = lo + 1;
    while (hi < gs.size() && SamePacketGroup(gs[hi].first, gs[lo].first)) {
      ++hi;
    }
    const bool is_multicast = std::get<0>(gs[lo].first) == 0;
    const NodeId sender = sh->frames[gs[lo].second].at;
    if (failed_[sender]) {
      // Frames die with their holder — but not silently: the drop handler
      // fires so protocol logic (e.g. failover replay retries) learns the
      // frame is gone. No traffic is charged; nothing was transmitted.
      for (size_t k = lo; k < hi; ++k) {
        const int32_t fidx = gs[k].second;
        const Message m = sh->frames[fidx].msg;
        const NodeId at = sh->frames[fidx].at;
        const NodeId next = sh->frames[fidx].next;
        FreeFrame(sh, fidx);
        int seq = 0;
        PushDropEffects(sh, gs[k].first, &seq, m, at, next);
      }
      continue;
    }

    if (is_multicast) {
      // One broadcast transmission reaches every child; receptions are
      // independent, with one unconditional loss draw each.
      const Frame& first = sh->frames[gs[lo].second];
      const int bytes = first.msg.size_bytes + WireFormat::kLinkHeaderBytes;
      stats_.RecordSendSharded(sender, first.msg.kind, bytes,
                               first.msg.query_id, &sh->stats_delta);
      for (size_t k = lo; k < hi; ++k) {
        const int32_t fidx = gs[k].second;
        // Re-fetch per iteration: ArriveSlot below may grow the slab.
        Frame& f = sh->frames[fidx];
        const bool loss_draw = DrawLoss(sender, LinkLoss(sender, f.next));
        const bool lost = loss_draw || failed_[f.next];
        if (lost) {
          ++f.attempts;
          if (f.attempts > options_.max_retries) {
            const Message m = f.msg;
            const NodeId at = f.at;
            const NodeId next = f.next;
            FreeFrame(sh, fidx);
            int seq = 0;
            PushDropEffects(sh, gs[k].first, &seq, m, at, next);
          } else {
            sh->pending.push_back(fidx);
          }
        } else if (ShardOf(f.next) == shard_idx) {
          stats_.RecordReceive(f.next, bytes);
          int seq = 0;
          ArriveSlot(sh, fidx, DeferSink{this, sh, gs[k].first, &seq});
        } else {
          int seq = 0;
          Effect& e = PushEffect(sh, Effect::Kind::kArrive, gs[k].first, &seq);
          e.frame = f;
          e.bytes = bytes;
          FreeFrame(sh, fidx);
        }
      }
      continue;
    }

    // Unicast physical packet (possibly several merged logical frames). The
    // loss draw is taken once per physical transmission and unconditionally
    // — a dead receiver must not skip the draw, or failing one node would
    // perturb the loss outcome of every later transmission by this sender
    // (see the class comment).
    const NodeId next = sh->frames[gs[lo].second].next;
    const bool loss_draw = DrawLoss(sender, LinkLoss(sender, next));
    const bool lost = loss_draw || failed_[next];
    const bool next_local = ShardOf(next) == shard_idx;
    bool charged_header = false;
    for (size_t k = lo; k < hi; ++k) {
      const int32_t fidx = gs[k].second;
      int bytes;
      {
        const Frame& f = sh->frames[fidx];
        bytes = f.msg.size_bytes;
        if (!charged_header) {
          bytes += WireFormat::kLinkHeaderBytes;
          charged_header = true;
        }
        stats_.RecordSendSharded(sender, f.msg.kind, bytes, f.msg.query_id,
                                 &sh->stats_delta);
        if (!lost && next_local) stats_.RecordReceive(next, bytes);
      }
      int seq = 0;
      // Snoop semantics (see header): neighbors overhear every on-air
      // attempt — even one the receiver loses, and even the final attempt
      // before the sender abandons the frame below. Snoopers may live in
      // any shard, so the expansion runs in the exchange phase.
      if (options_.enable_snooping && on_snoop_) {
        Effect& e = PushEffect(sh, Effect::Kind::kSnoopTx, gs[k].first, &seq);
        e.msg = sh->frames[fidx].msg;
        e.a = sender;
        e.b = next;
      }
      if (lost) {
        Frame& f = sh->frames[fidx];
        ++f.attempts;
        if (f.attempts > options_.max_retries) {
          const Message m = f.msg;
          const NodeId at = f.at;
          const NodeId fnext = f.next;
          FreeFrame(sh, fidx);
          PushDropEffects(sh, gs[k].first, &seq, m, at, fnext);
        } else {
          sh->pending.push_back(fidx);
        }
      } else if (next_local) {
        ArriveSlot(sh, fidx, DeferSink{this, sh, gs[k].first, &seq});
      } else {
        Effect& e = PushEffect(sh, Effect::Kind::kArrive, gs[k].first, &seq);
        e.frame = sh->frames[fidx];
        e.bytes = bytes;
        FreeFrame(sh, fidx);
      }
    }
  }
  sh->in_flight.clear();
}

void Network::ExchangePhase() {
  merge_scratch_.clear();
  for (const Shard& sh : shards_) {
    for (const Effect& e : sh.effects) merge_scratch_.push_back(&e);
  }
  // Each shard's effect list is already in canonical order (its compute
  // walk is), so this sort is a K-way merge in disguise; the merged order
  // is exactly the order a single-shard walk would have produced.
  std::sort(merge_scratch_.begin(), merge_scratch_.end(),
            [](const Effect* x, const Effect* y) {
              if (x->key != y->key) return x->key < y->key;
              return x->seq < y->seq;
            });
  for (const Effect* e : merge_scratch_) {
    switch (e->kind) {
      case Effect::Kind::kDeliver:
        DeliverLocal(e->msg, e->a);
        break;
      case Effect::Kind::kDrop:
        if (on_drop_) on_drop_(e->msg, e->a, e->b);
        break;
      case Effect::Kind::kSnoopTx:
        for (NodeId w : topology_->neighbors(e->a)) {
          if (w != e->b && !failed_[w]) on_snoop_(e->msg, w, e->a, e->b);
        }
        break;
      case Effect::Kind::kAddRef:
        plane_->payloads().AddRef(e->payload);
        break;
      case Effect::Kind::kRelease:
        plane_->payloads().Release(e->payload);
        break;
      case Effect::Kind::kArrive:
        stats_.RecordReceive(e->frame.next, e->bytes);
        ArriveExchange(e->frame);
        break;
    }
  }
  merge_scratch_.clear();
  for (Shard& sh : shards_) {
    sh.effects.clear();
    stats_.Absorb(&sh.stats_delta);
  }
}

void Network::Step() {
  ASPEN_CHECK(!in_step_);
  in_step_ = true;
  for (Shard& sh : shards_) sh.in_flight.swap(sh.pending);
  const int num = num_shards();
  if (num == 1 || pool_ == nullptr) {
    for (int s = 0; s < num; ++s) ComputeShard(s);
  } else {
    if (!compute_job_) {
      compute_job_ = [this](int s) { ComputeShard(s); };
    }
    pool_->Run(num, compute_job_);
  }
  ExchangePhase();
  ++now_;
  in_step_ = false;
}

int Network::StepUntilQuiet(int max_steps) {
  int steps = 0;
  while (HasTrafficInFlight() && steps < max_steps) {
    Step();
    ++steps;
  }
  return steps;
}

// detlint: steady-state end

}  // namespace net
}  // namespace aspen
