// Single routing tree (TinyDB-style [10]): every node knows its parent,
// depth and children; messages to the base follow parent pointers without
// carrying a route. Construction is BFS from the root with deterministic
// tie-breaking (lowest node id first), which models beacon flooding where
// each node adopts the first/best beacon it hears.

#ifndef ASPEN_ROUTING_ROUTING_TREE_H_
#define ASPEN_ROUTING_ROUTING_TREE_H_

#include <vector>

#include "net/network.h"
#include "net/topology.h"

namespace aspen {
namespace routing {

using net::NodeId;

/// \brief A rooted spanning tree over the connectivity graph.
class RoutingTree : public net::ParentResolver {
 public:
  /// Builds a BFS tree rooted at `root`. If `stats` is non-null, charges the
  /// construction traffic (one beacon broadcast per node) to it.
  static RoutingTree Build(const net::Topology& topology, NodeId root,
                           net::TrafficStats* stats = nullptr);

  NodeId root() const { return root_; }
  int num_nodes() const { return static_cast<int>(parent_.size()); }

  /// net::ParentResolver: next hop toward the root (-1 at the root).
  NodeId ParentOf(NodeId at) const override { return parent_[at]; }

  /// Hop count from `id` to the root.
  int DepthOf(NodeId id) const { return depth_[id]; }

  const std::vector<NodeId>& ChildrenOf(NodeId id) const {
    return children_[id];
  }

  /// Path [id, ..., root].
  std::vector<NodeId> PathToRoot(NodeId id) const;

  /// Path [root, ..., id].
  std::vector<NodeId> PathFromRoot(NodeId id) const;

  /// Tree path [a, ..., lca, ..., b] through the lowest common ancestor —
  /// the only route between two nodes when a single tree is the substrate.
  std::vector<NodeId> TreePath(NodeId a, NodeId b) const;

  /// Nodes in the subtree rooted at `id` (including `id`).
  std::vector<NodeId> Subtree(NodeId id) const;

  /// Per-construction wire cost in bytes (what Build charges to stats).
  static int64_t ConstructionBytes(int num_nodes);

 private:
  RoutingTree() = default;

  NodeId root_ = 0;
  std::vector<NodeId> parent_;
  std::vector<int> depth_;
  std::vector<std::vector<NodeId>> children_;
};

}  // namespace routing
}  // namespace aspen

#endif  // ASPEN_ROUTING_ROUTING_TREE_H_
