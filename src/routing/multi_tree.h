// Multi-tree content-addressable routing substrate ([11], Appendix C).
//
// The substrate maintains several overlapping routing trees: the first is
// rooted at the base station; each further root is the node furthest (in
// hops) from all existing roots. Static attributes are indexed bottom-up
// into per-child summaries (semantic routing tables), and exploration
// queries route toward nodes holding a sought join-key value by descending
// only into subtrees whose summaries may contain it — ascending toward the
// root "for completeness", but never re-ascending after a descent.
//
// Exploration here is computed rather than simulated message-by-message, but
// every hop the distributed protocol would transmit is charged to the
// supplied TrafficStats and the critical-path hop count is reported as
// latency — the same accounting the paper measures (see DESIGN.md).

#ifndef ASPEN_ROUTING_MULTI_TREE_H_
#define ASPEN_ROUTING_MULTI_TREE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/network.h"
#include "routing/routing_tree.h"
#include "routing/summary.h"

namespace aspen {
namespace routing {

/// \brief Builds a shared Steiner multicast tree rooted at `source`
/// covering every node in `targets`, by the KMB approximation: metric
/// closure over the terminal set (BFS hop distances), a deterministic
/// Prim MST over the closure (ties broken by node id), shortest-path
/// expansion of each MST edge, and a final prune to the union of
/// source→target tree paths.
///
/// The result depends only on (topology, source, targets) — never on any
/// query's explored path segments or extra links — so two queries with
/// the same destination set build byte-identical trees and the
/// RouteTable's destination-set lookup (`FindSharedMulticast`) lets the
/// second adopt the first's interned tree outright. Edges connect
/// topology neighbors; `targets` appear in the returned route's sorted
/// target list exactly once. Unreachable targets are dropped.
net::MulticastRoute BuildSharedSteinerTree(const net::Topology& topo,
                                           net::NodeId source,
                                           const std::vector<net::NodeId>& targets);

/// \brief Declaration of a static attribute to index in the routing tables.
struct IndexedAttribute {
  std::string name;
  SummaryType summary_type = SummaryType::kBloom;
  /// Static value of this attribute at each node.
  std::function<int32_t(NodeId)> value_fn;
};

/// \brief One discovered route from a search source to a matching target.
struct FoundPath {
  NodeId target = -1;
  /// Route [source, ..., target] along tree edges actually explored.
  std::vector<NodeId> path;
  /// Which tree the path was found in.
  int tree_index = 0;
};

/// \brief Traffic/latency accounting for one exploration.
struct SearchStats {
  int64_t exploration_bytes = 0;  ///< forward search messages
  int64_t reply_bytes = 0;        ///< reversed path-vector replies
  int max_hops = 0;               ///< critical-path latency in hops
  int nodes_visited = 0;
  int paths_found = 0;
};

/// \brief Options controlling the substrate.
struct MultiTreeOptions {
  int num_trees = 3;
  /// Rectangle budget of the per-subtree position R-trees.
  int rtree_max_rects = 4;
};

/// \brief The multi-tree routing substrate.
class MultiTree {
 public:
  /// Builds `options.num_trees` trees over `topology`. If `stats` is
  /// non-null, beacon traffic for each tree's construction is charged.
  MultiTree(const net::Topology* topology, MultiTreeOptions options,
            net::TrafficStats* stats = nullptr);

  int num_trees() const { return static_cast<int>(trees_.size()); }
  const RoutingTree& tree(int i) const { return *trees_[i]; }
  /// The tree rooted at the base station (index 0).
  const RoutingTree& primary() const { return *trees_[0]; }
  const net::Topology& topology() const { return *topology_; }

  /// \brief Indexes a scalar static attribute in every tree's routing
  /// tables. Charges summary-aggregation traffic (each node ships its merged
  /// subtree summary to its parent, per tree) when `stats` is non-null.
  /// Returns the attribute index used in searches.
  Result<int> IndexAttribute(const IndexedAttribute& attr,
                             net::TrafficStats* stats = nullptr);

  /// \brief Indexes node positions with per-subtree R-trees (for
  /// region-based predicates such as Query 3's Dst < 5m).
  void IndexPositions(net::TrafficStats* stats = nullptr);

  /// \brief Finds nodes whose indexed attribute `attr_idx` equals `value`
  /// and that satisfy `accept` (secondary static predicates; may be null).
  ///
  /// Searches every tree from `source`; at most one path per (target, tree)
  /// is returned and the source itself is never a target. Traffic for every
  /// explored hop plus the reply path-vectors is charged to `*stats` (the
  /// TrafficStats of the experiment's network) when non-null, and
  /// `search_stats` (when non-null) receives the per-search accounting.
  std::vector<FoundPath> FindMatches(
      NodeId source, int attr_idx, int32_t value,
      const std::function<bool(NodeId)>& accept = nullptr,
      net::TrafficStats* stats = nullptr,
      SearchStats* search_stats = nullptr) const;

  /// \brief Finds nodes within `radius` meters of `source`'s position,
  /// using the R-tree summaries. Requires IndexPositions() first.
  std::vector<FoundPath> FindWithinRadius(
      NodeId source, double radius,
      const std::function<bool(NodeId)>& accept = nullptr,
      net::TrafficStats* stats = nullptr,
      SearchStats* search_stats = nullptr) const;

  /// Roots chosen for each tree (index 0 is the base station).
  const std::vector<NodeId>& roots() const { return roots_; }

  /// Total bytes charged for tree construction + summary aggregation so far.
  int64_t construction_bytes() const { return construction_bytes_; }

 private:
  /// Per-tree, per-node semantic routing table for one scalar attribute.
  struct ScalarIndex {
    IndexedAttribute decl;
    /// value_fn(u) for every node, tabulated at index time — searches test
    /// candidates against this instead of re-evaluating the expression.
    std::vector<int32_t> values;
    /// child_summary[tree][node] — summaries keyed parallel to
    /// RoutingTree::ChildrenOf(node).
    std::vector<std::vector<std::vector<std::unique_ptr<ScalarSummary>>>>
        per_tree;
  };

  struct PositionIndex {
    bool built = false;
    std::vector<std::vector<std::vector<RTreeSummary>>> per_tree;
  };

  /// Visitor-based search shared by FindMatches / FindWithinRadius.
  /// `descend(tree, node, child_idx)` decides whether a child subtree can
  /// hold a match; `matches(node)` tests a concrete node.
  std::vector<FoundPath> Search(
      NodeId source,
      const std::function<bool(int, NodeId, size_t)>& descend,
      const std::function<bool(NodeId)>& matches,
      net::TrafficStats* stats, SearchStats* search_stats) const;

  void ChargeExploreHop(NodeId from, int depth, net::TrafficStats* stats,
                        SearchStats* ss) const;
  void ChargeReply(const std::vector<NodeId>& path, net::TrafficStats* stats,
                   SearchStats* ss) const;

  const net::Topology* topology_;
  MultiTreeOptions options_;
  std::vector<std::unique_ptr<RoutingTree>> trees_;
  std::vector<NodeId> roots_;
  std::vector<ScalarIndex> scalar_indexes_;
  PositionIndex position_index_;
  int64_t construction_bytes_ = 0;
};

}  // namespace routing
}  // namespace aspen

#endif  // ASPEN_ROUTING_MULTI_TREE_H_
