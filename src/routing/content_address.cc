#include "routing/content_address.h"

#include <algorithm>

#include "common/logging.h"
#include "net/geo_routing.h"

namespace aspen {
namespace routing {

GeoHash::GeoHash(const net::Topology* topology, uint64_t salt)
    : topology_(topology), salt_(salt) {
  ASPEN_CHECK(topology_->num_nodes() > 0);
  min_x_ = max_x_ = topology_->position(0).x;
  min_y_ = max_y_ = topology_->position(0).y;
  for (int i = 1; i < topology_->num_nodes(); ++i) {
    const auto& p = topology_->position(i);
    min_x_ = std::min(min_x_, p.x);
    max_x_ = std::max(max_x_, p.x);
    min_y_ = std::min(min_y_, p.y);
    max_y_ = std::max(max_y_, p.y);
  }
}

net::Point GeoHash::PointForKey(int32_t key) const {
  uint64_t h = HashKey(key, salt_);
  double fx = static_cast<double>(h & 0xFFFFFFFFULL) / 4294967296.0;
  double fy = static_cast<double>(h >> 32) / 4294967296.0;
  return {min_x_ + fx * (max_x_ - min_x_), min_y_ + fy * (max_y_ - min_y_)};
}

net::NodeId GeoHash::NodeForKey(int32_t key) const {
  return topology_->NearestNode(PointForKey(key));
}

std::vector<net::NodeId> GeoHash::GreedyPath(net::NodeId from,
                                             net::NodeId to) const {
  // Full GPSR forwarding: greedy with Gabriel-planarized perimeter escape.
  return net::GeoRoute(*topology_, from, to);
}

DhtRing::DhtRing(const net::Topology* topology, uint64_t salt)
    : topology_(topology), salt_(salt) {
  ring_.reserve(topology_->num_nodes());
  for (net::NodeId u = 0; u < topology_->num_nodes(); ++u) {
    ring_.emplace_back(HashKey(u, salt_ ^ 0xABCDEF), u);
  }
  std::sort(ring_.begin(), ring_.end());
}

net::NodeId DhtRing::NodeForKey(int32_t key) const {
  uint64_t h = HashKey(key, salt_);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const std::pair<uint64_t, net::NodeId>& e, uint64_t v) {
        return e.first < v;
      });
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

}  // namespace routing
}  // namespace aspen
