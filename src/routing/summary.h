// Subtree attribute summaries for semantic routing trees.
//
// Each node of each routing tree keeps, per indexed static attribute and per
// child, a compact summary of the values present in that child's subtree
// (Appendix C: a generalization of TinyDB's semantic routing trees and GiST,
// supporting intervals, Bloom filters and R-trees). Exploration consults the
// summaries to prune subtrees that cannot contain a sought join-key value.

#ifndef ASPEN_ROUTING_SUMMARY_H_
#define ASPEN_ROUTING_SUMMARY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "net/topology.h"

namespace aspen {
namespace routing {

/// \brief Which summary structure indexes a scalar attribute.
enum class SummaryType : uint8_t {
  kBloom,     ///< bit array with k hash probes; false positives possible
  kInterval,  ///< [min, max] bounds; good for smooth value ranges
  kExact,     ///< exact value set; ablation baseline (unbounded size)
};

/// \brief Summary over scalar (integer) attribute values in a subtree.
///
/// MayContain is conservative: it may return true for absent values (false
/// positive) but never false for present ones — the invariant exploration
/// correctness depends on (tested by property tests).
class ScalarSummary {
 public:
  virtual ~ScalarSummary() = default;
  virtual void Insert(int32_t value) = 0;
  virtual bool MayContain(int32_t value) const = 0;
  /// Conservative containment for any value in [lo, hi].
  virtual bool MayContainRange(int32_t lo, int32_t hi) const = 0;
  virtual void Merge(const ScalarSummary& other) = 0;
  /// Wire size when shipped to the parent during tree construction.
  virtual int SizeBytes() const = 0;
  virtual std::unique_ptr<ScalarSummary> Clone() const = 0;
  virtual SummaryType type() const = 0;

  /// Factory for a fresh, empty summary of the given type.
  static std::unique_ptr<ScalarSummary> Make(SummaryType type);
};

/// \brief Bloom filter over int32 values (fixed 128-bit array, 3 probes —
/// sized for mote RAM budgets; ~1% false positives at 16 values).
class BloomSummary : public ScalarSummary {
 public:
  static constexpr int kBits = 128;
  static constexpr int kProbes = 3;

  void Insert(int32_t value) override;
  bool MayContain(int32_t value) const override;
  bool MayContainRange(int32_t lo, int32_t hi) const override;
  void Merge(const ScalarSummary& other) override;
  int SizeBytes() const override { return kBits / 8; }
  std::unique_ptr<ScalarSummary> Clone() const override;
  SummaryType type() const override { return SummaryType::kBloom; }

  /// Fraction of set bits (diagnostic; drives false-positive estimates).
  double FillRatio() const;

 private:
  uint64_t bits_[kBits / 64] = {0, 0};
};

/// \brief [min, max] interval summary (TinyDB-style 1-D SRT entry).
class IntervalSummary : public ScalarSummary {
 public:
  void Insert(int32_t value) override;
  bool MayContain(int32_t value) const override;
  bool MayContainRange(int32_t lo, int32_t hi) const override;
  void Merge(const ScalarSummary& other) override;
  int SizeBytes() const override { return 4; }  // two 16-bit bounds
  std::unique_ptr<ScalarSummary> Clone() const override;
  SummaryType type() const override { return SummaryType::kInterval; }

  bool empty() const { return lo_ > hi_; }
  int32_t lo() const { return lo_; }
  int32_t hi() const { return hi_; }

 private:
  int32_t lo_ = INT32_MAX;
  int32_t hi_ = INT32_MIN;
};

/// \brief Exact value set; ablation baseline for summary precision.
class ExactSummary : public ScalarSummary {
 public:
  void Insert(int32_t value) override;
  bool MayContain(int32_t value) const override;
  bool MayContainRange(int32_t lo, int32_t hi) const override;
  void Merge(const ScalarSummary& other) override;
  int SizeBytes() const override;
  std::unique_ptr<ScalarSummary> Clone() const override;
  SummaryType type() const override { return SummaryType::kExact; }

 private:
  std::vector<int32_t> values_;  // kept sorted & deduplicated
};

/// \brief R-tree-style summary of 2D positions: a bounded set of rectangles
/// covering every inserted point. When the rectangle budget is exceeded the
/// two rectangles whose union grows least are merged.
class RTreeSummary {
 public:
  explicit RTreeSummary(int max_rects = 4) : max_rects_(max_rects) {}

  struct Rect {
    double min_x, min_y, max_x, max_y;
  };

  void Insert(const net::Point& p);
  void Merge(const RTreeSummary& other);
  /// Conservative: true if any rectangle intersects the disk
  /// (center, radius). Never false when a covered point lies in the disk.
  bool MayIntersectCircle(const net::Point& center, double radius) const;
  bool MayContainPoint(const net::Point& p) const;
  int SizeBytes() const { return static_cast<int>(rects_.size()) * 8; }
  int num_rects() const { return static_cast<int>(rects_.size()); }
  bool empty() const { return rects_.empty(); }

 private:
  void Compact();

  int max_rects_;
  std::vector<Rect> rects_;
};

}  // namespace routing
}  // namespace aspen

#endif  // ASPEN_ROUTING_SUMMARY_H_
