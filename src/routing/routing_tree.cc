#include "routing/routing_tree.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"
#include "net/message.h"

namespace aspen {
namespace routing {

namespace {
// A beacon carries the root id, sender depth and a sequence number.
constexpr int kBeaconPayloadBytes = 6;
}  // namespace

RoutingTree RoutingTree::Build(const net::Topology& topology, NodeId root,
                               net::TrafficStats* stats) {
  const int n = topology.num_nodes();
  ASPEN_CHECK(root >= 0 && root < n);
  RoutingTree tree;
  tree.root_ = root;
  tree.parent_.assign(n, -1);
  tree.depth_.assign(n, -1);
  tree.children_.assign(n, {});

  std::queue<NodeId> frontier;
  tree.depth_[root] = 0;
  frontier.push(root);
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop();
    // Adjacency lists are id-ordered, so first discovery matches the
    // "lowest-id beacon wins" tie-break.
    for (NodeId v : topology.neighbors(u)) {
      if (tree.depth_[v] < 0) {
        tree.depth_[v] = tree.depth_[u] + 1;
        tree.parent_[v] = u;
        tree.children_[u].push_back(v);
        frontier.push(v);
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    ASPEN_CHECK(tree.depth_[i] >= 0);  // generators guarantee connectivity
  }
  if (stats != nullptr) {
    // Every node broadcasts one beacon during construction.
    for (NodeId u = 0; u < n; ++u) {
      stats->RecordSend(u, net::MessageKind::kBeacon,
                        kBeaconPayloadBytes + net::WireFormat::kLinkHeaderBytes);
    }
  }
  return tree;
}

int64_t RoutingTree::ConstructionBytes(int num_nodes) {
  return static_cast<int64_t>(num_nodes) *
         (kBeaconPayloadBytes + net::WireFormat::kLinkHeaderBytes);
}

std::vector<NodeId> RoutingTree::PathToRoot(NodeId id) const {
  std::vector<NodeId> path;
  for (NodeId u = id; u != -1; u = parent_[u]) path.push_back(u);
  return path;
}

std::vector<NodeId> RoutingTree::PathFromRoot(NodeId id) const {
  auto path = PathToRoot(id);
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<NodeId> RoutingTree::TreePath(NodeId a, NodeId b) const {
  if (a == b) return {a};
  auto up_a = PathToRoot(a);  // a ... root
  auto up_b = PathToRoot(b);  // b ... root
  // Strip the common suffix down to the LCA.
  size_t ia = up_a.size(), ib = up_b.size();
  while (ia > 0 && ib > 0 && up_a[ia - 1] == up_b[ib - 1]) {
    --ia;
    --ib;
  }
  // up_a[ia] (== up_b[ib]) is one past the LCA in both; the LCA itself is
  // up_a[ia] when indices stopped, i.e. the last stripped element.
  std::vector<NodeId> path(up_a.begin(), up_a.begin() + ia + 1);
  for (size_t k = ib; k-- > 0;) path.push_back(up_b[k]);
  return path;
}

std::vector<NodeId> RoutingTree::Subtree(NodeId id) const {
  std::vector<NodeId> out;
  std::vector<NodeId> stack{id};
  while (!stack.empty()) {
    NodeId u = stack.back();
    stack.pop_back();
    out.push_back(u);
    for (NodeId c : children_[u]) stack.push_back(c);
  }
  return out;
}

}  // namespace routing
}  // namespace aspen
