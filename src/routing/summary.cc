#include "routing/summary.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace aspen {
namespace routing {
namespace {

// 64-bit mix (SplitMix64 finalizer); distinct probe index salts the hash.
uint64_t MixHash(int32_t value, int probe) {
  uint64_t z = static_cast<uint64_t>(static_cast<uint32_t>(value)) +
               0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(probe + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

std::unique_ptr<ScalarSummary> ScalarSummary::Make(SummaryType type) {
  switch (type) {
    case SummaryType::kBloom:
      return std::make_unique<BloomSummary>();
    case SummaryType::kInterval:
      return std::make_unique<IntervalSummary>();
    case SummaryType::kExact:
      return std::make_unique<ExactSummary>();
  }
  return nullptr;
}

// ---------------------------------------------------------------- Bloom --

void BloomSummary::Insert(int32_t value) {
  for (int p = 0; p < kProbes; ++p) {
    uint64_t bit = MixHash(value, p) % kBits;
    bits_[bit / 64] |= (1ULL << (bit % 64));
  }
}

bool BloomSummary::MayContain(int32_t value) const {
  for (int p = 0; p < kProbes; ++p) {
    uint64_t bit = MixHash(value, p) % kBits;
    if ((bits_[bit / 64] & (1ULL << (bit % 64))) == 0) return false;
  }
  return true;
}

bool BloomSummary::MayContainRange(int32_t lo, int32_t hi) const {
  // Probing every value is only sensible for small ranges; beyond that the
  // filter cannot prune and must answer conservatively.
  if (static_cast<int64_t>(hi) - lo > 256) return true;
  for (int64_t v = lo; v <= hi; ++v) {
    if (MayContain(static_cast<int32_t>(v))) return true;
  }
  return false;
}

void BloomSummary::Merge(const ScalarSummary& other) {
  ASPEN_CHECK(other.type() == SummaryType::kBloom);
  const auto& o = static_cast<const BloomSummary&>(other);
  for (size_t i = 0; i < std::size(bits_); ++i) bits_[i] |= o.bits_[i];
}

std::unique_ptr<ScalarSummary> BloomSummary::Clone() const {
  return std::make_unique<BloomSummary>(*this);
}

double BloomSummary::FillRatio() const {
  int set = 0;
  for (uint64_t word : bits_) set += __builtin_popcountll(word);
  return static_cast<double>(set) / kBits;
}

// ------------------------------------------------------------- Interval --

void IntervalSummary::Insert(int32_t value) {
  lo_ = std::min(lo_, value);
  hi_ = std::max(hi_, value);
}

bool IntervalSummary::MayContain(int32_t value) const {
  return value >= lo_ && value <= hi_;
}

bool IntervalSummary::MayContainRange(int32_t lo, int32_t hi) const {
  return !(hi < lo_ || lo > hi_);
}

void IntervalSummary::Merge(const ScalarSummary& other) {
  ASPEN_CHECK(other.type() == SummaryType::kInterval);
  const auto& o = static_cast<const IntervalSummary&>(other);
  if (o.empty()) return;
  Insert(o.lo_);
  Insert(o.hi_);
}

std::unique_ptr<ScalarSummary> IntervalSummary::Clone() const {
  return std::make_unique<IntervalSummary>(*this);
}

// ---------------------------------------------------------------- Exact --

void ExactSummary::Insert(int32_t value) {
  auto it = std::lower_bound(values_.begin(), values_.end(), value);
  if (it == values_.end() || *it != value) values_.insert(it, value);
}

bool ExactSummary::MayContain(int32_t value) const {
  return std::binary_search(values_.begin(), values_.end(), value);
}

bool ExactSummary::MayContainRange(int32_t lo, int32_t hi) const {
  auto it = std::lower_bound(values_.begin(), values_.end(), lo);
  return it != values_.end() && *it <= hi;
}

void ExactSummary::Merge(const ScalarSummary& other) {
  ASPEN_CHECK(other.type() == SummaryType::kExact);
  const auto& o = static_cast<const ExactSummary&>(other);
  for (int32_t v : o.values_) Insert(v);
}

int ExactSummary::SizeBytes() const {
  return static_cast<int>(values_.size()) * 2;  // 16-bit values
}

std::unique_ptr<ScalarSummary> ExactSummary::Clone() const {
  return std::make_unique<ExactSummary>(*this);
}

// ---------------------------------------------------------------- RTree --

void RTreeSummary::Insert(const net::Point& p) {
  rects_.push_back({p.x, p.y, p.x, p.y});
  Compact();
}

void RTreeSummary::Merge(const RTreeSummary& other) {
  for (const Rect& r : other.rects_) rects_.push_back(r);
  Compact();
}

namespace {
double RectArea(const RTreeSummary::Rect& r) {
  return (r.max_x - r.min_x) * (r.max_y - r.min_y);
}
RTreeSummary::Rect Union(const RTreeSummary::Rect& a,
                         const RTreeSummary::Rect& b) {
  return {std::min(a.min_x, b.min_x), std::min(a.min_y, b.min_y),
          std::max(a.max_x, b.max_x), std::max(a.max_y, b.max_y)};
}
}  // namespace

void RTreeSummary::Compact() {
  while (static_cast<int>(rects_.size()) > max_rects_) {
    // Merge the pair whose union wastes the least area.
    size_t best_i = 0, best_j = 1;
    double best_waste = 1e300;
    for (size_t i = 0; i < rects_.size(); ++i) {
      for (size_t j = i + 1; j < rects_.size(); ++j) {
        Rect u = Union(rects_[i], rects_[j]);
        double waste = RectArea(u) - RectArea(rects_[i]) - RectArea(rects_[j]);
        if (waste < best_waste) {
          best_waste = waste;
          best_i = i;
          best_j = j;
        }
      }
    }
    rects_[best_i] = Union(rects_[best_i], rects_[best_j]);
    rects_.erase(rects_.begin() + best_j);
  }
}

bool RTreeSummary::MayIntersectCircle(const net::Point& center,
                                      double radius) const {
  for (const Rect& r : rects_) {
    double dx = std::max({r.min_x - center.x, 0.0, center.x - r.max_x});
    double dy = std::max({r.min_y - center.y, 0.0, center.y - r.max_y});
    if (dx * dx + dy * dy <= radius * radius) return true;
  }
  return false;
}

bool RTreeSummary::MayContainPoint(const net::Point& p) const {
  for (const Rect& r : rects_) {
    if (p.x >= r.min_x && p.x <= r.max_x && p.y >= r.min_y && p.y <= r.max_y) {
      return true;
    }
  }
  return false;
}

}  // namespace routing
}  // namespace aspen
