// Content-addressable routing baselines: GHT (geographic hash table, mote
// networks) and a DHT ring (802.11 mesh networks). Both map a join-key value
// to a single, locality-oblivious rendezvous node — the property that makes
// grouped joins at hashed locations unpredictable in cost (Section 2.2).

#ifndef ASPEN_ROUTING_CONTENT_ADDRESS_H_
#define ASPEN_ROUTING_CONTENT_ADDRESS_H_

#include <cstdint>
#include <vector>

#include "net/topology.h"

namespace aspen {
namespace routing {

/// \brief GHT: hashes a key to a point in the deployment's bounding box;
/// the rendezvous node is the deployed node nearest that point (the "home
/// node" in GHT terms). Packets travel by greedy geographic forwarding.
class GeoHash {
 public:
  /// `topology` must outlive this object. `salt` varies the hash function.
  explicit GeoHash(const net::Topology* topology, uint64_t salt = 0);

  /// Hashed location for a key (always inside the bounding box).
  net::Point PointForKey(int32_t key) const;

  /// Home node for a key: nearest node to the hashed location.
  net::NodeId NodeForKey(int32_t key) const;

  /// The hop sequence greedy geographic forwarding takes from `from` to
  /// `to` (matching the simulator's kGeoGreedy mode, including the
  /// shortest-path escape from local minima). Includes both endpoints.
  std::vector<net::NodeId> GreedyPath(net::NodeId from, net::NodeId to) const;

 private:
  const net::Topology* topology_;
  uint64_t salt_;
  double min_x_, min_y_, max_x_, max_y_;
};

/// \brief DHT ring: node ids and keys hash onto a 64-bit ring; the
/// rendezvous node owns the first node-hash clockwise of the key hash
/// (consistent hashing, Pastry/Chord-style).
class DhtRing {
 public:
  explicit DhtRing(const net::Topology* topology, uint64_t salt = 0);

  net::NodeId NodeForKey(int32_t key) const;

 private:
  const net::Topology* topology_;
  uint64_t salt_;
  /// (hash, node) pairs sorted by hash.
  std::vector<std::pair<uint64_t, net::NodeId>> ring_;
};

/// 64-bit mix used by both schemes (and by query-level hash() predicates).
/// Inline so the workload's batched counter-hash draws vectorize.
inline uint64_t HashKey(int32_t key, uint64_t salt) {
  uint64_t z = static_cast<uint64_t>(static_cast<uint32_t>(key)) ^
               (salt * 0xD1B54A32D192ED03ULL + 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace routing
}  // namespace aspen

#endif  // ASPEN_ROUTING_CONTENT_ADDRESS_H_
