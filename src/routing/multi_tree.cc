#include "routing/multi_tree.h"

#include <algorithm>
#include <climits>
#include <map>
#include <queue>
#include <set>

#include "common/logging.h"
#include "net/message.h"

namespace aspen {
namespace routing {

net::MulticastRoute BuildSharedSteinerTree(
    const net::Topology& topo, net::NodeId source,
    const std::vector<net::NodeId>& targets) {
  using net::NodeId;
  net::MulticastRoute route;
  // Terminal set: sorted unique targets; the source spans them.
  std::vector<NodeId> terms = targets;
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  const bool source_is_target =
      std::binary_search(terms.begin(), terms.end(), source);
  std::vector<NodeId> steiner;
  for (NodeId t : terms) {
    if (t != source) steiner.push_back(t);
  }
  if (steiner.empty()) {
    // A target co-located with the source needs delivery but no edges.
    if (source_is_target) route.targets.push_back(source);
    return route;
  }

  // KMB step 1 — metric closure over {source} ∪ terminals via BFS hop
  // distances (deterministic: adjacency lists are in fixed order).
  const std::vector<int> from_source = topo.HopDistancesFrom(source);
  std::vector<std::vector<int>> from_term(steiner.size());
  for (size_t i = 0; i < steiner.size(); ++i) {
    from_term[i] = topo.HopDistancesFrom(steiner[i]);
  }

  // KMB step 2 — Prim MST over the closure, rooted at the source. Ties
  // break toward the smaller terminal id, then the smaller attach id, so
  // the tree depends only on (topology, source, targets).
  const size_t n = steiner.size();
  std::vector<int> best(n, INT_MAX);
  std::vector<int> attach(n, -1);  // index into steiner; -1 = the source
  std::vector<char> in_tree(n, 0);
  for (size_t i = 0; i < n; ++i) {
    const int d = from_source[steiner[i]];
    if (d >= 0) best[i] = d;
  }
  auto attach_id = [&](int a) { return a < 0 ? source : steiner[a]; };
  std::vector<std::pair<int, int>> mst;  // (attach index or -1, steiner index)
  for (size_t round = 0; round < n; ++round) {
    int pick = -1;
    for (size_t i = 0; i < n; ++i) {
      if (in_tree[i] || best[i] == INT_MAX) continue;
      if (pick < 0 || best[i] < best[pick] ||
          (best[i] == best[pick] && steiner[i] < steiner[pick])) {
        pick = static_cast<int>(i);
      }
    }
    if (pick < 0) break;  // remaining terminals unreachable
    in_tree[pick] = 1;
    mst.emplace_back(attach[pick], pick);
    const std::vector<int>& dp = from_term[pick];
    for (size_t i = 0; i < n; ++i) {
      if (in_tree[i]) continue;
      const int d = dp[steiner[i]];
      if (d < 0) continue;
      if (d < best[i] ||
          (d == best[i] && steiner[pick] < attach_id(attach[i]))) {
        best[i] = d;
        attach[i] = pick;
      }
    }
  }

  // KMB step 3 — expand each MST edge along a shortest topology path and
  // union the hops as undirected edges.
  std::set<std::pair<NodeId, NodeId>> edges;
  for (const auto& [a, t] : mst) {
    const std::vector<NodeId> path =
        topo.ShortestPath(attach_id(a), steiner[t]);
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      edges.insert({path[i], path[i + 1]});
      edges.insert({path[i + 1], path[i]});
    }
  }

  // KMB step 4 — prune: BFS from the source over the union (sorted
  // adjacency, deterministic), keep only edges on source→target paths.
  std::map<NodeId, std::vector<NodeId>> adj;
  for (const auto& [a, b] : edges) adj[a].push_back(b);
  std::map<NodeId, NodeId> parent;
  std::queue<NodeId> frontier;
  parent[source] = source;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : adj[u]) {
      if (parent.find(v) == parent.end()) {
        parent[v] = u;
        frontier.push(v);
      }
    }
  }
  std::set<std::pair<NodeId, NodeId>> tree_edges;
  for (NodeId t : terms) {
    if (t == source) {
      route.targets.push_back(t);
      continue;
    }
    if (parent.find(t) == parent.end()) continue;  // unreachable: dropped
    route.targets.push_back(t);
    for (NodeId u = t; u != source; u = parent[u]) {
      tree_edges.insert({parent[u], u});
    }
  }
  route.edges.assign(tree_edges.begin(), tree_edges.end());
  route.Normalize();
  return route;
}

namespace {
// Forward exploration message: query id (2), sought value (2), origin (2),
// plus the growing delta-encoded path vector (1 byte/hop).
constexpr int kExploreBaseBytes = 6;
// Reply: query id (2) + target id (2); carries the reversed path vector and
// the hops-to-base array for join-node placement (1 byte/hop each).
constexpr int kReplyBaseBytes = 4;
}  // namespace

MultiTree::MultiTree(const net::Topology* topology, MultiTreeOptions options,
                     net::TrafficStats* stats)
    : topology_(topology), options_(options) {
  ASPEN_CHECK(options_.num_trees >= 1);
  const int n = topology_->num_nodes();
  // Tree 0 is rooted at the base station; each further root maximizes the
  // minimum hop distance to all existing roots (furthest-first).
  roots_.push_back(0);
  std::vector<int> min_dist = topology_->HopDistancesFrom(0);
  for (int t = 1; t < options_.num_trees; ++t) {
    NodeId best = -1;
    int best_d = -1;
    for (NodeId u = 0; u < n; ++u) {
      if (min_dist[u] > best_d) {
        best_d = min_dist[u];
        best = u;
      }
    }
    roots_.push_back(best);
    auto d = topology_->HopDistancesFrom(best);
    for (NodeId u = 0; u < n; ++u) min_dist[u] = std::min(min_dist[u], d[u]);
  }
  for (NodeId root : roots_) {
    trees_.push_back(
        std::make_unique<RoutingTree>(RoutingTree::Build(*topology_, root, stats)));
    construction_bytes_ += RoutingTree::ConstructionBytes(n);
  }
}

Result<int> MultiTree::IndexAttribute(const IndexedAttribute& attr,
                                      net::TrafficStats* stats) {
  if (!attr.value_fn) {
    return Status::InvalidArgument("IndexAttribute: missing value_fn");
  }
  const int n = topology_->num_nodes();
  ScalarIndex index;
  index.decl = attr;
  index.values.resize(n);
  for (NodeId u = 0; u < n; ++u) index.values[u] = attr.value_fn(u);
  index.per_tree.resize(trees_.size());
  for (size_t t = 0; t < trees_.size(); ++t) {
    const RoutingTree& tree = *trees_[t];
    auto& per_node = index.per_tree[t];
    per_node.resize(n);
    // Post-order accumulation: subtree summary = own value + children's.
    std::vector<std::unique_ptr<ScalarSummary>> subtree(n);
    // Process nodes deepest-first.
    std::vector<NodeId> order(n);
    for (int i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      return tree.DepthOf(a) > tree.DepthOf(b);
    });
    for (NodeId u : order) {
      auto own = ScalarSummary::Make(attr.summary_type);
      own->Insert(index.values[u]);
      const auto& children = tree.ChildrenOf(u);
      per_node[u].reserve(children.size());
      for (NodeId c : children) {
        ASPEN_DCHECK(subtree[c] != nullptr);
        per_node[u].push_back(subtree[c]->Clone());
        own->Merge(*subtree[c]);
      }
      subtree[u] = std::move(own);
      // Each non-root node ships its merged subtree summary to its parent
      // during construction.
      if (tree.ParentOf(u) != -1) {
        int bytes =
            subtree[u]->SizeBytes() + net::WireFormat::kLinkHeaderBytes;
        if (stats != nullptr) {
          stats->RecordSend(u, net::MessageKind::kBeacon, bytes);
        }
        construction_bytes_ += bytes;
      }
    }
  }
  scalar_indexes_.push_back(std::move(index));
  return static_cast<int>(scalar_indexes_.size()) - 1;
}

void MultiTree::IndexPositions(net::TrafficStats* stats) {
  const int n = topology_->num_nodes();
  position_index_.built = true;
  position_index_.per_tree.assign(trees_.size(), {});
  for (size_t t = 0; t < trees_.size(); ++t) {
    const RoutingTree& tree = *trees_[t];
    auto& per_node = position_index_.per_tree[t];
    per_node.resize(n);
    std::vector<RTreeSummary> subtree(n, RTreeSummary(options_.rtree_max_rects));
    std::vector<NodeId> order(n);
    for (int i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      return tree.DepthOf(a) > tree.DepthOf(b);
    });
    for (NodeId u : order) {
      RTreeSummary own(options_.rtree_max_rects);
      own.Insert(topology_->position(u));
      for (NodeId c : tree.ChildrenOf(u)) {
        per_node[u].push_back(subtree[c]);
        own.Merge(subtree[c]);
      }
      subtree[u] = own;
      if (tree.ParentOf(u) != -1) {
        int bytes = own.SizeBytes() + net::WireFormat::kLinkHeaderBytes;
        if (stats != nullptr) {
          stats->RecordSend(u, net::MessageKind::kBeacon, bytes);
        }
        construction_bytes_ += bytes;
      }
    }
  }
}

void MultiTree::ChargeExploreHop(NodeId from, int depth,
                                 net::TrafficStats* stats,
                                 SearchStats* ss) const {
  int bytes = net::WireFormat::kLinkHeaderBytes + kExploreBaseBytes +
              depth * net::WireFormat::kPathEntryBytes;
  if (stats != nullptr) {
    stats->RecordSend(from, net::MessageKind::kExploration, bytes);
  }
  if (ss != nullptr) {
    ss->exploration_bytes += bytes;
    ss->max_hops = std::max(ss->max_hops, depth + 1);
  }
}

void MultiTree::ChargeReply(const std::vector<NodeId>& path,
                            net::TrafficStats* stats, SearchStats* ss) const {
  // The reply retraces the path target -> source carrying the reversed path
  // vector plus the hops-to-base array used for join-node placement.
  const int hops = static_cast<int>(path.size()) - 1;
  const int bytes = net::WireFormat::kLinkHeaderBytes + kReplyBaseBytes +
                    2 * hops * net::WireFormat::kPathEntryBytes;
  for (size_t k = path.size(); k-- > 1;) {
    if (stats != nullptr) {
      stats->RecordSend(path[k], net::MessageKind::kExplorationReply, bytes);
    }
    if (ss != nullptr) ss->reply_bytes += bytes;
  }
  if (ss != nullptr) {
    ss->max_hops = std::max(ss->max_hops, 2 * hops);
    ++ss->paths_found;
  }
}

std::vector<FoundPath> MultiTree::Search(
    NodeId source, const std::function<bool(int, NodeId, size_t)>& descend,
    const std::function<bool(NodeId)>& matches, net::TrafficStats* stats,
    SearchStats* search_stats) const {
  std::vector<FoundPath> results;
  for (int t = 0; t < num_trees(); ++t) {
    const RoutingTree& tree = *trees_[t];
    // Stack items describe their path implicitly — an ascent prefix of
    // `up_path` plus the tree chain from the branch ancestor down to the
    // item's node — instead of materializing a vector per item. Descents
    // only ever follow tree edges, so the chain is recoverable by walking
    // ParentOf; only matches pay to build the actual path. (Materialized
    // per-item paths made exploration O(visited x depth) and dominated
    // initiation at 100k nodes.)
    struct Item {
      NodeId node;
      int up_prefix;  ///< leading entries of up_path on this item's path
      int path_len;   ///< total path entries, ending at `node`
    };
    // Ascent source -> ... -> root, grown by phase 2 below. Items only
    // reference prefixes that were complete when they were pushed.
    std::vector<NodeId> up_path{source};
    auto build_path = [&](const Item& item) {
      std::vector<NodeId> path(item.path_len);
      std::copy(up_path.begin(), up_path.begin() + item.up_prefix,
                path.begin());
      NodeId u = item.node;
      for (int k = item.path_len; k-- > item.up_prefix;) {
        path[k] = u;
        u = tree.ParentOf(u);
      }
      return path;
    };
    auto expand_down = [&](std::vector<Item>* stack, const Item& item) {
      const auto& children = tree.ChildrenOf(item.node);
      for (size_t ci = 0; ci < children.size(); ++ci) {
        if (!descend(t, item.node, ci)) continue;
        ChargeExploreHop(item.node, item.path_len - 1, stats, search_stats);
        stack->push_back(Item{children[ci], item.up_prefix, item.path_len + 1});
      }
    };
    auto visit = [&](const Item& item) {
      if (search_stats != nullptr) ++search_stats->nodes_visited;
      if (item.node != source && matches(item.node)) {
        std::vector<NodeId> path = build_path(item);
        ChargeReply(path, stats, search_stats);
        results.push_back(FoundPath{item.node, std::move(path), t});
      }
    };

    std::vector<Item> stack;
    // Phase 1: descend below the source.
    expand_down(&stack, Item{source, 1, 1});
    // Phase 2: ascend toward the root; at each ancestor, test the ancestor
    // itself and descend into its other children. Never re-ascend after a
    // descent.
    {
      NodeId cur = source;
      while (tree.ParentOf(cur) != -1) {
        NodeId p = tree.ParentOf(cur);
        ChargeExploreHop(cur, static_cast<int>(up_path.size()) - 1, stats,
                         search_stats);
        up_path.push_back(p);
        const int len = static_cast<int>(up_path.size());
        visit(Item{p, len, len});
        const auto& children = tree.ChildrenOf(p);
        for (size_t ci = 0; ci < children.size(); ++ci) {
          if (children[ci] == cur) continue;
          if (!descend(t, p, ci)) continue;
          ChargeExploreHop(p, len - 1, stats, search_stats);
          stack.push_back(Item{children[ci], len, len + 1});
        }
        cur = p;
      }
    }
    while (!stack.empty()) {
      Item item = stack.back();
      stack.pop_back();
      visit(item);
      expand_down(&stack, item);
    }
  }
  return results;
}

std::vector<FoundPath> MultiTree::FindMatches(
    NodeId source, int attr_idx, int32_t value,
    const std::function<bool(NodeId)>& accept, net::TrafficStats* stats,
    SearchStats* search_stats) const {
  ASPEN_CHECK(attr_idx >= 0 &&
              attr_idx < static_cast<int>(scalar_indexes_.size()));
  const ScalarIndex& index = scalar_indexes_[attr_idx];
  auto descend = [&](int t, NodeId u, size_t ci) {
    return index.per_tree[t][u][ci]->MayContain(value);
  };
  auto matches = [&](NodeId u) {
    if (index.values[u] != value) return false;
    return accept == nullptr || accept(u);
  };
  return Search(source, descend, matches, stats, search_stats);
}

std::vector<FoundPath> MultiTree::FindWithinRadius(
    NodeId source, double radius, const std::function<bool(NodeId)>& accept,
    net::TrafficStats* stats, SearchStats* search_stats) const {
  ASPEN_CHECK(position_index_.built);
  const net::Point& center = topology_->position(source);
  auto descend = [&](int t, NodeId u, size_t ci) {
    return position_index_.per_tree[t][u][ci].MayIntersectCircle(center,
                                                                 radius);
  };
  auto matches = [&](NodeId u) {
    if (net::Distance(topology_->position(u), center) > radius) return false;
    return accept == nullptr || accept(u);
  };
  return Search(source, descend, matches, stats, search_stats);
}

}  // namespace routing
}  // namespace aspen
