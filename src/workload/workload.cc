#include "workload/workload.h"

#include <algorithm>
#include <array>

#include "common/logging.h"
#include "routing/content_address.h"

namespace aspen {
namespace workload {

using query::AttrId;
using query::Expr;
using query::ExprPtr;
using query::Side;

namespace {

/// hP(u) as an expression: hash(u + salt) % mod == 0 (omitted when mod <= 1).
ExprPtr FilterClause(Side side, int salt, int mod) {
  ASPEN_CHECK_GT(mod, 1);
  return Expr::Eq(
      Expr::Mod(Expr::Hash(Expr::Add(Expr::Attr(side, AttrId::kAttrU),
                                     Expr::Const(salt))),
                Expr::Const(mod)),
      Expr::Const(0));
}

void AppendFilters(std::vector<ExprPtr>* clauses, const FilterDesign& design) {
  if (design.mod_s > 1) {
    clauses->push_back(FilterClause(Side::kS, design.salt_s, design.mod_s));
  }
  if (design.mod_t > 1) {
    clauses->push_back(FilterClause(Side::kT, design.salt_t, design.mod_t));
  }
}

}  // namespace

Workload::Workload(const net::Topology* topology, uint64_t seed)
    : topology_(topology),
      seed_(seed),
      statics_(*topology, seed ^ 0x57A71C5ULL),
      node_params_(topology->num_nodes()) {}

Status Workload::Finalize(query::JoinQuery query) {
  query_ = std::move(query);
  ASPEN_ASSIGN_OR_RETURN(analysis_, query::Analyze(query_));
  return Status::OK();
}

Result<Workload> Workload::MakeQuery0(const net::Topology* topology,
                                      SelectivityParams params, int num_pairs,
                                      int window, uint64_t seed) {
  if (num_pairs < 1) {
    return Status::InvalidArgument("Query0 needs at least one pair");
  }
  Workload w(topology, seed);
  w.default_params_ = params;
  const int n = topology->num_nodes();
  if (2 * num_pairs > n - 1) {
    return Status::InvalidArgument("Query0: too many pairs for the network");
  }
  // Random, disjoint endpoints (never the base station). S members get
  // group_id = 1, T members group_id = 2; partners share a name_id.
  Rng rng(seed ^ 0xBEEFULL);
  std::vector<net::NodeId> ids;
  for (net::NodeId i = 1; i < n; ++i) ids.push_back(i);
  for (size_t i = ids.size(); i > 1; --i) {
    std::swap(ids[i - 1], ids[rng.UniformInt(i)]);
  }
  for (int p = 0; p < num_pairs; ++p) {
    net::NodeId s = ids[2 * p], t = ids[2 * p + 1];
    w.statics_.Set(s, AttrId::kAttrGroupId, 1);
    w.statics_.Set(s, AttrId::kAttrNameId, p);
    w.statics_.Set(t, AttrId::kAttrGroupId, 2);
    w.statics_.Set(t, AttrId::kAttrNameId, p);
  }
  const FilterDesign design = DesignFilters(params);
  std::vector<ExprPtr> clauses{
      Expr::Eq(Expr::Attr(Side::kS, AttrId::kAttrGroupId), Expr::Const(1)),
      Expr::Eq(Expr::Attr(Side::kT, AttrId::kAttrGroupId), Expr::Const(2)),
      Expr::Eq(Expr::Attr(Side::kS, AttrId::kAttrNameId),
               Expr::Attr(Side::kT, AttrId::kAttrNameId)),
      Expr::Eq(Expr::Attr(Side::kS, AttrId::kAttrU),
               Expr::Attr(Side::kT, AttrId::kAttrU))};
  AppendFilters(&clauses, design);
  query::JoinQuery q;
  q.where = Expr::AndAll(clauses);
  q.window.size = window;
  ASPEN_RETURN_NOT_OK(w.Finalize(std::move(q)));
  return w;
}

Result<Workload> Workload::MakeQuery1(const net::Topology* topology,
                                      SelectivityParams params, int window,
                                      uint64_t seed) {
  Workload w(topology, seed);
  w.default_params_ = params;
  const FilterDesign design = DesignFilters(params);
  std::vector<ExprPtr> clauses{
      Expr::Lt(Expr::Attr(Side::kS, AttrId::kAttrId), Expr::Const(25)),
      Expr::Gt(Expr::Attr(Side::kT, AttrId::kAttrId), Expr::Const(50)),
      Expr::Eq(Expr::Attr(Side::kS, AttrId::kAttrX),
               Expr::Add(Expr::Attr(Side::kT, AttrId::kAttrY),
                         Expr::Const(5))),
      Expr::Eq(Expr::Attr(Side::kS, AttrId::kAttrU),
               Expr::Attr(Side::kT, AttrId::kAttrU))};
  AppendFilters(&clauses, design);
  query::JoinQuery q;
  q.where = Expr::AndAll(clauses);
  q.window.size = window;
  ASPEN_RETURN_NOT_OK(w.Finalize(std::move(q)));
  return w;
}

Result<Workload> Workload::MakeQuery2(const net::Topology* topology,
                                      SelectivityParams params, int window,
                                      uint64_t seed) {
  Workload w(topology, seed);
  w.default_params_ = params;
  const FilterDesign design = DesignFilters(params);
  std::vector<ExprPtr> clauses{
      Expr::Eq(Expr::Attr(Side::kS, AttrId::kAttrRid), Expr::Const(0)),
      Expr::Eq(Expr::Attr(Side::kT, AttrId::kAttrRid), Expr::Const(3)),
      Expr::Eq(Expr::Attr(Side::kS, AttrId::kAttrCid),
               Expr::Attr(Side::kT, AttrId::kAttrCid)),
      Expr::Eq(Expr::Mod(Expr::Attr(Side::kS, AttrId::kAttrId),
                         Expr::Const(4)),
               Expr::Mod(Expr::Attr(Side::kT, AttrId::kAttrId),
                         Expr::Const(4))),
      Expr::Eq(Expr::Attr(Side::kS, AttrId::kAttrU),
               Expr::Attr(Side::kT, AttrId::kAttrU))};
  AppendFilters(&clauses, design);
  query::JoinQuery q;
  q.where = Expr::AndAll(clauses);
  q.window.size = window;
  ASPEN_RETURN_NOT_OK(w.Finalize(std::move(q)));
  return w;
}

Result<Workload> Workload::MakeQuery3(const net::Topology* topology,
                                      int window, uint64_t seed) {
  Workload w(topology, seed);
  w.default_params_ = SelectivityParams{1.0, 1.0, 0.2};
  w.trace_ = std::make_shared<IntelTrace>(*topology, seed ^ 0x1A7EB);
  std::vector<ExprPtr> clauses{
      Expr::Lt(Expr::Dist(), Expr::Const(50)),  // 5m in decimeters
      Expr::Lt(Expr::Attr(Side::kS, AttrId::kAttrId),
               Expr::Attr(Side::kT, AttrId::kAttrId)),
      Expr::Gt(Expr::Abs(Expr::Sub(Expr::Attr(Side::kS, AttrId::kAttrV),
                                   Expr::Attr(Side::kT, AttrId::kAttrV))),
               Expr::Const(1000))};
  query::JoinQuery q;
  q.where = Expr::AndAll(clauses);
  q.window.size = window;
  ASPEN_RETURN_NOT_OK(w.Finalize(std::move(q)));
  return w;
}

Result<Workload> Workload::FromQuery(const net::Topology* topology,
                                     query::JoinQuery query,
                                     SelectivityParams params, uint64_t seed) {
  Workload w(topology, seed);
  w.default_params_ = params;
  std::vector<std::pair<Side, int>> attrs;
  if (query.where != nullptr) query.where->CollectAttrs(&attrs);
  for (const auto& [side, attr] : attrs) {
    if (attr == AttrId::kAttrV) {
      w.trace_ = std::make_shared<IntelTrace>(*topology, seed ^ 0x1A7EB);
      break;
    }
  }
  ASPEN_RETURN_NOT_OK(w.Finalize(std::move(query)));
  return w;
}

// ---- static pre-evaluation ------------------------------------------------

bool Workload::SEligible(net::NodeId id) const {
  return analysis_.SEligible(statics_.tuple(id));
}

bool Workload::TEligible(net::NodeId id) const {
  return analysis_.TEligible(statics_.tuple(id));
}

std::vector<net::NodeId> Workload::SNodes() const {
  std::vector<net::NodeId> out;
  for (net::NodeId i = 0; i < topology_->num_nodes(); ++i) {
    if (SEligible(i)) out.push_back(i);
  }
  return out;
}

std::vector<net::NodeId> Workload::TNodes() const {
  std::vector<net::NodeId> out;
  for (net::NodeId i = 0; i < topology_->num_nodes(); ++i) {
    if (TEligible(i)) out.push_back(i);
  }
  return out;
}

bool Workload::StaticPairJoins(net::NodeId s, net::NodeId t) const {
  if (!SEligible(s) || !TEligible(t)) return false;
  const query::Tuple& st = statics_.tuple(s);
  const query::Tuple& tt = statics_.tuple(t);
  if (analysis_.primary.has_value()) {
    const auto& p = *analysis_.primary;
    if (p.region_radius_dm.has_value()) {
      double dx = st[AttrId::kAttrPosX] - tt[AttrId::kAttrPosX];
      double dy = st[AttrId::kAttrPosY] - tt[AttrId::kAttrPosY];
      if (dx * dx + dy * dy >= static_cast<double>(*p.region_radius_dm) *
                                   (*p.region_radius_dm)) {
        return false;
      }
    } else {
      int32_t probe = p.probe_expr->Eval(&st, nullptr);
      int32_t target = p.target_expr->Eval(&tt, nullptr);
      if (probe != target) return false;
    }
  }
  return analysis_.SecondaryStaticPass(st, tt);
}

std::vector<std::pair<net::NodeId, net::NodeId>> Workload::AllJoinPairs()
    const {
  std::vector<std::pair<net::NodeId, net::NodeId>> out;
  auto s_nodes = SNodes();
  auto t_nodes = TNodes();
  for (net::NodeId s : s_nodes) {
    for (net::NodeId t : t_nodes) {
      if (s != t && StaticPairJoins(s, t)) out.emplace_back(s, t);
    }
  }
  return out;
}

std::optional<int32_t> Workload::SJoinKey(net::NodeId id) const {
  if (!analysis_.primary.has_value() ||
      analysis_.primary->probe_expr == nullptr) {
    return std::nullopt;
  }
  const query::Tuple& st = statics_.tuple(id);
  return analysis_.primary->probe_expr->Eval(&st, nullptr);
}

std::optional<int32_t> Workload::TJoinKey(net::NodeId id) const {
  if (!analysis_.primary.has_value() ||
      analysis_.primary->target_expr == nullptr) {
    return std::nullopt;
  }
  const query::Tuple& tt = statics_.tuple(id);
  return analysis_.primary->target_expr->Eval(&tt, nullptr);
}

// ---- per-node / temporal selectivity --------------------------------------

void Workload::SetNodeParams(net::NodeId id, SelectivityParams params) {
  if (!node_params_[id].has_value()) ++num_node_overrides_;
  node_params_[id] = params;
  node_filters_valid_ = false;
}

void Workload::SetGlobalSwitch(int cycle, SelectivityParams params) {
  switch_cycle_ = cycle;
  switch_params_ = params;
}

const SelectivityParams& Workload::ParamsAt(net::NodeId id, int cycle) const {
  if (cycle >= switch_cycle_) return switch_params_;
  if (node_params_[id].has_value()) return *node_params_[id];
  return default_params_;
}

const SelectivityParams* Workload::UniformParamsAt(int cycle) const {
  // Past the global switch every node uses switch_params_ (ParamsAt ignores
  // overrides there); below it only override-free workloads are uniform.
  if (cycle >= switch_cycle_) return &switch_params_;
  if (num_node_overrides_ == 0) return &default_params_;
  return nullptr;
}

const FilterDesign& Workload::FilterFor(const SelectivityParams& p) const {
  std::array<int, 3> key{p.UDomain(), CeilInverse(p.sigma_s),
                         CeilInverse(p.sigma_t)};
  for (const auto& [k, v] : filter_cache_) {
    if (k == key) return v;
  }
  filter_cache_.emplace_back(key, DesignFilters(p));
  return filter_cache_.back().second;
}

void Workload::WarmFilterCache() const {
  // Inserts a design for every SelectivityParams a ParamsAt() call can
  // currently return: the default, per-node overrides, and the global
  // switch target. Afterwards concurrent FilterFor() calls are pure cache
  // hits — no mutation, no reference invalidation — which is what makes
  // PassSFilter/PassTFilter safe from sharded sample workers.
  (void)FilterFor(default_params_);
  for (const auto& override_params : node_params_) {
    if (override_params.has_value()) (void)FilterFor(*override_params);
  }
  if (switch_cycle_ != INT32_MAX) (void)FilterFor(switch_params_);
  // Tabulate the per-node verdict table used by the override path of
  // PassFilters, hoisting the ParamsAt + FilterFor resolution out of the
  // per-sample loop. Below the global switch ParamsAt(id, cycle) is
  // cycle-independent, so one row per node covers every pre-switch cycle.
  if (num_node_overrides_ > 0 && !node_filters_valid_) {
    node_filters_.resize(node_params_.size());
    for (size_t id = 0; id < node_params_.size(); ++id) {
      const SelectivityParams& p =
          node_params_[id].has_value() ? *node_params_[id] : default_params_;
      const FilterDesign& d = FilterFor(p);
      node_filters_[id] = {d.pass_mask_s, d.pass_mask_t,
                           static_cast<uint64_t>(p.UDomain())};
    }
    node_filters_valid_ = true;
  }
}

// ---- sampling ---------------------------------------------------------------

query::Tuple Workload::Sample(net::NodeId id, int cycle) const {
  query::Tuple t;
  SampleInto(id, cycle, &t);
  return t;
}

void Workload::SampleInto(net::NodeId id, int cycle,
                          query::Tuple* out) const {
  SampleWithParams(id, cycle, ParamsAt(id, cycle), out);
}

void Workload::SampleWithParams(net::NodeId id, int cycle,
                                const SelectivityParams& p,
                                query::Tuple* out) const {
  query::Tuple& t = *out;
  t = statics_.tuple(id);  // copy-assign reuses the caller's capacity
  const int domain = p.UDomain();
  // Counter-hash draws keep the trace a pure function of (node, cycle).
  uint64_t h = routing::HashKey(static_cast<int32_t>(cycle), seed_ ^ (id * 0x9E3779B9ULL));
  t[AttrId::kAttrU] = static_cast<int32_t>(h % domain);
  t[AttrId::kAttrV] =
      trace_ != nullptr ? trace_->Humidity(id, cycle) : 0;
  t[AttrId::kAttrSeq] = cycle & 0x7FFF;
  t[AttrId::kAttrLocalTime] = cycle & 0x7FFF;
  t[AttrId::kAttrTemp] =
      200 + static_cast<int32_t>(routing::HashKey(cycle, seed_ ^ id ^ 0x77) % 80);
  t[AttrId::kAttrBattery] = 2900;
  t[AttrId::kAttrMemFree] = 4096;
}

void Workload::SampleBatchInto(const net::NodeId* ids, int count, int cycle,
                               query::Tuple* out) const {
  if (const SelectivityParams* uni = UniformParamsAt(cycle)) {
    // One domain lookup for the whole batch; the draws are unchanged.
    for (int i = 0; i < count; ++i) {
      SampleWithParams(ids[i], cycle, *uni, &out[i]);
    }
    return;
  }
  for (int i = 0; i < count; ++i) SampleInto(ids[i], cycle, &out[i]);
}

bool Workload::PassSFilter(net::NodeId id, const query::Tuple& tuple,
                           int cycle) const {
  return FilterFor(ParamsAt(id, cycle)).PassS(tuple[AttrId::kAttrU]);
}

bool Workload::PassTFilter(net::NodeId id, const query::Tuple& tuple,
                           int cycle) const {
  return FilterFor(ParamsAt(id, cycle)).PassT(tuple[AttrId::kAttrU]);
}

void Workload::PassFilters(const net::NodeId* ids, int count, int cycle,
                           uint64_t* s_bits, uint64_t* t_bits) const {
  const int words = (count + 63) / 64;
  const uint64_t seed = seed_;
  const int32_t c = static_cast<int32_t>(cycle);
  if (const SelectivityParams* uni = UniformParamsAt(cycle)) {
    // Fast path: one design for the batch. The u draw below is the exact
    // SampleInto expression, and the pass masks tabulate PassS/PassT over
    // the whole domain, so each bit equals the scalar filter verdict. The
    // verdicts accumulate block-wise into word-local registers — one store
    // per 64 ids — and the inner body is branch-free (the counter hash is
    // inline, the predicate two mask tests), so the compiler can vectorize.
    const FilterDesign& d = FilterFor(*uni);
    const uint64_t domain = static_cast<uint64_t>(uni->UDomain());
    const uint64_t mask_s = d.pass_mask_s;
    const uint64_t mask_t = d.pass_mask_t;
    for (int w = 0; w < words; ++w) {
      const int base = w << 6;
      const int n = count - base < 64 ? count - base : 64;
      uint64_t sw = 0, tw = 0;
      for (int j = 0; j < n; ++j) {
        const uint64_t h =
            routing::HashKey(c, seed ^ (ids[base + j] * 0x9E3779B9ULL));
        const uint64_t u = h % domain;
        sw |= ((mask_s >> u) & 1ULL) << j;
        tw |= ((mask_t >> u) & 1ULL) << j;
      }
      s_bits[w] = sw;
      t_bits[w] = tw;
    }
    return;
  }
  if (node_filters_valid_) {
    // Per-node overrides live with a warm verdict table: the node's masks
    // and domain come from one indexed load instead of a ParamsAt branch
    // plus a FilterFor cache scan per sample. Valid for every cycle here —
    // UniformParamsAt covers cycle >= switch_cycle_, so this path only
    // runs below the switch, where the table is cycle-independent.
    for (int w = 0; w < words; ++w) {
      const int base = w << 6;
      const int n = count - base < 64 ? count - base : 64;
      uint64_t sw = 0, tw = 0;
      for (int j = 0; j < n; ++j) {
        const net::NodeId id = ids[base + j];
        const NodeFilter& f = node_filters_[id];
        const uint64_t h = routing::HashKey(c, seed ^ (id * 0x9E3779B9ULL));
        const uint64_t u = h % f.domain;
        sw |= ((f.mask_s >> u) & 1ULL) << j;
        tw |= ((f.mask_t >> u) & 1ULL) << j;
      }
      s_bits[w] = sw;
      t_bits[w] = tw;
    }
    return;
  }
  // Cold fallback (no WarmFilterCache since the last override): resolve the
  // design per node through the memo cache.
  std::fill_n(s_bits, words, 0ULL);
  std::fill_n(t_bits, words, 0ULL);
  for (int i = 0; i < count; ++i) {
    const SelectivityParams& p = ParamsAt(ids[i], cycle);
    const FilterDesign& d = FilterFor(p);
    const uint64_t h = routing::HashKey(c, seed ^ (ids[i] * 0x9E3779B9ULL));
    const uint64_t u = h % static_cast<uint64_t>(p.UDomain());
    s_bits[i >> 6] |= ((d.pass_mask_s >> u) & 1ULL) << (i & 63);
    t_bits[i >> 6] |= ((d.pass_mask_t >> u) & 1ULL) << (i & 63);
  }
}

bool Workload::TuplesJoin(const query::Tuple& s, const query::Tuple& t) const {
  for (const auto& clause : analysis_.static_join) {
    if (!clause->EvalBool(&s, &t)) return false;
  }
  return analysis_.DynamicJoinPass(s, t);
}

// ---- wire sizes -------------------------------------------------------------

int Workload::DataBytes() const {
  return query::Schema::WireBytes(data_attrs_);
}

int Workload::ResultBytes() const {
  return query::Schema::WireBytes(query_.projected_attrs);
}

}  // namespace workload
}  // namespace aspen
