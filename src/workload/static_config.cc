#include "workload/static_config.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace aspen {
namespace workload {

using query::AttrId;

StaticConfig::StaticConfig(const net::Topology& topology, uint64_t seed) {
  const int n = topology.num_nodes();
  Rng rng(seed);
  // Bounding box of the deployment (cid/rid partition it 4x4).
  double min_x = topology.position(0).x, max_x = min_x;
  double min_y = topology.position(0).y, max_y = min_y;
  for (int i = 1; i < n; ++i) {
    const auto& p = topology.position(i);
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  const double span_x = std::max(max_x - min_x, 1e-9);
  const double span_y = std::max(max_y - min_y, 1e-9);
  const net::Point center{(min_x + max_x) / 2.0, (min_y + max_y) / 2.0};
  const double max_center_dist =
      std::hypot(span_x, span_y) / 2.0;

  tuples_.resize(n);
  for (int i = 0; i < n; ++i) {
    auto& t = tuples_[i];
    t = query::Schema::Sensor().MakeTuple();
    const auto& p = topology.position(i);
    t[AttrId::kAttrId] = i;
    // x: exponential decay away from the center, jittered; clamp [7, 60].
    double d = net::Distance(p, center) / max_center_dist;  // 0 at center
    double x = 7.0 + 53.0 * std::exp(-2.5 * d) +
               (rng.UniformDouble() - 0.5) * 6.0;
    t[AttrId::kAttrX] =
        std::clamp(static_cast<int32_t>(std::lround(x)), 7, 60);
    // y: uniform [0, 10).
    t[AttrId::kAttrY] = static_cast<int32_t>(rng.UniformInt(10));
    // cid/rid: 4x4 grid over the bounding box.
    int cid = static_cast<int>((p.x - min_x) / span_x * 4.0);
    int rid = static_cast<int>((p.y - min_y) / span_y * 4.0);
    t[AttrId::kAttrCid] = std::clamp(cid, 0, 3);
    t[AttrId::kAttrRid] = std::clamp(rid, 0, 3);
    // pos in decimeters.
    t[AttrId::kAttrPosX] = static_cast<int32_t>(std::lround(p.x * 10.0));
    t[AttrId::kAttrPosY] = static_cast<int32_t>(std::lround(p.y * 10.0));
    // Deterministic defaults for the assignable identifiers.
    t[AttrId::kAttrRole] = 0;
    t[AttrId::kAttrRoom] = cid * 4 + rid;
    t[AttrId::kAttrFloor] = 1;
    t[AttrId::kAttrGroupId] = 0;
    t[AttrId::kAttrCaps] = 0x3;
    t[AttrId::kAttrLocZ] = 0;
    t[AttrId::kAttrNameId] = i;
  }
}

void StaticConfig::Set(net::NodeId id, int attr, int32_t value) {
  ASPEN_CHECK(id >= 0 && id < num_nodes());
  ASPEN_CHECK(query::Schema::Sensor().is_static(attr));
  tuples_[id][attr] = value;
}

}  // namespace workload
}  // namespace aspen
