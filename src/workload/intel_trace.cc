#include "workload/intel_trace.h"

#include <algorithm>
#include <cmath>

#include "routing/content_address.h"

namespace aspen {
namespace workload {

namespace {
// Deterministic per-(node, cycle) Gaussian-ish noise using a counter hash:
// sum of three uniforms, centered — cheap and stateless, so Humidity() is a
// pure function.
double CounterNoise(uint64_t seed, int node, int cycle) {
  double acc = 0.0;
  for (int k = 0; k < 3; ++k) {
    uint64_t h = routing::HashKey(
        static_cast<int32_t>(node * 1000003 + cycle), seed ^ (k * 0x9E37ULL));
    acc += static_cast<double>(h >> 11) * 0x1.0p-53;
  }
  return (acc - 1.5) * 2.0;  // roughly N(0,1), support [-3, 3]
}
}  // namespace

IntelTrace::IntelTrace(const net::Topology& topology, uint64_t seed)
    : num_nodes_(topology.num_nodes()), seed_(seed) {
  Rng rng(seed);
  phase_.resize(num_nodes_);
  bias_.resize(num_nodes_);
  noise_scale_.resize(num_nodes_);
  for (int i = 0; i < num_nodes_; ++i) {
    const auto& p = topology.position(i);
    // Spatially smooth phase: nodes on the same side of the building peak
    // together; 5m-close nodes have nearly identical phase.
    phase_[i] = (p.x * 0.02 + p.y * 0.013);
    // Calibration bias: modest constant disagreement between motes.
    bias_[i] = rng.Normal(0.0, 220.0);
    // Noise scale tuned so |Δv| > 1000 holds ~20% of the time for close
    // pairs: Δ of two independent N(0, 550) ~ N(0, 778); with bias spread
    // the empirical rate lands near 0.2.
    noise_scale_[i] = 520.0 + rng.UniformDouble() * 80.0;
  }
}

int32_t IntelTrace::Humidity(net::NodeId node, int cycle) const {
  // Building-wide diurnal swing + slow drift + per-node noise.
  double diurnal = 2800.0 * std::sin(2.0 * M_PI * cycle / 300.0 + phase_[node]);
  double drift = 900.0 * std::sin(2.0 * M_PI * cycle / 97.0);
  double v = 18000.0 + diurnal + drift + bias_[node] +
             noise_scale_[node] * CounterNoise(seed_, node, cycle);
  return static_cast<int32_t>(
      std::clamp(v, 0.0, 65535.0));
}

double IntelTrace::DiffExceedProb(net::NodeId a, net::NodeId b,
                                  int32_t threshold, int cycles) const {
  int hits = 0;
  for (int c = 0; c < cycles; ++c) {
    if (std::abs(Humidity(a, c) - Humidity(b, c)) > threshold) ++hits;
  }
  return static_cast<double>(hits) / std::max(cycles, 1);
}

}  // namespace workload
}  // namespace aspen
