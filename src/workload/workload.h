// Experiment workloads: binds a topology, static attribute assignment,
// a Table 2 query, and deterministic per-(node, cycle) sampling streams.
//
// Sampling is a pure function of (node, cycle, seed) so that every join
// algorithm executed against the same workload sees the *identical* data
// trace — the paper runs all algorithms on the same source data traces and
// topologies (Appendix F).

#ifndef ASPEN_WORKLOAD_WORKLOAD_H_
#define ASPEN_WORKLOAD_WORKLOAD_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "net/topology.h"
#include "query/analyzer.h"
#include "workload/intel_trace.h"
#include "workload/selectivity.h"
#include "workload/static_config.h"

namespace aspen {
namespace workload {

/// \brief A fully-specified experiment workload.
class Workload {
 public:
  /// Query 0 (Table 2): 1:1 join between `num_pairs` random (s, t) node
  /// pairs on S.u = T.u. Pairing is established statically by assigning
  /// matching name_id values (the paper's sigma_id=random endpoint choice).
  static Result<Workload> MakeQuery0(const net::Topology* topology,
                                     SelectivityParams params, int num_pairs,
                                     int window, uint64_t seed);

  /// Query 1 (Table 2): m:n join, uniform endpoints:
  /// S.id < 25, T.id > 50, S.x = T.y + 5 AND S.u = T.u.
  static Result<Workload> MakeQuery1(const net::Topology* topology,
                                     SelectivityParams params, int window,
                                     uint64_t seed);

  /// Query 2 (Table 2): perimeter join (Query P):
  /// S.rid = 0, T.rid = 3, S.cid = T.cid AND S.id%4 = T.id%4 AND S.u = T.u.
  static Result<Workload> MakeQuery2(const net::Topology* topology,
                                     SelectivityParams params, int window,
                                     uint64_t seed);

  /// Query 3 (Table 2): region-based join on the Intel-like trace (Query R):
  /// Dst < 5m AND s.id < t.id AND abs(s.v - t.v) > 1000.
  static Result<Workload> MakeQuery3(const net::Topology* topology,
                                     int window, uint64_t seed);

  /// \brief Binds an arbitrary (e.g. parsed) query to a deployment. The u
  /// attribute is generated from `params`; the humidity trace is attached
  /// when the query references v.
  static Result<Workload> FromQuery(const net::Topology* topology,
                                    query::JoinQuery query,
                                    SelectivityParams params, uint64_t seed);

  const net::Topology& topology() const { return *topology_; }
  const StaticConfig& statics() const { return statics_; }
  const query::JoinQuery& join_query() const { return query_; }
  const query::QueryAnalysis& analysis() const { return analysis_; }
  uint64_t seed() const { return seed_; }

  // ---- static pre-evaluation --------------------------------------------

  bool SEligible(net::NodeId id) const;
  bool TEligible(net::NodeId id) const;
  std::vector<net::NodeId> SNodes() const;
  std::vector<net::NodeId> TNodes() const;

  /// True iff (s, t) satisfy the primary and secondary *static* join
  /// clauses (both must also be eligible). Ground truth for exploration.
  bool StaticPairJoins(net::NodeId s, net::NodeId t) const;

  /// All statically-joining (s, t) pairs.
  std::vector<std::pair<net::NodeId, net::NodeId>> AllJoinPairs() const;

  /// Join-key value for grouped (GHT/DHT) routing: the primary equality
  /// clause's probe/target value at a node. Unset for region primaries.
  std::optional<int32_t> SJoinKey(net::NodeId id) const;
  std::optional<int32_t> TJoinKey(net::NodeId id) const;

  // ---- per-node / temporal selectivity control (Section 6) ---------------

  /// Overrides the data-generation parameters of one node.
  void SetNodeParams(net::NodeId id, SelectivityParams params);

  /// From `cycle` on, every node switches to `params` (Figure 12(b)).
  void SetGlobalSwitch(int cycle, SelectivityParams params);

  /// The parameters governing a node's data generation at a cycle.
  const SelectivityParams& ParamsAt(net::NodeId id, int cycle) const;

  // ---- sampling -----------------------------------------------------------

  /// The full sensor tuple sampled by `id` at `cycle`. Pure function.
  query::Tuple Sample(net::NodeId id, int cycle) const;

  /// Sample() into a caller-owned tuple, reusing its capacity (the per-node
  /// hot path samples thousands of times per run; this variant never
  /// allocates once `out` is warm).
  void SampleInto(net::NodeId id, int cycle, query::Tuple* out) const;

  /// SampleInto() over `count` node ids: out[i] receives ids[i]'s tuple,
  /// bit-for-bit what SampleInto(ids[i], cycle, &out[i]) writes. Hoists the
  /// per-node parameter lookup when one SelectivityParams governs every
  /// node at `cycle` (no overrides, or past the global switch).
  void SampleBatchInto(const net::NodeId* ids, int count, int cycle,
                       query::Tuple* out) const;

  /// Batched filter evaluation over `count` node ids: sets bit i of
  /// s_bits/t_bits (64 ids per word, (count + 63) / 64 words) iff ids[i]'s
  /// sample at `cycle` passes the S (resp. T) filter — exactly
  /// PassS/TFilter(ids[i], Sample(ids[i], cycle), cycle), without
  /// materializing the tuples. One FilterFor lookup for the whole batch on
  /// the uniform-params fast path; same thread-safety contract as
  /// PassS/TFilter (warm the cache first).
  void PassFilters(const net::NodeId* ids, int count, int cycle,
                   uint64_t* s_bits, uint64_t* t_bits) const;

  /// Whether the sample passes the S-side (resp. T-side) dynamic selection
  /// (the hash-gate hP(u); always true for Query 3).
  ///
  /// Thread-safety: these memoize filter designs lazily, so concurrent
  /// calls are only safe after WarmFilterCache() has run since the last
  /// parameter mutation (the sharded sample phase warms per cycle).
  bool PassSFilter(net::NodeId id, const query::Tuple& tuple,
                   int cycle) const;
  bool PassTFilter(net::NodeId id, const query::Tuple& tuple,
                   int cycle) const;

  /// Precomputes the filter designs for every parameter set currently
  /// reachable through ParamsAt(), making subsequent PassS/TFilter calls
  /// read-only (and therefore safe from concurrent shard workers).
  void WarmFilterCache() const;

  /// All join clauses — secondary static plus dynamic — over a concrete
  /// tuple pair (the primary clause holds by construction for explored
  /// pairs but is re-checked here for grouped algorithms).
  bool TuplesJoin(const query::Tuple& s, const query::Tuple& t) const;

  // ---- wire sizes ---------------------------------------------------------

  /// Bytes of a producer data message (projected attributes + id + seq).
  int DataBytes() const;
  /// Bytes of one join result message.
  int ResultBytes() const;

 private:
  Workload(const net::Topology* topology, uint64_t seed);

  Status Finalize(query::JoinQuery query);
  const FilterDesign& FilterFor(const SelectivityParams& p) const;
  /// The one SelectivityParams governing *every* node at `cycle`, or
  /// nullptr when per-node overrides are live below the global switch.
  const SelectivityParams* UniformParamsAt(int cycle) const;
  /// SampleInto with the governing parameters already resolved.
  void SampleWithParams(net::NodeId id, int cycle, const SelectivityParams& p,
                        query::Tuple* out) const;

  const net::Topology* topology_;
  uint64_t seed_;
  StaticConfig statics_;
  query::JoinQuery query_;
  query::QueryAnalysis analysis_;
  std::shared_ptr<IntelTrace> trace_;  // only for Query 3

  SelectivityParams default_params_;
  std::vector<std::optional<SelectivityParams>> node_params_;
  /// Count of set node_params_ entries (0 = the batch fast path applies).
  int num_node_overrides_ = 0;
  int switch_cycle_ = INT32_MAX;
  SelectivityParams switch_params_;

  /// Memoized filter designs keyed by (domain, mod_s, mod_t).
  mutable std::vector<std::pair<std::array<int, 3>, FilterDesign>>
      filter_cache_;
  /// Per-node filter verdict table for the override path of PassFilters:
  /// the node's pass masks and u-domain, valid for every cycle below the
  /// global switch (ParamsAt is cycle-independent there). Built by
  /// WarmFilterCache(), invalidated by SetNodeParams(); same thread-safety
  /// contract as filter_cache_ (warm, then read-only).
  struct NodeFilter {
    uint64_t mask_s;
    uint64_t mask_t;
    uint64_t domain;
  };
  mutable std::vector<NodeFilter> node_filters_;
  mutable bool node_filters_valid_ = false;
  int data_attrs_ = 1;
};

}  // namespace workload
}  // namespace aspen

#endif  // ASPEN_WORKLOAD_WORKLOAD_H_
