// Selectivity machinery for the synthetic workload (Table 1 / Table 2).
//
// The paper draws the join attribute u uniformly from [0, ceil(1/sigma_st))
// so that Prob[u1 = u2] = sigma_st, and gates producers with
// hP(u) := hash(u) % ceil(1/sigma_p) == 0. Because the u domain is small
// (5..20 values), a naive hash salt realizes pass-rates far from sigma_p —
// so we search for hash salts whose *realized* pass rates and conditional
// join probability are closest to the targets. This keeps the predicate
// form of the paper while making the realized selectivities match the ones
// each figure sweeps.

#ifndef ASPEN_WORKLOAD_SELECTIVITY_H_
#define ASPEN_WORKLOAD_SELECTIVITY_H_

#include <cstdint>

namespace aspen {
namespace workload {

/// \brief The (sigma_s, sigma_t, sigma_st) triple of Section 3.
struct SelectivityParams {
  double sigma_s = 1.0;   ///< S producer send rate
  double sigma_t = 1.0;   ///< T producer send rate
  double sigma_st = 0.2;  ///< per-(value pair) join probability

  /// u domain size: ceil(1 / sigma_st).
  int UDomain() const;
};

/// ceil(1/p) with guards (p in (0, 1]).
int CeilInverse(double p);

/// \brief A calibrated pair of hash filters over a common u domain.
struct FilterDesign {
  int domain = 1;   ///< m = ceil(1/sigma_st)
  int mod_s = 1;    ///< ceil(1/sigma_s)
  int mod_t = 1;
  int salt_s = 0;
  int salt_t = 0;
  double realized_s = 1.0;   ///< fraction of the domain passing the S filter
  double realized_t = 1.0;
  double realized_st = 1.0;  ///< conditional join prob given both sent
  /// Bit u set iff domain value u passes the S (resp. T) filter — the whole
  /// predicate precomputed (domain <= 64 always). The batched filter path
  /// tests these instead of re-hashing per node.
  uint64_t pass_mask_s = 0;
  uint64_t pass_mask_t = 0;

  bool PassS(int32_t u) const;
  bool PassT(int32_t u) const;
};

/// \brief Searches hash salts so the realized (sigma_s, sigma_t, conditional
/// sigma_st) triple is as close as possible to `params`. Deterministic.
FilterDesign DesignFilters(const SelectivityParams& params);

}  // namespace workload
}  // namespace aspen

#endif  // ASPEN_WORKLOAD_SELECTIVITY_H_
