#include "workload/selectivity.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"
#include "query/expr.h"

namespace aspen {
namespace workload {

int CeilInverse(double p) {
  ASPEN_CHECK(p > 0.0 && p <= 1.0);
  return static_cast<int>(std::ceil(1.0 / p - 1e-9));
}

int SelectivityParams::UDomain() const { return CeilInverse(sigma_st); }

namespace {

bool Passes(int32_t u, int salt, int mod) {
  if (mod <= 1) return true;
  return query::HashValue16(u + salt) % mod == 0;
}

// Bitmask of domain values passing (domain <= 64 always: sigma_st >= 1/64).
uint64_t PassMask(int domain, int salt, int mod) {
  uint64_t mask = 0;
  for (int u = 0; u < domain; ++u) {
    if (Passes(u, salt, mod)) mask |= (1ULL << u);
  }
  return mask;
}

}  // namespace

bool FilterDesign::PassS(int32_t u) const { return Passes(u, salt_s, mod_s); }
bool FilterDesign::PassT(int32_t u) const { return Passes(u, salt_t, mod_t); }

FilterDesign DesignFilters(const SelectivityParams& params) {
  FilterDesign d;
  d.domain = params.UDomain();
  ASPEN_CHECK_LE(d.domain, 64);
  d.mod_s = CeilInverse(params.sigma_s);
  d.mod_t = CeilInverse(params.sigma_t);

  constexpr int kSaltSearch = 512;
  constexpr int kShortlist = 40;

  // Shortlist the salts whose realized pass rate is closest to the target,
  // then pick the (salt_s, salt_t) pair whose conditional join probability
  // is closest to 1/m.
  auto shortlist = [&](int mod, double target) {
    std::vector<std::pair<double, int>> scored;
    for (int salt = 0; salt < kSaltSearch; ++salt) {
      uint64_t mask = PassMask(d.domain, salt, mod);
      int count = __builtin_popcountll(mask);
      if (count == 0) continue;  // a never-sending producer breaks the run
      double realized = static_cast<double>(count) / d.domain;
      scored.emplace_back(std::abs(realized - target), salt);
    }
    std::sort(scored.begin(), scored.end());
    if (static_cast<int>(scored.size()) > kShortlist) scored.resize(kShortlist);
    return scored;
  };

  auto s_list = shortlist(d.mod_s, params.sigma_s);
  auto t_list = shortlist(d.mod_t, params.sigma_t);
  ASPEN_CHECK(!s_list.empty() && !t_list.empty());

  const double target_st = 1.0 / d.domain;
  double best_err = 1e300;
  for (const auto& [err_s, salt_s] : s_list) {
    uint64_t mask_s = PassMask(d.domain, salt_s, d.mod_s);
    int cnt_s = __builtin_popcountll(mask_s);
    for (const auto& [err_t, salt_t] : t_list) {
      uint64_t mask_t = PassMask(d.domain, salt_t, d.mod_t);
      int cnt_t = __builtin_popcountll(mask_t);
      int overlap = __builtin_popcountll(mask_s & mask_t);
      double realized_st =
          static_cast<double>(overlap) / (static_cast<double>(cnt_s) * cnt_t);
      // Weighted error: producer rates matter most for traffic shape; the
      // conditional join probability is matched as a soft constraint.
      double err = 2.0 * err_s + 2.0 * err_t +
                   std::abs(realized_st - target_st) / target_st * 0.5;
      if (err < best_err) {
        best_err = err;
        d.salt_s = salt_s;
        d.salt_t = salt_t;
        d.realized_s = static_cast<double>(cnt_s) / d.domain;
        d.realized_t = static_cast<double>(cnt_t) / d.domain;
        d.realized_st = realized_st;
      }
    }
  }
  d.pass_mask_s = PassMask(d.domain, d.salt_s, d.mod_s);
  d.pass_mask_t = PassMask(d.domain, d.salt_t, d.mod_t);
  return d;
}

}  // namespace workload
}  // namespace aspen
