// Static attribute assignment (Table 1): every node gets a static identity
// record derived from its position and id. These are the values the routing
// substrate indexes and the optimizer's static pre-evaluation consults.

#ifndef ASPEN_WORKLOAD_STATIC_CONFIG_H_
#define ASPEN_WORKLOAD_STATIC_CONFIG_H_

#include <vector>

#include "common/rng.h"
#include "net/topology.h"
#include "query/schema.h"

namespace aspen {
namespace workload {

/// \brief Per-node static tuples for a deployment.
///
/// Table 1 attributes:
///  - id: node id.
///  - x: [7, 60], exponential *spatial* distribution — nodes near the field
///    center get higher values.
///  - y: [0, 10), uniform random.
///  - cid, rid: column/row of the node in a 4x4 grid over the deployment's
///    bounding box.
///  - pos: the real position, stored in decimeters (fits 16 bits on a 256m
///    field) in pos_x / pos_y.
/// The remaining static attributes (role, room, ...) get deterministic
/// defaults and can be overridden (base-station flooding in the paper).
class StaticConfig {
 public:
  StaticConfig(const net::Topology& topology, uint64_t seed);

  const query::Tuple& tuple(net::NodeId id) const { return tuples_[id]; }
  int num_nodes() const { return static_cast<int>(tuples_.size()); }

  /// Overrides one static attribute on one node (models the directed
  /// multi-hop flooding update of Appendix B).
  void Set(net::NodeId id, int attr, int32_t value);

 private:
  std::vector<query::Tuple> tuples_;
};

}  // namespace workload
}  // namespace aspen

#endif  // ASPEN_WORKLOAD_STATIC_CONFIG_H_
