// Synthetic Intel-Research-Berkeley-like humidity trace (see DESIGN.md
// substitutions). Query 3 needs: (a) raw 16-bit humidity readings, (b)
// temporal correlation within a node, (c) spatial correlation so that nearby
// nodes (< 5m) usually agree, with occasional excursions making
// abs(s.v - t.v) > 1000 true for roughly 20% of close pairs — the sigma_st
// the paper's "Innet full knowledge" baseline uses for this dataset.

#ifndef ASPEN_WORKLOAD_INTEL_TRACE_H_
#define ASPEN_WORKLOAD_INTEL_TRACE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "net/topology.h"

namespace aspen {
namespace workload {

/// \brief Generator for correlated per-node humidity streams.
class IntelTrace {
 public:
  IntelTrace(const net::Topology& topology, uint64_t seed);

  /// Raw humidity reading for a node at a sampling cycle (16-bit range).
  /// Deterministic in (node, cycle).
  int32_t Humidity(net::NodeId node, int cycle) const;

  /// Empirical probability that two given nodes differ by more than
  /// `threshold` over `cycles` samples (diagnostic / test helper).
  double DiffExceedProb(net::NodeId a, net::NodeId b, int32_t threshold,
                        int cycles) const;

 private:
  int num_nodes_;
  /// Per-node phase of the building-wide diurnal component.
  std::vector<double> phase_;
  /// Per-node calibration bias (motes disagree by a constant offset).
  std::vector<double> bias_;
  /// Per-node noise scale.
  std::vector<double> noise_scale_;
  uint64_t seed_;
};

}  // namespace workload
}  // namespace aspen

#endif  // ASPEN_WORKLOAD_INTEL_TRACE_H_
