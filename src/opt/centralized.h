// Centralized-optimization baseline (Section 4.3, Figures 6 and 7).
//
// The centralized scheme ships every node's connectivity list and static
// attribute values to the base station, computes placements there with full
// knowledge, and distributes the plan back. It is the foil for the paper's
// decentralized initiation: correct but congested at the base and slow.

#ifndef ASPEN_OPT_CENTRALIZED_H_
#define ASPEN_OPT_CENTRALIZED_H_

#include <vector>

#include "net/topology.h"
#include "opt/cost_model.h"
#include "routing/routing_tree.h"

namespace aspen {
namespace opt {

/// \brief Initiation cost estimate for one optimization round.
struct InitiationCosts {
  int64_t total_bytes = 0;
  /// Bytes sent or received by the base station.
  int64_t base_bytes = 0;
  /// Bytes of plan distribution (included in total_bytes).
  int64_t plan_bytes = 0;
  /// Completion latency in transmission cycles. The base can receive one
  /// frame per cycle, so collecting n reports serializes at the base.
  int latency_cycles = 0;
};

/// \brief Cost of centralized initiation: every node reports its neighbor
/// list plus `static_attrs` attribute values up the tree; the base replies
/// with a path-vector plan to each of `participants`.
InitiationCosts CentralizedInitiation(const net::Topology& topology,
                                      const routing::RoutingTree& primary,
                                      int static_attrs,
                                      const std::vector<net::NodeId>& participants);

/// \brief Optimal join-node placement with full-graph knowledge: minimizes
/// the pairwise cost over *all* nodes j using true shortest-path distances.
/// This is the oracle the decentralized scheme is compared against (Fig 7).
Placement OptimalPlacement(const net::Topology& topology,
                           const PairCostInputs& params, net::NodeId s,
                           net::NodeId t);

/// Per-cycle expected data traffic (tuple-hops) of serving a pair under a
/// placement with true distances — used to score oracle vs distributed.
double PlacementTraffic(const net::Topology& topology,
                        const PairCostInputs& params, net::NodeId s,
                        net::NodeId t, const Placement& placement);

}  // namespace opt
}  // namespace aspen

#endif  // ASPEN_OPT_CENTRALIZED_H_
