// Group discovery and the GROUPOPT decision (Section 5.2, Algorithm 1).
//
// For commutative+transitive join predicates (e.g. equijoins), the bipartite
// graph of joining (s, t) pairs decomposes into complete bipartite subgraphs
// — the *groups*. Each group independently elects a coordinator (its
// smallest-id member), gathers every member's cost difference dCp, and
// decides between a fully in-network (pairwise) join and a grouped join at
// the base station.

#ifndef ASPEN_OPT_GROUP_H_
#define ASPEN_OPT_GROUP_H_

#include <vector>

#include "net/topology.h"

namespace aspen {
namespace opt {

/// \brief One join group: a connected component of the static join graph.
struct JoinGroup {
  std::vector<net::NodeId> s_members;
  std::vector<net::NodeId> t_members;
  net::NodeId coordinator = -1;  ///< smallest id across both member lists
  /// Every (s, t) pair in the component (the complete bipartite edge set
  /// when the predicate is transitive).
  std::vector<std::pair<net::NodeId, net::NodeId>> pairs;
};

/// \brief Partitions the statically-joining pairs into groups (connected
/// components of the bipartite join graph) and elects coordinators.
std::vector<JoinGroup> DiscoverGroups(
    const std::vector<std::pair<net::NodeId, net::NodeId>>& pairs);

/// \brief True iff the component's edge set is the full cross product of
/// its member lists — the paper's complete-bipartite assumption. Diagnostic
/// used by tests and by the executor to fall back to pairwise decisions for
/// non-transitive predicates.
bool IsCompleteBipartite(const JoinGroup& group);

/// \brief GROUPOPT decision: in-network iff the summed member cost
/// differences are negative (Algorithm 1, line 4).
enum class GroupDecision { kInNetwork, kAtBase };
GroupDecision DecideGroup(const std::vector<double>& member_delta_cp);

}  // namespace opt
}  // namespace aspen

#endif  // ASPEN_OPT_GROUP_H_
