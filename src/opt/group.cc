#include "opt/group.h"

#include <algorithm>
#include <map>
#include <set>

namespace aspen {
namespace opt {

namespace {

/// Union-find over node ids appearing in the pair list. S and T occurrences
/// of the same physical node are distinct endpoints (a node may be in both
/// relations), so S ids are mapped to 2*id and T ids to 2*id + 1.
class UnionFind {
 public:
  int Find(int x) {
    auto it = parent_.find(x);
    if (it == parent_.end()) {
      parent_[x] = x;
      return x;
    }
    int root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) {
      int next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    return root;
  }
  void Union(int a, int b) {
    int ra = Find(a), rb = Find(b);
    if (ra != rb) parent_[std::max(ra, rb)] = std::min(ra, rb);
  }

 private:
  std::map<int, int> parent_;
};

}  // namespace

std::vector<JoinGroup> DiscoverGroups(
    const std::vector<std::pair<net::NodeId, net::NodeId>>& pairs) {
  UnionFind uf;
  for (const auto& [s, t] : pairs) {
    uf.Union(2 * s, 2 * t + 1);
  }
  std::map<int, JoinGroup> groups;
  std::map<int, std::set<net::NodeId>> s_seen, t_seen;
  for (const auto& [s, t] : pairs) {
    int root = uf.Find(2 * s);
    JoinGroup& g = groups[root];
    g.pairs.emplace_back(s, t);
    if (s_seen[root].insert(s).second) g.s_members.push_back(s);
    if (t_seen[root].insert(t).second) g.t_members.push_back(t);
  }
  std::vector<JoinGroup> out;
  out.reserve(groups.size());
  for (auto& [root, g] : groups) {
    std::sort(g.s_members.begin(), g.s_members.end());
    std::sort(g.t_members.begin(), g.t_members.end());
    net::NodeId min_s = g.s_members.front();
    net::NodeId min_t = g.t_members.front();
    g.coordinator = std::min(min_s, min_t);
    out.push_back(std::move(g));
  }
  // Deterministic order: by coordinator id.
  std::sort(out.begin(), out.end(), [](const JoinGroup& a, const JoinGroup& b) {
    return a.coordinator < b.coordinator;
  });
  return out;
}

bool IsCompleteBipartite(const JoinGroup& group) {
  std::set<std::pair<net::NodeId, net::NodeId>> edges(group.pairs.begin(),
                                                      group.pairs.end());
  return edges.size() ==
         group.s_members.size() * group.t_members.size();
}

GroupDecision DecideGroup(const std::vector<double>& member_delta_cp) {
  double total = 0.0;
  for (double d : member_delta_cp) total += d;
  return total < 0.0 ? GroupDecision::kInNetwork : GroupDecision::kAtBase;
}

}  // namespace opt
}  // namespace aspen
