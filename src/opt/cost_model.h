// The join cost model (Section 3.1 and Appendix D, Table 3).
//
// Costs are expected message-transmission counts weighted by tuple rates;
// the unit is "tuple-hops" (multiply by wire bytes to get bytes). The
// optimizer is agnostic to the unit because only comparisons matter.

#ifndef ASPEN_OPT_COST_MODEL_H_
#define ASPEN_OPT_COST_MODEL_H_

#include <functional>
#include <vector>

#include "net/topology.h"
#include "workload/selectivity.h"

namespace aspen {
namespace opt {

/// \brief Cost-model inputs for one (s, t) pair. Distances are hop counts.
struct PairCostInputs {
  double sigma_s = 1.0;
  double sigma_t = 1.0;
  double sigma_st = 0.2;
  int w = 1;
};

/// Pairwise in-network cost of joining at node j (Section 3.1):
///   sigma_s*Dsj + sigma_t*Dtj + (sigma_s + sigma_t)*w*sigma_st*Djr
double InnetPairCost(const PairCostInputs& p, int d_sj, int d_tj, int d_jr);

/// Pairwise cost of joining this pair at the base station:
///   sigma_s*Dsr + sigma_t*Dtr
/// (results are already at the base, so no result-forwarding term).
double BasePairCost(const PairCostInputs& p, int d_sr, int d_tr);

/// Through-the-base (Yang+07) pairwise cost (Section 3.1):
///   sigma_s*Dsr + (sigma_s + (sigma_s + sigma_t)*w*sigma_st)*Dtr
double ThroughBasePairCost(const PairCostInputs& p, int d_sr, int d_tr);

/// GHT pairwise cost: both producers route to the hashed join node, and
/// results flow from there to the base:
///   sigma_s*Dsj + sigma_t*Dtj + (sigma_s + sigma_t)*w*sigma_st*Djr
/// (same expression as in-network, but j is fixed by the hash).
double GhtPairCost(const PairCostInputs& p, int d_sj, int d_tj, int d_jr);

/// \brief Result of optimizing one pair's join-node placement.
struct Placement {
  /// Chosen join node, or the base (node 0) when at_base.
  net::NodeId join_node = 0;
  /// Index of join_node within the candidate path (-1 when at_base).
  int path_index = -1;
  bool at_base = false;
  double cost = 0.0;
};

/// \brief Picks the cheapest join node on `path` (from s to t), comparing
/// against joining at the base. `depth_of` maps a node to its hop count to
/// the base station (primary-tree depth).
Placement PlaceOnPath(const PairCostInputs& p,
                      const std::vector<net::NodeId>& path,
                      const std::function<int(net::NodeId)>& depth_of);

/// \brief MPO per-producer cost difference (Section 5.2):
///   dCp = sigma_p * sum_j (Dpj + w*sigma_st*Npj*Djr) - sigma_p*Dpr
/// where the sum ranges over the join nodes handling this producer's pairs
/// and Npj is the number of pairs node j handles for p.
struct ProducerJoinNode {
  int d_pj = 0;    ///< hops from producer to join node j
  int d_jr = 0;    ///< hops from j to the base
  int n_pairs = 1; ///< Npj
};
double GroupDeltaCp(double sigma_p, double sigma_st, int w,
                    const std::vector<ProducerJoinNode>& join_nodes, int d_pr);

// ---- whole-algorithm analytic costs (Table 3) ------------------------------
// Used by bench_table3 to validate simulated traffic against the formulas.

struct AlgorithmCostInputs {
  PairCostInputs pair;
  /// Hops to base for every eligible S producer (resp. T).
  std::vector<int> d_sr;
  std::vector<int> d_tr;
  /// For GHT / In-Net: per-pair (Dsj, Dtj, Djr).
  struct PairDistances {
    int d_sj, d_tj, d_jr;
  };
  std::vector<PairDistances> pairs;
  /// Pre-filter selectivities phi_{s->t}: fraction of selection-passing S
  /// nodes that also satisfy some static join clause (Table 3, Base row).
  double phi_s_to_t = 1.0;
  double phi_t_to_s = 1.0;
  int num_s = 0;  ///< |S| after selection push-down
  int num_t = 0;
};

/// Per-cycle computation cost of each algorithm, in expected tuple-hops.
double NaiveComputationCost(const AlgorithmCostInputs& in);
double BaseComputationCost(const AlgorithmCostInputs& in);
double Yang07ComputationCost(const AlgorithmCostInputs& in);
double GhtComputationCost(const AlgorithmCostInputs& in);
double InnetComputationCost(const AlgorithmCostInputs& in);

}  // namespace opt
}  // namespace aspen

#endif  // ASPEN_OPT_COST_MODEL_H_
