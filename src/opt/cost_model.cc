#include "opt/cost_model.h"

#include "common/logging.h"

namespace aspen {
namespace opt {

double InnetPairCost(const PairCostInputs& p, int d_sj, int d_tj, int d_jr) {
  return p.sigma_s * d_sj + p.sigma_t * d_tj +
         (p.sigma_s + p.sigma_t) * p.w * p.sigma_st * d_jr;
}

double BasePairCost(const PairCostInputs& p, int d_sr, int d_tr) {
  return p.sigma_s * d_sr + p.sigma_t * d_tr;
}

double ThroughBasePairCost(const PairCostInputs& p, int d_sr, int d_tr) {
  return p.sigma_s * d_sr +
         (p.sigma_s + (p.sigma_s + p.sigma_t) * p.w * p.sigma_st) * d_tr;
}

double GhtPairCost(const PairCostInputs& p, int d_sj, int d_tj, int d_jr) {
  return InnetPairCost(p, d_sj, d_tj, d_jr);
}

Placement PlaceOnPath(const PairCostInputs& p,
                      const std::vector<net::NodeId>& path,
                      const std::function<int(net::NodeId)>& depth_of) {
  ASPEN_CHECK(!path.empty());
  Placement best;
  best.at_base = true;
  best.cost = BasePairCost(p, depth_of(path.front()), depth_of(path.back()));
  for (size_t i = 0; i < path.size(); ++i) {
    double c = InnetPairCost(p, static_cast<int>(i),
                             static_cast<int>(path.size() - 1 - i),
                             depth_of(path[i]));
    // Strict improvement keeps ties at the base: "never more expensive than
    // joining at the base station".
    if (c < best.cost) {
      best.cost = c;
      best.at_base = false;
      best.join_node = path[i];
      best.path_index = static_cast<int>(i);
    }
  }
  return best;
}

double GroupDeltaCp(double sigma_p, double sigma_st, int w,
                    const std::vector<ProducerJoinNode>& join_nodes,
                    int d_pr) {
  double innet = 0.0;
  for (const auto& j : join_nodes) {
    innet += j.d_pj + w * sigma_st * j.n_pairs * j.d_jr;
  }
  return sigma_p * innet - sigma_p * d_pr;
}

// ---- Table 3 ---------------------------------------------------------------

namespace {
double Sum(const std::vector<int>& v, double scale) {
  double acc = 0.0;
  for (int x : v) acc += x;
  return acc * scale;
}
}  // namespace

double NaiveComputationCost(const AlgorithmCostInputs& in) {
  return Sum(in.d_sr, in.pair.sigma_s) + Sum(in.d_tr, in.pair.sigma_t);
}

double BaseComputationCost(const AlgorithmCostInputs& in) {
  return Sum(in.d_sr, in.pair.sigma_s * in.phi_s_to_t) +
         Sum(in.d_tr, in.pair.sigma_t * in.phi_t_to_s);
}

double Yang07ComputationCost(const AlgorithmCostInputs& in) {
  // sigma_s*Sum_s Dsr + (sigma_s*|S|/|T| + (sigma_s+sigma_t)*w*sigma_st) *
  // Sum_t Dtr (Table 3).
  double down_rate =
      in.pair.sigma_s * (in.num_t > 0 ? static_cast<double>(in.num_s) / in.num_t
                                      : 0.0) +
      (in.pair.sigma_s + in.pair.sigma_t) * in.pair.w * in.pair.sigma_st;
  return Sum(in.d_sr, in.pair.sigma_s) + Sum(in.d_tr, down_rate);
}

double GhtComputationCost(const AlgorithmCostInputs& in) {
  double acc = 0.0;
  for (const auto& pd : in.pairs) {
    acc += GhtPairCost(in.pair, pd.d_sj, pd.d_tj, pd.d_jr);
  }
  return acc;
}

double InnetComputationCost(const AlgorithmCostInputs& in) {
  double acc = 0.0;
  for (const auto& pd : in.pairs) {
    acc += InnetPairCost(in.pair, pd.d_sj, pd.d_tj, pd.d_jr);
  }
  return acc;
}

}  // namespace opt
}  // namespace aspen
