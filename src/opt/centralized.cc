#include "opt/centralized.h"

#include <algorithm>

#include "net/message.h"

namespace aspen {
namespace opt {

InitiationCosts CentralizedInitiation(
    const net::Topology& topology, const routing::RoutingTree& primary,
    int static_attrs, const std::vector<net::NodeId>& participants) {
  InitiationCosts out;
  const int n = topology.num_nodes();
  int max_depth = 0;
  int64_t report_frames_at_base = 0;
  for (net::NodeId u = 1; u < n; ++u) {
    const int report_bytes =
        net::WireFormat::kLinkHeaderBytes + net::WireFormat::kNodeIdBytes +
        static_cast<int>(topology.neighbors(u).size()) *
            net::WireFormat::kNodeIdBytes +
        static_attrs * net::WireFormat::kAttributeBytes;
    const int depth = primary.DepthOf(u);
    out.total_bytes += static_cast<int64_t>(report_bytes) * depth;
    out.base_bytes += report_bytes;  // every report is received by the base
    report_frames_at_base += 1;
    max_depth = std::max(max_depth, depth);
  }
  // Plan distribution: a path-vector plan to each participant, routed down
  // the tree.
  for (net::NodeId p : participants) {
    const int depth = primary.DepthOf(p);
    const int plan_bytes = net::WireFormat::kLinkHeaderBytes +
                           net::WireFormat::kNodeIdBytes +
                           depth * net::WireFormat::kPathEntryBytes;
    out.plan_bytes += static_cast<int64_t>(plan_bytes) * depth;
    out.base_bytes += plan_bytes;  // the base transmits each plan
  }
  out.total_bytes += out.plan_bytes;
  // The base receives one frame per transmission cycle, so the report
  // in-gathering serializes there; plan distribution pipelines afterwards.
  out.latency_cycles = max_depth + static_cast<int>(report_frames_at_base) +
                       static_cast<int>(participants.size()) + max_depth;
  return out;
}

Placement OptimalPlacement(const net::Topology& topology,
                           const PairCostInputs& params, net::NodeId s,
                           net::NodeId t) {
  auto d_s = topology.HopDistancesFrom(s);
  auto d_t = topology.HopDistancesFrom(t);
  auto d_r = topology.HopDistancesFrom(0);
  Placement best;
  best.at_base = true;
  best.cost = BasePairCost(params, d_s[0], d_t[0]);
  for (net::NodeId j = 0; j < topology.num_nodes(); ++j) {
    double c = InnetPairCost(params, d_s[j], d_t[j], d_r[j]);
    if (c < best.cost) {
      best.cost = c;
      best.at_base = false;
      best.join_node = j;
      best.path_index = -1;
    }
  }
  return best;
}

double PlacementTraffic(const net::Topology& topology,
                        const PairCostInputs& params, net::NodeId s,
                        net::NodeId t, const Placement& placement) {
  auto d_s = topology.HopDistancesFrom(s);
  auto d_t = topology.HopDistancesFrom(t);
  auto d_r = topology.HopDistancesFrom(0);
  if (placement.at_base) {
    return BasePairCost(params, d_s[0], d_t[0]);
  }
  net::NodeId j = placement.join_node;
  return InnetPairCost(params, d_s[j], d_t[j], d_r[j]);
}

}  // namespace opt
}  // namespace aspen
