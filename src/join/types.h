// Shared types for the join-execution layer.

#ifndef ASPEN_JOIN_TYPES_H_
#define ASPEN_JOIN_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/run_knobs.h"
#include "net/topology.h"
#include "routing/summary.h"
#include "workload/selectivity.h"

namespace aspen {
namespace net {
class DataPlane;
}  // namespace net

namespace join {

/// \brief The join algorithm classes of Section 2.2.
enum class Algorithm : uint8_t {
  kNaive,   ///< grouped at base, no per-query setup
  kBase,    ///< grouped at base with static pre-computation
  kYang07,  ///< through-the-base [16]
  kGht,     ///< grouped at hashed node (GHT on motes, DHT ring in mesh mode)
  kInnet,   ///< pairwise in-network with cost-based placement
};

/// \brief Optional Innet techniques (Section 5 / Appendix E).
/// Variant naming follows the paper: Innet-c m p g =
/// combining (opportunistic packet merging), multicast trees,
/// path collapsing, group optimization.
struct InnetFeatures {
  bool combining = false;
  bool multicast = false;
  bool path_collapse = false;
  bool group_opt = false;

  static InnetFeatures None() { return {}; }
  static InnetFeatures Cm() { return {true, true, false, false}; }
  static InnetFeatures Cmg() { return {true, true, false, true}; }
  static InnetFeatures Cmp() { return {true, true, true, false}; }
  static InnetFeatures Cmpg() { return {true, true, true, true}; }
};

/// Display name matching the paper's figure legends ("Innet-cmg", ...).
std::string AlgorithmName(Algorithm algo, const InnetFeatures& f);

/// \brief Executor configuration.
struct ExecutorOptions {
  Algorithm algorithm = Algorithm::kInnet;
  InnetFeatures features;

  /// The selectivity estimates given to the optimizer. May differ from the
  /// workload's true generation parameters (Figures 4, 8, 10, 11).
  workload::SelectivityParams assumed;

  /// Oracle mode (Figure 12's "Full knowledge"): the optimizer reads each
  /// pair's true per-node parameters from the workload instead of `assumed`.
  bool oracle = false;

  /// Summary structure indexing the primary join key (ablation knob).
  routing::SummaryType summary_type = routing::SummaryType::kBloom;

  /// Section 6: learn selectivities at join nodes and re-optimize.
  bool learning = false;
  /// Trigger re-placement when an estimate diverges by more than this
  /// fraction from the value the current placement used (paper: 33%).
  double divergence_threshold = 0.33;
  /// Sampling cycles between re-estimations at join nodes.
  int reestimate_interval = 25;
  /// Counters reset period ("learning within a local time span").
  int counter_reset_interval = 200;

  /// Routing substrate width for Innet exploration.
  int num_trees = 3;

  /// Appendix F: mesh mode — DHT rendezvous instead of GHT, no snooping /
  /// path collapsing (802.11 link layer unmodified); evaluation counts
  /// messages rather than bytes.
  bool mesh_mode = false;

  /// Radio loss probability and retransmission bound (TOSSIM-style).
  double loss_prob = 0.0;
  int max_retries = 3;

  /// Run-shape knobs shared with MediumOptions / core::ServiceOptions
  /// (common/run_knobs.h). `knobs.shards` partitions an owned run across
  /// worker-driven node ranges and `knobs.pipeline_depth` overlaps future
  /// cycles' sample stages — both byte-identical for every value.
  /// Medium-attached executors shard/pipeline with the medium's scheduler
  /// (join::MediumOptions::knobs) and ignore those two fields here, but
  /// keep their own `knobs.reopt_interval` / `knobs.reopt_threshold`: the
  /// continuous re-optimization loop is per query.
  common::RunKnobs knobs;

  uint64_t seed = 1;

  /// Optional borrowed data-plane arena (route table + payload pools) for
  /// executors that own their network. Not owned; must outlive the
  /// executor. When null the network owns a private plane.
  /// core::RunExperiment supplies one per run so core::RunAveraged can
  /// reuse warmed-up capacity across repetitions. Ignored by
  /// medium-attached executors (the medium's network owns the plane).
  net::DataPlane* data_plane = nullptr;
};

/// \brief Metrics of one executed run (the paper's evaluation quantities).
struct RunStats {
  std::string algorithm;
  // Traffic.
  uint64_t total_bytes = 0;
  uint64_t base_bytes = 0;
  uint64_t max_node_bytes = 0;
  uint64_t total_messages = 0;
  uint64_t base_messages = 0;
  uint64_t max_node_messages = 0;
  uint64_t initiation_bytes = 0;
  uint64_t computation_bytes = 0;
  /// Traffic attributable to this query alone. Equals total_bytes /
  /// total_messages on an owned network; on a shared medium it isolates
  /// this query's share of the medium-wide counters.
  uint64_t query_bytes = 0;
  uint64_t query_messages = 0;
  std::vector<uint64_t> top_node_loads;  ///< 15 most-loaded nodes (Fig 5)
  // Results.
  uint64_t results = 0;
  double avg_result_delay_cycles = 0.0;  ///< sampling cycles sample->base
  double max_result_delay_cycles = 0.0;
  // Adaptivity.
  uint64_t migrations = 0;       ///< join-node relocations (Section 6)
  uint64_t failovers = 0;        ///< pairs switched to base after failure
  uint64_t reopt_passes = 0;     ///< continuous re-optimization passes
  uint64_t planned_migrations = 0;  ///< migrations via the 3-phase protocol
  // Initiation latency (transmission cycles until execution could start).
  int init_latency_cycles = 0;
  int sampling_cycles = 0;
};

/// Canonical (s, t) producer-pair key.
struct PairKey {
  net::NodeId s = -1;
  net::NodeId t = -1;
  bool operator==(const PairKey& o) const { return s == o.s && t == o.t; }
  bool operator<(const PairKey& o) const {
    return s != o.s ? s < o.s : t < o.t;
  }
};

}  // namespace join
}  // namespace aspen

#endif  // ASPEN_JOIN_TYPES_H_
