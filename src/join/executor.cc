#include "join/executor.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "join/medium.h"
#include "sim/sharded_scheduler.h"

namespace aspen {
namespace join {

using net::Message;
using net::MessageKind;
using net::NodeId;
using net::RoutingMode;
using query::Tuple;

std::string AlgorithmName(Algorithm algo, const InnetFeatures& f) {
  switch (algo) {
    case Algorithm::kNaive:
      return "Naive";
    case Algorithm::kBase:
      return "Base";
    case Algorithm::kYang07:
      return "Yang+07";
    case Algorithm::kGht:
      return "GHT";
    case Algorithm::kInnet: {
      std::string name = "Innet";
      std::string suffix;
      if (f.combining) suffix += 'c';
      if (f.multicast) suffix += 'm';
      if (f.path_collapse) suffix += 'p';
      if (f.group_opt) suffix += 'g';
      if (!suffix.empty()) name += "-" + suffix;
      return name;
    }
  }
  return "?";
}

JoinExecutor::JoinExecutor(const workload::Workload* workload,
                           ExecutorOptions options)
    : workload_(workload), opts_(options) {
  net::NetworkOptions net_opts;
  net_opts.loss_prob = opts_.loss_prob;
  net_opts.max_retries = opts_.max_retries;
  net_opts.enable_merging = opts_.algorithm == Algorithm::kInnet
                                ? opts_.features.combining
                                : false;
  net_opts.enable_snooping = opts_.algorithm == Algorithm::kInnet &&
                             opts_.features.path_collapse && !opts_.mesh_mode;
  net_opts.seed = opts_.seed;
  owned_net_ = std::make_unique<net::Network>(&workload_->topology(), net_opts,
                                              opts_.data_plane);
  net_ = owned_net_.get();
  net_->set_delivery_handler(
      [this](const Message& m, NodeId at) { OnDeliverMsg(m, at); });
  net_->set_drop_handler([this](const Message& m, NodeId at, NodeId next) {
    OnDrop(m, at, next);
  });
  net_->set_snoop_handler(
      [this](const Message& m, NodeId snooper, NodeId from, NodeId to) {
        OnSnoop(m, snooper, from, to);
      });
  const int interval = workload_->join_query().window.sample_interval;
  if (opts_.knobs.shards > 1 || opts_.knobs.pipeline_depth > 1) {
    auto sharded = std::make_unique<sim::ShardedScheduler>(
        net_, interval, opts_.knobs.shards, opts_.knobs.pipeline_depth);
    scratch_.resize(sharded->num_shards());
    sched_ = std::move(sharded);
  } else {
    sched_ = std::make_unique<sim::CycleScheduler>(net_, interval);
    scratch_.resize(1);
  }
  sched_->Attach(this);
  reopt_ = adapt::ReoptController(opts_.knobs.reopt_interval,
                                  opts_.knobs.reopt_threshold);
  data_pool_ = net_->payloads().GetOrCreate<DataPayload>(kPayloadTagData);
  result_pool_ =
      net_->payloads().GetOrCreate<ResultPayload>(kPayloadTagResult);
  window_pool_ = net_->payloads().GetOrCreate<WindowTransferPayload>(
      kPayloadTagWindowTransfer);
}

JoinExecutor::JoinExecutor(const workload::Workload* workload,
                           ExecutorOptions options,
                           net::Network* shared_network, int query_id,
                           int shards)
    : workload_(workload),
      opts_(options),
      net_(shared_network),
      query_id_(query_id) {
  ASPEN_CHECK(shared_network != nullptr);
  ASPEN_CHECK(&shared_network->topology() == &workload->topology());
  ASPEN_CHECK(shards >= 1);
  // Scratch matches the medium scheduler's shard count (1 = unsharded).
  scratch_.resize(shards);
  reopt_ = adapt::ReoptController(opts_.knobs.reopt_interval,
                                  opts_.knobs.reopt_threshold);
  data_pool_ = net_->payloads().GetOrCreate<DataPayload>(kPayloadTagData);
  result_pool_ =
      net_->payloads().GetOrCreate<ResultPayload>(kPayloadTagResult);
  window_pool_ = net_->payloads().GetOrCreate<WindowTransferPayload>(
      kPayloadTagWindowTransfer);
}

JoinExecutor::~JoinExecutor() {
  (void)Shutdown();
  // An owned network holds a raw ParentResolver pointer into the trees;
  // detach before members destruct in reverse declaration order. A shared
  // medium owns its own resolver.
  if (owned_net_ != nullptr) net_->set_parent_resolver(nullptr);
}

Status JoinExecutor::Shutdown() {
  if (shutdown_) return Status::OK();
  // Teardown runs strictly between cycles (RemoveQuery, destruction).
  common::SequentialPhaseScope seq;
  shutdown_ = true;
  // Buffered arrivals each own one pooled-payload reference; drop them.
  arrivals_.ForEach([&](NodeId, std::vector<Arrival>& items) {
    for (const Arrival& a : items) net_->payloads().Release(a.data);
  });
  arrivals_.Clear();
  pending_replays_.clear();
  // Release every interned-route reference this query holds. The routes
  // themselves are reclaimed by the data plane's epoch-safe sweep
  // (RouteTable::SweepRetired) once nothing references them and no frame
  // is in flight; owned-network runs never sweep, so their tables behave
  // as before.
  for (NodeState& node : nodes_) {
    for (SendPlanEntry& e : node.plan) {
      UnrefRoute(e.route_s);
      UnrefRoute(e.route_t);
    }
    node.plan.clear();
    node.plan_base_s = false;
    node.plan_base_t = false;
    UnrefMcast(node.mcast_route);
    node.mcast_route = net::kInvalidRoute;
    // Flush the join windows and failover replay buffers held here.
    node.states.clear();
    node.recent_sent[0].Clear();
    node.recent_sent[1].Clear();
  }
  for (PairPlacement& pl : placements_) {
    UnrefRoute(pl.route_from_root);
    pl.route_from_root = net::kInvalidRoute;
  }
  // Abandon in-flight planned migrations, releasing their transfer-route
  // references so the routes retire with everything else.
  for (PlannedMigration& m : planned_migrations_) UnrefRoute(m.transfer_route);
  planned_migrations_.clear();
  active_sites_.clear();
  plans_dirty_ = false;
  return Status::OK();
}

void JoinExecutor::RefRoute(net::RouteId id) {
  if (id != net::kInvalidRoute) net_->routes().AddPathRef(id);
}

void JoinExecutor::UnrefRoute(net::RouteId id) {
  if (id != net::kInvalidRoute) net_->routes().ReleasePathRef(id);
}

void JoinExecutor::RefMcast(net::McastId id) {
  if (id != net::kInvalidRoute) net_->routes().AddMulticastRef(id);
}

void JoinExecutor::UnrefMcast(net::McastId id) {
  if (id != net::kInvalidRoute) net_->routes().ReleaseMulticastRef(id);
}

Result<uint64_t> JoinExecutor::SubmitToNet(Message msg) {
  msg.query_id = query_id_;
  return net_->Submit(std::move(msg));
}

Result<uint64_t> JoinExecutor::SubmitMcastToNet(Message msg,
                                                net::McastId route) {
  msg.query_id = query_id_;
  return net_->SubmitMulticast(msg, route);
}

const routing::RoutingTree& JoinExecutor::primary_tree() const {
  if (multi_ != nullptr) return multi_->primary();
  ASPEN_CHECK(single_tree_ != nullptr);
  return *single_tree_;
}

int JoinExecutor::DepthOf(NodeId id) const {
  return primary_tree().DepthOf(id);
}

opt::PairCostInputs JoinExecutor::AssumedCost() const {
  opt::PairCostInputs c;
  c.sigma_s = opts_.assumed.sigma_s;
  c.sigma_t = opts_.assumed.sigma_t;
  c.sigma_st = opts_.assumed.sigma_st;
  c.w = workload_->join_query().window.size;
  return c;
}

workload::SelectivityParams JoinExecutor::AssumedFor(
    const PairKey& pair) const {
  if (!opts_.oracle) return opts_.assumed;
  const auto& sp = workload_->ParamsAt(pair.s, 0);
  const auto& tp = workload_->ParamsAt(pair.t, 0);
  workload::SelectivityParams out;
  out.sigma_s = sp.sigma_s;
  out.sigma_t = tp.sigma_t;
  // With different u domains, Prob[u_s = u_t] ~ 1/max(domain) — the smaller
  // of the two per-side join selectivities.
  out.sigma_st = std::min(sp.sigma_st, tp.sigma_st);
  return out;
}

void JoinExecutor::ChargeAlongPath(const std::vector<NodeId>& path, int bytes,
                                   MessageKind kind) {
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    net_->stats().RecordSend(path[i], kind,
                             bytes + net::WireFormat::kLinkHeaderBytes,
                             query_id_);
    net_->stats().RecordReceive(path[i + 1],
                                bytes + net::WireFormat::kLinkHeaderBytes);
  }
}

int JoinExecutor::HopsOnPath(const PairPlacement& p, bool from_s) {
  if (p.path_index < 0) return 0;
  return from_s ? p.path_index
                : static_cast<int>(p.path.size()) - 1 - p.path_index;
}

void JoinExecutor::RoleSegment(const PairPlacement& pl, bool role_s,
                               std::vector<net::NodeId>* seg) {
  if (role_s) {
    seg->assign(pl.path.begin(), pl.path.begin() + pl.path_index + 1);
  } else {
    seg->assign(pl.path.begin() + pl.path_index, pl.path.end());
    std::reverse(seg->begin(), seg->end());
  }
}

JoinExecutor::PairPlacement* JoinExecutor::MutablePlacement(
    const PairKey& pair) {
  auto it = std::lower_bound(placements_.begin(), placements_.end(), pair,
                             [](const PairPlacement& pl, const PairKey& key) {
                               return pl.pair < key;
                             });
  if (it == placements_.end() || !(it->pair == pair)) return nullptr;
  return &*it;
}

const JoinExecutor::PairPlacement* JoinExecutor::FindPlacement(
    const PairKey& pair) const {
  return const_cast<JoinExecutor*>(this)->MutablePlacement(pair);
}

// ---- initiation -------------------------------------------------------------

Status JoinExecutor::InitCommon() {
  s_nodes_ = workload_->SNodes();
  t_nodes_ = workload_->TNodes();
  const int n = workload_->topology().num_nodes();
  nodes_.assign(n, NodeState{});
  arrivals_.Reset(n);
  auto raw_pairs = workload_->AllJoinPairs();
  pairs_.clear();
  placements_.clear();
  placements_.reserve(raw_pairs.size());
  for (const auto& [s, t] : raw_pairs) {
    PairKey key{s, t};
    pairs_.push_back(key);
    PairPlacement pl;
    pl.pair = key;
    pl.at_base = true;
    pl.join_node = 0;
    pl.placed_with = opts_.assumed;
    placements_.push_back(std::move(pl));
  }
  std::sort(placements_.begin(), placements_.end(),
            [](const PairPlacement& a, const PairPlacement& b) {
              return a.pair < b.pair;
            });
  // Per-node pair lists hold placement indices, in workload pair order.
  for (const PairKey& key : pairs_) {
    int32_t idx = static_cast<int32_t>(MutablePlacement(key) -
                                       placements_.data());
    nodes_[key.s].s_pairs.push_back(idx);
    nodes_[key.t].t_pairs.push_back(idx);
  }
  pair_group_.assign(placements_.size(), -1);
  // Warm every producer's last-w rings up front: ring slots allocate their
  // tuple buffer on first use, and with a short warmup that first-touch
  // tail would otherwise land inside an audited measured block.
  const int w = workload_->join_query().window.size;
  const bool naive = opts_.algorithm == Algorithm::kNaive;
  for (NodeId p = 0; p < n; ++p) {
    NodeState& node = nodes_[p];
    const bool s_role = naive ? workload_->SEligible(p) : !node.s_pairs.empty();
    const bool t_role = naive ? workload_->TEligible(p) : !node.t_pairs.empty();
    if (s_role) node.recent_sent[1].Warm(w, query::kNumAttrs);
    if (t_role) node.recent_sent[0].Warm(w, query::kNumAttrs);
  }
  return Status::OK();
}

Status JoinExecutor::Initiate() {
  if (initiated_) {
    return Status::FailedPrecondition("Initiate called twice");
  }
  // Initiation runs before any cycle; nothing is concurrent yet.
  common::SequentialPhaseScope seq;
  // Attribute computed-plane initiation traffic (exploration inside
  // MultiTree, nominations) to this query on a shared medium.
  net::TrafficStats::QueryScope scope(&net_->stats(), query_id_);
  ASPEN_RETURN_NOT_OK(InitCommon());
  // Cross-query placement sharing: claim identical placed pairs from
  // co-resident queries before the per-algorithm init spends exploration
  // or placement work on them. Naive has no placements to share (its
  // producer roles come from workload statics, not the pair lists).
  if (medium_ != nullptr &&
      opts_.knobs.tree_mode == common::TreeMode::kShared &&
      opts_.algorithm != Algorithm::kNaive) {
    medium_->ClaimPairs(this);
  }
  Status st;
  switch (opts_.algorithm) {
    case Algorithm::kNaive:
      st = InitNaive();
      break;
    case Algorithm::kBase:
      st = InitBase();
      break;
    case Algorithm::kYang07:
      st = InitYang07();
      break;
    case Algorithm::kGht:
      st = InitGht();
      break;
    case Algorithm::kInnet:
      st = InitInnet();
      break;
  }
  ASPEN_RETURN_NOT_OK(st);
  if (reopt_.enabled()) {
    // Re-optimization passes run in the steady state: pre-size the pass
    // scratch and the in-flight protocol table so neither grows later.
    reopt_diverged_.reserve(placements_.size());
    planned_migrations_.reserve(placements_.size());
  }
  // On a shared medium the SharedMedium owns the resolver (all primary
  // trees are the identical deterministic BFS from the base).
  if (owned_net_ != nullptr) net_->set_parent_resolver(&primary_tree());
  // Pre-grow the payload slabs to the steady-state in-flight high-water
  // (every producer can have a data message in flight, every pair a result)
  // with their tuple buffers warmed, so the cycle loop's pools never
  // allocate. The reserve is a floor, not a cap — an unusually deep
  // in-flight tail still grows the slab, which the benches' allocation
  // audits would surface.
  data_pool_->Reserve(s_nodes_.size() + t_nodes_.size(), [](DataPayload& d) {
    d.tuple.resize(query::kNumAttrs);
  });
  result_pool_->Reserve(pairs_.size(), [](ResultPayload&) {});
  // Every pair's join state exists from placement time — the join node
  // learned its pairs during nomination — so materialize it now with its
  // window rings at full capacity. Leaving creation to the first arrival
  // made a pair that first fires late allocate mid-run, which the audits
  // flag. Placements are pair-sorted, so site registration order (and with
  // it ForEachState's iteration order) is deterministic.
  for (const PairPlacement& pl : placements_) {
    if (pl.shared_owner >= 0) continue;  // served by the sharing owner
    PairState& pst = StateAt(pl.at_base ? 0 : pl.join_node, pl.pair);
    pst.s_window.Warm(query::kNumAttrs);
    pst.t_window.Warm(query::kNumAttrs);
  }
  // Arrival boxes peak at one entry per role destination per in-flight
  // sample cycle; two cycles of slack covers multi-hop deliveries that
  // straddle a deliver phase.
  arrivals_.ReserveActive(s_nodes_.size() + t_nodes_.size());
  {
    const int n = workload_->topology().num_nodes();
    for (NodeId p = 0; p < n; ++p) {
      const size_t roles = nodes_[p].s_pairs.size() + nodes_[p].t_pairs.size();
      if (roles > 0) arrivals_.ReserveBox(p, 2 * roles);
    }
  }
  emit_merge_.reserve(4 * pairs_.size());
  // Per-cycle frame emissions: one data message per firing producer role
  // plus result messages, with 2x slack for multi-hop tails that straddle
  // cycles.
  net_->ReserveSteadyState(
      2 * (s_nodes_.size() + t_nodes_.size() + pairs_.size()));
  initiated_ = true;
  plans_dirty_ = true;  // build the per-producer send plans lazily
  return Status::OK();
}

Status JoinExecutor::InitNaive() {
  // No per-query setup beyond the (sunk) initial routing-tree construction.
  single_tree_ = std::make_unique<routing::RoutingTree>(
      routing::RoutingTree::Build(workload_->topology(), 0));
  init_latency_ = 0;
  return Status::OK();
}

Status JoinExecutor::InitBase() {
  single_tree_ = std::make_unique<routing::RoutingTree>(
      routing::RoutingTree::Build(workload_->topology(), 0));
  // Static pre-computation round (Table 3, Base row): every
  // selection-eligible node reports its static join attributes to the base;
  // the base replies to the nodes that participate in at least one pair.
  const int report_bytes = 8;  // a few 16-bit attributes + node id
  const int reply_bytes = 4;
  int max_depth = 0;
  for (NodeId u = 1; u < workload_->topology().num_nodes(); ++u) {
    if (!workload_->SEligible(u) && !workload_->TEligible(u)) continue;
    ChargeAlongPath(single_tree_->PathToRoot(u), report_bytes,
                    MessageKind::kExploration);
    max_depth = std::max(max_depth, single_tree_->DepthOf(u));
  }
  for (NodeId u = 1; u < workload_->topology().num_nodes(); ++u) {
    if (!nodes_[u].s_pairs.empty() || !nodes_[u].t_pairs.empty()) {
      ChargeAlongPath(single_tree_->PathFromRoot(u), reply_bytes,
                      MessageKind::kExplorationReply);
    }
  }
  init_latency_ = 2 * max_depth;
  return Status::OK();
}

Status JoinExecutor::InitYang07() {
  // Through-the-base needs no setup (Table 3: initiation 0); join nodes are
  // the T producers themselves.
  single_tree_ = std::make_unique<routing::RoutingTree>(
      routing::RoutingTree::Build(workload_->topology(), 0));
  for (auto& pl : placements_) {
    if (pl.shared_owner >= 0) continue;  // served by the sharing owner
    pl.at_base = false;
    pl.join_node = pl.pair.t;
    // The root's relay route to this T partner, interned once and retained
    // (one owner reference) until Shutdown.
    pl.route_from_root =
        net_->routes().InternPath(single_tree_->PathFromRoot(pl.pair.t));
    RefRoute(pl.route_from_root);
  }
  init_latency_ = 0;
  return Status::OK();
}

Status JoinExecutor::InitGht() {
  single_tree_ = std::make_unique<routing::RoutingTree>(
      routing::RoutingTree::Build(workload_->topology(), 0));
  const auto& topo = workload_->topology();
  if (opts_.mesh_mode) {
    dht_ = std::make_unique<routing::DhtRing>(&topo, opts_.seed);
  } else {
    geo_ = std::make_unique<routing::GeoHash>(&topo, opts_.seed);
  }
  const auto& primary = workload_->analysis().primary;
  auto node_for_key = [&](int32_t key) {
    return opts_.mesh_mode ? dht_->NodeForKey(key) : geo_->NodeForKey(key);
  };
  for (auto& pl : placements_) {
    if (pl.shared_owner >= 0) continue;  // served by the sharing owner
    const PairKey& key = pl.pair;
    int32_t hash_key = 0;
    if (primary.has_value() && primary->region_radius_dm.has_value()) {
      // Region join: rendezvous at the home node of the pair-midpoint cell
      // (cell side = region radius, so covered pairs always share a cell
      // neighborhood; the midpoint canonicalizes the assignment).
      const auto& st = workload_->statics().tuple(key.s);
      const auto& tt = workload_->statics().tuple(key.t);
      int radius = *primary->region_radius_dm;
      int cx = (st[query::kAttrPosX] + tt[query::kAttrPosX]) / 2 / radius;
      int cy = (st[query::kAttrPosY] + tt[query::kAttrPosY]) / 2 / radius;
      hash_key = cx * 4096 + cy;
    } else {
      auto k = workload_->SJoinKey(key.s);
      if (!k.has_value()) {
        return Status::FailedPrecondition(
            "GHT requires a routable equality or region join key");
      }
      hash_key = *k;
    }
    pl.at_base = false;
    pl.join_node = node_for_key(hash_key);
  }
  // Initiation: producers register with each of their rendezvous nodes
  // (Table 3: >= sigma_s*Dsj + sigma_t*Dtj — one announce per path).
  int max_len = 0;
  auto announce = [&](NodeId p, NodeId j) {
    std::vector<NodeId> path = opts_.mesh_mode
                                   ? topo.ShortestPath(p, j)
                                   : geo_->GreedyPath(p, j);
    ChargeAlongPath(path, 6, MessageKind::kExploration);
    max_len = std::max(max_len, static_cast<int>(path.size()));
  };
  std::set<std::pair<NodeId, NodeId>> announced;
  for (const auto& key : pairs_) {
    const PairPlacement* pl = FindPlacement(key);
    if (pl->shared_owner >= 0) continue;  // served by the sharing owner
    if (announced.insert({key.s, pl->join_node}).second) {
      announce(key.s, pl->join_node);
    }
    if (announced.insert({key.t, pl->join_node}).second) {
      announce(key.t, pl->join_node);
    }
  }
  init_latency_ = max_len;
  return Status::OK();
}

// ---- data plane ---------------------------------------------------------------

net::PayloadHandle JoinExecutor::MakeData(NodeId p, const Tuple& t, int cycle,
                                          bool as_s, bool as_t) {
  net::PayloadHandle h = data_pool_->Allocate();
  DataPayload* d = data_pool_->Get(h);
  d->producer = p;
  d->tuple = t;  // copy into the recycled slot's capacity
  d->sample_cycle = cycle;
  d->as_s = as_s;
  d->as_t = as_t;
  return h;
}

void JoinExecutor::RebuildSendPlans() {
  plans_dirty_ = false;
  if (opts_.algorithm != Algorithm::kInnet &&
      opts_.algorithm != Algorithm::kGht) {
    return;
  }
  net::RouteTable& routes = net_->routes();
  const int n = workload_->topology().num_nodes();
  std::vector<NodeId> seg;
  auto find_or_insert = [](std::vector<SendPlanEntry>* plan,
                           NodeId dest) -> SendPlanEntry* {
    auto it = std::lower_bound(plan->begin(), plan->end(), dest,
                               [](const SendPlanEntry& e, NodeId d) {
                                 return e.dest < d;
                               });
    if (it == plan->end() || it->dest != dest) {
      it = plan->insert(it, SendPlanEntry{});
      it->dest = dest;
    }
    return &*it;
  };
  for (NodeId p = 0; p < n; ++p) {
    NodeState& node = nodes_[p];
    // The old plan's interned routes lose this producer's references; a
    // route nobody else retains retires for the next epoch-safe sweep.
    for (SendPlanEntry& old : node.plan) {
      UnrefRoute(old.route_s);
      UnrefRoute(old.route_t);
    }
    node.plan.clear();
    node.plan_base_s = false;
    node.plan_base_t = false;
    if (node.s_pairs.empty() && node.t_pairs.empty()) continue;
    if (opts_.algorithm == Algorithm::kInnet) {
      // Mirror the historical per-cycle destination collection: per role,
      // the first in-network pair mapping to a join node defines the route.
      auto collect = [&](const std::vector<int32_t>& pair_idxs, bool role_s) {
        for (int32_t pi : pair_idxs) {
          const PairPlacement& pl = placements_[pi];
          if (pl.at_base || pl.path.empty()) {
            (role_s ? node.plan_base_s : node.plan_base_t) = true;
            continue;
          }
          SendPlanEntry* e = find_or_insert(&node.plan, pl.join_node);
          bool& role_flag = role_s ? e->has_s : e->has_t;
          if (role_flag) continue;
          role_flag = true;
          RoleSegment(pl, role_s, &seg);
          net::RouteId rid = routes.InternPath(seg);
          (role_s ? e->route_s : e->route_t) = rid;
          RefRoute(rid);
        }
      };
      collect(node.s_pairs, true);
      collect(node.t_pairs, false);
    } else {
      // GHT: one destination per distinct rendezvous node; mesh mode ships
      // along the interned shortest path, mote mode routes geo-greedily.
      auto collect = [&](const std::vector<int32_t>& pair_idxs, bool role_s) {
        for (int32_t pi : pair_idxs) {
          SendPlanEntry* e =
              find_or_insert(&node.plan, placements_[pi].join_node);
          (role_s ? e->has_s : e->has_t) = true;
        }
      };
      collect(node.s_pairs, true);
      collect(node.t_pairs, false);
      if (opts_.mesh_mode) {
        for (SendPlanEntry& e : node.plan) {
          e.route_s = e.route_t = routes.InternPath(
              workload_->topology().ShortestPath(p, e.dest));
          // One reference per retained field, so releases balance exactly.
          RefRoute(e.route_s);
          RefRoute(e.route_t);
        }
      }
    }
  }
}

void JoinExecutor::OnSampleBegin(int cycle) {
  // Begin/Commit hooks run on the scheduler thread between shard passes.
  common::SequentialPhaseScope seq;
  cycle_ = cycle;
  RetryPendingReplays();
  if (plans_dirty_) RebuildSendPlans();
  // The shard passes call PassS/TFilter concurrently; warming here (after
  // any between-cycle parameter mutation) makes those calls read-only.
  workload_->WarmFilterCache();
}

void JoinExecutor::BuildProducerCache(ShardScratch* sc, NodeId begin,
                                      NodeId end) {
  // Producer roles are fixed once Initiate has filled the pair lists (the
  // only writer), and naive eligibility is a pure function of statics, so
  // the scan runs once per shard range rather than every cycle.
  const bool naive = opts_.algorithm == Algorithm::kNaive;
  sc->cached_begin = begin;
  sc->cached_end = end;
  sc->producer_ids.clear();
  sc->producer_roles.clear();
  for (NodeId p = begin; p < end; ++p) {
    const NodeState& node = nodes_[p];
    const bool s_role = naive ? workload_->SEligible(p) : !node.s_pairs.empty();
    const bool t_role = naive ? workload_->TEligible(p) : !node.t_pairs.empty();
    if (!s_role && !t_role) continue;
    sc->producer_ids.push_back(p);
    sc->producer_roles.push_back(static_cast<uint8_t>((s_role ? 1 : 0) |
                                                      (t_role ? 2 : 0)));
  }
  // Pre-size every slab of the ring for the worst case (every producer
  // passes both filters) so the steady-state sample stage never allocates;
  // warming the tuples to full width gives every slot its capacity up
  // front.
  const size_t cap = sc->producer_ids.size();
  for (SampleSlab& slab : sc->slabs) {
    slab.s_bits.assign((cap + 63) / 64, 0ULL);
    slab.t_bits.assign((cap + 63) / 64, 0ULL);
    slab.staged_ids.resize(cap);
    slab.staged_flags.resize(cap);
    slab.staged_tuples.resize(cap);
    for (query::Tuple& t : slab.staged_tuples) t.resize(query::kNumAttrs);
    slab.staged_count = 0;
  }
  // Deliver-phase staging for the same shard: each pair applies at most
  // one arrival per role per sampling cycle, with 2x slack for multi-hop
  // deliveries straddling a phase.
  sc->emits.reserve(4 * pairs_.size());
  sc->touched_sites.reserve(4 * pairs_.size());
}

void JoinExecutor::ConfigureSampleSlots(int slots) {
  if (slots == sample_slots_) return;
  ASPEN_CHECK(slots >= 1);
  sample_slots_ = slots;
  for (ShardScratch& sc : scratch_) {
    sc.slabs.resize(static_cast<size_t>(slots));
    // Invalidate so the next (synchronous) stage pass re-sizes every slab
    // of the new ring through BuildProducerCache.
    sc.cached_begin = -1;
    sc.cached_end = -1;
  }
}

void JoinExecutor::OnSampleStage(int cycle, int slot, int shard, NodeId begin,
                                 NodeId end) {
  // Pure per-node work: batched filters and sampling of the passing
  // producers into the slab named by `slot`. Sampling is a pure function of
  // (node, cycle, seed) and the filter cache is warm (OnSampleBegin), so
  // this reads nothing that mutates during a cycle and writes nothing but
  // the slab — a pipelined scheduler may run it for a future cycle while
  // the current cycle's transmit is in flight. Submissions, failed-node
  // filtering and the producer-local last-w buffers happen at commit, in
  // node order, so the network sees the identical stream for any shard
  // count and pipeline depth. Filters run before sampling — the filter
  // verdict only depends on the u draw, which PassFilters recomputes
  // bit-identically — so non-senders cost one hash instead of a full tuple
  // materialization.
  ShardScratch& sc = scratch_[shard];
  if (sc.cached_begin != begin || sc.cached_end != end) {
    BuildProducerCache(&sc, begin, end);
  }
  SampleSlab& slab = sc.slabs[static_cast<size_t>(slot)];
  slab.staged_count = 0;
  const int num_producers = static_cast<int>(sc.producer_ids.size());
  if (num_producers == 0) return;
  workload_->PassFilters(sc.producer_ids.data(), num_producers, cycle,
                         slab.s_bits.data(), slab.t_bits.data());
  for (int i = 0; i < num_producers; ++i) {
    const uint8_t roles = sc.producer_roles[i];
    const uint64_t word_bit = 1ULL << (i & 63);
    const bool send_s = (roles & 1) && (slab.s_bits[i >> 6] & word_bit);
    const bool send_t = (roles & 2) && (slab.t_bits[i >> 6] & word_bit);
    if (!send_s && !send_t) continue;
    slab.staged_ids[slab.staged_count] = sc.producer_ids[i];
    slab.staged_flags[slab.staged_count] =
        static_cast<uint8_t>((send_s ? 1 : 0) | (send_t ? 2 : 0));
    ++slab.staged_count;
  }
  workload_->SampleBatchInto(slab.staged_ids.data(), slab.staged_count, cycle,
                             slab.staged_tuples.data());
}

Status JoinExecutor::OnSampleCommit(int cycle, int slot) {
  common::SequentialPhaseScope seq;
  const int w = workload_->join_query().window.size;
  // Shards are contiguous ascending node ranges, so walking them in order
  // submits in exactly the node order of the unsharded loop. Failure
  // filtering happens here — after every scenario event of this cycle's
  // sample phase, exactly where the old in-stage check observed it; a
  // staged-but-failed producer's tuple is simply skipped (its draw consumed
  // no shared RNG, so every other submission is unchanged).
  for (ShardScratch& sc : scratch_) {
    SampleSlab& slab = sc.slabs[static_cast<size_t>(slot)];
    for (int i = 0; i < slab.staged_count; ++i) {
      const NodeId p = slab.staged_ids[i];
      if (net_->IsFailed(p)) continue;
      const query::Tuple& t = slab.staged_tuples[i];
      const bool send_s = slab.staged_flags[i] & 1;
      const bool send_t = slab.staged_flags[i] & 2;
      // Producers remember their last w sent tuples per role so a join
      // window can be reconstructed at the base after a join-node failure.
      // The rings are consumed by the learn phase (SendWindowReplay), which
      // always follows this commit within a cycle.
      NodeState& node = nodes_[p];
      if (send_s) node.recent_sent[1].Push(t, w);
      if (send_t) node.recent_sent[0].Push(t, w);
      switch (opts_.algorithm) {
        case Algorithm::kNaive:
        case Algorithm::kBase:
          SendToBase(p, t, cycle, send_s, send_t);
          break;
        case Algorithm::kYang07:
          SendYang(p, t, cycle, send_s, send_t);
          break;
        case Algorithm::kGht:
          SendGht(p, t, cycle, send_s, send_t);
          break;
        case Algorithm::kInnet:
          SendInnet(p, t, cycle, send_s, send_t);
          break;
      }
    }
    slab.staged_count = 0;
  }
  return Status::OK();
}

void JoinExecutor::SendToBase(NodeId p, const Tuple& t, int cycle, bool as_s,
                              bool as_t) {
  Message msg;
  msg.kind = MessageKind::kData;
  msg.mode = RoutingMode::kTreeToRoot;
  msg.origin = p;
  msg.dest = 0;
  msg.size_bytes = workload_->DataBytes();
  msg.payload = MakeData(p, t, cycle, as_s, as_t);
  (void)SubmitToNet(msg);
}

void JoinExecutor::SendYang(NodeId p, const Tuple& t, int cycle, bool as_s,
                            bool as_t) {
  if (as_s && !nodes_[p].s_pairs.empty()) {
    // Up to the root; the root re-routes to the T partners on delivery.
    Message msg;
    msg.kind = MessageKind::kData;
    msg.mode = RoutingMode::kTreeToRoot;
    msg.origin = p;
    msg.dest = 0;
    msg.size_bytes = workload_->DataBytes();
    msg.payload = MakeData(p, t, cycle, /*as_s=*/true, /*as_t=*/false);
    (void)SubmitToNet(msg);
  }
  if (as_t && !nodes_[p].t_pairs.empty()) {
    // T producers never transmit their samples: they buffer them locally
    // and join arriving S tuples against them. Model the local buffering as
    // a zero-cost arrival at the node itself (the arrival owns the payload
    // reference until the deliver phase).
    arrivals_.Push(
        p, Arrival{p, MakeData(p, t, cycle, /*as_s=*/false, /*as_t=*/true)});
  }
}

void JoinExecutor::SendGht(NodeId p, const Tuple& t, int cycle, bool as_s,
                           bool as_t) {
  // One message per distinct rendezvous node over this producer's pairs,
  // from the precomputed plan (entries ascend by rendezvous node, matching
  // the old per-cycle ordered-map collection).
  for (const SendPlanEntry& e : nodes_[p].plan) {
    const bool use_s = as_s && e.has_s;
    const bool use_t = as_t && e.has_t;
    if (!use_s && !use_t) continue;
    Message msg;
    msg.kind = MessageKind::kData;
    msg.origin = p;
    msg.dest = e.dest;
    msg.size_bytes = workload_->DataBytes();
    msg.payload = MakeData(p, t, cycle, use_s, use_t);
    if (opts_.mesh_mode) {
      msg.mode = RoutingMode::kSourcePath;
      msg.route = e.route_s;
    } else {
      msg.mode = RoutingMode::kGeoGreedy;
    }
    (void)SubmitToNet(msg);
  }
}

// ---- arrivals -------------------------------------------------------------------

void JoinExecutor::OnDeliverMsg(const Message& msg, NodeId at) {
  // Delivery handlers fire from the network's exchange phase (or from an
  // inline local delivery during a sequential submit) — never from a shard
  // compute walk, which only defers kDeliver effects.
  common::SequentialPhaseScope seq;
  switch (msg.kind) {
    case MessageKind::kData: {
      const DataPayload* data = data_pool_->Get(msg.payload);
      ASPEN_CHECK(data != nullptr);
      // Yang+07: the root relays S data down to every T partner.
      if (opts_.algorithm == Algorithm::kYang07 && at == 0 && data->as_s) {
        for (int32_t pi : nodes_[data->producer].s_pairs) {
          const PairPlacement& pl = placements_[pi];
          if (pl.at_base) continue;  // failed over: join here
          Message down;
          down.kind = MessageKind::kData;
          down.mode = RoutingMode::kSourcePath;
          down.origin = 0;
          down.dest = pl.pair.t;
          down.route = pl.route_from_root;
          down.size_bytes = workload_->DataBytes();
          down.payload = msg.payload;
          net_->payloads().AddRef(down.payload);  // Submit consumes one ref
          (void)SubmitToNet(down);
        }
        // Fall through to buffering: failed-over pairs join at the base.
      }
      // The arrival keeps the payload alive past this borrowed delivery.
      net_->payloads().AddRef(msg.payload);
      arrivals_.Push(data->producer, Arrival{at, msg.payload});
      break;
    }
    case MessageKind::kJoinResult: {
      const ResultPayload* res = result_pool_->Get(msg.payload);
      ASPEN_CHECK(res != nullptr);
      DeliverResultAtBase(PairKey{res->s, res->t}, 1, res->sample_cycle);
      break;
    }
    case MessageKind::kWindowTransfer: {
      const WindowTransferPayload* wt = window_pool_->Get(msg.payload);
      ASPEN_CHECK(wt != nullptr);
      PairState& st = StateAt(at, wt->pair);
      // Tuples carry their sampling cycle in the seq attribute.
      for (const auto& t : wt->s_window) {
        st.s_window.Push(t, t[query::kAttrSeq]);
      }
      for (const auto& t : wt->t_window) {
        st.t_window.Push(t, t[query::kAttrSeq]);
      }
      break;
    }
    default:
      break;  // control traffic needs no handling
  }
}

void JoinExecutor::DeliverResultAtBase(const PairKey& pair, int count,
                                       int sample_cycle) {
  results_ += count;
  double delay = static_cast<double>(cycle_ - sample_cycle);
  delay_sum_ += delay * count;
  delay_max_ = std::max(delay_max_, delay);
  // One evaluation fans out to every subscribed query (placement sharing).
  // The counter gate keeps unshared queries off the placement lookup.
  if (num_fanout_pairs_ > 0) {
    const PairPlacement* pl = FindPlacement(pair);
    if (pl != nullptr && pl->shared_entry >= 0) {
      medium_->FanOutSharedResult(pl->shared_entry, count, sample_cycle);
    }
  }
}

void JoinExecutor::AccountSharedResult(int count, int sample_cycle) {
  // Identical accounting to DeliverResultAtBase: the subscriber's clock
  // runs in lockstep with the owner's (one medium scheduler), so the
  // booked delay matches what an unshared run would have measured.
  results_ += count;
  double delay = static_cast<double>(cycle_ - sample_cycle);
  delay_sum_ += delay * count;
  delay_max_ = std::max(delay_max_, delay);
}

void JoinExecutor::SuppressSharedPair(int32_t pi) {
  const PairKey& pair = placements_[pi].pair;
  auto drop = [pi](std::vector<int32_t>* list) {
    list->erase(std::remove(list->begin(), list->end(), pi), list->end());
  };
  drop(&nodes_[pair.s].s_pairs);
  drop(&nodes_[pair.t].t_pairs);
}

void JoinExecutor::AdoptSharedPlacement(JoinExecutor* old_owner,
                                        const PairKey& pair) {
  PairPlacement* pl = MutablePlacement(pair);
  const PairPlacement* src = old_owner->FindPlacement(pair);
  ASPEN_CHECK(pl != nullptr && src != nullptr);
  ASPEN_CHECK(pl->shared_owner >= 0);
  pl->shared_owner = -1;
  pl->at_base = src->at_base;
  pl->join_node = src->join_node;
  pl->path = src->path;
  pl->path_index = src->path_index;
  pl->placed_with = src->placed_with;
  pl->pairwise_at_base = src->pairwise_at_base;
  pl->failed_over = src->failed_over;
  // Take a reference of our own before the departing owner's Shutdown
  // drops its — the route never sees zero references in between.
  pl->route_from_root = src->route_from_root;
  RefRoute(pl->route_from_root);
  // Restore the pair into the data plane. The placement table is
  // pair-sorted, so sorted index insertion reproduces the order
  // InitCommon would have built.
  const int32_t pi = static_cast<int32_t>(pl - placements_.data());
  common::InsertSortedUnique(&nodes_[pair.s].s_pairs, pi);
  common::InsertSortedUnique(&nodes_[pair.t].t_pairs, pi);
  // Adopt the owner's window contents so the promoted query's join resumes
  // with full history — results continue exactly as the shared stream did
  // (same workload, same windows).
  const NodeId site = pl->at_base ? 0 : pl->join_node;
  PairState* ost = old_owner->FindState(site, pair);
  PairState& nst = StateAt(site, pair);
  nst.s_window.Warm(query::kNumAttrs);
  nst.t_window.Warm(query::kNumAttrs);
  if (ost != nullptr) {
    for (int i = 0; i < ost->s_window.size(); ++i) {
      const auto& e = ost->s_window.entry(i);
      nst.s_window.Push(e.tuple, e.cycle);
    }
    for (int i = 0; i < ost->t_window.size(); ++i) {
      const auto& e = ost->t_window.entry(i);
      nst.t_window.Push(e.tuple, e.cycle);
    }
  }
  // The producer caches key off the pair lists; force a rebuild, and
  // rebuild the producers' multicast trees over the restored target set.
  for (ShardScratch& sc : scratch_) {
    sc.cached_begin = -1;
    sc.cached_end = -1;
  }
  plans_dirty_ = true;
  if (opts_.algorithm == Algorithm::kInnet && !pl->at_base) {
    RebuildProducerRoute(pair.s, true, /*charge_traffic=*/true);
    RebuildProducerRoute(pair.t, false, /*charge_traffic=*/true);
  }
}

void JoinExecutor::TouchSite(NodeId at) {
  common::InsertSortedUnique(&active_sites_, at);
}

PairState& JoinExecutor::StateAt(NodeId at, const PairKey& pair) {
  const auto& window = workload_->join_query().window;
  TouchSite(at);
  return nodes_[at].StateAt(pair, window.size, window.time_based);
}

PairState& JoinExecutor::StateAtShard(int shard, NodeId at,
                                      const PairKey& pair) {
  const auto& window = workload_->join_query().window;
  scratch_[shard].touched_sites.push_back(at);
  return nodes_[at].StateAt(pair, window.size, window.time_based);
}

PairState* JoinExecutor::FindState(NodeId at, const PairKey& pair) {
  return nodes_[at].FindState(pair);
}

void JoinExecutor::OnDeliverBegin(int cycle) {
  (void)cycle;
  common::SequentialPhaseScope seq;
  arrivals_.ForEach([](NodeId, std::vector<Arrival>& items) {
    // Stable insertion sort by delivery location: boxes are tiny and, unlike
    // std::stable_sort, this never touches the heap. ForEach also sorts the
    // active-node list, so the concurrent shard passes below are read-only.
    for (size_t i = 1; i < items.size(); ++i) {
      const Arrival key = items[i];
      size_t j = i;
      while (j > 0 && key.at < items[j - 1].at) {
        items[j] = items[j - 1];
        --j;
      }
      items[j] = key;
    }
  });
}

void JoinExecutor::OnDeliverShard(int cycle, int shard, NodeId begin,
                                  NodeId end) {
  // Deterministic ordering: all S-side applications first, then T-side,
  // each in (producer, location) order. A tuple joins the opposite window
  // as of its own insertion; same-cycle (s, t) pairs match exactly once —
  // when the T side is applied. Join state lives at the delivery location,
  // so each shard owns the probes and window mutations of its node range;
  // result emissions touch shared state and are deferred to the commit.
  (void)cycle;
  ShardScratch& sc = scratch_[shard];
  sc.emits.clear();
  sc.touched_sites.clear();
  for (uint8_t phase = 0; phase < 2; ++phase) {
    const bool s_phase = phase == 0;
    arrivals_.ForEachConst([&](NodeId producer,
                               const std::vector<Arrival>& items) {
      const NodeState& pnode = nodes_[producer];
      const auto& pair_idxs = s_phase ? pnode.s_pairs : pnode.t_pairs;
      if (pair_idxs.empty()) return;
      for (int32_t bi = 0; bi < static_cast<int32_t>(items.size()); ++bi) {
        const Arrival& a = items[bi];
        if (a.at < begin || a.at >= end) continue;
        const DataPayload& data = *data_pool_->Get(a.data);
        if (s_phase ? !data.as_s : !data.as_t) continue;
        for (int32_t pp = 0; pp < static_cast<int32_t>(pair_idxs.size());
             ++pp) {
          const PairPlacement& pl = placements_[pair_idxs[pp]];
          NodeId expect = pl.at_base ? 0 : pl.join_node;
          if (expect != a.at) continue;
          PairState& st = StateAtShard(shard, a.at, pl.pair);
          auto& own_window = s_phase ? st.s_window : st.t_window;
          auto& other_window = s_phase ? st.t_window : st.s_window;
          other_window.EvictExpired(data.sample_cycle);
          int matches = 0;
          for (int e = 0; e < other_window.size(); ++e) {
            const Tuple& other = other_window.entry(e).tuple;
            bool joins = s_phase ? workload_->TuplesJoin(data.tuple, other)
                                 : workload_->TuplesJoin(other, data.tuple);
            if (joins) ++matches;
          }
          if (s_phase) {
            st.estimator.RecordS(matches);
          } else {
            st.estimator.RecordT(matches);
          }
          own_window.Push(data.tuple, data.sample_cycle);
          if (matches > 0) {
            DeferredEmit e;
            e.phase = phase;
            e.producer = producer;
            e.box_pos = bi;
            e.pair_pos = pp;
            e.at = a.at;
            e.pair = pl.pair;
            e.matches = matches;
            e.sample_cycle = data.sample_cycle;
            sc.emits.push_back(e);
          }
        }
      }
    });
  }
}

Status JoinExecutor::OnDeliverCommit(int cycle) {
  (void)cycle;
  common::SequentialPhaseScope seq;
  for (ShardScratch& sc : scratch_) {
    for (NodeId site : sc.touched_sites) TouchSite(site);
    sc.touched_sites.clear();
  }
  // Replay deferred emissions in the exact order the unsharded pass emits:
  // S side before T side, producers ascending, arrivals in box order,
  // pairs in the producer's pair-list order. Every key component is
  // content, so the merged order is identical for any shard count.
  emit_merge_.clear();
  for (const ShardScratch& sc : scratch_) {
    for (const DeferredEmit& e : sc.emits) emit_merge_.push_back(&e);
  }
  std::sort(emit_merge_.begin(), emit_merge_.end(),
            [](const DeferredEmit* x, const DeferredEmit* y) {
              return std::tie(x->phase, x->producer, x->box_pos, x->pair_pos) <
                     std::tie(y->phase, y->producer, y->box_pos, y->pair_pos);
            });
  for (const DeferredEmit* e : emit_merge_) {
    EmitResults(e->at, e->pair, e->matches, e->sample_cycle);
  }
  emit_merge_.clear();
  for (ShardScratch& sc : scratch_) sc.emits.clear();
  // The arrivals owned one payload reference each; drop them with the batch.
  arrivals_.ForEach([&](NodeId, std::vector<Arrival>& items) {
    for (const Arrival& a : items) net_->payloads().Release(a.data);
  });
  arrivals_.Clear();
  return Status::OK();
}

void JoinExecutor::EmitResults(NodeId at, const PairKey& pair, int count,
                               int sample_cycle) {
  if (at == 0) {
    DeliverResultAtBase(pair, count, sample_cycle);
    return;
  }
  for (int i = 0; i < count; ++i) {
    net::PayloadHandle h = result_pool_->Allocate();
    ResultPayload* res = result_pool_->Get(h);
    res->s = pair.s;
    res->t = pair.t;
    res->sample_cycle = sample_cycle;
    Message msg;
    msg.kind = MessageKind::kJoinResult;
    msg.mode = RoutingMode::kTreeToRoot;
    msg.origin = at;
    msg.dest = 0;
    msg.size_bytes = workload_->ResultBytes();
    msg.payload = h;
    (void)SubmitToNet(msg);
  }
}

// ---- kernel phases --------------------------------------------------------------

Status JoinExecutor::OnSample(int cycle) {
  if (!initiated_) {
    return Status::FailedPrecondition("sample phase before Initiate");
  }
  // Begin + one full-range stage pass + commit: the sharded schedule with
  // one shard and one slot, so sharded and sequential runs are the same
  // code path.
  OnSampleBegin(cycle);
  {
    common::PipelineStageScope stage;
    OnSampleStage(cycle, /*slot=*/0, /*shard=*/0, 0,
                  workload_->topology().num_nodes());
  }
  return OnSampleCommit(cycle, /*slot=*/0);
}

Status JoinExecutor::OnDeliver(int cycle) {
  if (!initiated_) {
    return Status::FailedPrecondition("deliver phase before Initiate");
  }
  OnDeliverBegin(cycle);
  OnDeliverShard(cycle, /*shard=*/0, 0, workload_->topology().num_nodes());
  return OnDeliverCommit(cycle);
}

Status JoinExecutor::OnReoptimize(int cycle) {
  (void)cycle;
  if (!initiated_ || shutdown_) return Status::OK();
  if (planned_migrations_.empty() && !reopt_.enabled()) return Status::OK();
  // Runs in the scheduler's exchange window: nothing in flight, every
  // deliver commit applied — identical state at any shard count or
  // pipeline depth, so the decisions below are byte-reproducible.
  common::SequentialPhaseScope seq;
  net::TrafficStats::QueryScope scope(&net_->stats(), query_id_);
  AdvancePlannedMigrations();
  if (opts_.algorithm == Algorithm::kInnet && !opts_.oracle &&
      reopt_.TakeDue()) {
    RunReopt();
  }
  return Status::OK();
}

Status JoinExecutor::OnLearn(int cycle) {
  if (!initiated_) {
    return Status::FailedPrecondition("learn phase before Initiate");
  }
  common::SequentialPhaseScope seq;
  net::TrafficStats::QueryScope scope(&net_->stats(), query_id_);
  ForEachState([](NodeId, PairState& st) { st.estimator.Tick(); });
  ++learn_ticks_;
  reopt_.Tick();
  if (opts_.learning) RunLearning();
  cycle_ = cycle + 1;
  return Status::OK();
}

Status JoinExecutor::RunCycles(int n) {
  if (!initiated_) {
    return Status::FailedPrecondition("RunCycles before Initiate");
  }
  if (owned_net_ == nullptr) {
    return Status::FailedPrecondition(
        "RunCycles on a shared medium: drive cycles via SharedMedium");
  }
  return sched_->RunCycles(n);
}

RunStats JoinExecutor::Stats() const {
  RunStats out;
  out.algorithm = AlgorithmName(opts_.algorithm, opts_.features);
  const auto& s = net_->stats();
  out.total_bytes = s.TotalBytesSent();
  out.base_bytes = s.BaseStationBytes();
  out.max_node_bytes = s.MaxNodeBytes();
  out.total_messages = s.TotalMessagesSent();
  out.base_messages = s.BaseStationMessages();
  out.max_node_messages = s.MaxNodeMessages();
  out.initiation_bytes = s.InitiationBytes();
  out.computation_bytes = s.ComputationBytes();
  out.top_node_loads = s.TopLoadedNodes(15);
  out.query_bytes = s.QueryBytesSent(query_id_);
  out.query_messages = s.QueryMessagesSent(query_id_);
  out.results = results_;
  out.avg_result_delay_cycles = results_ > 0 ? delay_sum_ / results_ : 0.0;
  out.max_result_delay_cycles = delay_max_;
  out.migrations = migrations_;
  out.failovers = failovers_;
  out.reopt_passes = reopt_.passes();
  out.planned_migrations = reopt_.completed();
  out.init_latency_cycles = init_latency_;
  out.sampling_cycles = cycle_;
  return out;
}

}  // namespace join
}  // namespace aspen
