// Contiguous per-node join-execution state.
//
// The executor keeps one NodeState per topology node in a dense vector
// indexed by NodeId, replacing the former global map<pair<NodeId, ...>>
// registries. Everything the per-cycle hot path touches — which pairs a
// producer serves, the join windows held at a node, the producer's cached
// multicast route — is one array index away; the small per-node pair tables
// are sorted vectors, so iteration order stays deterministic ((node, pair)
// ascending, exactly the order the old ordered maps produced).

#ifndef ASPEN_JOIN_NODE_STATE_H_
#define ASPEN_JOIN_NODE_STATE_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "common/sorted_vec.h"
#include "join/pair_state.h"
#include "join/types.h"
#include "net/network.h"
#include "query/schema.h"

namespace aspen {
namespace join {

/// \brief All node-local state of one query at one node.
struct NodeState {
  /// Placement-table indices of the pairs this node produces for, per role
  /// (in workload pair order, matching the old map<NodeId, vector<PairKey>>).
  std::vector<int32_t> s_pairs;
  std::vector<int32_t> t_pairs;

  /// Join windows + estimators for the pairs currently joined AT this node,
  /// sorted by pair key for deterministic iteration.
  std::vector<PairState> states;

  /// Last w tuples this producer sent per role (window reconstruction on
  /// failover, Section 7). Indexed by as_s.
  std::deque<query::Tuple> recent_sent[2];

  /// Cached multicast tree rooted at this producer (Innet-m).
  std::shared_ptr<const net::MulticastRoute> mcast_route;

  /// Links discovered by path-collapse snooping for this producer.
  std::set<std::pair<net::NodeId, net::NodeId>> extra_links;

  /// Producers whose data paths this node forwards (flow buffer for
  /// opportunistic snooping). Sorted unique.
  std::vector<net::NodeId> flows_through;

  PairState* FindState(const PairKey& pair) {
    auto it = StateLowerBound(pair);
    if (it == states.end() || !(it->pair == pair)) return nullptr;
    return &*it;
  }

  PairState& StateAt(const PairKey& pair, int window, bool time_based) {
    auto it = StateLowerBound(pair);
    if (it != states.end() && it->pair == pair) return *it;
    it = states.insert(it, PairState(pair, window, time_based));
    return *it;
  }

  /// Inserts a fully-formed state (window handoff), keeping sort order.
  PairState& AdoptState(PairState state) {
    auto it = states.insert(StateLowerBound(state.pair), std::move(state));
    return *it;
  }

  /// Removes and returns the state for `pair`, if present.
  std::optional<PairState> TakeState(const PairKey& pair) {
    auto it = StateLowerBound(pair);
    if (it == states.end() || !(it->pair == pair)) return std::nullopt;
    std::optional<PairState> out(std::move(*it));
    states.erase(it);
    return out;
  }

  bool FlowsThrough(net::NodeId producer) const {
    return common::ContainsSorted(flows_through, producer);
  }

  void AddFlow(net::NodeId producer) {
    common::InsertSortedUnique(&flows_through, producer);
  }

 private:
  /// First state whose pair key is >= `pair` (the single ordering
  /// definition every state accessor shares).
  std::vector<PairState>::iterator StateLowerBound(const PairKey& pair) {
    return std::lower_bound(
        states.begin(), states.end(), pair,
        [](const PairState& st, const PairKey& key) { return st.pair < key; });
  }
};

}  // namespace join
}  // namespace aspen

#endif  // ASPEN_JOIN_NODE_STATE_H_
