// Contiguous per-node join-execution state.
//
// The executor keeps one NodeState per topology node in a dense vector
// indexed by NodeId, replacing the former global map<pair<NodeId, ...>>
// registries. Everything the per-cycle hot path touches — which pairs a
// producer serves, the join windows held at a node, the producer's cached
// multicast route and precomputed send plan — is one array index away; the
// small per-node pair tables are sorted vectors, so iteration order stays
// deterministic ((node, pair) ascending, exactly the order the old ordered
// maps produced).

#ifndef ASPEN_JOIN_NODE_STATE_H_
#define ASPEN_JOIN_NODE_STATE_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "common/sorted_vec.h"
#include "join/pair_state.h"
#include "join/types.h"
#include "net/network.h"
#include "query/schema.h"

namespace aspen {
namespace join {

/// \brief One destination of a producer's precomputed send plan: a join
/// node this producer ships samples to, with the interned route per role.
/// Entries are sorted by `dest`, reproducing the ordered-map iteration of
/// the former per-cycle destination collection.
struct SendPlanEntry {
  net::NodeId dest = -1;
  /// Which of the producer's roles route samples to `dest`.
  bool has_s = false;
  bool has_t = false;
  /// Route taken when the S (resp. T) role fires; when both fire the S
  /// route wins, matching the historical first-collected-path behavior.
  net::RouteId route_s = net::kInvalidRoute;
  net::RouteId route_t = net::kInvalidRoute;
};

/// \brief Fixed-capacity ring of the last `w` tuples a producer sent in one
/// role (window reconstruction on failover, Section 7). Slots are recycled
/// with their capacity, so steady-state remembering allocates nothing.
class RecentRing {
 public:
  /// Appends a copy of `t`, evicting the oldest entry once `cap` entries
  /// are held. `cap` is fixed per run (the window size).
  void Push(const query::Tuple& t, int cap) {
    if (static_cast<int>(slots_.size()) != cap) slots_.resize(cap);
    if (count_ == cap) {
      slots_[head_] = t;
      head_ = Next(head_);
    } else {
      slots_[Index(count_)] = t;
      ++count_;
    }
  }

  /// Pre-grows the ring to `cap` slots of `width` ints each so that every
  /// later Push reuses slot capacity. Without this, a slot's first-ever
  /// Push allocates its tuple buffer — a first-touch tail that can land in
  /// a measured block when the warmup is short. Holds no tuples afterwards.
  void Warm(int cap, int width) {
    slots_.resize(cap);
    for (query::Tuple& t : slots_) t.reserve(width);
  }

  int size() const { return count_; }
  /// The i-th remembered tuple, oldest first.
  const query::Tuple& at(int i) const { return slots_[Index(i)]; }
  void Clear() {
    head_ = 0;
    count_ = 0;
  }

 private:
  int Next(int i) const {
    return i + 1 == static_cast<int>(slots_.size()) ? 0 : i + 1;
  }
  int Index(int i) const {
    int idx = head_ + i;
    const int cap = static_cast<int>(slots_.size());
    return idx >= cap ? idx - cap : idx;
  }

  std::vector<query::Tuple> slots_;
  int head_ = 0;
  int count_ = 0;
};

/// \brief All node-local state of one query at one node.
struct NodeState {
  /// Placement-table indices of the pairs this node produces for, per role
  /// (in workload pair order, matching the old map<NodeId, vector<PairKey>>).
  std::vector<int32_t> s_pairs;
  std::vector<int32_t> t_pairs;

  /// Join windows + estimators for the pairs currently joined AT this node,
  /// sorted by pair key for deterministic iteration.
  std::vector<PairState> states;

  /// Last w tuples this producer sent per role (failover replay). Indexed
  /// by as_s.
  RecentRing recent_sent[2];

  /// Precomputed per-producer destinations (sorted by dest) with interned
  /// routes; rebuilt lazily when placements change. base_s/base_t mark
  /// whether any pair of the role joins at the base.
  std::vector<SendPlanEntry> plan;
  bool plan_base_s = false;
  bool plan_base_t = false;

  /// Cached multicast tree rooted at this producer (Innet-m), interned in
  /// the network's route table.
  net::McastId mcast_route = net::kInvalidRoute;

  /// Links discovered by path-collapse snooping for this producer.
  std::set<std::pair<net::NodeId, net::NodeId>> extra_links;

  /// Producers whose data paths this node forwards (flow buffer for
  /// opportunistic snooping). Sorted unique.
  std::vector<net::NodeId> flows_through;

  PairState* FindState(const PairKey& pair) {
    auto it = StateLowerBound(pair);
    if (it == states.end() || !(it->pair == pair)) return nullptr;
    return &*it;
  }

  PairState& StateAt(const PairKey& pair, int window, bool time_based) {
    auto it = StateLowerBound(pair);
    if (it != states.end() && it->pair == pair) return *it;
    it = states.insert(it, PairState(pair, window, time_based));
    return *it;
  }

  /// Inserts a fully-formed state (window handoff), keeping sort order.
  PairState& AdoptState(PairState state) {
    auto it = states.insert(StateLowerBound(state.pair), std::move(state));
    return *it;
  }

  /// Removes and returns the state for `pair`, if present.
  std::optional<PairState> TakeState(const PairKey& pair) {
    auto it = StateLowerBound(pair);
    if (it == states.end() || !(it->pair == pair)) return std::nullopt;
    std::optional<PairState> out(std::move(*it));
    states.erase(it);
    return out;
  }

  bool FlowsThrough(net::NodeId producer) const {
    return common::ContainsSorted(flows_through, producer);
  }

  void AddFlow(net::NodeId producer) {
    common::InsertSortedUnique(&flows_through, producer);
  }

 private:
  /// First state whose pair key is >= `pair` (the single ordering
  /// definition every state accessor shares).
  std::vector<PairState>::iterator StateLowerBound(const PairKey& pair) {
    return std::lower_bound(
        states.begin(), states.end(), pair,
        [](const PairState& st, const PairKey& key) { return st.pair < key; });
  }
};

}  // namespace join
}  // namespace aspen

#endif  // ASPEN_JOIN_NODE_STATE_H_
