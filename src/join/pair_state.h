// Per-(s, t)-pair execution state held at a join node: the two windows plus
// the learning estimator of Section 6.

#ifndef ASPEN_JOIN_PAIR_STATE_H_
#define ASPEN_JOIN_PAIR_STATE_H_

#include "adapt/estimator.h"
#include "join/types.h"
#include "query/window.h"

namespace aspen {
namespace join {

/// \brief Windows + selectivity estimator for one producer pair.
struct PairState {
  PairKey pair;
  query::JoinWindow s_window;
  query::JoinWindow t_window;
  adapt::SelectivityEstimator estimator;

  PairState(PairKey key, int window, bool time_based)
      : pair(key),
        s_window(window, time_based),
        t_window(window, time_based) {}
};

}  // namespace join
}  // namespace aspen

#endif  // ASPEN_JOIN_PAIR_STATE_H_
