// Innet strategy: multi-tree exploration, cost-based join-node placement
// (Section 3), multi-pair optimization (Section 5), adaptive learning and
// migration (Section 6), and failure recovery (Section 7).

#include <algorithm>
#include <map>
#include <queue>

#include "common/logging.h"
#include "common/sorted_vec.h"
#include "join/executor.h"

namespace aspen {
namespace join {

using net::Message;
using net::MessageKind;
using net::NodeId;
using net::RoutingMode;
using query::Tuple;

namespace {

/// Best join-node position on a path plus the at-base alternative.
struct OnPathChoice {
  int index = 0;
  double innet_cost = 0.0;
  double base_cost = 0.0;
  bool base_cheaper() const { return base_cost <= innet_cost; }
};

OnPathChoice BestOnPath(const opt::PairCostInputs& params,
                        const std::vector<NodeId>& path,
                        const std::function<int(NodeId)>& depth_of) {
  ASPEN_CHECK(!path.empty());
  OnPathChoice best;
  best.base_cost =
      opt::BasePairCost(params, depth_of(path.front()), depth_of(path.back()));
  best.innet_cost = 1e300;
  for (size_t i = 0; i < path.size(); ++i) {
    double c = opt::InnetPairCost(params, static_cast<int>(i),
                                  static_cast<int>(path.size() - 1 - i),
                                  depth_of(path[i]));
    if (c < best.innet_cost) {
      best.innet_cost = c;
      best.index = static_cast<int>(i);
    }
  }
  return best;
}

opt::PairCostInputs ToCost(const workload::SelectivityParams& p, int w) {
  opt::PairCostInputs c;
  c.sigma_s = p.sigma_s;
  c.sigma_t = p.sigma_t;
  c.sigma_st = p.sigma_st;
  c.w = w;
  return c;
}

constexpr int kNominationBytes = 6;
constexpr int kCostReportBytes = 6;
constexpr int kDecisionBytes = 4;
constexpr int kHintBytes = 6;
constexpr int kMcastUpdateBytesPerEdge = 4;

}  // namespace

Status JoinExecutor::InitInnet() {
  routing::MultiTreeOptions mt_opts;
  mt_opts.num_trees = opts_.num_trees;
  // Substrate construction (trees, beacon floods, summary aggregation over
  // the Table 1 static attributes) happens once at deployment and is shared
  // by every query, exactly like the initial routing tree that Naive/Base
  // get for free (Appendix C). It is therefore not charged to this query;
  // MultiTree::construction_bytes() still reports it for diagnostics.
  // Query-specific initiation — exploration, replies, nominations — is
  // charged below (Table 3's ">= sum Dst").
  multi_ = std::make_unique<routing::MultiTree>(&workload_->topology(),
                                                mt_opts, nullptr);
  const auto& primary = workload_->analysis().primary;
  if (!primary.has_value()) {
    // No routable static join clause: the only consistent strategy is a
    // grouped join at the base (Section 2), which the default placements
    // already encode.
    return Status::OK();
  }
  if (primary->region_radius_dm.has_value()) {
    multi_->IndexPositions(nullptr);
  } else {
    routing::IndexedAttribute attr;
    attr.name = "primary_join_key";
    attr.summary_type = opts_.summary_type;
    const workload::Workload* w = workload_;
    query::ExprPtr target = primary->target_expr;
    attr.value_fn = [w, target](NodeId id) {
      const query::Tuple& t = w->statics().tuple(id);
      return target->Eval(&t, nullptr);
    };
    ASPEN_ASSIGN_OR_RETURN(routed_attr_,
                           multi_->IndexAttribute(attr, nullptr));
  }
  ASPEN_RETURN_NOT_OK(ExplorePairs());
  if (opts_.features.group_opt) RunGroupOpt(/*charge_traffic=*/true);
  if (opts_.features.multicast) BuildMulticastRoutes(/*charge_traffic=*/true);
  // Flow tables for opportunistic snooping (path collapsing).
  if (opts_.features.path_collapse) {
    for (const auto& pl : placements_) {
      if (pl.path.empty()) continue;
      for (int i = 1; i <= pl.path_index; ++i) {
        nodes_[pl.path[i]].AddFlow(pl.pair.s);
      }
      for (int i = pl.path_index;
           i < static_cast<int>(pl.path.size()) - 1; ++i) {
        nodes_[pl.path[i]].AddFlow(pl.pair.t);
      }
    }
  }
  return Status::OK();
}

Status JoinExecutor::ExplorePairs() {
  const auto& primary = *workload_->analysis().primary;
  const int w = workload_->join_query().window.size;
  auto depth_of = [this](NodeId id) { return DepthOf(id); };

  for (NodeId s : s_nodes_) {
    if (nodes_[s].s_pairs.empty()) continue;
    auto accept = [this, s](NodeId t) {
      return t != s && workload_->StaticPairJoins(s, t);
    };
    routing::SearchStats ss;
    std::vector<routing::FoundPath> found;
    if (primary.region_radius_dm.has_value()) {
      // Positions are decimeters in tuples but meters in the topology; a
      // small slack absorbs the rounding (accept() re-checks exactly).
      double radius_m = *primary.region_radius_dm / 10.0 + 0.1;
      found = multi_->FindWithinRadius(s, radius_m, accept, &net_->stats(),
                                       &ss);
    } else {
      const query::Tuple& st = workload_->statics().tuple(s);
      int32_t probe = primary.probe_expr->Eval(&st, nullptr);
      found = multi_->FindMatches(s, routed_attr_, probe, accept,
                                  &net_->stats(), &ss);
    }
    init_latency_ = std::max(init_latency_, ss.max_hops);
    // Keep, per target, the path whose best placement is cheapest.
    for (const auto& fp : found) {
      PairKey key{s, fp.target};
      PairPlacement* pl = MutablePlacement(key);
      ASPEN_CHECK(pl != nullptr);  // accept() is exact
      // A pair subscribed to a co-resident query's placement keeps no
      // placement of its own: the owner's path serves it.
      if (pl->shared_owner >= 0) continue;
      const workload::SelectivityParams pair_params = AssumedFor(key);
      const opt::PairCostInputs assumed = ToCost(pair_params, w);
      OnPathChoice choice = BestOnPath(assumed, fp.path, depth_of);
      bool better = pl->path.empty();
      if (!better) {
        OnPathChoice current = BestOnPath(assumed, pl->path, depth_of);
        better = std::min(choice.innet_cost, choice.base_cost) <
                 std::min(current.innet_cost, current.base_cost);
      }
      if (better) {
        pl->path = fp.path;
        pl->path_index = choice.index;
        pl->join_node = fp.path[choice.index];
        pl->pairwise_at_base = choice.base_cheaper();
        pl->at_base = pl->pairwise_at_base;
        pl->placed_with = pair_params;
      }
    }
  }
  // Nomination: t tells j, and j tells s (footnote 4). Charged along the
  // chosen path segments.
  for (const auto& pl : placements_) {
    if (pl.path.empty()) continue;
    std::vector<NodeId> t_to_j(pl.path.begin() + pl.path_index,
                               pl.path.end());
    std::reverse(t_to_j.begin(), t_to_j.end());
    std::vector<NodeId> j_to_s(pl.path.begin(),
                               pl.path.begin() + pl.path_index + 1);
    std::reverse(j_to_s.begin(), j_to_s.end());
    ChargeAlongPath(t_to_j, kNominationBytes, MessageKind::kNomination);
    ChargeAlongPath(j_to_s, kNominationBytes, MessageKind::kNomination);
  }
  return Status::OK();
}

// ---- data plane ----------------------------------------------------------------

void JoinExecutor::SendInnet(NodeId p, const Tuple& t, int cycle, bool as_s,
                             bool as_t) {
  // The destination set, role flags and route segments are precomputed in
  // the producer's SendPlan (rebuilt on placement changes); a steady-state
  // send walks the plan and allocates nothing.
  const NodeState& node = nodes_[p];
  const bool base_s = as_s && node.plan_base_s;
  const bool base_t = as_t && node.plan_base_t;
  bool any_dest = false;
  for (const SendPlanEntry& e : node.plan) {
    if ((as_s && e.has_s) || (as_t && e.has_t)) {
      any_dest = true;
      break;
    }
  }
  if (any_dest) {
    if (opts_.features.multicast && node.mcast_route != net::kInvalidRoute) {
      Message msg;
      msg.kind = MessageKind::kData;
      msg.origin = p;
      msg.dest = p;  // multicast delivery is target-driven
      msg.size_bytes = workload_->DataBytes();
      msg.payload = MakeData(p, t, cycle, as_s, as_t);
      (void)SubmitMcastToNet(msg, node.mcast_route);
    } else {
      for (const SendPlanEntry& e : node.plan) {
        const bool use_s = as_s && e.has_s;
        const bool use_t = as_t && e.has_t;
        if (!use_s && !use_t) continue;
        Message msg;
        msg.kind = MessageKind::kData;
        msg.mode = RoutingMode::kSourcePath;
        msg.origin = p;
        msg.dest = e.dest;
        // When both roles fire toward one join node, the S route wins —
        // the order the per-cycle collection historically filled in paths.
        msg.route = use_s ? e.route_s : e.route_t;
        msg.size_bytes = workload_->DataBytes();
        msg.payload = MakeData(p, t, cycle, use_s, use_t);
        (void)SubmitToNet(msg);
      }
    }
  }
  if (base_s || base_t) SendToBase(p, t, cycle, base_s, base_t);
}

// ---- group optimization (MPO) -----------------------------------------------

double JoinExecutor::ComputeDeltaCp(
    NodeId member, bool as_s, const workload::SelectivityParams& est) const {
  const int w = workload_->join_query().window.size;
  const auto& pair_idxs =
      as_s ? nodes_[member].s_pairs : nodes_[member].t_pairs;
  if (pair_idxs.empty()) return 0.0;
  // Group the member's pairs by candidate join node.
  std::map<NodeId, opt::ProducerJoinNode> per_join;
  for (int32_t pi : pair_idxs) {
    const PairPlacement& pl = placements_[pi];
    if (pl.path.empty()) continue;
    auto [jit, inserted] =
        per_join.try_emplace(pl.join_node, opt::ProducerJoinNode{});
    if (inserted) {
      jit->second.d_pj = HopsOnPath(pl, as_s);
      jit->second.d_jr = DepthOf(pl.join_node);
      jit->second.n_pairs = 1;
    } else {
      ++jit->second.n_pairs;
    }
  }
  std::vector<opt::ProducerJoinNode> join_nodes;
  join_nodes.reserve(per_join.size());
  for (const auto& [j, pj] : per_join) join_nodes.push_back(pj);
  double sigma_p = as_s ? est.sigma_s : est.sigma_t;
  return opt::GroupDeltaCp(sigma_p, est.sigma_st, w, join_nodes,
                           DepthOf(member));
}

void JoinExecutor::ApplyGroupDecision(const opt::JoinGroup& group,
                                      bool in_network) {
  for (const auto& [s, t] : group.pairs) {
    PairPlacement* pl = MutablePlacement(PairKey{s, t});
    if (pl == nullptr) continue;
    if (pl->failed_over || pl->path.empty()) continue;
    bool new_at_base = in_network ? pl->pairwise_at_base : true;
    if (new_at_base != pl->at_base) {
      NodeId from = pl->at_base ? 0 : pl->join_node;
      NodeId to = new_at_base ? 0 : pl->join_node;
      MoveState(pl->pair, from, to, /*charge=*/true);
      pl->at_base = new_at_base;
      plans_dirty_ = true;
      if (initiated_) ++migrations_;  // adaptive relocation, not setup
    }
  }
}

void JoinExecutor::EnsureGroups() {
  if (!groups_.empty()) return;
  std::vector<std::pair<NodeId, NodeId>> raw;
  raw.reserve(pairs_.size());
  for (const PairKey& key : pairs_) {
    // Pairs subscribed to a co-resident query's placement take no part in
    // group optimization — the owner's decisions serve them.
    const PairPlacement* pl = FindPlacement(key);
    if (pl != nullptr && pl->shared_owner >= 0) continue;
    raw.emplace_back(key.s, key.t);
  }
  groups_ = opt::DiscoverGroups(raw);
  for (size_t g = 0; g < groups_.size(); ++g) {
    for (const auto& [s, t] : groups_[g].pairs) {
      PairPlacement* pl = MutablePlacement(PairKey{s, t});
      if (pl != nullptr) {
        pair_group_[pl - placements_.data()] = static_cast<int32_t>(g);
      }
    }
  }
}

void JoinExecutor::RunGroupOpt(bool charge_traffic) {
  EnsureGroups();
  ++group_decision_seq_;
  for (const auto& group : groups_) DecideGroupFor(group, charge_traffic);
}

void JoinExecutor::DecideGroupFor(const opt::JoinGroup& group,
                                  bool charge_traffic) {
  std::vector<double> deltas;
  auto report = [&](NodeId member, bool as_s) {
    // Members use the estimates their placements were computed with; with
    // learning on these are the learned values.
    workload::SelectivityParams est = opts_.assumed;
    const auto& pair_idxs =
        as_s ? nodes_[member].s_pairs : nodes_[member].t_pairs;
    if (!pair_idxs.empty()) {
      est = placements_[pair_idxs.front()].placed_with;
    }
    deltas.push_back(ComputeDeltaCp(member, as_s, est));
    if (charge_traffic && member != group.coordinator) {
      ChargeAlongPath(primary_tree().TreePath(member, group.coordinator),
                      kCostReportBytes, MessageKind::kCostReport);
    }
  };
  for (NodeId s : group.s_members) report(s, true);
  for (NodeId t : group.t_members) report(t, false);
  bool in_network =
      opt::DecideGroup(deltas) == opt::GroupDecision::kInNetwork;
  if (charge_traffic) {
    for (NodeId m : group.s_members) {
      if (m != group.coordinator) {
        ChargeAlongPath(primary_tree().TreePath(group.coordinator, m),
                        kDecisionBytes, MessageKind::kGroupDecision);
      }
    }
    for (NodeId m : group.t_members) {
      if (m != group.coordinator) {
        ChargeAlongPath(primary_tree().TreePath(group.coordinator, m),
                        kDecisionBytes, MessageKind::kGroupDecision);
      }
    }
  }
  ApplyGroupDecision(group, in_network);
}

// ---- multicast trees ----------------------------------------------------------

void JoinExecutor::RebuildProducerRoute(NodeId p, bool /*as_s*/,
                                        bool charge_traffic) {
  if (opts_.knobs.tree_mode == common::TreeMode::kShared) {
    RebuildSharedProducerRoute(p, charge_traffic);
    return;
  }
  // Collect the path segments from p to each of its in-network join nodes
  // (both roles), plus any snoop-discovered shortcut links.
  std::set<NodeId> targets;
  std::set<std::pair<NodeId, NodeId>> edges;
  auto add_segment = [&](const std::vector<NodeId>& seg) {
    for (size_t i = 0; i + 1 < seg.size(); ++i) {
      edges.insert({seg[i], seg[i + 1]});
      edges.insert({seg[i + 1], seg[i]});
    }
  };
  auto collect = [&](const std::vector<int32_t>& pair_idxs, bool role_s) {
    std::vector<NodeId> seg;
    for (int32_t pi : pair_idxs) {
      const PairPlacement& pl = placements_[pi];
      if (pl.at_base || pl.path.empty()) continue;
      targets.insert(pl.join_node);
      RoleSegment(pl, role_s, &seg);
      add_segment(seg);
    }
  };
  collect(nodes_[p].s_pairs, true);
  collect(nodes_[p].t_pairs, false);

  NodeState& pnode = nodes_[p];
  if (targets.empty()) {
    UnrefMcast(pnode.mcast_route);
    pnode.mcast_route = net::kInvalidRoute;
    return;
  }
  for (const auto& [a, b] : pnode.extra_links) {
    edges.insert({a, b});
    edges.insert({b, a});
  }
  // BFS from p over the collected edges; prune to the union of p->target
  // paths.
  std::map<NodeId, std::vector<NodeId>> adj;
  for (const auto& [a, b] : edges) adj[a].push_back(b);
  std::map<NodeId, NodeId> parent;
  std::queue<NodeId> frontier;
  parent[p] = p;
  frontier.push(p);
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : adj[u]) {
      if (parent.find(v) == parent.end()) {
        parent[v] = u;
        frontier.push(v);
      }
    }
  }
  net::MulticastRoute route;
  std::set<std::pair<NodeId, NodeId>> tree_edges;
  for (NodeId t : targets) {
    if (parent.find(t) == parent.end()) continue;  // unreachable: stale link
    route.targets.push_back(t);
    for (NodeId u = t; u != p; u = parent[u]) {
      tree_edges.insert({parent[u], u});
    }
  }
  route.edges.assign(tree_edges.begin(), tree_edges.end());

  // 10%-improvement rule (Appendix E): only push an updated tree when it is
  // meaningfully smaller than the one currently cached in the network.
  const bool has_existing = pnode.mcast_route != net::kInvalidRoute;
  size_t old_edges = SIZE_MAX;
  if (has_existing) {
    old_edges = net_->routes().Multicast(pnode.mcast_route).edges.size();
  }
  bool adopt = !has_existing || tree_edges.size() * 10 <= old_edges * 9;
  // A placement change (targets moved) always forces adoption: the cached
  // tree no longer covers the right targets.
  if (!adopt) {
    const auto& old_targets =
        net_->routes().Multicast(pnode.mcast_route).targets;
    // Both sides are sorted unique (`targets` is a std::set).
    if (old_targets.size() != targets.size() ||
        !std::equal(old_targets.begin(), old_targets.end(),
                    targets.begin())) {
      adopt = true;
    }
  }
  if (!adopt) return;
  if (charge_traffic) {
    for (const auto& [u, v] : tree_edges) {
      net_->stats().RecordSend(u, MessageKind::kMulticastUpdate,
                               kMcastUpdateBytesPerEdge +
                                   net::WireFormat::kLinkHeaderBytes,
                               query_id_);
      net_->stats().RecordReceive(v, kMcastUpdateBytesPerEdge +
                                         net::WireFormat::kLinkHeaderBytes);
    }
  }
  // Swap the cached tree's owner reference: ref-then-unref keeps a
  // re-adopted identical tree alive across the swap.
  const net::McastId old_route = pnode.mcast_route;
  pnode.mcast_route = net_->routes().InternMulticast(std::move(route));
  RefMcast(pnode.mcast_route);
  UnrefMcast(old_route);
}

void JoinExecutor::RebuildSharedProducerRoute(NodeId p, bool charge_traffic) {
  // Shared-tree mode: the tree is a pure function of (producer,
  // destination set) — explored path segments and snooped extra links are
  // deliberately ignored so co-resident queries with the same placements
  // converge on byte-identical trees and share one interned McastId.
  std::set<NodeId> tset;
  auto collect = [&](const std::vector<int32_t>& pair_idxs) {
    for (int32_t pi : pair_idxs) {
      const PairPlacement& pl = placements_[pi];
      if (pl.at_base || pl.path.empty()) continue;
      tset.insert(pl.join_node);
    }
  };
  collect(nodes_[p].s_pairs);
  collect(nodes_[p].t_pairs);
  NodeState& pnode = nodes_[p];
  if (tset.empty()) {
    UnrefMcast(pnode.mcast_route);
    pnode.mcast_route = net::kInvalidRoute;
    return;
  }
  const std::vector<NodeId> targets(tset.begin(), tset.end());
  net::RouteTable& routes = net_->routes();
  if (pnode.mcast_route != net::kInvalidRoute &&
      routes.Multicast(pnode.mcast_route).targets == targets) {
    return;  // destination set unchanged — the cached tree stands
  }
  const net::McastId old_route = pnode.mcast_route;
  net::McastId id = routes.FindSharedMulticast(p, targets);
  if (id != net::kInvalidRoute) {
    // Adopt a co-resident query's tree: it is already installed in the
    // network, so adoption costs no construction and no update traffic.
    pnode.mcast_route = id;
    RefMcast(id);
    UnrefMcast(old_route);
    return;
  }
  net::MulticastRoute route =
      routing::BuildSharedSteinerTree(net_->topology(), p, targets);
  if (charge_traffic) {
    for (const auto& [u, v] : route.edges) {
      net_->stats().RecordSend(u, MessageKind::kMulticastUpdate,
                               kMcastUpdateBytesPerEdge +
                                   net::WireFormat::kLinkHeaderBytes,
                               query_id_);
      net_->stats().RecordReceive(v, kMcastUpdateBytesPerEdge +
                                         net::WireFormat::kLinkHeaderBytes);
    }
  }
  pnode.mcast_route = routes.InternSharedMulticast(p, std::move(route));
  RefMcast(pnode.mcast_route);
  UnrefMcast(old_route);
}

void JoinExecutor::BuildMulticastRoutes(bool charge_traffic) {
  for (NodeId p = 0; p < static_cast<NodeId>(nodes_.size()); ++p) {
    if (nodes_[p].s_pairs.empty() && nodes_[p].t_pairs.empty()) continue;
    RebuildProducerRoute(p, true, charge_traffic);
  }
}

// ---- snooping / path collapse --------------------------------------------------

void JoinExecutor::OnSnoop(const Message& msg, NodeId snooper, NodeId from,
                           NodeId to) {
  // Snoop expansion happens in the exchange phase (kSnoopTx effects).
  common::SequentialPhaseScope seq;
  if (msg.kind != MessageKind::kData || !opts_.features.path_collapse ||
      !opts_.features.multicast) {
    return;
  }
  const DataPayload* data = data_pool_->Get(msg.payload);
  if (data == nullptr) return;
  NodeId p = data->producer;
  if (snooper == p || from == p || to == p) return;
  if (!nodes_[snooper].FlowsThrough(p)) return;
  if (!nodes_[from].FlowsThrough(p)) return;
  auto link = std::minmax(snooper, from);
  if (!nodes_[p].extra_links.insert({link.first, link.second}).second) return;
  // Notify the producer (Algorithm 2's optimization tuple).
  ChargeAlongPath(primary_tree().TreePath(snooper, p), kHintBytes,
                  MessageKind::kCollapseHint);
  RebuildProducerRoute(p, true, /*charge_traffic=*/true);
}

// ---- learning & migration (Section 6) ------------------------------------------

void JoinExecutor::MoveState(const PairKey& pair, NodeId from, NodeId to,
                             bool charge) {
  if (from == to) return;
  std::optional<PairState> moving = nodes_[from].TakeState(pair);
  if (!moving.has_value()) return;  // nothing buffered yet
  if (nodes_[from].states.empty()) {
    common::EraseSorted(&active_sites_, from);
  }
  if (charge) {
    int tuples = moving->s_window.size() + moving->t_window.size();
    int bytes = 4 + tuples * workload_->DataBytes();
    ChargeAlongPath(primary_tree().TreePath(from, to), bytes,
                    MessageKind::kWindowTransfer);
  }
  TouchSite(to);
  nodes_[to].AdoptState(std::move(*moving));
}

void JoinExecutor::MigratePair(PairPlacement* pl, bool new_at_base,
                               NodeId new_join, int new_index) {
  NodeId from = pl->at_base ? 0 : pl->join_node;
  NodeId to = new_at_base ? 0 : new_join;
  if (from != to) {
    MoveState(pl->pair, from, to, /*charge=*/true);
    // Producers must learn the new join point (new path indices).
    if (!pl->path.empty()) {
      std::vector<NodeId> to_s(pl->path.begin(),
                               pl->path.begin() + std::max(new_index, 0) + 1);
      std::reverse(to_s.begin(), to_s.end());
      ChargeAlongPath(to_s, 4, MessageKind::kControl);
      std::vector<NodeId> to_t(
          pl->path.begin() + std::max(new_index, 0), pl->path.end());
      ChargeAlongPath(to_t, 4, MessageKind::kControl);
    }
    ++migrations_;
  }
  pl->at_base = new_at_base;
  if (!new_at_base) {
    pl->join_node = new_join;
    pl->path_index = new_index;
  }
  plans_dirty_ = true;
}

void JoinExecutor::RunLearning() {
  const int w = workload_->join_query().window.size;
  // Interval triggers run off the query's own learn-tick clock, not the
  // scheduler's cycle number: a query admitted at medium cycle 50 still
  // re-estimates after its own reestimate_interval learn phases, with
  // estimator counters (cycles_ ticks every learn) aligned to the period.
  // Identical to the old (cycle + 1) trigger for cycle-0 admissions.
  if (learn_ticks_ % opts_.reestimate_interval == 0) {
    auto depth_of = [this](NodeId id) { return DepthOf(id); };
    bool any_moved = false;
    // Collect first: MigratePair mutates the per-node state tables. The
    // scratch vectors are members reused across ticks (zero-alloc warm).
    std::vector<PlannedReestimate>& planned = reestimate_scratch_;
    planned.clear();
    ForEachState([&](NodeId loc, PairState& st) {
      const PairPlacement* pl = FindPlacement(st.pair);
      if (pl == nullptr) return;
      if (pl->failed_over || pl->path.empty()) return;
      if ((pl->at_base ? 0 : pl->join_node) != loc) return;  // stale
      if (FindMigration(st.pair) != nullptr) return;  // mid-relocation
      workload::SelectivityParams est =
          st.estimator.Estimate(w, pl->placed_with);
      if (adapt::SelectivityEstimator::Diverged(est, pl->placed_with,
                                                opts_.divergence_threshold)) {
        planned.push_back({st.pair, est});
      }
    });
    std::vector<int32_t>& affected_groups = affected_groups_scratch_;
    affected_groups.clear();
    for (const auto& plan : planned) {
      PairPlacement* pl = MutablePlacement(plan.pair);
      const opt::PairCostInputs est_cost = ToCost(plan.est, w);
      OnPathChoice choice = BestOnPath(est_cost, pl->path, depth_of);
      // Hysteresis: relocating pays a window transfer and producer
      // notifications, so only move for a meaningful (>=10%) modeled
      // improvement over staying put under the fresh estimates.
      double current_cost =
          pl->at_base
              ? choice.base_cost
              : opt::InnetPairCost(
                    est_cost, pl->path_index,
                    static_cast<int>(pl->path.size()) - 1 - pl->path_index,
                    DepthOf(pl->join_node));
      double best_cost = std::min(choice.innet_cost, choice.base_cost);
      pl->placed_with = plan.est;
      if (best_cost > current_cost * 0.9) continue;
      pl->pairwise_at_base = choice.base_cheaper();
      bool new_at_base =
          opts_.features.group_opt ? pl->at_base : pl->pairwise_at_base;
      // Without group optimization the pairwise decision applies directly;
      // with it, the group pass below reconciles at_base.
      NodeId new_join = pl->path[choice.index];
      if (opts_.features.group_opt && pl->at_base) {
        // Stay at base for now; the group decision may move the group.
        pl->join_node = new_join;
        pl->path_index = choice.index;
      } else {
        NodeId old_join = pl->at_base ? 0 : pl->join_node;
        MigratePair(pl, new_at_base, new_join, choice.index);
        if ((pl->at_base ? 0 : pl->join_node) != old_join) any_moved = true;
      }
      if (opts_.features.group_opt) {
        int32_t g = pair_group_[pl - placements_.data()];
        if (g >= 0) common::InsertSortedUnique(&affected_groups, g);
      }
    }
    if (!affected_groups.empty() && opts_.features.group_opt) {
      // Re-decide only the groups whose members' estimates changed; a full
      // network-wide re-optimization would charge every group's reports.
      for (int32_t g : affected_groups) {
        DecideGroupFor(groups_[g], /*charge_traffic=*/true);
      }
      any_moved = true;
    }
    if (any_moved && opts_.features.multicast) {
      BuildMulticastRoutes(/*charge_traffic=*/true);
    }
  }
  if (learn_ticks_ % opts_.counter_reset_interval == 0) {
    ForEachState([](NodeId, PairState& st) { st.estimator.Reset(); });
  }
}

// ---- continuous re-optimization (planned migration, three phases) --------------

JoinExecutor::PlannedMigration* JoinExecutor::FindMigration(
    const PairKey& pair) {
  for (PlannedMigration& m : planned_migrations_) {
    if (m.pair == pair) return &m;
  }
  return nullptr;
}

void JoinExecutor::RunReopt() {
  if (placements_.empty()) return;
  const int w = workload_->join_query().window.size;
  auto depth_of = [this](NodeId id) { return DepthOf(id); };
  // Collect the diverged placements first: the grouped branch below moves
  // state through the MPO round, which ForEachState must not observe. The
  // scratch is a pre-reserved member: a pass that finds divergence but
  // moves nothing (hysteresis) runs in the steady state and must not
  // allocate.
  reopt_diverged_.clear();
  ForEachState([&](NodeId loc, PairState& st) {
    const PairPlacement* pl = FindPlacement(st.pair);
    if (pl == nullptr) return;
    if (pl->failed_over || pl->path.empty()) return;
    if ((pl->at_base ? 0 : pl->join_node) != loc) return;  // stale copy
    if (FindMigration(st.pair) != nullptr) return;  // already relocating
    workload::SelectivityParams est =
        st.estimator.Estimate(w, pl->placed_with);
    if (reopt_.ShouldReplan(est, pl->placed_with)) {
      reopt_diverged_.push_back({st.pair, est});
    }
  });
  std::set<size_t> affected_groups;
  bool any_moved = false;
  for (const FreshEstimate& f : reopt_diverged_) {
    PairPlacement* pl = MutablePlacement(f.pair);
    const opt::PairCostInputs est_cost = ToCost(f.est, w);
    OnPathChoice choice = BestOnPath(est_cost, pl->path, depth_of);
    double current_cost =
        pl->at_base
            ? choice.base_cost
            : opt::InnetPairCost(
                  est_cost, pl->path_index,
                  static_cast<int>(pl->path.size()) - 1 - pl->path_index,
                  DepthOf(pl->join_node));
    double best_cost = std::min(choice.innet_cost, choice.base_cost);
    pl->placed_with = f.est;
    // Same hysteresis as the learning path: relocating pays a window
    // transfer and producer notifications, so only move for a meaningful
    // (>= 10%) modeled improvement under the fresh estimates.
    if (best_cost > current_cost * 0.9) continue;
    pl->pairwise_at_base = choice.base_cheaper();
    const NodeId new_join = pl->path[choice.index];
    const int32_t g = pair_group_[pl - placements_.data()];
    if (opts_.features.group_opt && g >= 0) {
      // Grouped pairs reconcile through the MPO coordinator round — an
      // instant group decision, exactly as in the learning path; only
      // ungrouped pairs take the planned three-phase protocol.
      if (pl->at_base) {
        pl->join_node = new_join;
        pl->path_index = choice.index;
      } else {
        const NodeId old_join = pl->join_node;
        MigratePair(pl, /*new_at_base=*/false, new_join, choice.index);
        if (pl->join_node != old_join) any_moved = true;
      }
      affected_groups.insert(static_cast<size_t>(g));
      continue;
    }
    const NodeId from = pl->at_base ? 0 : pl->join_node;
    const NodeId to = pl->pairwise_at_base ? 0 : new_join;
    if (from == to) {
      // The same site is cheapest under the fresh estimates; adopt the
      // (possibly shifted) on-path index without a relocation.
      pl->at_base = pl->pairwise_at_base;
      if (!pl->at_base) {
        pl->join_node = new_join;
        pl->path_index = choice.index;
      }
      continue;
    }
    // Phase 1 (announce): both producers learn the upcoming join point —
    // the same 4-byte notifications an instant migration charges — and the
    // transfer route is interned and referenced now, so it survives until
    // the window state has been shipped and flushed. The placement itself
    // does not flip yet: data keeps flowing to the old site until the
    // transfer phase, so no cycle is ever served by neither site.
    std::vector<NodeId> to_s(pl->path.begin(),
                             pl->path.begin() + choice.index + 1);
    std::reverse(to_s.begin(), to_s.end());
    ChargeAlongPath(to_s, kDecisionBytes, MessageKind::kControl);
    std::vector<NodeId> to_t(pl->path.begin() + choice.index,
                             pl->path.end());
    ChargeAlongPath(to_t, kDecisionBytes, MessageKind::kControl);
    net::RouteId route =
        net_->routes().InternPath(primary_tree().TreePath(from, to));
    RefRoute(route);
    PlannedMigration m;
    m.pair = f.pair;
    m.new_at_base = pl->pairwise_at_base;
    m.new_join = new_join;
    m.new_index = choice.index;
    m.transfer_route = route;
    m.phase = 0;
    planned_migrations_.push_back(m);
    reopt_.RecordPlanned();
  }
  if (opts_.features.group_opt && !affected_groups.empty()) {
    for (size_t gi : affected_groups) {
      DecideGroupFor(groups_[gi], /*charge_traffic=*/true);
    }
    any_moved = true;
  }
  if (any_moved && opts_.features.multicast) {
    BuildMulticastRoutes(/*charge_traffic=*/true);
  }
}

void JoinExecutor::AdvancePlannedMigrations() {
  if (planned_migrations_.empty()) return;
  size_t kept = 0;
  for (size_t i = 0; i < planned_migrations_.size(); ++i) {
    PlannedMigration m = planned_migrations_[i];
    bool keep;
    if (m.phase == 0) {
      keep = StartMigrationTransfer(&m);
    } else {
      // Phase 3 (complete): the transfer message was delivered — and its
      // windows applied at the new site — during the previous transmit
      // phase, before any data probe of that cycle's deliver phase (or the
      // drop handler degraded it; either way the state is in place).
      // Release the transfer route to the epoch GC and count the move.
      UnrefRoute(m.transfer_route);
      reopt_.RecordCompleted();
      ++migrations_;
      keep = false;
    }
    if (keep) planned_migrations_[kept++] = m;
  }
  planned_migrations_.resize(kept);
}

bool JoinExecutor::StartMigrationTransfer(PlannedMigration* m) {
  PairPlacement* pl = MutablePlacement(m->pair);
  const NodeId to = m->new_at_base ? 0 : m->new_join;
  if (pl == nullptr || pl->failed_over || net_->IsFailed(to)) {
    // The pair failed over (or the chosen site died) between announce and
    // transfer: abandon the relocation. The announced plan never activated,
    // so nothing needs undoing beyond the route reference.
    UnrefRoute(m->transfer_route);
    reopt_.RecordAborted();
    return false;
  }
  const NodeId from = pl->at_base ? 0 : pl->join_node;
  if (from == to) {  // concurrent adaptation already landed us here
    UnrefRoute(m->transfer_route);
    reopt_.RecordAborted();
    return false;
  }
  // Phase 2 (transfer): the pair's state leaves the old site now; its
  // window contents travel as a real kWindowTransfer along the announced
  // route and are applied at the new site on delivery — which precedes any
  // data probe, because transfers apply at delivery time while data defers
  // to the deliver phase. The placement flips here and the send plans flip
  // atomically at the next sample begin (plans_dirty_), releasing the old
  // routes' references to the epoch GC.
  std::optional<PairState> moving = nodes_[from].TakeState(m->pair);
  if (moving.has_value()) {
    if (nodes_[from].states.empty()) {
      common::EraseSorted(&active_sites_, from);
    }
    net::PayloadHandle h = window_pool_->Allocate();
    WindowTransferPayload* wt = window_pool_->Get(h);
    wt->pair = m->pair;
    const query::JoinWindow& sw = moving->s_window;
    const query::JoinWindow& tw = moving->t_window;
    wt->s_window.resize(sw.size());
    wt->t_window.resize(tw.size());
    // detlint: steady-state begin
    // Transfer serialization: oldest-first, so the receiver's Push replays
    // the window in insertion order; copies recycle pooled-slot capacity.
    for (int i = 0; i < sw.size(); ++i) wt->s_window[i] = sw.entry(i).tuple;
    for (int i = 0; i < tw.size(); ++i) wt->t_window[i] = tw.entry(i).tuple;
    // detlint: steady-state end
    const int tuples = sw.size() + tw.size();
    Message msg;
    msg.kind = MessageKind::kWindowTransfer;
    msg.mode = RoutingMode::kSourcePath;
    msg.origin = from;
    msg.dest = to;
    msg.route = m->transfer_route;
    msg.size_bytes = 4 + tuples * workload_->DataBytes();
    msg.payload = h;
    (void)SubmitToNet(msg);
    // The moved state's windows restart empty at the new site (the in-
    // flight transfer refills them); the estimator's counters move with it,
    // so learning continuity survives the relocation.
    moving->s_window.Clear();
    moving->t_window.Clear();
    TouchSite(to);
    nodes_[to].AdoptState(std::move(*moving));
  }
  pl->at_base = m->new_at_base;
  if (!m->new_at_base) {
    pl->join_node = m->new_join;
    pl->path_index = m->new_index;
  }
  plans_dirty_ = true;
  m->phase = 1;
  return true;
}

// ---- failure recovery (Section 7) ----------------------------------------------

void JoinExecutor::SendWindowReplay(const PairKey& pair, NodeId producer,
                                    bool as_s) {
  // Forward the producer's last w tuples so the base can reconstruct its
  // side of the join window.
  const RecentRing& recent = nodes_[producer].recent_sent[as_s];
  net::PayloadHandle h = window_pool_->Allocate();
  WindowTransferPayload* wt = window_pool_->Get(h);
  wt->pair = pair;
  wt->s_window.clear();
  wt->t_window.clear();
  auto& dst = as_s ? wt->s_window : wt->t_window;
  dst.resize(recent.size());
  for (int i = 0; i < recent.size(); ++i) dst[i] = recent.at(i);
  int tuples = static_cast<int>(wt->s_window.size() + wt->t_window.size());
  Message msg;
  msg.kind = MessageKind::kWindowTransfer;
  msg.mode = RoutingMode::kTreeToRoot;
  msg.origin = producer;
  msg.dest = 0;
  msg.size_bytes = 4 + tuples * workload_->DataBytes();
  msg.payload = h;
  (void)SubmitToNet(msg);
}

void JoinExecutor::FailoverPairToBase(const PairKey& pair) {
  PairPlacement* pl = MutablePlacement(pair);
  if (pl == nullptr) return;
  if (pl->failed_over) return;   // already handled (both replays started)
  if (pl->at_base) return;       // was never in-network: nothing to fail over
  pl->at_base = true;
  pl->failed_over = true;
  plans_dirty_ = true;
  ++failovers_;
  // Both producers replay their buffered windows — the base needs both
  // sides to reconstruct the join, and failover knowledge is instantly
  // global here (the detecting producer's notification is not separately
  // modeled, matching how placement decisions propagate elsewhere).
  for (bool as_s : {true, false}) {
    NodeId producer = as_s ? pair.s : pair.t;
    if (net_->IsFailed(producer)) {
      // Producer is down (churn): ship its window once it recovers.
      pending_replays_.push_back({pair, as_s});
      continue;
    }
    SendWindowReplay(pair, producer, as_s);
    if (opts_.features.multicast) {
      RebuildProducerRoute(producer, true, /*charge_traffic=*/true);
    }
  }
}

void JoinExecutor::RetryPendingReplays() {
  if (pending_replays_.empty()) return;
  net::TrafficStats::QueryScope scope(&net_->stats(), query_id_);
  // A dropped retry re-queues itself via OnDrop during the next transmit
  // phase, so the replay keeps probing (one attempt per sampling cycle,
  // repair-style) until the route to the base heals.
  std::vector<std::pair<PairKey, bool>> retrying;
  retrying.swap(pending_replays_);
  for (const auto& [pair, as_s] : retrying) {
    NodeId producer = as_s ? pair.s : pair.t;
    if (net_->IsFailed(producer)) {
      // Producer itself is down (churn): its buffer survives in NodeState,
      // so keep the replay pending until the producer comes back.
      pending_replays_.push_back({pair, as_s});
      continue;
    }
    SendWindowReplay(pair, producer, as_s);
  }
}

void JoinExecutor::OnDrop(const Message& msg, NodeId at, NodeId next) {
  // Drop handlers fire from the exchange phase's canonical effect replay.
  common::SequentialPhaseScope seq;
  (void)at;
  (void)next;
  if (msg.kind == MessageKind::kWindowTransfer) {
    const WindowTransferPayload* wt = window_pool_->Get(msg.payload);
    if (wt == nullptr) return;
    // A planned-migration transfer (origin = the old join site) that died
    // en route: apply the windows directly at the new site so no buffered
    // tuple is lost — the radio hop degrades to state teleportation, which
    // keeps the outcome deterministic (the state is identical to a
    // successful delivery; only the per-link traffic differs, and the drop
    // itself is already part of the charged record).
    for (const PlannedMigration& m : planned_migrations_) {
      if (m.phase == 1 && m.pair == wt->pair) {
        PairState& st = StateAt(m.new_at_base ? 0 : m.new_join, wt->pair);
        for (const auto& t : wt->s_window) {
          st.s_window.Push(t, t[query::kAttrSeq]);
        }
        for (const auto& t : wt->t_window) {
          st.t_window.Push(t, t[query::kAttrSeq]);
        }
        return;
      }
    }
    // Otherwise a failover replay died en route to the base (the dead join
    // node, or churn, also severed the producer's tree path). Queue a retry
    // for the next sample phase rather than giving up the buffered window.
    bool as_s = msg.origin == wt->pair.s;
    std::pair<PairKey, bool> key{wt->pair, as_s};
    for (const auto& pending : pending_replays_) {
      if (pending.first == key.first && pending.second == key.second) return;
    }
    pending_replays_.push_back(key);
    return;
  }
  if (msg.kind != MessageKind::kData) return;
  const DataPayload* data = data_pool_->Get(msg.payload);
  if (data == nullptr) return;
  NodeId j = msg.dest;
  if (j < 0 || !net_->IsFailed(j)) return;  // congestion loss, not death
  net::TrafficStats::QueryScope scope(&net_->stats(), query_id_);
  NodeId p = data->producer;
  auto fail_role = [&](const std::vector<int32_t>& pair_idxs) {
    for (int32_t pi : pair_idxs) {
      const PairPlacement& pl = placements_[pi];
      if (!pl.at_base && pl.join_node == j) {
        FailoverPairToBase(pl.pair);
      }
    }
  };
  if (data->as_s) fail_role(nodes_[p].s_pairs);
  if (data->as_t) fail_role(nodes_[p].t_pairs);
}

}  // namespace join
}  // namespace aspen
