#include "join/medium.h"

#include <cstdio>
#include <string>

#include "common/logging.h"

namespace aspen {
namespace join {

SharedMedium::SharedMedium(const net::Topology* topology,
                           net::NetworkOptions options)
    : topology_(topology),
      net_(topology, options),
      primary_(routing::RoutingTree::Build(*topology, 0)) {
  net_.set_parent_resolver(&primary_);
  net_.set_delivery_handler([this](const net::Message& m, net::NodeId at) {
    auto it = executors_.find(m.query_id);
    if (it != executors_.end()) it->second->OnDeliverMsg(m, at);
  });
  net_.set_drop_handler(
      [this](const net::Message& m, net::NodeId at, net::NodeId next) {
        auto it = executors_.find(m.query_id);
        if (it != executors_.end()) it->second->OnDrop(m, at, next);
      });
  net_.set_snoop_handler([this](const net::Message& m, net::NodeId snooper,
                                net::NodeId from, net::NodeId to) {
    auto it = executors_.find(m.query_id);
    if (it != executors_.end()) it->second->OnSnoop(m, snooper, from, to);
  });
}

Result<JoinExecutor*> SharedMedium::TryAddQuery(
    const workload::Workload* workload, ExecutorOptions options) {
  if (workload == nullptr) {
    return Status::InvalidArgument("TryAddQuery: null workload");
  }
  if (&workload->topology() != topology_) {
    return Status::InvalidArgument(
        "TryAddQuery: workload is over a different topology than the medium");
  }
  int interval = workload->join_query().window.sample_interval;
  if (sched_ != nullptr && sched_->sample_interval() != interval) {
    return Status::InvalidArgument(
        "TryAddQuery: sample_interval " + std::to_string(interval) +
        " mismatches the medium's scheduler (" +
        std::to_string(sched_->sample_interval()) +
        "); all queries on one medium share the sampling clock");
  }
  if (sched_ == nullptr) {
    sched_ = std::make_unique<sim::CycleScheduler>(&net_, interval);
  }
  int id = next_query_id_++;
  auto exec = std::make_unique<JoinExecutor>(workload, options, &net_, id);
  JoinExecutor* out = exec.get();
  sched_->Attach(out);
  executors_.emplace(id, std::move(exec));
  return out;
}

JoinExecutor* SharedMedium::AddQuery(const workload::Workload* workload,
                                     ExecutorOptions options) {
  auto exec = TryAddQuery(workload, options);
  if (!exec.ok()) {
    std::fprintf(stderr, "[aspen] AddQuery: %s\n",
                 exec.status().ToString().c_str());
  }
  ASPEN_CHECK(exec.ok());
  return *exec;
}

Status SharedMedium::InitiateAll() {
  for (auto& [id, exec] : executors_) {
    ASPEN_RETURN_NOT_OK(exec->Initiate());
  }
  // Executors must not leave a dangling resolver behind.
  net_.set_parent_resolver(&primary_);
  return Status::OK();
}

Status SharedMedium::RunCycles(int n) {
  if (executors_.empty()) {
    return Status::FailedPrecondition("SharedMedium has no queries");
  }
  return sched_->RunCycles(n);
}

}  // namespace join
}  // namespace aspen
