#include "join/medium.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/logging.h"
#include "query/parser.h"
#include "sim/sharded_scheduler.h"

namespace aspen {
namespace join {

SharedMedium::SharedMedium(const net::Topology* topology,
                           net::NetworkOptions options,
                           MediumOptions medium_options)
    : topology_(topology),
      net_(topology, options),
      primary_(routing::RoutingTree::Build(*topology, 0)),
      medium_opts_(medium_options) {
  ASPEN_CHECK(medium_opts_.knobs.sample_interval > 0);
  ASPEN_CHECK(medium_opts_.knobs.shards >= 1);
  net_.set_parent_resolver(&primary_);
  // Dispatch by the dense executor table. A frame of a departed query (its
  // slot is null) terminates silently — the network still releases its
  // payload and charges its traffic to the departed id's counters, which
  // were already finalized into the ledger.
  net_.set_delivery_handler([this](const net::Message& m, net::NodeId at) {
    JoinExecutor* e = FindExecutor(m.query_id);
    if (e != nullptr) e->OnDeliverMsg(m, at);
  });
  net_.set_drop_handler(
      [this](const net::Message& m, net::NodeId at, net::NodeId next) {
        JoinExecutor* e = FindExecutor(m.query_id);
        if (e != nullptr) e->OnDrop(m, at, next);
      });
  net_.set_snoop_handler([this](const net::Message& m, net::NodeId snooper,
                                net::NodeId from, net::NodeId to) {
    JoinExecutor* e = FindExecutor(m.query_id);
    if (e != nullptr) e->OnSnoop(m, snooper, from, to);
  });
  // Eager scheduler: scenario drivers can attach before the first query.
  if (medium_opts_.knobs.shards > 1 || medium_opts_.knobs.pipeline_depth > 1) {
    sched_ = std::make_unique<sim::ShardedScheduler>(
        &net_, medium_opts_.knobs.sample_interval, medium_opts_.knobs.shards,
        medium_opts_.knobs.pipeline_depth);
  } else {
    sched_ = std::make_unique<sim::CycleScheduler>(
        &net_, medium_opts_.knobs.sample_interval);
  }
  // The medium participates in its own scheduler (ahead of every query) to
  // sweep retired routes at epoch boundaries; see OnDeliver.
  sched_->Attach(this);
  executors_.resize(1);  // slot 0 unused: query ids start at 1
  admitted_cycle_.resize(1, 0);
}

SharedMedium::~SharedMedium() = default;

JoinExecutor* SharedMedium::FindExecutor(int query_id) {
  if (query_id <= 0 ||
      static_cast<size_t>(query_id) >= executors_.size()) {
    return nullptr;
  }
  return executors_[query_id].get();
}

JoinExecutor& SharedMedium::executor(int query_id) {
  JoinExecutor* e = FindExecutor(query_id);
  ASPEN_CHECK(e != nullptr);
  return *e;
}

std::vector<int> SharedMedium::live_query_ids() const {
  std::vector<int> ids;
  ids.reserve(live_queries_);
  for (size_t id = 1; id < executors_.size(); ++id) {
    if (executors_[id] != nullptr) ids.push_back(static_cast<int>(id));
  }
  return ids;
}

int SharedMedium::AcquireQueryId() {
  // Prefer the smallest retired id whose straggler frames have drained —
  // deterministic (content-driven), and it keeps the executor table dense.
  for (size_t i = 0; i < retired_ids_.size(); ++i) {
    const int id = retired_ids_[i];
    if (net_.HasQueryTrafficInFlight(id)) continue;
    retired_ids_.erase(retired_ids_.begin() + i);
    // The departed tenant's counters live on only in the ledger.
    net_.stats().ResetQuery(id);
    return id;
  }
  const int id = next_query_id_++;
  if (static_cast<size_t>(id) >= executors_.size()) {
    executors_.resize(id + 1);
    admitted_cycle_.resize(id + 1, 0);
  }
  return id;
}

Result<JoinExecutor*> SharedMedium::TryAddQuery(
    const workload::Workload* workload, ExecutorOptions options) {
  if (workload == nullptr) {
    return Status::InvalidArgument("TryAddQuery: null workload");
  }
  if (&workload->topology() != topology_) {
    return Status::InvalidArgument(
        "TryAddQuery: workload is over a different topology than the medium");
  }
  const int interval = workload->join_query().window.sample_interval;
  if (sched_->sample_interval() != interval) {
    return Status::InvalidArgument(
        "TryAddQuery: sample_interval " + std::to_string(interval) +
        " mismatches the medium's scheduler (" +
        std::to_string(sched_->sample_interval()) +
        ", fixed by MediumOptions at construction); all queries on one "
        "medium share the sampling clock");
  }
  const int id = AcquireQueryId();
  auto exec = std::make_unique<JoinExecutor>(workload, options, &net_, id,
                                             medium_opts_.knobs.shards);
  JoinExecutor* out = exec.get();
  sched_->Attach(out);
  executors_[id] = std::move(exec);
  admitted_cycle_[id] = sched_->cycle();
  ++live_queries_;
  ++total_admitted_;
  return out;
}

Result<JoinExecutor*> SharedMedium::TryAddQuery(const QuerySpec& spec) {
  ASPEN_ASSIGN_OR_RETURN(query::JoinQuery q, query::ParseQuery(spec.sql));
  ASPEN_ASSIGN_OR_RETURN(
      workload::Workload wl,
      workload::Workload::FromQuery(topology_, std::move(q), spec.params,
                                    spec.seed));
  auto owned = std::make_unique<workload::Workload>(std::move(wl));
  // Admission goes through the one validated entry point; on failure the
  // parsed workload dies here and nothing is registered.
  ASPEN_ASSIGN_OR_RETURN(JoinExecutor * exec,
                         TryAddQuery(owned.get(), spec.options));
  owned_workloads_.emplace_back(exec->query_id(), std::move(owned));
  return exec;
}

JoinExecutor* SharedMedium::AddQuery(const workload::Workload* workload,
                                     ExecutorOptions options) {
  auto exec = TryAddQuery(workload, options);
  if (!exec.ok()) {
    ASPEN_LOG_ERROR("AddQuery: " + exec.status().ToString());
  }
  ASPEN_CHECK_OK(exec.status());
  return *exec;
}

Status SharedMedium::RemoveQuery(int query_id) {
  JoinExecutor* exec = FindExecutor(query_id);
  if (exec == nullptr) {
    return Status::NotFound("RemoveQuery: no live query with id " +
                            std::to_string(query_id));
  }
  // Finalize per-query metrics before teardown mutates anything. A query
  // that was admitted but never initiated never ran: it gets no ledger
  // entry (admission-rollback paths would otherwise record phantom
  // departures).
  if (exec->initiated()) {
    QueryRecord rec;
    rec.query_id = query_id;
    rec.admitted_cycle = admitted_cycle_[query_id];
    rec.removed_cycle = sched_->cycle();
    rec.stats = exec->Stats();
    ledger_.push_back(std::move(rec));
  }
  ASPEN_RETURN_NOT_OK(exec->Shutdown());
  sched_->Detach(exec);
  executors_[query_id].reset();
  // A workload the medium built for this query (QuerySpec admission) dies
  // with it — after the executor, which borrowed it.
  for (size_t i = 0; i < owned_workloads_.size(); ++i) {
    if (owned_workloads_[i].first == query_id) {
      owned_workloads_.erase(owned_workloads_.begin() + i);
      break;
    }
  }
  retired_ids_.insert(
      std::lower_bound(retired_ids_.begin(), retired_ids_.end(), query_id),
      query_id);
  --live_queries_;
  return Status::OK();
}

Status SharedMedium::InitiateAll() {
  for (auto& exec : executors_) {
    if (exec == nullptr || exec->initiated()) continue;
    ASPEN_RETURN_NOT_OK(exec->Initiate());
  }
  // Executors must not leave a dangling resolver behind.
  net_.set_parent_resolver(&primary_);
  return Status::OK();
}

Status SharedMedium::RunCycles(int n) {
  if (live_queries_ == 0 && !medium_opts_.allow_idle) {
    return Status::FailedPrecondition("SharedMedium has no queries");
  }
  return sched_->RunCycles(n);
}

Status SharedMedium::OnSample(int cycle) {
  (void)cycle;
  return Status::OK();
}

Status SharedMedium::OnDeliver(int cycle) {
  (void)cycle;
  // The medium's deliver hook runs on the scheduler thread.
  common::SequentialPhaseScope seq;
  // Epoch boundary check: the medium's deliver hook runs right after the
  // transmit phase, before any query's deliver emits new result frames. If
  // no frame is in flight, nothing can reference a retired route — sweep.
  // (Under loss the transmit window may end with stragglers; the sweep
  // simply waits for a later quiet observation.)
  if (!net_.HasTrafficInFlight()) net_.routes().SweepRetired();
  return Status::OK();
}

Status SharedMedium::OnLearn(int cycle) {
  (void)cycle;
  return Status::OK();
}

}  // namespace join
}  // namespace aspen
