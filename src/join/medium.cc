#include "join/medium.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

#include "common/logging.h"
#include "query/parser.h"
#include "sim/sharded_scheduler.h"

namespace aspen {
namespace join {

SharedMedium::SharedMedium(const net::Topology* topology,
                           net::NetworkOptions options,
                           MediumOptions medium_options)
    : topology_(topology),
      net_(topology, options),
      primary_(routing::RoutingTree::Build(*topology, 0)),
      medium_opts_(medium_options) {
  ASPEN_CHECK(medium_opts_.knobs.sample_interval > 0);
  ASPEN_CHECK(medium_opts_.knobs.shards >= 1);
  net_.set_parent_resolver(&primary_);
  // Dispatch by the dense executor table. A frame of a departed query (its
  // slot is null) terminates silently — the network still releases its
  // payload and charges its traffic to the departed id's counters, which
  // were already finalized into the ledger.
  net_.set_delivery_handler([this](const net::Message& m, net::NodeId at) {
    JoinExecutor* e = FindExecutor(m.query_id);
    if (e != nullptr) e->OnDeliverMsg(m, at);
  });
  net_.set_drop_handler(
      [this](const net::Message& m, net::NodeId at, net::NodeId next) {
        JoinExecutor* e = FindExecutor(m.query_id);
        if (e != nullptr) e->OnDrop(m, at, next);
      });
  net_.set_snoop_handler([this](const net::Message& m, net::NodeId snooper,
                                net::NodeId from, net::NodeId to) {
    JoinExecutor* e = FindExecutor(m.query_id);
    if (e != nullptr) e->OnSnoop(m, snooper, from, to);
  });
  // Eager scheduler: scenario drivers can attach before the first query.
  if (medium_opts_.knobs.shards > 1 || medium_opts_.knobs.pipeline_depth > 1) {
    sched_ = std::make_unique<sim::ShardedScheduler>(
        &net_, medium_opts_.knobs.sample_interval, medium_opts_.knobs.shards,
        medium_opts_.knobs.pipeline_depth);
  } else {
    sched_ = std::make_unique<sim::CycleScheduler>(
        &net_, medium_opts_.knobs.sample_interval);
  }
  // The medium participates in its own scheduler (ahead of every query) to
  // sweep retired routes at epoch boundaries; see OnDeliver.
  sched_->Attach(this);
  executors_.resize(1);  // slot 0 unused: query ids start at 1
  admitted_cycle_.resize(1, 0);
}

SharedMedium::~SharedMedium() = default;

JoinExecutor* SharedMedium::FindExecutor(int query_id) {
  if (query_id <= 0 ||
      static_cast<size_t>(query_id) >= executors_.size()) {
    return nullptr;
  }
  return executors_[query_id].get();
}

JoinExecutor& SharedMedium::executor(int query_id) {
  JoinExecutor* e = FindExecutor(query_id);
  ASPEN_CHECK(e != nullptr);
  return *e;
}

std::vector<int> SharedMedium::live_query_ids() const {
  std::vector<int> ids;
  ids.reserve(live_queries_);
  for (size_t id = 1; id < executors_.size(); ++id) {
    if (executors_[id] != nullptr) ids.push_back(static_cast<int>(id));
  }
  return ids;
}

int SharedMedium::AcquireQueryId() {
  // Prefer the smallest retired id whose straggler frames have drained —
  // deterministic (content-driven), and it keeps the executor table dense.
  for (size_t i = 0; i < retired_ids_.size(); ++i) {
    const int id = retired_ids_[i];
    if (net_.HasQueryTrafficInFlight(id)) continue;
    retired_ids_.erase(retired_ids_.begin() + i);
    // The departed tenant's counters live on only in the ledger.
    net_.stats().ResetQuery(id);
    return id;
  }
  const int id = next_query_id_++;
  if (static_cast<size_t>(id) >= executors_.size()) {
    executors_.resize(id + 1);
    admitted_cycle_.resize(id + 1, 0);
  }
  return id;
}

Result<JoinExecutor*> SharedMedium::TryAddQuery(
    const workload::Workload* workload, ExecutorOptions options) {
  if (workload == nullptr) {
    return Status::InvalidArgument("TryAddQuery: null workload");
  }
  if (&workload->topology() != topology_) {
    return Status::InvalidArgument(
        "TryAddQuery: workload is over a different topology than the medium");
  }
  const int interval = workload->join_query().window.sample_interval;
  if (sched_->sample_interval() != interval) {
    return Status::InvalidArgument(
        "TryAddQuery: sample_interval " + std::to_string(interval) +
        " mismatches the medium's scheduler (" +
        std::to_string(sched_->sample_interval()) +
        ", fixed by MediumOptions at construction); all queries on one "
        "medium share the sampling clock");
  }
  const int id = AcquireQueryId();
  auto exec = std::make_unique<JoinExecutor>(workload, options, &net_, id,
                                             medium_opts_.knobs.shards);
  JoinExecutor* out = exec.get();
  out->medium_ = this;  // placement-sharing hooks (tree_mode == kShared)
  sched_->Attach(out);
  executors_[id] = std::move(exec);
  admitted_cycle_[id] = sched_->cycle();
  ++live_queries_;
  ++total_admitted_;
  return out;
}

Result<JoinExecutor*> SharedMedium::TryAddQuery(const QuerySpec& spec) {
  ASPEN_ASSIGN_OR_RETURN(query::JoinQuery q, query::ParseQuery(spec.sql));
  ASPEN_ASSIGN_OR_RETURN(
      workload::Workload wl,
      workload::Workload::FromQuery(topology_, std::move(q), spec.params,
                                    spec.seed));
  auto owned = std::make_unique<workload::Workload>(std::move(wl));
  // Admission goes through the one validated entry point; on failure the
  // parsed workload dies here and nothing is registered.
  ASPEN_ASSIGN_OR_RETURN(JoinExecutor * exec,
                         TryAddQuery(owned.get(), spec.options));
  owned_workloads_.emplace_back(exec->query_id(), std::move(owned));
  return exec;
}

JoinExecutor* SharedMedium::AddQuery(const workload::Workload* workload,
                                     ExecutorOptions options) {
  auto exec = TryAddQuery(workload, options);
  if (!exec.ok()) {
    ASPEN_LOG_ERROR("AddQuery: " + exec.status().ToString());
  }
  ASPEN_CHECK_OK(exec.status());
  return *exec;
}

Status SharedMedium::RemoveQuery(int query_id) {
  JoinExecutor* exec = FindExecutor(query_id);
  if (exec == nullptr) {
    return Status::NotFound("RemoveQuery: no live query with id " +
                            std::to_string(query_id));
  }
  // Finalize per-query metrics before teardown mutates anything. A query
  // that was admitted but never initiated never ran: it gets no ledger
  // entry (admission-rollback paths would otherwise record phantom
  // departures).
  if (exec->initiated()) {
    QueryRecord rec;
    rec.query_id = query_id;
    rec.admitted_cycle = admitted_cycle_[query_id];
    rec.removed_cycle = sched_->cycle();
    rec.stats = exec->Stats();
    ledger_.push_back(std::move(rec));
  }
  // Sharing detach/promotion must run before Shutdown: a promoted
  // subscriber re-references the departing owner's routes and copies its
  // window state while the owner still holds them — no retirement window
  // opens, and nothing is lost.
  DetachShared(query_id);
  ASPEN_RETURN_NOT_OK(exec->Shutdown());
  sched_->Detach(exec);
  executors_[query_id].reset();
  // A workload the medium built for this query (QuerySpec admission) dies
  // with it — after the executor, which borrowed it.
  for (size_t i = 0; i < owned_workloads_.size(); ++i) {
    if (owned_workloads_[i].first == query_id) {
      owned_workloads_.erase(owned_workloads_.begin() + i);
      break;
    }
  }
  retired_ids_.insert(
      std::lower_bound(retired_ids_.begin(), retired_ids_.end(), query_id),
      query_id);
  --live_queries_;
  return Status::OK();
}

Status SharedMedium::InitiateAll() {
  for (auto& exec : executors_) {
    if (exec == nullptr || exec->initiated()) continue;
    ASPEN_RETURN_NOT_OK(exec->Initiate());
  }
  // Executors must not leave a dangling resolver behind.
  net_.set_parent_resolver(&primary_);
  return Status::OK();
}

Status SharedMedium::RunCycles(int n) {
  if (live_queries_ == 0 && !medium_opts_.allow_idle) {
    return Status::FailedPrecondition("SharedMedium has no queries");
  }
  return sched_->RunCycles(n);
}

// ---- cross-query placement sharing ---------------------------------------------

uint64_t SharedMedium::FingerprintPair(const JoinExecutor& exec,
                                       const PairKey& pair) const {
  // Two queries share a pair's evaluation iff one computation provably
  // serves both: the fingerprint covers everything that shapes results —
  // the normalized predicate text, window shape, workload identity (seed
  // and generation parameters drive the sample stream), algorithm and its
  // feature/placement options, and the pair key itself.
  uint64_t h = 0xCBF29CE484222325ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001B3ULL;
  };
  auto mix_double = [&mix](double d) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(d), "double is 64-bit");
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  auto mix_str = [&mix](const std::string& s) {
    for (char c : s) mix(static_cast<uint8_t>(c));
    mix(0x1FFULL);  // terminator: no concatenation ambiguity
  };
  const workload::Workload& wl = *exec.workload_;
  const query::JoinQuery& q = wl.join_query();
  mix_str(q.where != nullptr ? q.where->ToString() : std::string());
  mix(static_cast<uint64_t>(q.window.size));
  mix(static_cast<uint64_t>(q.window.sample_interval));
  mix(q.window.time_based ? 1 : 0);
  mix(wl.seed());
  const ExecutorOptions& o = exec.opts_;
  mix_str(AlgorithmName(o.algorithm, o.features));
  mix_double(o.assumed.sigma_s);
  mix_double(o.assumed.sigma_t);
  mix_double(o.assumed.sigma_st);
  mix(o.oracle ? 1 : 0);
  mix(static_cast<uint64_t>(o.summary_type));
  mix(o.learning ? 1 : 0);
  mix(static_cast<uint64_t>(o.num_trees));
  mix(o.mesh_mode ? 1 : 0);
  mix_double(o.loss_prob);
  mix(static_cast<uint64_t>(pair.s));
  mix(static_cast<uint64_t>(pair.t));
  return h;
}

int32_t SharedMedium::FindSharedEntry(uint64_t fp, const PairKey& pair) const {
  auto it = std::lower_bound(
      shared_index_.begin(), shared_index_.end(),
      std::make_pair(fp, static_cast<int32_t>(-1)));
  for (; it != shared_index_.end() && it->first == fp; ++it) {
    const SharedEntry& se = shared_entries_[it->second];
    if (se.owner != 0 && se.pair == pair) return it->second;
  }
  return -1;
}

int32_t SharedMedium::AllocSharedEntry() {
  if (!free_shared_entries_.empty()) {
    const int32_t e = free_shared_entries_.back();
    free_shared_entries_.pop_back();
    return e;
  }
  shared_entries_.emplace_back();
  return static_cast<int32_t>(shared_entries_.size() - 1);
}

void SharedMedium::FreeSharedEntry(int32_t e) {
  SharedEntry& se = shared_entries_[e];
  auto it = std::lower_bound(shared_index_.begin(), shared_index_.end(),
                             std::make_pair(se.fp, e));
  if (it != shared_index_.end() && it->first == se.fp && it->second == e) {
    shared_index_.erase(it);
  }
  se.owner = 0;
  se.fp = 0;
  se.subscribers.clear();
  free_shared_entries_.push_back(e);
}

int SharedMedium::num_shared_placements() const {
  int n = 0;
  for (const SharedEntry& se : shared_entries_) {
    if (se.owner != 0 && !se.subscribers.empty()) ++n;
  }
  return n;
}

void SharedMedium::ClaimPairs(JoinExecutor* exec) {
  const int qid = exec->query_id_;
  for (size_t i = 0; i < exec->placements_.size(); ++i) {
    JoinExecutor::PairPlacement& pl = exec->placements_[i];
    const uint64_t fp = FingerprintPair(*exec, pl.pair);
    const int32_t found = FindSharedEntry(fp, pl.pair);
    if (found >= 0) {
      SharedEntry& se = shared_entries_[found];
      JoinExecutor* owner = FindExecutor(se.owner);
      ASPEN_CHECK(owner != nullptr && owner->initiated());
      se.subscribers.insert(std::lower_bound(se.subscribers.begin(),
                                             se.subscribers.end(), qid),
                            qid);
      pl.shared_owner = se.owner;
      exec->SuppressSharedPair(static_cast<int32_t>(i));
      JoinExecutor::PairPlacement* opl = owner->MutablePlacement(pl.pair);
      ASPEN_CHECK(opl != nullptr);
      if (opl->shared_entry < 0) {
        opl->shared_entry = found;
        ++owner->num_fanout_pairs_;
      }
    } else {
      const int32_t e = AllocSharedEntry();
      SharedEntry& se = shared_entries_[e];
      se.fp = fp;
      se.pair = pl.pair;
      se.owner = qid;
      se.subscribers.clear();
      shared_index_.insert(std::lower_bound(shared_index_.begin(),
                                            shared_index_.end(),
                                            std::make_pair(fp, e)),
                           {fp, e});
    }
  }
}

void SharedMedium::FanOutSharedResult(int32_t entry, int count,
                                      int sample_cycle) {
  const SharedEntry& se = shared_entries_[entry];
  for (int qid : se.subscribers) {
    JoinExecutor* sub = executors_[qid].get();
    if (sub != nullptr) sub->AccountSharedResult(count, sample_cycle);
  }
}

void SharedMedium::DetachShared(int query_id) {
  if (shared_entries_.empty()) return;
  JoinExecutor* dying = FindExecutor(query_id);
  for (size_t e = 0; e < shared_entries_.size(); ++e) {
    SharedEntry& se = shared_entries_[e];
    if (se.owner == 0) continue;
    if (se.owner == query_id) {
      if (se.subscribers.empty()) {
        FreeSharedEntry(static_cast<int32_t>(e));
        continue;
      }
      // Promote the smallest subscriber: it adopts the departing owner's
      // placement geometry, route references and window contents, so the
      // shared stream continues without a gap. Promotion traffic (tree
      // rebuilds) is charged to the promoted query.
      const int promote = se.subscribers.front();
      se.subscribers.erase(se.subscribers.begin());
      JoinExecutor* np = FindExecutor(promote);
      ASPEN_CHECK(np != nullptr && dying != nullptr);
      {
        net::TrafficStats::QueryScope scope(&net_.stats(), promote);
        np->AdoptSharedPlacement(dying, se.pair);
      }
      // Adoption just restored the pair into np's per-node pair lists —
      // state the pipelined sample stage reads. Any slab prestaged for np
      // before this point was computed while the pair was still
      // suppressed; drop it so the affected cycles re-stage and the
      // promotion stays byte-identical at every pipeline depth.
      sched_->InvalidateStaged(np);
      se.owner = promote;
      if (!se.subscribers.empty()) {
        JoinExecutor::PairPlacement* npl = np->MutablePlacement(se.pair);
        ASPEN_CHECK(npl != nullptr);
        npl->shared_entry = static_cast<int32_t>(e);
        ++np->num_fanout_pairs_;
        for (int qid : se.subscribers) {
          JoinExecutor* sub = FindExecutor(qid);
          if (sub != nullptr) {
            JoinExecutor::PairPlacement* spl = sub->MutablePlacement(se.pair);
            if (spl != nullptr) spl->shared_owner = promote;
          }
        }
      }
    } else {
      auto it = std::lower_bound(se.subscribers.begin(), se.subscribers.end(),
                                 query_id);
      if (it != se.subscribers.end() && *it == query_id) {
        se.subscribers.erase(it);
        if (se.subscribers.empty()) {
          // Sole ownership restored: the owner stops fanning out.
          JoinExecutor* owner = FindExecutor(se.owner);
          if (owner != nullptr) {
            JoinExecutor::PairPlacement* opl =
                owner->MutablePlacement(se.pair);
            if (opl != nullptr && opl->shared_entry >= 0) {
              opl->shared_entry = -1;
              --owner->num_fanout_pairs_;
            }
          }
        }
      }
    }
  }
}

Status SharedMedium::OnSample(int cycle) {
  (void)cycle;
  return Status::OK();
}

Status SharedMedium::OnDeliver(int cycle) {
  (void)cycle;
  // The medium's deliver hook runs on the scheduler thread.
  common::SequentialPhaseScope seq;
  // Epoch boundary check: the medium's deliver hook runs right after the
  // transmit phase, before any query's deliver emits new result frames. If
  // no frame is in flight, nothing can reference a retired route — sweep.
  // (Under loss the transmit window may end with stragglers; the sweep
  // simply waits for a later quiet observation.)
  if (!net_.HasTrafficInFlight()) net_.routes().SweepRetired();
  return Status::OK();
}

Status SharedMedium::OnLearn(int cycle) {
  (void)cycle;
  return Status::OK();
}

}  // namespace join
}  // namespace aspen
