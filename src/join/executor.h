// The join executor: initiates (explores, optimizes, places join nodes) and
// then drives windowed join execution over the simulated network for any of
// the paper's algorithms. One executor = one query on one workload.
//
// All node-local state (join windows, counters, multicast trees) lives in
// maps keyed by the node that owns it; the executor is the single-process
// embodiment of the distributed protocol, with every message the protocol
// would send charged through the network simulator.

#ifndef ASPEN_JOIN_EXECUTOR_H_
#define ASPEN_JOIN_EXECUTOR_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/status.h"
#include "join/pair_state.h"
#include "join/payloads.h"
#include "join/types.h"
#include "net/network.h"
#include "opt/cost_model.h"
#include "opt/group.h"
#include "routing/content_address.h"
#include "routing/multi_tree.h"
#include "routing/routing_tree.h"
#include "workload/workload.h"

namespace aspen {
namespace join {

/// \brief Runs one join query with one algorithm over one workload.
class JoinExecutor {
 public:
  /// `workload` must outlive the executor. Owns its own network.
  JoinExecutor(const workload::Workload* workload, ExecutorOptions options);

  /// \brief Attaches to a shared radio medium (see SharedMedium) instead of
  /// owning a network: messages are stamped with `query_id` and the medium
  /// dispatches deliveries back. The medium drives the cycle phases;
  /// RunCycles is unavailable on attached executors.
  JoinExecutor(const workload::Workload* workload, ExecutorOptions options,
               net::Network* shared_network, int query_id);

  ~JoinExecutor();

  JoinExecutor(const JoinExecutor&) = delete;
  JoinExecutor& operator=(const JoinExecutor&) = delete;

  /// \brief Runs initiation: routing substrate construction, exploration,
  /// cost-based placement, group optimization, multicast setup. Must be
  /// called exactly once before RunCycles.
  Status Initiate();

  /// \brief Executes `n` sampling cycles (each = window.sample_interval
  /// transmission cycles). May be called repeatedly to continue a run.
  /// Only valid on executors that own their network.
  Status RunCycles(int n);

  /// \brief Cycle phases for externally-driven execution (SharedMedium):
  /// Begin samples and submits producer data; the driver then steps the
  /// network; End applies arrivals, runs learning and advances the cycle.
  Status StepCycleBegin();
  Status StepCycleEnd();

  /// \brief Snapshot of the run's metrics so far.
  RunStats Stats() const;

  // ---- introspection & fault injection ------------------------------------

  net::Network& network() { return *net_; }
  const net::Network& network() const { return *net_; }
  int current_cycle() const { return cycle_; }
  uint64_t results() const { return results_; }
  uint64_t migrations() const { return migrations_; }

  /// All statically-joining pairs this executor serves.
  const std::vector<PairKey>& pairs() const { return pairs_; }

  /// \brief Placement of one pair (join node / at-base and the path used).
  struct PairPlacement {
    PairKey pair;
    bool at_base = true;
    net::NodeId join_node = 0;
    /// Exploration path s..t (empty for algorithms that do not explore).
    std::vector<net::NodeId> path;
    /// Index of join_node within path (-1 if not path-based).
    int path_index = -1;
    /// Estimates the current placement was computed with (learning compares
    /// fresh estimates against these).
    workload::SelectivityParams placed_with;
    /// The pairwise cost-model decision, before any group (MPO) override.
    bool pairwise_at_base = true;
    bool failed_over = false;
  };
  const std::map<PairKey, PairPlacement>& placements() const {
    return placements_;
  }

  /// Kills a node (it stops forwarding/acking); Section 7's recovery logic
  /// reacts through the drop handler.
  void FailNode(net::NodeId id) { net_->FailNode(id); }

 private:
  struct Arrival {
    net::Message msg;
    net::NodeId at;
  };

  // -- initiation ------------------------------------------------------------
  Status InitCommon();
  Status InitNaive();
  Status InitBase();
  Status InitYang07();
  Status InitGht();
  Status InitInnet();
  /// Explores from every S producer and returns placements per pair.
  Status ExplorePairs();
  void EnsureGroups();
  void DecideGroupFor(const opt::JoinGroup& group, bool charge_traffic);
  void RunGroupOpt(bool charge_traffic);
  void BuildMulticastRoutes(bool charge_traffic);

  // -- per-cycle data plane ----------------------------------------------------
  void SampleAndSend(int cycle);
  void SendToBase(net::NodeId p, const query::Tuple& t, int cycle, bool as_s,
                  bool as_t);
  void SendInnet(net::NodeId p, const query::Tuple& t, int cycle, bool as_s,
                 bool as_t);
  void SendGht(net::NodeId p, const query::Tuple& t, int cycle, bool as_s,
               bool as_t);
  void SendYang(net::NodeId p, const query::Tuple& t, int cycle, bool as_s,
                bool as_t);

  std::shared_ptr<DataPayload> MakeData(net::NodeId p, const query::Tuple& t,
                                        int cycle, bool as_s, bool as_t);

  // -- arrival processing -------------------------------------------------------
  void OnDeliver(const net::Message& msg, net::NodeId at);
  void OnDrop(const net::Message& msg, net::NodeId at, net::NodeId next);
  void OnSnoop(const net::Message& msg, net::NodeId snooper, net::NodeId from,
               net::NodeId to);
  /// Applies buffered arrivals with deterministic ordering (S side first).
  void ProcessArrivals(int cycle);
  void ApplyData(net::NodeId at, const DataPayload& data, int cycle);
  void EmitResults(net::NodeId at, const PairKey& pair, int count,
                   int sample_cycle);
  void DeliverResultAtBase(int count, int sample_cycle);

  PairState& StateAt(net::NodeId at, const PairKey& pair);
  PairState* FindState(net::NodeId at, const PairKey& pair);

  // -- learning & failure -------------------------------------------------------
  void RunLearning(int cycle);
  /// Moves a pair's windows between join locations, charging the transfer.
  void MoveState(const PairKey& pair, net::NodeId from, net::NodeId to,
                 bool charge);
  void MigratePair(PairPlacement* placement, bool new_at_base,
                   net::NodeId new_join, int new_index);
  void FailoverPairToBase(const PairKey& pair, net::NodeId producer);

  // -- helpers -------------------------------------------------------------------
  const routing::RoutingTree& primary_tree() const;
  int DepthOf(net::NodeId id) const;
  opt::PairCostInputs AssumedCost() const;
  /// Estimates the optimizer uses for one pair: `assumed`, or the true
  /// per-node parameters in oracle mode.
  workload::SelectivityParams AssumedFor(const PairKey& pair) const;
  /// Charges a control message of `bytes` along `path` (computed plane).
  void ChargeAlongPath(const std::vector<net::NodeId>& path, int bytes,
                       net::MessageKind kind);
  /// Producer's hop distance to its pair's join node along the stored path.
  static int HopsOnPath(const PairPlacement& p, bool from_s);
  double ComputeDeltaCp(net::NodeId member, bool as_s,
                        const workload::SelectivityParams& est) const;
  void ApplyGroupDecision(const opt::JoinGroup& group, bool in_network);
  void RebuildProducerRoute(net::NodeId p, bool as_s, bool charge_traffic);

  /// Stamps the executor's query id and submits (unicast / multicast).
  Result<uint64_t> SubmitToNet(net::Message msg);
  Result<uint64_t> SubmitMcastToNet(
      net::Message msg, std::shared_ptr<const net::MulticastRoute> route);

  friend class SharedMedium;

  const workload::Workload* workload_;
  ExecutorOptions opts_;
  std::unique_ptr<net::Network> owned_net_;
  net::Network* net_ = nullptr;
  int query_id_ = 0;
  std::unique_ptr<routing::RoutingTree> single_tree_;  // non-Innet algorithms
  std::unique_ptr<routing::MultiTree> multi_;          // Innet substrate
  std::unique_ptr<routing::GeoHash> geo_;
  std::unique_ptr<routing::DhtRing> dht_;
  int routed_attr_ = -1;  ///< MultiTree index of the derived join attribute

  std::vector<net::NodeId> s_nodes_, t_nodes_;
  std::vector<PairKey> pairs_;
  std::map<net::NodeId, std::vector<PairKey>> s_pairs_, t_pairs_;
  std::map<PairKey, PairPlacement> placements_;
  std::map<std::pair<net::NodeId, PairKey>, PairState> states_;
  std::vector<opt::JoinGroup> groups_;
  std::map<PairKey, size_t> pair_group_;  ///< pair -> index into groups_
  int group_decision_seq_ = 0;

  /// Last w tuples each producer sent per role (window reconstruction on
  /// failover, Section 7).
  std::map<std::pair<net::NodeId, bool>, std::deque<query::Tuple>>
      recent_sent_;

  /// Multicast routes per (producer, role).
  std::map<std::pair<net::NodeId, bool>,
           std::shared_ptr<const net::MulticastRoute>>
      mcast_;
  /// Links discovered by path-collapse snooping, per producer.
  std::map<net::NodeId, std::set<std::pair<net::NodeId, net::NodeId>>>
      extra_links_;
  /// node -> producers whose data paths the node forwards (flow buffer).
  std::map<net::NodeId, std::set<net::NodeId>> flows_through_;

  std::vector<Arrival> arrivals_;
  /// Pairs already counted in this step (dedup for multi-role messages).
  int cycle_ = 0;
  uint64_t results_ = 0;
  double delay_sum_ = 0.0;
  double delay_max_ = 0.0;
  uint64_t migrations_ = 0;
  uint64_t failovers_ = 0;
  int init_latency_ = 0;
  bool initiated_ = false;
};

}  // namespace join
}  // namespace aspen

#endif  // ASPEN_JOIN_EXECUTOR_H_
