// The join executor: initiates (explores, optimizes, places join nodes) and
// then drives windowed join execution over the simulated network for any of
// the paper's algorithms. One executor = one query on one workload.
//
// The executor is a sim::CycleParticipant: the shared simulation kernel
// (sim::CycleScheduler) owns the clock and phase ordering, and the executor
// supplies the protocol logic for each phase. All node-local state (join
// windows, counters, multicast trees) lives in a contiguous per-node
// NodeState table indexed by NodeId; the executor is the single-process
// embodiment of the distributed protocol, with every message the protocol
// would send charged through the network simulator.

#ifndef ASPEN_JOIN_EXECUTOR_H_
#define ASPEN_JOIN_EXECUTOR_H_

#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "adapt/reopt.h"
#include "common/phase.h"
#include "common/status.h"
#include "join/node_state.h"
#include "join/pair_state.h"
#include "join/payloads.h"
#include "join/types.h"
#include "net/network.h"
#include "opt/cost_model.h"
#include "opt/group.h"
#include "routing/content_address.h"
#include "routing/multi_tree.h"
#include "routing/routing_tree.h"
#include "sim/cycle_scheduler.h"
#include "sim/mailbox.h"
#include "workload/workload.h"

namespace aspen {
namespace join {

class SharedMedium;

/// \brief Runs one join query with one algorithm over one workload.
///
/// The sample and deliver phases implement the sharded split (see
/// sim::ShardPhaseParticipant): sampling stages pure per-node work into
/// per-shard scratch and commits the submissions in node order; delivery
/// probes each shard's own join sites concurrently and replays deferred
/// result emissions in canonical (side, producer, arrival, pair) order.
/// The plain OnSample/OnDeliver hooks are exactly Begin + one full-range
/// shard pass + Commit, so sharded and sequential runs are byte-identical.
class JoinExecutor : public sim::CycleParticipant,
                     public sim::ShardPhaseParticipant {
 public:
  /// `workload` must outlive the executor. Owns its own network and cycle
  /// scheduler.
  JoinExecutor(const workload::Workload* workload, ExecutorOptions options);

  /// \brief Attaches to a shared radio medium (see SharedMedium) instead of
  /// owning a network: messages are stamped with `query_id` and the medium
  /// dispatches deliveries back. The medium's scheduler drives the cycle
  /// phases; RunCycles is unavailable on attached executors. `shards` is
  /// the medium scheduler's shard count (the executor sizes its per-shard
  /// scratch to match; 1 = unsharded).
  JoinExecutor(const workload::Workload* workload, ExecutorOptions options,
               net::Network* shared_network, int query_id, int shards = 1);

  ~JoinExecutor() override;

  JoinExecutor(const JoinExecutor&) = delete;
  JoinExecutor& operator=(const JoinExecutor&) = delete;

  /// \brief Runs initiation: routing substrate construction, exploration,
  /// cost-based placement, group optimization, multicast setup. Must be
  /// called exactly once before RunCycles.
  Status Initiate();

  /// \brief Executes `n` sampling cycles (each = window.sample_interval
  /// transmission cycles) on the owned scheduler. May be called repeatedly
  /// to continue a run. Only valid on executors that own their network.
  Status RunCycles(int n);

  /// \brief Tears the query down: drops buffered arrival payload
  /// references, flushes join windows and failover buffers, and releases
  /// every interned-route reference this query holds (send plans, relay
  /// routes, multicast trees), retiring the routes for the data plane's
  /// epoch-safe garbage collection. Idempotent; called by
  /// SharedMedium::RemoveQuery and by the destructor. After Shutdown the
  /// executor must not run further phases.
  Status Shutdown();

  /// \brief Snapshot of the run's metrics so far.
  RunStats Stats() const;

  // ---- introspection & fault injection ------------------------------------

  net::Network& network() { return *net_; }
  const net::Network& network() const { return *net_; }
  /// The owned cycle scheduler driving RunCycles (nullptr on
  /// medium-attached executors — attach scenario drivers to the medium's
  /// scheduler instead).
  sim::CycleScheduler* scheduler() { return sched_.get(); }
  int current_cycle() const { return cycle_; }
  uint64_t results() const { return results_; }
  uint64_t migrations() const { return migrations_; }
  int query_id() const { return query_id_; }
  bool initiated() const { return initiated_; }

  /// The continuous re-optimization controller: pass/migration counters at
  /// protocol granularity (planned() ticks at the announce cycle,
  /// completed() two cycles later — RunStats only carries the completions).
  const adapt::ReoptController& reopt() const { return reopt_; }

  /// All statically-joining pairs this executor serves.
  const std::vector<PairKey>& pairs() const { return pairs_; }

  /// \brief Placement of one pair (join node / at-base and the path used).
  struct PairPlacement {
    PairKey pair;
    bool at_base = true;
    net::NodeId join_node = 0;
    /// Exploration path s..t (empty for algorithms that do not explore).
    std::vector<net::NodeId> path;
    /// Index of join_node within path (-1 if not path-based).
    int path_index = -1;
    /// Estimates the current placement was computed with (learning compares
    /// fresh estimates against these).
    workload::SelectivityParams placed_with;
    /// The pairwise cost-model decision, before any group (MPO) override.
    bool pairwise_at_base = true;
    bool failed_over = false;
    /// Interned root->t distribution route (Yang+07 relay), built at init.
    net::RouteId route_from_root = net::kInvalidRoute;
    /// Cross-query placement sharing (tree_mode == kShared, attached to a
    /// medium). Subscriber side: the query id whose identical placement
    /// serves this pair (-1 = owned locally). A subscribed pair is removed
    /// from the node pair lists, so it samples, sends, probes and fails
    /// over nothing — results arrive through the owner's fan-out.
    int shared_owner = -1;
    /// Owner side: index into the medium's sharing registry once at least
    /// one subscriber rides this placement (-1 = sole consumer).
    int32_t shared_entry = -1;
  };

  /// All placements, sorted by pair key (contiguous; index with
  /// FindPlacement for a specific pair).
  const std::vector<PairPlacement>& placements() const { return placements_; }

  /// The placement of one pair, or nullptr if the pair is not served.
  const PairPlacement* FindPlacement(const PairKey& pair) const;

  /// Kills a node (it stops forwarding/acking); Section 7's recovery logic
  /// reacts through the drop handler.
  void FailNode(net::NodeId id) {
    // Fault injection is a sequential-phase event by definition.
    common::SequentialPhaseScope seq;
    net_->FailNode(id);
  }

 private:
  /// One buffered data arrival: the pooled payload `data` delivered at node
  /// `at` (the executor holds a payload reference until the deliver phase).
  /// Mailboxes are keyed by producer so the deliver phase applies arrivals
  /// in deterministic (producer, location) order.
  struct Arrival {
    net::NodeId at;
    net::PayloadHandle data;
  };

  // -- kernel phases (sim::CycleParticipant) ---------------------------------
  Status OnSample(int cycle) override;
  Status OnDeliver(int cycle) override;
  Status OnReoptimize(int cycle) override;
  Status OnLearn(int cycle) override;
  sim::ShardPhaseParticipant* sharded() override { return this; }

  // -- sharded phase split (sim::ShardPhaseParticipant) ----------------------
  void ConfigureSampleSlots(int slots) override;
  bool SampleStageReady() const override { return initiated_ && !shutdown_; }
  void OnSampleBegin(int cycle) override;
  /// The pure sample stage: batched filters + sampling of the shard's
  /// producers into the (shard, slot) slab. Reads only the workload (warm)
  /// and the shard's producer cache; failure filtering and the
  /// producer-local last-w rings moved to commit so a pipelined scheduler
  /// can run this for cycle N+1 during cycle N's transmit.
  void OnSampleStage(int cycle, int slot, int shard, net::NodeId begin,
                     net::NodeId end) ASPEN_REQUIRES_PIPELINE override;
  Status OnSampleCommit(int cycle, int slot) override;
  void OnDeliverBegin(int cycle) override;
  void OnDeliverShard(int cycle, int shard, net::NodeId begin,
                      net::NodeId end) override;
  Status OnDeliverCommit(int cycle) override;

  // -- initiation ------------------------------------------------------------
  Status InitCommon() ASPEN_REQUIRES_SEQUENTIAL;
  Status InitNaive() ASPEN_REQUIRES_SEQUENTIAL;
  Status InitBase() ASPEN_REQUIRES_SEQUENTIAL;
  Status InitYang07() ASPEN_REQUIRES_SEQUENTIAL;
  Status InitGht() ASPEN_REQUIRES_SEQUENTIAL;
  Status InitInnet() ASPEN_REQUIRES_SEQUENTIAL;
  /// Explores from every S producer and returns placements per pair.
  Status ExplorePairs() ASPEN_REQUIRES_SEQUENTIAL;
  void EnsureGroups() ASPEN_REQUIRES_SEQUENTIAL;
  void DecideGroupFor(const opt::JoinGroup& group, bool charge_traffic)
      ASPEN_REQUIRES_SEQUENTIAL;
  void RunGroupOpt(bool charge_traffic) ASPEN_REQUIRES_SEQUENTIAL;
  void BuildMulticastRoutes(bool charge_traffic) ASPEN_REQUIRES_SEQUENTIAL;

  // -- per-cycle data plane ----------------------------------------------------
  /// Rebuilds every producer's SendPlan (destinations + interned routes)
  /// from the placement table. Invoked lazily when `plans_dirty_`.
  void RebuildSendPlans() ASPEN_REQUIRES_SEQUENTIAL;
  void SendToBase(net::NodeId p, const query::Tuple& t, int cycle, bool as_s,
                  bool as_t) ASPEN_REQUIRES_SEQUENTIAL;
  void SendInnet(net::NodeId p, const query::Tuple& t, int cycle, bool as_s,
                 bool as_t) ASPEN_REQUIRES_SEQUENTIAL;
  void SendGht(net::NodeId p, const query::Tuple& t, int cycle, bool as_s,
               bool as_t) ASPEN_REQUIRES_SEQUENTIAL;
  void SendYang(net::NodeId p, const query::Tuple& t, int cycle, bool as_s,
                bool as_t) ASPEN_REQUIRES_SEQUENTIAL;

  /// Allocates a pooled DataPayload (one owned reference, transferred to
  /// the network on submit).
  net::PayloadHandle MakeData(net::NodeId p, const query::Tuple& t, int cycle,
                              bool as_s, bool as_t) ASPEN_REQUIRES_SEQUENTIAL;

  // -- arrival processing -------------------------------------------------------
  void OnDeliverMsg(const net::Message& msg, net::NodeId at);
  void OnDrop(const net::Message& msg, net::NodeId at, net::NodeId next);
  void OnSnoop(const net::Message& msg, net::NodeId snooper, net::NodeId from,
               net::NodeId to);
  void EmitResults(net::NodeId at, const PairKey& pair, int count,
                   int sample_cycle) ASPEN_REQUIRES_SEQUENTIAL;
  void DeliverResultAtBase(const PairKey& pair, int count, int sample_cycle)
      ASPEN_REQUIRES_SEQUENTIAL;

  // -- cross-query placement sharing (tree_mode == kShared on a medium) -------
  /// Books `count` results delivered through a sharing owner's fan-out
  /// into this query's result/delay accounting.
  void AccountSharedResult(int count, int sample_cycle)
      ASPEN_REQUIRES_SEQUENTIAL;
  /// Detaches placement index `pi` from the data plane: the pair leaves
  /// both producers' pair lists, so it never samples, plans, probes or
  /// fails over — the sharing owner's single evaluation serves it.
  void SuppressSharedPair(int32_t pi) ASPEN_REQUIRES_SEQUENTIAL;
  /// Promotion on owner removal: copies the departing owner's placement
  /// geometry (join node, path, routes) and window state for `pair` into
  /// this executor, restores the pair into the node pair lists and
  /// rebuilds the affected producer routes. Runs while the old owner
  /// still holds its route references, so no retirement window opens.
  void AdoptSharedPlacement(JoinExecutor* old_owner, const PairKey& pair)
      ASPEN_REQUIRES_SEQUENTIAL;

  PairState& StateAt(net::NodeId at, const PairKey& pair)
      ASPEN_REQUIRES_SEQUENTIAL;
  /// StateAt for concurrent shard passes: the touched site is recorded in
  /// the shard's scratch instead of the shared active-site list.
  PairState& StateAtShard(int shard, net::NodeId at, const PairKey& pair);
  PairState* FindState(net::NodeId at, const PairKey& pair);
  /// Registers `at` as a join site (deterministic state iteration order).
  void TouchSite(net::NodeId at) ASPEN_REQUIRES_SEQUENTIAL;
  /// Invokes fn(location, state) for every held state, (node, pair)
  /// ascending — the exact order the old global ordered map produced.
  template <typename Fn>
  void ForEachState(Fn&& fn) {
    for (net::NodeId at : active_sites_) {
      for (PairState& st : nodes_[at].states) fn(at, st);
    }
  }

  // -- learning & failure -------------------------------------------------------
  void RunLearning() ASPEN_REQUIRES_SEQUENTIAL;
  /// Moves a pair's windows between join locations, charging the transfer.
  void MoveState(const PairKey& pair, net::NodeId from, net::NodeId to,
                 bool charge) ASPEN_REQUIRES_SEQUENTIAL;
  void MigratePair(PairPlacement* placement, bool new_at_base,
                   net::NodeId new_join, int new_index)
      ASPEN_REQUIRES_SEQUENTIAL;
  // -- continuous re-optimization (Section 6 closed at runtime) ----------------
  /// One placement relocation in flight through the planned three-phase
  /// protocol: announced (producers notified, transfer route interned),
  /// transferring (window state shipped as a real kWindowTransfer message,
  /// send plans flipped at the next cycle boundary), complete (route
  /// reference released to the epoch GC). See DESIGN.md "Continuous
  /// re-optimization".
  struct PlannedMigration {
    PairKey pair;
    bool new_at_base = true;
    net::NodeId new_join = 0;
    int new_index = -1;
    /// Interned old-site -> new-site route the window transfer travels;
    /// holds one owner reference from announce until completion/abort.
    net::RouteId transfer_route = net::kInvalidRoute;
    uint8_t phase = 0;  ///< 0 = announced, 1 = transfer in flight
  };

  /// One re-optimization pass (reopt controller armed): re-estimates
  /// selectivities per held placement and, where the estimate diverged past
  /// the threshold, re-runs the pairwise cost model and announces a planned
  /// migration. Grouped pairs (Innet-g) reconcile through the MPO
  /// coordinator round instead, as in the learning path.
  void RunReopt() ASPEN_REQUIRES_SEQUENTIAL;
  /// Advances every in-flight planned migration by one phase.
  void AdvancePlannedMigrations() ASPEN_REQUIRES_SEQUENTIAL;
  /// Phase 2 of the protocol: takes the window state at the old site, ships
  /// its contents as a kWindowTransfer along the announced route and flips
  /// the placement. Returns false when the migration aborted (dead site,
  /// concurrent failover) and must be dropped.
  bool StartMigrationTransfer(PlannedMigration* m) ASPEN_REQUIRES_SEQUENTIAL;
  /// The in-flight planned migration for `pair`, or nullptr.
  PlannedMigration* FindMigration(const PairKey& pair);

  void FailoverPairToBase(const PairKey& pair) ASPEN_REQUIRES_SEQUENTIAL;
  /// Ships `producer`'s buffered last-w tuples for `pair` to the base.
  void SendWindowReplay(const PairKey& pair, net::NodeId producer, bool as_s)
      ASPEN_REQUIRES_SEQUENTIAL;
  /// Re-submits replays whose previous attempt was dropped (e.g. the dead
  /// join node also blocked the producer's tree path to the base; once the
  /// route heals — a recovery event — the retry gets through).
  void RetryPendingReplays() ASPEN_REQUIRES_SEQUENTIAL;

  // -- helpers -------------------------------------------------------------------
  PairPlacement* MutablePlacement(const PairKey& pair);
  const routing::RoutingTree& primary_tree() const;
  int DepthOf(net::NodeId id) const;
  opt::PairCostInputs AssumedCost() const;
  /// Estimates the optimizer uses for one pair: `assumed`, or the true
  /// per-node parameters in oracle mode.
  workload::SelectivityParams AssumedFor(const PairKey& pair) const;
  /// Charges a control message of `bytes` along `path` (computed plane).
  void ChargeAlongPath(const std::vector<net::NodeId>& path, int bytes,
                       net::MessageKind kind) ASPEN_REQUIRES_SEQUENTIAL;
  /// Producer's hop distance to its pair's join node along the stored path.
  static int HopsOnPath(const PairPlacement& p, bool from_s);
  /// The producer->join-node segment of a placement's path for one role:
  /// S walks path[0..path_index], T walks path[path_index..end] reversed.
  /// The single definition shared by send plans and multicast trees.
  static void RoleSegment(const PairPlacement& pl, bool role_s,
                          std::vector<net::NodeId>* seg);
  double ComputeDeltaCp(net::NodeId member, bool as_s,
                        const workload::SelectivityParams& est) const;
  void ApplyGroupDecision(const opt::JoinGroup& group, bool in_network)
      ASPEN_REQUIRES_SEQUENTIAL;
  void RebuildProducerRoute(net::NodeId p, bool as_s, bool charge_traffic)
      ASPEN_REQUIRES_SEQUENTIAL;
  /// The tree_mode == kShared variant: a KMB Steiner tree over (producer,
  /// destination set) alone, adopted from the RouteTable's destination-set
  /// index when a co-resident query already interned it.
  void RebuildSharedProducerRoute(net::NodeId p, bool charge_traffic)
      ASPEN_REQUIRES_SEQUENTIAL;

  /// Stamps the executor's query id and submits (unicast / multicast).
  Result<uint64_t> SubmitToNet(net::Message msg) ASPEN_REQUIRES_SEQUENTIAL;
  Result<uint64_t> SubmitMcastToNet(net::Message msg, net::McastId route)
      ASPEN_REQUIRES_SEQUENTIAL;

  /// Owner-reference bookkeeping for interned routes this query retains
  /// (no-ops on kInvalidRoute). Every cached RouteId/McastId — send-plan
  /// entries, placements' relay routes, per-node multicast trees — holds
  /// exactly one reference per field, released on rebuild or Shutdown.
  void RefRoute(net::RouteId id) ASPEN_REQUIRES_SEQUENTIAL;
  void UnrefRoute(net::RouteId id) ASPEN_REQUIRES_SEQUENTIAL;
  void RefMcast(net::McastId id) ASPEN_REQUIRES_SEQUENTIAL;
  void UnrefMcast(net::McastId id) ASPEN_REQUIRES_SEQUENTIAL;

  friend class SharedMedium;

  const workload::Workload* workload_;
  ExecutorOptions opts_;
  std::unique_ptr<net::Network> owned_net_;
  net::Network* net_ = nullptr;
  /// Drives owned-network runs; attached executors are driven by the
  /// medium's scheduler instead.
  std::unique_ptr<sim::CycleScheduler> sched_;
  int query_id_ = 0;
  /// The hosting medium when attached (placement-sharing fan-out hook);
  /// nullptr for owned-network executors.
  SharedMedium* medium_ = nullptr;
  /// Number of placements with shared_entry >= 0 — gates the fan-out
  /// lookup in DeliverResultAtBase so unshared queries pay nothing.
  int num_fanout_pairs_ = 0;
  std::unique_ptr<routing::RoutingTree> single_tree_;  // non-Innet algorithms
  std::unique_ptr<routing::MultiTree> multi_;          // Innet substrate
  std::unique_ptr<routing::GeoHash> geo_;
  std::unique_ptr<routing::DhtRing> dht_;
  int routed_attr_ = -1;  ///< MultiTree index of the derived join attribute

  std::vector<net::NodeId> s_nodes_, t_nodes_;
  std::vector<PairKey> pairs_;
  /// Placement table, sorted by pair key; NodeState pair lists hold indices
  /// into it, so the per-cycle dispatch is pure array indexing.
  std::vector<PairPlacement> placements_;
  /// Contiguous per-node state, indexed by NodeId.
  std::vector<NodeState> nodes_;
  /// Nodes currently holding at least one PairState, sorted ascending.
  std::vector<net::NodeId> active_sites_;
  std::vector<opt::JoinGroup> groups_;
  /// Placement index -> index into groups_ (-1 when ungrouped).
  std::vector<int32_t> pair_group_;
  int group_decision_seq_ = 0;
  /// Reused scratch for RunLearning's re-estimation pass, so a steady
  /// state where estimates keep drifting past the divergence threshold
  /// still allocates nothing once the vectors are warm.
  struct PlannedReestimate {
    PairKey pair;
    workload::SelectivityParams est;
  };
  std::vector<PlannedReestimate> reestimate_scratch_;
  std::vector<int32_t> affected_groups_scratch_;

  /// Typed payload pools on the network's data plane (shared by every
  /// executor on a medium). Not owned.
  net::TypedPool<DataPayload>* data_pool_ = nullptr;
  net::TypedPool<ResultPayload>* result_pool_ = nullptr;
  net::TypedPool<WindowTransferPayload>* window_pool_ = nullptr;

  /// One deferred EmitResults call of a deliver shard pass, with the
  /// canonical merge key (side, producer, arrival position, pair position)
  /// that reproduces the sequential emission order exactly.
  struct DeferredEmit {
    uint8_t phase = 0;  // 0 = S side, 1 = T side
    net::NodeId producer = -1;
    int32_t box_pos = 0;
    int32_t pair_pos = 0;
    net::NodeId at = -1;
    PairKey pair;
    int matches = 0;
    int sample_cycle = 0;
  };

  /// One slot of a shard's sample slab ring: everything one pure sample
  /// stage pass writes. With pipeline depth D each shard holds D slabs
  /// (slot = cycle mod D), so the stage of a future cycle and the commit
  /// of the current one touch disjoint storage.
  struct SampleSlab {
    /// PassFilters output, one bit per producer_ids entry.
    std::vector<uint64_t> s_bits, t_bits;
    /// Staged sends: flags bit 0 = send_s, bit 1 = send_t. Failed-node
    /// filtering happens at commit (failure state may change between a
    /// prestage and its commit; sampling a failed producer is pure and
    /// free of shared state, so staging it costs nothing).
    std::vector<net::NodeId> staged_ids;
    std::vector<uint8_t> staged_flags;
    std::vector<query::Tuple> staged_tuples;
    int staged_count = 0;
  };

  /// Everything one shard's sample/deliver passes stage.
  ///
  /// The sample stage runs the batched workload kernel: the shard's
  /// producers (cached — roles are fixed once Initiate has populated the
  /// pair lists) go through Workload::PassFilters as one batch, and only
  /// the passing ones are sampled, into pre-sized tuple slots that recycle
  /// their capacity. Staged arrays are parallel (ids/flags/tuples share an
  /// index) and submissions happen at commit, in node order. The deliver
  /// scratch is separate from the slabs so a deliver shard pass and an
  /// overlapped sample stage on the same shard touch disjoint fields.
  struct ShardScratch {
    /// Producers in [cached_begin, cached_end) holding an S or T role,
    /// ascending; role bit 0 = S, bit 1 = T.
    std::vector<net::NodeId> producer_ids;
    std::vector<uint8_t> producer_roles;
    net::NodeId cached_begin = -1;
    net::NodeId cached_end = -1;
    /// Sample slab ring, sized by ConfigureSampleSlots (default one slot).
    std::vector<SampleSlab> slabs = std::vector<SampleSlab>(1);
    std::vector<DeferredEmit> emits;
    std::vector<net::NodeId> touched_sites;
  };

  /// (Re)derives a shard's producer cache for its node range and pre-sizes
  /// the staging arrays to the worst case (every producer passes).
  void BuildProducerCache(ShardScratch* sc, net::NodeId begin,
                          net::NodeId end);

  std::vector<ShardScratch> scratch_;
  /// Slots per shard in the sample slab ring (== the hosting scheduler's
  /// pipeline depth; 1 everywhere else).
  int sample_slots_ = 1;
  /// Reused canonical-merge scratch for deferred emissions.
  std::vector<const DeferredEmit*> emit_merge_;
  /// Set whenever a placement mutates; the next sample phase rebuilds the
  /// per-producer send plans before sending.
  bool plans_dirty_ = false;

  /// Data arrivals buffered during transmit, keyed by producer.
  sim::NodeMailboxes<Arrival> arrivals_;
  /// Failover replays awaiting a retry: (pair, as_s), in detection order.
  std::vector<std::pair<PairKey, bool>> pending_replays_;
  /// Planned migrations in flight (announce -> transfer -> complete), in
  /// announcement order.
  std::vector<PlannedMigration> planned_migrations_;
  /// One placement whose live estimate diverged past the replan threshold,
  /// collected by a re-optimization pass before any state moves.
  struct FreshEstimate {
    PairKey pair;
    workload::SelectivityParams est;
  };
  /// RunReopt scratch, pre-reserved at initiation: a pass that finds
  /// divergence but migrates nothing is a steady-state cycle and must not
  /// allocate.
  std::vector<FreshEstimate> reopt_diverged_;
  /// Learn phases this query has run — its *own* clock, so interval
  /// triggers (re-estimation, counter reset, re-optimization) are correct
  /// for queries admitted mid-run on a shared medium. Equals cycle + 1
  /// inside OnLearn for a cycle-0 admission.
  int learn_ticks_ = 0;
  /// Paces and gates continuous re-optimization (knobs.reopt_interval).
  adapt::ReoptController reopt_;
  int cycle_ = 0;
  uint64_t results_ = 0;
  double delay_sum_ = 0.0;
  double delay_max_ = 0.0;
  uint64_t migrations_ = 0;
  uint64_t failovers_ = 0;
  int init_latency_ = 0;
  bool initiated_ = false;
  bool shutdown_ = false;
};

}  // namespace join
}  // namespace aspen

#endif  // ASPEN_JOIN_EXECUTOR_H_
