// Shared radio medium for multiple concurrent queries — a long-running
// query *service*, not a batch harness.
//
// The paper's introduction motivates minimizing resource consumption
// "in case of multiple concurrent queries". SharedMedium owns one Network
// and one sim::CycleScheduler, dispatches deliveries/drops/snoops to the
// owning executor by the query id stamped on every message, and hosts each
// executor as a participant on the scheduler. Traffic accounting is
// medium-wide — the combined load of concurrent queries, including
// cross-query packet merging at relay nodes, is measured exactly once —
// while per-query counters isolate each query's own share.
//
// Query lifecycle under churn (see DESIGN.md "Query lifecycle"):
//  - The scheduler exists from construction (scenario drivers AttachFront
//    before the first query), on the sampling clock fixed by
//    MediumOptions::sample_interval.
//  - TryAddQuery admits a query at any time, including mid-run from a
//    scenario event: a query admitted during the cycle-N sample phase
//    samples at cycle N. Initiate() is per-executor and may run mid-run.
//  - RemoveQuery finalizes the query's per-query counters into a retained
//    ledger, tears the executor down (JoinExecutor::Shutdown releases
//    pooled payload references, flushes windows, and retires its interned
//    routes), and detaches it from the scheduler. Straggler frames of a
//    departed query are ignored by the dispatch handlers and terminate
//    normally on the air.
//  - Query ids are recycled, but never while a frame stamped with the id
//    is still in flight, and the id's traffic counters are zeroed at
//    reuse — a new tenant never inherits a predecessor's traffic.
//  - The medium participates in its own scheduler to run the data plane's
//    epoch-safe route garbage collection: at any observation point where
//    no frame is in flight, routes retired by departed (or re-planned)
//    queries are swept and their ids/storage recycled, keeping route-table
//    occupancy proportional to the live query set.

#ifndef ASPEN_JOIN_MEDIUM_H_
#define ASPEN_JOIN_MEDIUM_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "join/executor.h"
#include "net/network.h"
#include "routing/routing_tree.h"
#include "sim/cycle_scheduler.h"
#include "workload/workload.h"

namespace aspen {
namespace join {

/// \brief Service-level configuration of a SharedMedium.
struct MediumOptions {
  /// Run-shape knobs (common/run_knobs.h), shared with ExecutorOptions and
  /// core::ServiceOptions. `knobs.sample_interval` is the medium's one
  /// sampling clock (every admitted query's window.sample_interval must
  /// equal it); `knobs.shards` > 1 or `knobs.pipeline_depth` > 1 host the
  /// executors on a sim::ShardedScheduler (worker-parallel phases,
  /// cross-cycle sample pipelining) with byte-identical results for every
  /// value. The medium itself ignores `knobs.reopt_*` — continuous
  /// re-optimization is per query (ExecutorOptions::knobs).
  common::RunKnobs knobs;
  /// Permit RunCycles with zero live queries. A service run idles between
  /// arrivals (scenario drivers still tick); the batch default keeps the
  /// historical no-queries error.
  bool allow_idle = false;
};

/// \brief One network shared by several concurrently-executing queries,
/// with dynamic admission and teardown.
class SharedMedium : private sim::CycleParticipant {
 public:
  /// `topology` must outlive the medium. The scheduler is constructed
  /// eagerly (never null), so scenario drivers can attach before the first
  /// query is admitted.
  SharedMedium(const net::Topology* topology, net::NetworkOptions options,
               MediumOptions medium_options = MediumOptions());
  ~SharedMedium() override;

  /// \brief Creates an executor for `workload` attached to this medium.
  /// The workload must be over the medium's topology, use the medium's
  /// sample_interval (one scheduler, one sampling clock), and outlive the
  /// returned executor; the executor is owned by the medium. Violations
  /// return an error — nothing is registered on failure. Callable mid-run:
  /// the query joins the current cycle's phases. The caller initiates the
  /// query (directly or via InitiateAll).
  Result<JoinExecutor*> TryAddQuery(const workload::Workload* workload,
                                    ExecutorOptions options);

  /// \brief A self-contained admission request: the query's SQL text plus
  /// the synthetic-workload parameters behind it. The medium parses the
  /// SQL (query::ParseQuery), builds the workload, owns it for the query's
  /// lifetime, and admits it — the front door that makes the query
  /// parser/analyzer output admissible without the caller managing
  /// Workload lifetimes.
  struct QuerySpec {
    std::string sql;
    /// True generation parameters of the synthetic workload.
    workload::SelectivityParams params;
    uint64_t seed = 1;
    ExecutorOptions options;
  };

  /// \brief Parses `spec.sql`, builds a medium-owned workload from it and
  /// admits the query through the same validated entry point as the
  /// workload-pointer overload (same clock/topology invariants, nothing
  /// registered on failure). The workload is freed when the query is
  /// removed.
  Result<JoinExecutor*> TryAddQuery(const QuerySpec& spec);

  /// CHECK-failing convenience wrapper around TryAddQuery for callers with
  /// statically-known-compatible workloads. On failure the underlying
  /// Status text is logged and reported verbatim by the aborting check.
  JoinExecutor* AddQuery(const workload::Workload* workload,
                         ExecutorOptions options);

  /// \brief Removes a live query: snapshots its per-query stats into the
  /// ledger, shuts the executor down (windows flushed, pooled payload
  /// references dropped, interned routes retired for the epoch-safe
  /// sweep), detaches it and frees it. Its query id is recycled once no
  /// in-flight frame still carries it. Callable mid-run (query departure
  /// events); a query removed during the cycle-N sample phase does not
  /// sample at cycle N.
  Status RemoveQuery(int query_id);

  /// The shared cycle scheduler (never null; constructed with the medium);
  /// scenario drivers attach here with AttachFront.
  sim::CycleScheduler* scheduler() { return sched_.get(); }

  /// \brief Initiates every registered query not yet initiated (in query-id
  /// order; their initiation traffic accumulates on the shared stats).
  Status InitiateAll();

  /// \brief Runs `n` sampling cycles with all queries interleaved on the
  /// medium, driven by the shared cycle scheduler. Requires at least one
  /// live query unless MediumOptions::allow_idle is set.
  Status RunCycles(int n);

  /// \brief Final metrics of one departed query, retained after its
  /// executor (and possibly its query id) is recycled.
  struct QueryRecord {
    int query_id = 0;
    int admitted_cycle = 0;
    int removed_cycle = 0;
    RunStats stats;
  };

  /// Finalized stats of every removed query, in removal order.
  const std::vector<QueryRecord>& ledger() const { return ledger_; }

  net::Network& network() { return net_; }
  const net::TrafficStats& stats() const { return net_.stats(); }
  const MediumOptions& medium_options() const { return medium_opts_; }

  /// \brief One cross-query shared placement (tree_mode == kShared): the
  /// owning query evaluates the pair once and fans results out to every
  /// subscriber. Entries keep stable indices (owner placements cache them);
  /// freed slots (owner == 0) are recycled at the next registration.
  struct SharedEntry {
    /// Fingerprint: normalized predicate + window shape + workload
    /// identity + algorithm options + pair key (DESIGN.md "Cross-query
    /// work sharing").
    uint64_t fp = 0;
    PairKey pair;
    int owner = 0;  ///< owning query id; 0 = free slot
    std::vector<int> subscribers;  ///< subscribed query ids, ascending
  };
  /// The sharing registry (diagnostics/tests; includes free slots).
  const std::vector<SharedEntry>& shared_entries() const {
    return shared_entries_;
  }
  /// Number of placements currently served for more than one query.
  int num_shared_placements() const;
  /// Live (admitted, not removed) query count.
  int num_queries() const { return live_queries_; }
  /// Total queries ever admitted (ledger entries + live queries).
  int total_admitted() const { return total_admitted_; }
  /// The live executor for `query_id`; CHECK-fails on a dead or unknown id.
  JoinExecutor& executor(int query_id);
  /// The live executor for `query_id`, or nullptr.
  JoinExecutor* FindExecutor(int query_id);
  /// Ids of every live query, ascending.
  std::vector<int> live_query_ids() const;

 private:
  friend class JoinExecutor;

  // -- scheduler participation (route GC at epoch boundaries) ---------------
  Status OnSample(int cycle) override;
  Status OnDeliver(int cycle) override;
  Status OnLearn(int cycle) override;

  /// Smallest recyclable id with no in-flight frames, else a fresh one.
  int AcquireQueryId();

  // -- cross-query placement sharing (tree_mode == kShared) -----------------
  /// Admission hook, called from JoinExecutor::Initiate after InitCommon:
  /// each of `exec`'s pairs either attaches as a subscriber to a live
  /// identical placement (and is suppressed from `exec`'s data plane) or
  /// registers as a new owner for later arrivals to find.
  void ClaimPairs(JoinExecutor* exec) ASPEN_REQUIRES_SEQUENTIAL;
  /// Owner fan-out: books `count` results into every subscriber of
  /// `entry`. Steady-state hot path — allocates nothing.
  void FanOutSharedResult(int32_t entry, int count, int sample_cycle)
      ASPEN_REQUIRES_SEQUENTIAL;
  /// Removal hook, called from RemoveQuery *before* the executor shuts
  /// down: drops `query_id` as a subscriber everywhere, and for owned
  /// entries promotes the smallest subscriber (adopting placement
  /// geometry, routes and window state while the departing owner still
  /// holds its references) or frees the entry.
  void DetachShared(int query_id) ASPEN_REQUIRES_SEQUENTIAL;
  uint64_t FingerprintPair(const JoinExecutor& exec,
                           const PairKey& pair) const;
  /// Live registry entry serving (fp, pair), or -1.
  int32_t FindSharedEntry(uint64_t fp, const PairKey& pair) const;
  int32_t AllocSharedEntry();
  void FreeSharedEntry(int32_t e);

  const net::Topology* topology_;
  net::Network net_;
  routing::RoutingTree primary_;
  MediumOptions medium_opts_;
  /// Dense executor table indexed by query id (slot 0 unused; dead slots
  /// null). The per-cycle dispatch path is a single array index.
  std::vector<std::unique_ptr<JoinExecutor>> executors_;
  /// Admission cycle per query id (parallel to executors_).
  std::vector<int> admitted_cycle_;
  /// Ids of removed queries awaiting reuse, ascending.
  std::vector<int> retired_ids_;
  /// Workloads built (and owned) by the QuerySpec admission path, keyed by
  /// query id; freed when the owning query is removed.
  std::vector<std::pair<int, std::unique_ptr<workload::Workload>>>
      owned_workloads_;
  std::vector<QueryRecord> ledger_;
  /// Sharing registry (stable indices) and its admission-time lookup
  /// index, sorted by (fingerprint, entry) — content-driven, never hashed.
  std::vector<SharedEntry> shared_entries_;
  std::vector<int32_t> free_shared_entries_;
  std::vector<std::pair<uint64_t, int32_t>> shared_index_;
  std::unique_ptr<sim::CycleScheduler> sched_;
  int live_queries_ = 0;
  int total_admitted_ = 0;
  int next_query_id_ = 1;
};

}  // namespace join
}  // namespace aspen

#endif  // ASPEN_JOIN_MEDIUM_H_
