// Shared radio medium for multiple concurrent queries.
//
// The paper's introduction motivates minimizing resource consumption
// "in case of multiple concurrent queries". SharedMedium owns one Network
// and one sim::CycleScheduler, dispatches deliveries/drops/snoops to the
// owning executor by the query id stamped on every message, and hosts each
// executor as a participant on the scheduler. Traffic accounting is
// medium-wide — the combined load of concurrent queries, including
// cross-query packet merging at relay nodes, is measured exactly once —
// while per-query counters isolate each query's own share.

#ifndef ASPEN_JOIN_MEDIUM_H_
#define ASPEN_JOIN_MEDIUM_H_

#include <map>
#include <memory>

#include "join/executor.h"
#include "net/network.h"
#include "routing/routing_tree.h"
#include "sim/cycle_scheduler.h"
#include "workload/workload.h"

namespace aspen {
namespace join {

/// \brief One network shared by several concurrently-executing queries.
class SharedMedium {
 public:
  /// `topology` must outlive the medium.
  SharedMedium(const net::Topology* topology, net::NetworkOptions options);

  /// \brief Creates an executor for `workload` attached to this medium.
  /// The workload must be over the medium's topology, use the same
  /// sample_interval as every query already registered (one scheduler, one
  /// sampling clock), and outlive the returned executor; the executor is
  /// owned by the medium. Violations return an error — nothing is
  /// registered on failure.
  Result<JoinExecutor*> TryAddQuery(const workload::Workload* workload,
                                    ExecutorOptions options);

  /// CHECK-failing convenience wrapper around TryAddQuery for callers with
  /// statically-known-compatible workloads.
  JoinExecutor* AddQuery(const workload::Workload* workload,
                         ExecutorOptions options);

  /// The shared cycle scheduler (nullptr until the first query is added);
  /// scenario drivers attach here with AttachFront.
  sim::CycleScheduler* scheduler() { return sched_.get(); }

  /// \brief Initiates every registered query (in registration order; their
  /// initiation traffic accumulates on the shared stats).
  Status InitiateAll();

  /// \brief Runs `n` sampling cycles with all queries interleaved on the
  /// medium, driven by the shared cycle scheduler. Every workload must use
  /// the same sample_interval.
  Status RunCycles(int n);

  net::Network& network() { return net_; }
  const net::TrafficStats& stats() const { return net_.stats(); }
  int num_queries() const { return static_cast<int>(executors_.size()); }
  JoinExecutor& executor(int query_id) { return *executors_.at(query_id); }

 private:
  const net::Topology* topology_;
  net::Network net_;
  routing::RoutingTree primary_;
  std::map<int, std::unique_ptr<JoinExecutor>> executors_;
  std::unique_ptr<sim::CycleScheduler> sched_;
  int next_query_id_ = 1;
};

}  // namespace join
}  // namespace aspen

#endif  // ASPEN_JOIN_MEDIUM_H_
