// Typed message payloads exchanged by the join executors.
//
// Payloads are plain structs stored in pooled slabs (net/payload_pool.h)
// and referenced from message envelopes by PayloadHandle. Each type has a
// process-wide pool tag; the typed pools are created on the network's
// DataPlane arena, so every executor sharing a medium shares the slabs.
// Pool slots are recycled without reconstruction — writers must assign
// every field they later read (containers keep their capacity, which is
// what makes the steady-state cycle allocation-free).

#ifndef ASPEN_JOIN_PAYLOADS_H_
#define ASPEN_JOIN_PAYLOADS_H_

#include <vector>

#include "join/types.h"
#include "net/message.h"
#include "query/schema.h"

namespace aspen {
namespace join {

/// Pool tags for the payload types that travel on messages (PayloadHandle
/// tag 0 means "no payload").
enum PayloadTag : uint32_t {
  kPayloadTagData = 1,
  kPayloadTagResult = 2,
  kPayloadTagWindowTransfer = 3,
};

/// \brief A producer sample en route to one or more join nodes.
struct DataPayload {
  net::NodeId producer = -1;
  query::Tuple tuple;
  int sample_cycle = 0;
  /// True when the producer sent this in its S role (it may also send a
  /// separate message for its T role if its filters differ).
  bool as_s = false;
  bool as_t = false;
};

/// \brief A join result (or a count of results for merged reporting).
struct ResultPayload {
  net::NodeId s = -1;
  net::NodeId t = -1;
  /// Sampling cycle of the newer of the two joined tuples.
  int sample_cycle = 0;
};

/// \brief Join-window snapshot shipped on join-node migration (Section 6)
/// or base fallback after failure (Section 7).
struct WindowTransferPayload {
  PairKey pair;
  std::vector<query::Tuple> s_window;
  std::vector<query::Tuple> t_window;
};

/// \brief MPO cost report: a member's delta-Cp to the group coordinator.
/// (Charged along tree paths; not attached to simulated messages.)
struct CostReportPayload {
  net::NodeId member = -1;
  double delta_cp = 0.0;
};

/// \brief MPO decision broadcast (Algorithm 1).
struct GroupDecisionPayload {
  bool in_network = true;
  int seq = 0;
};

/// \brief Path-collapse opportunity: snooper `via` heard a transmission and
/// knows a link (via, neighbor) that can shortcut two of the producer's
/// paths (Appendix E, Algorithm 2's output tuple, simplified).
struct CollapseHintPayload {
  net::NodeId via = -1;       ///< the snooping node (on one path)
  net::NodeId neighbor = -1;  ///< the transmitting node (on the other path)
};

}  // namespace join
}  // namespace aspen

#endif  // ASPEN_JOIN_PAYLOADS_H_
