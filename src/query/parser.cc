#include "query/parser.h"

#include <cctype>
#include <optional>
#include <vector>

namespace aspen {
namespace query {

namespace {

enum class TokKind {
  kEnd,
  kIdent,    // bare identifier / keyword
  kNumber,   // integer literal
  kAttr,     // S.xxx or T.xxx (side + attr resolved)
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kEq,       // =
  kNe,       // <>
  kLt,
  kLe,
  kGt,
  kGe,
  kAssign,   // = inside [windowsize=3] (same token as kEq)
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;   // identifier text, upper-cased keywords preserved raw
  int32_t number = 0;
  Side side = Side::kS;
  int attr = -1;
  size_t pos = 0;
};

/// Case-insensitive keyword comparison.
bool KeywordIs(const Token& t, const char* kw) {
  if (t.kind != TokKind::kIdent) return false;
  const std::string& s = t.text;
  size_t i = 0;
  for (; kw[i] != '\0'; ++i) {
    if (i >= s.size() ||
        std::toupper(static_cast<unsigned char>(s[i])) != kw[i]) {
      return false;
    }
  }
  return i == s.size();
}

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipSpace();
      Token t;
      t.pos = pos_;
      if (pos_ >= input_.size()) {
        t.kind = TokKind::kEnd;
        out.push_back(t);
        return out;
      }
      char c = input_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t start = pos_;
        while (pos_ < input_.size() &&
               std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
          ++pos_;
        }
        t.kind = TokKind::kNumber;
        t.number = static_cast<int32_t>(
            std::stol(input_.substr(start, pos_ - start)));
        out.push_back(t);
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = pos_;
        while (pos_ < input_.size() &&
               (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
                input_[pos_] == '_')) {
          ++pos_;
        }
        std::string word = input_.substr(start, pos_ - start);
        // S.attr / T.attr?
        if ((word == "S" || word == "s" || word == "T" || word == "t") &&
            pos_ < input_.size() && input_[pos_] == '.') {
          ++pos_;  // '.'
          size_t astart = pos_;
          while (pos_ < input_.size() &&
                 (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
                  input_[pos_] == '_')) {
            ++pos_;
          }
          std::string attr_name = input_.substr(astart, pos_ - astart);
          int attr = Schema::Sensor().IndexOf(attr_name);
          if (attr < 0 && attr_name == "time") attr = kAttrLocalTime;
          if (attr < 0) {
            return Status::InvalidArgument("unknown attribute '" + attr_name +
                                           "' at position " +
                                           std::to_string(astart));
          }
          t.kind = TokKind::kAttr;
          t.side = (word == "S" || word == "s") ? Side::kS : Side::kT;
          t.attr = attr;
          out.push_back(t);
          continue;
        }
        t.kind = TokKind::kIdent;
        t.text = word;
        out.push_back(t);
        continue;
      }
      switch (c) {
        case '(':
          t.kind = TokKind::kLParen;
          break;
        case ')':
          t.kind = TokKind::kRParen;
          break;
        case '[':
          t.kind = TokKind::kLBracket;
          break;
        case ']':
          t.kind = TokKind::kRBracket;
          break;
        case ',':
          t.kind = TokKind::kComma;
          break;
        case '+':
          t.kind = TokKind::kPlus;
          break;
        case '-':
          t.kind = TokKind::kMinus;
          break;
        case '*':
          t.kind = TokKind::kStar;
          break;
        case '/':
          t.kind = TokKind::kSlash;
          break;
        case '%':
          t.kind = TokKind::kPercent;
          break;
        case '=':
          t.kind = TokKind::kEq;
          break;
        case '<':
          if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '>') {
            t.kind = TokKind::kNe;
            ++pos_;
          } else if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '=') {
            t.kind = TokKind::kLe;
            ++pos_;
          } else {
            t.kind = TokKind::kLt;
          }
          break;
        case '>':
          if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '=') {
            t.kind = TokKind::kGe;
            ++pos_;
          } else {
            t.kind = TokKind::kGt;
          }
          break;
        case '!':
          if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '=') {
            t.kind = TokKind::kNe;
            ++pos_;
            break;
          }
          return Status::InvalidArgument("unexpected '!' at position " +
                                         std::to_string(pos_));
        default:
          return Status::InvalidArgument(std::string("unexpected character '") +
                                         c + "' at position " +
                                         std::to_string(pos_));
      }
      ++pos_;
      out.push_back(t);
    }
  }

 private:
  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& input_;
  size_t pos_ = 0;
};

/// Recursive-descent parser with the precedence chain
/// or < and < not < comparison < additive < multiplicative < unary.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Result<ExprPtr> ParseExpression() { return ParseOr(); }

  Result<JoinQuery> ParseFullQuery() {
    JoinQuery q;
    ASPEN_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    ASPEN_ASSIGN_OR_RETURN(q.projected_attrs, ParseSelectList());
    ASPEN_RETURN_NOT_OK(ExpectKeyword("FROM"));
    ASPEN_RETURN_NOT_OK(ParseFromClause(&q.window));
    ASPEN_RETURN_NOT_OK(ExpectKeyword("WHERE"));
    ASPEN_ASSIGN_OR_RETURN(q.where, ParseOr());
    if (Peek().kind != TokKind::kEnd) {
      return Err("trailing input after WHERE clause");
    }
    return q;
  }

  const Token& Peek() const { return toks_[idx_]; }

 private:
  Token Next() { return toks_[idx_++]; }

  Status Err(const std::string& msg) const {
    return Status::InvalidArgument(msg + " at position " +
                                   std::to_string(Peek().pos));
  }

  Status ExpectKeyword(const char* kw) {
    if (!KeywordIs(Peek(), kw)) {
      return Err(std::string("expected ") + kw);
    }
    Next();
    return Status::OK();
  }

  Status Expect(TokKind kind, const char* what) {
    if (Peek().kind != kind) return Err(std::string("expected ") + what);
    Next();
    return Status::OK();
  }

  /// SELECT list: attribute references (possibly S.time); returns count.
  Result<int> ParseSelectList() {
    int count = 0;
    while (true) {
      if (Peek().kind == TokKind::kStar) {
        Next();
        count += kNumAttrs;
      } else if (Peek().kind == TokKind::kAttr) {
        Next();
        ++count;
      } else {
        return Err("expected projection (S.attr, T.attr or *)");
      }
      if (Peek().kind == TokKind::kComma) {
        Next();
        continue;
      }
      break;
    }
    return count;
  }

  /// FROM S, T [windowsize=3 sampleinterval=100]
  Status ParseFromClause(WindowSpec* window) {
    // Relation names are fixed: S and T (any order, either may repeat for
    // self-joins — membership is defined by the predicates).
    for (int i = 0; i < 2; ++i) {
      if (Peek().kind != TokKind::kIdent ||
          (!KeywordIs(Peek(), "S") && !KeywordIs(Peek(), "T"))) {
        return Err("expected relation name S or T");
      }
      Next();
      if (i == 0) ASPEN_RETURN_NOT_OK(Expect(TokKind::kComma, "','"));
    }
    if (Peek().kind == TokKind::kLBracket) {
      Next();
      while (Peek().kind != TokKind::kRBracket) {
        if (Peek().kind != TokKind::kIdent) return Err("expected window option");
        Token opt = Next();
        ASPEN_RETURN_NOT_OK(Expect(TokKind::kEq, "'='"));
        if (Peek().kind != TokKind::kNumber) return Err("expected number");
        int32_t value = Next().number;
        if (KeywordIs(opt, "WINDOWSIZE")) {
          window->size = value;
        } else if (KeywordIs(opt, "SAMPLEINTERVAL")) {
          window->sample_interval = value;
        } else if (KeywordIs(opt, "TIMEWINDOW")) {
          window->size = value;
          window->time_based = true;
        } else {
          return Status::InvalidArgument("unknown window option '" + opt.text +
                                         "'");
        }
      }
      Next();  // ']'
    }
    return Status::OK();
  }

  Result<ExprPtr> ParseOr() {
    ASPEN_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (KeywordIs(Peek(), "OR")) {
      Next();
      ASPEN_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::Or(lhs, rhs);
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    ASPEN_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (KeywordIs(Peek(), "AND")) {
      Next();
      ASPEN_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Expr::And(lhs, rhs);
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (KeywordIs(Peek(), "NOT")) {
      Next();
      ASPEN_ASSIGN_OR_RETURN(ExprPtr inner, ParseNot());
      return Expr::Not(inner);
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    ASPEN_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    switch (Peek().kind) {
      case TokKind::kEq:
        Next();
        return BindCmp(&Expr::Eq, lhs);
      case TokKind::kNe:
        Next();
        return BindCmp(&Expr::Ne, lhs);
      case TokKind::kLt:
        Next();
        return BindCmp(&Expr::Lt, lhs);
      case TokKind::kLe:
        Next();
        return BindCmp(&Expr::Le, lhs);
      case TokKind::kGt:
        Next();
        return BindCmp(&Expr::Gt, lhs);
      case TokKind::kGe:
        Next();
        return BindCmp(&Expr::Ge, lhs);
      default:
        return lhs;  // bare value used as a truth value
    }
  }

  Result<ExprPtr> BindCmp(ExprPtr (*op)(ExprPtr, ExprPtr), ExprPtr lhs) {
    ASPEN_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    return op(std::move(lhs), std::move(rhs));
  }

  Result<ExprPtr> ParseAdditive() {
    ASPEN_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (Peek().kind == TokKind::kPlus || Peek().kind == TokKind::kMinus) {
      TokKind k = Next().kind;
      ASPEN_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = k == TokKind::kPlus ? Expr::Add(lhs, rhs) : Expr::Sub(lhs, rhs);
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    ASPEN_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (Peek().kind == TokKind::kStar || Peek().kind == TokKind::kSlash ||
           Peek().kind == TokKind::kPercent) {
      TokKind k = Next().kind;
      ASPEN_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = k == TokKind::kStar    ? Expr::Mul(lhs, rhs)
            : k == TokKind::kSlash ? Expr::Div(lhs, rhs)
                                   : Expr::Mod(lhs, rhs);
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (Peek().kind == TokKind::kMinus) {
      Next();
      ASPEN_ASSIGN_OR_RETURN(ExprPtr inner, ParseUnary());
      return Expr::Sub(Expr::Const(0), inner);
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokKind::kNumber: {
        int32_t v = Next().number;
        return Expr::Const(v);
      }
      case TokKind::kAttr: {
        Token a = Next();
        return Expr::Attr(a.side, a.attr);
      }
      case TokKind::kLParen: {
        Next();
        ASPEN_ASSIGN_OR_RETURN(ExprPtr inner, ParseOr());
        ASPEN_RETURN_NOT_OK(Expect(TokKind::kRParen, "')'"));
        return inner;
      }
      case TokKind::kIdent: {
        if (KeywordIs(t, "HASH") || KeywordIs(t, "ABS")) {
          bool is_hash = KeywordIs(t, "HASH");
          Next();
          ASPEN_RETURN_NOT_OK(Expect(TokKind::kLParen, "'('"));
          ASPEN_ASSIGN_OR_RETURN(ExprPtr arg, ParseOr());
          ASPEN_RETURN_NOT_OK(Expect(TokKind::kRParen, "')'"));
          return is_hash ? Expr::Hash(arg) : Expr::Abs(arg);
        }
        if (KeywordIs(t, "DST")) {
          Next();
          if (Peek().kind == TokKind::kLParen) {
            Next();
            ASPEN_RETURN_NOT_OK(Expect(TokKind::kRParen, "')'"));
          }
          return Expr::Dist();
        }
        return Err("unexpected identifier '" + t.text + "'");
      }
      default:
        return Err("expected expression");
    }
  }

  std::vector<Token> toks_;
  size_t idx_ = 0;
};

}  // namespace

Result<JoinQuery> ParseQuery(const std::string& sql) {
  Lexer lexer(sql);
  ASPEN_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseFullQuery();
}

Result<ExprPtr> ParsePredicate(const std::string& text) {
  Lexer lexer(text);
  ASPEN_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  ASPEN_ASSIGN_OR_RETURN(ExprPtr expr, parser.ParseExpression());
  if (parser.Peek().kind != TokKind::kEnd) {
    return Status::InvalidArgument("trailing input after predicate");
  }
  return expr;
}

}  // namespace query
}  // namespace aspen
