// Query analysis pipeline (Appendix B): convert the WHERE predicate to CNF,
// split clauses into selection vs. join and static vs. dynamic, and run the
// pattern matcher that separates the *primary* join predicate (usable for
// content routing) from *secondary* predicates evaluated after routing.

#ifndef ASPEN_QUERY_ANALYZER_H_
#define ASPEN_QUERY_ANALYZER_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "query/expr.h"

namespace aspen {
namespace query {

/// \brief Join window specification (Appendix B's
/// `[windowsize=3 sampleinterval=100]`).
struct WindowSpec {
  /// Window size w: tuples (default) or sampling cycles (time_based).
  int size = 1;
  /// Transmission cycles per sampling cycle.
  int sample_interval = 100;
  /// Footnote 5: time-based windows keep every tuple sampled within the
  /// last `size` cycles; buffers are sized for the maximum expected rate.
  bool time_based = false;
};

/// \brief A select-project-single-join query over sensor relations S and T.
struct JoinQuery {
  ExprPtr where;  ///< full predicate over (s, t)
  WindowSpec window;
  /// Attributes projected into results (ids + timestamp by default).
  int projected_attrs = 3;
};

/// \brief Converts a boolean expression to conjunctive normal form:
/// NOTs pushed to leaves (De Morgan), OR distributed over AND. Returns the
/// list of conjunct clauses (each clause may contain ORs but no ANDs).
std::vector<ExprPtr> ToCnf(const ExprPtr& expr);

/// \brief The routable primary join predicate identified by the pattern
/// matcher.
struct PrimaryJoin {
  /// Equality form: probe_expr(s) == target_expr(t), both static.
  /// The substrate indexes target_expr as a derived static attribute and
  /// routes from each s toward nodes where it equals probe_expr(s).
  ExprPtr probe_expr;   ///< over S only
  ExprPtr target_expr;  ///< over T only
  /// Region form (Query 3): Dst < radius_dm (decimeters). When set,
  /// probe/target exprs are null and routing uses the position R-trees.
  std::optional<int32_t> region_radius_dm;
};

/// \brief Full analysis of a JoinQuery.
struct QueryAnalysis {
  std::vector<ExprPtr> cnf;

  // Selections referencing one side only.
  std::vector<ExprPtr> s_static_selection;
  std::vector<ExprPtr> t_static_selection;
  std::vector<ExprPtr> s_dynamic_selection;
  std::vector<ExprPtr> t_dynamic_selection;

  // Join clauses referencing both sides.
  std::vector<ExprPtr> static_join;   ///< all static join clauses
  std::vector<ExprPtr> dynamic_join;  ///< evaluated per sample at join node

  /// The routable primary predicate, if the pattern matcher found one among
  /// static_join; remaining static join clauses become secondary filters.
  std::optional<PrimaryJoin> primary;
  std::vector<ExprPtr> secondary_static_join;

  /// Conjunction of s_static_selection (node eligibility for S); likewise T.
  bool SEligible(const Tuple& static_tuple) const;
  bool TEligible(const Tuple& static_tuple) const;

  /// Conjunction of the dynamic selections for one side over a full tuple.
  bool SDynamicPass(const Tuple& tuple) const;
  bool TDynamicPass(const Tuple& tuple) const;

  /// Secondary static join clauses over an (s, t) static-tuple pair.
  bool SecondaryStaticPass(const Tuple& s, const Tuple& t) const;

  /// Dynamic join clauses over a full (s, t) pair.
  bool DynamicJoinPass(const Tuple& s, const Tuple& t) const;

  /// The complete join predicate (all clauses) over a full (s, t) pair —
  /// ground truth used by tests and the Naive executor.
  bool FullPass(const Tuple& s, const Tuple& t) const;
};

/// \brief Analyzes a query. Fails if `where` is null.
Result<QueryAnalysis> Analyze(const JoinQuery& q);

}  // namespace query
}  // namespace aspen

#endif  // ASPEN_QUERY_ANALYZER_H_
