// The sensor relation schema.
//
// Appendix B: sensor relations share a pre-defined 28-attribute schema — 18
// populated from physical measurements or soft readings, the rest static
// identifiers that can be assigned from the base station (role, room,
// coordinates...). Attribute values are 16-bit integers on the wire
// (Section 4); we compute in int32 and charge 2 bytes per attribute.

#ifndef ASPEN_QUERY_SCHEMA_H_
#define ASPEN_QUERY_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

namespace aspen {
namespace query {

/// Attribute indexes into the sensor schema. Order is part of the wire
/// format; append only.
enum AttrId : int {
  // -- static attributes (identity & placement; set at deployment or by
  //    base-station flooding) --
  kAttrId = 0,     ///< unique node identifier
  kAttrX,          ///< synthetic static attr; [7,60] exponential (Table 1)
  kAttrY,          ///< synthetic static attr; [0,10) uniform (Table 1)
  kAttrCid,        ///< column number in a 4x4 grid (Table 1)
  kAttrRid,        ///< row number in a 4x4 grid (Table 1)
  kAttrPosX,       ///< real position, decimeters (256m field)
  kAttrPosY,       ///< real position, decimeters
  kAttrRole,       ///< assigned role
  kAttrRoom,       ///< room number
  kAttrFloor,      ///< floor number
  kAttrGroupId,    ///< administrative group
  kAttrCaps,       ///< capability bitmask
  kAttrLocZ,       ///< assigned 3D height
  kAttrNameId,     ///< interned name identifier
  // -- dynamic attributes (physical sensors & soft readings) --
  kAttrU,          ///< synthetic join attribute (Table 1)
  kAttrV,          ///< humidity from the Intel-like trace (Table 1)
  kAttrTemp,       ///< temperature
  kAttrLight,      ///< light level
  kAttrHumidity,   ///< relative humidity
  kAttrBattery,    ///< battery voltage
  kAttrRfid,       ///< RFID tag currently detected
  kAttrAdc0,       ///< raw ADC channel 0
  kAttrAdc1,       ///< raw ADC channel 1
  kAttrMemFree,    ///< free RAM at the mote
  kAttrLocalTime,  ///< local clock (low 16 bits)
  kAttrSeq,        ///< sample sequence number
  kAttrNoise,      ///< ambient noise level
  kAttrVolt,       ///< supply voltage
  kNumAttrs,       // == 28
};

/// \brief A sensor reading / static identity record: one int32 per schema
/// attribute (wire format: 16-bit).
using Tuple = std::vector<int32_t>;

/// \brief Immutable schema metadata for the sensor relation.
class Schema {
 public:
  /// The process-wide sensor schema instance.
  static const Schema& Sensor();

  int num_attrs() const { return kNumAttrs; }
  const std::string& name(int attr) const { return names_[attr]; }
  bool is_static(int attr) const { return attr < kAttrU; }
  /// Attribute index by name; -1 if unknown.
  int IndexOf(const std::string& name) const;

  /// A zero-initialized tuple of the right arity.
  Tuple MakeTuple() const { return Tuple(kNumAttrs, 0); }

  /// Wire size of a projected tuple carrying `num_attrs` attributes plus a
  /// node id and sequence number.
  static int WireBytes(int num_attrs);

 private:
  Schema();
  std::vector<std::string> names_;
};

}  // namespace query
}  // namespace aspen

#endif  // ASPEN_QUERY_SCHEMA_H_
