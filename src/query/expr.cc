#include "query/expr.h"

#include <cmath>

#include "common/logging.h"

namespace aspen {
namespace query {

int32_t HashValue16(int32_t value) {
  uint32_t z = static_cast<uint32_t>(value) * 0x9E3779B9u;
  z ^= z >> 16;
  z *= 0x85EBCA6Bu;
  z ^= z >> 13;
  return static_cast<int32_t>(z & 0x7FFF);
}

ExprPtr Expr::Const(int32_t value) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprOp::kConst, {}));
  e->const_value_ = value;
  return e;
}

ExprPtr Expr::Attr(Side side, int attr) {
  ASPEN_CHECK(attr >= 0 && attr < kNumAttrs);
  auto e = std::shared_ptr<Expr>(new Expr(ExprOp::kAttr, {}));
  e->side_ = side;
  e->attr_ = attr;
  return e;
}

#define ASPEN_BINARY_FACTORY(Name, Op)            \
  ExprPtr Expr::Name(ExprPtr a, ExprPtr b) {      \
    ASPEN_CHECK(a != nullptr && b != nullptr);    \
    return std::shared_ptr<Expr>(                 \
        new Expr(ExprOp::Op, {std::move(a), std::move(b)})); \
  }

ASPEN_BINARY_FACTORY(Add, kAdd)
ASPEN_BINARY_FACTORY(Sub, kSub)
ASPEN_BINARY_FACTORY(Mul, kMul)
ASPEN_BINARY_FACTORY(Div, kDiv)
ASPEN_BINARY_FACTORY(Mod, kMod)
ASPEN_BINARY_FACTORY(Eq, kEq)
ASPEN_BINARY_FACTORY(Ne, kNe)
ASPEN_BINARY_FACTORY(Lt, kLt)
ASPEN_BINARY_FACTORY(Le, kLe)
ASPEN_BINARY_FACTORY(Gt, kGt)
ASPEN_BINARY_FACTORY(Ge, kGe)
ASPEN_BINARY_FACTORY(And, kAnd)
ASPEN_BINARY_FACTORY(Or, kOr)

#undef ASPEN_BINARY_FACTORY

ExprPtr Expr::Abs(ExprPtr a) {
  ASPEN_CHECK(a != nullptr);
  return std::shared_ptr<Expr>(new Expr(ExprOp::kAbs, {std::move(a)}));
}

ExprPtr Expr::Hash(ExprPtr a) {
  ASPEN_CHECK(a != nullptr);
  return std::shared_ptr<Expr>(new Expr(ExprOp::kHash, {std::move(a)}));
}

ExprPtr Expr::Not(ExprPtr a) {
  ASPEN_CHECK(a != nullptr);
  return std::shared_ptr<Expr>(new Expr(ExprOp::kNot, {std::move(a)}));
}

ExprPtr Expr::Dist() {
  return std::shared_ptr<Expr>(new Expr(ExprOp::kDist, {}));
}

ExprPtr Expr::AndAll(const std::vector<ExprPtr>& clauses) {
  if (clauses.empty()) return Const(1);
  ExprPtr acc = clauses[0];
  for (size_t i = 1; i < clauses.size(); ++i) acc = And(acc, clauses[i]);
  return acc;
}

int32_t Expr::Eval(const Tuple* s, const Tuple* t) const {
  switch (op_) {
    case ExprOp::kConst:
      return const_value_;
    case ExprOp::kAttr: {
      const Tuple* tup = side_ == Side::kS ? s : t;
      ASPEN_CHECK(tup != nullptr);
      return (*tup)[attr_];
    }
    case ExprOp::kAdd:
      return children_[0]->Eval(s, t) + children_[1]->Eval(s, t);
    case ExprOp::kSub:
      return children_[0]->Eval(s, t) - children_[1]->Eval(s, t);
    case ExprOp::kMul:
      return children_[0]->Eval(s, t) * children_[1]->Eval(s, t);
    case ExprOp::kDiv: {
      int32_t d = children_[1]->Eval(s, t);
      return d == 0 ? 0 : children_[0]->Eval(s, t) / d;
    }
    case ExprOp::kMod: {
      int32_t d = children_[1]->Eval(s, t);
      if (d == 0) return 0;
      int32_t m = children_[0]->Eval(s, t) % d;
      return m < 0 ? m + std::abs(d) : m;
    }
    case ExprOp::kAbs:
      return std::abs(children_[0]->Eval(s, t));
    case ExprOp::kHash:
      return HashValue16(children_[0]->Eval(s, t));
    case ExprOp::kEq:
      return children_[0]->Eval(s, t) == children_[1]->Eval(s, t);
    case ExprOp::kNe:
      return children_[0]->Eval(s, t) != children_[1]->Eval(s, t);
    case ExprOp::kLt:
      return children_[0]->Eval(s, t) < children_[1]->Eval(s, t);
    case ExprOp::kLe:
      return children_[0]->Eval(s, t) <= children_[1]->Eval(s, t);
    case ExprOp::kGt:
      return children_[0]->Eval(s, t) > children_[1]->Eval(s, t);
    case ExprOp::kGe:
      return children_[0]->Eval(s, t) >= children_[1]->Eval(s, t);
    case ExprOp::kAnd:
      return children_[0]->EvalBool(s, t) && children_[1]->EvalBool(s, t);
    case ExprOp::kOr:
      return children_[0]->EvalBool(s, t) || children_[1]->EvalBool(s, t);
    case ExprOp::kNot:
      return !children_[0]->EvalBool(s, t);
    case ExprOp::kDist: {
      ASPEN_CHECK(s != nullptr && t != nullptr);
      double dx = (*s)[kAttrPosX] - (*t)[kAttrPosX];
      double dy = (*s)[kAttrPosY] - (*t)[kAttrPosY];
      return static_cast<int32_t>(std::lround(std::hypot(dx, dy)));
    }
  }
  return 0;
}

bool Expr::ReferencesSide(Side side) const {
  if (op_ == ExprOp::kAttr) return side_ == side;
  if (op_ == ExprOp::kDist) return true;
  for (const auto& c : children_) {
    if (c->ReferencesSide(side)) return true;
  }
  return false;
}

bool Expr::IsStatic() const {
  if (op_ == ExprOp::kAttr) return Schema::Sensor().is_static(attr_);
  if (op_ == ExprOp::kDist) return true;  // positions are static
  for (const auto& c : children_) {
    if (!c->IsStatic()) return false;
  }
  return true;
}

void Expr::CollectAttrs(std::vector<std::pair<Side, int>>* out) const {
  if (op_ == ExprOp::kAttr) {
    out->emplace_back(side_, attr_);
  } else if (op_ == ExprOp::kDist) {
    out->emplace_back(Side::kS, kAttrPosX);
    out->emplace_back(Side::kS, kAttrPosY);
    out->emplace_back(Side::kT, kAttrPosX);
    out->emplace_back(Side::kT, kAttrPosY);
  }
  for (const auto& c : children_) c->CollectAttrs(out);
}

std::string Expr::ToString() const {
  auto binary = [&](const char* sym) {
    return "(" + children_[0]->ToString() + " " + sym + " " +
           children_[1]->ToString() + ")";
  };
  switch (op_) {
    case ExprOp::kConst:
      return std::to_string(const_value_);
    case ExprOp::kAttr:
      return std::string(side_ == Side::kS ? "S." : "T.") +
             Schema::Sensor().name(attr_);
    case ExprOp::kAdd:
      return binary("+");
    case ExprOp::kSub:
      return binary("-");
    case ExprOp::kMul:
      return binary("*");
    case ExprOp::kDiv:
      return binary("/");
    case ExprOp::kMod:
      return binary("%");
    case ExprOp::kAbs:
      return "abs(" + children_[0]->ToString() + ")";
    case ExprOp::kHash:
      return "hash(" + children_[0]->ToString() + ")";
    case ExprOp::kEq:
      return binary("=");
    case ExprOp::kNe:
      return binary("<>");
    case ExprOp::kLt:
      return binary("<");
    case ExprOp::kLe:
      return binary("<=");
    case ExprOp::kGt:
      return binary(">");
    case ExprOp::kGe:
      return binary(">=");
    case ExprOp::kAnd:
      return binary("AND");
    case ExprOp::kOr:
      return binary("OR");
    case ExprOp::kNot:
      return "NOT " + children_[0]->ToString();
    case ExprOp::kDist:
      return "Dst";
  }
  return "?";
}

}  // namespace query
}  // namespace aspen
