#include "query/schema.h"

#include "common/logging.h"
#include "net/message.h"

namespace aspen {
namespace query {

Schema::Schema()
    : names_{"id",       "x",      "y",        "cid",     "rid",
             "pos_x",    "pos_y",  "role",     "room",    "floor",
             "group_id", "caps",   "loc_z",    "name_id", "u",
             "v",        "temp",   "light",    "humidity", "battery",
             "rfid",     "adc0",   "adc1",     "mem_free", "local_time",
             "seq",      "noise",  "volt"} {
  ASPEN_CHECK_EQ(static_cast<int>(names_.size()), kNumAttrs);
}

const Schema& Schema::Sensor() {
  static const Schema schema;
  return schema;
}

int Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

int Schema::WireBytes(int num_attrs) {
  return net::WireFormat::kNodeIdBytes + net::WireFormat::kSeqBytes +
         num_attrs * net::WireFormat::kAttributeBytes;
}

}  // namespace query
}  // namespace aspen
