// StreamSQL-style query parser (Appendix B). Parses the paper's
// select-project-single-join dialect:
//
//   SELECT S.id, T.id, S.time
//   FROM S, T [windowsize=3 sampleinterval=100]
//   WHERE S.id < 25 AND hash(S.u) % 2 = 0
//     AND T.id > 50 AND S.x = T.y + 5 AND S.u = T.u
//
// Supported predicate language: comparisons (=, <>, <, <=, >, >=), integer
// arithmetic (+, -, *, /, %), the utility functions hash(e), abs(e), the
// region primitive dst() (Euclidean distance between the S and T
// positions), boolean AND/OR/NOT, and parentheses. Attribute references are
// S.<name> / T.<name> over the 28-attribute sensor schema.

#ifndef ASPEN_QUERY_PARSER_H_
#define ASPEN_QUERY_PARSER_H_

#include <string>

#include "common/status.h"
#include "query/analyzer.h"

namespace aspen {
namespace query {

/// \brief Parses a full query. Errors carry the offending position.
Result<JoinQuery> ParseQuery(const std::string& sql);

/// \brief Parses just a predicate expression (the WHERE body). Useful for
/// tests and for composing queries programmatically from text fragments.
Result<ExprPtr> ParsePredicate(const std::string& text);

}  // namespace query
}  // namespace aspen

#endif  // ASPEN_QUERY_PARSER_H_
