#include "query/analyzer.h"

#include "common/logging.h"

namespace aspen {
namespace query {

namespace {

// Pushes negations down to the leaves (negation normal form). Comparison
// leaves are negated by flipping the operator, so no kNot survives above a
// comparison.
ExprPtr ToNnf(const ExprPtr& e, bool negate) {
  switch (e->op()) {
    case ExprOp::kAnd: {
      auto a = ToNnf(e->children()[0], negate);
      auto b = ToNnf(e->children()[1], negate);
      return negate ? Expr::Or(a, b) : Expr::And(a, b);
    }
    case ExprOp::kOr: {
      auto a = ToNnf(e->children()[0], negate);
      auto b = ToNnf(e->children()[1], negate);
      return negate ? Expr::And(a, b) : Expr::Or(a, b);
    }
    case ExprOp::kNot:
      return ToNnf(e->children()[0], !negate);
    case ExprOp::kEq:
      return negate ? Expr::Ne(e->children()[0], e->children()[1]) : e;
    case ExprOp::kNe:
      return negate ? Expr::Eq(e->children()[0], e->children()[1]) : e;
    case ExprOp::kLt:
      return negate ? Expr::Ge(e->children()[0], e->children()[1]) : e;
    case ExprOp::kLe:
      return negate ? Expr::Gt(e->children()[0], e->children()[1]) : e;
    case ExprOp::kGt:
      return negate ? Expr::Le(e->children()[0], e->children()[1]) : e;
    case ExprOp::kGe:
      return negate ? Expr::Lt(e->children()[0], e->children()[1]) : e;
    default:
      // Non-boolean leaf used as a truth value.
      return negate ? Expr::Not(e) : e;
  }
}

// CNF of an NNF expression, as a list of clauses.
std::vector<ExprPtr> CnfClauses(const ExprPtr& e) {
  if (e->op() == ExprOp::kAnd) {
    auto left = CnfClauses(e->children()[0]);
    auto right = CnfClauses(e->children()[1]);
    left.insert(left.end(), right.begin(), right.end());
    return left;
  }
  if (e->op() == ExprOp::kOr) {
    // (A ∧ B) ∨ C  →  (A ∨ C) ∧ (B ∨ C), recursively on both sides.
    auto left = CnfClauses(e->children()[0]);
    auto right = CnfClauses(e->children()[1]);
    std::vector<ExprPtr> out;
    out.reserve(left.size() * right.size());
    for (const auto& l : left) {
      for (const auto& r : right) {
        out.push_back(Expr::Or(l, r));
      }
    }
    return out;
  }
  return {e};
}

bool EvalAll(const std::vector<ExprPtr>& clauses, const Tuple* s,
             const Tuple* t) {
  for (const auto& c : clauses) {
    if (!c->EvalBool(s, t)) return false;
  }
  return true;
}

// Rebinds every attribute reference in `e` to side kS, so an expression over
// T-only can be evaluated against a single tuple (used when indexing derived
// attributes at T nodes).
ExprPtr RebindToS(const ExprPtr& e) {
  switch (e->op()) {
    case ExprOp::kConst:
      return e;
    case ExprOp::kAttr:
      return Expr::Attr(Side::kS, e->attr());
    default: {
      ASPEN_CHECK(e->op() != ExprOp::kDist);
      std::vector<ExprPtr> kids;
      for (const auto& c : e->children()) kids.push_back(RebindToS(c));
      // Rebuild with the same operator.
      switch (e->op()) {
        case ExprOp::kAdd:
          return Expr::Add(kids[0], kids[1]);
        case ExprOp::kSub:
          return Expr::Sub(kids[0], kids[1]);
        case ExprOp::kMul:
          return Expr::Mul(kids[0], kids[1]);
        case ExprOp::kDiv:
          return Expr::Div(kids[0], kids[1]);
        case ExprOp::kMod:
          return Expr::Mod(kids[0], kids[1]);
        case ExprOp::kAbs:
          return Expr::Abs(kids[0]);
        case ExprOp::kHash:
          return Expr::Hash(kids[0]);
        case ExprOp::kEq:
          return Expr::Eq(kids[0], kids[1]);
        case ExprOp::kNe:
          return Expr::Ne(kids[0], kids[1]);
        case ExprOp::kLt:
          return Expr::Lt(kids[0], kids[1]);
        case ExprOp::kLe:
          return Expr::Le(kids[0], kids[1]);
        case ExprOp::kGt:
          return Expr::Gt(kids[0], kids[1]);
        case ExprOp::kGe:
          return Expr::Ge(kids[0], kids[1]);
        case ExprOp::kAnd:
          return Expr::And(kids[0], kids[1]);
        case ExprOp::kOr:
          return Expr::Or(kids[0], kids[1]);
        case ExprOp::kNot:
          return Expr::Not(kids[0]);
        default:
          ASPEN_CHECK(false);
      }
    }
  }
  return e;
}

}  // namespace

std::vector<ExprPtr> ToCnf(const ExprPtr& expr) {
  return CnfClauses(ToNnf(expr, /*negate=*/false));
}

bool QueryAnalysis::SEligible(const Tuple& st) const {
  return EvalAll(s_static_selection, &st, nullptr);
}
bool QueryAnalysis::TEligible(const Tuple& st) const {
  return EvalAll(t_static_selection, nullptr, &st);
}
bool QueryAnalysis::SDynamicPass(const Tuple& tup) const {
  return EvalAll(s_dynamic_selection, &tup, nullptr);
}
bool QueryAnalysis::TDynamicPass(const Tuple& tup) const {
  return EvalAll(t_dynamic_selection, nullptr, &tup);
}
bool QueryAnalysis::SecondaryStaticPass(const Tuple& s, const Tuple& t) const {
  return EvalAll(secondary_static_join, &s, &t);
}
bool QueryAnalysis::DynamicJoinPass(const Tuple& s, const Tuple& t) const {
  return EvalAll(dynamic_join, &s, &t);
}
bool QueryAnalysis::FullPass(const Tuple& s, const Tuple& t) const {
  return EvalAll(cnf, &s, &t);
}

Result<QueryAnalysis> Analyze(const JoinQuery& q) {
  if (q.where == nullptr) {
    return Status::InvalidArgument("Analyze: query has no WHERE predicate");
  }
  if (q.window.size < 1) {
    return Status::InvalidArgument("Analyze: window size must be >= 1");
  }
  QueryAnalysis out;
  out.cnf = ToCnf(q.where);

  for (const auto& clause : out.cnf) {
    const bool refs_s = clause->ReferencesSide(Side::kS);
    const bool refs_t = clause->ReferencesSide(Side::kT);
    const bool is_static = clause->IsStatic();
    if (refs_s && refs_t) {
      if (is_static) {
        out.static_join.push_back(clause);
      } else {
        out.dynamic_join.push_back(clause);
      }
    } else if (refs_s) {
      (is_static ? out.s_static_selection : out.s_dynamic_selection)
          .push_back(clause);
    } else if (refs_t) {
      (is_static ? out.t_static_selection : out.t_dynamic_selection)
          .push_back(clause);
    } else {
      // Constant clause: keep with static joins so FullPass sees it; a
      // constant-false query simply produces nothing.
      out.static_join.push_back(clause);
    }
  }

  // Pattern matcher: pick the first routable static join clause as primary.
  // Routable forms:
  //   (a) expr_over_S == expr_over_T        (content routing on a derived
  //                                          static attribute)
  //   (b) Dst < c  /  Dst <= c              (region routing via R-trees)
  for (const auto& clause : out.static_join) {
    if (out.primary.has_value()) {
      out.secondary_static_join.push_back(clause);
      continue;
    }
    if (clause->op() == ExprOp::kEq) {
      const ExprPtr& lhs = clause->children()[0];
      const ExprPtr& rhs = clause->children()[1];
      auto pure = [](const ExprPtr& e, Side side) {
        Side other = side == Side::kS ? Side::kT : Side::kS;
        return e->ReferencesSide(side) && !e->ReferencesSide(other) &&
               e->op() != ExprOp::kDist;
      };
      if (pure(lhs, Side::kS) && pure(rhs, Side::kT)) {
        out.primary = PrimaryJoin{lhs, RebindToS(rhs), std::nullopt};
        continue;
      }
      if (pure(lhs, Side::kT) && pure(rhs, Side::kS)) {
        out.primary = PrimaryJoin{rhs, RebindToS(lhs), std::nullopt};
        continue;
      }
    }
    if ((clause->op() == ExprOp::kLt || clause->op() == ExprOp::kLe) &&
        clause->children()[0]->op() == ExprOp::kDist &&
        clause->children()[1]->op() == ExprOp::kConst) {
      out.primary =
          PrimaryJoin{nullptr, nullptr, clause->children()[1]->const_value()};
      continue;
    }
    out.secondary_static_join.push_back(clause);
  }
  return out;
}

}  // namespace query
}  // namespace aspen
