// Join windows (Section 2): the buffered recent tuples from one producer at
// a join node, against which the opposite stream's arrivals are joined.
//
// Two modes, per WindowSpec:
//  - tuple-based (default): the last `w` tuples, FIFO eviction on insert;
//  - time-based (footnote 5): every tuple sampled within the last `w`
//    sampling cycles; the owner evicts expired entries before each use and
//    capacity is bounded by the maximum expected rate (one per cycle).
//
// Storage is a ring over a slot vector: eviction moves the head index and
// insertion copy-assigns into a recycled slot, so a warmed-up window's
// tuples keep their heap buffers and the steady-state push/evict cycle
// allocates nothing.

#ifndef ASPEN_QUERY_WINDOW_H_
#define ASPEN_QUERY_WINDOW_H_

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "query/schema.h"

namespace aspen {
namespace query {

/// \brief Bounded buffer of recent tuples from one producer.
class JoinWindow {
 public:
  struct Entry {
    int cycle = 0;
    Tuple tuple;
  };

  explicit JoinWindow(int size, bool time_based = false)
      : size_(size), time_based_(time_based) {
    ASPEN_CHECK_GE(size, 1);
  }

  /// Enqueues a sample taken at `cycle`. In tuple mode the oldest entry is
  /// evicted when full; in time mode expired entries are evicted lazily via
  /// EvictExpired. The tuple is copied into a recycled slot.
  void Push(const Tuple& tuple, int cycle) {
    if (!time_based_ && count_ == size_) PopFront();
    if (count_ == static_cast<int>(slots_.size())) Grow();
    Entry& e = slots_[Index(count_)];
    e.cycle = cycle;
    e.tuple = tuple;  // reuses the recycled slot's capacity
    ++count_;
  }

  /// Time mode: drops entries sampled before `now - size + 1`. No-op in
  /// tuple mode.
  void EvictExpired(int now) {
    if (!time_based_) return;
    const int min_cycle = now - size_ + 1;
    while (count_ > 0 && slots_[head_].cycle < min_cycle) PopFront();
  }

  /// Pre-grows the ring to its full `window_size()` slot count with
  /// `width`-int tuple buffers, so steady-state pushes recycle capacity
  /// instead of first-touch allocating (a tail that escapes short warmups
  /// and would trip the benches' zero-allocation audits). Buffered entries
  /// are unaffected.
  void Warm(int width) {
    if (static_cast<int>(slots_.size()) < size_) {
      ASPEN_CHECK(count_ == 0);  // only meaningful before any Push
      slots_.resize(size_);
    }
    for (Entry& e : slots_) e.tuple.reserve(width);
  }

  /// The i-th buffered entry, oldest first (0 <= i < size()).
  const Entry& entry(int i) const { return slots_[Index(i)]; }

  int size() const { return count_; }
  int window_size() const { return size_; }
  bool time_based() const { return time_based_; }
  bool empty() const { return count_ == 0; }
  void Clear() {
    head_ = 0;
    count_ = 0;
  }

  /// Storage cost in bytes (Table 3's storage rows).
  int StorageBytes() const { return size() * Schema::WireBytes(kNumAttrs); }

 private:
  int Index(int i) const {
    int idx = head_ + i;
    const int cap = static_cast<int>(slots_.size());
    return idx >= cap ? idx - cap : idx;
  }

  void PopFront() {
    head_ = Index(1);
    --count_;
  }

  /// Doubles the slot vector, unrolling the ring so entries stay in age
  /// order. Tuples are moved, keeping their buffers.
  void Grow() {
    const int old_cap = static_cast<int>(slots_.size());
    const int new_cap = old_cap == 0 ? std::min(size_, 8) : old_cap * 2;
    std::vector<Entry> grown(new_cap);
    for (int i = 0; i < count_; ++i) grown[i] = std::move(slots_[Index(i)]);
    slots_.swap(grown);
    head_ = 0;
  }

  int size_;
  bool time_based_;
  std::vector<Entry> slots_;
  int head_ = 0;
  int count_ = 0;
};

}  // namespace query
}  // namespace aspen

#endif  // ASPEN_QUERY_WINDOW_H_
