// Join windows (Section 2): the buffered recent tuples from one producer at
// a join node, against which the opposite stream's arrivals are joined.
//
// Two modes, per WindowSpec:
//  - tuple-based (default): the last `w` tuples, FIFO eviction on insert;
//  - time-based (footnote 5): every tuple sampled within the last `w`
//    sampling cycles; the owner evicts expired entries before each use and
//    capacity is bounded by the maximum expected rate (one per cycle).

#ifndef ASPEN_QUERY_WINDOW_H_
#define ASPEN_QUERY_WINDOW_H_

#include <deque>

#include "common/logging.h"
#include "query/schema.h"

namespace aspen {
namespace query {

/// \brief Bounded buffer of recent tuples from one producer.
class JoinWindow {
 public:
  struct Entry {
    int cycle = 0;
    Tuple tuple;
  };

  explicit JoinWindow(int size, bool time_based = false)
      : size_(size), time_based_(time_based) {
    ASPEN_CHECK_GE(size, 1);
  }

  /// Enqueues a sample taken at `cycle`. In tuple mode the oldest entry is
  /// evicted when full; in time mode expired entries are evicted lazily via
  /// EvictExpired.
  void Push(Tuple tuple, int cycle) {
    if (!time_based_ && static_cast<int>(buffer_.size()) == size_) {
      buffer_.pop_front();
    }
    buffer_.push_back(Entry{cycle, std::move(tuple)});
  }

  /// Time mode: drops entries sampled before `now - size + 1`. No-op in
  /// tuple mode.
  void EvictExpired(int now) {
    if (!time_based_) return;
    const int min_cycle = now - size_ + 1;
    while (!buffer_.empty() && buffer_.front().cycle < min_cycle) {
      buffer_.pop_front();
    }
  }

  const std::deque<Entry>& entries() const { return buffer_; }
  int size() const { return static_cast<int>(buffer_.size()); }
  int window_size() const { return size_; }
  bool time_based() const { return time_based_; }
  bool empty() const { return buffer_.empty(); }
  void Clear() { buffer_.clear(); }

  /// Storage cost in bytes (Table 3's storage rows).
  int StorageBytes() const { return size() * Schema::WireBytes(kNumAttrs); }

 private:
  int size_;
  bool time_based_;
  std::deque<Entry> buffer_;
};

}  // namespace query
}  // namespace aspen

#endif  // ASPEN_QUERY_WINDOW_H_
