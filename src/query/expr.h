// Expression trees over pairs of sensor tuples.
//
// Supports the predicate language of Appendix B: comparisons, boolean
// connectives, integer arithmetic, and the utility functions hash() and
// abs(), plus the Dst(s,t) Euclidean-distance primitive used by
// region-based queries (Query 3 / Query R).

#ifndef ASPEN_QUERY_EXPR_H_
#define ASPEN_QUERY_EXPR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "query/schema.h"

namespace aspen {
namespace query {

/// Which relation an attribute reference binds to.
enum class Side : uint8_t { kS = 0, kT = 1 };

enum class ExprOp : uint8_t {
  kConst,
  kAttr,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kAbs,
  kHash,  ///< 16-bit output of the standard mote hash function
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kNot,
  kDist,  ///< Euclidean distance (decimeters) between S and T positions
};

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// \brief Immutable expression node. Build via the static factories; shared
/// subtrees are safe because nodes are never mutated.
class Expr {
 public:
  static ExprPtr Const(int32_t value);
  static ExprPtr Attr(Side side, int attr);
  static ExprPtr Add(ExprPtr a, ExprPtr b);
  static ExprPtr Sub(ExprPtr a, ExprPtr b);
  static ExprPtr Mul(ExprPtr a, ExprPtr b);
  static ExprPtr Div(ExprPtr a, ExprPtr b);
  static ExprPtr Mod(ExprPtr a, ExprPtr b);
  static ExprPtr Abs(ExprPtr a);
  static ExprPtr Hash(ExprPtr a);
  static ExprPtr Eq(ExprPtr a, ExprPtr b);
  static ExprPtr Ne(ExprPtr a, ExprPtr b);
  static ExprPtr Lt(ExprPtr a, ExprPtr b);
  static ExprPtr Le(ExprPtr a, ExprPtr b);
  static ExprPtr Gt(ExprPtr a, ExprPtr b);
  static ExprPtr Ge(ExprPtr a, ExprPtr b);
  static ExprPtr And(ExprPtr a, ExprPtr b);
  static ExprPtr Or(ExprPtr a, ExprPtr b);
  static ExprPtr Not(ExprPtr a);
  /// Distance between the S tuple's and T tuple's (pos_x, pos_y).
  static ExprPtr Dist();

  /// Conjunction over a clause list (returns Const(1) when empty).
  static ExprPtr AndAll(const std::vector<ExprPtr>& clauses);

  ExprOp op() const { return op_; }
  int32_t const_value() const { return const_value_; }
  Side side() const { return side_; }
  int attr() const { return attr_; }
  const std::vector<ExprPtr>& children() const { return children_; }

  /// \brief Evaluates against an (s, t) tuple pair. Selection predicates
  /// over a single relation pass the other tuple as nullptr. Booleans are
  /// 0/1. Division/modulo by zero yields 0 (motes saturate rather than
  /// trap).
  int32_t Eval(const Tuple* s, const Tuple* t) const;

  /// Convenience for predicates: nonzero == satisfied.
  bool EvalBool(const Tuple* s, const Tuple* t) const {
    return Eval(s, t) != 0;
  }

  /// True if any kAttr node under this expression binds to `side` (kDist
  /// references both sides).
  bool ReferencesSide(Side side) const;

  /// True if every referenced attribute is static in the sensor schema
  /// (kDist counts as static: positions are static attributes).
  bool IsStatic() const;

  /// All (side, attr) pairs referenced.
  void CollectAttrs(std::vector<std::pair<Side, int>>* out) const;

  /// Parseable human-readable rendering (for logs and tests).
  std::string ToString() const;

 private:
  Expr(ExprOp op, std::vector<ExprPtr> children)
      : op_(op), children_(std::move(children)) {}

  ExprOp op_;
  int32_t const_value_ = 0;
  Side side_ = Side::kS;
  int attr_ = 0;
  std::vector<ExprPtr> children_;
};

/// The standard 16-bit mote hash used by hash() predicates. Deterministic
/// across the whole system (producers, join nodes, the optimizer's
/// selectivity math all agree).
int32_t HashValue16(int32_t value);

}  // namespace query
}  // namespace aspen

#endif  // ASPEN_QUERY_EXPR_H_
