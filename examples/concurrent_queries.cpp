// Concurrent queries on one radio medium. The paper's introduction argues
// that with multiple concurrent queries, minimizing per-query resource
// consumption is even more critical. This example runs the uniform m:n join
// (Query 1) and the perimeter join (Query 2) simultaneously over one
// network, with opportunistic cross-query packet merging at shared relays,
// and compares the combined traffic against two isolated runs.

#include <cstdio>

#include "core/report.h"
#include "join/medium.h"
#include "net/topology.h"
#include "workload/workload.h"

using namespace aspen;

namespace {

uint64_t SoloRun(const net::Topology& topo,
                 const workload::SelectivityParams& sel, int which,
                 int cycles) {
  auto wl = which == 1 ? workload::Workload::MakeQuery1(&topo, sel, 3, 7)
                       : workload::Workload::MakeQuery2(&topo, sel, 3, 9);
  join::ExecutorOptions opts;
  opts.algorithm = join::Algorithm::kInnet;
  opts.features = join::InnetFeatures::Cmg();
  opts.assumed = sel;
  join::JoinExecutor exec(&*wl, opts);
  if (!exec.Initiate().ok() || !exec.RunCycles(cycles).ok()) return 0;
  return exec.network().stats().TotalBytesSent();
}

}  // namespace

int main() {
  auto topo = net::Topology::Random(100, 7.0, 42);
  if (!topo.ok()) return 1;
  workload::SelectivityParams sel{0.5, 0.5, 0.2};
  const int cycles = 200;

  uint64_t solo1 = SoloRun(*topo, sel, 1, cycles);
  uint64_t solo2 = SoloRun(*topo, sel, 2, cycles);

  auto q1 = workload::Workload::MakeQuery1(&*topo, sel, 3, 7);
  auto q2 = workload::Workload::MakeQuery2(&*topo, sel, 3, 9);
  if (!q1.ok() || !q2.ok()) return 1;

  net::NetworkOptions medium_opts;
  medium_opts.enable_merging = true;  // cross-query packet combining
  join::SharedMedium medium(&*topo, medium_opts);
  join::ExecutorOptions opts;
  opts.algorithm = join::Algorithm::kInnet;
  opts.features = join::InnetFeatures::Cmg();
  opts.assumed = sel;
  join::JoinExecutor* e1 = medium.AddQuery(&*q1, opts);
  join::JoinExecutor* e2 = medium.AddQuery(&*q2, opts);
  if (!medium.InitiateAll().ok() || !medium.RunCycles(cycles).ok()) return 1;

  core::Table table({"configuration", "total traffic"});
  table.AddRow({"Query 1 alone",
                core::HumanBytes(static_cast<double>(solo1))});
  table.AddRow({"Query 2 alone",
                core::HumanBytes(static_cast<double>(solo2))});
  table.AddRow({"sum of isolated runs",
                core::HumanBytes(static_cast<double>(solo1 + solo2))});
  table.AddRow(
      {"both on one medium (merged)",
       core::HumanBytes(static_cast<double>(medium.stats().TotalBytesSent()))});
  table.Print();
  std::printf(
      "\nresults: Query 1 -> %lu, Query 2 -> %lu (identical to isolated "
      "runs)\n",
      static_cast<unsigned long>(e1->results()),
      static_cast<unsigned long>(e2->results()));
  return 0;
}
