// Quickstart: run one windowed sensor join with several algorithms and
// compare their network cost.
//
// Builds a 100-node random deployment, installs Query 1 from the paper
// (S.id < 25, T.id > 50, S.x = T.y + 5 AND S.u = T.u, window 3), runs 100
// sampling cycles per algorithm on identical data traces, and prints the
// traffic each algorithm generated.

#include <cstdio>

#include "core/engine.h"
#include "core/report.h"
#include "join/types.h"
#include "net/topology.h"
#include "workload/workload.h"

using namespace aspen;

int main() {
  auto topo_r = net::Topology::Random(/*num_nodes=*/100, /*target_degree=*/7,
                                      /*seed=*/42);
  if (!topo_r.ok()) {
    std::fprintf(stderr, "topology: %s\n", topo_r.status().ToString().c_str());
    return 1;
  }
  const net::Topology& topo = *topo_r;
  std::printf("topology: %d nodes, avg degree %.1f, radio range %.1fm\n\n",
              topo.num_nodes(), topo.AverageDegree(), topo.radio_range());

  workload::SelectivityParams sel{0.5, 0.5, 0.2};

  struct Entry {
    join::Algorithm algo;
    join::InnetFeatures features;
  };
  const Entry entries[] = {
      {join::Algorithm::kNaive, {}},
      {join::Algorithm::kBase, {}},
      {join::Algorithm::kGht, {}},
      {join::Algorithm::kInnet, join::InnetFeatures::None()},
      {join::Algorithm::kInnet, join::InnetFeatures::Cmg()},
      {join::Algorithm::kInnet, join::InnetFeatures::Cmpg()},
  };

  core::Table table({"algorithm", "total traffic", "base traffic",
                     "max node", "results", "avg delay (cycles)"});
  for (const Entry& e : entries) {
    auto wl = workload::Workload::MakeQuery1(&topo, sel, /*window=*/3,
                                             /*seed=*/7);
    if (!wl.ok()) {
      std::fprintf(stderr, "workload: %s\n", wl.status().ToString().c_str());
      return 1;
    }
    join::ExecutorOptions opts;
    opts.algorithm = e.algo;
    opts.features = e.features;
    opts.assumed = sel;  // the optimizer is given the true selectivities
    opts.seed = 1;
    auto stats = core::RunExperiment(*wl, opts, /*sampling_cycles=*/100);
    if (!stats.ok()) {
      std::fprintf(stderr, "run: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    table.AddRow({stats->algorithm,
                  core::HumanBytes(static_cast<double>(stats->total_bytes)),
                  core::HumanBytes(static_cast<double>(stats->base_bytes)),
                  core::HumanBytes(static_cast<double>(stats->max_node_bytes)),
                  std::to_string(stats->results),
                  core::Fixed(stats->avg_result_delay_cycles, 2)});
  }
  table.Print();
  std::printf(
      "\nEvery algorithm saw the same data trace; result counts agree when "
      "no algorithm dropped tuples.\n");
  return 0;
}
