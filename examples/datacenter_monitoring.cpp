// Data-center monitoring (the paper's Query R): wireless sensors pair up
// energy/temperature readings from *adjacent* devices and report anomalies
// to the base station with low latency.
//
// This example runs the region-based join
//     Dst < 5m AND s.id < t.id AND abs(s.v - t.v) > 1000
// on the 54-node Intel-like deployment, in three acts:
//   1. Start with worst-case selectivity estimates (everything at the base).
//   2. Let adaptive learning migrate join nodes into the network.
//   3. Kill a join node mid-run and watch failure recovery keep results
//      flowing via the base-station fallback.

#include <cstdio>

#include "core/report.h"
#include "join/executor.h"
#include "net/topology.h"
#include "workload/workload.h"

using namespace aspen;

int main() {
  net::Topology topo = net::Topology::IntelLab();
  std::printf("deployment: %d sensors, avg %.1f neighbors\n\n",
              topo.num_nodes(), topo.AverageDegree());

  auto wl = workload::Workload::MakeQuery3(&topo, /*window=*/1, /*seed=*/7);
  if (!wl.ok()) {
    std::fprintf(stderr, "%s\n", wl.status().ToString().c_str());
    return 1;
  }
  std::printf("query: %s\n", wl->join_query().where->ToString().c_str());
  std::printf("statically joining close pairs: %zu\n\n",
              wl->AllJoinPairs().size());

  join::ExecutorOptions opts;
  opts.algorithm = join::Algorithm::kInnet;
  opts.features = join::InnetFeatures::Cmg();
  // Act 1: no knowledge — assume everything matches all the time.
  opts.assumed = {1.0, 1.0, 1.0};
  opts.learning = true;

  join::JoinExecutor exec(&*wl, opts);
  if (!exec.Initiate().ok()) return 1;
  int at_base = 0;
  for (const auto& pl : exec.placements()) at_base += pl.at_base;
  std::printf("act 1 — pessimistic initiation: %d/%zu pairs join at the "
              "base\n",
              at_base, exec.placements().size());

  // Act 2: learning.
  (void)exec.RunCycles(400);
  at_base = 0;
  for (const auto& pl : exec.placements()) at_base += pl.at_base;
  std::printf(
      "act 2 — after 400 cycles of learning: %d/%zu pairs at the base, "
      "%lu join-node migrations, %lu results delivered\n",
      at_base, exec.placements().size(),
      static_cast<unsigned long>(exec.migrations()),
      static_cast<unsigned long>(exec.results()));

  // Act 3: fail the busiest in-network join node.
  net::NodeId victim = -1;
  for (const auto& pl : exec.placements()) {
    if (!pl.at_base && pl.join_node != pl.pair.s && pl.join_node != pl.pair.t) {
      victim = pl.join_node;
      break;
    }
  }
  if (victim >= 0) {
    exec.FailNode(victim);
    uint64_t before = exec.results();
    (void)exec.RunCycles(200);
    auto stats = exec.Stats();
    std::printf(
        "act 3 — node %d failed: %lu pairs failed over to the base, "
        "%lu further results, max delay %.0f cycles\n",
        victim, static_cast<unsigned long>(stats.failovers),
        static_cast<unsigned long>(exec.results() - before),
        stats.max_result_delay_cycles);
  }

  auto stats = exec.Stats();
  std::printf("\ntotals: %s traffic, base station saw %s, %lu results\n",
              core::HumanBytes(static_cast<double>(stats.total_bytes)).c_str(),
              core::HumanBytes(static_cast<double>(stats.base_bytes)).c_str(),
              static_cast<unsigned long>(stats.results));
  return 0;
}
