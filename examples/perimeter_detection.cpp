// Perimeter event detection (the paper's Query P): temperature sensors on
// opposite edges of a field trigger an event whenever readings from the two
// perimeters disagree. The query arrives as StreamSQL text, is parsed,
// analyzed (CNF + pattern matcher) and executed with the MPO-optimized
// in-network strategy.

#include <cstdio>

#include "core/engine.h"
#include "core/report.h"
#include "net/topology.h"
#include "query/parser.h"
#include "workload/workload.h"

using namespace aspen;

int main() {
  const char* sql =
      "SELECT S.id, T.id, S.time "
      "FROM S, T [windowsize=1 sampleinterval=100] "
      "WHERE S.rid = 0 AND T.rid = 3 "
      "AND S.cid = T.cid AND S.id % 4 = T.id % 4 AND S.u = T.u";
  std::printf("query text:\n  %s\n\n", sql);

  auto parsed = query::ParseQuery(sql);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  auto analysis = query::Analyze(*parsed);
  if (!analysis.ok()) return 1;
  std::printf("analysis: %zu CNF clauses; primary join predicate routable "
              "(%zu secondary static, %zu dynamic join clauses)\n\n",
              analysis->cnf.size(), analysis->secondary_static_join.size(),
              analysis->dynamic_join.size());

  auto topo = net::Topology::Random(100, 7.0, 42);
  if (!topo.ok()) return 1;
  workload::SelectivityParams sel{0.5, 0.5, 0.1};
  auto wl = workload::Workload::FromQuery(&*topo, *parsed, sel, 7);
  if (!wl.ok()) return 1;
  std::printf("perimeter pairs discovered: %zu\n\n", wl->AllJoinPairs().size());

  core::Table table(
      {"strategy", "total traffic", "base load", "results", "migrations"});
  struct Entry {
    join::Algorithm algo;
    join::InnetFeatures f;
  };
  for (const Entry& e : {Entry{join::Algorithm::kBase, {}},
                         Entry{join::Algorithm::kInnet,
                               join::InnetFeatures::None()},
                         Entry{join::Algorithm::kInnet,
                               join::InnetFeatures::Cmpg()}}) {
    auto fresh = workload::Workload::FromQuery(&*topo, *parsed, sel, 7);
    if (!fresh.ok()) return 1;
    join::ExecutorOptions opts;
    opts.algorithm = e.algo;
    opts.features = e.f;
    opts.assumed = sel;
    auto stats = core::RunExperiment(*fresh, opts, 300);
    if (!stats.ok()) return 1;
    table.AddRow(
        {stats->algorithm,
         core::HumanBytes(static_cast<double>(stats->total_bytes)),
         core::HumanBytes(static_cast<double>(stats->base_bytes)),
         std::to_string(stats->results), std::to_string(stats->migrations)});
  }
  table.Print();
  std::printf(
      "\nEvery strategy returned the same events. The in-network strategies\n"
      "cut the base-station hotspot roughly in half, and the MPO variant\n"
      "(Innet-cmpg) recovers most of plain Innet's total-traffic penalty by\n"
      "sharing multicast paths and grouping shared computation.\n");
  return 0;
}
