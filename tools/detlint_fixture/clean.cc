// detlint self-test fixture: the lint must stay completely silent here.
// Exercises every suppression and every near-miss the rules must not flag.
// Lint input only — never compiled.
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Obj {
  int x;
};

// detlint: order-insensitive(point lookups and erases only; never iterated)
std::unordered_map<int, int> lookup_only;

// Value-keyed ordered containers iterate in content order — always fine.
std::map<int, int> by_id;

inline int Sum(const std::vector<int>& v) {
  int s = 0;
  for (int x : v) s += x;  // ordered container, not DL002
  return s;
}

// Allocation outside a steady-state region is setup cost, not a violation.
inline std::unique_ptr<Obj> Make() { return std::make_unique<Obj>(); }

// detlint: steady-state begin
inline int Hot(const std::vector<int>& v, int i) {
  // Token mentions inside comments must not fire: new, malloc, rand().
  return v[static_cast<size_t>(i)];
}
// detlint: steady-state end

// String literals mentioning banned tokens must not fire either.
inline const char* Doc() { return "never calls rand() or time()"; }

// A shard hook that honors the discipline: no phase scope inside.
inline void OnSampleShard(int cycle, int shard, int lo, int hi) {
  (void)cycle;
  (void)shard;
  (void)lo;
  (void)hi;
}

// The pipelined sample stage asserting its own (pipeline-stage) capability
// is the sanctioned pattern — only the *sequential* scope is banned here.
inline void OnSampleStage(int cycle, int slot, int shard, int lo, int hi) {
  common::PipelineStageScope stage;
  (void)cycle;
  (void)slot;
  (void)shard;
  (void)lo;
  (void)hi;
}

// Words embedding banned identifiers must not fire.
inline int randomize_seed_label(int brand_time_stamp) { return brand_time_stamp; }

}  // namespace fixture
