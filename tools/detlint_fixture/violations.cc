// detlint self-test fixture: every marked line must fire exactly the rule in
// its `expect:` marker, and nothing else in this file may fire. This file is
// lint input only — it is never compiled.
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct Obj {
  int x;
};

// An unordered container with no order-insensitivity justification.
std::unordered_map<int, int> counts;  // expect: DL001

// A justified declaration passes DL001, but walking it is a separate claim:
// the iteration site needs its own justification or a migration.
// detlint: order-insensitive(fixture: justified decl, unjustified walk below)
std::unordered_set<int> members;

inline int WalkMembers() {
  int sum = 0;
  for (int m : members) {  // expect: DL002
    sum += m;
  }
  return sum;
}

inline int Draw() {
  return rand();  // expect: DL003
}

inline void Reseed() {
  srand(42u);  // expect: DL003
}

inline long Wall() {
  return time(nullptr);  // expect: DL003
}

inline unsigned TrueRandom() {
  std::random_device rd;  // expect: DL003
  return rd();
}

inline void Stamp() {
  auto t = std::chrono::steady_clock::now();  // expect: DL003
  (void)t;
}

// Pointer keys order by allocation address, not content.
std::map<Obj*, int> by_ptr;       // expect: DL004
std::set<const Obj*> ptr_roster;  // expect: DL004

// detlint: steady-state begin
inline int* HotAllocRaw() {
  return new int(3);  // expect: DL005
}

inline void* HotAllocC() {
  return malloc(16);  // expect: DL005
}

inline std::unique_ptr<Obj> HotAllocSmart() {
  return std::make_unique<Obj>();  // expect: DL005
}
// detlint: steady-state end

// Forging the sequential-phase capability on a shard hook.
inline void OnSampleShard(int cycle, int shard, int lo, int hi) {
  common::SequentialPhaseScope seq;  // expect: DL006
  (void)cycle;
  (void)shard;
  (void)lo;
  (void)hi;
}

// Forging it inside the pipelined sample stage, which may run concurrently
// with the previous cycle's transmit phase.
inline void OnSampleStage(int cycle, int slot, int shard, int lo, int hi) {
  common::SequentialPhaseScope seq;  // expect: DL006
  (void)cycle;
  (void)slot;
  (void)shard;
  (void)lo;
  (void)hi;
}

}  // namespace fixture
