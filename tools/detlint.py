#!/usr/bin/env python3
"""detlint: determinism & zero-alloc lint for the aspen codebase.

The repo's output contract is byte-identical runs for every shard count and
seed (see DESIGN.md "Static guarantees"). The runtime gates (digest diffs,
allocation audits) catch violations only on the hardware and schedule they
run on; detlint bans the *sources* of nondeterminism and steady-state heap
traffic statically:

  DL001  unordered container declared without an order-insensitivity
         justification.  Hash-bucket iteration order is implementation-
         defined; any walk of an unordered container that reaches output is
         a latent determinism bug.  Suppress with
         `// detlint: order-insensitive(<why bucket order cannot leak>)`
         on the declaration line or one of the 3 lines above it.
  DL002  range-for iteration over a variable declared (in the same file) as
         an unordered container.  Same suppression.
  DL003  nondeterministic source: rand()/srand(), std::random_device,
         time(), clock(), gettimeofday(), std::chrono system/steady/
         high-resolution clocks.  Simulation code draws from seeded
         common::Rng streams only; wall-clock timing belongs in bench
         mains, which are not linted.
  DL004  pointer-keyed ordered container (std::map<T*, ...>, std::set<T*>).
         Pointer order is allocation order — nondeterministic across runs.
  DL005  heap-allocating call (new, malloc/calloc/realloc/strdup,
         make_unique, make_shared) inside a
         `// detlint: steady-state begin` ... `// detlint: steady-state end`
         region.  These regions are the per-cycle hot paths whose zero-alloc
         property the benches' allocation audits enforce at runtime.
  DL006  common::SequentialPhaseScope constructed inside a shard-path
         function body (OnSampleStage / OnSampleShard / OnDeliverShard /
         ComputeShard / BuildProducerCache / StateAtShard / WorkerLoop).
         The scope asserts the sequential-phase capability; forging it on a
         shard hook — or inside the pipelined sample stage, which may run
         concurrently with the previous cycle's transmit — would defeat the
         clang -Wthread-safety phase discipline.

Usage:
  tools/detlint.py [paths...]          lint (default: src)
  tools/detlint.py --self-test         run the violation-fixture self-test
  tools/detlint.py --clang-query=auto  additionally run AST-accurate DL003
                                       matching via clang-query when a
                                       compile database + binary exist
                                       (never required; regex rules gate)

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import os
import re
import shutil
import subprocess
import sys

SUPPRESS_RE = re.compile(r"//\s*detlint:\s*order-insensitive\([^)]*\)")
REGION_BEGIN_RE = re.compile(r"//\s*detlint:\s*steady-state\s+begin\b")
REGION_END_RE = re.compile(r"//\s*detlint:\s*steady-state\s+end\b")

UNORDERED_DECL_RE = re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<")
UNORDERED_VAR_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s*(\w+)\s*[;={]"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;:()]*:\s*([^)]+)\)")

NONDET_RES = [
    (re.compile(r"(?<![\w.])rand\s*\("), "rand()"),
    (re.compile(r"(?<![\w.])srand\s*\("), "srand()"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"(?<![\w.:])time\s*\("), "time()"),
    (re.compile(r"(?<![\w.:])clock\s*\("), "clock()"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\bstd::chrono::(system_clock|steady_clock|high_resolution_clock)\b"),
     "std::chrono clock"),
]

PTR_KEYED_RE = re.compile(r"\bstd::(?:map|set|multimap|multiset)\s*<\s*(?:const\s+)?[\w:]+\s*\*")

ALLOC_RES = [
    (re.compile(r"(?<!\w)new\b(?!\s*\()"), "new"),   # `new T`, not `new (place)`
    (re.compile(r"(?<!\w)new\s*\("), "placement/plain new"),
    (re.compile(r"(?<![\w.])(?:malloc|calloc|realloc|strdup)\s*\("), "malloc family"),
    (re.compile(r"\bmake_unique\s*<"), "std::make_unique"),
    (re.compile(r"\bmake_shared\s*<"), "std::make_shared"),
]

SHARD_FN_RE = re.compile(
    r"\b(?:OnSampleStage|OnSampleShard|OnDeliverShard|ComputeShard|"
    r"BuildProducerCache|StateAtShard|WorkerLoop)\s*\("
)
PHASE_SCOPE_RE = re.compile(r"\bSequentialPhaseScope\b")

CXX_EXTS = {".cc", ".cpp", ".cxx", ".h", ".hpp", ".hh"}


class Finding:
    def __init__(self, rule, path, line, msg):
        self.rule = rule
        self.path = path
        self.line = line
        self.msg = msg

    def __str__(self):
        return f"{self.path}:{self.line}: {self.rule}: {self.msg}"


def strip_code_line(line):
    """Removes // comments and the contents of string/char literals so token
    scans don't fire on prose. Block comments are handled by the caller."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and line[i] != quote:
                if line[i] == "\\":
                    i += 1
                i += 1
            out.append(quote)
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def preprocess(lines):
    """Returns (code_lines, raw_lines) with comments/strings stripped from
    code_lines; raw_lines keep directives visible."""
    code = []
    in_block = False
    for raw in lines:
        line = raw
        if in_block:
            end = line.find("*/")
            if end < 0:
                code.append("")
                continue
            line = " " * (end + 2) + line[end + 2:]
            in_block = False
        # strip /* ... */ possibly repeated
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block = True
                break
            line = line[:start] + " " * (end + 2 - start) + line[end + 2:]
        code.append(strip_code_line(line))
    return code


def lint_file(path):
    findings = []
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw_lines = f.read().splitlines()
    except OSError as e:
        raise SystemExit(f"detlint: cannot read {path}: {e}")
    code_lines = preprocess(raw_lines)

    def suppressed(idx):
        for back in range(0, 4):
            j = idx - back
            if j < 0:
                break
            if SUPPRESS_RE.search(raw_lines[j]):
                return True
        return False

    # Pass 1: collect unordered-container variable names (for DL002) and
    # steady-state regions (for DL005).
    unordered_vars = set()
    for code in code_lines:
        m = UNORDERED_VAR_RE.search(code)
        if m:
            unordered_vars.add(m.group(1))

    in_region = False
    region_at = {}
    for i, raw in enumerate(raw_lines):
        if REGION_BEGIN_RE.search(raw):
            in_region = True
        elif REGION_END_RE.search(raw):
            in_region = False
        region_at[i] = in_region
    if in_region:
        findings.append(Finding("DL000", path, len(raw_lines),
                                "unterminated `detlint: steady-state begin` region"))

    # Shard-path function spans via brace tracking.
    shard_spans = []
    depth = 0
    open_line = -1
    tracking = False
    for i, code in enumerate(code_lines):
        if not tracking and SHARD_FN_RE.search(code):
            tracking = True
            open_line = i
            depth = 0
        if tracking:
            depth += code.count("{") - code.count("}")
            if depth <= 0 and "{" in "".join(code_lines[open_line:i + 1]):
                if depth == 0 and code.count("{") + code.count("}") > 0:
                    shard_spans.append((open_line, i))
                    tracking = False
            # A declaration (prototype) with no body: stop at the semicolon.
            if depth == 0 and code.rstrip().endswith(";") and \
               "{" not in "".join(code_lines[open_line:i + 1]):
                tracking = False

    def in_shard_span(idx):
        return any(a <= idx <= b for a, b in shard_spans)

    for i, code in enumerate(code_lines):
        # DL001 — unordered declaration without justification.
        if UNORDERED_DECL_RE.search(code) and not suppressed(i):
            findings.append(Finding(
                "DL001", path, i + 1,
                "unordered container without `// detlint: "
                "order-insensitive(reason)` justification"))
        # DL002 — iteration over a known-unordered variable.
        m = RANGE_FOR_RE.search(code)
        if m:
            expr = m.group(1).strip()
            token = re.split(r"[^\w]", expr)[-1] or expr
            if token in unordered_vars and not suppressed(i):
                findings.append(Finding(
                    "DL002", path, i + 1,
                    f"range-for over unordered container `{token}` "
                    "(bucket order is not deterministic)"))
        # DL003 — nondeterministic sources.
        for rx, what in NONDET_RES:
            if rx.search(code):
                findings.append(Finding(
                    "DL003", path, i + 1,
                    f"nondeterministic source {what}; use seeded common::Rng "
                    "streams / the simulation clock"))
        # DL004 — pointer-keyed ordering.
        if PTR_KEYED_RE.search(code):
            findings.append(Finding(
                "DL004", path, i + 1,
                "pointer-keyed ordered container: pointer order is "
                "allocation order, not content order"))
        # DL005 — allocation inside a steady-state region.
        if region_at.get(i, False):
            for rx, what in ALLOC_RES:
                if rx.search(code):
                    findings.append(Finding(
                        "DL005", path, i + 1,
                        f"heap allocation ({what}) inside a "
                        "`detlint: steady-state` region"))
        # DL006 — forging the sequential capability on a shard path.
        if PHASE_SCOPE_RE.search(code) and in_shard_span(i):
            findings.append(Finding(
                "DL006", path, i + 1,
                "SequentialPhaseScope inside a shard-path function: shard "
                "hooks must never assert the sequential-phase capability"))
    return findings


def collect_files(paths):
    files = []
    for p in paths:
        if os.path.isfile(p):
            files.append(p)
        elif os.path.isdir(p):
            for root, _, names in os.walk(p):
                for name in sorted(names):
                    if os.path.splitext(name)[1] in CXX_EXTS:
                        files.append(os.path.join(root, name))
        else:
            raise SystemExit(f"detlint: no such path: {p}")
    return sorted(files)


def find_clang_query():
    for name in ("clang-query", "clang-query-19", "clang-query-18",
                 "clang-query-17", "clang-query-16", "clang-query-15",
                 "clang-query-14"):
        path = shutil.which(name)
        if path:
            return path
    return None


CLANG_QUERY_MATCHERS = """\
set output diag
m callExpr(callee(functionDecl(hasAnyName("::rand","::srand","::time","::clock","::gettimeofday"))))
m declRefExpr(hasDeclaration(namedDecl(hasName("::std::random_device"))))
"""


def run_clang_query(files, build_dir):
    """AST-accurate DL003 pass. Best-effort: infra problems are reported but
    do not fail the lint (the regex pass above is the gate); *matches* do."""
    binary = find_clang_query()
    if binary is None:
        print("detlint: clang-query not found; skipping AST pass", file=sys.stderr)
        return []
    if not os.path.exists(os.path.join(build_dir, "compile_commands.json")):
        print(f"detlint: no compile_commands.json under {build_dir}; "
              "skipping AST pass", file=sys.stderr)
        return []
    sources = [f for f in files if os.path.splitext(f)[1] in {".cc", ".cpp", ".cxx"}]
    if not sources:
        return []
    matcher_file = os.path.join(build_dir, "detlint_matchers.cq")
    with open(matcher_file, "w") as f:
        f.write(CLANG_QUERY_MATCHERS)
    try:
        proc = subprocess.run(
            [binary, "-p", build_dir, "-f", matcher_file] + sources,
            capture_output=True, text=True, timeout=600)
    except (OSError, subprocess.TimeoutExpired) as e:
        print(f"detlint: clang-query failed to run ({e}); skipping AST pass",
              file=sys.stderr)
        return []
    findings = []
    for line in proc.stdout.splitlines():
        m = re.match(r"(.+?):(\d+):\d+: note: \"root\" binds here", line)
        if m:
            findings.append(Finding("DL003", m.group(1), int(m.group(2)),
                                    "nondeterministic call (clang-query AST match)"))
    return findings


def self_test():
    here = os.path.dirname(os.path.abspath(__file__))
    fixture = os.path.join(here, "detlint_fixture")
    violations = os.path.join(fixture, "violations.cc")
    clean = os.path.join(fixture, "clean.cc")

    expected = []
    with open(violations) as f:
        for idx, line in enumerate(f, start=1):
            for m in re.finditer(r"expect:\s*(DL\d{3})(?:\s*@\s*([+-]\d+))?", line):
                expected.append((m.group(1), idx + int(m.group(2) or 0)))

    got = [(fi.rule, fi.line) for fi in lint_file(violations)]
    missing = [e for e in expected if e not in got]
    surplus = [g for g in got if g not in expected]
    ok = True
    if missing:
        ok = False
        for rule, line in missing:
            print(f"self-test: expected {rule} at violations.cc:{line}, not found")
    if surplus:
        ok = False
        for rule, line in surplus:
            print(f"self-test: unexpected {rule} at violations.cc:{line}")

    clean_findings = lint_file(clean)
    if clean_findings:
        ok = False
        for fi in clean_findings:
            print(f"self-test: clean fixture flagged: {fi}")

    if not ok:
        print("self-test: FAILED")
        return 1
    print(f"self-test: OK ({len(expected)} expected findings fired, "
          "clean fixture passes)")
    return 0


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*", default=None)
    ap.add_argument("--self-test", action="store_true",
                    help="verify the lint against its violation fixtures")
    ap.add_argument("--clang-query", default="off",
                    choices=["off", "auto"],
                    help="additionally run the AST-accurate pass when "
                         "clang-query and a compile database are available")
    ap.add_argument("--build-dir", default="build",
                    help="directory holding compile_commands.json for "
                         "--clang-query (default: build)")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test()

    paths = args.paths or ["src"]
    files = collect_files(paths)
    findings = []
    for f in files:
        findings.extend(lint_file(f))
    if args.clang_query == "auto":
        findings.extend(run_clang_query(files, args.build_dir))

    for fi in sorted(findings, key=lambda x: (x.path, x.line, x.rule)):
        print(fi)
    if findings:
        print(f"detlint: {len(findings)} finding(s) in {len(files)} file(s)")
        return 1
    print(f"detlint: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
