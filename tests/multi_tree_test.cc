#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/topology.h"
#include "routing/multi_tree.h"

namespace aspen {
namespace routing {
namespace {

/// Deterministic static attribute: a small value domain so searches have
/// several matches.
int32_t AttrOf(net::NodeId id) { return (id * 7) % 12; }

class MultiTreeTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    auto topo = net::Topology::Random(100, 7.0, 23);
    ASSERT_TRUE(topo.ok());
    topo_ = std::make_unique<net::Topology>(std::move(*topo));
    MultiTreeOptions opts;
    opts.num_trees = GetParam();
    multi_ = std::make_unique<MultiTree>(topo_.get(), opts, nullptr);
    IndexedAttribute attr;
    attr.name = "a";
    attr.summary_type = SummaryType::kBloom;
    attr.value_fn = AttrOf;
    auto idx = multi_->IndexAttribute(attr);
    ASSERT_TRUE(idx.ok());
    attr_idx_ = *idx;
  }

  std::unique_ptr<net::Topology> topo_;
  std::unique_ptr<MultiTree> multi_;
  int attr_idx_ = -1;
};

TEST_P(MultiTreeTest, BuildsRequestedTrees) {
  EXPECT_EQ(multi_->num_trees(), GetParam());
  EXPECT_EQ(multi_->primary().root(), 0);
  // Roots are distinct.
  std::set<net::NodeId> roots(multi_->roots().begin(), multi_->roots().end());
  EXPECT_EQ(static_cast<int>(roots.size()), GetParam());
}

TEST_P(MultiTreeTest, FurtherRootsAreFar) {
  if (GetParam() < 2) return;
  // The second root maximizes hop distance from the base.
  auto dist = topo_->HopDistancesFrom(0);
  int max_d = *std::max_element(dist.begin(), dist.end());
  EXPECT_EQ(dist[multi_->roots()[1]], max_d);
}

TEST_P(MultiTreeTest, FindMatchesIsCompleteAndExact) {
  // Every node whose attribute equals the probe must be found (conservative
  // summaries guarantee no false negatives), and nothing else.
  for (net::NodeId source : {1, 25, 73}) {
    for (int32_t probe : {0, 5, 11}) {
      auto found = multi_->FindMatches(source, attr_idx_, probe);
      std::set<net::NodeId> found_ids;
      for (const auto& fp : found) found_ids.insert(fp.target);
      for (net::NodeId u = 0; u < topo_->num_nodes(); ++u) {
        bool expect = u != source && AttrOf(u) == probe;
        EXPECT_EQ(found_ids.count(u) > 0, expect)
            << "source " << source << " probe " << probe << " node " << u;
      }
    }
  }
}

TEST_P(MultiTreeTest, PathsAreValidWalks) {
  auto found = multi_->FindMatches(10, attr_idx_, 3);
  ASSERT_FALSE(found.empty());
  for (const auto& fp : found) {
    ASSERT_GE(fp.path.size(), 2u);
    EXPECT_EQ(fp.path.front(), 10);
    EXPECT_EQ(fp.path.back(), fp.target);
    for (size_t i = 0; i + 1 < fp.path.size(); ++i) {
      EXPECT_TRUE(topo_->AreNeighbors(fp.path[i], fp.path[i + 1]));
    }
    EXPECT_LT(fp.tree_index, GetParam());
  }
}

TEST_P(MultiTreeTest, AtMostOnePathPerTargetPerTree) {
  auto found = multi_->FindMatches(4, attr_idx_, 7);
  std::set<std::pair<net::NodeId, int>> seen;
  for (const auto& fp : found) {
    EXPECT_TRUE(seen.insert({fp.target, fp.tree_index}).second);
  }
}

TEST_P(MultiTreeTest, AcceptFilterNarrowsTargets) {
  auto all = multi_->FindMatches(10, attr_idx_, 3);
  auto even_only = multi_->FindMatches(10, attr_idx_, 3,
                                       [](net::NodeId t) { return t % 2 == 0; });
  std::set<net::NodeId> evens;
  for (const auto& fp : even_only) {
    EXPECT_EQ(fp.target % 2, 0);
    evens.insert(fp.target);
  }
  std::set<net::NodeId> all_evens;
  for (const auto& fp : all) {
    if (fp.target % 2 == 0) all_evens.insert(fp.target);
  }
  EXPECT_EQ(evens, all_evens);
}

TEST_P(MultiTreeTest, SearchChargesTraffic) {
  net::TrafficStats stats(topo_->num_nodes());
  SearchStats ss;
  multi_->FindMatches(10, attr_idx_, 3, nullptr, &stats, &ss);
  EXPECT_GT(stats.TotalBytesSent(), 0u);
  EXPECT_GT(ss.exploration_bytes, 0);
  EXPECT_GT(ss.reply_bytes, 0);
  EXPECT_GT(ss.max_hops, 0);
  EXPECT_GT(ss.paths_found, 0);
  EXPECT_EQ(stats.BytesByKind(net::MessageKind::kExploration) +
                stats.BytesByKind(net::MessageKind::kExplorationReply),
            stats.TotalBytesSent());
}

TEST_P(MultiTreeTest, MoreTreesFindAlternatePathsNotWorseBest) {
  // With more trees the best discovered path per target can only improve.
  auto found = multi_->FindMatches(10, attr_idx_, 3);
  std::map<net::NodeId, size_t> best;
  for (const auto& fp : found) {
    auto it = best.find(fp.target);
    if (it == best.end() || fp.path.size() < it->second) {
      best[fp.target] = fp.path.size();
    }
  }
  for (const auto& [target, len] : best) {
    auto shortest = topo_->ShortestPath(10, target);
    EXPECT_GE(len, shortest.size());  // tree paths can't beat BFS
  }
}

TEST_P(MultiTreeTest, RadiusSearchFindsRegionNodes) {
  multi_->IndexPositions();
  const double radius = 40.0;
  for (net::NodeId source : {8, 55}) {
    auto found = multi_->FindWithinRadius(source, radius);
    std::set<net::NodeId> ids;
    for (const auto& fp : found) ids.insert(fp.target);
    for (net::NodeId u = 0; u < topo_->num_nodes(); ++u) {
      bool expect = u != source &&
                    topo_->DistanceBetween(source, u) <= radius;
      EXPECT_EQ(ids.count(u) > 0, expect) << u;
    }
  }
}

TEST_P(MultiTreeTest, ConstructionBytesAccumulate) {
  net::TrafficStats stats(topo_->num_nodes());
  MultiTreeOptions opts;
  opts.num_trees = GetParam();
  MultiTree charged(topo_.get(), opts, &stats);
  EXPECT_GT(stats.TotalBytesSent(), 0u);
  IndexedAttribute attr;
  attr.name = "a";
  attr.value_fn = AttrOf;
  uint64_t before = stats.TotalBytesSent();
  ASSERT_TRUE(charged.IndexAttribute(attr, &stats).ok());
  EXPECT_GT(stats.TotalBytesSent(), before);
  EXPECT_GT(charged.construction_bytes(), 0);
}

INSTANTIATE_TEST_SUITE_P(TreeCounts, MultiTreeTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace routing
}  // namespace aspen
