#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"

namespace aspen {
namespace {

// ---- Status ----------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad window");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad window");
  EXPECT_EQ(st.ToString(), "invalid_argument: bad window");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kNotImplemented); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "unknown");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, OkCodeNormalizesMessage) {
  Status st(StatusCode::kOk, "ignored");
  EXPECT_TRUE(st.ok());
  EXPECT_TRUE(st.message().empty());
}

// ---- Result ----------------------------------------------------------------

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = Half(10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Half(3);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto chain = [](int x) -> Result<int> {
    ASPEN_ASSIGN_OR_RETURN(int half, Half(x));
    return half + 1;
  };
  ASSERT_TRUE(chain(4).ok());
  EXPECT_EQ(*chain(4), 3);
  EXPECT_FALSE(chain(5).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

// ---- Rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.UniformInt(bound), bound);
    }
  }
}

TEST(RngTest, UniformIntCoversAllResidues) {
  Rng rng(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(5);
  std::vector<int> bins(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++bins[rng.UniformInt(10)];
  for (int b : bins) {
    EXPECT_NEAR(b, draws / 10, draws / 10 * 0.1);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(19);
  double sum = 0, sumsq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(10.0, 3.0);
    sum += v;
    sumsq += v * v;
  }
  double mean = sum / n;
  double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(21);
  Rng child = a.Fork();
  Rng b(21);
  Rng child2 = b.Fork();
  // Forks of identical parents agree (determinism)...
  for (int i = 0; i < 32; ++i) EXPECT_EQ(child.Next64(), child2.Next64());
  // ...but differ from the parent's continued stream.
  Rng c(21);
  Rng child3 = c.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (c.Next64() == child3.Next64()) ++same;
  }
  EXPECT_LE(same, 1);
}

}  // namespace
}  // namespace aspen
