// Cross-query shared multicast trees (DESIGN.md "Cross-query work
// sharing"): the destination-set addressed RouteTable index, the KMB
// shared Steiner builder, and their lifecycle under refcounted epoch GC.

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/phase.h"
#include "net/route_table.h"
#include "net/topology.h"
#include "routing/multi_tree.h"

namespace aspen {
namespace {

using net::kInvalidRoute;
using net::McastId;
using net::MulticastRoute;
using net::NodeId;
using net::RouteTable;
using net::Topology;

Topology TestTopology() { return *Topology::Grid(6, 6, 180.0); }

MulticastRoute TreeFor(const Topology& topo, NodeId source,
                       std::vector<NodeId> targets) {
  return routing::BuildSharedSteinerTree(topo, source, targets);
}

// Walks `route` from `source` along tree edges; every reached node is
// visited exactly once iff the edge set is a tree rooted at the source.
std::vector<NodeId> DeliveredTargets(const MulticastRoute& route,
                                     NodeId source) {
  std::vector<NodeId> delivered;
  std::set<NodeId> visited;
  std::vector<NodeId> frontier{source};
  visited.insert(source);
  while (!frontier.empty()) {
    NodeId at = frontier.back();
    frontier.pop_back();
    if (route.IsTarget(at)) delivered.push_back(at);
    auto [first, last] = route.ChildrenOf(at);
    for (const auto* e = first; e != last; ++e) {
      EXPECT_TRUE(visited.insert(e->second).second)
          << "node " << e->second << " reached twice";
      frontier.push_back(e->second);
    }
  }
  std::sort(delivered.begin(), delivered.end());
  return delivered;
}

TEST(SharedSteinerTreeTest, CoversEveryTargetExactlyOnce) {
  auto topo = TestTopology();
  const NodeId source = 0;
  const std::vector<NodeId> targets{7, 14, 22, 29, 35};
  MulticastRoute route = TreeFor(topo, source, targets);
  // Delivery along the tree reaches each destination exactly once (the
  // walk asserts single-visitation), matching the per-source union of
  // shortest-path destinations.
  EXPECT_EQ(DeliveredTargets(route, source), targets);
  // Every edge is a real radio link.
  for (const auto& [p, c] : route.edges) {
    EXPECT_TRUE(topo.AreNeighbors(p, c)) << p << " -> " << c;
  }
  // Canonical order: Normalize() sorts edges and targets.
  EXPECT_TRUE(std::is_sorted(route.edges.begin(), route.edges.end()));
  EXPECT_TRUE(std::is_sorted(route.targets.begin(), route.targets.end()));
  // A tree has exactly one parent per non-root node.
  std::set<NodeId> children;
  for (const auto& [p, c] : route.edges) {
    EXPECT_TRUE(children.insert(c).second) << "two parents for " << c;
    EXPECT_NE(c, source);
  }
}

TEST(SharedSteinerTreeTest, DependsOnlyOnSourceAndDestinationSet) {
  auto topo = TestTopology();
  const std::vector<NodeId> targets{3, 18, 31};
  MulticastRoute a = TreeFor(topo, 5, targets);
  MulticastRoute b = TreeFor(topo, 5, targets);
  EXPECT_EQ(a, b);  // byte-identical across rebuilds
  // Unsorted/duplicated target input normalizes to the same tree.
  MulticastRoute c = TreeFor(topo, 5, {31, 3, 18, 3});
  EXPECT_EQ(a, c);
}

TEST(SharedSteinerTreeTest, NoLongerThanPerSourceUnion) {
  auto topo = TestTopology();
  const NodeId source = 2;
  const std::vector<NodeId> targets{12, 17, 25, 33};
  MulticastRoute shared = TreeFor(topo, source, targets);
  // Per-source reference: the union of individual shortest paths.
  std::set<std::pair<NodeId, NodeId>> union_edges;
  for (NodeId t : targets) {
    auto path = topo.ShortestPath(source, t);
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      union_edges.insert({path[i], path[i + 1]});
    }
  }
  EXPECT_LE(shared.edges.size(), union_edges.size());
}

TEST(SharedRouteTableTest, SameDestinationSetInternsOnce) {
  common::SequentialPhaseScope seq_phase;
  auto topo = TestTopology();
  RouteTable table;
  const NodeId root = 0;
  const std::vector<NodeId> targets{7, 14, 22};

  // Query A: miss, build, intern.
  EXPECT_EQ(table.FindSharedMulticast(root, targets), kInvalidRoute);
  McastId a = table.InternSharedMulticast(root, TreeFor(topo, root, targets));
  ASSERT_NE(a, kInvalidRoute);
  table.AddMulticastRef(a);

  // Query B with the same destination set adopts the same id — no rebuild.
  McastId b = table.FindSharedMulticast(root, targets);
  EXPECT_EQ(b, a);
  table.AddMulticastRef(b);

  // A different root or target set does not alias.
  EXPECT_EQ(table.FindSharedMulticast(1, targets), kInvalidRoute);
  EXPECT_EQ(table.FindSharedMulticast(root, {7, 14}), kInvalidRoute);
  EXPECT_EQ(table.live_multicasts(), 1u);
}

TEST(SharedRouteTableTest, RefcountSurvivesOneOwnersRelease) {
  common::SequentialPhaseScope seq_phase;
  auto topo = TestTopology();
  RouteTable table;
  const NodeId root = 3;
  const std::vector<NodeId> targets{10, 20, 30};
  McastId id = table.InternSharedMulticast(root, TreeFor(topo, root, targets));
  table.AddMulticastRef(id);  // owner A
  table.AddMulticastRef(id);  // owner B

  // A departs: the tree stays live and findable through B's reference.
  table.ReleaseMulticastRef(id);
  EXPECT_EQ(table.SweepRetired(), 0u);
  EXPECT_TRUE(table.IsValidMulticast(id));
  EXPECT_EQ(table.FindSharedMulticast(root, targets), id);
  EXPECT_EQ(table.live_multicasts(), 1u);
}

TEST(SharedRouteTableTest, EpochSweepRetiresAtLastRelease) {
  common::SequentialPhaseScope seq_phase;
  auto topo = TestTopology();
  RouteTable table;
  const NodeId root = 3;
  const std::vector<NodeId> targets{10, 20, 30};
  McastId id = table.InternSharedMulticast(root, TreeFor(topo, root, targets));
  table.AddMulticastRef(id);
  table.AddMulticastRef(id);
  table.ReleaseMulticastRef(id);
  table.ReleaseMulticastRef(id);

  // Retired but unswept: still resolvable (frames may be in flight), and a
  // late adopter resurrects it instead of rebuilding.
  EXPECT_TRUE(table.IsValidMulticast(id));
  EXPECT_EQ(table.FindSharedMulticast(root, targets), id);
  table.AddMulticastRef(id);
  EXPECT_EQ(table.SweepRetired(), 0u);  // resurrection won
  EXPECT_TRUE(table.IsValidMulticast(id));

  // Final release + epoch sweep frees the slot and the dest-set key.
  table.ReleaseMulticastRef(id);
  EXPECT_EQ(table.SweepRetired(), 1u);
  EXPECT_FALSE(table.IsValidMulticast(id));
  EXPECT_EQ(table.FindSharedMulticast(root, targets), kInvalidRoute);
  EXPECT_EQ(table.live_multicasts(), 0u);

  // The recycled slot serves a fresh destination set cleanly.
  McastId next =
      table.InternSharedMulticast(root, TreeFor(topo, root, {5, 15}));
  EXPECT_EQ(next, id);  // slot recycled
  EXPECT_EQ(table.FindSharedMulticast(root, {5, 15}), next);
  EXPECT_EQ(table.FindSharedMulticast(root, targets), kInvalidRoute);
}

TEST(SharedRouteTableTest, SharedTreeDeliveryMatchesPerSourceReference) {
  common::SequentialPhaseScope seq_phase;
  auto topo = TestTopology();
  RouteTable table;
  const NodeId root = 0;
  // Two queries with 50% overlapping destination sets.
  const std::vector<NodeId> dests_a{8, 16, 24, 32};
  const std::vector<NodeId> dests_b{16, 24, 27, 35};
  McastId a = table.InternSharedMulticast(root, TreeFor(topo, root, dests_a));
  McastId b = table.InternSharedMulticast(root, TreeFor(topo, root, dests_b));
  EXPECT_NE(a, b);  // distinct sets, distinct trees
  EXPECT_EQ(DeliveredTargets(table.Multicast(a), root), dests_a);
  EXPECT_EQ(DeliveredTargets(table.Multicast(b), root), dests_b);
}

}  // namespace
}  // namespace aspen
