#include <algorithm>

#include <gtest/gtest.h>

#include "net/topology.h"

namespace aspen {
namespace net {
namespace {

TEST(TopologyTest, RandomIsConnectedAndCentered) {
  auto topo = Topology::Random(100, 7.0, 42);
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ(topo->num_nodes(), 100);
  EXPECT_TRUE(topo->IsConnected());
  // Base station at the field center.
  EXPECT_NEAR(topo->position(0).x, 128.0, 1e-9);
  EXPECT_NEAR(topo->position(0).y, 128.0, 1e-9);
}

TEST(TopologyTest, RandomHitsTargetDegree) {
  for (double target : {6.0, 7.0, 8.0, 13.0}) {
    auto topo = Topology::Random(100, target, 7);
    ASSERT_TRUE(topo.ok()) << target;
    EXPECT_NEAR(topo->AverageDegree(), target, 1.0) << target;
  }
}

TEST(TopologyTest, RandomIsDeterministicPerSeed) {
  auto a = Topology::Random(50, 7.0, 5);
  auto b = Topology::Random(50, 7.0, 5);
  ASSERT_TRUE(a.ok() && b.ok());
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a->position(i).x, b->position(i).x);
    EXPECT_DOUBLE_EQ(a->position(i).y, b->position(i).y);
  }
  EXPECT_DOUBLE_EQ(a->radio_range(), b->radio_range());
}

TEST(TopologyTest, RandomRejectsBadArguments) {
  EXPECT_FALSE(Topology::Random(1, 7.0, 1).ok());
  EXPECT_FALSE(Topology::Random(10, 0.0, 1).ok());
  EXPECT_FALSE(Topology::Random(10, 20.0, 1).ok());
}

TEST(TopologyTest, AdjacencySymmetricAndIrreflexive) {
  auto topo = Topology::Random(80, 8.0, 3);
  ASSERT_TRUE(topo.ok());
  for (NodeId u = 0; u < topo->num_nodes(); ++u) {
    EXPECT_FALSE(topo->AreNeighbors(u, u));
    for (NodeId v : topo->neighbors(u)) {
      EXPECT_TRUE(topo->AreNeighbors(v, u));
      EXPECT_LE(topo->DistanceBetween(u, v), topo->radio_range());
    }
  }
}

TEST(TopologyTest, GridStructure) {
  auto topo = Topology::Grid(10, 10);
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ(topo->num_nodes(), 100);
  EXPECT_TRUE(topo->IsConnected());
  // Interior nodes have 8 neighbors; grid average is ~7 with border effects.
  EXPECT_NEAR(topo->AverageDegree(), 7.0, 0.8);
  // Base station near the center of the field.
  EXPECT_NEAR(topo->position(0).x, 128.0, 26.0);
  EXPECT_NEAR(topo->position(0).y, 128.0, 26.0);
}

TEST(TopologyTest, GridRejectsDegenerate) {
  EXPECT_FALSE(Topology::Grid(1, 5).ok());
}

TEST(TopologyTest, IntelLabLayout) {
  Topology topo = Topology::IntelLab();
  EXPECT_EQ(topo.num_nodes(), 54);
  EXPECT_TRUE(topo.IsConnected());
  EXPECT_GE(topo.AverageDegree(), 6.0);
}

TEST(TopologyTest, HopDistancesMatchBfsInvariants) {
  auto topo = Topology::Random(60, 7.0, 9);
  ASSERT_TRUE(topo.ok());
  auto dist = topo->HopDistancesFrom(0);
  EXPECT_EQ(dist[0], 0);
  for (NodeId u = 0; u < topo->num_nodes(); ++u) {
    ASSERT_GE(dist[u], 0);
    // Triangle property: neighbors differ by at most one hop.
    for (NodeId v : topo->neighbors(u)) {
      EXPECT_LE(std::abs(dist[u] - dist[v]), 1);
    }
  }
}

TEST(TopologyTest, ShortestPathIsValidAndShortest) {
  auto topo = Topology::Random(60, 7.0, 11);
  ASSERT_TRUE(topo.ok());
  auto dist = topo->HopDistancesFrom(5);
  for (NodeId dst : {0, 17, 42, 59}) {
    auto path = topo->ShortestPath(5, dst);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), 5);
    EXPECT_EQ(path.back(), dst);
    EXPECT_EQ(static_cast<int>(path.size()) - 1, dist[dst]);
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      EXPECT_TRUE(topo->AreNeighbors(path[i], path[i + 1]));
    }
  }
}

TEST(TopologyTest, ShortestPathToSelf) {
  auto topo = Topology::Random(20, 6.0, 2);
  ASSERT_TRUE(topo.ok());
  auto path = topo->ShortestPath(3, 3);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 3);
}

TEST(TopologyTest, NearestNode) {
  auto topo = Topology::Grid(4, 4);
  ASSERT_TRUE(topo.ok());
  for (NodeId u = 0; u < topo->num_nodes(); ++u) {
    EXPECT_EQ(topo->NearestNode(topo->position(u)), u);
  }
}

// ---- golden equality against the all-pairs reference -------------------------

// The generator BuildAdjacency replaced: every ordered pair tested with the
// exact Distance() predicate; ascending neighbor order falls out of the scan.
std::vector<std::vector<NodeId>> AllPairsAdjacency(const Topology& t) {
  const int n = t.num_nodes();
  std::vector<std::vector<NodeId>> adj(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (v == u) continue;
      if (Distance(t.position(u), t.position(v)) <= t.radio_range()) {
        adj[u].push_back(v);
      }
    }
  }
  return adj;
}

// Gabriel planarization over the reference adjacency: keep (u, v) iff no
// radio neighbor w of u lies strictly inside the circle with diameter uv.
std::vector<std::vector<NodeId>> AllPairsGabriel(
    const Topology& t, const std::vector<std::vector<NodeId>>& adj) {
  const int n = t.num_nodes();
  std::vector<std::vector<NodeId>> gab(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : adj[u]) {
      if (v < u) continue;
      const double duv = t.DistanceBetween(u, v);
      bool witness = false;
      for (NodeId w : adj[u]) {
        if (w == v) continue;
        const double duw = t.DistanceBetween(u, w);
        const double dwv = t.DistanceBetween(w, v);
        if (duw * duw + dwv * dwv < duv * duv) {
          witness = true;
          break;
        }
      }
      if (!witness) {
        gab[u].push_back(v);
        gab[v].push_back(u);
      }
    }
  }
  for (auto& g : gab) std::sort(g.begin(), g.end());
  return gab;
}

class TopologyKindTest : public ::testing::TestWithParam<TopologyKind> {};

// The spatial-index generator must reproduce the all-pairs scan it replaced
// byte for byte — same neighbor sets, same ascending ordering — for every
// named deployment kind across three sizes (the Intel lab layout is a fixed
// 54-node floor plan, checked once).
TEST_P(TopologyKindTest, GoldenEqualsAllPairsReference) {
  for (int n : {50, 200, 1000}) {
    auto topo = Topology::Make(GetParam(), n, /*seed=*/17 + n);
    // The sparse density can exhaust its connectivity retries at some
    // (size, seed) points; fall back to a seed known to place connectedly.
    if (!topo.ok()) topo = Topology::Make(GetParam(), n, /*seed=*/5);
    ASSERT_TRUE(topo.ok());
    const auto adj = AllPairsAdjacency(*topo);
    const auto gab = AllPairsGabriel(*topo, adj);
    for (NodeId u = 0; u < topo->num_nodes(); ++u) {
      ASSERT_EQ(topo->neighbors(u), adj[u])
          << TopologyKindName(GetParam()) << " n=" << n << " node " << u;
      ASSERT_EQ(topo->GabrielNeighbors(u), gab[u])
          << TopologyKindName(GetParam()) << " n=" << n << " node " << u;
    }
    if (GetParam() == TopologyKind::kIntelLab) break;
  }
}

TEST_P(TopologyKindTest, MakeProducesConnectedNetworkAtDensity) {
  auto topo = Topology::Make(GetParam(), 100, 31);
  ASSERT_TRUE(topo.ok());
  EXPECT_TRUE(topo->IsConnected());
  if (GetParam() != TopologyKind::kIntelLab) {
    EXPECT_NEAR(topo->AverageDegree(), TargetDegree(GetParam()), 1.2);
  }
  EXPECT_STRNE(TopologyKindName(GetParam()), "unknown");
}

INSTANTIATE_TEST_SUITE_P(AllKinds, TopologyKindTest,
                         ::testing::Values(TopologyKind::kSparseRandom,
                                           TopologyKind::kModerateRandom,
                                           TopologyKind::kMediumRandom,
                                           TopologyKind::kDenseRandom,
                                           TopologyKind::kGrid,
                                           TopologyKind::kIntelLab));

}  // namespace
}  // namespace net
}  // namespace aspen
