// Unit coverage for the data-plane primitives: pooled payloads
// (generation-checked slab reuse, double-free and stale-handle safety) and
// the route table (path/multicast interning, content dedup, fan-out order).

#include <gtest/gtest.h>

#include "common/phase.h"
#include "net/data_plane.h"
#include "net/payload_pool.h"
#include "net/route_table.h"

namespace aspen {
namespace net {
namespace {

struct TestPayload {
  int value = 0;
  std::vector<int> buffer;
};

TEST(TypedPoolTest, AllocateGetRoundtrip) {
  // The single test thread is the sequential phase: nothing runs
  // concurrently with these direct network mutations.
  common::SequentialPhaseScope seq_phase;
  TypedPool<TestPayload> pool(1);
  PayloadHandle h = pool.Allocate();
  ASSERT_TRUE(h.valid());
  TestPayload* p = pool.Get(h);
  ASSERT_NE(p, nullptr);
  p->value = 42;
  EXPECT_EQ(pool.Get(h)->value, 42);
  EXPECT_EQ(pool.live(), 1u);
}

TEST(TypedPoolTest, ReleaseFreesSlotAndStalesOldHandles) {
  common::SequentialPhaseScope seq_phase;
  TypedPool<TestPayload> pool(1);
  PayloadHandle h = pool.Allocate();
  pool.Get(h)->buffer.assign(64, 7);
  EXPECT_TRUE(pool.Release(h));
  EXPECT_EQ(pool.live(), 0u);
  // The old handle is stale: access fails softly.
  EXPECT_EQ(pool.Get(h), nullptr);
  // The slot is recycled with its capacity intact.
  PayloadHandle h2 = pool.Allocate();
  EXPECT_EQ(h2.slot, h.slot);
  EXPECT_NE(h2.gen, h.gen);
  EXPECT_GE(pool.Get(h2)->buffer.capacity(), 64u);
  EXPECT_EQ(pool.capacity(), 1u);  // no second slot was ever needed
}

TEST(TypedPoolTest, DoubleFreeReturnsFalseAndLeavesPoolIntact) {
  common::SequentialPhaseScope seq_phase;
  TypedPool<TestPayload> pool(1);
  PayloadHandle h = pool.Allocate();
  EXPECT_TRUE(pool.Release(h));
  EXPECT_FALSE(pool.Release(h));  // double-free detected, not corrupting
  PayloadHandle h2 = pool.Allocate();
  EXPECT_NE(pool.Get(h2), nullptr);
  EXPECT_FALSE(pool.Release(h));  // stale even after the slot was reused
  EXPECT_EQ(pool.live(), 1u);
}

TEST(TypedPoolTest, AddRefKeepsSlotAliveUntilFinalRelease) {
  common::SequentialPhaseScope seq_phase;
  TypedPool<TestPayload> pool(1);
  PayloadHandle h = pool.Allocate();
  EXPECT_TRUE(pool.AddRef(h));
  EXPECT_TRUE(pool.Release(h));
  EXPECT_NE(pool.Get(h), nullptr);  // one reference left
  EXPECT_TRUE(pool.Release(h));
  EXPECT_EQ(pool.Get(h), nullptr);
  EXPECT_FALSE(pool.AddRef(h));  // resurrect attempts fail
}

TEST(TypedPoolTest, WrongPoolTagRejected) {
  common::SequentialPhaseScope seq_phase;
  TypedPool<TestPayload> pool(1);
  PayloadHandle h = pool.Allocate();
  h.pool = 2;
  EXPECT_EQ(pool.Get(h), nullptr);
  EXPECT_FALSE(pool.Release(h));
}

TEST(TypedPoolTest, ClearFreesEverythingKeepsSlabs) {
  common::SequentialPhaseScope seq_phase;
  TypedPool<TestPayload> pool(1);
  PayloadHandle a = pool.Allocate();
  PayloadHandle b = pool.Allocate();
  pool.AddRef(b);  // even leaked references are reclaimed
  pool.Clear();
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_EQ(pool.capacity(), 2u);
  EXPECT_EQ(pool.Get(a), nullptr);
  EXPECT_EQ(pool.Get(b), nullptr);
}

TEST(PayloadArenaTest, RoutesHandlesToTheRightPoolAndIgnoresEmpty) {
  common::SequentialPhaseScope seq_phase;
  PayloadArena arena;
  auto* pool = arena.GetOrCreate<TestPayload>(3);
  EXPECT_EQ(arena.GetOrCreate<TestPayload>(3), pool);  // same binding
  PayloadHandle h = pool->Allocate();
  arena.AddRef(h);
  arena.Release(h);
  arena.Release(h);
  EXPECT_EQ(pool->live(), 0u);
  arena.Release(PayloadHandle{});  // no payload: a no-op
  EXPECT_EQ(arena.live(), 0u);
}

TEST(RouteTableTest, InternDedupesByContent) {
  common::SequentialPhaseScope seq_phase;
  RouteTable rt;
  RouteId a = rt.InternPath({1, 2, 3});
  RouteId b = rt.InternPath({1, 2, 3});
  RouteId c = rt.InternPath({3, 2, 1});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(rt.num_paths(), 2u);
  EXPECT_EQ(rt.PathLength(a), 3);
  EXPECT_EQ(rt.PathFront(a), 1);
  EXPECT_EQ(rt.PathBack(a), 3);
  EXPECT_EQ(rt.PathNode(c, 1), 2);
  EXPECT_EQ(rt.InternPath(nullptr, 0), kInvalidRoute);
}

TEST(RouteTableTest, ResetKeepsIdsDense) {
  common::SequentialPhaseScope seq_phase;
  RouteTable rt;
  rt.InternPath({1, 2});
  rt.Reset();
  EXPECT_EQ(rt.num_paths(), 0u);
  EXPECT_EQ(rt.InternPath({5, 6}), 0);
}

TEST(RouteTableTest, MulticastNormalizesAndDedupes) {
  common::SequentialPhaseScope seq_phase;
  RouteTable rt;
  MulticastRoute a;
  a.edges = {{2, 3}, {2, 1}, {3, 4}};  // deliberately unsorted
  a.targets = {4, 1};
  MulticastRoute b;
  b.edges = {{2, 1}, {2, 3}, {3, 4}};
  b.targets = {1, 4};
  McastId ia = rt.InternMulticast(std::move(a));
  McastId ib = rt.InternMulticast(std::move(b));
  EXPECT_EQ(ia, ib);
  const MulticastRoute& r = rt.Multicast(ia);
  // Normalized: edges sorted (parent, child) ascending.
  EXPECT_EQ(r.edges.front(), (std::pair<NodeId, NodeId>{2, 1}));
  auto [lo, hi] = r.ChildrenOf(2);
  ASSERT_EQ(hi - lo, 2);
  EXPECT_EQ(lo[0].second, 1);
  EXPECT_EQ(lo[1].second, 3);
  EXPECT_TRUE(r.IsTarget(4));
  EXPECT_FALSE(r.IsTarget(2));
}

}  // namespace
}  // namespace net
}  // namespace aspen
