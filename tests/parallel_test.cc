#include "common/parallel.h"

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace aspen {
namespace common {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  constexpr int kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(kN, 4, [&](int i) { hits[i].fetch_add(1); });
  for (int i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelForTest, ZeroAndNegativeNAreNoops) {
  std::atomic<int> calls{0};
  ParallelFor(0, 4, [&](int) { calls.fetch_add(1); });
  ParallelFor(-3, 4, [&](int) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, SingleThreadRunsInlineOnCaller) {
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(8);
  ParallelFor(8, 1, [&](int i) { ids[i] = std::this_thread::get_id(); });
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

TEST(ParallelForTest, ExceptionPropagatesAndEveryIndexStillRuns) {
  constexpr int kN = 64;
  std::atomic<int> calls{0};
  EXPECT_THROW(ParallelFor(kN, 4,
                           [&](int i) {
                             calls.fetch_add(1);
                             if (i == 7) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
  EXPECT_EQ(calls.load(), kN);
}

TEST(WorkerPoolTest, ZeroNIsNoop) {
  WorkerPool pool(2);
  std::atomic<int> calls{0};
  pool.Run(0, [&](int) { calls.fetch_add(1); });
  pool.Run(-1, [&](int) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(WorkerPoolTest, ZeroWorkersRunsInlineOnCaller) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(16);
  pool.Run(16, [&](int i) { ids[i] = std::this_thread::get_id(); });
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

TEST(WorkerPoolTest, NEqualsOneRunsInlineEvenWithWorkers) {
  WorkerPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.Run(1, [&](int) { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, caller);
}

TEST(WorkerPoolTest, MoreWorkersThanItemsCoversEveryIndexExactlyOnce) {
  WorkerPool pool(8);
  constexpr int kN = 3;
  std::vector<std::atomic<int>> hits(kN);
  pool.Run(kN, [&](int i) { hits[i].fetch_add(1); });
  for (int i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(WorkerPoolTest, ReuseAcrossRunsWithVaryingN) {
  WorkerPool pool(3);
  long long total = 0;
  for (int round = 0; round < 50; ++round) {
    const int n = 1 + (round % 7) * 13;  // exercises inline and pooled paths
    std::atomic<long long> sum{0};
    pool.Run(n, [&](int i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), static_cast<long long>(n) * (n + 1) / 2)
        << "round " << round;
    total += sum.load();
  }
  EXPECT_GT(total, 0);
}

TEST(WorkerPoolTest, ExceptionPropagatesFromInlinePath) {
  WorkerPool pool(0);
  std::atomic<int> calls{0};
  EXPECT_THROW(pool.Run(5,
                        [&](int i) {
                          calls.fetch_add(1);
                          if (i == 2) throw std::runtime_error("inline boom");
                        }),
               std::runtime_error);
  // Every index still runs; the throw is deferred to the end of the job.
  EXPECT_EQ(calls.load(), 5);
}

TEST(WorkerPoolTest, ExceptionPropagatesFromWorkersAndPoolStaysUsable) {
  WorkerPool pool(4);
  constexpr int kN = 128;
  std::atomic<int> calls{0};
  EXPECT_THROW(pool.Run(kN,
                        [&](int i) {
                          calls.fetch_add(1);
                          if (i % 31 == 7) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
  EXPECT_EQ(calls.load(), kN);

  // A failed job must not poison the pool: the next Run is clean.
  std::atomic<int> ok{0};
  pool.Run(kN, [&](int) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), kN);
}

TEST(WorkerPoolTest, WorkerThreadsActuallyParticipate) {
  WorkerPool pool(4);
  constexpr int kN = 512;
  std::mutex mu;
  std::set<std::thread::id> seen;
  pool.Run(kN, [&](int) {
    // A little work so the caller cannot drain everything alone.
    volatile int spin = 0;
    for (int k = 0; k < 1000; ++k) spin += k;
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(std::this_thread::get_id());
  });
  // The caller participates, so at least one thread is always seen; with
  // four workers and sizable work, more than one thread should appear.
  EXPECT_GE(seen.size(), 1u);
}

TEST(WorkerPoolDispatchTest, OverlapsWithMainThreadWork) {
  WorkerPool pool(2);
  constexpr int kN = 64;
  std::vector<std::atomic<int>> hits(kN);
  std::atomic<bool> release{false};
  const std::thread::id caller = std::this_thread::get_id();
  std::mutex mu;
  std::set<std::thread::id> seen;
  auto job = std::function<void(int)>([&](int i) {
    // Park until the main thread has provably progressed past Dispatch():
    // the job cannot have run synchronously inside it.
    while (!release.load()) std::this_thread::yield();
    hits[i].fetch_add(1);
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(std::this_thread::get_id());
  });
  pool.Dispatch(kN, job);
  // Main-thread work overlapping the dispatched job.
  long long local = 0;
  for (int k = 0; k < 1000; ++k) local += k;
  EXPECT_EQ(local, 499500);
  release.store(true);
  pool.Wait();
  for (int i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  // The caller never participates in a dispatched job.
  EXPECT_EQ(seen.count(caller), 0u);
  EXPECT_GE(seen.size(), 1u);
}

TEST(WorkerPoolDispatchTest, ExceptionCapturedAtDispatchSurfacesAtWait) {
  WorkerPool pool(3);
  constexpr int kN = 96;
  std::atomic<int> calls{0};
  auto job = std::function<void(int)>([&](int i) {
    calls.fetch_add(1);
    if (i % 17 == 5) throw std::runtime_error("dispatched boom");
  });
  pool.Dispatch(kN, job);
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // Same coverage contract as Run(): every index still executed.
  EXPECT_EQ(calls.load(), kN);
}

TEST(WorkerPoolDispatchTest, PoolReusableAfterDispatchAndAfterFailure) {
  WorkerPool pool(2);
  constexpr int kN = 32;
  auto boom = std::function<void(int)>(
      [&](int i) { if (i == 3) throw std::runtime_error("boom"); });
  pool.Dispatch(kN, boom);
  EXPECT_THROW(pool.Wait(), std::runtime_error);

  // Run() after a failed dispatched job.
  std::atomic<int> ran{0};
  pool.Run(kN, [&](int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), kN);

  // And another Dispatch/Wait round-trip.
  std::atomic<int> again{0};
  auto ok = std::function<void(int)>([&](int) { again.fetch_add(1); });
  pool.Dispatch(kN, ok);
  pool.Wait();
  EXPECT_EQ(again.load(), kN);
}

TEST(WorkerPoolDispatchTest, ZeroWorkersRunsInlineWithSameContract) {
  WorkerPool pool(0);
  constexpr int kN = 8;
  std::atomic<int> calls{0};
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(kN);
  auto job = std::function<void(int)>([&](int i) {
    calls.fetch_add(1);
    ids[i] = std::this_thread::get_id();
    if (i == 1) throw std::runtime_error("inline boom");
  });
  pool.Dispatch(kN, job);
  // The job already ran inline, but the error still surfaces at Wait().
  EXPECT_EQ(calls.load(), kN);
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

TEST(WorkerPoolDispatchTest, ZeroNDispatchAndBareWaitAreNoops) {
  WorkerPool pool(2);
  std::atomic<int> calls{0};
  auto job = std::function<void(int)>([&](int) { calls.fetch_add(1); });
  pool.Dispatch(0, job);
  pool.Wait();
  pool.Wait();  // no outstanding job: no-op
  EXPECT_EQ(calls.load(), 0);
}

}  // namespace
}  // namespace common
}  // namespace aspen
