// Parameterized sweeps over the paper's selectivity grid: result agreement
// with the reference semantics for every (sigma_s:sigma_t, sigma_st) stage,
// and traffic-accounting invariants that must hold across configurations.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "join/executor.h"
#include "net/topology.h"
#include "tests/reference_join.h"
#include "workload/workload.h"

namespace aspen {
namespace join {
namespace {

using workload::SelectivityParams;
using workload::Workload;

struct Stage {
  double sigma_s, sigma_t, sigma_st;
};

class SelectivitySweepTest : public ::testing::TestWithParam<Stage> {};

TEST_P(SelectivitySweepTest, CmgMatchesReferenceOnQuery1) {
  auto [ss, st, sst] = GetParam();
  auto topo = net::Topology::Random(100, 7.0, 42);
  ASSERT_TRUE(topo.ok());
  SelectivityParams sel{ss, st, sst};
  auto wl = Workload::MakeQuery1(&*topo, sel, 3, 7);
  ASSERT_TRUE(wl.ok());
  ExecutorOptions opts;
  opts.algorithm = Algorithm::kInnet;
  opts.features = InnetFeatures::Cmg();
  opts.assumed = sel;
  auto stats = core::RunExperiment(*wl, opts, 30);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->results, testing_util::ReferenceResults(*wl, 30));
}

TEST_P(SelectivitySweepTest, RealizedSendRatesTrackTargets) {
  auto [ss, st, sst] = GetParam();
  auto topo = net::Topology::Random(100, 7.0, 42);
  ASSERT_TRUE(topo.ok());
  SelectivityParams sel{ss, st, sst};
  auto wl = Workload::MakeQuery1(&*topo, sel, 3, 7);
  ASSERT_TRUE(wl.ok());
  // Measure realized S-filter pass rate over many node-cycles.
  int64_t s_pass = 0, n = 0;
  for (net::NodeId node = 1; node < 20; ++node) {
    for (int c = 0; c < 400; ++c) {
      auto tup = wl->Sample(node, c);
      s_pass += wl->PassSFilter(node, tup, c);
      ++n;
    }
  }
  double realized = static_cast<double>(s_pass) / n;
  // Within one domain quantum of the target.
  double quantum = 1.0 / workload::CeilInverse(sst);
  EXPECT_NEAR(realized, ss, quantum + 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, SelectivitySweepTest,
    ::testing::Values(Stage{0.1, 1.0, 0.2}, Stage{1.0 / 6, 0.5, 0.2},
                      Stage{0.5, 0.5, 0.2}, Stage{0.5, 1.0 / 6, 0.2},
                      Stage{1.0, 0.1, 0.2}, Stage{0.5, 0.5, 0.1},
                      Stage{0.5, 0.5, 0.05}, Stage{1.0, 1.0, 0.05}));

TEST(TrafficInvariantTest, TrafficGrowsMonotonicallyWithCycles) {
  auto topo = net::Topology::Random(80, 7.0, 5);
  ASSERT_TRUE(topo.ok());
  SelectivityParams sel{0.5, 0.5, 0.2};
  auto wl = Workload::MakeQuery1(&*topo, sel, 3, 7);
  ASSERT_TRUE(wl.ok());
  ExecutorOptions opts;
  opts.algorithm = Algorithm::kInnet;
  opts.features = InnetFeatures::Cmg();
  opts.assumed = sel;
  JoinExecutor exec(&*wl, opts);
  ASSERT_TRUE(exec.Initiate().ok());
  uint64_t prev = exec.network().stats().TotalBytesSent();
  uint64_t prev_results = 0;
  for (int chunk = 0; chunk < 5; ++chunk) {
    ASSERT_TRUE(exec.RunCycles(10).ok());
    uint64_t now = exec.network().stats().TotalBytesSent();
    EXPECT_GT(now, prev);
    EXPECT_GE(exec.results(), prev_results);
    prev = now;
    prev_results = exec.results();
  }
}

TEST(TrafficInvariantTest, PerKindBytesSumToTotal) {
  auto topo = net::Topology::Random(80, 7.0, 5);
  ASSERT_TRUE(topo.ok());
  SelectivityParams sel{0.5, 0.5, 0.2};
  auto wl = Workload::MakeQuery1(&*topo, sel, 3, 7);
  ASSERT_TRUE(wl.ok());
  ExecutorOptions opts;
  opts.algorithm = Algorithm::kInnet;
  opts.assumed = sel;
  JoinExecutor exec(&*wl, opts);
  ASSERT_TRUE(exec.Initiate().ok());
  ASSERT_TRUE(exec.RunCycles(20).ok());
  const auto& stats = exec.network().stats();
  uint64_t by_kind = 0;
  for (int k = 0; k < static_cast<int>(net::MessageKind::kNumKinds); ++k) {
    by_kind += stats.BytesByKind(static_cast<net::MessageKind>(k));
  }
  EXPECT_EQ(by_kind, stats.TotalBytesSent());
  // Data + results dominate computation traffic for this configuration.
  EXPECT_GT(stats.BytesByKind(net::MessageKind::kData), 0u);
  EXPECT_GT(stats.BytesByKind(net::MessageKind::kJoinResult), 0u);
}

TEST(TrafficInvariantTest, SentEqualsReceivedPlusLosses) {
  // Loss-free: every byte sent by someone is received by someone.
  auto topo = net::Topology::Random(80, 7.0, 5);
  ASSERT_TRUE(topo.ok());
  SelectivityParams sel{0.5, 0.5, 0.2};
  auto wl = Workload::MakeQuery2(&*topo, sel, 1, 7);
  ASSERT_TRUE(wl.ok());
  ExecutorOptions opts;
  opts.algorithm = Algorithm::kBase;
  opts.assumed = sel;
  JoinExecutor exec(&*wl, opts);
  ASSERT_TRUE(exec.Initiate().ok());
  ASSERT_TRUE(exec.RunCycles(20).ok());
  const auto& stats = exec.network().stats();
  uint64_t sent = 0, received = 0;
  for (net::NodeId u = 0; u < topo->num_nodes(); ++u) {
    sent += stats.node(u).bytes_sent;
    received += stats.node(u).bytes_received;
  }
  EXPECT_EQ(sent, received);
}

TEST(WindowSizeSweepTest, LargerWindowsNeverLoseResults) {
  // Monotonicity: enlarging the join window can only add matches.
  auto topo = net::Topology::Random(80, 7.0, 5);
  ASSERT_TRUE(topo.ok());
  SelectivityParams sel{0.5, 0.5, 0.2};
  uint64_t prev = 0;
  for (int w : {1, 2, 4, 8}) {
    auto wl = Workload::MakeQuery1(&*topo, sel, w, 7);
    ASSERT_TRUE(wl.ok());
    ExecutorOptions opts;
    opts.algorithm = Algorithm::kBase;
    opts.assumed = sel;
    auto stats = core::RunExperiment(*wl, opts, 30);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->results, testing_util::ReferenceResults(*wl, 30));
    EXPECT_GE(stats->results, prev);
    prev = stats->results;
  }
}

TEST(TopologySweepTest, AllDensitiesExecuteCorrectly) {
  for (auto kind : {net::TopologyKind::kSparseRandom,
                    net::TopologyKind::kDenseRandom,
                    net::TopologyKind::kGrid}) {
    auto topo = net::Topology::Make(kind, 100, 31);
    ASSERT_TRUE(topo.ok());
    SelectivityParams sel{0.5, 0.5, 0.2};
    auto wl = Workload::MakeQuery1(&*topo, sel, 3, 7);
    ASSERT_TRUE(wl.ok());
    ExecutorOptions opts;
    opts.algorithm = Algorithm::kInnet;
    opts.features = InnetFeatures::Cmpg();
    opts.assumed = sel;
    auto stats = core::RunExperiment(*wl, opts, 25);
    ASSERT_TRUE(stats.ok()) << net::TopologyKindName(kind);
    EXPECT_EQ(stats->results, testing_util::ReferenceResults(*wl, 25))
        << net::TopologyKindName(kind);
  }
}

}  // namespace
}  // namespace join
}  // namespace aspen
