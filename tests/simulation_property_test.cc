// Whole-simulator property tests: conservation (every submitted message is
// eventually delivered or reported dropped), loss-sweep robustness, and
// determinism of entire experiment runs.

#include <gtest/gtest.h>

#include "common/phase.h"
#include "common/rng.h"
#include "core/engine.h"
#include "net/network.h"
#include "net/topology.h"
#include "routing/routing_tree.h"
#include "workload/workload.h"

namespace aspen {
namespace {

class ConservationTest : public ::testing::TestWithParam<double> {};

TEST_P(ConservationTest, EveryMessageDeliveredOrDropped) {
  // The single test thread is the sequential phase: nothing runs
  // concurrently with these direct network mutations.
  common::SequentialPhaseScope seq_phase;
  const double loss = GetParam();
  auto topo = *net::Topology::Random(60, 7.0, 21);
  auto tree = routing::RoutingTree::Build(topo, 0);
  net::NetworkOptions opts;
  opts.loss_prob = loss;
  opts.max_retries = 6;
  opts.seed = 5;
  net::Network net(&topo, opts);
  net.set_parent_resolver(&tree);
  int delivered = 0, dropped = 0;
  net.set_delivery_handler([&](const net::Message&, net::NodeId) {
    ++delivered;
  });
  net.set_drop_handler([&](const net::Message&, net::NodeId, net::NodeId) {
    ++dropped;
  });
  Rng rng(9);
  int submitted = 0;
  for (int i = 0; i < 300; ++i) {
    net::Message m;
    m.kind = net::MessageKind::kData;
    m.origin = static_cast<net::NodeId>(rng.UniformInt(60));
    if (rng.Bernoulli(0.5)) {
      m.mode = net::RoutingMode::kTreeToRoot;
      m.dest = 0;
    } else {
      m.mode = net::RoutingMode::kSourcePath;
      m.dest = static_cast<net::NodeId>(rng.UniformInt(60));
      auto path = topo.ShortestPath(m.origin, m.dest);
      if (path.size() < 2 && m.origin != m.dest) continue;
      m.route = net.routes().InternPath(path);
    }
    m.size_bytes = 6;
    if (net.Submit(std::move(m)).ok()) ++submitted;
    if (i % 10 == 0) net.Step();
  }
  net.StepUntilQuiet(100000);
  EXPECT_EQ(delivered + dropped, submitted);
  if (loss == 0.0) {
    EXPECT_EQ(dropped, 0);
  }
  EXPECT_FALSE(net.HasTrafficInFlight());
}

INSTANTIATE_TEST_SUITE_P(LossSweep, ConservationTest,
                         ::testing::Values(0.0, 0.05, 0.2, 0.5));

TEST(DeterminismTest, IdenticalSeedsIdenticalRuns) {
  common::SequentialPhaseScope seq_phase;
  auto topo = *net::Topology::Random(80, 7.0, 13);
  workload::SelectivityParams sel{0.5, 0.5, 0.2};
  join::ExecutorOptions opts;
  opts.algorithm = join::Algorithm::kInnet;
  opts.features = join::InnetFeatures::Cmg();
  opts.assumed = sel;
  opts.learning = true;
  opts.loss_prob = 0.05;  // even stochastic loss is seed-deterministic
  opts.seed = 17;
  auto run = [&]() {
    auto wl = *workload::Workload::MakeQuery1(&topo, sel, 3, 7);
    return *core::RunExperiment(wl, opts, 60);
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.results, b.results);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.base_bytes, b.base_bytes);
}

TEST(DeterminismTest, DifferentNetworkSeedsDifferUnderLoss) {
  common::SequentialPhaseScope seq_phase;
  auto topo = *net::Topology::Random(80, 7.0, 13);
  workload::SelectivityParams sel{0.5, 0.5, 0.2};
  join::ExecutorOptions opts;
  opts.algorithm = join::Algorithm::kBase;
  opts.assumed = sel;
  opts.loss_prob = 0.3;
  opts.max_retries = 1;  // losses actually bite
  auto run = [&](uint64_t seed) {
    opts.seed = seed;
    auto wl = *workload::Workload::MakeQuery1(&topo, sel, 3, 7);
    return *core::RunExperiment(wl, opts, 40);
  };
  EXPECT_NE(run(1).total_bytes, run(2).total_bytes);
}

TEST(ChurnTest, ReviveRestoresService) {
  common::SequentialPhaseScope seq_phase;
  auto topo = *net::Topology::Random(60, 7.0, 21);
  auto tree = routing::RoutingTree::Build(topo, 0);
  net::Network net(&topo, {});
  net.set_parent_resolver(&tree);
  int delivered = 0;
  net.set_delivery_handler([&](const net::Message&, net::NodeId) {
    ++delivered;
  });
  // Pick a deep node and its parent; fail the parent, then revive it.
  net::NodeId deep = 0;
  for (net::NodeId u = 0; u < 60; ++u) {
    if (tree.DepthOf(u) > tree.DepthOf(deep)) deep = u;
  }
  net::NodeId parent = tree.ParentOf(deep);
  net.FailNode(parent);
  net::Message m;
  m.kind = net::MessageKind::kData;
  m.mode = net::RoutingMode::kTreeToRoot;
  m.origin = deep;
  m.dest = 0;
  m.size_bytes = 4;
  ASSERT_TRUE(net.Submit(m).ok());
  net.StepUntilQuiet(1000);
  EXPECT_EQ(delivered, 0);  // parent dead: nothing gets through
  net.ReviveNode(parent);
  ASSERT_TRUE(net.Submit(m).ok());
  net.StepUntilQuiet(1000);
  EXPECT_EQ(delivered, 1);
}

TEST(AllNodesToRootTest, ExactlyOneDeliveryPerNode) {
  common::SequentialPhaseScope seq_phase;
  auto topo = *net::Topology::Random(70, 7.0, 33);
  auto tree = routing::RoutingTree::Build(topo, 0);
  net::Network net(&topo, {});
  net.set_parent_resolver(&tree);
  int delivered = 0;
  net.set_delivery_handler([&](const net::Message&, net::NodeId at) {
    EXPECT_EQ(at, 0);
    ++delivered;
  });
  for (net::NodeId u = 0; u < 70; ++u) {
    net::Message m;
    m.kind = net::MessageKind::kData;
    m.mode = net::RoutingMode::kTreeToRoot;
    m.origin = u;
    m.dest = 0;
    m.size_bytes = 4;
    ASSERT_TRUE(net.Submit(std::move(m)).ok());
  }
  net.StepUntilQuiet();
  EXPECT_EQ(delivered, 70);
  // Total hop count equals the sum of depths.
  uint64_t messages = net.stats().TotalMessagesSent();
  uint64_t depth_sum = 0;
  for (net::NodeId u = 0; u < 70; ++u) depth_sum += tree.DepthOf(u);
  EXPECT_EQ(messages, depth_sum);
}

}  // namespace
}  // namespace aspen
