// White-box tests of the Innet executor internals: multicast routes, group
// decisions, GHT rendezvous structure, Yang+07 mechanics, learning details
// and oracle mode.

#include <set>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "join/executor.h"
#include "net/topology.h"
#include "routing/content_address.h"
#include "tests/reference_join.h"
#include "workload/workload.h"

namespace aspen {
namespace join {
namespace {

using workload::SelectivityParams;
using workload::Workload;

net::Topology Topo(uint64_t seed = 42) {
  return *net::Topology::Random(100, 7.0, seed);
}

ExecutorOptions Opts(Algorithm algo, InnetFeatures f,
                     SelectivityParams assumed) {
  ExecutorOptions o;
  o.algorithm = algo;
  o.features = f;
  o.assumed = assumed;
  o.seed = 1;
  return o;
}

TEST(GroupOptTest, HighJoinSelectivityGroupsAtBase) {
  // With sigma_st = 1 and w = 3 the result-forwarding term dominates, so
  // every group should decide for the base station.
  net::Topology topo = Topo();
  SelectivityParams sel{1.0, 1.0, 1.0};
  auto wl = Workload::MakeQuery1(&topo, sel, 3, 7);
  ASSERT_TRUE(wl.ok());
  JoinExecutor exec(&*wl, Opts(Algorithm::kInnet, InnetFeatures::Cmg(), sel));
  ASSERT_TRUE(exec.Initiate().ok());
  for (const auto& pl : exec.placements()) {
    EXPECT_TRUE(pl.at_base) << pl.pair.s << "," << pl.pair.t;
  }
}

TEST(GroupOptTest, RareJoinsStayInNetwork) {
  net::Topology topo = Topo();
  SelectivityParams sel{1.0, 1.0, 1.0 / 50};
  auto wl = Workload::MakeQuery0(&topo, sel, 10, 1, 7);
  ASSERT_TRUE(wl.ok());
  JoinExecutor exec(&*wl, Opts(Algorithm::kInnet, InnetFeatures::Cmg(), sel));
  ASSERT_TRUE(exec.Initiate().ok());
  int in_net = 0;
  for (const auto& pl : exec.placements()) in_net += !pl.at_base;
  EXPECT_GT(in_net, 5);
}

TEST(GroupOptTest, GroupDecisionIsPerGroup) {
  // Query 2's groups are (cid, id%4) clusters; decisions can differ across
  // groups. Verify all pairs within one group share the same at_base bit.
  net::Topology topo = Topo();
  SelectivityParams sel{0.5, 0.5, 0.1};
  auto wl = Workload::MakeQuery2(&topo, sel, 1, 7);
  ASSERT_TRUE(wl.ok());
  JoinExecutor exec(&*wl, Opts(Algorithm::kInnet, InnetFeatures::Cmg(), sel));
  ASSERT_TRUE(exec.Initiate().ok());
  std::vector<std::pair<net::NodeId, net::NodeId>> raw;
  for (const auto& key : exec.pairs()) raw.emplace_back(key.s, key.t);
  auto groups = opt::DiscoverGroups(raw);
  for (const auto& g : groups) {
    // Within a group, pairs whose pairwise decision was in-network must all
    // follow the group decision; compare against the group's first pair.
    std::set<bool> decisions;
    for (const auto& [s, t] : g.pairs) {
      const auto& pl = *exec.FindPlacement(PairKey{s, t});
      if (!pl.pairwise_at_base) decisions.insert(pl.at_base);
    }
    EXPECT_LE(decisions.size(), 1u);
  }
}

TEST(GhtTest, SameKeyPairsShareRendezvous) {
  net::Topology topo = Topo();
  SelectivityParams sel{0.5, 0.5, 0.2};
  auto wl = Workload::MakeQuery1(&topo, sel, 3, 7);
  ASSERT_TRUE(wl.ok());
  JoinExecutor exec(&*wl, Opts(Algorithm::kGht, {}, sel));
  ASSERT_TRUE(exec.Initiate().ok());
  std::map<int32_t, net::NodeId> key_home;
  for (const auto& pl : exec.placements()) {
    EXPECT_FALSE(pl.at_base);
    int32_t join_key = *wl->SJoinKey(pl.pair.s);
    auto [it, inserted] = key_home.emplace(join_key, pl.join_node);
    if (!inserted) {
      EXPECT_EQ(it->second, pl.join_node);
    }
  }
  // Grouped-by-key: fewer distinct homes than pairs (when keys repeat).
  EXPECT_LE(key_home.size(), exec.placements().size());
}

TEST(Yang07Test, JoinNodesAreTheTargets) {
  net::Topology topo = Topo();
  SelectivityParams sel{0.5, 0.5, 0.2};
  auto wl = Workload::MakeQuery1(&topo, sel, 3, 7);
  ASSERT_TRUE(wl.ok());
  JoinExecutor exec(&*wl, Opts(Algorithm::kYang07, {}, sel));
  ASSERT_TRUE(exec.Initiate().ok());
  for (const auto& pl : exec.placements()) {
    EXPECT_FALSE(pl.at_base);
    EXPECT_EQ(pl.join_node, pl.pair.t);
  }
  // Through-the-base funnels everything through the root: base traffic is
  // a large share of total.
  ASSERT_TRUE(exec.RunCycles(30).ok());
  auto stats = exec.Stats();
  EXPECT_GT(stats.base_bytes, stats.total_bytes / 10);
}

TEST(OracleTest, OracleUsesPerNodeTruth) {
  // Half the nodes run Sel1, half Sel2. Oracle placements should differ
  // from any single global assumption.
  net::Topology topo = Topo();
  SelectivityParams sel1{0.1, 1.0, 0.05};
  SelectivityParams sel2{1.0, 0.1, 0.2};
  auto make = [&]() {
    auto wl = *Workload::MakeQuery1(&topo, sel1, 3, 7);
    for (net::NodeId i = 0; i < topo.num_nodes(); ++i) {
      wl.SetNodeParams(i, i % 2 == 0 ? sel1 : sel2);
    }
    return wl;
  };
  auto wl_oracle = make();
  auto opts = Opts(Algorithm::kInnet, {}, sel1);
  opts.oracle = true;
  JoinExecutor oracle(&wl_oracle, opts);
  ASSERT_TRUE(oracle.Initiate().ok());
  auto wl_fixed = make();
  JoinExecutor fixed(&wl_fixed, Opts(Algorithm::kInnet, {}, sel1));
  ASSERT_TRUE(fixed.Initiate().ok());
  int differing = 0;
  for (const auto& pl : oracle.placements()) {
    const auto& other = *fixed.FindPlacement(pl.pair);
    if (pl.at_base != other.at_base || pl.join_node != other.join_node) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(MulticastTest, MulticastNeverIncreasesDataTraffic) {
  // For an m:n query, multicast trees share path prefixes, so data traffic
  // must not exceed the per-pair unicast variant.
  net::Topology topo = Topo();
  SelectivityParams sel{1.0, 1.0, 0.05};
  auto wl1 = *Workload::MakeQuery1(&topo, sel, 3, 7);
  auto wl2 = *Workload::MakeQuery1(&topo, sel, 3, 7);
  InnetFeatures mcast_only;
  mcast_only.multicast = true;
  auto plain = core::RunExperiment(wl1, Opts(Algorithm::kInnet, {}, sel), 60);
  auto mcast = core::RunExperiment(
      wl2, Opts(Algorithm::kInnet, mcast_only, sel), 60);
  ASSERT_TRUE(plain.ok() && mcast.ok());
  EXPECT_LE(mcast->total_bytes, plain->total_bytes);
  EXPECT_EQ(mcast->results, plain->results);
}

TEST(LearningTest, CountersResetPeriodically) {
  net::Topology topo = Topo();
  SelectivityParams sel{0.5, 0.5, 0.2};
  auto wl = Workload::MakeQuery0(&topo, sel, 5, 3, 7);
  ASSERT_TRUE(wl.ok());
  auto opts = Opts(Algorithm::kInnet, {}, sel);
  opts.learning = true;
  opts.counter_reset_interval = 10;
  opts.reestimate_interval = 5;
  JoinExecutor exec(&*wl, opts);
  ASSERT_TRUE(exec.Initiate().ok());
  // Just exercise the reset path over several periods; correctness is the
  // absence of drift (placements remain sane under true estimates).
  ASSERT_TRUE(exec.RunCycles(50).ok());
  uint64_t expected = testing_util::ReferenceResults(*wl, 50);
  EXPECT_EQ(exec.results(), expected);
}

TEST(LearningTest, MigrationTransfersWindowLosslessly) {
  // Under wrong estimates with learning, placements move — and the runs
  // must still produce exactly the reference results (window transfer
  // preserves buffered tuples).
  for (uint64_t seed : {3ULL, 7ULL, 13ULL}) {
    net::Topology topo = Topo(seed);
    SelectivityParams truth{0.1, 1.0, 0.2};
    SelectivityParams wrong{1.0, 0.1, 0.2};
    auto wl = Workload::MakeQuery0(&topo, truth, 8, 3, seed);
    ASSERT_TRUE(wl.ok());
    auto opts = Opts(Algorithm::kInnet, InnetFeatures::Cmg(), wrong);
    opts.learning = true;
    opts.reestimate_interval = 10;
    JoinExecutor exec(&*wl, opts);
    ASSERT_TRUE(exec.Initiate().ok());
    ASSERT_TRUE(exec.RunCycles(120).ok());
    EXPECT_EQ(exec.results(), testing_util::ReferenceResults(*wl, 120))
        << "seed " << seed;
  }
}

TEST(PathCollapseTest, DiscoversLinksAndStaysCorrect) {
  net::Topology topo = Topo();
  SelectivityParams sel{1.0, 1.0, 0.05};
  auto wl1 = *Workload::MakeQuery2(&topo, sel, 1, 7);
  auto wl2 = *Workload::MakeQuery2(&topo, sel, 1, 7);
  auto cmp = core::RunExperiment(
      wl1, Opts(Algorithm::kInnet, InnetFeatures::Cmp(), sel), 60);
  auto cm = core::RunExperiment(
      wl2, Opts(Algorithm::kInnet, InnetFeatures::Cm(), sel), 60);
  ASSERT_TRUE(cmp.ok() && cm.ok());
  EXPECT_EQ(cmp->results, cm->results);  // collapse must not change results
  // Collapse adds hint traffic but may shorten trees: within 10% either way.
  EXPECT_LT(cmp->total_bytes, cm->total_bytes * 11 / 10);
}

TEST(InitLatencyTest, DistributedInitiationIsFast) {
  net::Topology topo = Topo();
  SelectivityParams sel{0.5, 0.5, 0.2};
  auto wl = Workload::MakeQuery1(&topo, sel, 3, 7);
  ASSERT_TRUE(wl.ok());
  JoinExecutor exec(&*wl, Opts(Algorithm::kInnet, {}, sel));
  ASSERT_TRUE(exec.Initiate().ok());
  auto stats = exec.Stats();
  EXPECT_GT(stats.init_latency_cycles, 0);
  // Exploration latency is bounded by a few network diameters: searches in
  // the non-primary trees can ascend to a far root and then descend, and
  // the reply doubles the path.
  auto depths = topo.HopDistancesFrom(0);
  int diameter_bound = 8 * *std::max_element(depths.begin(), depths.end());
  EXPECT_LE(stats.init_latency_cycles, diameter_bound);
}

TEST(StatsTest, InitiationPlusComputationEqualsTotal) {
  net::Topology topo = Topo();
  SelectivityParams sel{0.5, 0.5, 0.2};
  for (Algorithm algo : {Algorithm::kNaive, Algorithm::kBase,
                         Algorithm::kGht, Algorithm::kInnet}) {
    auto wl = Workload::MakeQuery1(&topo, sel, 3, 7);
    ASSERT_TRUE(wl.ok());
    auto stats = core::RunExperiment(*wl, Opts(algo, {}, sel), 20);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->total_bytes,
              stats->initiation_bytes + stats->computation_bytes);
    EXPECT_EQ(stats->sampling_cycles, 20);
  }
}

TEST(StatsTest, NaiveHasZeroInitiation) {
  net::Topology topo = Topo();
  SelectivityParams sel{0.5, 0.5, 0.2};
  auto wl = Workload::MakeQuery1(&topo, sel, 3, 7);
  ASSERT_TRUE(wl.ok());
  auto stats =
      core::RunExperiment(*wl, Opts(Algorithm::kNaive, {}, sel), 10);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->initiation_bytes, 0u);
}

}  // namespace
}  // namespace join
}  // namespace aspen
