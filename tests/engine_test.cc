#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/report.h"
#include "net/topology.h"

namespace aspen {
namespace core {
namespace {

TEST(EngineTest, RunExperimentProducesStats) {
  auto topo = *net::Topology::Random(60, 7.0, 5);
  auto wl = workload::Workload::MakeQuery1(&topo, {0.5, 0.5, 0.2}, 3, 7);
  ASSERT_TRUE(wl.ok());
  join::ExecutorOptions opts;
  opts.algorithm = join::Algorithm::kBase;
  opts.assumed = {0.5, 0.5, 0.2};
  auto stats = RunExperiment(*wl, opts, 30);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->algorithm, "Base");
  EXPECT_GT(stats->total_bytes, 0u);
  EXPECT_EQ(stats->sampling_cycles, 30);
  EXPECT_EQ(stats->total_bytes,
            stats->initiation_bytes + stats->computation_bytes);
}

TEST(EngineTest, RunAveragedAggregatesAcrossSeeds) {
  auto topo = *net::Topology::Random(60, 7.0, 5);
  auto factory = [&](uint64_t seed) {
    return workload::Workload::MakeQuery1(&topo, {0.5, 0.5, 0.2}, 3, seed);
  };
  join::ExecutorOptions opts;
  opts.algorithm = join::Algorithm::kBase;
  opts.assumed = {0.5, 0.5, 0.2};
  auto agg = RunAveraged(factory, opts, 20, /*runs=*/4);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->runs, 4);
  EXPECT_GT(agg->total_bytes, 0.0);
  EXPECT_GE(agg->total_bytes_ci, 0.0);
  // Different seeds produce different static attrs, hence CI > 0.
  EXPECT_GT(agg->total_bytes_ci, 0.0);
}

TEST(EngineTest, RunAveragedPropagatesFactoryFailure) {
  auto factory = [](uint64_t) -> Result<workload::Workload> {
    return Status::Internal("boom");
  };
  join::ExecutorOptions opts;
  auto agg = RunAveraged(factory, opts, 5, 2);
  EXPECT_FALSE(agg.ok());
}

TEST(ReportTest, TableAlignsColumns) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "12345"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("12345"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("----"), std::string::npos);
  // All lines have equal length (alignment).
  size_t first_nl = s.find('\n');
  size_t second_nl = s.find('\n', first_nl + 1);
  EXPECT_EQ(first_nl, second_nl - first_nl - 1);
}

TEST(ReportTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(3.5 * 1024 * 1024), "3.50 MB");
}

TEST(ReportTest, Fixed) {
  EXPECT_EQ(Fixed(1.23456, 2), "1.23");
  EXPECT_EQ(Fixed(1.0, 0), "1");
}

}  // namespace
}  // namespace core
}  // namespace aspen
