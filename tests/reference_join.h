// Test-only reference implementation of the windowed join semantics: counts
// the results a correct executor must deliver under loss-free, same-cycle
// delivery. Mirrors the executor's ordering rule — within one sampling
// cycle, S-side arrivals are applied before T-side arrivals, so a same-cycle
// (s, t) pair matches exactly once (on the T side).

#ifndef ASPEN_TESTS_REFERENCE_JOIN_H_
#define ASPEN_TESTS_REFERENCE_JOIN_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "workload/workload.h"

namespace aspen {
namespace testing_util {

/// Result count for one (s, t) pair over `cycles` sampling cycles.
inline uint64_t ReferencePairResults(const workload::Workload& wl,
                                     net::NodeId s, net::NodeId t,
                                     int cycles) {
  const int w = wl.join_query().window.size;
  const bool time_based = wl.join_query().window.time_based;
  uint64_t results = 0;
  std::deque<std::pair<int, query::Tuple>> s_win, t_win;
  auto evict = [&](std::deque<std::pair<int, query::Tuple>>* win, int now) {
    if (time_based) {
      while (!win->empty() && win->front().first < now - w + 1) {
        win->pop_front();
      }
    } else if (static_cast<int>(win->size()) > w) {
      win->pop_front();
    }
  };
  for (int c = 0; c < cycles; ++c) {
    query::Tuple s_tup = wl.Sample(s, c);
    query::Tuple t_tup = wl.Sample(t, c);
    bool s_sends = wl.PassSFilter(s, s_tup, c);
    bool t_sends = wl.PassTFilter(t, t_tup, c);
    if (s_sends) {
      // S probes the T window as of the previous cycle.
      evict(&t_win, c);
      for (const auto& [tc, tt] : t_win) {
        if (wl.TuplesJoin(s_tup, tt)) ++results;
      }
      s_win.emplace_back(c, s_tup);
      evict(&s_win, c);
    }
    if (t_sends) {
      // T probes the S window including this cycle's S tuple.
      evict(&s_win, c);
      for (const auto& [sc, st] : s_win) {
        if (wl.TuplesJoin(st, t_tup)) ++results;
      }
      t_win.emplace_back(c, t_tup);
      evict(&t_win, c);
    }
  }
  return results;
}

/// Total results across all statically-joining pairs.
inline uint64_t ReferenceResults(const workload::Workload& wl, int cycles) {
  uint64_t total = 0;
  for (const auto& [s, t] : wl.AllJoinPairs()) {
    total += ReferencePairResults(wl, s, t, cycles);
  }
  return total;
}

}  // namespace testing_util
}  // namespace aspen

#endif  // ASPEN_TESTS_REFERENCE_JOIN_H_
