#include <gtest/gtest.h>

#include "query/expr.h"

namespace aspen {
namespace query {
namespace {

Tuple MakeS() {
  Tuple t = Schema::Sensor().MakeTuple();
  t[kAttrId] = 7;
  t[kAttrX] = 20;
  t[kAttrU] = 3;
  t[kAttrPosX] = 100;
  t[kAttrPosY] = 0;
  return t;
}

Tuple MakeT() {
  Tuple t = Schema::Sensor().MakeTuple();
  t[kAttrId] = 9;
  t[kAttrY] = 15;
  t[kAttrU] = 3;
  t[kAttrPosX] = 130;
  t[kAttrPosY] = 40;
  return t;
}

TEST(SchemaTest, TwentyEightAttributesHalfStatic) {
  const Schema& s = Schema::Sensor();
  EXPECT_EQ(s.num_attrs(), 28);
  EXPECT_TRUE(s.is_static(kAttrId));
  EXPECT_TRUE(s.is_static(kAttrPosY));
  EXPECT_FALSE(s.is_static(kAttrU));
  EXPECT_FALSE(s.is_static(kAttrV));
  EXPECT_EQ(s.IndexOf("u"), kAttrU);
  EXPECT_EQ(s.IndexOf("cid"), kAttrCid);
  EXPECT_EQ(s.IndexOf("nope"), -1);
}

TEST(SchemaTest, WireBytes) {
  // id (2) + seq (2) + n attributes * 2.
  EXPECT_EQ(Schema::WireBytes(1), 6);
  EXPECT_EQ(Schema::WireBytes(3), 10);
}

TEST(ExprTest, ArithmeticOps) {
  Tuple s = MakeS(), t = MakeT();
  EXPECT_EQ(Expr::Add(Expr::Const(2), Expr::Const(3))->Eval(&s, &t), 5);
  EXPECT_EQ(Expr::Sub(Expr::Const(2), Expr::Const(3))->Eval(&s, &t), -1);
  EXPECT_EQ(Expr::Mul(Expr::Const(4), Expr::Const(3))->Eval(&s, &t), 12);
  EXPECT_EQ(Expr::Div(Expr::Const(7), Expr::Const(2))->Eval(&s, &t), 3);
  EXPECT_EQ(Expr::Mod(Expr::Const(7), Expr::Const(4))->Eval(&s, &t), 3);
  EXPECT_EQ(Expr::Abs(Expr::Const(-5))->Eval(&s, &t), 5);
}

TEST(ExprTest, DivModByZeroYieldZero) {
  EXPECT_EQ(Expr::Div(Expr::Const(7), Expr::Const(0))->Eval(nullptr, nullptr),
            0);
  EXPECT_EQ(Expr::Mod(Expr::Const(7), Expr::Const(0))->Eval(nullptr, nullptr),
            0);
}

TEST(ExprTest, ModuloIsNonNegative) {
  EXPECT_EQ(Expr::Mod(Expr::Const(-7), Expr::Const(4))->Eval(nullptr, nullptr),
            1);
}

TEST(ExprTest, AttributeBindsToSide) {
  Tuple s = MakeS(), t = MakeT();
  EXPECT_EQ(Expr::Attr(Side::kS, kAttrId)->Eval(&s, &t), 7);
  EXPECT_EQ(Expr::Attr(Side::kT, kAttrId)->Eval(&s, &t), 9);
}

TEST(ExprTest, Comparisons) {
  Tuple s = MakeS(), t = MakeT();
  auto sx = Expr::Attr(Side::kS, kAttrX);   // 20
  auto ty = Expr::Attr(Side::kT, kAttrY);   // 15
  EXPECT_TRUE(Expr::Gt(sx, ty)->EvalBool(&s, &t));
  EXPECT_FALSE(Expr::Lt(sx, ty)->EvalBool(&s, &t));
  EXPECT_TRUE(Expr::Ge(sx, sx)->EvalBool(&s, &t));
  EXPECT_TRUE(Expr::Le(ty, sx)->EvalBool(&s, &t));
  EXPECT_TRUE(Expr::Ne(sx, ty)->EvalBool(&s, &t));
  EXPECT_TRUE(
      Expr::Eq(sx, Expr::Add(ty, Expr::Const(5)))->EvalBool(&s, &t));
}

TEST(ExprTest, BooleanConnectives) {
  auto yes = Expr::Const(1);
  auto no = Expr::Const(0);
  EXPECT_TRUE(Expr::And(yes, yes)->EvalBool(nullptr, nullptr));
  EXPECT_FALSE(Expr::And(yes, no)->EvalBool(nullptr, nullptr));
  EXPECT_TRUE(Expr::Or(no, yes)->EvalBool(nullptr, nullptr));
  EXPECT_FALSE(Expr::Or(no, no)->EvalBool(nullptr, nullptr));
  EXPECT_TRUE(Expr::Not(no)->EvalBool(nullptr, nullptr));
  EXPECT_FALSE(Expr::Not(yes)->EvalBool(nullptr, nullptr));
}

TEST(ExprTest, HashIs15BitAndDeterministic) {
  for (int32_t v : {0, 1, 42, -7, 32767}) {
    int32_t h = HashValue16(v);
    EXPECT_GE(h, 0);
    EXPECT_LT(h, 1 << 15);
    EXPECT_EQ(h, HashValue16(v));
  }
  auto expr = Expr::Hash(Expr::Const(42));
  EXPECT_EQ(expr->Eval(nullptr, nullptr), HashValue16(42));
}

TEST(ExprTest, DistComputesEuclideanDecimeters) {
  Tuple s = MakeS(), t = MakeT();  // dx=30, dy=40 -> 50
  EXPECT_EQ(Expr::Dist()->Eval(&s, &t), 50);
}

TEST(ExprTest, ReferencesSide) {
  auto join = Expr::Eq(Expr::Attr(Side::kS, kAttrU),
                       Expr::Attr(Side::kT, kAttrU));
  EXPECT_TRUE(join->ReferencesSide(Side::kS));
  EXPECT_TRUE(join->ReferencesSide(Side::kT));
  auto sel = Expr::Lt(Expr::Attr(Side::kS, kAttrId), Expr::Const(5));
  EXPECT_TRUE(sel->ReferencesSide(Side::kS));
  EXPECT_FALSE(sel->ReferencesSide(Side::kT));
  EXPECT_TRUE(Expr::Dist()->ReferencesSide(Side::kS));
  EXPECT_TRUE(Expr::Dist()->ReferencesSide(Side::kT));
}

TEST(ExprTest, IsStatic) {
  EXPECT_TRUE(Expr::Attr(Side::kS, kAttrX)->IsStatic());
  EXPECT_FALSE(Expr::Attr(Side::kS, kAttrU)->IsStatic());
  EXPECT_TRUE(Expr::Dist()->IsStatic());
  auto mixed = Expr::Eq(Expr::Attr(Side::kS, kAttrX),
                        Expr::Attr(Side::kT, kAttrU));
  EXPECT_FALSE(mixed->IsStatic());
}

TEST(ExprTest, CollectAttrs) {
  auto e = Expr::Eq(Expr::Attr(Side::kS, kAttrX),
                    Expr::Add(Expr::Attr(Side::kT, kAttrY), Expr::Const(5)));
  std::vector<std::pair<Side, int>> attrs;
  e->CollectAttrs(&attrs);
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_EQ(attrs[0], (std::pair<Side, int>{Side::kS, kAttrX}));
  EXPECT_EQ(attrs[1], (std::pair<Side, int>{Side::kT, kAttrY}));
}

TEST(ExprTest, ToStringReadable) {
  auto e = Expr::Eq(Expr::Attr(Side::kS, kAttrX),
                    Expr::Add(Expr::Attr(Side::kT, kAttrY), Expr::Const(5)));
  EXPECT_EQ(e->ToString(), "(S.x = (T.y + 5))");
  EXPECT_EQ(Expr::Dist()->ToString(), "Dst");
  EXPECT_EQ(Expr::Not(Expr::Const(1))->ToString(), "NOT 1");
}

TEST(ExprTest, AndAllOfEmptyIsTrue) {
  EXPECT_TRUE(Expr::AndAll({})->EvalBool(nullptr, nullptr));
  auto one = Expr::AndAll({Expr::Const(0)});
  EXPECT_FALSE(one->EvalBool(nullptr, nullptr));
}

}  // namespace
}  // namespace query
}  // namespace aspen
