#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/phase.h"
#include "net/network.h"
#include "net/topology.h"
#include "routing/routing_tree.h"

namespace aspen {
namespace net {
namespace {

/// A 1x5 line topology: 0 - 1 - 2 - 3 - 4 (spacing 10m, range 11m).
Topology LineTopology() {
  // Grid(rows=1) is rejected; craft a thin 2-row grid and use the bottom
  // row? Simpler: a 5-node random is nondeterministic, so use Grid(2,5) and
  // pick nodes — instead build via Grid(2, 5) but assert what we need.
  auto grid = Topology::Grid(2, 5, 100.0);
  return *grid;
}

class NetworkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    topo_ = std::make_unique<Topology>(LineTopology());
    tree_ = std::make_unique<routing::RoutingTree>(
        routing::RoutingTree::Build(*topo_, 0));
  }

  Network MakeNet(NetworkOptions opts = {}) {
    Network net(topo_.get(), opts);
    net.set_parent_resolver(tree_.get());
    return net;
  }

  /// Builds a message, interning `path` (if any) in `net`'s route table.
  Message MakeMsg(Network& net, NodeId from, NodeId to, RoutingMode mode,
                  const std::vector<NodeId>& path = {})
      ASPEN_REQUIRES_SEQUENTIAL {
    Message m;
    m.kind = MessageKind::kData;
    m.mode = mode;
    m.origin = from;
    m.dest = to;
    if (!path.empty()) m.route = net.routes().InternPath(path);
    m.size_bytes = 10;
    return m;
  }

  std::unique_ptr<Topology> topo_;
  std::unique_ptr<routing::RoutingTree> tree_;
};

TEST_F(NetworkTest, SourcePathDeliversAlongPath) {
  // The single test thread is the sequential phase: nothing runs
  // concurrently with these direct network mutations.
  common::SequentialPhaseScope seq_phase;
  Network net = MakeNet();
  std::vector<NodeId> delivered;
  net.set_delivery_handler(
      [&](const Message&, NodeId at) { delivered.push_back(at); });
  auto path = topo_->ShortestPath(0, 9);
  ASSERT_GE(path.size(), 2u);
  auto id = net.Submit(MakeMsg(net, 0, 9, RoutingMode::kSourcePath, path));
  ASSERT_TRUE(id.ok());
  int steps = net.StepUntilQuiet();
  EXPECT_EQ(steps, static_cast<int>(path.size()) - 1);  // one hop per cycle
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], 9);
}

TEST_F(NetworkTest, SelfAddressedDeliversImmediatelyAtZeroCost) {
  common::SequentialPhaseScope seq_phase;
  Network net = MakeNet();
  int deliveries = 0;
  net.set_delivery_handler([&](const Message&, NodeId) { ++deliveries; });
  ASSERT_TRUE(net.Submit(MakeMsg(net, 3, 3, RoutingMode::kTreeToRoot)).ok());
  EXPECT_EQ(deliveries, 1);
  EXPECT_EQ(net.stats().TotalBytesSent(), 0u);
}

TEST_F(NetworkTest, InvalidPathRejected) {
  common::SequentialPhaseScope seq_phase;
  Network net = MakeNet();
  // Path not starting at origin.
  auto bad = MakeMsg(net, 0, 2, RoutingMode::kSourcePath, {1, 2});
  EXPECT_FALSE(net.Submit(std::move(bad)).ok());
  // Empty path.
  auto bad2 = MakeMsg(net, 0, 2, RoutingMode::kSourcePath, {});
  EXPECT_FALSE(net.Submit(std::move(bad2)).ok());
}

TEST_F(NetworkTest, TreeToRootReachesBase) {
  common::SequentialPhaseScope seq_phase;
  Network net = MakeNet();
  NodeId delivered_at = -1;
  net.set_delivery_handler(
      [&](const Message&, NodeId at) { delivered_at = at; });
  ASSERT_TRUE(net.Submit(MakeMsg(net, 9, 0, RoutingMode::kTreeToRoot)).ok());
  net.StepUntilQuiet();
  EXPECT_EQ(delivered_at, 0);
}

TEST_F(NetworkTest, TreeToRootWithoutResolverFails) {
  common::SequentialPhaseScope seq_phase;
  Network net(topo_.get(), {});
  EXPECT_FALSE(net.Submit(MakeMsg(net, 9, 0, RoutingMode::kTreeToRoot)).ok());
}

TEST_F(NetworkTest, GeoGreedyReachesDestination) {
  common::SequentialPhaseScope seq_phase;
  Network net = MakeNet();
  NodeId delivered_at = -1;
  net.set_delivery_handler(
      [&](const Message&, NodeId at) { delivered_at = at; });
  ASSERT_TRUE(net.Submit(MakeMsg(net, 0, 9, RoutingMode::kGeoGreedy)).ok());
  net.StepUntilQuiet(1000);
  EXPECT_EQ(delivered_at, 9);
}

TEST_F(NetworkTest, TrafficChargedPerHopWithHeader) {
  common::SequentialPhaseScope seq_phase;
  Network net = MakeNet();
  auto path = topo_->ShortestPath(0, 9);
  ASSERT_TRUE(net.Submit(MakeMsg(net, 0, 9, RoutingMode::kSourcePath, path)).ok());
  net.StepUntilQuiet();
  const int hops = static_cast<int>(path.size()) - 1;
  const uint64_t per_hop = 10 + WireFormat::kLinkHeaderBytes;
  EXPECT_EQ(net.stats().TotalBytesSent(), per_hop * hops);
  // Every intermediate node both received and sent once.
  for (size_t i = 1; i + 1 < path.size(); ++i) {
    EXPECT_EQ(net.stats().node(path[i]).bytes_sent, per_hop);
    EXPECT_EQ(net.stats().node(path[i]).bytes_received, per_hop);
  }
}

TEST_F(NetworkTest, LossCausesRetransmissionCharges) {
  common::SequentialPhaseScope seq_phase;
  NetworkOptions opts;
  opts.loss_prob = 0.5;
  opts.max_retries = 50;
  opts.seed = 7;
  Network net = MakeNet(opts);
  int deliveries = 0;
  net.set_delivery_handler([&](const Message&, NodeId) { ++deliveries; });
  auto path = topo_->ShortestPath(0, 9);
  const int hops = static_cast<int>(path.size()) - 1;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        net.Submit(MakeMsg(net, 0, 9, RoutingMode::kSourcePath, path)).ok());
  }
  net.StepUntilQuiet(10000);
  EXPECT_EQ(deliveries, 20);
  // With 50% loss the expected transmissions are ~2x the loss-free count.
  const uint64_t per_hop = 10 + WireFormat::kLinkHeaderBytes;
  const uint64_t lossfree = per_hop * hops * 20;
  EXPECT_GT(net.stats().TotalBytesSent(), lossfree * 3 / 2);
}

TEST_F(NetworkTest, ExhaustedRetriesDropWithCallback) {
  common::SequentialPhaseScope seq_phase;
  NetworkOptions opts;
  opts.loss_prob = 1.0;  // nothing ever gets through
  opts.max_retries = 3;
  Network net = MakeNet(opts);
  int drops = 0;
  NodeId drop_at = -1;
  net.set_drop_handler([&](const Message&, NodeId at, NodeId) {
    ++drops;
    drop_at = at;
  });
  auto path = topo_->ShortestPath(0, 9);
  ASSERT_TRUE(net.Submit(MakeMsg(net, 0, 9, RoutingMode::kSourcePath, path)).ok());
  net.StepUntilQuiet(100);
  EXPECT_EQ(drops, 1);
  EXPECT_EQ(drop_at, 0);  // never left the origin
}

TEST_F(NetworkTest, FailedNodeNeverAcks) {
  common::SequentialPhaseScope seq_phase;
  Network net = MakeNet();
  int drops = 0;
  net.set_drop_handler(
      [&](const Message&, NodeId, NodeId) { ++drops; });
  auto path = topo_->ShortestPath(0, 9);
  net.FailNode(path[1]);
  ASSERT_TRUE(net.Submit(MakeMsg(net, 0, 9, RoutingMode::kSourcePath, path)).ok());
  net.StepUntilQuiet(100);
  EXPECT_EQ(drops, 1);
  // Sender kept transmitting (and being charged) until retries ran out.
  EXPECT_EQ(net.stats().node(0).messages_sent,
            static_cast<uint64_t>(net.options().max_retries) + 1);
}

TEST_F(NetworkTest, FailedOriginRejectsSubmit) {
  common::SequentialPhaseScope seq_phase;
  Network net = MakeNet();
  net.FailNode(4);
  EXPECT_TRUE(net.IsFailed(4));
  EXPECT_FALSE(net.Submit(MakeMsg(net, 4, 0, RoutingMode::kTreeToRoot)).ok());
  net.ReviveNode(4);
  EXPECT_FALSE(net.IsFailed(4));
  EXPECT_TRUE(net.Submit(MakeMsg(net, 4, 0, RoutingMode::kTreeToRoot)).ok());
}

TEST_F(NetworkTest, MergingSharesOneHeaderPerPacket) {
  common::SequentialPhaseScope seq_phase;
  // Two data messages from the same node to the same destination in the
  // same cycle: merged -> one link header total per hop.
  auto path = topo_->ShortestPath(0, 9);
  const int hops = static_cast<int>(path.size()) - 1;
  NetworkOptions merged_opts;
  merged_opts.enable_merging = true;
  Network merged = MakeNet(merged_opts);
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(
        merged.Submit(MakeMsg(merged, 0, 9, RoutingMode::kSourcePath, path)).ok());
  }
  merged.StepUntilQuiet();
  Network plain = MakeNet();
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(
        plain.Submit(MakeMsg(plain, 0, 9, RoutingMode::kSourcePath, path)).ok());
  }
  plain.StepUntilQuiet();
  EXPECT_EQ(plain.stats().TotalBytesSent(),
            (2 * 10 + 2 * WireFormat::kLinkHeaderBytes) *
                static_cast<uint64_t>(hops));
  EXPECT_EQ(merged.stats().TotalBytesSent(),
            (2 * 10 + WireFormat::kLinkHeaderBytes) *
                static_cast<uint64_t>(hops));
}

TEST_F(NetworkTest, MulticastChargesOncePerBroadcast) {
  common::SequentialPhaseScope seq_phase;
  Network net = MakeNet();
  std::vector<NodeId> delivered;
  net.set_delivery_handler(
      [&](const Message&, NodeId at) { delivered.push_back(at); });
  // Node 2's neighbors in Grid(2,5) include 1, 3, 6, 7 (row-major layout).
  // Build a one-level tree: 2 -> {1, 3}.
  MulticastRoute route;
  route.edges = {{2, 1}, {2, 3}};
  route.targets = {1, 3};
  McastId route_id = net.routes().InternMulticast(std::move(route));
  Message m = MakeMsg(net, 2, 2, RoutingMode::kSourcePath);
  ASSERT_TRUE(net.SubmitMulticast(std::move(m), route_id).ok());
  net.StepUntilQuiet();
  EXPECT_EQ(delivered.size(), 2u);
  // One broadcast transmission (header+payload), two receptions.
  EXPECT_EQ(net.stats().node(2).bytes_sent,
            static_cast<uint64_t>(10 + WireFormat::kLinkHeaderBytes));
  EXPECT_EQ(net.stats().node(1).bytes_received,
            static_cast<uint64_t>(10 + WireFormat::kLinkHeaderBytes));
}

TEST_F(NetworkTest, MulticastFanOutOrderIsParentChildAscending) {
  common::SequentialPhaseScope seq_phase;
  // Regression for determinism: fan-out order must be (parent, child)
  // ascending by construction — never a function of hash-map iteration —
  // and independent of the order the route's edges were assembled in.
  Network net = MakeNet();
  std::vector<NodeId> delivered;
  net.set_delivery_handler(
      [&](const Message&, NodeId at) { delivered.push_back(at); });
  // Two-level tree on Grid(2,5): 2 -> {1, 3}, 3 -> {4}; edges deliberately
  // listed out of order (Normalize inside InternMulticast sorts them).
  MulticastRoute route;
  route.edges = {{3, 4}, {2, 3}, {2, 1}};
  route.targets = {4, 3, 1};
  McastId route_id = net.routes().InternMulticast(std::move(route));
  Message m = MakeMsg(net, 2, 2, RoutingMode::kSourcePath);
  ASSERT_TRUE(net.SubmitMulticast(std::move(m), route_id).ok());
  net.StepUntilQuiet();
  // Level 1 delivers 2's children ascending (1, then 3); level 2 delivers
  // 3's child.
  EXPECT_EQ(delivered, (std::vector<NodeId>{1, 3, 4}));
}

TEST_F(NetworkTest, MulticastDeliversAtOriginTarget) {
  common::SequentialPhaseScope seq_phase;
  Network net = MakeNet();
  std::vector<NodeId> delivered;
  net.set_delivery_handler(
      [&](const Message&, NodeId at) { delivered.push_back(at); });
  MulticastRoute route;
  route.targets = {2};
  McastId route_id = net.routes().InternMulticast(std::move(route));
  Message m = MakeMsg(net, 2, 2, RoutingMode::kSourcePath);
  ASSERT_TRUE(net.SubmitMulticast(std::move(m), route_id).ok());
  EXPECT_EQ(delivered, std::vector<NodeId>{2});
}

TEST_F(NetworkTest, SnoopingFiresForNeighbors) {
  common::SequentialPhaseScope seq_phase;
  NetworkOptions opts;
  opts.enable_snooping = true;
  Network net = MakeNet(opts);
  std::vector<NodeId> snoopers;
  net.set_snoop_handler(
      [&](const Message&, NodeId snooper, NodeId /*from*/, NodeId to) {
        EXPECT_NE(snooper, to);
        snoopers.push_back(snooper);
      });
  auto path = topo_->ShortestPath(0, 4);
  ASSERT_TRUE(net.Submit(MakeMsg(net, 0, 4, RoutingMode::kSourcePath, path)).ok());
  net.StepUntilQuiet();
  EXPECT_FALSE(snoopers.empty());
}

TEST_F(NetworkTest, SnoopFiresEvenWhenReceiverLosesTheFrame) {
  common::SequentialPhaseScope seq_phase;
  // Snoop semantics (network.h): overhearing keys off the sender's
  // transmission alone, independent of receiver loss. With loss 1.0 and no
  // retries the frame never arrives — every neighbor still overhears the
  // one on-air attempt, and the drop callback fires alongside.
  NetworkOptions opts;
  opts.enable_snooping = true;
  opts.loss_prob = 1.0;
  opts.max_retries = 0;
  Network net = MakeNet(opts);
  int snoops = 0, drops = 0, deliveries = 0;
  net.set_snoop_handler(
      [&](const Message&, NodeId, NodeId, NodeId) { ++snoops; });
  net.set_drop_handler([&](const Message&, NodeId, NodeId) { ++drops; });
  net.set_delivery_handler([&](const Message&, NodeId) { ++deliveries; });
  auto path = topo_->ShortestPath(0, 4);
  ASSERT_TRUE(net.Submit(MakeMsg(net, 0, 4, RoutingMode::kSourcePath, path)).ok());
  net.StepUntilQuiet(100);
  EXPECT_EQ(deliveries, 0);
  EXPECT_EQ(drops, 1);
  EXPECT_EQ(snoops, static_cast<int>(topo_->neighbors(0).size()) - 1);
}

TEST_F(NetworkTest, SnoopFiresOnEveryRetransmissionAttempt) {
  common::SequentialPhaseScope seq_phase;
  NetworkOptions opts;
  opts.enable_snooping = true;
  opts.loss_prob = 1.0;
  opts.max_retries = 2;  // 3 on-air attempts, then the frame is abandoned
  Network net = MakeNet(opts);
  std::map<NodeId, int> per_snooper;
  net.set_snoop_handler([&](const Message&, NodeId snooper, NodeId from,
                            NodeId) {
    EXPECT_EQ(from, 0);
    ++per_snooper[snooper];
  });
  auto path = topo_->ShortestPath(0, 4);
  ASSERT_TRUE(net.Submit(MakeMsg(net, 0, 4, RoutingMode::kSourcePath, path)).ok());
  net.StepUntilQuiet(100);
  ASSERT_FALSE(per_snooper.empty());
  for (const auto& [snooper, count] : per_snooper) {
    EXPECT_EQ(count, 3) << "snooper " << snooper;
  }
}

TEST_F(NetworkTest, FailedNeighborsAndTheReceiverNeverSnoop) {
  common::SequentialPhaseScope seq_phase;
  NetworkOptions opts;
  opts.enable_snooping = true;
  Network net = MakeNet(opts);
  auto path = topo_->ShortestPath(0, 9);
  ASSERT_GE(path.size(), 2u);
  const NodeId next = path[1];
  // Kill one neighbor of the sender that is not the next hop.
  NodeId dead = -1;
  for (NodeId w : topo_->neighbors(0)) {
    if (w != next) {
      dead = w;
      break;
    }
  }
  ASSERT_GE(dead, 0);
  net.FailNode(dead);
  std::vector<NodeId> snoopers;
  net.set_snoop_handler([&](const Message&, NodeId snooper, NodeId from,
                            NodeId to) {
    if (from == 0) {
      EXPECT_NE(snooper, to);
      snoopers.push_back(snooper);
    }
  });
  ASSERT_TRUE(net.Submit(MakeMsg(net, 0, 9, RoutingMode::kSourcePath, path)).ok());
  net.StepUntilQuiet();
  EXPECT_FALSE(snoopers.empty());
  for (NodeId s : snoopers) {
    EXPECT_NE(s, dead);
    EXPECT_NE(s, next);
  }
}

TEST_F(NetworkTest, PerLinkLossOverridesDefaultAndClears) {
  common::SequentialPhaseScope seq_phase;
  NetworkOptions opts;
  opts.loss_prob = 0.25;
  Network net = MakeNet(opts);
  EXPECT_DOUBLE_EQ(net.LinkLoss(0, 1), 0.25);
  net.SetLinkLoss(0, 1, 1.0);
  EXPECT_DOUBLE_EQ(net.LinkLoss(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(net.LinkLoss(1, 0), 0.25);  // directed override
  net.ClearLinkLoss(0, 1);
  EXPECT_DOUBLE_EQ(net.LinkLoss(0, 1), 0.25);
}

TEST_F(NetworkTest, LossyLinkDropsWhileOthersDeliver) {
  common::SequentialPhaseScope seq_phase;
  // A single poisoned link (loss 1.0) on an otherwise perfect radio: frames
  // over the poisoned first hop die, frames elsewhere sail through.
  Network net = MakeNet();
  auto path = topo_->ShortestPath(0, 9);
  ASSERT_GE(path.size(), 2u);
  net.SetLinkLoss(path[0], path[1], 1.0);
  int deliveries = 0, drops = 0;
  net.set_delivery_handler([&](const Message&, NodeId) { ++deliveries; });
  net.set_drop_handler([&](const Message&, NodeId, NodeId) { ++drops; });
  ASSERT_TRUE(net.Submit(MakeMsg(net, 0, 9, RoutingMode::kSourcePath, path)).ok());
  // A frame between two unaffected nodes still gets through.
  auto other = topo_->ShortestPath(4, 9);
  ASSERT_TRUE(
      net.Submit(MakeMsg(net, 4, 9, RoutingMode::kSourcePath, other)).ok());
  net.StepUntilQuiet(100);
  EXPECT_EQ(drops, 1);
  EXPECT_EQ(deliveries, 1);
}

TEST_F(NetworkTest, ClockAdvancesPerStep) {
  common::SequentialPhaseScope seq_phase;
  Network net = MakeNet();
  EXPECT_EQ(net.now(), 0);
  net.Step();
  net.Step();
  EXPECT_EQ(net.now(), 2);
}

TEST_F(NetworkTest, StatsByKindAndInitiationSplit) {
  common::SequentialPhaseScope seq_phase;
  Network net = MakeNet();
  auto path = topo_->ShortestPath(0, 9);
  Message explore = MakeMsg(net, 0, 9, RoutingMode::kSourcePath, path);
  explore.kind = MessageKind::kExploration;
  ASSERT_TRUE(net.Submit(std::move(explore)).ok());
  ASSERT_TRUE(net.Submit(MakeMsg(net, 0, 9, RoutingMode::kSourcePath, path)).ok());
  net.StepUntilQuiet();
  EXPECT_GT(net.stats().BytesByKind(MessageKind::kExploration), 0u);
  EXPECT_GT(net.stats().BytesByKind(MessageKind::kData), 0u);
  EXPECT_EQ(net.stats().InitiationBytes(),
            net.stats().BytesByKind(MessageKind::kExploration));
  EXPECT_EQ(net.stats().ComputationBytes(),
            net.stats().BytesByKind(MessageKind::kData));
}

TEST_F(NetworkTest, TopLoadedNodesSortedDescending) {
  common::SequentialPhaseScope seq_phase;
  Network net = MakeNet();
  auto path = topo_->ShortestPath(0, 9);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        net.Submit(MakeMsg(net, 0, 9, RoutingMode::kSourcePath, path)).ok());
  }
  net.StepUntilQuiet();
  auto top = net.stats().TopLoadedNodes(5);
  ASSERT_EQ(top.size(), 5u);
  for (size_t i = 1; i < top.size(); ++i) EXPECT_GE(top[i - 1], top[i]);
}

TEST_F(NetworkTest, StatsReset) {
  common::SequentialPhaseScope seq_phase;
  Network net = MakeNet();
  auto path = topo_->ShortestPath(0, 9);
  ASSERT_TRUE(net.Submit(MakeMsg(net, 0, 9, RoutingMode::kSourcePath, path)).ok());
  net.StepUntilQuiet();
  EXPECT_GT(net.stats().TotalBytesSent(), 0u);
  net.stats().Reset();
  EXPECT_EQ(net.stats().TotalBytesSent(), 0u);
  EXPECT_EQ(net.stats().TotalMessagesSent(), 0u);
}

}  // namespace
}  // namespace net
}  // namespace aspen
