#include <gtest/gtest.h>

#include "join/medium.h"
#include "net/topology.h"
#include "query/parser.h"
#include "tests/reference_join.h"
#include "workload/workload.h"

namespace aspen {
namespace join {
namespace {

using workload::SelectivityParams;
using workload::Workload;

TEST(SharedMediumTest, TwoQueriesProduceCorrectResults) {
  auto topo = net::Topology::Random(100, 7.0, 42);
  ASSERT_TRUE(topo.ok());
  SelectivityParams sel{0.5, 0.5, 0.2};
  auto q1 = Workload::MakeQuery1(&*topo, sel, 3, 7);
  auto q2 = Workload::MakeQuery2(&*topo, sel, 3, 9);
  ASSERT_TRUE(q1.ok() && q2.ok());

  SharedMedium medium(&*topo, {});
  ExecutorOptions opts;
  opts.algorithm = Algorithm::kInnet;
  opts.features = InnetFeatures::Cmg();
  opts.assumed = sel;
  auto r1 = medium.TryAddQuery(&*q1, opts);
  auto r2 = medium.TryAddQuery(&*q2, opts);
  ASSERT_TRUE(r1.ok() && r2.ok());
  JoinExecutor* e1 = *r1;
  JoinExecutor* e2 = *r2;
  ASSERT_TRUE(medium.InitiateAll().ok());
  ASSERT_TRUE(medium.RunCycles(30).ok());

  EXPECT_EQ(e1->results(), testing_util::ReferenceResults(*q1, 30));
  EXPECT_EQ(e2->results(), testing_util::ReferenceResults(*q2, 30));
  EXPECT_GT(medium.stats().TotalBytesSent(), 0u);
}

TEST(SharedMediumTest, ResultsMatchSoloExecution) {
  // Interleaving two queries on one medium must not change either query's
  // semantics — only the shared traffic accounting.
  auto topo = net::Topology::Random(80, 7.0, 11);
  ASSERT_TRUE(topo.ok());
  SelectivityParams sel{0.5, 0.5, 0.2};
  auto shared_wl = *Workload::MakeQuery1(&*topo, sel, 3, 7);
  auto other_wl = *Workload::MakeQuery2(&*topo, sel, 3, 9);
  auto solo_wl = *Workload::MakeQuery1(&*topo, sel, 3, 7);

  ExecutorOptions opts;
  opts.algorithm = Algorithm::kBase;
  opts.assumed = sel;

  SharedMedium medium(&*topo, {});
  auto shared_admitted = medium.TryAddQuery(&shared_wl, opts);
  ASSERT_TRUE(shared_admitted.ok());
  JoinExecutor* shared_exec = *shared_admitted;
  ASSERT_TRUE(medium.TryAddQuery(&other_wl, opts).ok());
  ASSERT_TRUE(medium.InitiateAll().ok());
  ASSERT_TRUE(medium.RunCycles(25).ok());

  JoinExecutor solo(&solo_wl, opts);
  ASSERT_TRUE(solo.Initiate().ok());
  ASSERT_TRUE(solo.RunCycles(25).ok());
  EXPECT_EQ(shared_exec->results(), solo.results());
}

TEST(SharedMediumTest, CombinedTrafficAtLeastEachQuery) {
  auto topo = net::Topology::Random(80, 7.0, 11);
  ASSERT_TRUE(topo.ok());
  SelectivityParams sel{0.5, 0.5, 0.2};
  auto q1 = *Workload::MakeQuery1(&*topo, sel, 3, 7);
  auto q1_solo = *Workload::MakeQuery1(&*topo, sel, 3, 7);
  ExecutorOptions opts;
  opts.algorithm = Algorithm::kBase;
  opts.assumed = sel;

  JoinExecutor solo(&q1_solo, opts);
  ASSERT_TRUE(solo.Initiate().ok());
  ASSERT_TRUE(solo.RunCycles(20).ok());
  uint64_t solo_bytes = solo.network().stats().TotalBytesSent();

  auto q2 = *Workload::MakeQuery2(&*topo, sel, 3, 9);
  SharedMedium medium(&*topo, {});
  ASSERT_TRUE(medium.TryAddQuery(&q1, opts).ok());
  ASSERT_TRUE(medium.TryAddQuery(&q2, opts).ok());
  ASSERT_TRUE(medium.InitiateAll().ok());
  ASSERT_TRUE(medium.RunCycles(20).ok());
  EXPECT_GT(medium.stats().TotalBytesSent(), solo_bytes);
}

TEST(SharedMediumTest, CrossQueryMergingSavesHeaders) {
  // With combining enabled, data frames from different queries headed the
  // same way share link headers, so two queries on one medium cost less
  // than the sum of two isolated runs.
  auto topo = net::Topology::Random(80, 7.0, 11);
  ASSERT_TRUE(topo.ok());
  SelectivityParams sel{1.0, 1.0, 0.2};
  ExecutorOptions opts;
  opts.algorithm = Algorithm::kBase;
  opts.assumed = sel;

  uint64_t sum_solo = 0;
  for (uint64_t seed : {7ULL, 9ULL}) {
    auto wl = *Workload::MakeQuery1(&*topo, sel, 3, seed);
    JoinExecutor solo(&wl, opts);
    ASSERT_TRUE(solo.Initiate().ok());
    ASSERT_TRUE(solo.RunCycles(20).ok());
    sum_solo += solo.network().stats().TotalBytesSent();
  }

  auto a = *Workload::MakeQuery1(&*topo, sel, 3, 7);
  auto b = *Workload::MakeQuery1(&*topo, sel, 3, 9);
  net::NetworkOptions shared_opts;
  shared_opts.enable_merging = true;
  SharedMedium medium(&*topo, shared_opts);
  ASSERT_TRUE(medium.TryAddQuery(&a, opts).ok());
  ASSERT_TRUE(medium.TryAddQuery(&b, opts).ok());
  ASSERT_TRUE(medium.InitiateAll().ok());
  ASSERT_TRUE(medium.RunCycles(20).ok());
  EXPECT_LT(medium.stats().TotalBytesSent(), sum_solo);
}

TEST(SharedMediumTest, RunCyclesRejectedOnAttachedExecutor) {
  auto topo = net::Topology::Random(40, 7.0, 3);
  ASSERT_TRUE(topo.ok());
  auto wl = *Workload::MakeQuery1(&*topo, {0.5, 0.5, 0.2}, 3, 7);
  SharedMedium medium(&*topo, {});
  ExecutorOptions opts;
  opts.algorithm = Algorithm::kBase;
  auto admitted = medium.TryAddQuery(&wl, opts);
  ASSERT_TRUE(admitted.ok());
  JoinExecutor* exec = *admitted;
  ASSERT_TRUE(medium.InitiateAll().ok());
  EXPECT_FALSE(exec->RunCycles(1).ok());
  EXPECT_TRUE(medium.RunCycles(1).ok());
}

TEST(SharedMediumTest, EmptyMediumRejectsRun) {
  auto topo = net::Topology::Random(40, 7.0, 3);
  ASSERT_TRUE(topo.ok());
  SharedMedium medium(&*topo, {});
  EXPECT_FALSE(medium.RunCycles(1).ok());
}

TEST(SharedMediumTest, TryAddQueryRejectsMismatchedSampleInterval) {
  auto topo = net::Topology::Random(40, 7.0, 3);
  ASSERT_TRUE(topo.ok());
  auto wl = *Workload::MakeQuery1(&*topo, {0.5, 0.5, 0.2}, 3, 7);
  // Same query, slower sampling clock: incompatible with the first query's
  // scheduler.
  query::JoinQuery slow_query = wl.join_query();
  slow_query.window.sample_interval *= 2;
  auto slow = Workload::FromQuery(&*topo, slow_query, {0.5, 0.5, 0.2}, 9);
  ASSERT_TRUE(slow.ok());

  SharedMedium medium(&*topo, {});
  ExecutorOptions opts;
  opts.algorithm = Algorithm::kBase;
  ASSERT_TRUE(medium.TryAddQuery(&wl, opts).ok());
  auto rejected = medium.TryAddQuery(&*slow, opts);
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsInvalidArgument());
  // Nothing was registered by the failed call; the medium still runs.
  EXPECT_EQ(medium.num_queries(), 1);
  ASSERT_TRUE(medium.InitiateAll().ok());
  EXPECT_TRUE(medium.RunCycles(1).ok());
}

TEST(SharedMediumTest, TryAddQueryRejectsForeignTopology) {
  auto topo = net::Topology::Random(40, 7.0, 3);
  auto other_topo = net::Topology::Random(40, 7.0, 4);
  ASSERT_TRUE(topo.ok() && other_topo.ok());
  auto wl = *Workload::MakeQuery1(&*other_topo, {0.5, 0.5, 0.2}, 3, 7);
  SharedMedium medium(&*topo, {});
  ExecutorOptions opts;
  opts.algorithm = Algorithm::kBase;
  auto rejected = medium.TryAddQuery(&wl, opts);
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsInvalidArgument());
  EXPECT_EQ(medium.num_queries(), 0);
}

// ---- QuerySpec admission (SQL in, medium-owned workload) --------------------

constexpr char kAppendixBSql[] =
    "SELECT S.id, T.id, S.time FROM S, T [windowsize=3 sampleinterval=100] "
    "WHERE S.id < 25 AND hash(S.u) % 2 = 0 AND T.id > 50 AND "
    "hash(T.u) % 2 = 0 AND S.x = T.y + 5 AND S.u = T.u";

TEST(SharedMediumTest, QuerySpecAdmissionMatchesHandBuiltWorkload) {
  auto topo = net::Topology::Random(100, 7.0, 42);
  ASSERT_TRUE(topo.ok());
  SelectivityParams sel{0.5, 0.5, 0.2};

  SharedMedium::QuerySpec spec;
  spec.sql = kAppendixBSql;
  spec.params = sel;
  spec.seed = 7;
  spec.options.algorithm = Algorithm::kBase;
  spec.options.assumed = sel;

  SharedMedium medium(&*topo, {});
  auto admitted = medium.TryAddQuery(spec);
  ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
  JoinExecutor* exec = *admitted;
  ASSERT_TRUE(medium.InitiateAll().ok());
  ASSERT_TRUE(medium.RunCycles(30).ok());

  // The spec path must be equivalent to parsing + building the workload by
  // hand: same query, params and seed → same reference result count.
  auto query = query::ParseQuery(kAppendixBSql);
  ASSERT_TRUE(query.ok());
  auto by_hand = Workload::FromQuery(&*topo, *std::move(query), sel, 7);
  ASSERT_TRUE(by_hand.ok());
  EXPECT_EQ(exec->results(), testing_util::ReferenceResults(*by_hand, 30));
  EXPECT_GT(exec->results(), 0u);
}

TEST(SharedMediumTest, QuerySpecBadSqlRejectedNothingRegistered) {
  auto topo = net::Topology::Random(40, 7.0, 3);
  ASSERT_TRUE(topo.ok());
  SharedMedium medium(&*topo, {});
  SharedMedium::QuerySpec spec;
  spec.sql = "SELECT FROM WHERE";  // not a join query
  auto rejected = medium.TryAddQuery(spec);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(medium.num_queries(), 0);
  // The medium is unharmed: a valid spec still admits afterwards.
  spec.sql = kAppendixBSql;
  spec.params = {0.5, 0.5, 0.2};
  spec.options.assumed = spec.params;
  EXPECT_TRUE(medium.TryAddQuery(spec).ok());
  EXPECT_EQ(medium.num_queries(), 1);
}

TEST(SharedMediumTest, RemoveQueryFreesSpecOwnedWorkload) {
  auto topo = net::Topology::Random(60, 7.0, 5);
  ASSERT_TRUE(topo.ok());
  SharedMedium medium(&*topo, {});
  SharedMedium::QuerySpec spec;
  spec.sql = kAppendixBSql;
  spec.params = {0.5, 0.5, 0.2};
  spec.seed = 9;
  spec.options.algorithm = Algorithm::kBase;
  spec.options.assumed = spec.params;
  auto admitted = medium.TryAddQuery(spec);
  ASSERT_TRUE(admitted.ok());
  int id = (*admitted)->query_id();
  ASSERT_TRUE(medium.InitiateAll().ok());
  ASSERT_TRUE(medium.RunCycles(5).ok());
  // Removal tears down the executor AND the medium-owned workload (ASan
  // would flag a leak or a dangling sample if either survived)...
  ASSERT_TRUE(medium.RemoveQuery(id).ok());
  EXPECT_EQ(medium.num_queries(), 0);
  // ...and the medium keeps serving: re-admit and run again.
  auto again = medium.TryAddQuery(spec);
  ASSERT_TRUE(again.ok());
  ASSERT_TRUE(medium.InitiateAll().ok());
  EXPECT_TRUE(medium.RunCycles(5).ok());
}

}  // namespace
}  // namespace join
}  // namespace aspen
