#include <gtest/gtest.h>

#include "adapt/estimator.h"

namespace aspen {
namespace adapt {
namespace {

using workload::SelectivityParams;

TEST(EstimatorTest, SigmaStFormula) {
  // sigma_st = Nst / (w * (Ns + Nt)) — Section 6.
  SelectivityEstimator e;
  for (int i = 0; i < 10; ++i) e.RecordS(1);  // Ns=10, Nst=10
  for (int i = 0; i < 10; ++i) e.RecordT(0);  // Nt=10
  for (int i = 0; i < 20; ++i) e.Tick();
  SelectivityParams prior{0.5, 0.5, 0.5};
  auto est = e.Estimate(/*w=*/2, prior);
  EXPECT_DOUBLE_EQ(est.sigma_st, 10.0 / (2.0 * 20.0));
  EXPECT_DOUBLE_EQ(est.sigma_s, 0.5);  // 10 sends / 20 cycles
  EXPECT_DOUBLE_EQ(est.sigma_t, 0.5);
}

TEST(EstimatorTest, FallsBackToPriorWithoutEvidence) {
  SelectivityEstimator e;
  SelectivityParams prior{0.3, 0.7, 0.1};
  auto est = e.Estimate(1, prior);
  EXPECT_DOUBLE_EQ(est.sigma_s, 0.3);
  EXPECT_DOUBLE_EQ(est.sigma_t, 0.7);
  EXPECT_DOUBLE_EQ(est.sigma_st, 0.1);
}

TEST(EstimatorTest, ClampsToProbabilityRange) {
  SelectivityEstimator e;
  e.RecordS(50);  // burst: Nst >> w*(Ns+Nt)
  e.Tick();
  auto est = e.Estimate(1, SelectivityParams{0.5, 0.5, 0.5});
  EXPECT_LE(est.sigma_st, 1.0);
  EXPECT_GE(est.sigma_s, 1e-4);
}

TEST(EstimatorTest, ResetClearsCounters) {
  SelectivityEstimator e;
  e.RecordS(1);
  e.RecordT(2);
  e.Tick();
  e.Reset();
  EXPECT_EQ(e.ns(), 0);
  EXPECT_EQ(e.nt(), 0);
  EXPECT_EQ(e.nst(), 0);
  EXPECT_EQ(e.cycles(), 0);
}

TEST(DivergenceTest, TriggersBeyondThreshold) {
  SelectivityParams ref{0.5, 0.5, 0.2};
  // 33% of 0.5 is 0.165: a move to 0.70 diverges, 0.60 does not.
  SelectivityParams close = ref;
  close.sigma_s = 0.60;
  EXPECT_FALSE(SelectivityEstimator::Diverged(close, ref, 0.33));
  SelectivityParams far = ref;
  far.sigma_s = 0.70;
  EXPECT_TRUE(SelectivityEstimator::Diverged(far, ref, 0.33));
}

TEST(DivergenceTest, AnyComponentSuffices) {
  SelectivityParams ref{0.5, 0.5, 0.2};
  SelectivityParams st_only = ref;
  st_only.sigma_st = 0.05;
  EXPECT_TRUE(SelectivityEstimator::Diverged(st_only, ref, 0.33));
}

TEST(DivergenceTest, RelativeNotAbsolute) {
  // Small absolute changes on small references still trigger.
  SelectivityParams ref{0.5, 0.5, 0.01};
  SelectivityParams fresh = ref;
  fresh.sigma_st = 0.02;  // +100% relative
  EXPECT_TRUE(SelectivityEstimator::Diverged(fresh, ref, 0.33));
}

TEST(DivergenceTest, ZeroReferenceHandled) {
  SelectivityParams ref{0.0, 0.5, 0.2};
  SelectivityParams fresh = ref;
  EXPECT_FALSE(SelectivityEstimator::Diverged(fresh, ref, 0.33));
  fresh.sigma_s = 0.001;
  EXPECT_TRUE(SelectivityEstimator::Diverged(fresh, ref, 0.33));
}

}  // namespace
}  // namespace adapt
}  // namespace aspen
