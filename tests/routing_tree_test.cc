#include <set>

#include <gtest/gtest.h>

#include "net/topology.h"
#include "net/traffic_stats.h"
#include "routing/routing_tree.h"

namespace aspen {
namespace routing {
namespace {

class RoutingTreeTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    auto topo = net::Topology::Random(80, 7.0, GetParam());
    ASSERT_TRUE(topo.ok());
    topo_ = std::make_unique<net::Topology>(std::move(*topo));
    tree_ = std::make_unique<RoutingTree>(RoutingTree::Build(*topo_, 0));
  }

  std::unique_ptr<net::Topology> topo_;
  std::unique_ptr<RoutingTree> tree_;
};

TEST_P(RoutingTreeTest, DepthsEqualBfsDistance) {
  auto dist = topo_->HopDistancesFrom(0);
  for (net::NodeId u = 0; u < topo_->num_nodes(); ++u) {
    EXPECT_EQ(tree_->DepthOf(u), dist[u]);
  }
}

TEST_P(RoutingTreeTest, ParentChildConsistency) {
  EXPECT_EQ(tree_->ParentOf(0), -1);
  std::set<net::NodeId> seen{0};
  for (net::NodeId u = 1; u < topo_->num_nodes(); ++u) {
    net::NodeId p = tree_->ParentOf(u);
    ASSERT_GE(p, 0);
    EXPECT_TRUE(topo_->AreNeighbors(u, p));
    EXPECT_EQ(tree_->DepthOf(u), tree_->DepthOf(p) + 1);
    const auto& kids = tree_->ChildrenOf(p);
    EXPECT_NE(std::find(kids.begin(), kids.end(), u), kids.end());
    seen.insert(u);
  }
  EXPECT_EQ(static_cast<int>(seen.size()), topo_->num_nodes());
}

TEST_P(RoutingTreeTest, PathToRootFollowsParents) {
  for (net::NodeId u : {3, 17, 42, 79}) {
    auto path = tree_->PathToRoot(u);
    EXPECT_EQ(path.front(), u);
    EXPECT_EQ(path.back(), 0);
    EXPECT_EQ(static_cast<int>(path.size()) - 1, tree_->DepthOf(u));
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      EXPECT_EQ(tree_->ParentOf(path[i]), path[i + 1]);
    }
  }
}

TEST_P(RoutingTreeTest, TreePathConnectsThroughLca) {
  for (auto [a, b] : std::vector<std::pair<net::NodeId, net::NodeId>>{
           {5, 60}, {12, 13}, {0, 44}, {44, 0}, {7, 7}}) {
    auto path = tree_->TreePath(a, b);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), a);
    EXPECT_EQ(path.back(), b);
    // Every hop is a tree edge.
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      bool edge = tree_->ParentOf(path[i]) == path[i + 1] ||
                  tree_->ParentOf(path[i + 1]) == path[i];
      EXPECT_TRUE(edge) << path[i] << "->" << path[i + 1];
    }
    // No repeated nodes.
    std::set<net::NodeId> uniq(path.begin(), path.end());
    EXPECT_EQ(uniq.size(), path.size());
  }
}

TEST_P(RoutingTreeTest, SubtreeCountsAddUp) {
  size_t total = 0;
  for (net::NodeId c : tree_->ChildrenOf(0)) {
    total += tree_->Subtree(c).size();
  }
  EXPECT_EQ(total + 1, static_cast<size_t>(topo_->num_nodes()));
  // A subtree contains its root and only deeper nodes.
  for (net::NodeId c : tree_->ChildrenOf(0)) {
    auto sub = tree_->Subtree(c);
    EXPECT_EQ(sub.front(), c);
    for (net::NodeId u : sub) EXPECT_GE(tree_->DepthOf(u), tree_->DepthOf(c));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingTreeTest,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST(RoutingTreeTrafficTest, ConstructionChargesOneBeaconPerNode) {
  auto topo = net::Topology::Random(40, 7.0, 4);
  ASSERT_TRUE(topo.ok());
  net::TrafficStats stats(topo->num_nodes());
  RoutingTree::Build(*topo, 0, &stats);
  EXPECT_EQ(stats.TotalMessagesSent(), 40u);
  EXPECT_EQ(static_cast<int64_t>(stats.TotalBytesSent()),
            RoutingTree::ConstructionBytes(40));
  EXPECT_EQ(stats.BytesByKind(net::MessageKind::kBeacon),
            stats.TotalBytesSent());
}

TEST(RoutingTreeTrafficTest, NonBaseRoot) {
  auto topo = net::Topology::Random(40, 7.0, 4);
  ASSERT_TRUE(topo.ok());
  RoutingTree tree = RoutingTree::Build(*topo, 17);
  EXPECT_EQ(tree.root(), 17);
  EXPECT_EQ(tree.DepthOf(17), 0);
  EXPECT_EQ(tree.ParentOf(17), -1);
}

}  // namespace
}  // namespace routing
}  // namespace aspen
