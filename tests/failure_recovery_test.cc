// Section 7 failure recovery, exercised end to end through the scenario
// engine: join-node death is detected via exhausted retries, the pair fails
// over to the base, producers replay their buffered windows, and the whole
// scenario is deterministic. Also the regression test for the loss-draw
// short-circuit fix in Network::Step (draws are consumed unconditionally,
// so node failure never perturbs loss outcomes on untouched links).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "common/phase.h"
#include "core/engine.h"
#include "join/executor.h"
#include "net/network.h"
#include "net/topology.h"
#include "scenario/dynamics.h"
#include "workload/workload.h"

namespace aspen {
namespace {

using net::NodeId;
using workload::SelectivityParams;
using workload::Workload;

/// A single-pair Query 0 workload whose join node is forced in-network by a
/// low assumed join selectivity (the Figure 14 configuration). Heap-owned
/// so the workload's topology pointer stays valid wherever the fixture
/// moves.
struct FailureFixture {
  std::unique_ptr<net::Topology> topo;
  std::unique_ptr<Workload> wl;
  join::ExecutorOptions opts;

  static FailureFixture Make(uint64_t seed) {
    FailureFixture fx;
    fx.topo = std::make_unique<net::Topology>(
        *net::Topology::Random(100, 7.0, 42));
    SelectivityParams sel{1.0, 1.0, 0.5};
    fx.wl = std::make_unique<Workload>(*Workload::MakeQuery0(
        fx.topo.get(), sel, /*num_pairs=*/1, /*window=*/3, seed));
    fx.opts.algorithm = join::Algorithm::kInnet;
    fx.opts.features = join::InnetFeatures::None();
    fx.opts.assumed = {1.0, 1.0, 0.02};
    fx.opts.seed = seed;
    return fx;
  }
};

/// The in-network join node of the fixture's single pair (asserts one
/// exists and is neither producer).
NodeId InnetJoinNode(const join::JoinExecutor& exec) {
  for (const auto& pl : exec.placements()) {
    if (!pl.at_base && pl.join_node != pl.pair.s && pl.join_node != pl.pair.t) {
      return pl.join_node;
    }
  }
  return -1;
}

TEST(FailureRecoveryTest, FailoverReplaysBufferedWindowsAfterRecovery) {
  // The single test thread is the sequential phase: nothing runs
  // concurrently with these direct network mutations.
  common::SequentialPhaseScope seq_phase;
  // The relay (the in-network join node) dies mid-run and — in this seed's
  // topology — also sits on one producer's tree path to the base, so that
  // producer's failover replay cannot initially get through. Both
  // producers must fail over, and once the relay recovers, the pending
  // replay retry delivers the buffered window and results resume.
  FailureFixture fx = FailureFixture::Make(/*seed=*/7);
  join::JoinExecutor exec(fx.wl.get(), fx.opts);
  ASSERT_TRUE(exec.Initiate().ok());
  NodeId j = InnetJoinNode(exec);
  ASSERT_GE(j, 0) << "fixture must place the join in-network";

  scenario::DynamicsSchedule schedule;
  schedule.FailAt(/*cycle=*/10, j).RecoverAt(/*cycle=*/25, j);
  scenario::ScenarioDriver driver(&exec.network(), &schedule);
  exec.scheduler()->AttachFront(&driver);

  // Through the failure and its detection, up to just before the recovery.
  ASSERT_TRUE(exec.RunCycles(25).ok());
  ASSERT_EQ(driver.failures_applied(), 1);
  auto mid = exec.Stats();
  EXPECT_EQ(mid.failovers, 1u);  // one pair switched to the base
  const auto* pl = exec.FindPlacement(exec.pairs()[0]);
  ASSERT_NE(pl, nullptr);
  EXPECT_TRUE(pl->failed_over);
  EXPECT_TRUE(pl->at_base);
  // Both producers shipped (or are retrying) their window replay.
  uint64_t replay_bytes_mid = exec.network().stats().BytesByKind(
      net::MessageKind::kWindowTransfer);
  EXPECT_GT(replay_bytes_mid, 0u);

  // After the recovery the tree path heals: the retried replay gets
  // through and the base join produces results again.
  ASSERT_TRUE(exec.RunCycles(15).ok());
  ASSERT_EQ(driver.recoveries_applied(), 1);
  auto end = exec.Stats();
  EXPECT_GT(end.results, mid.results);
}

TEST(FailureRecoveryTest, ReplayPendingWhileProducerDownSurvivesChurn) {
  common::SequentialPhaseScope seq_phase;
  // Churn kills the producers themselves while their failover replay is
  // still pending (the dead join node blocks the tree path). The pending
  // replay must survive the producers' outage and ship once they recover.
  FailureFixture fx = FailureFixture::Make(/*seed=*/7);
  join::JoinExecutor exec(fx.wl.get(), fx.opts);
  ASSERT_TRUE(exec.Initiate().ok());
  NodeId j = InnetJoinNode(exec);
  ASSERT_GE(j, 0);
  const join::PairKey pair = exec.pairs()[0];

  scenario::DynamicsSchedule schedule;
  schedule.FailAt(/*cycle=*/10, j)
      .FailAt(/*cycle=*/13, pair.s)
      .FailAt(/*cycle=*/13, pair.t)
      .RecoverAt(/*cycle=*/25, j)
      .RecoverAt(/*cycle=*/25, pair.s)
      .RecoverAt(/*cycle=*/25, pair.t);
  scenario::ScenarioDriver driver(&exec.network(), &schedule);
  exec.scheduler()->AttachFront(&driver);

  // Producers are down cycles 13..24: no replay traffic can flow.
  ASSERT_TRUE(exec.RunCycles(24).ok());
  auto mid = exec.Stats();
  EXPECT_GE(mid.failovers, 1u);
  uint64_t wt_mid =
      exec.network().stats().BytesByKind(net::MessageKind::kWindowTransfer);

  // After everything recovers, the retried replay ships and results resume.
  ASSERT_TRUE(exec.RunCycles(16).ok());
  uint64_t wt_end =
      exec.network().stats().BytesByKind(net::MessageKind::kWindowTransfer);
  EXPECT_GT(wt_end, wt_mid);
  EXPECT_GT(exec.Stats().results, mid.results);
}

TEST(FailureRecoveryTest, RecoveredRunStaysCloseToUnfailedBaseline) {
  common::SequentialPhaseScope seq_phase;
  // With both windows replayed and the route healed, the failure run loses
  // only the outage window — well over half the unfailed baseline's
  // results must survive a 15-cycle mid-run outage in a 40-cycle run.
  FailureFixture fx = FailureFixture::Make(/*seed=*/7);
  auto baseline_wl = *Workload::MakeQuery0(fx.topo.get(), {1.0, 1.0, 0.5},
                                           /*num_pairs=*/1, /*window=*/3, 7);

  join::JoinExecutor exec(fx.wl.get(), fx.opts);
  ASSERT_TRUE(exec.Initiate().ok());
  NodeId j = InnetJoinNode(exec);
  ASSERT_GE(j, 0);
  scenario::DynamicsSchedule schedule;
  schedule.FailAt(/*cycle=*/10, j).RecoverAt(/*cycle=*/25, j);
  scenario::ScenarioDriver driver(&exec.network(), &schedule);
  exec.scheduler()->AttachFront(&driver);
  ASSERT_TRUE(exec.RunCycles(40).ok());

  join::JoinExecutor baseline(&baseline_wl, fx.opts);
  ASSERT_TRUE(baseline.Initiate().ok());
  ASSERT_TRUE(baseline.RunCycles(40).ok());

  EXPECT_GT(baseline.results(), 0u);
  EXPECT_GE(exec.results() * 2, baseline.results());
}

TEST(FailureRecoveryTest, FullFailureScenarioIsDeterministic) {
  common::SequentialPhaseScope seq_phase;
  // Churn + drift + a targeted kill, lossy radio: two identical runs must
  // agree bit for bit on every headline metric.
  auto topo = *net::Topology::Random(100, 7.0, 42);
  SelectivityParams sel{0.5, 0.5, 0.2};
  auto wl = *Workload::MakeQuery1(&topo, sel, /*window=*/3, 7);
  scenario::DynamicsSchedule schedule =
      scenario::DynamicsSchedule::RandomChurn(topo, /*cycles=*/30,
                                              /*rate=*/0.004,
                                              /*down_cycles=*/8, /*seed=*/5);
  schedule.DriftLossTo(/*cycle=*/10, /*target=*/0.1, /*over_cycles=*/10);
  core::ExperimentOptions opts;
  opts.executor.algorithm = join::Algorithm::kInnet;
  opts.executor.features = join::InnetFeatures::Cmg();
  opts.executor.assumed = sel;
  opts.executor.loss_prob = 0.02;
  opts.executor.seed = 7;
  opts.dynamics = &schedule;

  auto a = core::RunExperiment(wl, opts, /*sampling_cycles=*/30);
  auto b = core::RunExperiment(wl, opts, /*sampling_cycles=*/30);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->total_bytes, b->total_bytes);
  EXPECT_EQ(a->total_messages, b->total_messages);
  EXPECT_EQ(a->results, b->results);
  EXPECT_EQ(a->failovers, b->failovers);
  EXPECT_EQ(a->migrations, b->migrations);
  EXPECT_EQ(a->avg_result_delay_cycles, b->avg_result_delay_cycles);
  EXPECT_EQ(a->max_result_delay_cycles, b->max_result_delay_cycles);
}

TEST(FailureRecoveryTest, FailingOneNodeLeavesOtherLinksLossStreamIntact) {
  common::SequentialPhaseScope seq_phase;
  // Regression for the short-circuited loss draw: every transmission
  // consumes exactly one draw whether or not its receiver is dead, so a run
  // that fails node F sees identical loss outcomes on untouched links as
  // the baseline run. max_retries=0 keeps the transmission schedules of the
  // two runs identical (one attempt per frame, delivered or not).
  auto topo = *net::Topology::Grid(2, 5, 100.0);
  auto path = topo.ShortestPath(0, 9);
  ASSERT_GE(path.size(), 3u);
  // Pick a victim F off the path, plus a live neighbor O to transmit to it.
  NodeId f = -1, o = -1;
  for (NodeId u = 1; u < topo.num_nodes(); ++u) {
    if (std::find(path.begin(), path.end(), u) != path.end()) continue;
    for (NodeId v : topo.neighbors(u)) {
      if (v != 0 && std::find(path.begin(), path.end(), v) == path.end()) {
        f = u;
        o = v;
        break;
      }
    }
    if (f >= 0) break;
  }
  ASSERT_GE(f, 0);
  ASSERT_GE(o, 0);

  auto run = [&](bool fail_f) {
    // Lambda bodies are separate functions to the analysis; re-assert.
    common::SequentialPhaseScope seq;
    net::NetworkOptions opts;
    opts.loss_prob = 0.5;
    opts.max_retries = 0;
    opts.seed = 1234;
    net::Network net(&topo, opts);
    if (fail_f) net.FailNode(f);
    std::vector<std::pair<int, NodeId>> deliveries;  // (round, at)
    int round = 0;
    net.set_delivery_handler([&](const net::Message&, NodeId at) {
      deliveries.push_back({round, at});
    });
    for (round = 0; round < 40; ++round) {
      net::Message m;
      m.kind = net::MessageKind::kData;
      m.mode = net::RoutingMode::kSourcePath;
      m.origin = 0;
      m.dest = 9;
      m.route = net.routes().InternPath(path);
      m.size_bytes = 8;
      EXPECT_TRUE(net.Submit(std::move(m)).ok());
      net::Message to_f;
      to_f.kind = net::MessageKind::kData;
      to_f.mode = net::RoutingMode::kLocalHop;
      to_f.origin = o;
      to_f.dest = f;
      to_f.route = net.routes().InternPath({o, f});
      to_f.size_bytes = 8;
      EXPECT_TRUE(net.Submit(std::move(to_f)).ok());
      net.StepUntilQuiet(100);
    }
    // Keep only the path traffic: deliveries at F differ by construction.
    std::vector<std::pair<int, NodeId>> on_path;
    for (const auto& d : deliveries) {
      if (d.second == 9) on_path.push_back(d);
    }
    uint64_t path_bytes = 0;
    for (NodeId u : path) path_bytes += net.stats().node(u).bytes_sent;
    return std::make_pair(on_path, path_bytes);
  };

  auto baseline = run(/*fail_f=*/false);
  auto failed = run(/*fail_f=*/true);
  EXPECT_FALSE(baseline.first.empty());
  EXPECT_EQ(baseline.first, failed.first);
  EXPECT_EQ(baseline.second, failed.second);
}

}  // namespace
}  // namespace aspen
