#include <set>

#include <gtest/gtest.h>

#include "net/topology.h"
#include "routing/content_address.h"

namespace aspen {
namespace routing {
namespace {

class GeoHashTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    auto topo = net::Topology::Random(100, 7.0, GetParam());
    ASSERT_TRUE(topo.ok());
    topo_ = std::make_unique<net::Topology>(std::move(*topo));
    geo_ = std::make_unique<GeoHash>(topo_.get(), /*salt=*/GetParam());
  }
  std::unique_ptr<net::Topology> topo_;
  std::unique_ptr<GeoHash> geo_;
};

TEST_P(GeoHashTest, PointsLandInsideBoundingBox) {
  double min_x = 1e300, max_x = -1e300, min_y = 1e300, max_y = -1e300;
  for (int i = 0; i < topo_->num_nodes(); ++i) {
    const auto& p = topo_->position(i);
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  for (int32_t key = 0; key < 200; ++key) {
    net::Point pt = geo_->PointForKey(key);
    EXPECT_GE(pt.x, min_x);
    EXPECT_LE(pt.x, max_x);
    EXPECT_GE(pt.y, min_y);
    EXPECT_LE(pt.y, max_y);
  }
}

TEST_P(GeoHashTest, NodeForKeyIsDeterministicNearestNode) {
  for (int32_t key = 0; key < 50; ++key) {
    net::NodeId a = geo_->NodeForKey(key);
    EXPECT_EQ(a, geo_->NodeForKey(key));
    EXPECT_EQ(a, topo_->NearestNode(geo_->PointForKey(key)));
  }
}

TEST_P(GeoHashTest, KeysSpreadAcrossNodes) {
  std::set<net::NodeId> homes;
  for (int32_t key = 0; key < 300; ++key) homes.insert(geo_->NodeForKey(key));
  // Hashing 300 keys over 100 nodes should hit a sizable fraction.
  EXPECT_GT(homes.size(), 40u);
}

TEST_P(GeoHashTest, GreedyPathReachesEveryDestination) {
  for (net::NodeId from : {0, 13, 57}) {
    for (net::NodeId to : {0, 8, 42, 99}) {
      auto path = geo_->GreedyPath(from, to);
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.front(), from);
      EXPECT_EQ(path.back(), to) << "stuck from " << from << " to " << to;
      for (size_t i = 0; i + 1 < path.size(); ++i) {
        EXPECT_TRUE(topo_->AreNeighbors(path[i], path[i + 1]));
      }
      // Greedy is never shorter than BFS.
      EXPECT_GE(path.size(), topo_->ShortestPath(from, to).size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeoHashTest, ::testing::Values(3, 7, 19));

TEST(DhtRingTest, DeterministicOwnership) {
  auto topo = net::Topology::Random(60, 7.0, 5);
  ASSERT_TRUE(topo.ok());
  DhtRing ring(&*topo, 1);
  for (int32_t key = 0; key < 100; ++key) {
    net::NodeId owner = ring.NodeForKey(key);
    EXPECT_EQ(owner, ring.NodeForKey(key));
    EXPECT_GE(owner, 0);
    EXPECT_LT(owner, 60);
  }
}

TEST(DhtRingTest, DifferentSaltsRemapKeys) {
  auto topo = net::Topology::Random(60, 7.0, 5);
  ASSERT_TRUE(topo.ok());
  DhtRing a(&*topo, 1), b(&*topo, 2);
  int moved = 0;
  for (int32_t key = 0; key < 100; ++key) {
    if (a.NodeForKey(key) != b.NodeForKey(key)) ++moved;
  }
  EXPECT_GT(moved, 50);
}

TEST(DhtRingTest, LoadRoughlyBalanced) {
  auto topo = net::Topology::Random(50, 7.0, 9);
  ASSERT_TRUE(topo.ok());
  DhtRing ring(&*topo, 3);
  std::map<net::NodeId, int> load;
  const int keys = 5000;
  for (int32_t key = 0; key < keys; ++key) ++load[ring.NodeForKey(key)];
  int max_load = 0;
  for (const auto& [node, l] : load) max_load = std::max(max_load, l);
  // Consistent hashing without virtual nodes is skewed but bounded.
  EXPECT_LT(max_load, keys / 2);
}

TEST(HashKeyTest, SaltChangesHash) {
  EXPECT_NE(HashKey(42, 1), HashKey(42, 2));
  EXPECT_EQ(HashKey(42, 1), HashKey(42, 1));
}

}  // namespace
}  // namespace routing
}  // namespace aspen
