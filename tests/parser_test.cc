#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/engine.h"
#include "net/topology.h"
#include "query/parser.h"
#include "workload/workload.h"

namespace aspen {
namespace query {
namespace {

TEST(ParserTest, ParsesAppendixBQueryOne) {
  auto q = ParseQuery(
      "SELECT S.id, T.id, S.time "
      "FROM S, T [windowsize=3 sampleinterval=100] "
      "WHERE S.id < 25 AND hash(S.u) % 2 = 0 "
      "AND T.id > 50 AND hash(T.u) % 2 = 0 "
      "AND S.x = T.y + 5 AND S.u = T.u");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->window.size, 3);
  EXPECT_EQ(q->window.sample_interval, 100);
  EXPECT_FALSE(q->window.time_based);
  EXPECT_EQ(q->projected_attrs, 3);
  auto analysis = Analyze(*q);
  ASSERT_TRUE(analysis.ok());
  EXPECT_EQ(analysis->s_static_selection.size(), 1u);
  EXPECT_EQ(analysis->t_static_selection.size(), 1u);
  EXPECT_EQ(analysis->s_dynamic_selection.size(), 1u);
  EXPECT_EQ(analysis->t_dynamic_selection.size(), 1u);
  ASSERT_TRUE(analysis->primary.has_value());
}

TEST(ParserTest, ParsesRegionQuery) {
  auto q = ParseQuery(
      "SELECT S.id, T.id FROM S, T [windowsize=1] "
      "WHERE dst() < 50 AND S.id < T.id AND abs(S.v - T.v) > 1000");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto analysis = Analyze(*q);
  ASSERT_TRUE(analysis.ok());
  ASSERT_TRUE(analysis->primary.has_value());
  ASSERT_TRUE(analysis->primary->region_radius_dm.has_value());
  EXPECT_EQ(*analysis->primary->region_radius_dm, 50);
}

TEST(ParserTest, TimeWindowOption) {
  auto q = ParseQuery(
      "SELECT S.id FROM S, T [timewindow=5] WHERE S.u = T.u");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->window.time_based);
  EXPECT_EQ(q->window.size, 5);
}

TEST(ParserTest, PredicateEquivalence) {
  // Parsed predicates evaluate identically to hand-built ones.
  auto parsed = ParsePredicate("S.x = T.y + 5 AND NOT (S.u <> T.u)");
  ASSERT_TRUE(parsed.ok());
  auto built = Expr::And(
      Expr::Eq(Expr::Attr(Side::kS, kAttrX),
               Expr::Add(Expr::Attr(Side::kT, kAttrY), Expr::Const(5))),
      Expr::Not(Expr::Ne(Expr::Attr(Side::kS, kAttrU),
                         Expr::Attr(Side::kT, kAttrU))));
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    Tuple s = Schema::Sensor().MakeTuple();
    Tuple t = Schema::Sensor().MakeTuple();
    s[kAttrX] = static_cast<int32_t>(rng.UniformRange(0, 15));
    t[kAttrY] = static_cast<int32_t>(rng.UniformRange(0, 10));
    s[kAttrU] = static_cast<int32_t>(rng.UniformRange(0, 3));
    t[kAttrU] = static_cast<int32_t>(rng.UniformRange(0, 3));
    EXPECT_EQ((*parsed)->EvalBool(&s, &t), built->EvalBool(&s, &t));
  }
}

TEST(ParserTest, OperatorPrecedence) {
  auto e = ParsePredicate("2 + 3 * 4 = 14");
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE((*e)->EvalBool(nullptr, nullptr));
  auto f = ParsePredicate("(2 + 3) * 4 = 20");
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE((*f)->EvalBool(nullptr, nullptr));
  auto g = ParsePredicate("10 - 4 - 3 = 3");  // left associative
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE((*g)->EvalBool(nullptr, nullptr));
  auto h = ParsePredicate("1 = 1 OR 1 = 2 AND 1 = 3");  // AND binds tighter
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE((*h)->EvalBool(nullptr, nullptr));
}

TEST(ParserTest, UnaryMinus) {
  auto e = ParsePredicate("abs(-5) = 5");
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE((*e)->EvalBool(nullptr, nullptr));
}

TEST(ParserTest, NotEqualSpellings) {
  for (const char* text : {"1 <> 2", "1 != 2"}) {
    auto e = ParsePredicate(text);
    ASSERT_TRUE(e.ok()) << text;
    EXPECT_TRUE((*e)->EvalBool(nullptr, nullptr));
  }
}

TEST(ParserTest, CaseInsensitiveKeywords) {
  auto q = ParseQuery(
      "select S.id from s, t [WINDOWSIZE=2] where s.u = t.u and not s.id > 9");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->window.size, 2);
}

TEST(ParserTest, StarProjection) {
  auto q = ParseQuery("SELECT * FROM S, T WHERE S.u = T.u");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->projected_attrs, kNumAttrs);
}

TEST(ParserTest, ErrorsCarryPosition) {
  struct Case {
    const char* sql;
    const char* what;
  };
  const Case cases[] = {
      {"SELECT FROM S, T WHERE 1 = 1", "projection"},
      {"SELECT S.id FROM S WHERE 1 = 1", ","},
      {"SELECT S.id FROM S, T WHERE S.bogus = 1", "attribute"},
      {"SELECT S.id FROM S, T [weird=3] WHERE 1 = 1", "window option"},
      {"SELECT S.id FROM S, T WHERE (1 = 1", ")"},
      {"SELECT S.id FROM S, T WHERE 1 = 1 extra", "trailing"},
      {"SELECT S.id FROM S, T WHERE 1 $ 1", "character"},
  };
  for (const auto& c : cases) {
    auto q = ParseQuery(c.sql);
    EXPECT_FALSE(q.ok()) << c.sql;
    EXPECT_NE(q.status().message().find(c.what), std::string::npos)
        << c.sql << " -> " << q.status().ToString();
  }
}

TEST(ParserTest, ParsedQueryRunsEndToEnd) {
  // Parse the paper's Query 1 and execute it: same pair structure as the
  // built-in factory (the hash gates differ, so only static structure is
  // compared).
  auto topo = net::Topology::Random(60, 7.0, 5);
  ASSERT_TRUE(topo.ok());
  auto q = ParseQuery(
      "SELECT S.id, T.id, S.time FROM S, T [windowsize=3] "
      "WHERE S.id < 25 AND T.id > 50 AND S.x = T.y + 5 AND S.u = T.u");
  ASSERT_TRUE(q.ok());
  auto wl = workload::Workload::FromQuery(&*topo, *q, {1.0, 1.0, 0.2}, 7);
  ASSERT_TRUE(wl.ok()) << wl.status().ToString();
  auto builtin = workload::Workload::MakeQuery1(&*topo, {1.0, 1.0, 0.2}, 3, 7);
  ASSERT_TRUE(builtin.ok());
  EXPECT_EQ(wl->AllJoinPairs(), builtin->AllJoinPairs());
  join::ExecutorOptions opts;
  opts.algorithm = join::Algorithm::kInnet;
  opts.assumed = {1.0, 1.0, 0.2};
  auto stats = core::RunExperiment(*wl, opts, 20);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->results, 0u);
}

}  // namespace
}  // namespace query
}  // namespace aspen
