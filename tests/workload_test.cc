#include <map>
#include <set>

#include <gtest/gtest.h>

#include "net/topology.h"
#include "query/window.h"
#include "workload/workload.h"

namespace aspen {
namespace workload {
namespace {

using net::NodeId;
using query::AttrId;

net::Topology Topo() { return *net::Topology::Random(100, 7.0, 42); }

// ---- selectivity design ------------------------------------------------------

TEST(SelectivityTest, CeilInverse) {
  EXPECT_EQ(CeilInverse(1.0), 1);
  EXPECT_EQ(CeilInverse(0.5), 2);
  EXPECT_EQ(CeilInverse(0.2), 5);
  EXPECT_EQ(CeilInverse(0.1), 10);
  EXPECT_EQ(CeilInverse(1.0 / 6), 6);
  EXPECT_EQ(CeilInverse(0.05), 20);
}

class FilterDesignTest
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(FilterDesignTest, RealizedRatesNearTargets) {
  auto [ss, st, sst] = GetParam();
  SelectivityParams p{ss, st, sst};
  FilterDesign d = DesignFilters(p);
  EXPECT_EQ(d.domain, CeilInverse(sst));
  // Realized producer rates within a domain quantum of the target.
  double quantum = 1.0 / d.domain;
  EXPECT_NEAR(d.realized_s, ss, quantum + 1e-9);
  EXPECT_NEAR(d.realized_t, st, quantum + 1e-9);
  EXPECT_GT(d.realized_s, 0.0);
  EXPECT_GT(d.realized_t, 0.0);
  // Conditional join probability close to sigma_st.
  EXPECT_NEAR(d.realized_st, sst, sst * 1.2 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, FilterDesignTest,
    ::testing::Values(
        // The five sigma_s:sigma_t ratios of Figures 2-4, x sigma_st 20%.
        std::make_tuple(0.1, 1.0, 0.2), std::make_tuple(1.0 / 6, 0.5, 0.2),
        std::make_tuple(0.5, 0.5, 0.2), std::make_tuple(0.5, 1.0 / 6, 0.2),
        std::make_tuple(1.0, 0.1, 0.2),
        // sigma_st 10% and 5% spot checks.
        std::make_tuple(0.5, 0.5, 0.1), std::make_tuple(0.1, 1.0, 0.05),
        std::make_tuple(1.0, 1.0, 0.05)));

TEST(FilterDesignTest, FullRateNeedsNoFilter) {
  FilterDesign d = DesignFilters({1.0, 1.0, 0.2});
  EXPECT_EQ(d.mod_s, 1);
  EXPECT_EQ(d.mod_t, 1);
  for (int u = 0; u < d.domain; ++u) {
    EXPECT_TRUE(d.PassS(u));
    EXPECT_TRUE(d.PassT(u));
  }
}

// ---- static config -------------------------------------------------------------

TEST(StaticConfigTest, Table1Ranges) {
  auto topo = Topo();
  StaticConfig cfg(topo, 99);
  for (NodeId i = 0; i < topo.num_nodes(); ++i) {
    const auto& t = cfg.tuple(i);
    EXPECT_EQ(t[AttrId::kAttrId], i);
    EXPECT_GE(t[AttrId::kAttrX], 7);
    EXPECT_LE(t[AttrId::kAttrX], 60);
    EXPECT_GE(t[AttrId::kAttrY], 0);
    EXPECT_LT(t[AttrId::kAttrY], 10);
    EXPECT_GE(t[AttrId::kAttrCid], 0);
    EXPECT_LE(t[AttrId::kAttrCid], 3);
    EXPECT_GE(t[AttrId::kAttrRid], 0);
    EXPECT_LE(t[AttrId::kAttrRid], 3);
    // pos in decimeters of the true position.
    EXPECT_NEAR(t[AttrId::kAttrPosX], topo.position(i).x * 10.0, 0.51);
    EXPECT_NEAR(t[AttrId::kAttrPosY], topo.position(i).y * 10.0, 0.51);
  }
}

TEST(StaticConfigTest, XIsHigherAtCenter) {
  auto topo = Topo();
  StaticConfig cfg(topo, 99);
  // Node 0 is at the field center: its x should be near the top of range.
  EXPECT_GE(cfg.tuple(0)[AttrId::kAttrX], 45);
  // Average x of far-from-center nodes is lower than of near-center nodes.
  double near = 0, far = 0;
  int n_near = 0, n_far = 0;
  net::Point center{128, 128};
  for (NodeId i = 0; i < topo.num_nodes(); ++i) {
    double d = net::Distance(topo.position(i), center);
    if (d < 60) {
      near += cfg.tuple(i)[AttrId::kAttrX];
      ++n_near;
    } else if (d > 110) {
      far += cfg.tuple(i)[AttrId::kAttrX];
      ++n_far;
    }
  }
  ASSERT_GT(n_near, 0);
  ASSERT_GT(n_far, 0);
  EXPECT_GT(near / n_near, far / n_far + 5.0);
}

TEST(StaticConfigTest, SetOverridesStaticOnly) {
  auto topo = Topo();
  StaticConfig cfg(topo, 99);
  cfg.Set(5, AttrId::kAttrRole, 3);
  EXPECT_EQ(cfg.tuple(5)[AttrId::kAttrRole], 3);
}

// ---- Intel trace -----------------------------------------------------------------

TEST(IntelTraceTest, HumidityInRangeAndDeterministic) {
  auto topo = net::Topology::IntelLab();
  IntelTrace trace(topo, 7);
  for (NodeId n : {0, 10, 53}) {
    for (int c : {0, 100, 500}) {
      int32_t v = trace.Humidity(n, c);
      EXPECT_GE(v, 0);
      EXPECT_LE(v, 65535);
      EXPECT_EQ(v, trace.Humidity(n, c));
    }
  }
}

TEST(IntelTraceTest, ClosePairsExceedThresholdNearTwentyPercent) {
  auto topo = net::Topology::IntelLab();
  IntelTrace trace(topo, 7);
  // Average the exceed probability over all <5m pairs.
  double sum = 0;
  int pairs = 0;
  for (NodeId a = 0; a < topo.num_nodes(); ++a) {
    for (NodeId b = a + 1; b < topo.num_nodes(); ++b) {
      if (topo.DistanceBetween(a, b) < 5.0) {
        sum += trace.DiffExceedProb(a, b, 1000, 400);
        ++pairs;
      }
    }
  }
  ASSERT_GT(pairs, 10);
  double mean = sum / pairs;
  EXPECT_GT(mean, 0.10);
  EXPECT_LT(mean, 0.35);
}

TEST(IntelTraceTest, TemporallyCorrelated) {
  auto topo = net::Topology::IntelLab();
  IntelTrace trace(topo, 7);
  // Successive samples differ far less than the full dynamic range.
  double step_sum = 0;
  for (int c = 0; c < 200; ++c) {
    step_sum += std::abs(trace.Humidity(5, c + 1) - trace.Humidity(5, c));
  }
  EXPECT_LT(step_sum / 200, 2500);
}

// ---- window ----------------------------------------------------------------------

TEST(JoinWindowTest, TupleModeEvictsOldest) {
  query::JoinWindow w(2);
  auto mk = [](int32_t id) {
    query::Tuple t = query::Schema::Sensor().MakeTuple();
    t[AttrId::kAttrId] = id;
    return t;
  };
  w.Push(mk(1), 0);
  w.Push(mk(2), 1);
  w.Push(mk(3), 2);
  ASSERT_EQ(w.size(), 2);
  EXPECT_EQ(w.entry(0).tuple[AttrId::kAttrId], 2);
  EXPECT_EQ(w.entry(1).tuple[AttrId::kAttrId], 3);
  EXPECT_GT(w.StorageBytes(), 0);
  w.Clear();
  EXPECT_TRUE(w.empty());
}

TEST(JoinWindowTest, TimeModeKeepsAllRecentAndEvictsByCycle) {
  query::JoinWindow w(3, /*time_based=*/true);
  auto mk = [](int32_t id) {
    query::Tuple t = query::Schema::Sensor().MakeTuple();
    t[AttrId::kAttrId] = id;
    return t;
  };
  // Two tuples in one cycle: both retained (no count cap in time mode).
  w.Push(mk(1), 0);
  w.Push(mk(2), 0);
  w.Push(mk(3), 1);
  w.Push(mk(4), 2);
  EXPECT_EQ(w.size(), 4);
  // At cycle 3, cycle 0 entries expire (window covers cycles 1..3).
  w.EvictExpired(3);
  ASSERT_EQ(w.size(), 2);
  EXPECT_EQ(w.entry(0).cycle, 1);
  // At cycle 10 everything is gone.
  w.EvictExpired(10);
  EXPECT_TRUE(w.empty());
}

TEST(JoinWindowTest, TupleModeIgnoresEvictExpired) {
  query::JoinWindow w(2);
  w.Push(query::Schema::Sensor().MakeTuple(), 0);
  w.EvictExpired(100);
  EXPECT_EQ(w.size(), 1);
}

// ---- workloads --------------------------------------------------------------------

TEST(WorkloadTest, Query0PairsAreOneToOne) {
  auto topo = Topo();
  auto wl = Workload::MakeQuery0(&topo, {0.5, 0.5, 0.2}, 10, 3, 7);
  ASSERT_TRUE(wl.ok());
  auto pairs = wl->AllJoinPairs();
  EXPECT_EQ(pairs.size(), 10u);
  std::set<NodeId> ss, ts;
  for (const auto& [s, t] : pairs) {
    EXPECT_TRUE(ss.insert(s).second) << "s reused";
    EXPECT_TRUE(ts.insert(t).second) << "t reused";
    EXPECT_NE(s, 0);
    EXPECT_NE(t, 0);
  }
}

TEST(WorkloadTest, Query0RejectsTooManyPairs) {
  auto topo = Topo();
  EXPECT_FALSE(Workload::MakeQuery0(&topo, {0.5, 0.5, 0.2}, 60, 3, 7).ok());
  EXPECT_FALSE(Workload::MakeQuery0(&topo, {0.5, 0.5, 0.2}, 0, 3, 7).ok());
}

TEST(WorkloadTest, Query1PairsMatchBruteForcePredicate) {
  auto topo = Topo();
  auto wl = Workload::MakeQuery1(&topo, {0.5, 0.5, 0.2}, 3, 7);
  ASSERT_TRUE(wl.ok());
  std::set<std::pair<NodeId, NodeId>> expected;
  for (NodeId s = 0; s < topo.num_nodes(); ++s) {
    for (NodeId t = 0; t < topo.num_nodes(); ++t) {
      if (s == t) continue;
      const auto& st = wl->statics().tuple(s);
      const auto& tt = wl->statics().tuple(t);
      if (st[AttrId::kAttrId] < 25 && tt[AttrId::kAttrId] > 50 &&
          st[AttrId::kAttrX] == tt[AttrId::kAttrY] + 5) {
        expected.insert({s, t});
      }
    }
  }
  auto pairs = wl->AllJoinPairs();
  std::set<std::pair<NodeId, NodeId>> actual(pairs.begin(), pairs.end());
  EXPECT_EQ(actual, expected);
  EXPECT_FALSE(expected.empty());
}

TEST(WorkloadTest, Query2PerimeterStructure) {
  auto topo = Topo();
  auto wl = Workload::MakeQuery2(&topo, {0.5, 0.5, 0.1}, 1, 7);
  ASSERT_TRUE(wl.ok());
  auto pairs = wl->AllJoinPairs();
  ASSERT_FALSE(pairs.empty());
  for (const auto& [s, t] : pairs) {
    const auto& st = wl->statics().tuple(s);
    const auto& tt = wl->statics().tuple(t);
    EXPECT_EQ(st[AttrId::kAttrRid], 0);
    EXPECT_EQ(tt[AttrId::kAttrRid], 3);
    EXPECT_EQ(st[AttrId::kAttrCid], tt[AttrId::kAttrCid]);
    EXPECT_EQ(st[AttrId::kAttrId] % 4, tt[AttrId::kAttrId] % 4);
  }
}

TEST(WorkloadTest, Query3RegionPairs) {
  auto topo = net::Topology::IntelLab();
  auto wl = Workload::MakeQuery3(&topo, 1, 7);
  ASSERT_TRUE(wl.ok());
  auto pairs = wl->AllJoinPairs();
  ASSERT_FALSE(pairs.empty());
  for (const auto& [s, t] : pairs) {
    EXPECT_LT(s, t);  // s.id < t.id
    const auto& st = wl->statics().tuple(s);
    const auto& tt = wl->statics().tuple(t);
    double dx = st[AttrId::kAttrPosX] - tt[AttrId::kAttrPosX];
    double dy = st[AttrId::kAttrPosY] - tt[AttrId::kAttrPosY];
    EXPECT_LT(dx * dx + dy * dy, 50.0 * 50.0);
  }
}

TEST(WorkloadTest, JoinKeysConsistentWithPairing) {
  auto topo = Topo();
  auto wl = Workload::MakeQuery1(&topo, {0.5, 0.5, 0.2}, 3, 7);
  ASSERT_TRUE(wl.ok());
  for (const auto& [s, t] : wl->AllJoinPairs()) {
    auto ks = wl->SJoinKey(s);
    auto kt = wl->TJoinKey(t);
    ASSERT_TRUE(ks.has_value());
    ASSERT_TRUE(kt.has_value());
    EXPECT_EQ(*ks, *kt);
  }
}

TEST(WorkloadTest, SampleIsPureFunction) {
  auto topo = Topo();
  auto wl = Workload::MakeQuery1(&topo, {0.5, 0.5, 0.2}, 3, 7);
  ASSERT_TRUE(wl.ok());
  for (NodeId n : {3, 42}) {
    for (int c : {0, 5, 99}) {
      EXPECT_EQ(wl->Sample(n, c), wl->Sample(n, c));
    }
  }
  // u stays inside the domain dictated by sigma_st.
  for (int c = 0; c < 200; ++c) {
    int32_t u = wl->Sample(3, c)[AttrId::kAttrU];
    EXPECT_GE(u, 0);
    EXPECT_LT(u, 5);
  }
}

TEST(WorkloadTest, FilterRealizesConfiguredRate) {
  auto topo = Topo();
  auto wl = Workload::MakeQuery1(&topo, {0.5, 1.0, 0.2}, 3, 7);
  ASSERT_TRUE(wl.ok());
  int s_pass = 0, t_pass = 0;
  const int cycles = 2000;
  for (int c = 0; c < cycles; ++c) {
    auto tup = wl->Sample(10, c);
    s_pass += wl->PassSFilter(10, tup, c);
    t_pass += wl->PassTFilter(10, tup, c);
  }
  EXPECT_NEAR(static_cast<double>(s_pass) / cycles, 0.5, 0.25);
  EXPECT_EQ(t_pass, cycles);  // sigma_t = 1
}

TEST(WorkloadTest, PerNodeOverrideChangesRate) {
  auto topo = Topo();
  auto wl = Workload::MakeQuery1(&topo, {1.0, 1.0, 0.2}, 3, 7);
  ASSERT_TRUE(wl.ok());
  wl->SetNodeParams(10, {0.1, 1.0, 0.05});
  int pass = 0;
  const int cycles = 3000;
  for (int c = 0; c < cycles; ++c) {
    auto tup = wl->Sample(10, c);
    pass += wl->PassSFilter(10, tup, c);
    // Domain switched to ceil(1/0.05) = 20.
    EXPECT_LT(tup[AttrId::kAttrU], 20);
  }
  EXPECT_NEAR(static_cast<double>(pass) / cycles, 0.1, 0.07);
  // Other nodes unaffected.
  auto tup = wl->Sample(11, 0);
  EXPECT_LT(tup[AttrId::kAttrU], 5);
}

TEST(WorkloadTest, GlobalSwitchChangesParamsMidRun) {
  auto topo = Topo();
  auto wl = Workload::MakeQuery1(&topo, {1.0, 1.0, 0.2}, 3, 7);
  ASSERT_TRUE(wl.ok());
  wl->SetGlobalSwitch(100, {1.0, 1.0, 0.05});
  EXPECT_EQ(wl->ParamsAt(5, 99).sigma_st, 0.2);
  EXPECT_EQ(wl->ParamsAt(5, 100).sigma_st, 0.05);
  EXPECT_LT(wl->Sample(5, 99)[AttrId::kAttrU], 5);
  EXPECT_LT(wl->Sample(5, 150)[AttrId::kAttrU], 20);
}

// The batched kernel must reproduce the scalar path bit for bit — same
// tuples, same filter verdicts — across every parameter regime it
// special-cases: uniform defaults, live per-node overrides (the slow path),
// and the post-switch uniform epoch (the fast path again, overrides dead).
TEST(WorkloadTest, BatchSampleAndFiltersMatchScalarBitForBit) {
  auto topo = Topo();
  auto wl = Workload::MakeQuery0(&topo, {0.5, 0.8, 0.2}, /*num_pairs=*/30,
                                 /*window=*/3, /*seed=*/7);
  ASSERT_TRUE(wl.ok());
  const int n = topo.num_nodes();
  std::vector<NodeId> ids(n);
  for (NodeId i = 0; i < n; ++i) ids[i] = i;

  // Cycle 0..39: overrides on nodes 3 and 17 force the per-node fallback.
  // Cycle 40+: the global switch retires the overrides, so the batch takes
  // the hoisted uniform fast path again under the new design.
  wl->SetNodeParams(3, {0.1, 1.0, 0.05});
  wl->SetNodeParams(17, {1.0, 0.3, 0.1});
  wl->SetGlobalSwitch(40, {1.0, 1.0, 0.05});
  wl->WarmFilterCache();

  std::vector<query::Tuple> batch(n);
  const int words = (n + 63) / 64;
  std::vector<uint64_t> s_bits(words), t_bits(words);
  for (int cycle : {0, 1, 17, 39, 40, 41, 100}) {
    wl->SampleBatchInto(ids.data(), n, cycle, batch.data());
    wl->PassFilters(ids.data(), n, cycle, s_bits.data(), t_bits.data());
    for (int i = 0; i < n; ++i) {
      const query::Tuple scalar = wl->Sample(ids[i], cycle);
      ASSERT_EQ(batch[i], scalar) << "cycle " << cycle << " node " << ids[i];
      const bool s = (s_bits[i >> 6] >> (i & 63)) & 1;
      const bool t = (t_bits[i >> 6] >> (i & 63)) & 1;
      ASSERT_EQ(s, wl->PassSFilter(ids[i], scalar, cycle))
          << "cycle " << cycle << " node " << ids[i];
      ASSERT_EQ(t, wl->PassTFilter(ids[i], scalar, cycle))
          << "cycle " << cycle << " node " << ids[i];
    }
  }
}

TEST(WorkloadTest, TuplesJoinChecksAllJoinClauses) {
  auto topo = Topo();
  auto wl = Workload::MakeQuery1(&topo, {1.0, 1.0, 0.2}, 3, 7);
  ASSERT_TRUE(wl.ok());
  auto pairs = wl->AllJoinPairs();
  ASSERT_FALSE(pairs.empty());
  auto [s, t] = pairs.front();
  auto stup = wl->Sample(s, 0);
  auto ttup = wl->Sample(t, 0);
  bool expect = stup[AttrId::kAttrU] == ttup[AttrId::kAttrU];
  EXPECT_EQ(wl->TuplesJoin(stup, ttup), expect);
  // Pair that does not statically join never joins.
  query::Tuple bad = ttup;
  bad[AttrId::kAttrY] = (stup[AttrId::kAttrX] - 5 + 1) % 10;
  EXPECT_FALSE(wl->TuplesJoin(stup, bad));
}

TEST(WorkloadTest, WireSizes) {
  auto topo = Topo();
  auto wl = Workload::MakeQuery1(&topo, {1.0, 1.0, 0.2}, 3, 7);
  ASSERT_TRUE(wl.ok());
  EXPECT_EQ(wl->DataBytes(), query::Schema::WireBytes(1));
  EXPECT_EQ(wl->ResultBytes(), query::Schema::WireBytes(3));
}

}  // namespace
}  // namespace workload
}  // namespace aspen
