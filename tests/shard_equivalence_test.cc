// Shard-equivalence property: a run's observable outcome — every per-node
// traffic counter, the per-kind and per-query breakdowns, results, delays,
// migrations and failovers — is byte-identical for every shard count. The
// shard count only decides which thread executes which node range; the
// exchange phases merge all cross-shard interactions in canonical content
// order (net/network.h, sim/sharded_scheduler.h).
//
// The property is exercised across topologies, algorithms, lossy radios and
// scripted dynamics (churn, kills, loss drift), i.e. including the paths
// where frames retransmit, drop mid-flight, fail over and replay windows.

#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "join/executor.h"
#include "net/topology.h"
#include "scenario/dynamics.h"
#include "workload/workload.h"

namespace aspen {
namespace {

using workload::SelectivityParams;
using workload::Workload;

/// Every observable quantity of a finished run.
struct RunDigest {
  std::vector<net::NodeTraffic> per_node;
  std::vector<uint64_t> by_kind_bytes;
  std::vector<uint64_t> by_kind_messages;
  uint64_t query_bytes = 0;
  uint64_t query_messages = 0;
  uint64_t results = 0;
  double avg_delay = 0;
  double max_delay = 0;
  uint64_t migrations = 0;
  uint64_t failovers = 0;
};

RunDigest DigestOf(const join::JoinExecutor& exec) {
  RunDigest d;
  const net::TrafficStats& s = exec.network().stats();
  for (net::NodeId id = 0; id < s.num_nodes(); ++id) {
    d.per_node.push_back(s.node(id));
  }
  for (int k = 0; k < static_cast<int>(net::MessageKind::kNumKinds); ++k) {
    d.by_kind_bytes.push_back(s.BytesByKind(static_cast<net::MessageKind>(k)));
    d.by_kind_messages.push_back(
        s.MessagesByKind(static_cast<net::MessageKind>(k)));
  }
  d.query_bytes = s.QueryBytesSent(exec.query_id());
  d.query_messages = s.QueryMessagesSent(exec.query_id());
  join::RunStats rs = exec.Stats();
  d.results = rs.results;
  d.avg_delay = rs.avg_result_delay_cycles;
  d.max_delay = rs.max_result_delay_cycles;
  d.migrations = rs.migrations;
  d.failovers = rs.failovers;
  return d;
}

void ExpectIdentical(const RunDigest& a, const RunDigest& b, int shards) {
  ASSERT_EQ(a.per_node.size(), b.per_node.size());
  for (size_t i = 0; i < a.per_node.size(); ++i) {
    EXPECT_EQ(a.per_node[i].bytes_sent, b.per_node[i].bytes_sent)
        << "node " << i << " shards=" << shards;
    EXPECT_EQ(a.per_node[i].bytes_received, b.per_node[i].bytes_received)
        << "node " << i << " shards=" << shards;
    EXPECT_EQ(a.per_node[i].messages_sent, b.per_node[i].messages_sent)
        << "node " << i << " shards=" << shards;
    EXPECT_EQ(a.per_node[i].messages_received, b.per_node[i].messages_received)
        << "node " << i << " shards=" << shards;
  }
  EXPECT_EQ(a.by_kind_bytes, b.by_kind_bytes) << "shards=" << shards;
  EXPECT_EQ(a.by_kind_messages, b.by_kind_messages) << "shards=" << shards;
  EXPECT_EQ(a.query_bytes, b.query_bytes) << "shards=" << shards;
  EXPECT_EQ(a.query_messages, b.query_messages) << "shards=" << shards;
  EXPECT_EQ(a.results, b.results) << "shards=" << shards;
  EXPECT_EQ(a.avg_delay, b.avg_delay) << "shards=" << shards;
  EXPECT_EQ(a.max_delay, b.max_delay) << "shards=" << shards;
  EXPECT_EQ(a.migrations, b.migrations) << "shards=" << shards;
  EXPECT_EQ(a.failovers, b.failovers) << "shards=" << shards;
}

struct Scenario {
  join::ExecutorOptions opts;
  const scenario::DynamicsSchedule* dynamics = nullptr;
  int cycles = 30;
};

RunDigest RunAtShards(const Workload& wl, const Scenario& sc, int shards) {
  join::ExecutorOptions opts = sc.opts;
  opts.knobs.shards = shards;
  join::JoinExecutor exec(&wl, opts);
  EXPECT_TRUE(exec.Initiate().ok());
  std::unique_ptr<scenario::ScenarioDriver> driver;
  if (sc.dynamics != nullptr) {
    driver = std::make_unique<scenario::ScenarioDriver>(&exec.network(),
                                                        sc.dynamics);
    exec.scheduler()->AttachFront(driver.get());
  }
  EXPECT_TRUE(exec.RunCycles(sc.cycles).ok());
  return DigestOf(exec);
}

void CheckShardInvariance(const Workload& wl, const Scenario& sc) {
  RunDigest base = RunAtShards(wl, sc, 1);
  for (int shards : {2, 3, 8}) {
    RunDigest d = RunAtShards(wl, sc, shards);
    ExpectIdentical(base, d, shards);
  }
}

TEST(ShardEquivalenceTest, InnetMeshLossless) {
  auto topo = *net::Topology::Grid(10, 12, 300.0);
  SelectivityParams sel{0.5, 0.5, 0.2};
  auto wl = *Workload::MakeQuery0(&topo, sel, /*num_pairs=*/30, /*window=*/3,
                                  /*seed=*/7);
  Scenario sc;
  sc.opts.algorithm = join::Algorithm::kInnet;
  sc.opts.features = join::InnetFeatures::Cm();
  sc.opts.assumed = sel;
  sc.opts.mesh_mode = true;
  CheckShardInvariance(wl, sc);
}

TEST(ShardEquivalenceTest, InnetLossyRadio) {
  // Retransmissions draw from per-sender streams; a lossy radio is where a
  // shard-dependent draw order would show immediately.
  auto topo = *net::Topology::Random(90, 7.0, 42);
  SelectivityParams sel{0.5, 0.5, 0.2};
  auto wl = *Workload::MakeQuery1(&topo, sel, /*window=*/3, /*seed=*/7);
  Scenario sc;
  sc.opts.algorithm = join::Algorithm::kInnet;
  sc.opts.features = join::InnetFeatures::Cmg();
  sc.opts.assumed = sel;
  sc.opts.loss_prob = 0.05;
  sc.opts.seed = 3;
  CheckShardInvariance(wl, sc);
}

TEST(ShardEquivalenceTest, Yang07RootRelay) {
  // Yang+07's root relays S data from inside a delivery handler — the
  // handler-initiated submissions must keep their sequential ids and order.
  auto topo = *net::Topology::Random(80, 7.0, 11);
  SelectivityParams sel{0.5, 0.5, 0.1};
  auto wl = *Workload::MakeQuery1(&topo, sel, /*window=*/3, /*seed=*/5);
  Scenario sc;
  sc.opts.algorithm = join::Algorithm::kYang07;
  sc.opts.assumed = sel;
  sc.opts.loss_prob = 0.02;
  CheckShardInvariance(wl, sc);
}

TEST(ShardEquivalenceTest, FailureChurnAndDriftDynamics) {
  // Churn + loss drift + a lossy radio: drops, failovers and window
  // replays (handler submissions during the transmit phase) included.
  auto topo = *net::Topology::Random(100, 7.0, 42);
  SelectivityParams sel{0.5, 0.5, 0.2};
  auto wl = *Workload::MakeQuery1(&topo, sel, /*window=*/3, /*seed=*/7);
  scenario::DynamicsSchedule schedule =
      scenario::DynamicsSchedule::RandomChurn(topo, /*cycles=*/30,
                                              /*rate=*/0.004,
                                              /*down_cycles=*/8, /*seed=*/5);
  schedule.DriftLossTo(/*cycle=*/10, /*target=*/0.1, /*over_cycles=*/10);
  Scenario sc;
  sc.opts.algorithm = join::Algorithm::kInnet;
  sc.opts.features = join::InnetFeatures::Cmg();
  sc.opts.assumed = sel;
  sc.opts.loss_prob = 0.02;
  sc.opts.seed = 7;
  sc.dynamics = &schedule;
  CheckShardInvariance(wl, sc);
}

TEST(ShardEquivalenceTest, TargetedJoinNodeKill) {
  // Kill one in-network join node mid-run: the failover replay path
  // (drop-handler detection, window transfer, at-base continuation).
  auto topo = *net::Topology::Random(100, 7.0, 42);
  SelectivityParams sel{1.0, 1.0, 0.1};
  auto wl = *Workload::MakeQuery0(&topo, sel, /*num_pairs=*/4, /*window=*/2,
                                  /*seed=*/9);
  // Find an in-network placement to kill (as bench_fig14 does): run a probe
  // executor first.
  join::ExecutorOptions probe_opts;
  probe_opts.algorithm = join::Algorithm::kInnet;
  probe_opts.assumed = {1.0, 1.0, 0.02};
  join::JoinExecutor probe(&wl, probe_opts);
  ASSERT_TRUE(probe.Initiate().ok());
  scenario::DynamicsSchedule schedule;
  for (const auto& pl : probe.placements()) {
    if (!pl.at_base && pl.join_node != pl.pair.s && pl.join_node != pl.pair.t) {
      schedule.FailAt(/*cycle=*/12, pl.join_node);
    }
  }
  Scenario sc;
  sc.opts = probe_opts;
  sc.opts.loss_prob = 0.02;
  sc.dynamics = &schedule;
  CheckShardInvariance(wl, sc);
}

TEST(ShardEquivalenceTest, GhtMeshMode) {
  auto topo = *net::Topology::Grid(9, 9, 300.0);
  SelectivityParams sel{0.5, 0.5, 0.2};
  auto wl = *Workload::MakeQuery0(&topo, sel, /*num_pairs=*/20, /*window=*/3,
                                  /*seed=*/13);
  Scenario sc;
  sc.opts.algorithm = join::Algorithm::kGht;
  sc.opts.assumed = sel;
  sc.opts.mesh_mode = true;
  sc.opts.loss_prob = 0.03;
  CheckShardInvariance(wl, sc);
}

TEST(ShardEquivalenceTest, ShardCountExceedingNodesClamps) {
  auto topo = *net::Topology::Grid(3, 3, 300.0);
  SelectivityParams sel{1.0, 1.0, 0.5};
  auto wl = *Workload::MakeQuery0(&topo, sel, /*num_pairs=*/2, /*window=*/2,
                                  /*seed=*/3);
  Scenario sc;
  sc.opts.algorithm = join::Algorithm::kInnet;
  sc.opts.assumed = sel;
  sc.opts.mesh_mode = true;
  sc.cycles = 10;
  RunDigest base = RunAtShards(wl, sc, 1);
  RunDigest d = RunAtShards(wl, sc, 64);  // clamped to 9 nodes
  ExpectIdentical(base, d, 64);
}

}  // namespace
}  // namespace aspen
