#include "scenario/dynamics.h"

#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "net/network.h"
#include "net/topology.h"
#include "sim/cycle_scheduler.h"

namespace aspen {
namespace scenario {
namespace {

using net::NodeId;
using net::Topology;

Topology TestTopology() { return *Topology::Grid(2, 5, 100.0); }

/// Drives the driver's clock the way a CycleScheduler would.
void Tick(ScenarioDriver* driver, int upto_cycle) {
  for (int c = 0; c <= upto_cycle; ++c) {
    ASSERT_TRUE(driver->OnSample(c).ok());
    ASSERT_TRUE(driver->OnDeliver(c).ok());
    ASSERT_TRUE(driver->OnLearn(c).ok());
  }
}

TEST(DynamicsScheduleTest, RandomChurnIsDeterministicPerSeed) {
  Topology topo = TestTopology();
  auto a = DynamicsSchedule::RandomChurn(topo, 50, 0.05, 5, 42);
  auto b = DynamicsSchedule::RandomChurn(topo, 50, 0.05, 5, 42);
  auto c = DynamicsSchedule::RandomChurn(topo, 50, 0.05, 5, 43);
  EXPECT_EQ(a.events(), b.events());
  EXPECT_NE(a.events(), c.events());
  ASSERT_FALSE(a.empty());
  int fails = 0, recovers = 0;
  for (const auto& e : a.events()) {
    // The base station never churns, and a node that is down must not fail
    // again before its recovery.
    EXPECT_GT(e.node, 0);
    if (e.kind == DynamicsEvent::Kind::kFailNode) ++fails;
    if (e.kind == DynamicsEvent::Kind::kRecoverNode) ++recovers;
  }
  EXPECT_EQ(fails, recovers);  // every failure is paired with a recovery
}

TEST(ScenarioDriverTest, AppliesFailAndRecoverAtScheduledCycles) {
  Topology topo = TestTopology();
  net::Network net(&topo, {});
  DynamicsSchedule sched;
  sched.FailAt(2, 4).RecoverAt(5, 4);
  ScenarioDriver driver(&net, &sched);

  Tick(&driver, 1);
  EXPECT_FALSE(net.IsFailed(4));
  Tick(&driver, 2);  // re-ticking earlier cycles is harmless (events consumed)
  EXPECT_TRUE(net.IsFailed(4));
  Tick(&driver, 5);
  EXPECT_FALSE(net.IsFailed(4));
  EXPECT_EQ(driver.failures_applied(), 1);
  EXPECT_EQ(driver.recoveries_applied(), 1);
}

TEST(ScenarioDriverTest, LossDriftRampsLinearlyToTarget) {
  Topology topo = TestTopology();
  net::NetworkOptions opts;
  opts.loss_prob = 0.0;
  net::Network net(&topo, opts);
  DynamicsSchedule sched;
  sched.DriftLossTo(/*cycle=*/0, /*target=*/0.2, /*over_cycles=*/4);
  ScenarioDriver driver(&net, &sched);

  ASSERT_TRUE(driver.OnSample(0).ok());
  EXPECT_DOUBLE_EQ(net.options().loss_prob, 0.0);
  ASSERT_TRUE(driver.OnSample(2).ok());
  EXPECT_DOUBLE_EQ(net.options().loss_prob, 0.1);
  ASSERT_TRUE(driver.OnSample(4).ok());
  EXPECT_DOUBLE_EQ(net.options().loss_prob, 0.2);  // exact endpoint
  ASSERT_TRUE(driver.OnSample(10).ok());
  EXPECT_DOUBLE_EQ(net.options().loss_prob, 0.2);
}

TEST(ScenarioDriverTest, ImmediateDriftAppliesAtFireCycle) {
  Topology topo = TestTopology();
  net::Network net(&topo, {});
  DynamicsSchedule sched;
  sched.DriftLossTo(/*cycle=*/3, /*target=*/0.5, /*over_cycles=*/0);
  ScenarioDriver driver(&net, &sched);
  Tick(&driver, 2);
  EXPECT_DOUBLE_EQ(net.options().loss_prob, 0.0);
  Tick(&driver, 3);
  EXPECT_DOUBLE_EQ(net.options().loss_prob, 0.5);
}

TEST(ScenarioDriverTest, BurstElevatesAndRestoresRegionLinkLoss) {
  Topology topo = TestTopology();
  net::NetworkOptions opts;
  opts.loss_prob = 0.01;
  net::Network net(&topo, opts);
  const NodeId center = 2;
  ASSERT_FALSE(topo.neighbors(center).empty());
  const NodeId neighbor = topo.neighbors(center).front();
  DynamicsSchedule sched;
  sched.BurstAt(/*cycle=*/1, center, /*radius_hops=*/1, /*loss=*/0.9,
                /*duration=*/2);
  ScenarioDriver driver(&net, &sched);

  Tick(&driver, 0);
  EXPECT_DOUBLE_EQ(net.LinkLoss(center, neighbor), 0.01);
  Tick(&driver, 1);
  EXPECT_DOUBLE_EQ(net.LinkLoss(center, neighbor), 0.9);
  EXPECT_DOUBLE_EQ(net.LinkLoss(neighbor, center), 0.9);
  Tick(&driver, 2);  // still active
  EXPECT_DOUBLE_EQ(net.LinkLoss(center, neighbor), 0.9);
  Tick(&driver, 3);  // expired: back to the default
  EXPECT_DOUBLE_EQ(net.LinkLoss(center, neighbor), 0.01);
}

TEST(ScenarioDriverTest, BlackoutKillsRegionAndRevivesIt) {
  Topology topo = TestTopology();
  net::Network net(&topo, {});
  const NodeId center = 7;
  DynamicsSchedule sched;
  // Large radius: everything near the center dies — except the base.
  sched.BlackoutAt(/*cycle=*/1, center, /*radius_m=*/60.0, /*duration=*/3);
  ScenarioDriver driver(&net, &sched);

  Tick(&driver, 1);
  EXPECT_FALSE(net.IsFailed(0));  // the base station never blacks out
  int killed = 0;
  for (NodeId u = 1; u < topo.num_nodes(); ++u) {
    if (topo.DistanceBetween(center, u) <= 60.0) {
      EXPECT_TRUE(net.IsFailed(u));
      ++killed;
    }
  }
  EXPECT_GT(killed, 1);
  Tick(&driver, 4);  // expired
  for (NodeId u = 0; u < topo.num_nodes(); ++u) EXPECT_FALSE(net.IsFailed(u));
  EXPECT_EQ(driver.recoveries_applied(), driver.failures_applied());
}

TEST(ScenarioDriverTest, OverlappingFailureSourcesComposeByOwnership) {
  // A node held down by two scripted sources (an explicit failure and a
  // blackout) stays dead until *both* release it: the explicit recovery at
  // cycle 3 must not revive it mid-blackout.
  Topology topo = TestTopology();
  net::Network net(&topo, {});
  const NodeId u = 7;
  DynamicsSchedule sched;
  sched.FailAt(1, u)
      .BlackoutAt(/*cycle=*/2, u, /*radius_m=*/1.0, /*duration=*/4)
      .RecoverAt(3, u);
  ScenarioDriver driver(&net, &sched);
  Tick(&driver, 3);
  EXPECT_TRUE(net.IsFailed(u));  // blackout (cycles 2-6) still holds it
  Tick(&driver, 5);
  EXPECT_TRUE(net.IsFailed(u));
  Tick(&driver, 6);  // blackout expired: last owner released
  EXPECT_FALSE(net.IsFailed(u));
}

TEST(ScenarioDriverTest, ExpiredBurstReassertsSurvivingOverlap) {
  // Two bursts over the same region: when the short one expires, the
  // longer one's loss must be re-asserted on the shared links rather than
  // the links reverting to the default.
  Topology topo = TestTopology();
  net::NetworkOptions opts;
  opts.loss_prob = 0.01;
  net::Network net(&topo, opts);
  const NodeId center = 2;
  const NodeId neighbor = topo.neighbors(center).front();
  DynamicsSchedule sched;
  sched.BurstAt(/*cycle=*/0, center, /*radius_hops=*/1, /*loss=*/0.9,
                /*duration=*/3);
  sched.BurstAt(/*cycle=*/1, center, /*radius_hops=*/1, /*loss=*/0.5,
                /*duration=*/10);
  ScenarioDriver driver(&net, &sched);
  Tick(&driver, 1);  // both active; the later burst owns the shared links
  EXPECT_DOUBLE_EQ(net.LinkLoss(center, neighbor), 0.5);
  Tick(&driver, 3);  // the short burst expired mid-overlap
  EXPECT_DOUBLE_EQ(net.LinkLoss(center, neighbor), 0.5);
  Tick(&driver, 11);  // both gone: default restored
  EXPECT_DOUBLE_EQ(net.LinkLoss(center, neighbor), 0.01);
}

/// Records whether a watched node was already dead when sampling ran.
class ProbeParticipant : public sim::CycleParticipant {
 public:
  ProbeParticipant(net::Network* net, NodeId watch)
      : net_(net), watch_(watch) {}
  Status OnSample(int cycle) override {
    if (static_cast<size_t>(cycle) >= seen_failed_.size()) {
      seen_failed_.resize(cycle + 1);
    }
    seen_failed_[cycle] = net_->IsFailed(watch_);
    return Status::OK();
  }
  Status OnDeliver(int) override { return Status::OK(); }
  Status OnLearn(int) override { return Status::OK(); }
  const std::vector<bool>& seen_failed() const { return seen_failed_; }

 private:
  net::Network* net_;
  NodeId watch_;
  std::vector<bool> seen_failed_;
};

TEST(ScenarioDriverTest, AttachFrontAppliesEventsBeforeSampling) {
  Topology topo = TestTopology();
  net::Network net(&topo, {});
  sim::CycleScheduler sched(&net, /*sample_interval=*/2);
  ProbeParticipant probe(&net, /*watch=*/3);
  sched.Attach(&probe);  // the "query", attached first like an executor

  DynamicsSchedule dynamics;
  dynamics.FailAt(2, 3).RecoverAt(4, 3);
  ScenarioDriver driver(&net, &dynamics);
  sched.AttachFront(&driver);

  ASSERT_TRUE(sched.RunCycles(6).ok());
  // The probe must observe the mutation at exactly the scheduled cycles:
  // the driver runs before it even though it was attached afterwards.
  EXPECT_EQ(probe.seen_failed(),
            (std::vector<bool>{false, false, true, true, false, false}));
}

TEST(DynamicsScheduleTest, QueryChurnIsDeterministicAndWaveBounded) {
  DynamicsSchedule::QueryChurnOptions opts;
  opts.start_cycle = 5;
  opts.waves = 3;
  opts.arrivals_per_wave = 4;
  opts.wave_period = 30;
  opts.min_lifetime = 5;
  opts.max_lifetime = 20;
  opts.num_templates = 2;
  opts.seed = 42;
  auto a = DynamicsSchedule::QueryChurn(opts);
  auto b = DynamicsSchedule::QueryChurn(opts);
  opts.seed = 43;
  auto c = DynamicsSchedule::QueryChurn(opts);
  EXPECT_EQ(a.events(), b.events());
  EXPECT_NE(a.events(), c.events());
  EXPECT_EQ(a.num_query_arrivals(), 12);
  EXPECT_EQ(a.num_query_departures(), 12);

  // Every instance lives entirely inside its own wave window, templates
  // stay in the pool, and each arrival has exactly one departure.
  std::map<int, std::pair<int, int>> lifetime;  // slot -> (arrive, depart)
  for (const auto& e : a.events()) {
    if (e.kind == DynamicsEvent::Kind::kQueryArrival) {
      EXPECT_GE(e.template_id, 0);
      EXPECT_LT(e.template_id, 2);
      EXPECT_TRUE(lifetime.emplace(e.slot, std::make_pair(e.cycle, -1)).second);
    } else {
      ASSERT_EQ(e.kind, DynamicsEvent::Kind::kQueryDeparture);
      auto it = lifetime.find(e.slot);
      ASSERT_NE(it, lifetime.end());
      it->second.second = e.cycle;
    }
  }
  EXPECT_EQ(lifetime.size(), 12u);
  for (const auto& [slot, span] : lifetime) {
    const int wave = slot / opts.arrivals_per_wave;
    const int wave_start = 5 + wave * opts.wave_period;
    EXPECT_GE(span.first, wave_start);
    EXPECT_GT(span.second, span.first);
    EXPECT_LT(span.second, wave_start + opts.wave_period);
  }
}

/// Records query arrival/departure callbacks.
class RecordingHost : public QueryHost {
 public:
  Status OnQueryArrival(int slot, int template_id) override {
    log.push_back({slot, template_id});
    return Status::OK();
  }
  Status OnQueryDeparture(int slot) override {
    log.push_back({slot, -1});
    return Status::OK();
  }
  std::vector<std::pair<int, int>> log;  // (slot, template or -1)
};

TEST(ScenarioDriverTest, DispatchesQueryEventsToHostAtScheduledCycles) {
  Topology topo = TestTopology();
  net::Network net(&topo, {});
  DynamicsSchedule sched;
  sched.ArriveAt(1, /*slot=*/0, /*template_id=*/2).DepartAt(3, 0);
  ScenarioDriver driver(&net, &sched);
  RecordingHost host;
  driver.set_query_host(&host);

  Tick(&driver, 0);
  EXPECT_TRUE(host.log.empty());
  Tick(&driver, 1);
  ASSERT_EQ(host.log.size(), 1u);
  EXPECT_EQ(host.log[0], std::make_pair(0, 2));
  Tick(&driver, 3);
  ASSERT_EQ(host.log.size(), 2u);
  EXPECT_EQ(host.log[1], std::make_pair(0, -1));
  EXPECT_EQ(driver.arrivals_applied(), 1);
  EXPECT_EQ(driver.departures_applied(), 1);
}

TEST(ScenarioDriverTest, QueryEventWithoutHostFailsTheRun) {
  Topology topo = TestTopology();
  net::Network net(&topo, {});
  DynamicsSchedule sched;
  sched.ArriveAt(0, 0, 0);
  ScenarioDriver driver(&net, &sched);
  Status st = driver.OnSample(0);
  EXPECT_TRUE(st.IsFailedPrecondition());
}

}  // namespace
}  // namespace scenario
}  // namespace aspen
