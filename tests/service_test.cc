// Service-mode coverage: core::ServiceRunner / RunService drive a
// SharedMedium through scripted query arrivals and departures. The run
// must admit and tear down exactly the scheduled population, keep
// data-plane occupancy bounded (back to the resident baseline after the
// churn horizon), retain departed queries' metrics in the ledger, and be
// byte-identical for any medium shard count.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/engine.h"
#include "join/medium.h"
#include "net/topology.h"
#include "scenario/dynamics.h"
#include "workload/workload.h"

namespace aspen {
namespace core {
namespace {

using workload::SelectivityParams;
using workload::Workload;

struct ServiceFixture {
  net::Topology topo;
  std::vector<Workload> pool;
  std::vector<const Workload*> templates;
  scenario::DynamicsSchedule schedule;

  explicit ServiceFixture(uint64_t seed = 11)
      : topo(*net::Topology::Random(80, 7.0, seed)) {
    SelectivityParams sel{0.5, 0.5, 0.2};
    pool.push_back(*Workload::MakeQuery1(&topo, sel, 3, 7));
    pool.push_back(*Workload::MakeQuery2(&topo, sel, 3, 9));
    for (const auto& wl : pool) templates.push_back(&wl);
    // One resident (slot 100, never departs) plus two churn waves.
    schedule.ArriveAt(0, /*slot=*/100, /*template_id=*/0);
    scenario::DynamicsSchedule::QueryChurnOptions churn;
    churn.start_cycle = 2;
    churn.waves = 2;
    churn.arrivals_per_wave = 2;
    churn.wave_period = 12;
    churn.min_lifetime = 3;
    churn.max_lifetime = 8;
    churn.num_templates = 2;
    churn.seed = 5;
    const scenario::DynamicsSchedule churned =
        scenario::DynamicsSchedule::QueryChurn(churn);
    for (const auto& e : churned.events()) schedule.Add(e);
  }

  ServiceOptions Options(int shards = 1) const {
    ServiceOptions opts;
    opts.executor.algorithm = join::Algorithm::kInnet;
    opts.executor.assumed = {0.5, 0.5, 0.2};
    opts.medium.knobs.shards = shards;
    opts.dynamics = &schedule;
    return opts;
  }
};

TEST(ServiceTest, ChurnAdmitsAndRemovesScheduledPopulation) {
  ServiceFixture fx;
  auto stats = RunService(fx.templates, fx.Options(), /*cycles=*/32);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->arrivals, 5);    // 1 resident + 4 churned
  EXPECT_EQ(stats->departures, 4);  // every churned instance departed
  EXPECT_EQ(stats->resident_queries, 1);
  EXPECT_EQ(stats->ledger.size(), 4u);
  EXPECT_GT(stats->total_results, 0u);
  EXPECT_EQ(stats->cycles, 32);
  for (const auto& rec : stats->ledger) {
    EXPECT_GT(rec.removed_cycle, rec.admitted_cycle);
  }
}

TEST(ServiceTest, OccupancyReturnsToResidentBaselineAfterChurn) {
  ServiceFixture fx;
  auto stats = RunService(fx.templates, fx.Options(), /*cycles=*/32);
  ASSERT_TRUE(stats.ok());
  // Sample 0 precedes the resident's admission (empty plane); sample 1 is
  // the steady checkpoint before the first churned arrival — the resident
  // baseline. The final sample (post-drain) must return to it exactly.
  ASSERT_GE(stats->occupancy.size(), 3u);
  const auto& baseline = stats->occupancy[1];
  const auto& final_sample = stats->occupancy.back();
  ASSERT_GT(baseline.routes_live, 0u);
  EXPECT_EQ(final_sample.routes_live, baseline.routes_live);
  EXPECT_EQ(final_sample.mcasts_live, baseline.mcasts_live);
  EXPECT_EQ(final_sample.payload_live, 0u);
  EXPECT_GE(stats->peak_routes_live, baseline.routes_live);
}

TEST(ServiceTest, ShardedServiceRunsAreByteIdentical) {
  // The whole service path — churn, teardown, route GC — must preserve
  // the sharded kernel's byte-identity invariant.
  ServiceFixture fx;
  auto s1 = RunService(fx.templates, fx.Options(/*shards=*/1), 30);
  auto s3 = RunService(fx.templates, fx.Options(/*shards=*/3), 30);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s3.ok());
  EXPECT_EQ(s1->total_results, s3->total_results);
  EXPECT_EQ(s1->total_bytes, s3->total_bytes);
  EXPECT_EQ(s1->total_messages, s3->total_messages);
  EXPECT_EQ(s1->arrivals, s3->arrivals);
  EXPECT_EQ(s1->departures, s3->departures);
  ASSERT_EQ(s1->occupancy.size(), s3->occupancy.size());
  for (size_t i = 0; i < s1->occupancy.size(); ++i) {
    EXPECT_EQ(s1->occupancy[i].routes_live, s3->occupancy[i].routes_live);
    EXPECT_EQ(s1->occupancy[i].payload_live, s3->occupancy[i].payload_live);
    EXPECT_EQ(s1->occupancy[i].payload_capacity,
              s3->occupancy[i].payload_capacity);
  }
  ASSERT_EQ(s1->ledger.size(), s3->ledger.size());
  for (size_t i = 0; i < s1->ledger.size(); ++i) {
    EXPECT_EQ(s1->ledger[i].stats.results, s3->ledger[i].stats.results);
    EXPECT_EQ(s1->ledger[i].stats.query_bytes,
              s3->ledger[i].stats.query_bytes);
  }
}

TEST(ServiceTest, RunnerContinuesAcrossRunCalls) {
  ServiceFixture fx;
  ServiceOptions opts = fx.Options();
  auto runner = ServiceRunner::Create(fx.templates, opts);
  ASSERT_TRUE(runner.ok());
  ASSERT_TRUE((*runner)->Run(16).ok());
  ASSERT_TRUE((*runner)->Run(16).ok());
  ServiceStats split = (*runner)->Finalize();
  auto whole = RunService(fx.templates, opts, 32);
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(split.arrivals, whole->arrivals);
  EXPECT_EQ(split.departures, whole->departures);
  EXPECT_EQ(split.cycles, whole->cycles);
  EXPECT_EQ(split.resident_queries, whole->resident_queries);
}

TEST(ServiceTest, RejectsDuplicateSlotWithoutLeakingAQuery) {
  ServiceFixture fx;
  scenario::DynamicsSchedule bad;
  bad.ArriveAt(0, /*slot=*/7, /*template_id=*/0);
  bad.ArriveAt(1, /*slot=*/7, /*template_id=*/1);  // slot reused while live
  ServiceOptions opts = fx.Options();
  opts.dynamics = &bad;
  auto runner = ServiceRunner::Create(fx.templates, opts);
  ASSERT_TRUE(runner.ok());
  Status st = (*runner)->Run(4);
  EXPECT_FALSE(st.ok());
  // The duplicate was rejected before admission: only the first instance
  // is live and accounted.
  EXPECT_EQ((*runner)->medium().num_queries(), 1);
  EXPECT_EQ((*runner)->progress().arrivals, 1);
}

TEST(ServiceTest, SharedModeChurnIsPipelineDepthInvariant) {
  // Mid-run owner departure under placement sharing: adoption restores the
  // promoted subscriber's pair lists — state the pipelined sample stage
  // reads — so the medium must invalidate any slab prestaged for it before
  // the promotion. Slot 0 owns every shared placement of template 0,
  // slots 1-2 subscribe; the owner departs mid-run, promoting slot 1 while
  // slot 2 stays subscribed. The whole run must be byte-identical at every
  // pipeline depth and shard count.
  net::Topology topo = *net::Topology::Random(80, 7.0, 11);
  SelectivityParams sel{0.5, 0.5, 0.2};
  Workload wl = *Workload::MakeQuery1(&topo, sel, 3, 7);
  std::vector<const Workload*> templates = {&wl};
  scenario::DynamicsSchedule schedule;
  schedule.ArriveAt(0, /*slot=*/0, /*template_id=*/0);
  schedule.ArriveAt(2, /*slot=*/1, /*template_id=*/0);
  schedule.ArriveAt(4, /*slot=*/2, /*template_id=*/0);
  schedule.DepartAt(12, /*slot=*/0);

  auto run = [&](int shards, int depth) {
    ServiceOptions opts;
    opts.executor.algorithm = join::Algorithm::kInnet;
    opts.executor.assumed = sel;
    opts.executor.knobs.tree_mode = common::TreeMode::kShared;
    opts.medium.knobs.tree_mode = common::TreeMode::kShared;
    opts.medium.knobs.shards = shards;
    opts.medium.knobs.pipeline_depth = depth;
    opts.dynamics = &schedule;
    auto stats = RunService(templates, opts, /*cycles=*/28);
    EXPECT_TRUE(stats.ok());
    return *std::move(stats);
  };

  const ServiceStats base = run(1, 1);
  EXPECT_EQ(base.arrivals, 3);
  EXPECT_EQ(base.departures, 1);
  EXPECT_GT(base.total_results, 0u);
  for (int depth : {2, 3}) {
    for (int shards : {1, 3}) {
      const ServiceStats other = run(shards, depth);
      EXPECT_EQ(other.total_results, base.total_results)
          << "shards=" << shards << " depth=" << depth;
      EXPECT_EQ(other.total_bytes, base.total_bytes)
          << "shards=" << shards << " depth=" << depth;
      EXPECT_EQ(other.total_messages, base.total_messages)
          << "shards=" << shards << " depth=" << depth;
      ASSERT_EQ(other.ledger.size(), base.ledger.size());
      EXPECT_EQ(other.ledger[0].stats.results, base.ledger[0].stats.results);
    }
  }
}

TEST(ServiceTest, RejectsTemplateOutsideThePool) {
  ServiceFixture fx;
  scenario::DynamicsSchedule bad;
  bad.ArriveAt(0, /*slot=*/0, /*template_id=*/9);  // pool has 2 templates
  ServiceOptions opts = fx.Options();
  opts.dynamics = &bad;
  auto runner = ServiceRunner::Create(fx.templates, opts);
  ASSERT_TRUE(runner.ok());
  Status st = (*runner)->Run(2);
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST(ServiceTest, RejectsMixedTopologyTemplates) {
  ServiceFixture fx;
  auto other_topo = *net::Topology::Random(40, 7.0, 3);
  auto foreign = *Workload::MakeQuery1(&other_topo, {0.5, 0.5, 0.2}, 3, 7);
  std::vector<const Workload*> templates = fx.templates;
  templates.push_back(&foreign);
  auto r = ServiceRunner::Create(templates, fx.Options());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

}  // namespace
}  // namespace core
}  // namespace aspen
