// Steady-state allocation audit: after warm-up, a running join must execute
// sampling cycles without touching the heap. Every per-cycle object — frames,
// routes, payloads, join-window entries, arrival mailboxes, replay rings —
// is pooled or interned, so the only allocations happen during initiation
// and the first few (warm-up) cycles while slabs and scratch buffers grow to
// their steady-state capacity.
//
// The audit instruments global operator new/delete (bench/alloc_audit.h)
// with a counter gated by a flag, so surrounding gtest machinery is not
// measured.

#include <gtest/gtest.h>

#include "bench/alloc_audit.h"
#include "core/engine.h"
#include "join/executor.h"
#include "join/medium.h"
#include "net/topology.h"
#include "workload/workload.h"

namespace aspen {
namespace {

using workload::SelectivityParams;
using workload::Workload;

uint64_t CountCycleAllocs(join::JoinExecutor* exec, int warmup_cycles,
                          int measured_cycles) {
  EXPECT_TRUE(exec->RunCycles(warmup_cycles).ok());
  allocaudit::ResetCount();
  allocaudit::SetCounting(true);
  Status st = exec->RunCycles(measured_cycles);
  allocaudit::SetCounting(false);
  EXPECT_TRUE(st.ok());
  return allocaudit::Count();
}

TEST(SteadyStateAllocationTest, InnetCyclesAllocateNothing) {
  auto topo = *net::Topology::Random(100, 7.0, 42);
  SelectivityParams sel{0.5, 0.5, 0.2};
  auto wl = *Workload::MakeQuery1(&topo, sel, 3, 7);
  join::ExecutorOptions opts;
  opts.algorithm = join::Algorithm::kInnet;
  opts.assumed = sel;
  join::JoinExecutor exec(&wl, opts);
  ASSERT_TRUE(exec.Initiate().ok());
  EXPECT_EQ(CountCycleAllocs(&exec, /*warmup_cycles=*/60,
                             /*measured_cycles=*/40),
            0u);
}

TEST(SteadyStateAllocationTest, InnetMulticastMergingCyclesAllocateNothing) {
  auto topo = *net::Topology::Random(100, 7.0, 42);
  SelectivityParams sel{0.5, 0.5, 0.2};
  auto wl = *Workload::MakeQuery1(&topo, sel, 3, 7);
  join::ExecutorOptions opts;
  opts.algorithm = join::Algorithm::kInnet;
  opts.features = join::InnetFeatures::Cm();  // combining + multicast trees
  opts.assumed = sel;
  join::JoinExecutor exec(&wl, opts);
  ASSERT_TRUE(exec.Initiate().ok());
  EXPECT_EQ(CountCycleAllocs(&exec, /*warmup_cycles=*/60,
                             /*measured_cycles=*/40),
            0u);
}

TEST(SteadyStateAllocationTest, LossyRadioCyclesAllocateNothing) {
  // Loss-driven retransmissions and drops must also stay on pooled frames.
  auto topo = *net::Topology::Random(100, 7.0, 42);
  SelectivityParams sel{0.5, 0.5, 0.2};
  auto wl = *Workload::MakeQuery1(&topo, sel, 3, 7);
  join::ExecutorOptions opts;
  opts.algorithm = join::Algorithm::kInnet;
  opts.assumed = sel;
  opts.loss_prob = 0.1;
  join::JoinExecutor exec(&wl, opts);
  ASSERT_TRUE(exec.Initiate().ok());
  EXPECT_EQ(CountCycleAllocs(&exec, /*warmup_cycles=*/80,
                             /*measured_cycles=*/40),
            0u);
}

TEST(SteadyStateAllocationTest, PoolsAreReusedNotGrown) {
  // The payload slabs stop growing once warm: capacity after the measured
  // block equals capacity before it.
  auto topo = *net::Topology::Random(100, 7.0, 42);
  SelectivityParams sel{0.5, 0.5, 0.2};
  auto wl = *Workload::MakeQuery1(&topo, sel, 3, 7);
  join::ExecutorOptions opts;
  opts.algorithm = join::Algorithm::kInnet;
  opts.assumed = sel;
  join::JoinExecutor exec(&wl, opts);
  ASSERT_TRUE(exec.Initiate().ok());
  ASSERT_TRUE(exec.RunCycles(60).ok());
  auto& pool = *exec.network().payloads().GetOrCreate<join::DataPayload>(
      join::kPayloadTagData);
  const size_t warm_capacity = pool.capacity();
  ASSERT_GT(warm_capacity, 0u);
  ASSERT_TRUE(exec.RunCycles(40).ok());
  EXPECT_EQ(pool.capacity(), warm_capacity);
  // Between cycles nothing is in flight: every payload went back to the
  // free list.
  EXPECT_EQ(pool.live(), 0u);
}

TEST(SteadyStateAllocationTest, ShardedCyclesAllocateNothing) {
  // The sharded kernel must hold the same bar: per-shard frame slabs,
  // effect lists, staging buffers and merge scratch all reach steady-state
  // capacity during warm-up, and the worker pool parks on a condition
  // variable without heap traffic. (The audit counts allocations from every
  // thread: the instrumented operator new is global.) One caveat keeps the
  // bound at "a few per run" instead of a hard zero: a shard's deferred
  // effect list capacity tracks its *largest* delivery burst, and a rare
  // burst alignment can set a new high-water mark (one doubling) after any
  // warm-up. A long measured block shows there is no per-cycle churn: the
  // bound is one doubling per shard, two orders of magnitude below one
  // allocation per cycle.
  auto topo = *net::Topology::Random(100, 7.0, 42);
  SelectivityParams sel{0.5, 0.5, 0.2};
  auto wl = *Workload::MakeQuery1(&topo, sel, 3, 7);
  join::ExecutorOptions opts;
  opts.algorithm = join::Algorithm::kInnet;
  opts.features = join::InnetFeatures::Cm();
  opts.assumed = sel;
  opts.knobs.shards = 4;
  join::JoinExecutor exec(&wl, opts);
  ASSERT_TRUE(exec.Initiate().ok());
  EXPECT_LE(CountCycleAllocs(&exec, /*warmup_cycles=*/60,
                             /*measured_cycles=*/200),
            4u);  // == knobs.shards
}

TEST(SteadyStateAllocationTest, ShardedLossyCyclesAllocateNothing) {
  auto topo = *net::Topology::Random(100, 7.0, 42);
  SelectivityParams sel{0.5, 0.5, 0.2};
  auto wl = *Workload::MakeQuery1(&topo, sel, 3, 7);
  join::ExecutorOptions opts;
  opts.algorithm = join::Algorithm::kInnet;
  opts.assumed = sel;
  opts.loss_prob = 0.1;
  opts.knobs.shards = 3;
  join::JoinExecutor exec(&wl, opts);
  ASSERT_TRUE(exec.Initiate().ok());
  EXPECT_LE(CountCycleAllocs(&exec, /*warmup_cycles=*/80,
                             /*measured_cycles=*/200),
            3u);  // == knobs.shards
}

}  // namespace
}  // namespace aspen
