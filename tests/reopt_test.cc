// Continuous re-optimization: the ReoptController's pacing and divergence
// gate, the planned three-phase migration protocol (announce → transfer →
// complete), and the determinism contract with the loop enabled — a run
// that migrates placements mid-flight must stay byte-identical across
// shard counts and pipeline depths, and must not lose or duplicate a
// single join result across the transfer cycles.

#include <gtest/gtest.h>

#include <string>

#include "adapt/reopt.h"
#include "join/executor.h"
#include "join/medium.h"
#include "net/topology.h"
#include "scenario/dynamics.h"
#include "tests/reference_join.h"
#include "workload/workload.h"

namespace aspen {
namespace join {
namespace {

using workload::SelectivityParams;
using workload::Workload;

TEST(ReoptControllerTest, PacingArmsEveryInterval) {
  adapt::ReoptController ctl(/*interval=*/5, /*threshold=*/0.33);
  EXPECT_TRUE(ctl.enabled());
  int due = 0;
  for (int t = 1; t <= 20; ++t) {
    ctl.Tick();
    if (ctl.TakeDue()) ++due;
  }
  EXPECT_EQ(due, 4);  // armed at ticks 5, 10, 15, 20
  EXPECT_EQ(ctl.passes(), 4u);
  EXPECT_FALSE(ctl.TakeDue());  // the armed flag is consumed

  adapt::ReoptController off(/*interval=*/0, /*threshold=*/0.33);
  EXPECT_FALSE(off.enabled());
  off.Tick();
  EXPECT_FALSE(off.TakeDue());
}

TEST(ReoptControllerTest, DivergenceTriggerSweepAroundPaperThreshold) {
  adapt::ReoptController ctl(/*interval=*/1, /*threshold=*/0.33);
  const SelectivityParams ref{0.5, 0.5, 0.2};
  // One component scaled across the 33% boundary: the trigger is relative
  // to the placement-time reference estimate.
  for (double scale : {1.0, 1.10, 1.25, 1.32}) {
    SelectivityParams fresh = ref;
    fresh.sigma_s = ref.sigma_s * scale;
    EXPECT_FALSE(ctl.ShouldReplan(fresh, ref)) << "scale=" << scale;
  }
  for (double scale : {1.34, 1.50, 3.0}) {
    SelectivityParams fresh = ref;
    fresh.sigma_s = ref.sigma_s * scale;
    EXPECT_TRUE(ctl.ShouldReplan(fresh, ref)) << "scale=" << scale;
  }
  // Shrinking diverges symmetrically, and every component is consulted.
  SelectivityParams fresh = ref;
  fresh.sigma_st = ref.sigma_st * 0.5;
  EXPECT_TRUE(ctl.ShouldReplan(fresh, ref));
  fresh = ref;
  fresh.sigma_t = ref.sigma_t * 0.66;
  EXPECT_TRUE(ctl.ShouldReplan(fresh, ref));
}

// ---- planned migration under a mid-run selectivity shift --------------------

constexpr SelectivityParams kBefore{0.1, 1.0, 0.2};
constexpr SelectivityParams kAfter{1.0, 0.1, 0.2};
constexpr int kShiftCycle = 30;
constexpr int kCycles = 100;

Workload ShiftedWorkload(const net::Topology& topo) {
  auto wl = *Workload::MakeQuery1(&topo, kBefore, 3, 7);
  // The producer roles swap rates mid-run (the paper's Figure 12(b)
  // setting): the placements chosen for kBefore become measurably wrong.
  wl.SetGlobalSwitch(kShiftCycle, kAfter);
  return wl;
}

RunStats RunShifted(const net::Topology& topo, int shards, int depth,
                    double loss) {
  Workload wl = ShiftedWorkload(topo);
  ExecutorOptions opts;
  opts.algorithm = Algorithm::kInnet;
  opts.features = InnetFeatures::None();  // ungrouped: the planned protocol
  opts.assumed = kBefore;
  opts.loss_prob = loss;
  opts.seed = 42;
  opts.knobs.shards = shards;
  opts.knobs.pipeline_depth = depth;
  opts.knobs.reopt_interval = 10;
  JoinExecutor exec(&wl, opts);
  EXPECT_TRUE(exec.Initiate().ok());
  EXPECT_TRUE(exec.RunCycles(kCycles).ok());
  return exec.Stats();
}

void ExpectIdentical(const RunStats& a, const RunStats& b,
                     const std::string& what) {
  EXPECT_EQ(a.total_bytes, b.total_bytes) << what;
  EXPECT_EQ(a.base_bytes, b.base_bytes) << what;
  EXPECT_EQ(a.max_node_bytes, b.max_node_bytes) << what;
  EXPECT_EQ(a.total_messages, b.total_messages) << what;
  EXPECT_EQ(a.initiation_bytes, b.initiation_bytes) << what;
  EXPECT_EQ(a.computation_bytes, b.computation_bytes) << what;
  EXPECT_EQ(a.query_bytes, b.query_bytes) << what;
  EXPECT_EQ(a.results, b.results) << what;
  EXPECT_DOUBLE_EQ(a.avg_result_delay_cycles, b.avg_result_delay_cycles)
      << what;
  EXPECT_DOUBLE_EQ(a.max_result_delay_cycles, b.max_result_delay_cycles)
      << what;
  EXPECT_EQ(a.migrations, b.migrations) << what;
  EXPECT_EQ(a.failovers, b.failovers) << what;
  EXPECT_EQ(a.reopt_passes, b.reopt_passes) << what;
  EXPECT_EQ(a.planned_migrations, b.planned_migrations) << what;
}

TEST(ReoptMigrationTest, PlannedMigrationPreservesResults) {
  auto topo = *net::Topology::Random(80, 7.0, 11);
  RunStats st = RunShifted(topo, /*shards=*/1, /*depth=*/1, /*loss=*/0.0);
  // The shift drives the live estimates past the 33% trigger, so a pass
  // replans and at least one pair relocates through the three-phase
  // protocol (announce, window transfer, plan flip)...
  EXPECT_GT(st.reopt_passes, 0u);
  EXPECT_GT(st.planned_migrations, 0u);
  EXPECT_GE(st.migrations, st.planned_migrations);
  // ...without losing or duplicating a single result: the run matches the
  // loss-free reference join exactly, including across the transfer cycles
  // where the pair's window state is in flight between sites.
  Workload reference = ShiftedWorkload(topo);
  EXPECT_EQ(st.results, testing_util::ReferenceResults(reference, kCycles));
}

TEST(ReoptMigrationTest, FrozenPlacementsNeverMigrate) {
  // The interval=0 default keeps the historical behavior bit-for-bit: no
  // passes, no planned migrations.
  auto topo = *net::Topology::Random(80, 7.0, 11);
  Workload wl = ShiftedWorkload(topo);
  ExecutorOptions opts;
  opts.algorithm = Algorithm::kInnet;
  opts.assumed = kBefore;
  JoinExecutor exec(&wl, opts);
  ASSERT_TRUE(exec.Initiate().ok());
  ASSERT_TRUE(exec.RunCycles(kCycles).ok());
  RunStats st = exec.Stats();
  EXPECT_EQ(st.reopt_passes, 0u);
  EXPECT_EQ(st.planned_migrations, 0u);
}

TEST(ReoptMigrationTest, ShardAndDepthByteIdentityWithReoptOn) {
  auto topo = *net::Topology::Random(80, 7.0, 11);
  RunStats base = RunShifted(topo, 1, 1, /*loss=*/0.0);
  ASSERT_GT(base.planned_migrations, 0u);
  for (int shards : {1, 3}) {
    for (int depth : {1, 2, 3}) {
      if (shards == 1 && depth == 1) continue;
      RunStats other = RunShifted(topo, shards, depth, /*loss=*/0.0);
      ExpectIdentical(base, other,
                      "shards=" + std::to_string(shards) +
                          " depth=" + std::to_string(depth));
    }
  }
}

TEST(ReoptMigrationTest, LossyShardIdentityWithReoptOn) {
  // Under radio loss the transfer message itself can drop; the drop handler
  // degrades the relocation deterministically (the payload's windows are
  // applied directly), so sharded and pipelined runs still match byte for
  // byte.
  auto topo = *net::Topology::Random(80, 7.0, 11);
  RunStats base = RunShifted(topo, 1, 1, /*loss=*/0.1);
  for (int shards : {3}) {
    for (int depth : {1, 2}) {
      RunStats other = RunShifted(topo, shards, depth, /*loss=*/0.1);
      ExpectIdentical(base, other,
                      "lossy shards=" + std::to_string(shards) +
                          " depth=" + std::to_string(depth));
    }
  }
}

TEST(ReoptMediumTest, MidRunAdmissionPacesOnQueryLocalClock) {
  // Satellite of the re-optimization loop: pacing counts the query's own
  // learn ticks, so a query admitted at medium cycle 7 re-optimizes 10 of
  // *its* cycles later — not at the medium clock's next multiple.
  auto topo = *net::Topology::Random(60, 7.0, 3);
  SelectivityParams sel{0.5, 0.5, 0.2};
  auto early_wl = *Workload::MakeQuery1(&topo, sel, 3, 7);
  auto late_wl = *Workload::MakeQuery1(&topo, sel, 3, 7);
  ExecutorOptions opts;
  opts.algorithm = Algorithm::kInnet;
  opts.assumed = sel;
  opts.knobs.reopt_interval = 10;

  SharedMedium medium(&topo, {});
  auto early = medium.TryAddQuery(&early_wl, opts);
  ASSERT_TRUE(early.ok());
  ASSERT_TRUE((*early)->Initiate().ok());
  ASSERT_TRUE(medium.RunCycles(7).ok());
  auto late = medium.TryAddQuery(&late_wl, opts);
  ASSERT_TRUE(late.ok());
  ASSERT_TRUE((*late)->Initiate().ok());
  ASSERT_TRUE(medium.RunCycles(25).ok());
  // Early query: 32 ticks → armed at 10/20/30, each consumed on the
  // following cycle's re-optimize hook.
  EXPECT_EQ((*early)->Stats().reopt_passes, 3u);
  // Late query: 25 ticks on its own clock → exactly two passes.
  EXPECT_EQ((*late)->Stats().reopt_passes, 2u);
}

// ---- scripted selectivity shifts (scenario layer) ---------------------------

class RecordingHost : public scenario::QueryHost {
 public:
  Status OnQueryArrival(int, int) override { return Status::OK(); }
  Status OnQueryDeparture(int) override { return Status::OK(); }
  Status OnSelectivityShift(int at_cycle, double sigma_s, double sigma_t,
                            double sigma_st) override {
    at_cycle_ = at_cycle;
    params_ = {sigma_s, sigma_t, sigma_st};
    ++shifts_;
    return Status::OK();
  }
  int at_cycle_ = -1;
  SelectivityParams params_;
  int shifts_ = 0;
};

TEST(SelectivityShiftEventTest, DispatchedEagerlyAtHostAttachment) {
  auto topo = *net::Topology::Random(20, 7.0, 1);
  net::Network net(&topo, {});
  scenario::DynamicsSchedule sched;
  sched.ShiftSelectivityAt(/*cycle=*/40, 1.0, 0.1, 0.2);
  scenario::ScenarioDriver driver(&net, &sched);
  RecordingHost host;
  // The shift dispatches at attachment (cycle-indexed registration is what
  // keeps pipelined runs byte-identical), not when the clock reaches 40.
  ASSERT_TRUE(driver.set_query_host(&host).ok());
  EXPECT_EQ(host.shifts_, 1);
  EXPECT_EQ(host.at_cycle_, 40);
  EXPECT_DOUBLE_EQ(host.params_.sigma_s, 1.0);
  EXPECT_DOUBLE_EQ(host.params_.sigma_t, 0.1);
  EXPECT_DOUBLE_EQ(host.params_.sigma_st, 0.2);
  EXPECT_EQ(driver.shifts_applied(), 1);
}

TEST(SelectivityShiftEventTest, HostWithoutShiftSupportFailsEagerly) {
  class NoShiftHost : public scenario::QueryHost {
   public:
    Status OnQueryArrival(int, int) override { return Status::OK(); }
    Status OnQueryDeparture(int) override { return Status::OK(); }
  };
  auto topo = *net::Topology::Random(20, 7.0, 1);
  net::Network net(&topo, {});
  scenario::DynamicsSchedule sched;
  sched.ShiftSelectivityAt(10, 0.5, 0.5, 0.2);
  scenario::ScenarioDriver driver(&net, &sched);
  NoShiftHost host;
  Status st = driver.set_query_host(&host);
  EXPECT_TRUE(st.IsFailedPrecondition());
}

}  // namespace
}  // namespace join
}  // namespace aspen
