#include <memory>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "join/executor.h"
#include "net/topology.h"
#include "tests/reference_join.h"
#include "workload/workload.h"

namespace aspen {
namespace join {
namespace {

using workload::SelectivityParams;
using workload::Workload;

net::Topology Topo(uint64_t seed = 42) {
  return *net::Topology::Random(100, 7.0, seed);
}

ExecutorOptions Opts(Algorithm algo, InnetFeatures f = {},
                     SelectivityParams assumed = {0.5, 0.5, 0.2}) {
  ExecutorOptions o;
  o.algorithm = algo;
  o.features = f;
  o.assumed = assumed;
  o.seed = 1;
  return o;
}

// ---- cross-algorithm result agreement (the central correctness property) ----

struct AlgoCase {
  Algorithm algo;
  InnetFeatures features;
};

class ResultAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, AlgoCase>> {};

TEST_P(ResultAgreementTest, MatchesReferenceCount) {
  auto [query_id, algo_case] = GetParam();
  net::Topology topo = Topo();
  net::Topology intel = net::Topology::IntelLab();
  SelectivityParams sel{0.5, 0.5, 0.2};
  Result<Workload> wl = Status::Internal("unset");
  switch (query_id) {
    case 0:
      wl = Workload::MakeQuery0(&topo, sel, 8, 3, 7);
      break;
    case 1:
      wl = Workload::MakeQuery1(&topo, sel, 3, 7);
      break;
    case 2:
      wl = Workload::MakeQuery2(&topo, sel, 1, 7);
      break;
    case 3:
      wl = Workload::MakeQuery3(&intel, 1, 7);
      break;
  }
  ASSERT_TRUE(wl.ok());
  const int cycles = 40;
  uint64_t expected = testing_util::ReferenceResults(*wl, cycles);
  ASSERT_GT(expected, 0u) << "workload produces no joins; test is vacuous";
  auto stats = core::RunExperiment(*wl, Opts(algo_case.algo,
                                             algo_case.features, sel),
                                   cycles);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->results, expected)
      << stats->algorithm << " on query " << query_id;
}

INSTANTIATE_TEST_SUITE_P(
    QueriesByAlgorithms, ResultAgreementTest,
    ::testing::Combine(
        ::testing::Values(0, 1, 2, 3),
        ::testing::Values(AlgoCase{Algorithm::kNaive, {}},
                          AlgoCase{Algorithm::kBase, {}},
                          AlgoCase{Algorithm::kYang07, {}},
                          AlgoCase{Algorithm::kGht, {}},
                          AlgoCase{Algorithm::kInnet, InnetFeatures::None()},
                          AlgoCase{Algorithm::kInnet, InnetFeatures::Cm()},
                          AlgoCase{Algorithm::kInnet, InnetFeatures::Cmg()},
                          AlgoCase{Algorithm::kInnet,
                                   InnetFeatures::Cmpg()})));

TEST(TimeWindowTest, ExecutorMatchesReferenceWithTimeWindows) {
  // Footnote 5: time-based windows. With gating filters, producers skip
  // cycles, so tuple- and time-based windows genuinely differ; the executor
  // must match the time-based reference.
  net::Topology topo = Topo();
  SelectivityParams sel{0.5, 0.5, 0.2};
  auto wl = Workload::MakeQuery1(&topo, sel, 4, 7);
  ASSERT_TRUE(wl.ok());
  query::JoinQuery q = wl->join_query();
  q.window.time_based = true;
  auto timed = Workload::FromQuery(&topo, q, sel, 7);
  ASSERT_TRUE(timed.ok());
  const int cycles = 40;
  uint64_t expected = testing_util::ReferenceResults(*timed, cycles);
  uint64_t tuple_expected = testing_util::ReferenceResults(*wl, cycles);
  EXPECT_NE(expected, tuple_expected) << "modes indistinguishable: vacuous";
  for (Algorithm algo : {Algorithm::kBase, Algorithm::kInnet}) {
    auto stats = core::RunExperiment(*timed, Opts(algo, {}, sel), cycles);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->results, expected) << stats->algorithm;
  }
}

// ---- lifecycle ---------------------------------------------------------------

TEST(ExecutorTest, RequiresInitiateBeforeRun) {
  net::Topology topo = Topo();
  auto wl = Workload::MakeQuery1(&topo, {0.5, 0.5, 0.2}, 3, 7);
  ASSERT_TRUE(wl.ok());
  JoinExecutor exec(&*wl, Opts(Algorithm::kNaive));
  EXPECT_FALSE(exec.RunCycles(1).ok());
  ASSERT_TRUE(exec.Initiate().ok());
  EXPECT_FALSE(exec.Initiate().ok());  // twice is a bug
  EXPECT_TRUE(exec.RunCycles(1).ok());
}

TEST(ExecutorTest, RunCyclesIsResumable) {
  net::Topology topo = Topo();
  SelectivityParams sel{0.5, 0.5, 0.2};
  auto wl = Workload::MakeQuery1(&topo, sel, 3, 7);
  ASSERT_TRUE(wl.ok());
  JoinExecutor split(&*wl, Opts(Algorithm::kBase));
  ASSERT_TRUE(split.Initiate().ok());
  ASSERT_TRUE(split.RunCycles(20).ok());
  ASSERT_TRUE(split.RunCycles(20).ok());
  auto whole = core::RunExperiment(*wl, Opts(Algorithm::kBase), 40);
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(split.results(), whole->results);
  EXPECT_EQ(split.current_cycle(), 40);
}

// ---- placement properties -----------------------------------------------------

TEST(ExecutorTest, InnetPlacementNeverCostsMoreThanBase) {
  // Section 3.2's claim: with the same initiation, the chosen placement's
  // modeled cost is never above the at-base cost.
  net::Topology topo = Topo();
  SelectivityParams sel{0.5, 0.5, 0.2};
  auto wl = Workload::MakeQuery1(&topo, sel, 3, 7);
  ASSERT_TRUE(wl.ok());
  JoinExecutor exec(&*wl, Opts(Algorithm::kInnet, {}, sel));
  ASSERT_TRUE(exec.Initiate().ok());
  routing::RoutingTree tree = routing::RoutingTree::Build(topo, 0);
  opt::PairCostInputs cost{sel.sigma_s, sel.sigma_t, sel.sigma_st, 3};
  for (const auto& pl : exec.placements()) {
    ASSERT_FALSE(pl.path.empty());
    double base_cost =
        opt::BasePairCost(cost, tree.DepthOf(pl.pair.s), tree.DepthOf(pl.pair.t));
    if (!pl.at_base) {
      double innet_cost = opt::InnetPairCost(
          cost, pl.path_index,
          static_cast<int>(pl.path.size()) - 1 - pl.path_index,
          tree.DepthOf(pl.join_node));
      EXPECT_LT(innet_cost, base_cost) << "pair " << pl.pair.s << "," << pl.pair.t;
    }
  }
}

TEST(ExecutorTest, InnetJoinNodeLiesOnPath) {
  net::Topology topo = Topo();
  SelectivityParams sel{0.2, 0.2, 0.2};
  auto wl = Workload::MakeQuery0(&topo, sel, 10, 3, 7);
  ASSERT_TRUE(wl.ok());
  JoinExecutor exec(&*wl, Opts(Algorithm::kInnet, {}, sel));
  ASSERT_TRUE(exec.Initiate().ok());
  for (const auto& pl : exec.placements()) {
    ASSERT_FALSE(pl.path.empty());
    EXPECT_EQ(pl.path.front(), pl.pair.s);
    EXPECT_EQ(pl.path.back(), pl.pair.t);
    ASSERT_GE(pl.path_index, 0);
    ASSERT_LT(pl.path_index, static_cast<int>(pl.path.size()));
    EXPECT_EQ(pl.path[pl.path_index], pl.join_node);
    for (size_t i = 0; i + 1 < pl.path.size(); ++i) {
      EXPECT_TRUE(topo.AreNeighbors(pl.path[i], pl.path[i + 1]));
    }
  }
}

TEST(ExecutorTest, LowJoinSelectivityPushesJoinsInNetwork) {
  // With rare results, shipping both streams to the base wastes traffic,
  // so most pairwise placements should sit inside the network.
  net::Topology topo = Topo();
  SelectivityParams sel{1.0, 1.0, 0.05};
  auto wl = Workload::MakeQuery0(&topo, sel, 10, 1, 7);
  ASSERT_TRUE(wl.ok());
  JoinExecutor exec(&*wl, Opts(Algorithm::kInnet, {}, sel));
  ASSERT_TRUE(exec.Initiate().ok());
  int in_network = 0;
  for (const auto& pl : exec.placements()) {
    in_network += pl.at_base ? 0 : 1;
  }
  EXPECT_GT(in_network, 5);
}

// ---- traffic properties ---------------------------------------------------------

TEST(ExecutorTest, BasePrefilteringBeatsNaive) {
  net::Topology topo = Topo();
  SelectivityParams sel{0.5, 0.5, 0.2};
  auto make = [&]() { return *Workload::MakeQuery1(&topo, sel, 3, 7); };
  auto wl1 = make();
  auto wl2 = make();
  auto naive = core::RunExperiment(wl1, Opts(Algorithm::kNaive), 60);
  auto base = core::RunExperiment(wl2, Opts(Algorithm::kBase), 60);
  ASSERT_TRUE(naive.ok() && base.ok());
  // Query 1 keeps only a fraction of nodes; pre-filtering pays off fast.
  EXPECT_LT(base->total_bytes, naive->total_bytes);
  EXPECT_LT(base->base_bytes, naive->base_bytes);
}

TEST(ExecutorTest, CombiningReducesTraffic) {
  net::Topology topo = Topo();
  SelectivityParams sel{0.5, 0.5, 0.2};
  auto wl1 = *Workload::MakeQuery1(&topo, sel, 3, 7);
  auto wl2 = *Workload::MakeQuery1(&topo, sel, 3, 7);
  InnetFeatures plain;
  InnetFeatures combining;
  combining.combining = true;
  auto without = core::RunExperiment(wl1, Opts(Algorithm::kInnet, plain, sel),
                                     60);
  auto with = core::RunExperiment(wl2, Opts(Algorithm::kInnet, combining, sel),
                                  60);
  ASSERT_TRUE(without.ok() && with.ok());
  EXPECT_LE(with->total_bytes, without->total_bytes);
  EXPECT_EQ(with->results, without->results);
}

TEST(ExecutorTest, GroupOptNeverWorseThanPlainInnetOnQuery1) {
  // Section 5.3: the MPO techniques match or beat standard Innet.
  net::Topology topo = Topo();
  for (double sigma_s : {0.1, 0.5, 1.0}) {
    SelectivityParams sel{sigma_s, 0.5, 0.2};
    auto wl1 = *Workload::MakeQuery1(&topo, sel, 3, 7);
    auto wl2 = *Workload::MakeQuery1(&topo, sel, 3, 7);
    InnetFeatures cm = InnetFeatures::Cm();
    auto plain = core::RunExperiment(wl1, Opts(Algorithm::kInnet, cm, sel),
                                     80);
    auto grouped = core::RunExperiment(
        wl2, Opts(Algorithm::kInnet, InnetFeatures::Cmg(), sel), 80);
    ASSERT_TRUE(plain.ok() && grouped.ok());
    EXPECT_LE(grouped->total_bytes, plain->total_bytes * 11 / 10)
        << "sigma_s=" << sigma_s;
  }
}

TEST(ExecutorTest, MeshModeCountsMessages) {
  net::Topology topo = Topo();
  SelectivityParams sel{0.5, 0.5, 0.2};
  auto wl = Workload::MakeQuery1(&topo, sel, 3, 7);
  ASSERT_TRUE(wl.ok());
  ExecutorOptions opts = Opts(Algorithm::kGht, {}, sel);
  opts.mesh_mode = true;
  auto stats = core::RunExperiment(*wl, opts, 30);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->total_messages, 0u);
  uint64_t expected = testing_util::ReferenceResults(*wl, 30);
  EXPECT_EQ(stats->results, expected);
}

TEST(ExecutorTest, LossyNetworkStillDeliversMostResults) {
  net::Topology topo = Topo();
  SelectivityParams sel{0.5, 0.5, 0.2};
  auto wl = Workload::MakeQuery1(&topo, sel, 3, 7);
  ASSERT_TRUE(wl.ok());
  ExecutorOptions opts = Opts(Algorithm::kBase, {}, sel);
  opts.loss_prob = 0.05;
  opts.max_retries = 5;
  auto stats = core::RunExperiment(*wl, opts, 40);
  ASSERT_TRUE(stats.ok());
  uint64_t expected = testing_util::ReferenceResults(*wl, 40);
  EXPECT_GT(stats->results, expected * 9 / 10);
  EXPECT_LE(stats->results, expected);
}

// ---- learning (Section 6) --------------------------------------------------------

TEST(LearningTest, WrongEstimatesTriggerMigrations) {
  net::Topology topo = Topo();
  SelectivityParams truth{0.1, 1.0, 0.2};
  SelectivityParams wrong{1.0, 0.1, 0.2};
  auto wl = Workload::MakeQuery0(&topo, truth, 10, 3, 7);
  ASSERT_TRUE(wl.ok());
  ExecutorOptions opts = Opts(Algorithm::kInnet, {}, wrong);
  opts.learning = true;
  opts.reestimate_interval = 10;
  JoinExecutor exec(&*wl, opts);
  ASSERT_TRUE(exec.Initiate().ok());
  ASSERT_TRUE(exec.RunCycles(100).ok());
  EXPECT_GT(exec.migrations(), 0u);
}

TEST(LearningTest, LearningReducesTrafficUnderWrongEstimates) {
  net::Topology topo = Topo();
  SelectivityParams truth{0.1, 1.0, 0.2};
  SelectivityParams wrong{1.0, 0.1, 0.2};
  auto wl1 = *Workload::MakeQuery0(&topo, truth, 10, 3, 7);
  auto wl2 = *Workload::MakeQuery0(&topo, truth, 10, 3, 7);
  ExecutorOptions fixed = Opts(Algorithm::kInnet, {}, wrong);
  ExecutorOptions learn = fixed;
  learn.learning = true;
  learn.reestimate_interval = 10;
  auto without = core::RunExperiment(wl1, fixed, 300);
  auto with = core::RunExperiment(wl2, learn, 300);
  ASSERT_TRUE(without.ok() && with.ok());
  EXPECT_LT(with->total_bytes, without->total_bytes);
  EXPECT_EQ(with->results, without->results);  // migration loses nothing
}

TEST(LearningTest, CorrectEstimatesStayPut) {
  net::Topology topo = Topo();
  SelectivityParams truth{0.5, 0.5, 0.2};
  auto wl = Workload::MakeQuery0(&topo, truth, 10, 3, 7);
  ASSERT_TRUE(wl.ok());
  ExecutorOptions opts = Opts(Algorithm::kInnet, {}, truth);
  opts.learning = true;
  opts.reestimate_interval = 20;
  JoinExecutor exec(&*wl, opts);
  ASSERT_TRUE(exec.Initiate().ok());
  ASSERT_TRUE(exec.RunCycles(120).ok());
  // Estimator noise may cause an occasional move, but placements computed
  // from the true values should be largely stable.
  EXPECT_LE(exec.migrations(), exec.pairs().size());
}

// ---- failure recovery (Section 7) --------------------------------------------------

TEST(FailureTest, JoinNodeDeathFailsOverToBase) {
  net::Topology topo = Topo();
  SelectivityParams sel{1.0, 1.0, 0.2};
  auto wl = Workload::MakeQuery0(&topo, sel, 6, 3, 7);
  ASSERT_TRUE(wl.ok());
  JoinExecutor exec(&*wl, Opts(Algorithm::kInnet, {}, sel));
  ASSERT_TRUE(exec.Initiate().ok());
  // Find an in-network join node to kill.
  net::NodeId victim = -1;
  for (const auto& pl : exec.placements()) {
    if (!pl.at_base && pl.join_node != pl.pair.s && pl.join_node != pl.pair.t) {
      victim = pl.join_node;
      break;
    }
  }
  ASSERT_GE(victim, 0) << "no in-network placement to fail";
  ASSERT_TRUE(exec.RunCycles(20).ok());
  uint64_t before = exec.results();
  exec.FailNode(victim);
  ASSERT_TRUE(exec.RunCycles(40).ok());
  // The affected pairs switched to the base and keep producing.
  bool failed_over = false;
  for (const auto& pl : exec.placements()) {
    if (pl.failed_over) {
      EXPECT_TRUE(pl.at_base);
      failed_over = true;
    }
  }
  EXPECT_TRUE(failed_over);
  EXPECT_GT(exec.results(), before);
  EXPECT_GT(exec.Stats().failovers, 0u);
}

TEST(FailureTest, ResultsKeepFlowingAfterFailure) {
  // Compare against an unfailed run: after the failover settles, per-cycle
  // result production recovers (only in-flight tuples at the failed node
  // are lost).
  net::Topology topo = Topo();
  SelectivityParams sel{1.0, 1.0, 0.2};
  auto wl1 = *Workload::MakeQuery0(&topo, sel, 6, 3, 7);
  auto wl2 = *Workload::MakeQuery0(&topo, sel, 6, 3, 7);
  JoinExecutor healthy(&wl1, Opts(Algorithm::kInnet, {}, sel));
  ASSERT_TRUE(healthy.Initiate().ok());
  ASSERT_TRUE(healthy.RunCycles(100).ok());

  JoinExecutor faulty(&wl2, Opts(Algorithm::kInnet, {}, sel));
  ASSERT_TRUE(faulty.Initiate().ok());
  net::NodeId victim = -1;
  for (const auto& pl : faulty.placements()) {
    if (!pl.at_base && pl.join_node != pl.pair.s && pl.join_node != pl.pair.t) {
      victim = pl.join_node;
      break;
    }
  }
  ASSERT_GE(victim, 0);
  ASSERT_TRUE(faulty.RunCycles(50).ok());
  faulty.FailNode(victim);
  ASSERT_TRUE(faulty.RunCycles(50).ok());
  EXPECT_GT(faulty.results(), healthy.results() * 7 / 10);
}

}  // namespace
}  // namespace join
}  // namespace aspen
