#include <gtest/gtest.h>

#include "opt/centralized.h"
#include "opt/cost_model.h"
#include "opt/group.h"
#include "routing/routing_tree.h"

namespace aspen {
namespace opt {
namespace {

PairCostInputs Cost(double ss, double st, double sst, int w) {
  return PairCostInputs{ss, st, sst, w};
}

TEST(CostModelTest, InnetPairCostFormula) {
  // sigma_s*Dsj + sigma_t*Dtj + (sigma_s+sigma_t)*w*sigma_st*Djr
  EXPECT_DOUBLE_EQ(InnetPairCost(Cost(0.5, 0.25, 0.2, 3), 4, 2, 6),
                   0.5 * 4 + 0.25 * 2 + 0.75 * 3 * 0.2 * 6);
}

TEST(CostModelTest, BasePairCostFormula) {
  EXPECT_DOUBLE_EQ(BasePairCost(Cost(0.5, 0.25, 0.2, 3), 7, 9),
                   0.5 * 7 + 0.25 * 9);
}

TEST(CostModelTest, ThroughBaseFormula) {
  EXPECT_DOUBLE_EQ(
      ThroughBasePairCost(Cost(0.5, 0.25, 0.2, 3), 7, 9),
      0.5 * 7 + (0.5 + 0.75 * 3 * 0.2) * 9);
}

TEST(CostModelTest, JoiningAtProducerWhenPartnerSilent) {
  // sigma_t = 0, sigma_st = 0: all cost is moving s's data, so the model
  // places the join at s itself.
  std::vector<net::NodeId> path{10, 11, 12, 13};
  auto depth = [](net::NodeId id) { return static_cast<int>(id); };
  Placement p = PlaceOnPath(Cost(1.0, 0.0, 0.0, 1), path, depth);
  EXPECT_FALSE(p.at_base);
  EXPECT_EQ(p.join_node, 10);
  EXPECT_DOUBLE_EQ(p.cost, 0.0);
}

TEST(CostModelTest, HighJoinSelectivityPrefersBase) {
  // With w*sigma_st large, every in-network placement pays a heavy
  // result-forwarding term, so the base (no forwarding) wins.
  std::vector<net::NodeId> path{1, 2, 3};
  auto depth = [](net::NodeId) { return 5; };  // all far from base
  Placement p = PlaceOnPath(Cost(1.0, 1.0, 1.0, 4), path, depth);
  EXPECT_TRUE(p.at_base);
  EXPECT_DOUBLE_EQ(p.cost, 1.0 * 5 + 1.0 * 5);
}

TEST(CostModelTest, PlacementIsNeverWorseThanBase) {
  // Property over a parameter sweep: the claim of Section 3.2.
  std::vector<net::NodeId> path{0, 1, 2, 3, 4, 5};
  auto depth = [](net::NodeId id) { return static_cast<int>((id * 7) % 9); };
  for (double ss : {0.1, 0.5, 1.0}) {
    for (double st : {0.1, 0.5, 1.0}) {
      for (double sst : {0.05, 0.2, 1.0}) {
        for (int w : {1, 3}) {
          Placement p = PlaceOnPath(Cost(ss, st, sst, w), path, depth);
          double base =
              BasePairCost(Cost(ss, st, sst, w), depth(0), depth(5));
          EXPECT_LE(p.cost, base);
          if (!p.at_base) {
            EXPECT_LT(p.cost, base);
          }
        }
      }
    }
  }
}

TEST(CostModelTest, AsymmetricRatesPullJoinTowardChattySide) {
  // sigma_s >> sigma_t: moving s's heavy stream should be short, so the
  // join node sits near s.
  std::vector<net::NodeId> path{0, 1, 2, 3, 4, 5, 6};
  auto depth = [](net::NodeId) { return 10; };
  Placement near_s = PlaceOnPath(Cost(1.0, 0.1, 0.0, 1), path, depth);
  Placement near_t = PlaceOnPath(Cost(0.1, 1.0, 0.0, 1), path, depth);
  ASSERT_FALSE(near_s.at_base);
  ASSERT_FALSE(near_t.at_base);
  EXPECT_LT(near_s.path_index, near_t.path_index);
}

TEST(CostModelTest, GroupDeltaCpSign) {
  // A producer two hops from its join node and one hop from the base
  // prefers the base (positive delta) when result forwarding is free.
  std::vector<ProducerJoinNode> joins{{2, 5, 1}};
  EXPECT_GT(GroupDeltaCp(1.0, 0.0, 1, joins, 1), 0.0);
  // A producer adjacent to its join node and far from the base prefers
  // in-network (negative delta).
  std::vector<ProducerJoinNode> near{{1, 5, 1}};
  EXPECT_LT(GroupDeltaCp(1.0, 0.01, 1, near, 8), 0.0);
}

TEST(CostModelTest, GroupDeltaScalesWithPairCount) {
  std::vector<ProducerJoinNode> one{{1, 5, 1}};
  std::vector<ProducerJoinNode> many{{1, 5, 4}};
  EXPECT_LT(GroupDeltaCp(1.0, 0.2, 3, one, 3),
            GroupDeltaCp(1.0, 0.2, 3, many, 3));
}

TEST(CostModelTest, Table3AlgorithmCosts) {
  AlgorithmCostInputs in;
  in.pair = Cost(0.5, 0.5, 0.2, 1);
  in.d_sr = {2, 3};
  in.d_tr = {4};
  in.num_s = 2;
  in.num_t = 1;
  in.phi_s_to_t = 0.5;
  in.phi_t_to_s = 1.0;
  in.pairs = {{1, 1, 3}, {2, 2, 3}};
  EXPECT_DOUBLE_EQ(NaiveComputationCost(in), 0.5 * 5 + 0.5 * 4);
  EXPECT_DOUBLE_EQ(BaseComputationCost(in), 0.5 * 0.5 * 5 + 0.5 * 4);
  EXPECT_DOUBLE_EQ(Yang07ComputationCost(in),
                   0.5 * 5 + (0.5 * 2.0 / 1.0 + 1.0 * 0.2) * 4);
  double pairwise = InnetPairCost(in.pair, 1, 1, 3) +
                    InnetPairCost(in.pair, 2, 2, 3);
  EXPECT_DOUBLE_EQ(InnetComputationCost(in), pairwise);
  EXPECT_DOUBLE_EQ(GhtComputationCost(in), pairwise);
}

// ---- groups -------------------------------------------------------------------

TEST(GroupTest, DiscoverGroupsSeparatesComponents) {
  // Two disjoint complete-bipartite components.
  std::vector<std::pair<net::NodeId, net::NodeId>> pairs{
      {1, 10}, {1, 11}, {2, 10}, {2, 11},  // component A
      {5, 20},                             // component B
  };
  auto groups = DiscoverGroups(pairs);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].coordinator, 1);
  EXPECT_EQ(groups[0].s_members, (std::vector<net::NodeId>{1, 2}));
  EXPECT_EQ(groups[0].t_members, (std::vector<net::NodeId>{10, 11}));
  EXPECT_TRUE(IsCompleteBipartite(groups[0]));
  EXPECT_EQ(groups[1].coordinator, 5);
  EXPECT_TRUE(IsCompleteBipartite(groups[1]));
}

TEST(GroupTest, TransitiveClosureMergesChains) {
  // s1-t1, t1-s2, s2-t2 are one component even without the closing edge.
  std::vector<std::pair<net::NodeId, net::NodeId>> pairs{
      {1, 10}, {2, 10}, {2, 11}};
  auto groups = DiscoverGroups(pairs);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_FALSE(IsCompleteBipartite(groups[0]));  // {1,11} edge missing
}

TEST(GroupTest, NodeInBothRelations) {
  // Node 3 appears as S in one pair and as T in another: the S and T
  // occurrences are distinct endpoints.
  std::vector<std::pair<net::NodeId, net::NodeId>> pairs{{3, 4}, {5, 3}};
  auto groups = DiscoverGroups(pairs);
  EXPECT_EQ(groups.size(), 2u);
}

TEST(GroupTest, DecideGroup) {
  EXPECT_EQ(DecideGroup({-1.0, 0.5}), GroupDecision::kInNetwork);
  EXPECT_EQ(DecideGroup({1.0, -0.5}), GroupDecision::kAtBase);
  EXPECT_EQ(DecideGroup({}), GroupDecision::kAtBase);  // sum 0: tie -> base
}

// ---- centralized baseline -------------------------------------------------------

TEST(CentralizedTest, OptimalPlacementBeatsAnyPathPlacement) {
  auto topo = *net::Topology::Random(80, 7.0, 13);
  PairCostInputs cost = Cost(0.5, 0.5, 0.2, 3);
  routing::RoutingTree tree = routing::RoutingTree::Build(topo, 0);
  for (auto [s, t] : std::vector<std::pair<net::NodeId, net::NodeId>>{
           {5, 70}, {12, 33}, {1, 79}}) {
    Placement oracle = OptimalPlacement(topo, cost, s, t);
    auto path = topo.ShortestPath(s, t);
    Placement on_path = PlaceOnPath(
        cost, path, [&](net::NodeId id) { return tree.DepthOf(id); });
    double oracle_traffic = PlacementTraffic(topo, cost, s, t, oracle);
    double path_traffic = PlacementTraffic(topo, cost, s, t, on_path);
    EXPECT_LE(oracle_traffic, path_traffic + 1e-9);
  }
}

TEST(CentralizedTest, InitiationScalesWithNetworkSize) {
  auto small = *net::Topology::Random(40, 7.0, 3);
  auto large = *net::Topology::Random(120, 7.0, 3);
  auto t_small = routing::RoutingTree::Build(small, 0);
  auto t_large = routing::RoutingTree::Build(large, 0);
  auto c_small = CentralizedInitiation(small, t_small, 4, {1, 2, 3});
  auto c_large = CentralizedInitiation(large, t_large, 4, {1, 2, 3});
  EXPECT_GT(c_large.total_bytes, c_small.total_bytes);
  EXPECT_GT(c_large.base_bytes, c_small.base_bytes);
  EXPECT_GT(c_large.latency_cycles, c_small.latency_cycles);
  EXPECT_GT(c_small.plan_bytes, 0);
}

}  // namespace
}  // namespace opt
}  // namespace aspen
