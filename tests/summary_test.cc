#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "routing/summary.h"

namespace aspen {
namespace routing {
namespace {

// ---- parameterized no-false-negative property over all scalar summaries ----

class ScalarSummaryTest : public ::testing::TestWithParam<SummaryType> {};

TEST_P(ScalarSummaryTest, NeverForgetsInsertedValues) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    auto summary = ScalarSummary::Make(GetParam());
    std::set<int32_t> inserted;
    for (int i = 0; i < 30; ++i) {
      int32_t v = static_cast<int32_t>(rng.UniformRange(-500, 500));
      summary->Insert(v);
      inserted.insert(v);
    }
    for (int32_t v : inserted) {
      EXPECT_TRUE(summary->MayContain(v)) << "lost value " << v;
      EXPECT_TRUE(summary->MayContainRange(v, v));
      EXPECT_TRUE(summary->MayContainRange(v - 3, v + 3));
    }
  }
}

TEST_P(ScalarSummaryTest, MergePreservesBothSides) {
  Rng rng(23);
  auto a = ScalarSummary::Make(GetParam());
  auto b = ScalarSummary::Make(GetParam());
  std::vector<int32_t> va, vb;
  for (int i = 0; i < 16; ++i) {
    va.push_back(static_cast<int32_t>(rng.UniformRange(0, 1000)));
    vb.push_back(static_cast<int32_t>(rng.UniformRange(0, 1000)));
    a->Insert(va.back());
    b->Insert(vb.back());
  }
  a->Merge(*b);
  for (int32_t v : va) EXPECT_TRUE(a->MayContain(v));
  for (int32_t v : vb) EXPECT_TRUE(a->MayContain(v));
}

TEST_P(ScalarSummaryTest, CloneIsIndependent) {
  auto a = ScalarSummary::Make(GetParam());
  a->Insert(42);
  auto b = a->Clone();
  b->Insert(99);
  EXPECT_TRUE(b->MayContain(42));
  EXPECT_TRUE(b->MayContain(99));
  if (GetParam() != SummaryType::kBloom) {
    EXPECT_FALSE(a->MayContain(99));  // clone must not alias the original
  }
}

TEST_P(ScalarSummaryTest, ReportsItsType) {
  EXPECT_EQ(ScalarSummary::Make(GetParam())->type(), GetParam());
}

TEST_P(ScalarSummaryTest, SizeBytesPositiveAfterInsert) {
  auto s = ScalarSummary::Make(GetParam());
  s->Insert(1);
  EXPECT_GT(s->SizeBytes(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllTypes, ScalarSummaryTest,
                         ::testing::Values(SummaryType::kBloom,
                                           SummaryType::kInterval,
                                           SummaryType::kExact));

// ---- type-specific behaviour ------------------------------------------------

TEST(BloomSummaryTest, LowFalsePositiveRateAtModerateFill) {
  BloomSummary bloom;
  for (int32_t v = 0; v < 16; ++v) bloom.Insert(v * 7919);
  int false_pos = 0;
  const int probes = 2000;
  for (int i = 0; i < probes; ++i) {
    // Probe values disjoint from the inserted set.
    if (bloom.MayContain(1000000 + i)) ++false_pos;
  }
  EXPECT_LT(static_cast<double>(false_pos) / probes, 0.08);
}

TEST(BloomSummaryTest, FillRatioGrowsWithInserts) {
  BloomSummary bloom;
  EXPECT_DOUBLE_EQ(bloom.FillRatio(), 0.0);
  bloom.Insert(1);
  double one = bloom.FillRatio();
  EXPECT_GT(one, 0.0);
  for (int i = 2; i < 40; ++i) bloom.Insert(i);
  EXPECT_GT(bloom.FillRatio(), one);
}

TEST(BloomSummaryTest, LargeRangeIsConservative) {
  BloomSummary bloom;  // empty
  EXPECT_TRUE(bloom.MayContainRange(0, 10000));  // cannot prune wide ranges
  EXPECT_FALSE(bloom.MayContainRange(5, 10));    // small ranges are probed
}

TEST(IntervalSummaryTest, TracksBounds) {
  IntervalSummary iv;
  EXPECT_TRUE(iv.empty());
  iv.Insert(10);
  iv.Insert(-5);
  iv.Insert(3);
  EXPECT_EQ(iv.lo(), -5);
  EXPECT_EQ(iv.hi(), 10);
  EXPECT_TRUE(iv.MayContain(0));
  EXPECT_FALSE(iv.MayContain(11));
  EXPECT_FALSE(iv.MayContain(-6));
  EXPECT_TRUE(iv.MayContainRange(9, 20));
  EXPECT_FALSE(iv.MayContainRange(11, 20));
}

TEST(IntervalSummaryTest, MergeWithEmptyIsNoop) {
  IntervalSummary a, b;
  a.Insert(5);
  a.Merge(b);
  EXPECT_EQ(a.lo(), 5);
  EXPECT_EQ(a.hi(), 5);
}

TEST(ExactSummaryTest, ExactMembership) {
  ExactSummary e;
  e.Insert(3);
  e.Insert(1);
  e.Insert(3);  // duplicate
  EXPECT_TRUE(e.MayContain(1));
  EXPECT_TRUE(e.MayContain(3));
  EXPECT_FALSE(e.MayContain(2));
  EXPECT_EQ(e.SizeBytes(), 4);  // two distinct 16-bit values
  EXPECT_TRUE(e.MayContainRange(2, 3));
  EXPECT_FALSE(e.MayContainRange(4, 100));
}

// ---- R-tree -----------------------------------------------------------------

TEST(RTreeSummaryTest, ContainsInsertedPoints) {
  Rng rng(31);
  RTreeSummary rt(4);
  std::vector<net::Point> pts;
  for (int i = 0; i < 50; ++i) {
    net::Point p{rng.UniformDouble() * 100, rng.UniformDouble() * 100};
    rt.Insert(p);
    pts.push_back(p);
  }
  EXPECT_LE(rt.num_rects(), 4);
  for (const auto& p : pts) {
    EXPECT_TRUE(rt.MayContainPoint(p));
    EXPECT_TRUE(rt.MayIntersectCircle(p, 0.001));
  }
}

TEST(RTreeSummaryTest, CircleIntersectionConservative) {
  RTreeSummary rt(4);
  rt.Insert({10, 10});
  // A disk centered far away with radius short of the point: no intersect.
  EXPECT_FALSE(rt.MayIntersectCircle({50, 10}, 30));
  EXPECT_TRUE(rt.MayIntersectCircle({50, 10}, 41));
}

TEST(RTreeSummaryTest, MergeKeepsCoverage) {
  RTreeSummary a(3), b(3);
  a.Insert({1, 1});
  a.Insert({2, 2});
  b.Insert({90, 90});
  a.Merge(b);
  EXPECT_TRUE(a.MayContainPoint({1, 1}));
  EXPECT_TRUE(a.MayContainPoint({90, 90}));
  EXPECT_LE(a.num_rects(), 3);
}

TEST(RTreeSummaryTest, EmptyIntersectsNothing) {
  RTreeSummary rt(4);
  EXPECT_TRUE(rt.empty());
  EXPECT_FALSE(rt.MayIntersectCircle({0, 0}, 1000));
  EXPECT_FALSE(rt.MayContainPoint({0, 0}));
}

}  // namespace
}  // namespace routing
}  // namespace aspen
