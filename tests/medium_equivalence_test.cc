// Satellite coverage for the multi-query SharedMedium path: with packet
// merging disabled and a lossless radio, attaching executors to one medium
// must not change any query's behavior — per-query traffic (isolated by the
// TrafficStats query dimension) and results must be byte-for-byte identical
// to the same queries run on owned networks.

#include <gtest/gtest.h>

#include "join/executor.h"
#include "join/medium.h"
#include "net/topology.h"
#include "workload/workload.h"

namespace aspen {
namespace join {
namespace {

using workload::SelectivityParams;
using workload::Workload;

struct SoloVsShared {
  RunStats solo1, solo2;
  RunStats shared1, shared2;
  uint64_t medium_total_bytes = 0;
};

SoloVsShared RunBoth(Algorithm algo, InnetFeatures features, int cycles) {
  auto topo = *net::Topology::Random(80, 7.0, 11);
  SelectivityParams sel{0.5, 0.5, 0.2};
  ExecutorOptions opts;
  opts.algorithm = algo;
  opts.features = features;
  opts.assumed = sel;

  SoloVsShared out;
  {
    auto wl = *Workload::MakeQuery1(&topo, sel, 3, 7);
    JoinExecutor solo(&wl, opts);
    EXPECT_TRUE(solo.Initiate().ok());
    EXPECT_TRUE(solo.RunCycles(cycles).ok());
    out.solo1 = solo.Stats();
  }
  {
    auto wl = *Workload::MakeQuery2(&topo, sel, 3, 9);
    JoinExecutor solo(&wl, opts);
    EXPECT_TRUE(solo.Initiate().ok());
    EXPECT_TRUE(solo.RunCycles(cycles).ok());
    out.solo2 = solo.Stats();
  }
  auto q1 = *Workload::MakeQuery1(&topo, sel, 3, 7);
  auto q2 = *Workload::MakeQuery2(&topo, sel, 3, 9);
  SharedMedium medium(&topo, {});  // merging disabled, lossless
  auto r1 = medium.TryAddQuery(&q1, opts);
  auto r2 = medium.TryAddQuery(&q2, opts);
  EXPECT_TRUE(r1.ok() && r2.ok());
  JoinExecutor* e1 = *r1;
  JoinExecutor* e2 = *r2;
  EXPECT_TRUE(medium.InitiateAll().ok());
  EXPECT_TRUE(medium.RunCycles(cycles).ok());
  out.shared1 = e1->Stats();
  out.shared2 = e2->Stats();
  out.medium_total_bytes = medium.stats().TotalBytesSent();
  return out;
}

void ExpectPerQueryIdentical(const RunStats& solo, const RunStats& shared) {
  // On an owned network the whole network is one query, so the solo run's
  // query-isolated counters equal its totals; on the medium the query
  // dimension must isolate exactly the same traffic.
  EXPECT_EQ(solo.query_bytes, solo.total_bytes);
  EXPECT_EQ(solo.query_messages, solo.total_messages);
  EXPECT_EQ(shared.query_bytes, solo.total_bytes);
  EXPECT_EQ(shared.query_messages, solo.total_messages);
  EXPECT_EQ(shared.results, solo.results);
  EXPECT_DOUBLE_EQ(shared.avg_result_delay_cycles,
                   solo.avg_result_delay_cycles);
  EXPECT_DOUBLE_EQ(shared.max_result_delay_cycles,
                   solo.max_result_delay_cycles);
  EXPECT_EQ(shared.migrations, solo.migrations);
  EXPECT_EQ(shared.failovers, solo.failovers);
  EXPECT_EQ(shared.sampling_cycles, solo.sampling_cycles);
}

TEST(MediumEquivalenceTest, BasePerQueryStatsMatchOwnedNetworks) {
  SoloVsShared r = RunBoth(Algorithm::kBase, {}, 25);
  ExpectPerQueryIdentical(r.solo1, r.shared1);
  ExpectPerQueryIdentical(r.solo2, r.shared2);
  // Without merging, medium-wide traffic is exactly the sum of the queries.
  EXPECT_EQ(r.medium_total_bytes,
            r.solo1.total_bytes + r.solo2.total_bytes);
}

TEST(MediumEquivalenceTest, InnetPerQueryStatsMatchOwnedNetworks) {
  // Exploration and nominations run on the computed plane (charged via the
  // ambient query scope), so even Innet initiation must attribute exactly.
  SoloVsShared r = RunBoth(Algorithm::kInnet, InnetFeatures::None(), 25);
  ExpectPerQueryIdentical(r.solo1, r.shared1);
  ExpectPerQueryIdentical(r.solo2, r.shared2);
  EXPECT_EQ(r.medium_total_bytes,
            r.solo1.total_bytes + r.solo2.total_bytes);
}

TEST(MediumEquivalenceTest, YangPerQueryStatsMatchOwnedNetworks) {
  SoloVsShared r = RunBoth(Algorithm::kYang07, {}, 25);
  ExpectPerQueryIdentical(r.solo1, r.shared1);
  ExpectPerQueryIdentical(r.solo2, r.shared2);
}

TEST(MediumEquivalenceTest, StaggeredInitiationMatchesOwnedRunAtSameCycle) {
  // Service-mode admission: a query added at cycle N on a running medium
  // must behave exactly like an owned-network run whose clock was seeked
  // to N — sampling is a pure function of the cycle number, and on a
  // lossless non-merging medium the co-tenant query cannot interfere.
  const int kStagger = 12;
  const int kTail = 20;
  auto topo = *net::Topology::Random(80, 7.0, 11);
  SelectivityParams sel{0.5, 0.5, 0.2};
  ExecutorOptions opts;
  opts.algorithm = Algorithm::kInnet;
  opts.assumed = sel;

  RunStats solo;
  {
    auto wl = *Workload::MakeQuery2(&topo, sel, 3, 9);
    JoinExecutor exec(&wl, opts);
    ASSERT_TRUE(exec.Initiate().ok());
    exec.scheduler()->SeekTo(kStagger);
    ASSERT_TRUE(exec.RunCycles(kTail).ok());
    solo = exec.Stats();
  }

  auto q1 = *Workload::MakeQuery1(&topo, sel, 3, 7);
  auto q2 = *Workload::MakeQuery2(&topo, sel, 3, 9);
  SharedMedium medium(&topo, {});  // merging disabled, lossless
  ASSERT_TRUE(medium.TryAddQuery(&q1, opts).ok());
  ASSERT_TRUE(medium.InitiateAll().ok());
  ASSERT_TRUE(medium.RunCycles(kStagger).ok());
  // Mid-run admission on the shared clock.
  auto late_admitted = medium.TryAddQuery(&q2, opts);
  ASSERT_TRUE(late_admitted.ok());
  JoinExecutor* late = *late_admitted;
  ASSERT_TRUE(late->Initiate().ok());
  EXPECT_EQ(medium.scheduler()->cycle(), kStagger);
  ASSERT_TRUE(medium.RunCycles(kTail).ok());

  RunStats shared = late->Stats();
  EXPECT_EQ(shared.query_bytes, solo.total_bytes);
  EXPECT_EQ(shared.query_messages, solo.total_messages);
  EXPECT_EQ(shared.results, solo.results);
  EXPECT_DOUBLE_EQ(shared.avg_result_delay_cycles,
                   solo.avg_result_delay_cycles);
  EXPECT_DOUBLE_EQ(shared.max_result_delay_cycles,
                   solo.max_result_delay_cycles);
  EXPECT_EQ(shared.sampling_cycles, solo.sampling_cycles);
}

TEST(MediumEquivalenceTest, RemoveQueryReturnsOccupancyToBaseline) {
  // Teardown: removing a query must release everything it pinned in the
  // shared data plane — after the next epoch-safe sweep, live route and
  // payload occupancy return exactly to the remaining query's baseline.
  auto topo = *net::Topology::Random(80, 7.0, 11);
  SelectivityParams sel{0.5, 0.5, 0.2};
  ExecutorOptions opts;
  opts.algorithm = Algorithm::kInnet;
  opts.features = InnetFeatures::Cm();  // exercise multicast routes too
  opts.assumed = sel;

  auto q1 = *Workload::MakeQuery1(&topo, sel, 3, 7);
  auto q2 = *Workload::MakeQuery2(&topo, sel, 3, 9);
  SharedMedium medium(&topo, {});
  auto r1 = medium.TryAddQuery(&q1, opts);
  ASSERT_TRUE(r1.ok());
  JoinExecutor* e1 = *r1;
  ASSERT_TRUE(medium.InitiateAll().ok());
  ASSERT_TRUE(medium.RunCycles(10).ok());
  const net::RouteTable& routes = medium.network().routes();
  const size_t base_routes = routes.live_paths();
  const size_t base_mcasts = routes.live_multicasts();
  ASSERT_GT(base_routes, 0u);

  auto r2 = medium.TryAddQuery(&q2, opts);
  ASSERT_TRUE(r2.ok());
  JoinExecutor* e2 = *r2;
  const int q2_id = e2->query_id();
  ASSERT_TRUE(e2->Initiate().ok());
  ASSERT_TRUE(medium.RunCycles(10).ok());
  EXPECT_GT(routes.live_paths(), base_routes);
  const uint64_t q2_results = e2->results();

  ASSERT_TRUE(medium.RemoveQuery(q2_id).ok());
  EXPECT_EQ(medium.num_queries(), 1);
  EXPECT_EQ(medium.FindExecutor(q2_id), nullptr);
  // A second removal of the same id is a clean error.
  EXPECT_TRUE(medium.RemoveQuery(q2_id).IsNotFound());
  // The ledger retains the departed query's finalized metrics.
  ASSERT_EQ(medium.ledger().size(), 1u);
  EXPECT_EQ(medium.ledger()[0].query_id, q2_id);
  EXPECT_EQ(medium.ledger()[0].stats.results, q2_results);
  EXPECT_EQ(medium.ledger()[0].admitted_cycle, 10);
  EXPECT_EQ(medium.ledger()[0].removed_cycle, 20);

  // Run on: the sweep fires at the next quiet epoch boundary and q1 keeps
  // executing undisturbed.
  ASSERT_TRUE(medium.RunCycles(5).ok());
  EXPECT_EQ(routes.live_paths(), base_routes);
  EXPECT_EQ(routes.live_multicasts(), base_mcasts);
  EXPECT_EQ(medium.network().payloads().live(), 0u);
  EXPECT_EQ(medium.network().frames_in_flight(), 0);
  EXPECT_GT(e1->results(), 0u);

  // The freed id is recycled once its traffic has drained, with counters
  // zeroed for the new tenant.
  auto q3 = *Workload::MakeQuery2(&topo, sel, 3, 13);
  auto r3 = medium.TryAddQuery(&q3, opts);
  ASSERT_TRUE(r3.ok());
  JoinExecutor* e3 = *r3;
  EXPECT_EQ(e3->query_id(), q2_id);
  EXPECT_EQ(medium.stats().QueryBytesSent(q2_id), 0u);
  ASSERT_TRUE(e3->Initiate().ok());
  ASSERT_TRUE(medium.RunCycles(3).ok());
  EXPECT_GT(medium.stats().QueryBytesSent(q2_id), 0u);
}

TEST(MediumEquivalenceTest, SharedPlacementAttachMatchesSoloReference) {
  // tree_mode=shared: a second identical query attaches to the first's
  // placements (one evaluation, fanned out) instead of running its own.
  // Both queries must report exactly the results of an unshared solo run
  // of the same workload — sharing changes traffic, never answers.
  const int kCycles = 25;
  auto topo = *net::Topology::Random(80, 7.0, 11);
  SelectivityParams sel{0.5, 0.5, 0.2};
  ExecutorOptions opts;
  opts.algorithm = Algorithm::kInnet;
  opts.features = InnetFeatures::Cm();
  opts.assumed = sel;
  opts.knobs.tree_mode = common::TreeMode::kShared;

  RunStats solo;
  {
    auto wl = *Workload::MakeQuery1(&topo, sel, 3, 7);
    JoinExecutor exec(&wl, opts);
    ASSERT_TRUE(exec.Initiate().ok());
    ASSERT_TRUE(exec.RunCycles(kCycles).ok());
    solo = exec.Stats();
  }

  auto q1 = *Workload::MakeQuery1(&topo, sel, 3, 7);
  auto q2 = *Workload::MakeQuery1(&topo, sel, 3, 7);
  MediumOptions mopts;
  mopts.knobs.tree_mode = common::TreeMode::kShared;
  SharedMedium medium(&topo, {}, mopts);
  auto r1 = medium.TryAddQuery(&q1, opts);
  auto r2 = medium.TryAddQuery(&q2, opts);
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_TRUE(medium.InitiateAll().ok());
  EXPECT_GT(medium.num_shared_placements(), 0);
  ASSERT_TRUE(medium.RunCycles(kCycles).ok());

  const RunStats s1 = (*r1)->Stats();
  const RunStats s2 = (*r2)->Stats();
  EXPECT_EQ(s1.results, solo.results);
  EXPECT_EQ(s2.results, solo.results);
  EXPECT_DOUBLE_EQ(s1.avg_result_delay_cycles, solo.avg_result_delay_cycles);
  EXPECT_DOUBLE_EQ(s2.avg_result_delay_cycles, solo.avg_result_delay_cycles);
  EXPECT_EQ(s1.sampling_cycles, solo.sampling_cycles);
  EXPECT_EQ(s2.sampling_cycles, solo.sampling_cycles);
  // The subscriber's own traffic is a fraction of a full solo run: its
  // data plane is suppressed, results arrive via the owner's evaluation.
  EXPECT_LT(s2.query_bytes, solo.total_bytes);
  // Medium-wide, sharing beats two independent tenants.
  EXPECT_LT(medium.stats().TotalBytesSent(), 2 * solo.total_bytes);
}

TEST(MediumEquivalenceTest, SharedPlacementDetachPromotesSubscriber) {
  // Owner departure mid-run: the smallest subscriber adopts the placement
  // (geometry, routes, window state) and continues producing exactly the
  // results a never-shared solo run would have over the same cycles.
  const int kHead = 10, kTail = 15;
  auto topo = *net::Topology::Random(80, 7.0, 11);
  SelectivityParams sel{0.5, 0.5, 0.2};
  ExecutorOptions opts;
  opts.algorithm = Algorithm::kInnet;
  opts.features = InnetFeatures::Cm();
  opts.assumed = sel;
  opts.knobs.tree_mode = common::TreeMode::kShared;

  RunStats solo;
  {
    auto wl = *Workload::MakeQuery1(&topo, sel, 3, 7);
    JoinExecutor exec(&wl, opts);
    ASSERT_TRUE(exec.Initiate().ok());
    ASSERT_TRUE(exec.RunCycles(kHead + kTail).ok());
    solo = exec.Stats();
  }

  auto q1 = *Workload::MakeQuery1(&topo, sel, 3, 7);
  auto q2 = *Workload::MakeQuery1(&topo, sel, 3, 7);
  MediumOptions mopts;
  mopts.knobs.tree_mode = common::TreeMode::kShared;
  SharedMedium medium(&topo, {}, mopts);
  auto r1 = medium.TryAddQuery(&q1, opts);
  auto r2 = medium.TryAddQuery(&q2, opts);
  ASSERT_TRUE(r1.ok() && r2.ok());
  JoinExecutor* owner = *r1;
  JoinExecutor* sub = *r2;
  ASSERT_TRUE(medium.InitiateAll().ok());
  ASSERT_GT(medium.num_shared_placements(), 0);
  ASSERT_TRUE(medium.RunCycles(kHead).ok());

  // The first-admitted query owns every shared placement; remove it.
  ASSERT_TRUE(medium.RemoveQuery(owner->query_id()).ok());
  EXPECT_EQ(medium.num_shared_placements(), 0);
  ASSERT_TRUE(medium.RunCycles(kTail).ok());

  const RunStats after = sub->Stats();
  EXPECT_EQ(after.results, solo.results);
  EXPECT_DOUBLE_EQ(after.avg_result_delay_cycles,
                   solo.avg_result_delay_cycles);
  EXPECT_EQ(after.sampling_cycles, solo.sampling_cycles);
}

}  // namespace
}  // namespace join
}  // namespace aspen
