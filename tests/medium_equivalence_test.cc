// Satellite coverage for the multi-query SharedMedium path: with packet
// merging disabled and a lossless radio, attaching executors to one medium
// must not change any query's behavior — per-query traffic (isolated by the
// TrafficStats query dimension) and results must be byte-for-byte identical
// to the same queries run on owned networks.

#include <gtest/gtest.h>

#include "join/executor.h"
#include "join/medium.h"
#include "net/topology.h"
#include "workload/workload.h"

namespace aspen {
namespace join {
namespace {

using workload::SelectivityParams;
using workload::Workload;

struct SoloVsShared {
  RunStats solo1, solo2;
  RunStats shared1, shared2;
  uint64_t medium_total_bytes = 0;
};

SoloVsShared RunBoth(Algorithm algo, InnetFeatures features, int cycles) {
  auto topo = *net::Topology::Random(80, 7.0, 11);
  SelectivityParams sel{0.5, 0.5, 0.2};
  ExecutorOptions opts;
  opts.algorithm = algo;
  opts.features = features;
  opts.assumed = sel;

  SoloVsShared out;
  {
    auto wl = *Workload::MakeQuery1(&topo, sel, 3, 7);
    JoinExecutor solo(&wl, opts);
    EXPECT_TRUE(solo.Initiate().ok());
    EXPECT_TRUE(solo.RunCycles(cycles).ok());
    out.solo1 = solo.Stats();
  }
  {
    auto wl = *Workload::MakeQuery2(&topo, sel, 3, 9);
    JoinExecutor solo(&wl, opts);
    EXPECT_TRUE(solo.Initiate().ok());
    EXPECT_TRUE(solo.RunCycles(cycles).ok());
    out.solo2 = solo.Stats();
  }
  auto q1 = *Workload::MakeQuery1(&topo, sel, 3, 7);
  auto q2 = *Workload::MakeQuery2(&topo, sel, 3, 9);
  SharedMedium medium(&topo, {});  // merging disabled, lossless
  JoinExecutor* e1 = medium.AddQuery(&q1, opts);
  JoinExecutor* e2 = medium.AddQuery(&q2, opts);
  EXPECT_TRUE(medium.InitiateAll().ok());
  EXPECT_TRUE(medium.RunCycles(cycles).ok());
  out.shared1 = e1->Stats();
  out.shared2 = e2->Stats();
  out.medium_total_bytes = medium.stats().TotalBytesSent();
  return out;
}

void ExpectPerQueryIdentical(const RunStats& solo, const RunStats& shared) {
  // On an owned network the whole network is one query, so the solo run's
  // query-isolated counters equal its totals; on the medium the query
  // dimension must isolate exactly the same traffic.
  EXPECT_EQ(solo.query_bytes, solo.total_bytes);
  EXPECT_EQ(solo.query_messages, solo.total_messages);
  EXPECT_EQ(shared.query_bytes, solo.total_bytes);
  EXPECT_EQ(shared.query_messages, solo.total_messages);
  EXPECT_EQ(shared.results, solo.results);
  EXPECT_DOUBLE_EQ(shared.avg_result_delay_cycles,
                   solo.avg_result_delay_cycles);
  EXPECT_DOUBLE_EQ(shared.max_result_delay_cycles,
                   solo.max_result_delay_cycles);
  EXPECT_EQ(shared.migrations, solo.migrations);
  EXPECT_EQ(shared.failovers, solo.failovers);
  EXPECT_EQ(shared.sampling_cycles, solo.sampling_cycles);
}

TEST(MediumEquivalenceTest, BasePerQueryStatsMatchOwnedNetworks) {
  SoloVsShared r = RunBoth(Algorithm::kBase, {}, 25);
  ExpectPerQueryIdentical(r.solo1, r.shared1);
  ExpectPerQueryIdentical(r.solo2, r.shared2);
  // Without merging, medium-wide traffic is exactly the sum of the queries.
  EXPECT_EQ(r.medium_total_bytes,
            r.solo1.total_bytes + r.solo2.total_bytes);
}

TEST(MediumEquivalenceTest, InnetPerQueryStatsMatchOwnedNetworks) {
  // Exploration and nominations run on the computed plane (charged via the
  // ambient query scope), so even Innet initiation must attribute exactly.
  SoloVsShared r = RunBoth(Algorithm::kInnet, InnetFeatures::None(), 25);
  ExpectPerQueryIdentical(r.solo1, r.shared1);
  ExpectPerQueryIdentical(r.solo2, r.shared2);
  EXPECT_EQ(r.medium_total_bytes,
            r.solo1.total_bytes + r.solo2.total_bytes);
}

TEST(MediumEquivalenceTest, YangPerQueryStatsMatchOwnedNetworks) {
  SoloVsShared r = RunBoth(Algorithm::kYang07, {}, 25);
  ExpectPerQueryIdentical(r.solo1, r.shared1);
  ExpectPerQueryIdentical(r.solo2, r.shared2);
}

}  // namespace
}  // namespace join
}  // namespace aspen
