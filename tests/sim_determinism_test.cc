// Determinism guarantees of the simulation kernel: the same seed must yield
// identical RunStats across repeated runs, and RunAveraged must produce
// bit-identical aggregates for any thread count (repetitions are
// independent; aggregation is serialized in seed order).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.h"
#include "join/executor.h"
#include "join/medium.h"
#include "net/topology.h"
#include "sim/cycle_scheduler.h"
#include "workload/workload.h"

namespace aspen {
namespace {

using workload::SelectivityParams;
using workload::Workload;

void ExpectIdentical(const join::RunStats& a, const join::RunStats& b) {
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.base_bytes, b.base_bytes);
  EXPECT_EQ(a.max_node_bytes, b.max_node_bytes);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.initiation_bytes, b.initiation_bytes);
  EXPECT_EQ(a.computation_bytes, b.computation_bytes);
  EXPECT_EQ(a.query_bytes, b.query_bytes);
  EXPECT_EQ(a.results, b.results);
  EXPECT_DOUBLE_EQ(a.avg_result_delay_cycles, b.avg_result_delay_cycles);
  EXPECT_DOUBLE_EQ(a.max_result_delay_cycles, b.max_result_delay_cycles);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.failovers, b.failovers);
  EXPECT_EQ(a.sampling_cycles, b.sampling_cycles);
}

TEST(SchedulerDeterminismTest, SameSeedSameStats) {
  auto topo = *net::Topology::Random(80, 7.0, 5);
  SelectivityParams sel{0.5, 0.5, 0.2};
  join::ExecutorOptions opts;
  opts.algorithm = join::Algorithm::kInnet;
  opts.features = join::InnetFeatures::Cmg();
  opts.assumed = sel;
  opts.learning = true;
  opts.loss_prob = 0.05;  // exercise the RNG-dependent paths
  opts.seed = 42;

  auto wl = *Workload::MakeQuery1(&topo, sel, 3, 7);
  auto first = core::RunExperiment(wl, opts, 60);
  auto second = core::RunExperiment(wl, opts, 60);
  ASSERT_TRUE(first.ok() && second.ok());
  ExpectIdentical(*first, *second);
  EXPECT_GT(first->results, 0u);
}

TEST(SchedulerDeterminismTest, SharedMediumSameSeedSameStats) {
  auto topo = *net::Topology::Random(60, 7.0, 3);
  SelectivityParams sel{0.5, 0.5, 0.2};
  join::ExecutorOptions opts;
  opts.algorithm = join::Algorithm::kBase;
  opts.assumed = sel;

  auto run_once = [&]() {
    auto q1 = *Workload::MakeQuery1(&topo, sel, 3, 7);
    auto q2 = *Workload::MakeQuery2(&topo, sel, 3, 9);
    join::SharedMedium medium(&topo, {});
    auto r1 = medium.TryAddQuery(&q1, opts);
    auto r2 = medium.TryAddQuery(&q2, opts);
    EXPECT_TRUE(r1.ok() && r2.ok());
    join::JoinExecutor* e1 = *r1;
    join::JoinExecutor* e2 = *r2;
    EXPECT_TRUE(medium.InitiateAll().ok());
    EXPECT_TRUE(medium.RunCycles(20).ok());
    return std::make_pair(e1->Stats(), e2->Stats());
  };
  auto [a1, a2] = run_once();
  auto [b1, b2] = run_once();
  ExpectIdentical(a1, b1);
  ExpectIdentical(a2, b2);
}

TEST(SchedulerDeterminismTest, PipelinedStatsMatchSequential) {
  // The pipelined scheduler overlaps future cycles' sample stages with the
  // current transmit; every (shards, depth) combination must reproduce the
  // sequential run's stats exactly.
  auto topo = *net::Topology::Random(80, 7.0, 5);
  SelectivityParams sel{0.5, 0.5, 0.2};
  join::ExecutorOptions opts;
  opts.algorithm = join::Algorithm::kInnet;
  opts.features = join::InnetFeatures::Cmg();
  opts.assumed = sel;
  opts.learning = true;
  opts.loss_prob = 0.05;  // exercise the RNG-dependent paths
  opts.seed = 42;

  auto wl = *Workload::MakeQuery1(&topo, sel, 3, 7);
  auto baseline = core::RunExperiment(wl, opts, 60);
  ASSERT_TRUE(baseline.ok());
  for (int depth : {2, 3}) {
    for (int shards : {1, 3}) {
      SCOPED_TRACE("depth=" + std::to_string(depth) +
                   " shards=" + std::to_string(shards));
      opts.knobs.pipeline_depth = depth;
      opts.knobs.shards = shards;
      auto piped = core::RunExperiment(wl, opts, 60);
      ASSERT_TRUE(piped.ok());
      ExpectIdentical(*baseline, *piped);
    }
  }
}

join::RunStats RunInChunks(const net::Topology& topo,
                           const workload::Workload& wl,
                           join::ExecutorOptions opts,
                           const std::vector<int>& chunks, int seek_between) {
  (void)topo;
  join::JoinExecutor exec(&wl, opts);
  EXPECT_TRUE(exec.Initiate().ok());
  bool first = true;
  for (int n : chunks) {
    if (!first && seek_between > 0) {
      exec.scheduler()->SeekTo(exec.scheduler()->cycle() + seek_between);
    }
    first = false;
    EXPECT_TRUE(exec.RunCycles(n).ok());
  }
  return exec.Stats();
}

TEST(SchedulerDeterminismTest, PipelinedContinuationInvariance) {
  // RunCycles(5) twice must equal RunCycles(10) at every pipeline depth:
  // RunFinished invalidates the prestaged slabs on each exit, so state
  // observed (or mutated) between calls never depends on the depth.
  auto topo = *net::Topology::Random(70, 7.0, 11);
  SelectivityParams sel{0.5, 0.5, 0.2};
  join::ExecutorOptions opts;
  opts.algorithm = join::Algorithm::kInnet;
  opts.features = join::InnetFeatures::Cmg();
  opts.assumed = sel;
  opts.seed = 9;
  auto wl = *Workload::MakeQuery1(&topo, sel, 3, 13);

  auto whole = RunInChunks(topo, wl, opts, {10}, 0);
  for (int depth : {1, 2, 3}) {
    for (int shards : {1, 3}) {
      SCOPED_TRACE("depth=" + std::to_string(depth) +
                   " shards=" + std::to_string(shards));
      opts.knobs.pipeline_depth = depth;
      opts.knobs.shards = shards;
      ExpectIdentical(whole, RunInChunks(topo, wl, opts, {5, 5}, 0));
      ExpectIdentical(whole, RunInChunks(topo, wl, opts, {3, 3, 4}, 0));
    }
  }
}

TEST(SchedulerDeterminismTest, PipelinedSeekToMatchesSequential) {
  // SeekTo between RunCycles calls (the shared-medium mid-run-admission
  // replay) jumps the clock past cycles whose slabs were prestaged; the
  // pipelined run must discard them and resume from the sought cycle,
  // matching the sequential schedule exactly.
  auto topo = *net::Topology::Random(70, 7.0, 17);
  SelectivityParams sel{0.5, 0.5, 0.2};
  join::ExecutorOptions opts;
  opts.algorithm = join::Algorithm::kInnet;
  opts.features = join::InnetFeatures::Cmg();
  opts.assumed = sel;
  opts.seed = 5;
  auto wl = *Workload::MakeQuery1(&topo, sel, 3, 19);

  auto sequential = RunInChunks(topo, wl, opts, {4, 8}, /*seek_between=*/7);
  for (int depth : {2, 3}) {
    for (int shards : {1, 3}) {
      SCOPED_TRACE("depth=" + std::to_string(depth) +
                   " shards=" + std::to_string(shards));
      opts.knobs.pipeline_depth = depth;
      opts.knobs.shards = shards;
      ExpectIdentical(sequential,
                      RunInChunks(topo, wl, opts, {4, 8}, /*seek_between=*/7));
    }
  }
}

void ExpectIdenticalAggregates(const core::AggregatedStats& a,
                               const core::AggregatedStats& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_DOUBLE_EQ(a.total_bytes, b.total_bytes);
  EXPECT_DOUBLE_EQ(a.total_bytes_ci, b.total_bytes_ci);
  EXPECT_DOUBLE_EQ(a.base_bytes, b.base_bytes);
  EXPECT_DOUBLE_EQ(a.max_node_bytes, b.max_node_bytes);
  EXPECT_DOUBLE_EQ(a.total_messages, b.total_messages);
  EXPECT_DOUBLE_EQ(a.initiation_bytes, b.initiation_bytes);
  EXPECT_DOUBLE_EQ(a.computation_bytes, b.computation_bytes);
  EXPECT_DOUBLE_EQ(a.results, b.results);
  EXPECT_DOUBLE_EQ(a.avg_result_delay_cycles, b.avg_result_delay_cycles);
  EXPECT_DOUBLE_EQ(a.migrations, b.migrations);
  EXPECT_DOUBLE_EQ(a.failovers, b.failovers);
}

TEST(SchedulerDeterminismTest, RunAveragedInvariantAcrossThreadCounts) {
  auto topo = *net::Topology::Random(60, 7.0, 13);
  SelectivityParams sel{0.5, 0.5, 0.2};
  core::WorkloadFactory factory = [&](uint64_t seed) {
    return Workload::MakeQuery1(&topo, sel, 3, seed);
  };
  join::ExecutorOptions opts;
  opts.algorithm = join::Algorithm::kInnet;
  opts.features = join::InnetFeatures::Cmg();
  opts.assumed = sel;
  opts.learning = true;

  auto serial = core::RunAveraged(factory, opts, 30, 9, 1, /*num_threads=*/1);
  auto parallel4 =
      core::RunAveraged(factory, opts, 30, 9, 1, /*num_threads=*/4);
  auto parallel0 =
      core::RunAveraged(factory, opts, 30, 9, 1, /*num_threads=*/0);
  ASSERT_TRUE(serial.ok() && parallel4.ok() && parallel0.ok());
  ExpectIdenticalAggregates(*serial, *parallel4);
  ExpectIdenticalAggregates(*serial, *parallel0);
  EXPECT_GT(serial->results, 0.0);
}

TEST(SchedulerDeterminismTest, RunAveragedParallelGeoRouting) {
  // GHT mote mode routes over the Gabriel planarization, which is built at
  // topology construction — repetitions sharing one topology must be safe.
  auto topo = *net::Topology::Random(60, 7.0, 21);
  SelectivityParams sel{0.5, 0.5, 0.2};
  core::WorkloadFactory factory = [&](uint64_t seed) {
    return Workload::MakeQuery1(&topo, sel, 3, seed);
  };
  join::ExecutorOptions opts;
  opts.algorithm = join::Algorithm::kGht;
  opts.assumed = sel;
  auto serial = core::RunAveraged(factory, opts, 20, 8, 1, /*num_threads=*/1);
  auto parallel = core::RunAveraged(factory, opts, 20, 8, 1,
                                    /*num_threads=*/4);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  ExpectIdenticalAggregates(*serial, *parallel);
}

}  // namespace
}  // namespace aspen
