#include <gtest/gtest.h>

#include "common/rng.h"
#include "query/analyzer.h"

namespace aspen {
namespace query {
namespace {

ExprPtr S(int attr) { return Expr::Attr(Side::kS, attr); }
ExprPtr T(int attr) { return Expr::Attr(Side::kT, attr); }

// Truth-equivalence check over random tuples: CNF must preserve semantics.
void ExpectEquivalent(const ExprPtr& original) {
  auto cnf = ToCnf(original);
  ExprPtr rebuilt = Expr::AndAll(cnf);
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    Tuple s = Schema::Sensor().MakeTuple();
    Tuple t = Schema::Sensor().MakeTuple();
    for (int a = 0; a < kNumAttrs; ++a) {
      s[a] = static_cast<int32_t>(rng.UniformRange(0, 8));
      t[a] = static_cast<int32_t>(rng.UniformRange(0, 8));
    }
    EXPECT_EQ(original->EvalBool(&s, &t), rebuilt->EvalBool(&s, &t));
  }
}

TEST(CnfTest, ConjunctionSplitsIntoClauses) {
  auto e = Expr::And(Expr::Eq(S(kAttrId), Expr::Const(1)),
                     Expr::And(Expr::Eq(T(kAttrId), Expr::Const(2)),
                               Expr::Eq(S(kAttrU), T(kAttrU))));
  EXPECT_EQ(ToCnf(e).size(), 3u);
  ExpectEquivalent(e);
}

TEST(CnfTest, DistributesOrOverAnd) {
  // (A ∧ B) ∨ C -> (A ∨ C) ∧ (B ∨ C)
  auto a = Expr::Eq(S(kAttrId), Expr::Const(1));
  auto b = Expr::Eq(S(kAttrX), Expr::Const(2));
  auto c = Expr::Eq(S(kAttrY), Expr::Const(3));
  auto e = Expr::Or(Expr::And(a, b), c);
  EXPECT_EQ(ToCnf(e).size(), 2u);
  ExpectEquivalent(e);
}

TEST(CnfTest, DeMorganPushesNegation) {
  auto a = Expr::Lt(S(kAttrId), Expr::Const(5));
  auto b = Expr::Gt(T(kAttrId), Expr::Const(7));
  auto e = Expr::Not(Expr::Or(a, b));  // -> !a ∧ !b
  auto cnf = ToCnf(e);
  EXPECT_EQ(cnf.size(), 2u);
  // Negations became flipped comparisons, not kNot wrappers.
  for (const auto& clause : cnf) {
    EXPECT_NE(clause->op(), ExprOp::kNot);
  }
  ExpectEquivalent(e);
}

TEST(CnfTest, DoubleNegationCancels) {
  auto a = Expr::Eq(S(kAttrId), Expr::Const(1));
  ExpectEquivalent(Expr::Not(Expr::Not(a)));
}

TEST(CnfTest, DeepNesting) {
  auto a = Expr::Eq(S(kAttrId), Expr::Const(1));
  auto b = Expr::Eq(S(kAttrX), Expr::Const(2));
  auto c = Expr::Eq(T(kAttrY), Expr::Const(3));
  auto d = Expr::Eq(T(kAttrId), Expr::Const(4));
  ExpectEquivalent(Expr::Or(Expr::And(a, Expr::Not(b)),
                            Expr::Not(Expr::And(c, Expr::Or(d, a)))));
}

JoinQuery Query1Like() {
  JoinQuery q;
  q.where = Expr::AndAll(
      {Expr::Lt(S(kAttrId), Expr::Const(25)),
       Expr::Gt(T(kAttrId), Expr::Const(50)),
       Expr::Eq(S(kAttrX), Expr::Add(T(kAttrY), Expr::Const(5))),
       Expr::Eq(S(kAttrU), T(kAttrU)),
       Expr::Eq(Expr::Mod(Expr::Hash(S(kAttrU)), Expr::Const(2)),
                Expr::Const(0))});
  q.window.size = 3;
  return q;
}

TEST(AnalyzerTest, ClassifiesQuery1Clauses) {
  auto analysis = Analyze(Query1Like());
  ASSERT_TRUE(analysis.ok());
  EXPECT_EQ(analysis->s_static_selection.size(), 1u);
  EXPECT_EQ(analysis->t_static_selection.size(), 1u);
  EXPECT_EQ(analysis->s_dynamic_selection.size(), 1u);  // hash gate
  EXPECT_TRUE(analysis->t_dynamic_selection.empty());
  EXPECT_EQ(analysis->static_join.size(), 1u);   // x = y + 5
  EXPECT_EQ(analysis->dynamic_join.size(), 1u);  // u = u
}

TEST(AnalyzerTest, PatternMatcherFindsEqualityPrimary) {
  auto analysis = Analyze(Query1Like());
  ASSERT_TRUE(analysis.ok());
  ASSERT_TRUE(analysis->primary.has_value());
  EXPECT_FALSE(analysis->primary->region_radius_dm.has_value());
  ASSERT_NE(analysis->primary->probe_expr, nullptr);
  ASSERT_NE(analysis->primary->target_expr, nullptr);
  // probe over S evaluates x; target (rebound to single-tuple form)
  // evaluates y + 5.
  Tuple s = Schema::Sensor().MakeTuple();
  s[kAttrX] = 33;
  EXPECT_EQ(analysis->primary->probe_expr->Eval(&s, nullptr), 33);
  Tuple t = Schema::Sensor().MakeTuple();
  t[kAttrY] = 4;
  EXPECT_EQ(analysis->primary->target_expr->Eval(&t, nullptr), 9);
}

TEST(AnalyzerTest, PatternMatcherHandlesSwappedSides) {
  JoinQuery q;
  q.where = Expr::Eq(T(kAttrY), S(kAttrX));  // T-side on the left
  auto analysis = Analyze(q);
  ASSERT_TRUE(analysis.ok());
  ASSERT_TRUE(analysis->primary.has_value());
  Tuple s = Schema::Sensor().MakeTuple();
  s[kAttrX] = 12;
  EXPECT_EQ(analysis->primary->probe_expr->Eval(&s, nullptr), 12);
}

TEST(AnalyzerTest, RegionPrimaryDetected) {
  JoinQuery q;
  q.where = Expr::AndAll(
      {Expr::Lt(Expr::Dist(), Expr::Const(50)),
       Expr::Lt(S(kAttrId), T(kAttrId)),
       Expr::Gt(Expr::Abs(Expr::Sub(S(kAttrV), T(kAttrV))),
                Expr::Const(1000))});
  auto analysis = Analyze(q);
  ASSERT_TRUE(analysis.ok());
  ASSERT_TRUE(analysis->primary.has_value());
  ASSERT_TRUE(analysis->primary->region_radius_dm.has_value());
  EXPECT_EQ(*analysis->primary->region_radius_dm, 50);
  // s.id < t.id is static but not routable: a secondary filter.
  EXPECT_EQ(analysis->secondary_static_join.size(), 1u);
  EXPECT_EQ(analysis->dynamic_join.size(), 1u);
}

TEST(AnalyzerTest, SecondaryStaticJoinKept) {
  JoinQuery q;
  q.where = Expr::AndAll(
      {Expr::Eq(S(kAttrCid), T(kAttrCid)),
       Expr::Eq(Expr::Mod(S(kAttrId), Expr::Const(4)),
                Expr::Mod(T(kAttrId), Expr::Const(4)))});
  auto analysis = Analyze(q);
  ASSERT_TRUE(analysis.ok());
  ASSERT_TRUE(analysis->primary.has_value());
  // The first routable clause (cid = cid) wins; the second stays secondary
  // even though it is also routable in principle.
  EXPECT_EQ(analysis->secondary_static_join.size(), 1u);
}

TEST(AnalyzerTest, EligibilityHelpers) {
  auto analysis = Analyze(Query1Like());
  ASSERT_TRUE(analysis.ok());
  Tuple in = Schema::Sensor().MakeTuple();
  in[kAttrId] = 10;
  Tuple out = Schema::Sensor().MakeTuple();
  out[kAttrId] = 30;
  EXPECT_TRUE(analysis->SEligible(in));
  EXPECT_FALSE(analysis->SEligible(out));
  Tuple t_in = Schema::Sensor().MakeTuple();
  t_in[kAttrId] = 60;
  EXPECT_TRUE(analysis->TEligible(t_in));
  EXPECT_FALSE(analysis->TEligible(in));
}

TEST(AnalyzerTest, FullPassMatchesOriginalPredicate) {
  JoinQuery q = Query1Like();
  auto analysis = Analyze(q);
  ASSERT_TRUE(analysis.ok());
  Rng rng(5);
  for (int trial = 0; trial < 300; ++trial) {
    Tuple s = Schema::Sensor().MakeTuple();
    Tuple t = Schema::Sensor().MakeTuple();
    s[kAttrId] = static_cast<int32_t>(rng.UniformRange(0, 100));
    t[kAttrId] = static_cast<int32_t>(rng.UniformRange(0, 100));
    s[kAttrX] = static_cast<int32_t>(rng.UniformRange(7, 60));
    t[kAttrY] = static_cast<int32_t>(rng.UniformRange(0, 10));
    s[kAttrU] = static_cast<int32_t>(rng.UniformRange(0, 5));
    t[kAttrU] = static_cast<int32_t>(rng.UniformRange(0, 5));
    EXPECT_EQ(analysis->FullPass(s, t), q.where->EvalBool(&s, &t));
  }
}

TEST(AnalyzerTest, RejectsNullAndBadWindow) {
  JoinQuery q;
  EXPECT_FALSE(Analyze(q).ok());
  q.where = Expr::Const(1);
  q.window.size = 0;
  EXPECT_FALSE(Analyze(q).ok());
}

TEST(AnalyzerTest, NoRoutablePrimaryForDynamicOnlyJoin) {
  JoinQuery q;
  q.where = Expr::Eq(S(kAttrU), T(kAttrU));
  auto analysis = Analyze(q);
  ASSERT_TRUE(analysis.ok());
  EXPECT_FALSE(analysis->primary.has_value());
  EXPECT_EQ(analysis->dynamic_join.size(), 1u);
}

}  // namespace
}  // namespace query
}  // namespace aspen
