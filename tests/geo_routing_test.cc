#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "net/geo_routing.h"
#include "net/topology.h"

namespace aspen {
namespace net {
namespace {

class GeoRoutingTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    auto topo = Topology::Random(100, 7.0, GetParam());
    ASSERT_TRUE(topo.ok());
    topo_ = std::make_unique<Topology>(std::move(*topo));
  }
  std::unique_ptr<Topology> topo_;
};

TEST_P(GeoRoutingTest, GabrielGraphIsPlanarSubgraphAndConnected) {
  const Topology& topo = *topo_;
  // Subgraph of the radio graph, symmetric.
  for (NodeId u = 0; u < topo.num_nodes(); ++u) {
    for (NodeId v : topo.GabrielNeighbors(u)) {
      EXPECT_TRUE(topo.AreNeighbors(u, v));
      const auto& back = topo.GabrielNeighbors(v);
      EXPECT_NE(std::find(back.begin(), back.end(), u), back.end());
    }
  }
  // Gabriel witness condition holds for every retained edge.
  for (NodeId u = 0; u < topo.num_nodes(); ++u) {
    for (NodeId v : topo.GabrielNeighbors(u)) {
      double duv2 = std::pow(topo.DistanceBetween(u, v), 2);
      for (NodeId w : topo.neighbors(u)) {
        if (w == v) continue;
        double a = std::pow(topo.DistanceBetween(u, w), 2);
        double b = std::pow(topo.DistanceBetween(w, v), 2);
        EXPECT_GE(a + b, duv2) << u << "-" << v << " witness " << w;
      }
    }
  }
  // Connectivity: BFS over Gabriel edges reaches everyone.
  std::vector<bool> seen(topo.num_nodes(), false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  int count = 0;
  while (!stack.empty()) {
    NodeId u = stack.back();
    stack.pop_back();
    ++count;
    for (NodeId v : topo.GabrielNeighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        stack.push_back(v);
      }
    }
  }
  EXPECT_EQ(count, topo.num_nodes());
}

TEST_P(GeoRoutingTest, GeoRouteReachesEveryDestination) {
  const Topology& topo = *topo_;
  for (NodeId from : {0, 13, 57, 99}) {
    for (NodeId to : {0, 8, 42, 99}) {
      auto path = GeoRoute(topo, from, to);
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.front(), from);
      EXPECT_EQ(path.back(), to) << "stuck " << from << "->" << to;
      for (size_t i = 0; i + 1 < path.size(); ++i) {
        EXPECT_TRUE(topo.AreNeighbors(path[i], path[i + 1]));
      }
    }
  }
}

TEST_P(GeoRoutingTest, PerimeterDetoursExceedShortestPaths) {
  const Topology& topo = *topo_;
  // Across many pairs, GPSR pays a stretch factor over BFS: strictly more
  // total hops, since perimeter mode hugs face boundaries.
  int64_t geo_hops = 0, bfs_hops = 0;
  for (NodeId a = 0; a < topo.num_nodes(); a += 7) {
    for (NodeId b = 1; b < topo.num_nodes(); b += 11) {
      if (a == b) continue;
      geo_hops += static_cast<int64_t>(GeoRoute(topo, a, b).size()) - 1;
      bfs_hops += static_cast<int64_t>(topo.ShortestPath(a, b).size()) - 1;
    }
  }
  EXPECT_GE(geo_hops, bfs_hops);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeoRoutingTest, ::testing::Values(3, 7, 19));

TEST(GeoRoutingStateTest, GreedyStepsMakeProgress) {
  auto topo = *Topology::Grid(6, 6);
  GeoRouteState state;
  NodeId cur = 35;
  double prev_dist = Distance(topo.position(cur), topo.position(0));
  // On a grid greedy never needs perimeter mode: monotone progress.
  while (cur != 0) {
    NodeId next = GeoNextHop(topo, &state, cur, 0);
    ASSERT_GE(next, 0);
    double d = Distance(topo.position(next), topo.position(0));
    EXPECT_LT(d, prev_dist);
    EXPECT_LT(state.escape_dist, 0.0);
    prev_dist = d;
    cur = next;
  }
}

TEST(GeoRoutingStateTest, HopsAreCounted) {
  auto topo = *Topology::Grid(4, 4);
  GeoRouteState state;
  NodeId cur = 15;
  int steps = 0;
  while (cur != 0 && steps < 100) {
    cur = GeoNextHop(topo, &state, cur, 0);
    ASSERT_GE(cur, 0);
    ++steps;
  }
  EXPECT_EQ(state.hops, steps);
}

}  // namespace
}  // namespace net
}  // namespace aspen
