// Figure 3: Query 2 (perimeter join, Query P), w = 1, 100 sampling cycles,
// 100 nodes — total traffic and base-station load across the selectivity
// grid for all six algorithms.

#include "bench/bench_util.h"
#include "bench/ratio_sweep.h"

using namespace aspen;
using namespace aspen::benchutil;

int main() {
  PrintHeader("Figure 3", "Query 2, w=1, 100 nodes, mote network (bytes)");
  net::Topology topo = PaperTopology();
  RunRatioSweep(
      [&](const workload::SelectivityParams& p, uint64_t seed) {
        return workload::Workload::MakeQuery2(&topo, p, /*window=*/1, seed);
      },
      CyclesFromEnv(100), /*mesh=*/false);
  return 0;
}
