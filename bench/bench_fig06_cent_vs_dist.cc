// Figure 6: centralized vs distributed initiation for a query of 1:1 joins
// between 10 random node pairs (sigma_s = 1, sigma_t = sigma_st = 0).
// (a) initiation traffic at the base station: the distributed scheme avoids
//     flooding connectivity and attribute state to the root.
// (b) initiation latency: the base's radio serializes the centralized
//     in-gathering, so centralized initiation takes several times longer.

#include "bench/bench_util.h"
#include "join/executor.h"
#include "opt/centralized.h"
#include "routing/routing_tree.h"

using namespace aspen;
using namespace aspen::benchutil;

int main() {
  PrintHeader("Figure 6", "Centralized vs distributed initiation");
  const int runs = RunsFromEnv();
  double cent_base = 0, dist_base = 0, cent_total = 0, dist_total = 0;
  double cent_lat = 0, dist_lat = 0;
  for (int r = 0; r < runs; ++r) {
    net::Topology topo = PaperTopology(42 + r);
    workload::SelectivityParams sel{1.0, 1.0, 0.2};  // pair structure only
    auto wl =
        OrDie(workload::Workload::MakeQuery0(&topo, sel, 10, 1, 7 + r));

    // Distributed: the Innet executor's own initiation (multi-tree
    // construction, exploration, nomination).
    join::ExecutorOptions opts =
        MakeOptions({join::Algorithm::kInnet, join::InnetFeatures::Cmg()},
                    sel);
    join::JoinExecutor exec(&wl, opts);
    if (!exec.Initiate().ok()) return 1;
    dist_base += static_cast<double>(exec.network().stats().BaseStationBytes());
    dist_total += static_cast<double>(exec.network().stats().TotalBytesSent());
    dist_lat += exec.Stats().init_latency_cycles;

    // Centralized: ship connectivity + static attributes to the base,
    // optimize there, distribute the plan.
    auto tree = routing::RoutingTree::Build(topo, 0);
    std::vector<net::NodeId> participants;
    for (const auto& [s, t] : wl.AllJoinPairs()) {
      participants.push_back(s);
      participants.push_back(t);
    }
    auto cent = opt::CentralizedInitiation(topo, tree, /*static_attrs=*/4,
                                           participants);
    cent_base += static_cast<double>(cent.base_bytes);
    cent_total += static_cast<double>(cent.total_bytes);
    cent_lat += cent.latency_cycles;
  }
  core::Table table({"scheme", "init traffic at base", "total init traffic",
                     "init latency (tx cycles)"});
  table.AddRow({"Centralized", core::HumanBytes(cent_base / runs),
                core::HumanBytes(cent_total / runs),
                core::Fixed(cent_lat / runs, 0)});
  table.AddRow({"Distributed (Innet)", core::HumanBytes(dist_base / runs),
                core::HumanBytes(dist_total / runs),
                core::Fixed(dist_lat / runs, 0)});
  table.AddRow({"centralized / distributed",
                core::Fixed(cent_base / std::max(dist_base, 1.0), 2) + "x",
                core::Fixed(cent_total / std::max(dist_total, 1.0), 2) + "x",
                core::Fixed(cent_lat / std::max(dist_lat, 1.0), 2) + "x"});
  table.Print();
  return 0;
}
