// Table 3: analytic cost-model validation. For Query 1 the per-cycle
// computation cost of each algorithm is computed from the closed-form
// expressions of Appendix D and compared against the traffic measured by
// the simulator. The analytic unit is expected tuple-hops; it is converted
// to bytes with the data-message wire size. Result-forwarding terms use the
// result wire size, so ratios near 1.0 validate both the formulas and the
// simulator's accounting.

#include "bench/bench_util.h"
#include "join/executor.h"
#include "opt/cost_model.h"
#include "routing/content_address.h"
#include "routing/routing_tree.h"

using namespace aspen;
using namespace aspen::benchutil;

int main() {
  PrintHeader("Table 3", "Analytic vs simulated computation cost (Query 1)");
  net::Topology topo = PaperTopology();
  workload::SelectivityParams sel{0.5, 0.5, 0.2};
  const int cycles = CyclesFromEnv(200);
  auto tree = routing::RoutingTree::Build(topo, 0);

  auto wl = OrDie(workload::Workload::MakeQuery1(&topo, sel, 3, 7));
  // Realized rates (the filters hit the targets only up to domain quanta).
  auto design = workload::DesignFilters(sel);
  opt::AlgorithmCostInputs in;
  in.pair = {design.realized_s, design.realized_t, design.realized_st, 3};

  // Selection-eligible nodes vs pair-participating nodes give phi.
  std::set<net::NodeId> s_sel, t_sel, s_pairing, t_pairing;
  for (net::NodeId u = 0; u < topo.num_nodes(); ++u) {
    if (wl.SEligible(u)) s_sel.insert(u);
    if (wl.TEligible(u)) t_sel.insert(u);
  }
  for (const auto& [s, t] : wl.AllJoinPairs()) {
    s_pairing.insert(s);
    t_pairing.insert(t);
  }
  in.phi_s_to_t = s_sel.empty() ? 0
                                : static_cast<double>(s_pairing.size()) /
                                      s_sel.size();
  in.phi_t_to_s = t_sel.empty() ? 0
                                : static_cast<double>(t_pairing.size()) /
                                      t_sel.size();
  in.num_s = static_cast<int>(s_pairing.size());
  in.num_t = static_cast<int>(t_pairing.size());

  const double data_bytes =
      wl.DataBytes() + net::WireFormat::kLinkHeaderBytes;

  core::Table table({"algorithm", "analytic (KB)", "simulated (KB)",
                     "sim/analytic"});
  auto add_row = [&](const std::string& name, double analytic_hops,
                     const AlgoSpec& spec) {
    auto wl_run = OrDie(workload::Workload::MakeQuery1(&topo, sel, 3, 7));
    auto stats =
        OrDie(core::RunExperiment(wl_run, MakeOptions(spec, sel), cycles));
    double analytic_kb = analytic_hops * data_bytes * cycles / 1024.0;
    double simulated_kb = stats.computation_bytes / 1024.0;
    table.AddRow({name, core::Fixed(analytic_kb, 1),
                  core::Fixed(simulated_kb, 1),
                  core::Fixed(simulated_kb / std::max(analytic_kb, 1e-9), 2)});
  };

  // Naive / Base: depths of the *selection*-eligible (resp. pairing) nodes.
  {
    opt::AlgorithmCostInputs naive_in = in;
    for (net::NodeId u : s_sel) naive_in.d_sr.push_back(tree.DepthOf(u));
    for (net::NodeId u : t_sel) naive_in.d_tr.push_back(tree.DepthOf(u));
    add_row("Naive", opt::NaiveComputationCost(naive_in),
            {join::Algorithm::kNaive, {}});
    // Base: phi applies to the same population.
    add_row("Base", opt::BaseComputationCost(naive_in),
            {join::Algorithm::kBase, {}});
    add_row("Yang+07", opt::Yang07ComputationCost(naive_in),
            {join::Algorithm::kYang07, {}});
  }

  // GHT: per-pair distances along greedy geographic paths.
  {
    opt::AlgorithmCostInputs ght_in = in;
    routing::GeoHash geo(&topo, /*salt=*/1);
    for (const auto& [s, t] : wl.AllJoinPairs()) {
      net::NodeId j = geo.NodeForKey(*wl.SJoinKey(s));
      opt::AlgorithmCostInputs::PairDistances pd;
      pd.d_sj = static_cast<int>(geo.GreedyPath(s, j).size()) - 1;
      pd.d_tj = static_cast<int>(geo.GreedyPath(t, j).size()) - 1;
      pd.d_jr = tree.DepthOf(j);
      ght_in.pairs.push_back(pd);
    }
    add_row("GHT", opt::GhtComputationCost(ght_in),
            {join::Algorithm::kGht, {}});
  }

  // In-Net: per-pair distances from the executor's actual placements.
  {
    auto wl_place = OrDie(workload::Workload::MakeQuery1(&topo, sel, 3, 7));
    join::JoinExecutor exec(
        &wl_place,
        MakeOptions({join::Algorithm::kInnet, join::InnetFeatures::None()},
                    sel));
    if (!exec.Initiate().ok()) return 1;
    opt::AlgorithmCostInputs innet_in = in;
    for (const auto& pl : exec.placements()) {
      opt::AlgorithmCostInputs::PairDistances pd;
      if (pl.at_base) {
        pd.d_sj = tree.DepthOf(pl.pair.s);
        pd.d_tj = tree.DepthOf(pl.pair.t);
        pd.d_jr = 0;
      } else {
        pd.d_sj = pl.path_index;
        pd.d_tj = static_cast<int>(pl.path.size()) - 1 - pl.path_index;
        pd.d_jr = tree.DepthOf(pl.join_node);
      }
      innet_in.pairs.push_back(pd);
    }
    add_row("In-Net", opt::InnetComputationCost(innet_in),
            {join::Algorithm::kInnet, join::InnetFeatures::None()});
  }
  std::printf("%d cycles; analytic = Table 3 formula x wire bytes\n", cycles);
  table.Print();
  std::printf(
      "\nNote: the simulator additionally pays per-result wire size and\n"
      "multi-message effects the closed forms abstract away, so ratios\n"
      "within ~0.6-1.6 validate the model.\n");
  return 0;
}
