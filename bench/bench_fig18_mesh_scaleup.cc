// Figure 18: mesh-network scale-up — path length and per-path-normalized
// maximum node load for 1/2/3-tree routing on 50-, 100- and 200-node medium
// (~8-neighbor) topologies. Path quality should hold steady as the network
// grows.

#include "bench/bench_util.h"
#include "bench/path_quality.h"

using namespace aspen;
using namespace aspen::benchutil;

int main() {
  PrintHeader("Figure 18", "Mesh scale-up: 50/100/200-node medium topologies");
  core::Table len({"network", "1 Tree", "2 Trees", "3 Trees"});
  core::Table load({"network", "1-tree", "2-tree", "3-tree"});
  const int runs = RunsFromEnv(3);
  for (int n : {50, 100, 200}) {
    double l1 = 0, l2 = 0, l3 = 0, m1 = 0, m2 = 0, m3 = 0;
    for (int r = 0; r < runs; ++r) {
      net::Topology topo =
          OrDie(net::Topology::Random(n, 8.0, 91 + r));
      auto q1 = TreesQuality(topo, 1);
      auto q2 = TreesQuality(topo, 2);
      auto q3 = TreesQuality(topo, 3);
      l1 += q1.avg_len; l2 += q2.avg_len; l3 += q3.avg_len;
      m1 += q1.max_load_per_path; m2 += q2.max_load_per_path;
      m3 += q3.max_load_per_path;
    }
    std::string label = std::to_string(n) + "-node Medium";
    len.AddRow({label, core::Fixed(l1 / runs, 2), core::Fixed(l2 / runs, 2),
                core::Fixed(l3 / runs, 2)});
    load.AddRow({label, core::Fixed(m1 / runs, 3), core::Fixed(m2 / runs, 3),
                 core::Fixed(m3 / runs, 3)});
  }
  std::printf("(a) Average path length (hops)\n");
  len.Print();
  std::printf("\n(b) Max node load (normalized per path)\n");
  load.Print();
  return 0;
}
