// Figure 19: Query 1 on a 100-node 802.11 mesh network, w = 3, 100 sampling
// cycles — message counts (Appendix F: link-layer overhead dominates, so
// messages, not bytes, are the cost unit; DHT replaces GHT; no path
// collapsing).

#include "bench/bench_util.h"
#include "bench/ratio_sweep.h"

using namespace aspen;
using namespace aspen::benchutil;

int main() {
  PrintHeader("Figure 19", "Query 1, w=3, 100-node mesh (messages)");
  net::Topology topo = PaperTopology();
  RunRatioSweep(
      [&](const workload::SelectivityParams& p, uint64_t seed) {
        return workload::Workload::MakeQuery1(&topo, p, /*window=*/3, seed);
      },
      CyclesFromEnv(100), /*mesh=*/true);
  return 0;
}
