// Figure 17: path quality on 100-node mesh networks — as Figure 16 but the
// hash-based comparison point is a DHT overlay instead of GPSR. DHT paths
// are slightly shorter than GPSR (no connectivity-gap boundary walking) but
// concentrate load at overlay relays.

#include "bench/bench_util.h"
#include "bench/path_quality.h"

using namespace aspen;
using namespace aspen::benchutil;

int main() {
  PrintHeader("Figure 17", "Path quality, 100-node mesh network");
  const net::TopologyKind kinds[] = {
      net::TopologyKind::kDenseRandom, net::TopologyKind::kMediumRandom,
      net::TopologyKind::kModerateRandom, net::TopologyKind::kSparseRandom,
      net::TopologyKind::kGrid};
  core::Table len({"topology", "1 Tree", "2 Trees", "3 Trees", "DHT"});
  core::Table load({"topology", "1-tree", "2-tree", "3-tree", "DHT"});
  const int runs = RunsFromEnv(3);
  for (auto kind : kinds) {
    double l1 = 0, l2 = 0, l3 = 0, ld = 0;
    double m1 = 0, m2 = 0, m3 = 0, md = 0;
    for (int r = 0; r < runs; ++r) {
      net::Topology topo = OrDie(net::Topology::Make(kind, 100, 77 + r));
      auto q1 = TreesQuality(topo, 1);
      auto q2 = TreesQuality(topo, 2);
      auto q3 = TreesQuality(topo, 3);
      auto qd = DhtQuality(topo);
      l1 += q1.avg_len; l2 += q2.avg_len; l3 += q3.avg_len; ld += qd.avg_len;
      m1 += q1.max_load_kpaths; m2 += q2.max_load_kpaths;
      m3 += q3.max_load_kpaths; md += qd.max_load_kpaths;
    }
    len.AddRow({net::TopologyKindName(kind), core::Fixed(l1 / runs, 2),
                core::Fixed(l2 / runs, 2), core::Fixed(l3 / runs, 2),
                core::Fixed(ld / runs, 2)});
    load.AddRow({net::TopologyKindName(kind), core::Fixed(m1 / runs, 2),
                 core::Fixed(m2 / runs, 2), core::Fixed(m3 / runs, 2),
                 core::Fixed(md / runs, 2)});
  }
  std::printf("(a) Average path length (hops)\n");
  len.Print();
  std::printf("\n(b) Max node load (1000s of paths)\n");
  load.Print();
  return 0;
}
