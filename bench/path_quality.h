// Path-quality measurement for the routing-substrate figures (Appendix C,
// Figures 16-18): average path length and maximum per-node load over the
// paths connecting all node pairs, for k-tree routing, GPSR-style
// geographic routing, DHT overlay routing, and the full-graph (BFS) bound.

#ifndef ASPEN_BENCH_PATH_QUALITY_H_
#define ASPEN_BENCH_PATH_QUALITY_H_

#include <vector>

#include "net/topology.h"
#include "routing/content_address.h"
#include "routing/multi_tree.h"

namespace aspen {
namespace benchutil {

struct PathQuality {
  double avg_len = 0;         ///< mean hops per path
  double max_load_kpaths = 0; ///< max paths through any node, in thousands
  double max_load_per_path = 0;  ///< max load normalized by path count
};

namespace detail {

inline PathQuality Score(const std::vector<std::vector<net::NodeId>>& paths,
                         int num_nodes) {
  PathQuality q;
  std::vector<int64_t> load(num_nodes, 0);
  int64_t total_hops = 0;
  for (const auto& p : paths) {
    total_hops += static_cast<int64_t>(p.size()) - 1;
    for (net::NodeId u : p) ++load[u];
  }
  int64_t max_load = 0;
  for (int64_t l : load) max_load = std::max(max_load, l);
  q.avg_len = paths.empty() ? 0
                            : static_cast<double>(total_hops) / paths.size();
  q.max_load_kpaths = max_load / 1000.0;
  q.max_load_per_path =
      paths.empty() ? 0 : static_cast<double>(max_load) / paths.size();
  return q;
}

}  // namespace detail

/// All unordered node pairs of the topology.
inline std::vector<std::pair<net::NodeId, net::NodeId>> AllPairs(
    const net::Topology& topo) {
  std::vector<std::pair<net::NodeId, net::NodeId>> out;
  for (net::NodeId a = 0; a < topo.num_nodes(); ++a) {
    for (net::NodeId b = a + 1; b < topo.num_nodes(); ++b) {
      out.emplace_back(a, b);
    }
  }
  return out;
}

/// Best tree path (over `num_trees` overlapping trees) for every pair.
inline PathQuality TreesQuality(const net::Topology& topo, int num_trees) {
  routing::MultiTreeOptions opts;
  opts.num_trees = num_trees;
  routing::MultiTree multi(&topo, opts);
  std::vector<std::vector<net::NodeId>> paths;
  for (const auto& [a, b] : AllPairs(topo)) {
    std::vector<net::NodeId> best;
    for (int t = 0; t < multi.num_trees(); ++t) {
      auto p = multi.tree(t).TreePath(a, b);
      if (best.empty() || p.size() < best.size()) best = std::move(p);
    }
    paths.push_back(std::move(best));
  }
  return detail::Score(paths, topo.num_nodes());
}

/// GPSR-style greedy geographic paths.
inline PathQuality GpsrQuality(const net::Topology& topo) {
  routing::GeoHash geo(&topo);
  std::vector<std::vector<net::NodeId>> paths;
  for (const auto& [a, b] : AllPairs(topo)) {
    paths.push_back(geo.GreedyPath(a, b));
  }
  return detail::Score(paths, topo.num_nodes());
}

/// DHT overlay paths: each lookup routes through the overlay relay that
/// owns the key before reaching the destination (one overlay indirection,
/// Pastry-style), each overlay hop travelling a physical shortest path.
inline PathQuality DhtQuality(const net::Topology& topo) {
  routing::DhtRing ring(&topo);
  std::vector<std::vector<net::NodeId>> paths;
  for (const auto& [a, b] : AllPairs(topo)) {
    net::NodeId relay =
        ring.NodeForKey(static_cast<int32_t>(a * 1009 + b));
    auto first = topo.ShortestPath(a, relay);
    auto second = topo.ShortestPath(relay, b);
    first.insert(first.end(), second.begin() + 1, second.end());
    paths.push_back(std::move(first));
  }
  return detail::Score(paths, topo.num_nodes());
}

/// Full-connectivity-graph shortest paths (the unreachable lower bound).
inline PathQuality BfsQuality(const net::Topology& topo) {
  std::vector<std::vector<net::NodeId>> paths;
  for (const auto& [a, b] : AllPairs(topo)) {
    paths.push_back(topo.ShortestPath(a, b));
  }
  return detail::Score(paths, topo.num_nodes());
}

}  // namespace benchutil
}  // namespace aspen

#endif  // ASPEN_BENCH_PATH_QUALITY_H_
