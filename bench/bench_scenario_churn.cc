// Scenario sweep: node churn x loss drift, a workload family the paper
// only samples (Figure 14 kills exactly one node). A RandomChurn schedule
// fails random nodes throughout the run (each recovering after a fixed
// outage) while the radio's default loss probability drifts upward
// mid-run, and both the pairwise plan (Innet) and the MPO plan (Innet-cmg)
// execute under the identical scenario. Every configuration runs twice
// with the same seed and the table's "det" column confirms the scenario
// engine is bit-deterministic end to end.

#include "bench/bench_util.h"
#include "scenario/dynamics.h"

using namespace aspen;
using namespace aspen::benchutil;

namespace {

/// The fields the determinism check compares (the full headline metrics).
struct Fingerprint {
  uint64_t total_bytes, results, failovers, migrations;
  double avg_delay, max_delay;

  static Fingerprint Of(const join::RunStats& st) {
    return {st.total_bytes,  st.results,
            st.failovers,    st.migrations,
            st.avg_result_delay_cycles, st.max_result_delay_cycles};
  }
  bool operator==(const Fingerprint& o) const {
    return total_bytes == o.total_bytes && results == o.results &&
           failovers == o.failovers && migrations == o.migrations &&
           avg_delay == o.avg_delay && max_delay == o.max_delay;
  }
};

}  // namespace

int main() {
  PrintHeader("Scenario sweep", "Node churn x loss drift (pairwise vs MPO)");
  const int cycles = CyclesFromEnv(100);
  const uint64_t seed = 7;
  net::Topology topo = PaperTopology(42);
  workload::SelectivityParams sel{0.5, 0.5, 0.2};
  auto wl = OrDie(workload::Workload::MakeQuery1(&topo, sel, /*window=*/3,
                                                 seed));

  const std::vector<AlgoSpec> plans = {
      {join::Algorithm::kInnet, join::InnetFeatures::None()},  // pairwise
      {join::Algorithm::kInnet, join::InnetFeatures::Cmg()},   // MPO
  };
  const std::vector<double> churn_rates = {0.0, 0.001, 0.005};
  const std::vector<double> drift_targets = {0.02, 0.10, 0.20};
  const double base_loss = 0.02;
  const int down_cycles = 10;

  core::Table table({"plan", "churn/node/cycle", "loss 0.02->", "traffic (KB)",
                     "results", "failovers", "migrations", "det"});
  bool all_deterministic = true;
  for (const AlgoSpec& plan : plans) {
    for (double churn : churn_rates) {
      for (double drift : drift_targets) {
        scenario::DynamicsSchedule schedule = scenario::DynamicsSchedule::
            RandomChurn(topo, cycles, churn, down_cycles, /*seed=*/seed + 1);
        if (drift != base_loss) {
          schedule.DriftLossTo(/*cycle=*/cycles / 5, drift,
                               /*over_cycles=*/cycles / 3);
        }
        core::ExperimentOptions opts;
        opts.executor = MakeOptions(plan, sel);
        opts.executor.loss_prob = base_loss;
        opts.executor.seed = seed;
        opts.dynamics = &schedule;
        auto first = OrDie(core::RunExperiment(wl, opts, cycles));
        auto second = OrDie(core::RunExperiment(wl, opts, cycles));
        bool det = Fingerprint::Of(first) == Fingerprint::Of(second);
        all_deterministic = all_deterministic && det;
        table.AddRow({plan.Name(), core::Fixed(churn * 100, 1) + "%",
                      core::Fixed(drift * 100, 0) + "%",
                      core::Fixed(first.total_bytes / 1024.0, 1),
                      std::to_string(first.results),
                      std::to_string(first.failovers),
                      std::to_string(first.migrations),
                      det ? "yes" : "NO"});
      }
    }
  }
  table.Print();
  if (!all_deterministic) {
    std::fprintf(stderr, "FAIL: repeated same-seed runs diverged\n");
    return 1;
  }
  std::printf("All configurations bit-identical across repeated runs.\n");
  return 0;
}
