// Ablation: the 33% divergence trigger (Section 6). Sweeps the re-placement
// threshold on a learning run with wrong initial estimates. Too eager
// (small threshold) thrashes join nodes and pays migration overhead; too
// lazy (large threshold) never corrects the bad placement. The paper
// found 33% a good compromise.

#include "bench/bench_util.h"
#include "join/executor.h"

using namespace aspen;
using namespace aspen::benchutil;

int main() {
  PrintHeader("Ablation", "Divergence threshold for adaptive re-placement");
  net::Topology topo = PaperTopology();
  workload::SelectivityParams truth{0.1, 1.0, 0.2};
  workload::SelectivityParams wrong{1.0, 0.1, 0.2};
  const int cycles = CyclesFromEnv(400);
  const int runs = RunsFromEnv(3);

  core::Table table({"threshold", "total traffic", "migrations",
                     "vs no learning"});
  auto factory = [&](uint64_t seed) {
    return workload::Workload::MakeQuery0(&topo, truth, 25, 3, seed);
  };
  AlgoSpec innet{join::Algorithm::kInnet, join::InnetFeatures::None()};
  auto base_opts = MakeOptions(innet, wrong);
  auto baseline = OrDie(core::RunAveraged(factory, base_opts, cycles, runs));

  for (double threshold : {0.05, 0.15, 0.33, 0.50, 0.75, 2.0}) {
    auto opts = base_opts;
    opts.learning = true;
    opts.divergence_threshold = threshold;
    auto agg = OrDie(core::RunAveraged(factory, opts, cycles, runs));
    double pct = (baseline.total_bytes - agg.total_bytes) /
                 baseline.total_bytes * 100.0;
    table.AddRow({core::Fixed(threshold, 2),
                  core::HumanBytes(agg.total_bytes),
                  core::Fixed(agg.migrations, 1),
                  (pct >= 0 ? "-" : "+") + core::Fixed(std::abs(pct), 1) +
                      "%"});
  }
  std::printf("Query 0 (25 pairs), truth 1/10:1, optimized for 1:1/10, %d "
              "cycles\nno-learning baseline: %s\n\n",
              cycles, core::HumanBytes(baseline.total_bytes).c_str());
  table.Print();
  return 0;
}
