// Figure 4: cost-model validation on Query 0 (1:1 joins with random
// endpoints), sigma_st = 20%, w = 3, 100-node network. The join nodes are
// optimized for each of the five assumed sigma_s:sigma_t ratios while the
// data is generated with each of the five true ratios; the diagonal (true
// estimates, marked '*') should give the lowest traffic of each row.

#include "bench/bench_util.h"
#include "bench/estimate_matrix.h"

using namespace aspen;
using namespace aspen::benchutil;

int main() {
  PrintHeader("Figure 4",
              "Cost-model validation: Query 0, sigma_st=20%, w=3, Innet");
  net::Topology topo = PaperTopology();
  RunEstimateMatrix(
      [&](const workload::SelectivityParams& truth, uint64_t seed) {
        return workload::Workload::MakeQuery0(&topo, truth, /*num_pairs=*/25,
                                              /*window=*/3, seed);
      },
      AlgoSpec{join::Algorithm::kInnet, join::InnetFeatures::None()},
      /*sigma_st=*/0.2, CyclesFromEnv(100), /*learning=*/false);
  return 0;
}
