// Figure 5: load distribution — the 15 most-loaded nodes per algorithm on
// Query 1 (w=3, sigma_s=sigma_t=1/2, sigma_st=20%, 100 cycles). All
// strategies exhibit similar load-profile shapes; the absolute level ranks
// the algorithms.

#include "bench/bench_util.h"

using namespace aspen;
using namespace aspen::benchutil;

int main() {
  PrintHeader("Figure 5", "Load distribution: 15 most-loaded nodes (KB)");
  net::Topology topo = PaperTopology();
  workload::SelectivityParams sel{0.5, 0.5, 0.2};
  std::vector<AlgoSpec> algos = {
      {join::Algorithm::kNaive, {}},
      {join::Algorithm::kBase, {}},
      {join::Algorithm::kInnet, join::InnetFeatures::None()},
      {join::Algorithm::kInnet, join::InnetFeatures::Cm()},
      {join::Algorithm::kInnet, join::InnetFeatures::Cmp()},
      {join::Algorithm::kInnet, join::InnetFeatures::Cmg()},
      {join::Algorithm::kInnet, join::InnetFeatures::Cmpg()},
  };
  std::vector<std::string> headers{"rank"};
  for (const auto& a : algos) headers.push_back(a.Name());
  core::Table table(headers);

  std::vector<std::vector<uint64_t>> loads;
  for (const auto& algo : algos) {
    auto wl = OrDie(workload::Workload::MakeQuery1(&topo, sel, 3, 7));
    auto stats =
        OrDie(core::RunExperiment(wl, MakeOptions(algo, sel),
                                  CyclesFromEnv(100)));
    loads.push_back(stats.top_node_loads);
  }
  for (int rank = 0; rank < 15; ++rank) {
    std::vector<std::string> row{std::to_string(rank + 1)};
    for (const auto& l : loads) {
      row.push_back(rank < static_cast<int>(l.size())
                        ? core::Fixed(l[rank] / 1024.0, 1)
                        : "-");
    }
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
