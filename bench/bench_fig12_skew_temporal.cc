// Figure 12: learning under spatially skewed and temporally changing
// selectivities, Queries 1 and 2, 800 sampling cycles, Innet-cmpg.
//
// (a) Spatial: half of the nodes generate under Sel1 (sigma_s=10%,
//     sigma_t=100%, sigma_st=5%), the other half under Sel2 (100%, 10%,
//     20%). Columns: initiate-for-Sel1, initiate-for-Sel2, Full knowledge
//     (oracle: per-node true parameters), and the learning variants of the
//     first two. Learning approaches the oracle.
// (b) Temporal: all nodes run Sel1 for the first 400 cycles, then switch to
//     Sel2. "Full knowledge" here is correct initial estimates plus
//     learning (an oracle that adapts at the switch at no extra cost is not
//     physically realizable; see EXPERIMENTS.md).

#include "bench/bench_util.h"

using namespace aspen;
using namespace aspen::benchutil;

namespace {

const workload::SelectivityParams kSel1{0.10, 1.00, 0.05};
const workload::SelectivityParams kSel2{1.00, 0.10, 0.20};

using Factory = std::function<Result<workload::Workload>(uint64_t)>;

void RunScenario(const char* name, const Factory& factory, int cycles) {
  const int runs = RunsFromEnv(3);
  AlgoSpec cmpg{join::Algorithm::kInnet, join::InnetFeatures::Cmpg()};
  core::Table table({"column", name});
  struct Column {
    const char* label;
    workload::SelectivityParams assumed;
    bool learn;
    bool oracle;
  };
  const Column columns[] = {
      {"Sel1", kSel1, false, false},
      {"Sel2", kSel2, false, false},
      {"Full knowledge", kSel1, false, true},
      {"Sel1 learn", kSel1, true, false},
      {"Sel2 learn", kSel2, true, false},
  };
  for (const auto& col : columns) {
    auto opts = MakeOptions(cmpg, col.assumed);
    opts.learning = col.learn || col.oracle;
    opts.oracle = col.oracle;
    auto agg = OrDie(core::RunAveraged(factory, opts, cycles, runs));
    table.AddRow({col.label, core::HumanBytes(agg.total_bytes)});
  }
  table.Print();
}

}  // namespace

int main() {
  PrintHeader("Figure 12", "Spatial & temporal selectivity learning");
  net::Topology topo = PaperTopology();
  const int cycles = CyclesFromEnv(800);

  std::printf("\n(a) Spatial skew: half Sel1, half Sel2 (%d cycles)\n",
              cycles);
  auto spatial = [&](auto make_query) {
    return [&, make_query](uint64_t seed) -> Result<workload::Workload> {
      ASPEN_ASSIGN_OR_RETURN(workload::Workload wl, make_query(seed));
      for (net::NodeId i = 0; i < topo.num_nodes(); ++i) {
        wl.SetNodeParams(i, i % 2 == 0 ? kSel1 : kSel2);
      }
      return wl;
    };
  };
  RunScenario("Q1 traffic",
              spatial([&](uint64_t seed) {
                return workload::Workload::MakeQuery1(&topo, kSel1, 3, seed);
              }),
              cycles);
  RunScenario("Q2 traffic",
              spatial([&](uint64_t seed) {
                return workload::Workload::MakeQuery2(&topo, kSel1, 1, seed);
              }),
              cycles);

  std::printf("\n(b) Temporal change: Sel1 then Sel2 at cycle %d\n",
              cycles / 2);
  auto temporal = [&](auto make_query) {
    return [&, make_query](uint64_t seed) -> Result<workload::Workload> {
      ASPEN_ASSIGN_OR_RETURN(workload::Workload wl, make_query(seed));
      wl.SetGlobalSwitch(cycles / 2, kSel2);
      return wl;
    };
  };
  RunScenario("Q1 traffic",
              temporal([&](uint64_t seed) {
                return workload::Workload::MakeQuery1(&topo, kSel1, 3, seed);
              }),
              cycles);
  RunScenario("Q2 traffic",
              temporal([&](uint64_t seed) {
                return workload::Workload::MakeQuery2(&topo, kSel1, 1, seed);
              }),
              cycles);
  return 0;
}
