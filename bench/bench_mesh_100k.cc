// 100,000-node scale-up: the ROADMAP's "service scale" made practical by
// the spatial-index topology generator and the batched sample/filter
// kernel.
//
// bench_mesh_10k showed the zero-allocation data plane; this bench pushes
// two further orders of magnitude past the paper's mesh evaluation with a
// windowed join over a 316x316 grid (99,856 nodes, ~8 neighbors). The two
// bottlenecks that made this impractical were topology construction
// (all-pairs O(n^2) adjacency — hours at this scale; the uniform-grid index
// builds it in well under a second) and the per-node sample-phase loop (now
// one batched filter pass over the cached producer set per shard).
//
// The steady-state allocation audit is a hard gate here, not a report: the
// measured block must not allocate at all. Payload slabs are pre-grown at
// Initiate and every per-shard scratch is pre-sized to its producer count,
// so a nonzero count means a regression.
//
// Output: console summary + BENCH_mesh_100k.json (init seconds, cycles/sec,
// bytes, allocs/cycle) for the perf trajectory.
//
// `--smoke` shrinks the run for CI (same topology, fewer cycles).

#include <chrono>
#include <cstdlib>

#include "bench/alloc_audit.h"
#include "bench/bench_util.h"
#include "core/engine.h"
#include "join/executor.h"
#include "net/topology.h"
#include "workload/workload.h"

namespace aspen {
namespace {

int Main(int argc, char** argv) {
  allocaudit::SetCounting(true);  // the whole run is audited
  const bool smoke = benchutil::ConsumeSmokeFlag(&argc, argv);
  const int warmup_cycles = smoke ? 5 : 30;
  const int measured_cycles = benchutil::CyclesFromEnv(smoke ? 10 : 100);

  benchutil::PrintHeader("bench_mesh_100k",
                         "100,000-node grid join (spatial index + batched "
                         "sample kernel)");

  // 316x316 at the 10k bench's 25.6 m spacing: 99,856 nodes, ~8 neighbors.
  auto t_topo0 = std::chrono::steady_clock::now();
  auto topo = benchutil::OrDie(net::Topology::Grid(316, 316, 8089.6));
  auto t_topo1 = std::chrono::steady_clock::now();
  workload::SelectivityParams sel{0.5, 0.5, 0.2};
  auto wl = benchutil::OrDie(
      workload::Workload::MakeQuery0(&topo, sel, /*num_pairs=*/5000,
                                     /*window=*/3, /*seed=*/7));

  join::ExecutorOptions opts;
  opts.algorithm = join::Algorithm::kInnet;
  opts.features = join::InnetFeatures::Cm();
  opts.assumed = sel;
  opts.mesh_mode = true;
  opts.knobs = benchutil::KnobsFromEnv();
  // The default 128-bit Bloom summaries (sized for mote RAM) saturate far
  // below 5,000 distinct join keys, which would degenerate exploration
  // into a network-wide flood. Mesh-class hardware can afford the exact
  // routing tables (the ablation baseline), which keep exploration pruned
  // at this scale.
  opts.summary_type = routing::SummaryType::kExact;

  join::JoinExecutor exec(&wl, opts);
  auto t0 = std::chrono::steady_clock::now();
  Status st = exec.Initiate();
  if (!st.ok()) {
    std::fprintf(stderr, "fatal: %s\n", st.ToString().c_str());
    return 1;
  }
  auto t1 = std::chrono::steady_clock::now();
  st = exec.RunCycles(warmup_cycles);
  if (!st.ok()) {
    std::fprintf(stderr, "fatal: %s\n", st.ToString().c_str());
    return 1;
  }

  const uint64_t allocs_before = allocaudit::Count();
  const uint64_t bytes_before = exec.network().stats().TotalBytesSent();
  auto t2 = std::chrono::steady_clock::now();
  st = exec.RunCycles(measured_cycles);
  auto t3 = std::chrono::steady_clock::now();
  if (!st.ok()) {
    std::fprintf(stderr, "fatal: %s\n", st.ToString().c_str());
    return 1;
  }
  const uint64_t allocs = allocaudit::Count() - allocs_before;
  const uint64_t bytes = exec.network().stats().TotalBytesSent() - bytes_before;

  const double topo_s = std::chrono::duration<double>(t_topo1 - t_topo0).count();
  const double init_s = std::chrono::duration<double>(t1 - t0).count();
  const double run_s = std::chrono::duration<double>(t3 - t2).count();
  const double cycles_per_sec = measured_cycles / run_s;
  const double allocs_per_cycle =
      static_cast<double>(allocs) / measured_cycles;

  std::printf("nodes                 %d\n", topo.num_nodes());
  std::printf("shards                %d\n", opts.knobs.shards);
  std::printf("pipeline depth        %d\n", opts.knobs.pipeline_depth);
  std::printf("pairs                 %zu\n", exec.pairs().size());
  std::printf("topology build        %.2f s\n", topo_s);
  std::printf("initiation            %.2f s\n", init_s);
  std::printf("measured cycles       %d (after %d warm-up)\n",
              measured_cycles, warmup_cycles);
  std::printf("cycle throughput      %.1f cycles/s (%.2f ms/cycle)\n",
              cycles_per_sec, 1e3 * run_s / measured_cycles);
  std::printf("traffic               %.1f MB over the measured block\n",
              bytes / 1e6);
  std::printf("heap allocations      %llu total, %.3f per cycle\n",
              static_cast<unsigned long long>(allocs), allocs_per_cycle);
  std::printf("results delivered     %llu\n",
              static_cast<unsigned long long>(exec.results()));

  benchutil::JsonReport report("BENCH_mesh_100k.json");
  report.Add("mesh_100k", "nodes", topo.num_nodes());
  report.Add("mesh_100k", "shards", opts.knobs.shards);
  report.Add("mesh_100k", "pipeline_depth", opts.knobs.pipeline_depth);
  report.Add("mesh_100k", "topology_seconds", topo_s);
  report.Add("mesh_100k", "init_seconds", init_s);
  report.Add("mesh_100k", "cycles_per_sec", cycles_per_sec);
  report.Add("mesh_100k", "ms_per_cycle", 1e3 * run_s / measured_cycles);
  report.Add("mesh_100k", "bytes", static_cast<double>(bytes));
  report.Add("mesh_100k", "allocs_per_cycle", allocs_per_cycle);
  report.Write();

  // Deterministic subset for the CI shard-determinism gate (the console
  // output above contains timing and cannot be diffed byte for byte).
  benchutil::DeterminismLog det;
  if (det.enabled()) {
    const auto& stats = exec.network().stats();
    det.Add("nodes", topo.num_nodes());
    det.Add("results", exec.results());
    det.Add("measured_bytes", bytes);
    det.Add("total_bytes", stats.TotalBytesSent());
    det.Add("total_messages", stats.TotalMessagesSent());
    det.Add("base_bytes", stats.BaseStationBytes());
    det.Add("traffic_fingerprint", benchutil::TrafficFingerprint(stats));
    auto rs = exec.Stats();
    det.AddDoubleBits("avg_result_delay", rs.avg_result_delay_cycles);
    det.AddDoubleBits("max_result_delay", rs.max_result_delay_cycles);
    if (!det.Write()) return 1;
  }

  // Hard steady-state audit: the measured block allocating at all is a
  // regression in the data plane or the sample kernel.
  if (allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu heap allocations in the measured block "
                 "(expected 0)\n",
                 static_cast<unsigned long long>(allocs));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace aspen

int main(int argc, char** argv) { return aspen::Main(argc, argv); }
