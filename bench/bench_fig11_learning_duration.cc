// Figure 11: effect of execution duration on learning. Query 0,
// sigma_st = 20%, w = 3, Innet-cmg with learning, for 200 / 400 / 800
// sampling cycles. As runs lengthen, performance under wrong initial
// estimates approaches the correctly-estimated diagonal.

#include "bench/bench_util.h"
#include "bench/estimate_matrix.h"

using namespace aspen;
using namespace aspen::benchutil;

int main() {
  PrintHeader("Figure 11", "Learning vs duration: Query 0, sigma_st=20%, w=3");
  net::Topology topo = PaperTopology();
  AlgoSpec cmg{join::Algorithm::kInnet, join::InnetFeatures::Cmg()};
  for (int cycles : {200, 400, 800}) {
    std::printf("\n(%d sampling intervals)\n", cycles);
    RunEstimateMatrix(
        [&](const workload::SelectivityParams& truth, uint64_t seed) {
          return workload::Workload::MakeQuery0(&topo, truth, 25, 3, seed);
        },
        cmg, 0.2, cycles, /*learning=*/true);
  }
  return 0;
}
