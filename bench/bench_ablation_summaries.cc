// Ablation: summary structure for the primary join key. Bloom filters
// (fixed 16 bytes, small false-positive rate inflating exploration),
// intervals (4 bytes, coarse pruning), and exact sets (no false positives,
// unbounded size) — the trade-off between routing-table size and wasted
// exploration traffic.

#include "bench/bench_util.h"
#include "join/executor.h"

using namespace aspen;
using namespace aspen::benchutil;

int main() {
  PrintHeader("Ablation", "Summary structures for content routing (Query 1)");
  net::Topology topo = PaperTopology();
  workload::SelectivityParams sel{0.5, 0.5, 0.2};
  const int cycles = CyclesFromEnv(100);
  const int runs = RunsFromEnv(3);
  struct Variant {
    const char* name;
    routing::SummaryType type;
  };
  const Variant variants[] = {
      {"Bloom (16B)", routing::SummaryType::kBloom},
      {"Interval (4B)", routing::SummaryType::kInterval},
      {"Exact set (2B/value)", routing::SummaryType::kExact},
  };
  core::Table table({"summary", "initiation", "total traffic"});
  for (const auto& v : variants) {
    auto opts = MakeOptions(
        {join::Algorithm::kInnet, join::InnetFeatures::Cmg()}, sel);
    opts.summary_type = v.type;
    auto agg = OrDie(core::RunAveraged(
        [&](uint64_t seed) {
          return workload::Workload::MakeQuery1(&topo, sel, 3, seed);
        },
        opts, cycles, runs));
    table.AddRow({v.name, core::HumanBytes(agg.initiation_bytes),
                  core::HumanBytes(agg.total_bytes)});
  }
  std::printf("%d cycles, %d runs\n", cycles, runs);
  table.Print();
  return 0;
}
