// Figure 7: optimal (O) vs distributed (D) computation traffic across the
// five topologies, for 1:1 joins between 10 random pairs with sigma_s = 1,
// sigma_t = sigma_st = 0. With only s's stream moving, per-cycle traffic is
// the path length from each s to its chosen join point: the oracle uses
// true shortest paths; the distributed scheme uses the best path its
// multi-tree exploration discovered. The paper finds D within 3% of O.

#include "bench/bench_util.h"
#include "opt/centralized.h"
#include "routing/multi_tree.h"

using namespace aspen;
using namespace aspen::benchutil;

int main() {
  PrintHeader("Figure 7", "Optimal vs distributed placement traffic");
  const int runs = RunsFromEnv();
  core::Table table(
      {"topology", "Optimal (hops/cycle)", "Distributed (hops/cycle)",
       "D/O"});
  const net::TopologyKind kinds[] = {
      net::TopologyKind::kDenseRandom, net::TopologyKind::kMediumRandom,
      net::TopologyKind::kModerateRandom, net::TopologyKind::kSparseRandom,
      net::TopologyKind::kGrid};
  for (auto kind : kinds) {
    double opt_hops = 0, dist_hops = 0;
    for (int r = 0; r < runs; ++r) {
      net::Topology topo = OrDie(net::Topology::Make(kind, 100, 5 + r));
      workload::SelectivityParams sel{1.0, 1.0, 0.2};  // pair structure only
      auto wl =
          OrDie(workload::Workload::MakeQuery0(&topo, sel, 10, 1, 11 + r));
      routing::MultiTreeOptions mt_opts;
      routing::MultiTree multi(&topo, mt_opts);
      routing::IndexedAttribute attr;
      attr.name = "pair";
      const workload::Workload* wlp = &wl;
      attr.value_fn = [wlp](net::NodeId id) {
        return wlp->statics().tuple(id)[query::kAttrNameId];
      };
      int attr_idx = OrDie(multi.IndexAttribute(attr));
      for (const auto& [s, t] : wl.AllJoinPairs()) {
        // Oracle: the true shortest path carries s's stream to t.
        opt_hops += static_cast<double>(topo.ShortestPath(s, t).size()) - 1;
        // Distributed: the best multi-tree-discovered path.
        auto found = multi.FindMatches(
            s, attr_idx, wl.statics().tuple(s)[query::kAttrNameId],
            [&, t = t](net::NodeId cand) { return cand == t; });
        size_t best = SIZE_MAX;
        for (const auto& fp : found) best = std::min(best, fp.path.size());
        if (best != SIZE_MAX) dist_hops += static_cast<double>(best) - 1;
      }
    }
    table.AddRow({net::TopologyKindName(kind),
                  core::Fixed(opt_hops / runs, 1),
                  core::Fixed(dist_hops / runs, 1),
                  core::Fixed(dist_hops / std::max(opt_hops, 1.0), 3)});
  }
  table.Print();
  return 0;
}
