// Global counting allocator for steady-state allocation audits.
//
// Replaces ::operator new/delete with malloc/free wrappers that bump an
// atomic counter, optionally gated by a flag so surrounding harness
// machinery (gtest, google-benchmark setup) is not measured. Shared by
// tests/allocation_test.cc, bench_micro, bench_mesh_10k and
// bench_service_churn so the audit has exactly one definition — including
// the C++17 over-aligned overloads, which a per-file copy can silently
// miss.
//
// Include from exactly ONE translation unit per binary: replacement
// operator new/delete definitions must not be inline, so a second
// including TU in the same binary would violate the one-definition rule.
// (Each audit binary is a single .cc; the aspen library never includes
// this header.)

#ifndef ASPEN_BENCH_ALLOC_AUDIT_H_
#define ASPEN_BENCH_ALLOC_AUDIT_H_

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace aspen {
namespace allocaudit {

/// When false (the default), allocations pass through uncounted.
inline std::atomic<bool> g_counting{false};
inline std::atomic<uint64_t> g_allocs{0};

inline void SetCounting(bool on) {
  g_counting.store(on, std::memory_order_relaxed);
}
inline void ResetCount() { g_allocs.store(0, std::memory_order_relaxed); }
inline uint64_t Count() { return g_allocs.load(std::memory_order_relaxed); }

inline void* CountedAlloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

inline void* CountedAllocAligned(std::size_t size, std::align_val_t align) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::aligned_alloc(static_cast<std::size_t>(align), size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace allocaudit
}  // namespace aspen

void* operator new(std::size_t size) {
  return aspen::allocaudit::CountedAlloc(size);
}
void* operator new[](std::size_t size) {
  return aspen::allocaudit::CountedAlloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return aspen::allocaudit::CountedAllocAligned(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return aspen::allocaudit::CountedAllocAligned(size, align);
}

// The replaced operator new above allocates with malloc/aligned_alloc, so
// freeing with free() is correct; GCC's -Wmismatched-new-delete cannot see
// the pairing when these deletes inline into a linked library's static
// initializers, so silence that one diagnostic here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // ASPEN_BENCH_ALLOC_AUDIT_H_
