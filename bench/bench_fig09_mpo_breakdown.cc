// Figure 9: breakdown of the MPO contributions on Query 2 (w = 1).
// (a) cumulative traffic vs run duration (0..300 cycles): Naive has no
//     initiation cost and wins very short runs; the Innet variants amortize
//     their setup and win longer ones.
// (b) total traffic after 1000 cycles for the Innet variants across join
//     selectivities: cmpg achieves additional gains on long runs.

#include "bench/bench_util.h"
#include "join/executor.h"

using namespace aspen;
using namespace aspen::benchutil;

int main() {
  PrintHeader("Figure 9", "Method vs duration & MPO variants (Query 2, w=1)");
  net::Topology topo = PaperTopology();
  workload::SelectivityParams sel{0.5, 0.5, 0.1};

  std::vector<AlgoSpec> algos = {
      {join::Algorithm::kNaive, {}},
      {join::Algorithm::kBase, {}},
      {join::Algorithm::kGht, {}},
      {join::Algorithm::kInnet, join::InnetFeatures::None()},
      {join::Algorithm::kInnet, join::InnetFeatures::Cm()},
      {join::Algorithm::kInnet, join::InnetFeatures::Cmg()},
      {join::Algorithm::kInnet, join::InnetFeatures::Cmpg()},
  };

  std::printf("\n(a) Cumulative traffic (KB) vs duration (sampling cycles)\n");
  std::vector<std::string> headers{"cycles"};
  for (const auto& a : algos) headers.push_back(a.Name());
  core::Table by_duration(headers);
  // One executor per algorithm, sampled every 30 cycles.
  std::vector<std::unique_ptr<workload::Workload>> wls;
  std::vector<std::unique_ptr<join::JoinExecutor>> execs;
  for (const auto& algo : algos) {
    wls.push_back(std::make_unique<workload::Workload>(
        OrDie(workload::Workload::MakeQuery2(&topo, sel, 1, 7))));
    execs.push_back(std::make_unique<join::JoinExecutor>(
        wls.back().get(), MakeOptions(algo, sel)));
    if (!execs.back()->Initiate().ok()) return 1;
  }
  for (int cycles = 0; cycles <= 300; cycles += 30) {
    std::vector<std::string> row{std::to_string(cycles)};
    for (auto& exec : execs) {
      if (cycles > 0 && !exec->RunCycles(30).ok()) return 1;
      row.push_back(core::Fixed(
          exec->network().stats().TotalBytesSent() / 1024.0, 1));
    }
    by_duration.AddRow(row);
  }
  by_duration.Print();

  std::printf("\n(b) Total traffic after 1000 cycles vs join selectivity\n");
  std::vector<AlgoSpec> variants = {
      {join::Algorithm::kInnet, join::InnetFeatures::None()},
      {join::Algorithm::kInnet, join::InnetFeatures::Cm()},
      {join::Algorithm::kInnet, join::InnetFeatures::Cmg()},
      {join::Algorithm::kInnet, join::InnetFeatures::Cmpg()},
  };
  std::vector<std::string> h2{"sigma_st"};
  for (const auto& v : variants) h2.push_back(v.Name());
  core::Table long_run(h2);
  const int runs = RunsFromEnv(3);
  for (const auto& js : JoinSels()) {
    workload::SelectivityParams p{0.5, 0.5, js.value};
    std::vector<std::string> row{js.label};
    for (const auto& v : variants) {
      auto agg = OrDie(core::RunAveraged(
          [&](uint64_t seed) {
            return workload::Workload::MakeQuery2(&topo, p, 1, seed);
          },
          MakeOptions(v, p), CyclesFromEnv(1000), runs));
      row.push_back(core::HumanBytes(agg.total_bytes));
    }
    long_run.AddRow(row);
  }
  long_run.Print();
  return 0;
}
