// Ablation: routing-substrate width. Runs Innet on Query 1 with 1, 2 and 3
// overlapping routing trees. More trees cost more initiation (construction
// + summaries + wider exploration) but discover shorter producer-to-producer
// paths, cutting per-cycle computation traffic.

#include "bench/bench_util.h"
#include "join/executor.h"

using namespace aspen;
using namespace aspen::benchutil;

int main() {
  PrintHeader("Ablation", "Number of routing trees (Innet, Query 1)");
  net::Topology topo = PaperTopology();
  workload::SelectivityParams sel{0.5, 0.5, 0.2};
  const int cycles = CyclesFromEnv(200);
  const int runs = RunsFromEnv(3);
  core::Table table({"trees", "initiation", "computation", "total",
                     "avg path len (pairs)"});
  for (int trees : {1, 2, 3}) {
    auto opts = MakeOptions(
        {join::Algorithm::kInnet, join::InnetFeatures::Cmg()}, sel);
    opts.num_trees = trees;
    auto agg = OrDie(core::RunAveraged(
        [&](uint64_t seed) {
          return workload::Workload::MakeQuery1(&topo, sel, 3, seed);
        },
        opts, cycles, runs));
    // Path-length diagnostic from one representative initiation.
    auto wl = OrDie(workload::Workload::MakeQuery1(&topo, sel, 3, 7));
    join::JoinExecutor exec(&wl, opts);
    if (!exec.Initiate().ok()) return 1;
    double hops = 0;
    int n = 0;
    for (const auto& pl : exec.placements()) {
      if (!pl.path.empty()) {
        hops += static_cast<double>(pl.path.size()) - 1;
        ++n;
      }
    }
    table.AddRow({std::to_string(trees),
                  core::HumanBytes(agg.initiation_bytes),
                  core::HumanBytes(agg.computation_bytes),
                  core::HumanBytes(agg.total_bytes),
                  core::Fixed(n > 0 ? hops / n : 0, 2)});
  }
  std::printf("%d cycles, %d runs\n", cycles, runs);
  table.Print();
  return 0;
}
