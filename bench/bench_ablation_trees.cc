// Ablation: routing-substrate width. Runs Innet on Query 1 with 1, 2 and 3
// overlapping routing trees. More trees cost more initiation (construction
// + summaries + wider exploration) but discover shorter producer-to-producer
// paths, cutting per-cycle computation traffic.
//
// Second sweep: tree mode (per-source vs shared Steiner, RunKnobs::
// tree_mode) x destination-overlap fraction — a population of co-resident
// queries where 0/25/50/75% duplicate another tenant's placed pairs. The
// shared mode's saving should grow with the overlap fraction and vanish at
// zero overlap (DESIGN.md "Cross-query work sharing"). Metrics land in
// BENCH_ablation_trees.json (merge mode, so matrix re-runs upsert).

#include "bench/bench_util.h"
#include "join/executor.h"
#include "join/medium.h"

using namespace aspen;
using namespace aspen::benchutil;

int main() {
  PrintHeader("Ablation", "Number of routing trees (Innet, Query 1)");
  net::Topology topo = PaperTopology();
  workload::SelectivityParams sel{0.5, 0.5, 0.2};
  const int cycles = CyclesFromEnv(200);
  const int runs = RunsFromEnv(3);
  core::Table table({"trees", "initiation", "computation", "total",
                     "avg path len (pairs)"});
  for (int trees : {1, 2, 3}) {
    auto opts = MakeOptions(
        {join::Algorithm::kInnet, join::InnetFeatures::Cmg()}, sel);
    opts.num_trees = trees;
    auto agg = OrDie(core::RunAveraged(
        [&](uint64_t seed) {
          return workload::Workload::MakeQuery1(&topo, sel, 3, seed);
        },
        opts, cycles, runs));
    // Path-length diagnostic from one representative initiation.
    auto wl = OrDie(workload::Workload::MakeQuery1(&topo, sel, 3, 7));
    join::JoinExecutor exec(&wl, opts);
    if (!exec.Initiate().ok()) return 1;
    double hops = 0;
    int n = 0;
    for (const auto& pl : exec.placements()) {
      if (!pl.path.empty()) {
        hops += static_cast<double>(pl.path.size()) - 1;
        ++n;
      }
    }
    table.AddRow({std::to_string(trees),
                  core::HumanBytes(agg.initiation_bytes),
                  core::HumanBytes(agg.computation_bytes),
                  core::HumanBytes(agg.total_bytes),
                  core::Fixed(n > 0 ? hops / n : 0, 2)});
  }
  std::printf("%d cycles, %d runs\n", cycles, runs);
  table.Print();

  // ---- tree mode x destination-overlap fraction ------------------------------
  PrintHeader("Ablation", "Tree mode x destination overlap (8 queries)");
  JsonReport report("BENCH_ablation_trees.json", /*merge=*/true);
  const int kQueries = 8;
  const int kPairs = 20;
  const int mode_cycles = CyclesFromEnv(100);
  // Distinct templates; an "overlapping" query reuses template 0 instead.
  std::vector<workload::Workload> pool;
  pool.reserve(kQueries);
  for (int i = 0; i < kQueries; ++i) {
    pool.push_back(OrDie(workload::Workload::MakeQuery0(
        &topo, sel, kPairs, /*window=*/3, /*seed=*/100 + i)));
  }
  core::Table mode_table(
      {"overlap", "per-source", "shared", "saving", "shared placements"});
  for (int overlap_pct : {0, 25, 50, 75}) {
    const int dups = kQueries * overlap_pct / 100;
    uint64_t bytes_by_mode[2] = {0, 0};
    int shared_placements = 0;
    for (common::TreeMode mode :
         {common::TreeMode::kPerSource, common::TreeMode::kShared}) {
      auto opts = MakeOptions(
          {join::Algorithm::kInnet, join::InnetFeatures::Cm()}, sel);
      opts.knobs.tree_mode = mode;
      join::MediumOptions mopts;
      mopts.knobs.tree_mode = mode;
      join::SharedMedium medium(&topo, {}, mopts);
      for (int q = 0; q < kQueries; ++q) {
        // The first `dups` queries duplicate the last template's pairs.
        const workload::Workload& wl = q < dups ? pool[kQueries - 1] : pool[q];
        OrDie(medium.TryAddQuery(&wl, opts).status());
      }
      OrDie(medium.InitiateAll());
      OrDie(medium.RunCycles(mode_cycles));
      bytes_by_mode[mode == common::TreeMode::kShared] =
          medium.stats().TotalBytesSent();
      if (mode == common::TreeMode::kShared) {
        shared_placements = medium.num_shared_placements();
      }
    }
    const double saving =
        1.0 - static_cast<double>(bytes_by_mode[1]) /
                  static_cast<double>(bytes_by_mode[0]);
    mode_table.AddRow({std::to_string(overlap_pct) + "%",
                       core::HumanBytes(bytes_by_mode[0]),
                       core::HumanBytes(bytes_by_mode[1]),
                       core::Fixed(100.0 * saving, 1) + "%",
                       std::to_string(shared_placements)});
    const std::string suffix = "_ov" + std::to_string(overlap_pct);
    report.Add("ablation_trees", "per_source_bytes" + suffix,
               static_cast<double>(bytes_by_mode[0]));
    report.Add("ablation_trees", "shared_bytes" + suffix,
               static_cast<double>(bytes_by_mode[1]));
    report.Add("ablation_trees", "shared_saving_pct" + suffix,
               100.0 * saving);
  }
  std::printf("%d cycles, %d queries, %d pairs each\n", mode_cycles, kQueries,
              kPairs);
  mode_table.Print();
  report.Write();
  return 0;
}
