// Figure 20: Query 2 on a 100-node 802.11 mesh network, w = 1, 100 sampling
// cycles — message counts (Appendix F).

#include "bench/bench_util.h"
#include "bench/ratio_sweep.h"

using namespace aspen;
using namespace aspen::benchutil;

int main() {
  PrintHeader("Figure 20", "Query 2, w=1, 100-node mesh (messages)");
  net::Topology topo = PaperTopology();
  RunRatioSweep(
      [&](const workload::SelectivityParams& p, uint64_t seed) {
        return workload::Workload::MakeQuery2(&topo, p, /*window=*/1, seed);
      },
      CyclesFromEnv(100), /*mesh=*/true);
  return 0;
}
