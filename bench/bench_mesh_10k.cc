// 10,000-node scale-up: the headroom unlocked by the zero-allocation data
// plane (interned routes, pooled frames/payloads, POD envelopes).
//
// Figure 18 stops at a few hundred mesh nodes; this bench runs a windowed
// join over a 100x100 grid — two orders of magnitude past the paper's
// evaluation — and reports steady-state cycle throughput plus the measured
// allocations per cycle. Before the data-plane refactor every cycle paid
// malloc/free for each sample's payload, path vector and frame churn, which
// bounded cycle rate at this scale; steady-state cycles now allocate
// nothing, so throughput is pure simulation work.
//
// Output: console summary + BENCH_mesh_10k.json (cycles/sec, bytes,
// allocations) for the perf trajectory.
//
// `--smoke` shrinks the run for CI (same topology, fewer cycles).

#include <chrono>
#include <cstdlib>

#include "bench/alloc_audit.h"
#include "bench/bench_util.h"
#include "core/engine.h"
#include "join/executor.h"
#include "net/topology.h"
#include "workload/workload.h"

namespace aspen {
namespace {

int Main(int argc, char** argv) {
  allocaudit::SetCounting(true);  // the whole run is audited
  const bool smoke = benchutil::ConsumeSmokeFlag(&argc, argv);
  const int warmup_cycles = smoke ? 5 : 20;
  const int measured_cycles =
      benchutil::CyclesFromEnv(smoke ? 10 : 100);

  benchutil::PrintHeader("bench_mesh_10k",
                         "10,000-node grid join (zero-allocation data plane)");

  auto topo = benchutil::OrDie(net::Topology::Grid(100, 100, 2560.0));
  workload::SelectivityParams sel{0.5, 0.5, 0.2};
  auto wl = benchutil::OrDie(
      workload::Workload::MakeQuery0(&topo, sel, /*num_pairs=*/500,
                                     /*window=*/3, /*seed=*/7));

  join::ExecutorOptions opts;
  opts.algorithm = join::Algorithm::kInnet;
  opts.features = join::InnetFeatures::Cm();
  opts.assumed = sel;
  opts.mesh_mode = true;
  opts.knobs = benchutil::KnobsFromEnv();

  join::JoinExecutor exec(&wl, opts);
  auto t0 = std::chrono::steady_clock::now();
  Status st = exec.Initiate();
  if (!st.ok()) {
    std::fprintf(stderr, "fatal: %s\n", st.ToString().c_str());
    return 1;
  }
  auto t1 = std::chrono::steady_clock::now();
  st = exec.RunCycles(warmup_cycles);
  if (!st.ok()) {
    std::fprintf(stderr, "fatal: %s\n", st.ToString().c_str());
    return 1;
  }

  const uint64_t allocs_before = allocaudit::Count();
  const uint64_t bytes_before = exec.network().stats().TotalBytesSent();
  auto t2 = std::chrono::steady_clock::now();
  st = exec.RunCycles(measured_cycles);
  auto t3 = std::chrono::steady_clock::now();
  if (!st.ok()) {
    std::fprintf(stderr, "fatal: %s\n", st.ToString().c_str());
    return 1;
  }
  const uint64_t allocs = allocaudit::Count() - allocs_before;
  const uint64_t bytes = exec.network().stats().TotalBytesSent() - bytes_before;

  const double init_s = std::chrono::duration<double>(t1 - t0).count();
  const double run_s = std::chrono::duration<double>(t3 - t2).count();
  const double cycles_per_sec = measured_cycles / run_s;
  const double allocs_per_cycle =
      static_cast<double>(allocs) / measured_cycles;

  std::printf("nodes                 %d\n", topo.num_nodes());
  std::printf("shards                %d\n", opts.knobs.shards);
  std::printf("pipeline depth        %d\n", opts.knobs.pipeline_depth);
  std::printf("pairs                 %zu\n", exec.pairs().size());
  std::printf("initiation            %.2f s\n", init_s);
  std::printf("measured cycles       %d (after %d warm-up)\n",
              measured_cycles, warmup_cycles);
  std::printf("cycle throughput      %.1f cycles/s (%.2f ms/cycle)\n",
              cycles_per_sec, 1e3 * run_s / measured_cycles);
  std::printf("traffic               %.1f MB over the measured block\n",
              bytes / 1e6);
  std::printf("heap allocations      %llu total, %.3f per cycle\n",
              static_cast<unsigned long long>(allocs), allocs_per_cycle);
  std::printf("results delivered     %llu\n",
              static_cast<unsigned long long>(exec.results()));

  // Merge mode: the CI release-bench invokes this binary once per
  // (shards, pipeline) configuration; each run upserts its own per-config
  // entry plus the headline "mesh_10k" entry (last configuration wins)
  // into the accumulated report.
  benchutil::JsonReport report("BENCH_mesh_10k.json", /*merge=*/true);
  char config[64];
  std::snprintf(config, sizeof(config), "mesh_10k_s%d_p%d",
                opts.knobs.shards, opts.knobs.pipeline_depth);
  for (const char* entry : {"mesh_10k", static_cast<const char*>(config)}) {
    report.Add(entry, "nodes", topo.num_nodes());
    report.Add(entry, "shards", opts.knobs.shards);
    report.Add(entry, "pipeline_depth", opts.knobs.pipeline_depth);
    report.Add(entry, "cycles_per_sec", cycles_per_sec);
    report.Add(entry, "ms_per_cycle", 1e3 * run_s / measured_cycles);
    report.Add(entry, "bytes", static_cast<double>(bytes));
    report.Add(entry, "allocs_per_cycle", allocs_per_cycle);
    report.Add(entry, "init_seconds", init_s);
  }
  report.Write();

  // Deterministic subset for the CI shard-determinism gate (the console
  // output above contains timing and cannot be diffed byte for byte).
  benchutil::DeterminismLog det;
  if (det.enabled()) {
    const auto& stats = exec.network().stats();
    det.Add("nodes", topo.num_nodes());
    det.Add("results", exec.results());
    det.Add("measured_bytes", bytes);
    det.Add("total_bytes", stats.TotalBytesSent());
    det.Add("total_messages", stats.TotalMessagesSent());
    det.Add("base_bytes", stats.BaseStationBytes());
    det.Add("traffic_fingerprint", benchutil::TrafficFingerprint(stats));
    auto rs = exec.Stats();
    det.AddDoubleBits("avg_result_delay", rs.avg_result_delay_cycles);
    det.AddDoubleBits("max_result_delay", rs.max_result_delay_cycles);
    if (!det.Write()) return 1;
  }

  // Hard steady-state audit (was a report-only 0.07/cycle: payload-slab and
  // staging high-water growth, since moved to Initiate by the pool reserve
  // and the pre-sized per-shard producer caches). Any allocation in the
  // measured block is a regression now.
  if (allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu heap allocations in the measured block "
                 "(expected 0)\n",
                 static_cast<unsigned long long>(allocs));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace aspen

int main(int argc, char** argv) { return aspen::Main(argc, argv); }
